# Empty compiler generated dependencies file for fotl_evaluator_test.
# This may be replaced when dependencies are built.
