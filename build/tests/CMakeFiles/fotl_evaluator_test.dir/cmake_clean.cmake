file(REMOVE_RECURSE
  "CMakeFiles/fotl_evaluator_test.dir/fotl_evaluator_test.cc.o"
  "CMakeFiles/fotl_evaluator_test.dir/fotl_evaluator_test.cc.o.d"
  "fotl_evaluator_test"
  "fotl_evaluator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fotl_evaluator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
