# Empty dependencies file for ptl_identities_test.
# This may be replaced when dependencies are built.
