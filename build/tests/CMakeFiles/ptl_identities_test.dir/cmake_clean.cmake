file(REMOVE_RECURSE
  "CMakeFiles/ptl_identities_test.dir/ptl_identities_test.cc.o"
  "CMakeFiles/ptl_identities_test.dir/ptl_identities_test.cc.o.d"
  "ptl_identities_test"
  "ptl_identities_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptl_identities_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
