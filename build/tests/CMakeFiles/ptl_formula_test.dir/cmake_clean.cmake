file(REMOVE_RECURSE
  "CMakeFiles/ptl_formula_test.dir/ptl_formula_test.cc.o"
  "CMakeFiles/ptl_formula_test.dir/ptl_formula_test.cc.o.d"
  "ptl_formula_test"
  "ptl_formula_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptl_formula_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
