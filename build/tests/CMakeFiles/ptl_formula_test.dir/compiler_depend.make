# Empty compiler generated dependencies file for ptl_formula_test.
# This may be replaced when dependencies are built.
