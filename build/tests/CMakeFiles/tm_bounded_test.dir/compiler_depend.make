# Empty compiler generated dependencies file for tm_bounded_test.
# This may be replaced when dependencies are built.
