file(REMOVE_RECURSE
  "CMakeFiles/tm_bounded_test.dir/tm_bounded_test.cc.o"
  "CMakeFiles/tm_bounded_test.dir/tm_bounded_test.cc.o.d"
  "tm_bounded_test"
  "tm_bounded_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tm_bounded_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
