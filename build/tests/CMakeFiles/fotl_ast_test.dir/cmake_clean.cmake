file(REMOVE_RECURSE
  "CMakeFiles/fotl_ast_test.dir/fotl_ast_test.cc.o"
  "CMakeFiles/fotl_ast_test.dir/fotl_ast_test.cc.o.d"
  "fotl_ast_test"
  "fotl_ast_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fotl_ast_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
