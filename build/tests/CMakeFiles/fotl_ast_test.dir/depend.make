# Empty dependencies file for fotl_ast_test.
# This may be replaced when dependencies are built.
