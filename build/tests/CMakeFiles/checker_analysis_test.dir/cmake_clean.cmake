file(REMOVE_RECURSE
  "CMakeFiles/checker_analysis_test.dir/checker_analysis_test.cc.o"
  "CMakeFiles/checker_analysis_test.dir/checker_analysis_test.cc.o.d"
  "checker_analysis_test"
  "checker_analysis_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checker_analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
