# Empty dependencies file for checker_analysis_test.
# This may be replaced when dependencies are built.
