file(REMOVE_RECURSE
  "CMakeFiles/checker_trigger_test.dir/checker_trigger_test.cc.o"
  "CMakeFiles/checker_trigger_test.dir/checker_trigger_test.cc.o.d"
  "checker_trigger_test"
  "checker_trigger_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checker_trigger_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
