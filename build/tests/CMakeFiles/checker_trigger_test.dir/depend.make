# Empty dependencies file for checker_trigger_test.
# This may be replaced when dependencies are built.
