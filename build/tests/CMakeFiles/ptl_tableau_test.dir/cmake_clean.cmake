file(REMOVE_RECURSE
  "CMakeFiles/ptl_tableau_test.dir/ptl_tableau_test.cc.o"
  "CMakeFiles/ptl_tableau_test.dir/ptl_tableau_test.cc.o.d"
  "ptl_tableau_test"
  "ptl_tableau_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptl_tableau_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
