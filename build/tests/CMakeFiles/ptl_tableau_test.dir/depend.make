# Empty dependencies file for ptl_tableau_test.
# This may be replaced when dependencies are built.
