# Empty compiler generated dependencies file for past_monitor_test.
# This may be replaced when dependencies are built.
