file(REMOVE_RECURSE
  "CMakeFiles/past_monitor_test.dir/past_monitor_test.cc.o"
  "CMakeFiles/past_monitor_test.dir/past_monitor_test.cc.o.d"
  "past_monitor_test"
  "past_monitor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/past_monitor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
