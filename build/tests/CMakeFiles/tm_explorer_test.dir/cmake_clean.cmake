file(REMOVE_RECURSE
  "CMakeFiles/tm_explorer_test.dir/tm_explorer_test.cc.o"
  "CMakeFiles/tm_explorer_test.dir/tm_explorer_test.cc.o.d"
  "tm_explorer_test"
  "tm_explorer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tm_explorer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
