file(REMOVE_RECURSE
  "CMakeFiles/tm_formulas_test.dir/tm_formulas_test.cc.o"
  "CMakeFiles/tm_formulas_test.dir/tm_formulas_test.cc.o.d"
  "tm_formulas_test"
  "tm_formulas_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tm_formulas_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
