# Empty compiler generated dependencies file for tm_formulas_test.
# This may be replaced when dependencies are built.
