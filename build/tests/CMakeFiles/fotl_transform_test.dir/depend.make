# Empty dependencies file for fotl_transform_test.
# This may be replaced when dependencies are built.
