file(REMOVE_RECURSE
  "CMakeFiles/fotl_transform_test.dir/fotl_transform_test.cc.o"
  "CMakeFiles/fotl_transform_test.dir/fotl_transform_test.cc.o.d"
  "fotl_transform_test"
  "fotl_transform_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fotl_transform_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
