# Empty compiler generated dependencies file for ptl_word_test.
# This may be replaced when dependencies are built.
