file(REMOVE_RECURSE
  "CMakeFiles/ptl_word_test.dir/ptl_word_test.cc.o"
  "CMakeFiles/ptl_word_test.dir/ptl_word_test.cc.o.d"
  "ptl_word_test"
  "ptl_word_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptl_word_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
