file(REMOVE_RECURSE
  "CMakeFiles/fotl_parser_test.dir/fotl_parser_test.cc.o"
  "CMakeFiles/fotl_parser_test.dir/fotl_parser_test.cc.o.d"
  "fotl_parser_test"
  "fotl_parser_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fotl_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
