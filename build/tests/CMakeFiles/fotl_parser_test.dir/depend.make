# Empty dependencies file for fotl_parser_test.
# This may be replaced when dependencies are built.
