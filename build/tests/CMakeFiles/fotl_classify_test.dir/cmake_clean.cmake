file(REMOVE_RECURSE
  "CMakeFiles/fotl_classify_test.dir/fotl_classify_test.cc.o"
  "CMakeFiles/fotl_classify_test.dir/fotl_classify_test.cc.o.d"
  "fotl_classify_test"
  "fotl_classify_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fotl_classify_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
