# Empty compiler generated dependencies file for fotl_classify_test.
# This may be replaced when dependencies are built.
