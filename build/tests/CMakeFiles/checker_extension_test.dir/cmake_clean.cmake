file(REMOVE_RECURSE
  "CMakeFiles/checker_extension_test.dir/checker_extension_test.cc.o"
  "CMakeFiles/checker_extension_test.dir/checker_extension_test.cc.o.d"
  "checker_extension_test"
  "checker_extension_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checker_extension_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
