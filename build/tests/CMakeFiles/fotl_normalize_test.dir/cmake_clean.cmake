file(REMOVE_RECURSE
  "CMakeFiles/fotl_normalize_test.dir/fotl_normalize_test.cc.o"
  "CMakeFiles/fotl_normalize_test.dir/fotl_normalize_test.cc.o.d"
  "fotl_normalize_test"
  "fotl_normalize_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fotl_normalize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
