# Empty dependencies file for fotl_normalize_test.
# This may be replaced when dependencies are built.
