# Empty compiler generated dependencies file for ptl_automaton_test.
# This may be replaced when dependencies are built.
