file(REMOVE_RECURSE
  "CMakeFiles/ptl_automaton_test.dir/ptl_automaton_test.cc.o"
  "CMakeFiles/ptl_automaton_test.dir/ptl_automaton_test.cc.o.d"
  "ptl_automaton_test"
  "ptl_automaton_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptl_automaton_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
