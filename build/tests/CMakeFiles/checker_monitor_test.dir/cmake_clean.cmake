file(REMOVE_RECURSE
  "CMakeFiles/checker_monitor_test.dir/checker_monitor_test.cc.o"
  "CMakeFiles/checker_monitor_test.dir/checker_monitor_test.cc.o.d"
  "checker_monitor_test"
  "checker_monitor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checker_monitor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
