# Empty dependencies file for checker_monitor_test.
# This may be replaced when dependencies are built.
