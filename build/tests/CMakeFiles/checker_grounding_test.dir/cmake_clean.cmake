file(REMOVE_RECURSE
  "CMakeFiles/checker_grounding_test.dir/checker_grounding_test.cc.o"
  "CMakeFiles/checker_grounding_test.dir/checker_grounding_test.cc.o.d"
  "checker_grounding_test"
  "checker_grounding_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checker_grounding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
