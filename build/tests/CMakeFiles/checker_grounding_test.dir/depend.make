# Empty dependencies file for checker_grounding_test.
# This may be replaced when dependencies are built.
