file(REMOVE_RECURSE
  "CMakeFiles/past_metric_test.dir/past_metric_test.cc.o"
  "CMakeFiles/past_metric_test.dir/past_metric_test.cc.o.d"
  "past_metric_test"
  "past_metric_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/past_metric_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
