# Empty dependencies file for past_metric_test.
# This may be replaced when dependencies are built.
