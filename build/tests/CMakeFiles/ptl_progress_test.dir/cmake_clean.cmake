file(REMOVE_RECURSE
  "CMakeFiles/ptl_progress_test.dir/ptl_progress_test.cc.o"
  "CMakeFiles/ptl_progress_test.dir/ptl_progress_test.cc.o.d"
  "ptl_progress_test"
  "ptl_progress_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptl_progress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
