# Empty dependencies file for ptl_progress_test.
# This may be replaced when dependencies are built.
