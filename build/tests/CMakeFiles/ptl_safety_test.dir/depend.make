# Empty dependencies file for ptl_safety_test.
# This may be replaced when dependencies are built.
