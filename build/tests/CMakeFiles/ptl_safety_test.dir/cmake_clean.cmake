file(REMOVE_RECURSE
  "CMakeFiles/ptl_safety_test.dir/ptl_safety_test.cc.o"
  "CMakeFiles/ptl_safety_test.dir/ptl_safety_test.cc.o.d"
  "ptl_safety_test"
  "ptl_safety_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptl_safety_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
