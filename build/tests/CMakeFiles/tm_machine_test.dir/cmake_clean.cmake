file(REMOVE_RECURSE
  "CMakeFiles/tm_machine_test.dir/tm_machine_test.cc.o"
  "CMakeFiles/tm_machine_test.dir/tm_machine_test.cc.o.d"
  "tm_machine_test"
  "tm_machine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tm_machine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
