file(REMOVE_RECURSE
  "CMakeFiles/bench_vs_past.dir/bench_vs_past.cc.o"
  "CMakeFiles/bench_vs_past.dir/bench_vs_past.cc.o.d"
  "bench_vs_past"
  "bench_vs_past.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vs_past.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
