# Empty compiler generated dependencies file for bench_vs_past.
# This may be replaced when dependencies are built.
