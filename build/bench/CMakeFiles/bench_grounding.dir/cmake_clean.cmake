file(REMOVE_RECURSE
  "CMakeFiles/bench_grounding.dir/bench_grounding.cc.o"
  "CMakeFiles/bench_grounding.dir/bench_grounding.cc.o.d"
  "bench_grounding"
  "bench_grounding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_grounding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
