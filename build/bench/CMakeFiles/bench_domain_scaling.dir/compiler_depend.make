# Empty compiler generated dependencies file for bench_domain_scaling.
# This may be replaced when dependencies are built.
