file(REMOVE_RECURSE
  "CMakeFiles/bench_domain_scaling.dir/bench_domain_scaling.cc.o"
  "CMakeFiles/bench_domain_scaling.dir/bench_domain_scaling.cc.o.d"
  "bench_domain_scaling"
  "bench_domain_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_domain_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
