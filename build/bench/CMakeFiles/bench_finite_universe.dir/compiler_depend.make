# Empty compiler generated dependencies file for bench_finite_universe.
# This may be replaced when dependencies are built.
