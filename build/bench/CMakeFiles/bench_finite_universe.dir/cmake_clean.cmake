file(REMOVE_RECURSE
  "CMakeFiles/bench_finite_universe.dir/bench_finite_universe.cc.o"
  "CMakeFiles/bench_finite_universe.dir/bench_finite_universe.cc.o.d"
  "bench_finite_universe"
  "bench_finite_universe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_finite_universe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
