# Empty dependencies file for bench_triggers.
# This may be replaced when dependencies are built.
