
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation.cc" "bench/CMakeFiles/bench_ablation.dir/bench_ablation.cc.o" "gcc" "bench/CMakeFiles/bench_ablation.dir/bench_ablation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/checker/CMakeFiles/tic_checker.dir/DependInfo.cmake"
  "/root/repo/build/src/tm/CMakeFiles/tic_tm.dir/DependInfo.cmake"
  "/root/repo/build/src/past/CMakeFiles/tic_past.dir/DependInfo.cmake"
  "/root/repo/build/src/ptl/CMakeFiles/tic_ptl.dir/DependInfo.cmake"
  "/root/repo/build/src/fotl/CMakeFiles/tic_fotl.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tic_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
