# Empty compiler generated dependencies file for bench_tm_explore.
# This may be replaced when dependencies are built.
