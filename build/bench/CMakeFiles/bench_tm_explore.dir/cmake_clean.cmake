file(REMOVE_RECURSE
  "CMakeFiles/bench_tm_explore.dir/bench_tm_explore.cc.o"
  "CMakeFiles/bench_tm_explore.dir/bench_tm_explore.cc.o.d"
  "bench_tm_explore"
  "bench_tm_explore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tm_explore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
