file(REMOVE_RECURSE
  "CMakeFiles/bench_past.dir/bench_past.cc.o"
  "CMakeFiles/bench_past.dir/bench_past.cc.o.d"
  "bench_past"
  "bench_past.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_past.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
