# Empty compiler generated dependencies file for bench_past.
# This may be replaced when dependencies are built.
