file(REMOVE_RECURSE
  "CMakeFiles/bench_ptl.dir/bench_ptl.cc.o"
  "CMakeFiles/bench_ptl.dir/bench_ptl.cc.o.d"
  "bench_ptl"
  "bench_ptl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ptl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
