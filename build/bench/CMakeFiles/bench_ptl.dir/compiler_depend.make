# Empty compiler generated dependencies file for bench_ptl.
# This may be replaced when dependencies are built.
