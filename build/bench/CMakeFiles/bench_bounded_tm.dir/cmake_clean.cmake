file(REMOVE_RECURSE
  "CMakeFiles/bench_bounded_tm.dir/bench_bounded_tm.cc.o"
  "CMakeFiles/bench_bounded_tm.dir/bench_bounded_tm.cc.o.d"
  "bench_bounded_tm"
  "bench_bounded_tm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bounded_tm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
