# Empty compiler generated dependencies file for bench_bounded_tm.
# This may be replaced when dependencies are built.
