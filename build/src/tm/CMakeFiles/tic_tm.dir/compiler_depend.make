# Empty compiler generated dependencies file for tic_tm.
# This may be replaced when dependencies are built.
