file(REMOVE_RECURSE
  "CMakeFiles/tic_tm.dir/encoding.cc.o"
  "CMakeFiles/tic_tm.dir/encoding.cc.o.d"
  "CMakeFiles/tic_tm.dir/explorer.cc.o"
  "CMakeFiles/tic_tm.dir/explorer.cc.o.d"
  "CMakeFiles/tic_tm.dir/formulas.cc.o"
  "CMakeFiles/tic_tm.dir/formulas.cc.o.d"
  "CMakeFiles/tic_tm.dir/machine.cc.o"
  "CMakeFiles/tic_tm.dir/machine.cc.o.d"
  "CMakeFiles/tic_tm.dir/simulator.cc.o"
  "CMakeFiles/tic_tm.dir/simulator.cc.o.d"
  "libtic_tm.a"
  "libtic_tm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tic_tm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
