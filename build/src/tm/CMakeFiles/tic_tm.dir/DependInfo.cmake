
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tm/encoding.cc" "src/tm/CMakeFiles/tic_tm.dir/encoding.cc.o" "gcc" "src/tm/CMakeFiles/tic_tm.dir/encoding.cc.o.d"
  "/root/repo/src/tm/explorer.cc" "src/tm/CMakeFiles/tic_tm.dir/explorer.cc.o" "gcc" "src/tm/CMakeFiles/tic_tm.dir/explorer.cc.o.d"
  "/root/repo/src/tm/formulas.cc" "src/tm/CMakeFiles/tic_tm.dir/formulas.cc.o" "gcc" "src/tm/CMakeFiles/tic_tm.dir/formulas.cc.o.d"
  "/root/repo/src/tm/machine.cc" "src/tm/CMakeFiles/tic_tm.dir/machine.cc.o" "gcc" "src/tm/CMakeFiles/tic_tm.dir/machine.cc.o.d"
  "/root/repo/src/tm/simulator.cc" "src/tm/CMakeFiles/tic_tm.dir/simulator.cc.o" "gcc" "src/tm/CMakeFiles/tic_tm.dir/simulator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tic_common.dir/DependInfo.cmake"
  "/root/repo/build/src/fotl/CMakeFiles/tic_fotl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
