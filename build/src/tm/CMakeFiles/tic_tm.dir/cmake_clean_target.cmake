file(REMOVE_RECURSE
  "libtic_tm.a"
)
