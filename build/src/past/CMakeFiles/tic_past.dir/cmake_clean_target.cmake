file(REMOVE_RECURSE
  "libtic_past.a"
)
