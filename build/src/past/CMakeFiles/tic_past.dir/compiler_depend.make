# Empty compiler generated dependencies file for tic_past.
# This may be replaced when dependencies are built.
