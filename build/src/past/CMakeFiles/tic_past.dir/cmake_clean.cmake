file(REMOVE_RECURSE
  "CMakeFiles/tic_past.dir/metric.cc.o"
  "CMakeFiles/tic_past.dir/metric.cc.o.d"
  "CMakeFiles/tic_past.dir/past_monitor.cc.o"
  "CMakeFiles/tic_past.dir/past_monitor.cc.o.d"
  "libtic_past.a"
  "libtic_past.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tic_past.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
