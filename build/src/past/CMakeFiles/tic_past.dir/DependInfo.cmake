
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/past/metric.cc" "src/past/CMakeFiles/tic_past.dir/metric.cc.o" "gcc" "src/past/CMakeFiles/tic_past.dir/metric.cc.o.d"
  "/root/repo/src/past/past_monitor.cc" "src/past/CMakeFiles/tic_past.dir/past_monitor.cc.o" "gcc" "src/past/CMakeFiles/tic_past.dir/past_monitor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tic_common.dir/DependInfo.cmake"
  "/root/repo/build/src/fotl/CMakeFiles/tic_fotl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
