file(REMOVE_RECURSE
  "libtic_checker.a"
)
