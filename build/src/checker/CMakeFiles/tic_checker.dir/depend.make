# Empty dependencies file for tic_checker.
# This may be replaced when dependencies are built.
