file(REMOVE_RECURSE
  "CMakeFiles/tic_checker.dir/analysis.cc.o"
  "CMakeFiles/tic_checker.dir/analysis.cc.o.d"
  "CMakeFiles/tic_checker.dir/extension.cc.o"
  "CMakeFiles/tic_checker.dir/extension.cc.o.d"
  "CMakeFiles/tic_checker.dir/grounding.cc.o"
  "CMakeFiles/tic_checker.dir/grounding.cc.o.d"
  "CMakeFiles/tic_checker.dir/monitor.cc.o"
  "CMakeFiles/tic_checker.dir/monitor.cc.o.d"
  "CMakeFiles/tic_checker.dir/trigger.cc.o"
  "CMakeFiles/tic_checker.dir/trigger.cc.o.d"
  "libtic_checker.a"
  "libtic_checker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tic_checker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
