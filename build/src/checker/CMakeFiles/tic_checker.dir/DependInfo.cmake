
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/checker/analysis.cc" "src/checker/CMakeFiles/tic_checker.dir/analysis.cc.o" "gcc" "src/checker/CMakeFiles/tic_checker.dir/analysis.cc.o.d"
  "/root/repo/src/checker/extension.cc" "src/checker/CMakeFiles/tic_checker.dir/extension.cc.o" "gcc" "src/checker/CMakeFiles/tic_checker.dir/extension.cc.o.d"
  "/root/repo/src/checker/grounding.cc" "src/checker/CMakeFiles/tic_checker.dir/grounding.cc.o" "gcc" "src/checker/CMakeFiles/tic_checker.dir/grounding.cc.o.d"
  "/root/repo/src/checker/monitor.cc" "src/checker/CMakeFiles/tic_checker.dir/monitor.cc.o" "gcc" "src/checker/CMakeFiles/tic_checker.dir/monitor.cc.o.d"
  "/root/repo/src/checker/trigger.cc" "src/checker/CMakeFiles/tic_checker.dir/trigger.cc.o" "gcc" "src/checker/CMakeFiles/tic_checker.dir/trigger.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tic_common.dir/DependInfo.cmake"
  "/root/repo/build/src/fotl/CMakeFiles/tic_fotl.dir/DependInfo.cmake"
  "/root/repo/build/src/ptl/CMakeFiles/tic_ptl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
