
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ptl/automaton.cc" "src/ptl/CMakeFiles/tic_ptl.dir/automaton.cc.o" "gcc" "src/ptl/CMakeFiles/tic_ptl.dir/automaton.cc.o.d"
  "/root/repo/src/ptl/formula.cc" "src/ptl/CMakeFiles/tic_ptl.dir/formula.cc.o" "gcc" "src/ptl/CMakeFiles/tic_ptl.dir/formula.cc.o.d"
  "/root/repo/src/ptl/nnf.cc" "src/ptl/CMakeFiles/tic_ptl.dir/nnf.cc.o" "gcc" "src/ptl/CMakeFiles/tic_ptl.dir/nnf.cc.o.d"
  "/root/repo/src/ptl/parser.cc" "src/ptl/CMakeFiles/tic_ptl.dir/parser.cc.o" "gcc" "src/ptl/CMakeFiles/tic_ptl.dir/parser.cc.o.d"
  "/root/repo/src/ptl/progress.cc" "src/ptl/CMakeFiles/tic_ptl.dir/progress.cc.o" "gcc" "src/ptl/CMakeFiles/tic_ptl.dir/progress.cc.o.d"
  "/root/repo/src/ptl/safety.cc" "src/ptl/CMakeFiles/tic_ptl.dir/safety.cc.o" "gcc" "src/ptl/CMakeFiles/tic_ptl.dir/safety.cc.o.d"
  "/root/repo/src/ptl/tableau.cc" "src/ptl/CMakeFiles/tic_ptl.dir/tableau.cc.o" "gcc" "src/ptl/CMakeFiles/tic_ptl.dir/tableau.cc.o.d"
  "/root/repo/src/ptl/word.cc" "src/ptl/CMakeFiles/tic_ptl.dir/word.cc.o" "gcc" "src/ptl/CMakeFiles/tic_ptl.dir/word.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tic_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
