file(REMOVE_RECURSE
  "libtic_ptl.a"
)
