file(REMOVE_RECURSE
  "CMakeFiles/tic_ptl.dir/automaton.cc.o"
  "CMakeFiles/tic_ptl.dir/automaton.cc.o.d"
  "CMakeFiles/tic_ptl.dir/formula.cc.o"
  "CMakeFiles/tic_ptl.dir/formula.cc.o.d"
  "CMakeFiles/tic_ptl.dir/nnf.cc.o"
  "CMakeFiles/tic_ptl.dir/nnf.cc.o.d"
  "CMakeFiles/tic_ptl.dir/parser.cc.o"
  "CMakeFiles/tic_ptl.dir/parser.cc.o.d"
  "CMakeFiles/tic_ptl.dir/progress.cc.o"
  "CMakeFiles/tic_ptl.dir/progress.cc.o.d"
  "CMakeFiles/tic_ptl.dir/safety.cc.o"
  "CMakeFiles/tic_ptl.dir/safety.cc.o.d"
  "CMakeFiles/tic_ptl.dir/tableau.cc.o"
  "CMakeFiles/tic_ptl.dir/tableau.cc.o.d"
  "CMakeFiles/tic_ptl.dir/word.cc.o"
  "CMakeFiles/tic_ptl.dir/word.cc.o.d"
  "libtic_ptl.a"
  "libtic_ptl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tic_ptl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
