# Empty compiler generated dependencies file for tic_ptl.
# This may be replaced when dependencies are built.
