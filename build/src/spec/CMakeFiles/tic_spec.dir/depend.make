# Empty dependencies file for tic_spec.
# This may be replaced when dependencies are built.
