file(REMOVE_RECURSE
  "libtic_spec.a"
)
