file(REMOVE_RECURSE
  "CMakeFiles/tic_spec.dir/spec.cc.o"
  "CMakeFiles/tic_spec.dir/spec.cc.o.d"
  "libtic_spec.a"
  "libtic_spec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tic_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
