# Empty dependencies file for tic_common.
# This may be replaced when dependencies are built.
