file(REMOVE_RECURSE
  "libtic_common.a"
)
