file(REMOVE_RECURSE
  "CMakeFiles/tic_common.dir/status.cc.o"
  "CMakeFiles/tic_common.dir/status.cc.o.d"
  "libtic_common.a"
  "libtic_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tic_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
