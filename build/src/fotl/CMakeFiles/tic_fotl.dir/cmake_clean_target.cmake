file(REMOVE_RECURSE
  "libtic_fotl.a"
)
