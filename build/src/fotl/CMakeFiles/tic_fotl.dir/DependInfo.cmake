
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fotl/classify.cc" "src/fotl/CMakeFiles/tic_fotl.dir/classify.cc.o" "gcc" "src/fotl/CMakeFiles/tic_fotl.dir/classify.cc.o.d"
  "/root/repo/src/fotl/evaluator.cc" "src/fotl/CMakeFiles/tic_fotl.dir/evaluator.cc.o" "gcc" "src/fotl/CMakeFiles/tic_fotl.dir/evaluator.cc.o.d"
  "/root/repo/src/fotl/factory.cc" "src/fotl/CMakeFiles/tic_fotl.dir/factory.cc.o" "gcc" "src/fotl/CMakeFiles/tic_fotl.dir/factory.cc.o.d"
  "/root/repo/src/fotl/normalize.cc" "src/fotl/CMakeFiles/tic_fotl.dir/normalize.cc.o" "gcc" "src/fotl/CMakeFiles/tic_fotl.dir/normalize.cc.o.d"
  "/root/repo/src/fotl/parser.cc" "src/fotl/CMakeFiles/tic_fotl.dir/parser.cc.o" "gcc" "src/fotl/CMakeFiles/tic_fotl.dir/parser.cc.o.d"
  "/root/repo/src/fotl/printer.cc" "src/fotl/CMakeFiles/tic_fotl.dir/printer.cc.o" "gcc" "src/fotl/CMakeFiles/tic_fotl.dir/printer.cc.o.d"
  "/root/repo/src/fotl/transform.cc" "src/fotl/CMakeFiles/tic_fotl.dir/transform.cc.o" "gcc" "src/fotl/CMakeFiles/tic_fotl.dir/transform.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tic_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
