file(REMOVE_RECURSE
  "CMakeFiles/tic_fotl.dir/classify.cc.o"
  "CMakeFiles/tic_fotl.dir/classify.cc.o.d"
  "CMakeFiles/tic_fotl.dir/evaluator.cc.o"
  "CMakeFiles/tic_fotl.dir/evaluator.cc.o.d"
  "CMakeFiles/tic_fotl.dir/factory.cc.o"
  "CMakeFiles/tic_fotl.dir/factory.cc.o.d"
  "CMakeFiles/tic_fotl.dir/normalize.cc.o"
  "CMakeFiles/tic_fotl.dir/normalize.cc.o.d"
  "CMakeFiles/tic_fotl.dir/parser.cc.o"
  "CMakeFiles/tic_fotl.dir/parser.cc.o.d"
  "CMakeFiles/tic_fotl.dir/printer.cc.o"
  "CMakeFiles/tic_fotl.dir/printer.cc.o.d"
  "CMakeFiles/tic_fotl.dir/transform.cc.o"
  "CMakeFiles/tic_fotl.dir/transform.cc.o.d"
  "libtic_fotl.a"
  "libtic_fotl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tic_fotl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
