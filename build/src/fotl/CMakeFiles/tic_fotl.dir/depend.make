# Empty dependencies file for tic_fotl.
# This may be replaced when dependencies are built.
