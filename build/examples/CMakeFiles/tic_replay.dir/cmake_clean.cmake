file(REMOVE_RECURSE
  "CMakeFiles/tic_replay.dir/tic_replay.cpp.o"
  "CMakeFiles/tic_replay.dir/tic_replay.cpp.o.d"
  "tic_replay"
  "tic_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tic_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
