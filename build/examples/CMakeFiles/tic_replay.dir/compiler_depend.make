# Empty compiler generated dependencies file for tic_replay.
# This may be replaced when dependencies are built.
