file(REMOVE_RECURSE
  "CMakeFiles/access_audit.dir/access_audit.cpp.o"
  "CMakeFiles/access_audit.dir/access_audit.cpp.o.d"
  "access_audit"
  "access_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/access_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
