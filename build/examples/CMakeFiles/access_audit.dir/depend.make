# Empty dependencies file for access_audit.
# This may be replaced when dependencies are built.
