file(REMOVE_RECURSE
  "CMakeFiles/undecidability_tour.dir/undecidability_tour.cpp.o"
  "CMakeFiles/undecidability_tour.dir/undecidability_tour.cpp.o.d"
  "undecidability_tour"
  "undecidability_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/undecidability_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
