# Empty dependencies file for undecidability_tour.
# This may be replaced when dependencies are built.
