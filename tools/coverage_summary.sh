#!/bin/sh
# Aggregates gcov line coverage for src/ after a `coverage`-preset build has
# run its tests: finds every .gcda in the build tree, runs gcov on it, and
# prints a per-file + total summary. Prefers lcov/gcovr when installed (nicer
# reports), falls back to plain gcov (always present with GCC).
#
# Usage: coverage_summary.sh <build-dir>   (SRC_DIR env = repo root)

set -eu
BUILD_DIR="${1:?usage: coverage_summary.sh <build-dir>}"
SRC_DIR="${SRC_DIR:-$(cd "$(dirname "$0")/.." && pwd)}"

if command -v lcov >/dev/null 2>&1; then
  lcov --capture --directory "$BUILD_DIR" --output-file "$BUILD_DIR/coverage.info" \
       --rc lcov_branch_coverage=0 >/dev/null
  lcov --extract "$BUILD_DIR/coverage.info" "$SRC_DIR/src/*" \
       --output-file "$BUILD_DIR/coverage.src.info" >/dev/null
  lcov --list "$BUILD_DIR/coverage.src.info"
  exit 0
fi
if command -v gcovr >/dev/null 2>&1; then
  gcovr --root "$SRC_DIR" --filter "$SRC_DIR/src/" "$BUILD_DIR"
  exit 0
fi

# Plain-gcov fallback: one "file,covered,total" record per src/ source.
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT
find "$BUILD_DIR" -name '*.gcda' | while read -r gcda; do
  gcov -n -s "$SRC_DIR" "$gcda" 2>/dev/null
done | awk -v src="$SRC_DIR/src/" '
  # POSIX awk only (mawk has no asorti): aggregate here, sort outside.
  /^File / { f = $2; gsub(/\x27/, "", f); keep = index(f, "src/") == 1 || index(f, src) == 1 }
  /^Lines executed:/ && keep {
    split($2, parts, ":"); p = parts[2]; gsub(/%/, "", p);
    lines[f] += $4; cov[f] += p / 100.0 * $4;
  }
  END { for (f in lines) printf "%s %d %d\n", f, lines[f], cov[f]; }
' | sort | awk '
  BEGIN { printf "%-52s %10s %10s %8s\n", "file (src/)", "lines", "covered", "pct"; }
  {
    pct = $2 > 0 ? 100.0 * $3 / $2 : 0;
    printf "%-52s %10d %10d %7.1f%%\n", $1, $2, $3, pct;
    total += $2; totcov += $3;
  }
  END {
    printf "%-52s %10d %10d %7.1f%%\n", "TOTAL", total, totcov,
           total > 0 ? 100.0 * totcov / total : 0;
  }'
