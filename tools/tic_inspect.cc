// tic_inspect: offline viewer for the observability artifacts the monitor
// emits — flight-recorder dumps (recorder.h, "TICREC01"), Chrome traces
// (bench --trace), and bench --json record files. Renders a merged timeline,
// top-N hottest letters/cohorts/spans, a verdict-flip audit log, and a
// Prometheus-style text exposition.
//
//   tic_inspect <file>... [--timeline=N] [--top=N] [--audit] [--prom]
//
// File kinds are sniffed from content (magic / key names), so dumps, traces,
// and record files can be mixed freely in one invocation. Timestamps are
// shown relative to each source's first event (recorder ticks and trace
// microseconds have different epochs; relative time is what merges honestly).
// Empty inputs are fine: the tool reports "no events" and exits 0.

#include <algorithm>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/telemetry/recorder.h"

namespace {

using tic::telemetry::EventType;
using tic::telemetry::EventTypeName;
using tic::telemetry::RecordedEvent;

// ---------------------------------------------------------------------------
// Tiny tolerant JSON scanning (just enough for the two shapes we produce:
// bench --json record files and Chrome traces). Not a general parser.

struct JsonCursor {
  const char* p;
  const char* end;
  bool AtEnd() const { return p >= end; }
  void SkipWs() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r' ||
                       *p == ',' || *p == ':')) {
      ++p;
    }
  }
};

bool ParseJsonString(JsonCursor* c, std::string* out) {
  c->SkipWs();
  if (c->AtEnd() || *c->p != '"') return false;
  ++c->p;
  out->clear();
  while (!c->AtEnd() && *c->p != '"') {
    if (*c->p == '\\' && c->p + 1 < c->end) ++c->p;
    out->push_back(*c->p++);
  }
  if (c->AtEnd()) return false;
  ++c->p;  // closing quote
  return true;
}

bool ParseJsonNumber(JsonCursor* c, double* out) {
  c->SkipWs();
  char* after = nullptr;
  double v = std::strtod(c->p, &after);
  if (after == c->p) return false;
  c->p = after;
  *out = v;
  return true;
}

// Advances past one JSON value of any kind (object/array/string/number/word).
void SkipJsonValue(JsonCursor* c) {
  c->SkipWs();
  if (c->AtEnd()) return;
  char ch = *c->p;
  if (ch == '{' || ch == '[') {
    char close = ch == '{' ? '}' : ']';
    int depth = 0;
    bool in_str = false;
    while (!c->AtEnd()) {
      char d = *c->p++;
      if (in_str) {
        if (d == '\\' && !c->AtEnd()) ++c->p;
        else if (d == '"') in_str = false;
        continue;
      }
      if (d == '"') in_str = true;
      else if (d == ch) ++depth;
      else if (d == close && --depth == 0) return;
    }
    return;
  }
  if (ch == '"') {
    std::string tmp;
    ParseJsonString(c, &tmp);
    return;
  }
  while (!c->AtEnd() && *c->p != ',' && *c->p != '}' && *c->p != ']') ++c->p;
}

// ---------------------------------------------------------------------------
// Unified timeline item (any source).

struct TimelineItem {
  double rel_us = 0;  // relative to the source's first event
  std::string source;
  std::string text;
};

struct VerdictFlip {
  double rel_us = 0;
  uint64_t time = 0;
  bool satisfied = false;
  uint64_t instances = 0;
  std::string source;
};

struct Inspection {
  std::vector<TimelineItem> timeline;
  std::vector<VerdictFlip> audit;
  std::map<std::string, uint64_t> event_counts;       // recorder, by type
  std::map<uint64_t, uint64_t> letter_flips;          // letter id -> flips
  std::map<uint64_t, uint64_t> cohort_activity;       // cohort -> owned flips
  std::map<uint64_t, uint64_t> instance_activity;     // slot key -> flips
  std::map<std::string, std::pair<uint64_t, double>> span_totals;  // n, us
  std::vector<std::string> bench_lines;               // rendered record rows
  std::map<std::string, double> prom;                 // exposition values
  size_t watchdog_fires = 0;
  size_t sources = 0;
  size_t events = 0;
};

std::string DescribeEvent(const RecordedEvent& e) {
  char buf[192];
  switch (e.type) {
    case EventType::kTxnApplied:
      std::snprintf(buf, sizeof(buf), "txn_applied t=%" PRIu64 " ops=%" PRIu64
                    " instances=%" PRIu64, e.a, e.b, e.c);
      break;
    case EventType::kLetterFlip:
      if (e.c == ~uint64_t{0}) {
        std::snprintf(buf, sizeof(buf),
                      "letter_flip letter=%" PRIu64 " value=%" PRIu64
                      " owner=joint", e.a, e.b);
      } else {
        std::snprintf(buf, sizeof(buf),
                      "letter_flip letter=%" PRIu64 " value=%" PRIu64
                      " cohort=%" PRIu64 " slot=%" PRIu64,
                      e.a, e.b, e.c >> 32, e.c & 0xFFFFFFFFu);
      }
      break;
    case EventType::kCohortRebuild:
      std::snprintf(buf, sizeof(buf), "cohort_rebuild cohorts=%" PRIu64
                    " slots=%" PRIu64 " joint=%" PRIu64, e.a, e.b, e.c);
      break;
    case EventType::kCohortMinimize:
      std::snprintf(buf, sizeof(buf), "cohort_minimize collapsed=%" PRIu64
                    " sets=%" PRIu64 " cohort=%" PRIu64, e.a, e.b, e.c);
      break;
    case EventType::kEpochReset:
      std::snprintf(buf, sizeof(buf), "epoch_reset t=%" PRIu64
                    " instances=%" PRIu64 " word_runs=%" PRIu64, e.a, e.b, e.c);
      break;
    case EventType::kAutomatonCompile:
      std::snprintf(buf, sizeof(buf), "automaton_compile closure=%" PRIu64
                    " letters=%" PRIu64 " state_sets=%" PRIu64, e.a, e.b, e.c);
      break;
    case EventType::kVerdictChange:
      std::snprintf(buf, sizeof(buf), "verdict_change t=%" PRIu64
                    " satisfied=%" PRIu64 " instances=%" PRIu64, e.a, e.b, e.c);
      break;
    case EventType::kMemoSpill:
      std::snprintf(buf, sizeof(buf), "memo_spill state=%" PRIu64
                    " memo=%" PRIu64 " sig=%" PRIu64, e.a, e.b, e.c);
      break;
    case EventType::kWatchdogFire:
      std::snprintf(buf, sizeof(buf), "watchdog_fire elapsed_ns=%" PRIu64
                    " deadline_ms=%" PRIu64 " op=%" PRIu64, e.a, e.b, e.c);
      break;
    default:
      std::snprintf(buf, sizeof(buf), "%s a=%" PRIu64 " b=%" PRIu64
                    " c=%" PRIu64, EventTypeName(e.type), e.a, e.b, e.c);
      break;
  }
  return buf;
}

void IngestRecorderDump(const std::string& name,
                        const std::vector<RecordedEvent>& events,
                        Inspection* out) {
  ++out->sources;
  out->events += events.size();
  uint64_t base = events.empty() ? 0 : events.front().ts_ns;
  for (const RecordedEvent& e : events) {
    double rel_us = static_cast<double>(e.ts_ns - base) / 1e3;
    std::string key = EventTypeName(e.type);
    ++out->event_counts[key];
    ++out->prom["tic_recorder_events_total{type=\"" + key + "\"}"];
    switch (e.type) {
      case EventType::kLetterFlip:
        ++out->letter_flips[e.a];
        if (e.c != ~uint64_t{0}) {
          ++out->cohort_activity[e.c >> 32];
          ++out->instance_activity[e.c];
        }
        break;
      case EventType::kVerdictChange:
        out->audit.push_back(VerdictFlip{rel_us, e.a, e.b != 0, e.c, name});
        break;
      case EventType::kWatchdogFire:
        ++out->watchdog_fires;
        out->audit.push_back(VerdictFlip{rel_us, e.a, false, 0, name + " WATCHDOG"});
        break;
      default:
        break;
    }
    char prefix[96];
    std::snprintf(prefix, sizeof(prefix), "%+12.3fus tid=%u seq=%" PRIu64 "  ",
                  rel_us, e.tid, e.seq);
    out->timeline.push_back(TimelineItem{rel_us, name, prefix + DescribeEvent(e)});
  }
}

void IngestChromeTrace(const std::string& name, const std::string& text,
                       Inspection* out) {
  ++out->sources;
  size_t at = text.find("\"traceEvents\"");
  if (at == std::string::npos) return;
  JsonCursor c{text.data() + at + 13, text.data() + text.size()};
  c.SkipWs();
  if (c.AtEnd() || *c.p != '[') return;
  ++c.p;
  double base_ts = -1;
  while (true) {
    c.SkipWs();
    if (c.AtEnd() || *c.p == ']') break;
    if (*c.p != '{') { SkipJsonValue(&c); continue; }
    ++c.p;
    std::string ev_name, ph;
    double ts = 0, dur = 0, tid = 0;
    while (true) {
      c.SkipWs();
      if (c.AtEnd() || *c.p == '}') { if (!c.AtEnd()) ++c.p; break; }
      std::string key;
      if (!ParseJsonString(&c, &key)) return;
      if (key == "name") ParseJsonString(&c, &ev_name);
      else if (key == "ph") ParseJsonString(&c, &ph);
      else if (key == "ts") ParseJsonNumber(&c, &ts);
      else if (key == "dur") ParseJsonNumber(&c, &dur);
      else if (key == "tid") ParseJsonNumber(&c, &tid);
      else SkipJsonValue(&c);
    }
    if (ph != "X") continue;
    ++out->events;
    if (base_ts < 0) base_ts = ts;
    auto& tot = out->span_totals[ev_name];
    ++tot.first;
    tot.second += dur;
    out->prom["tic_span_us_total{name=\"" + ev_name + "\"}"] += dur;
    char buf[192];
    std::snprintf(buf, sizeof(buf), "%+12.3fus tid=%-3d span %s dur=%.3fus",
                  ts - base_ts, static_cast<int>(tid), ev_name.c_str(), dur);
    out->timeline.push_back(TimelineItem{ts - base_ts, name, buf});
  }
}

void IngestBenchJson(const std::string& name, const std::string& text,
                     Inspection* out) {
  ++out->sources;
  size_t at = text.find("\"meta\"");
  if (at != std::string::npos) {
    JsonCursor c{text.data() + at + 6, text.data() + text.size()};
    c.SkipWs();
    if (!c.AtEnd() && *c.p == '{') {
      ++c.p;
      std::string meta_line = "  meta[" + name + "]:";
      while (true) {
        c.SkipWs();
        if (c.AtEnd() || *c.p == '}') break;
        std::string key;
        if (!ParseJsonString(&c, &key)) break;
        c.SkipWs();
        if (!c.AtEnd() && *c.p == '"') {
          std::string v;
          ParseJsonString(&c, &v);
          meta_line += " " + key + "=" + v;
        } else {
          double v = 0;
          if (!ParseJsonNumber(&c, &v)) { SkipJsonValue(&c); continue; }
          char buf[48];
          std::snprintf(buf, sizeof(buf), " %s=%g", key.c_str(), v);
          meta_line += buf;
        }
      }
      out->bench_lines.push_back(meta_line);
    }
  }
  at = text.find("\"records\"");
  if (at == std::string::npos) return;
  JsonCursor c{text.data() + at + 9, text.data() + text.size()};
  c.SkipWs();
  if (c.AtEnd() || *c.p != '[') return;
  ++c.p;
  while (true) {
    c.SkipWs();
    if (c.AtEnd() || *c.p == ']') break;
    if (*c.p != '{') { SkipJsonValue(&c); continue; }
    ++c.p;
    std::string rec_name, params;
    double ns_per_op = 0;
    while (true) {
      c.SkipWs();
      if (c.AtEnd() || *c.p == '}') { if (!c.AtEnd()) ++c.p; break; }
      std::string key;
      if (!ParseJsonString(&c, &key)) return;
      if (key == "name") ParseJsonString(&c, &rec_name);
      else if (key == "params") ParseJsonString(&c, &params);
      else if (key == "ns_per_op") ParseJsonNumber(&c, &ns_per_op);
      else SkipJsonValue(&c);
    }
    ++out->events;
    char buf[256];
    std::snprintf(buf, sizeof(buf), "  %-44s %-40s %14.1f ns/op",
                  rec_name.c_str(), params.c_str(), ns_per_op);
    out->bench_lines.push_back(buf);
    out->prom["tic_bench_ns_per_op{name=\"" + rec_name + "\",params=\"" +
              params + "\"}"] = ns_per_op;
  }
}

template <typename Map>
std::vector<std::pair<typename Map::key_type, uint64_t>> TopN(const Map& m,
                                                              size_t n) {
  std::vector<std::pair<typename Map::key_type, uint64_t>> v(m.begin(), m.end());
  std::stable_sort(v.begin(), v.end(),
                   [](const auto& a, const auto& b) { return a.second > b.second; });
  if (v.size() > n) v.resize(n);
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  size_t timeline_n = 40;
  size_t top_n = 10;
  bool want_prom = false;
  bool want_audit = false;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--timeline=", 0) == 0) {
      timeline_n = std::strtoul(a.c_str() + 11, nullptr, 10);
    } else if (a.rfind("--top=", 0) == 0) {
      top_n = std::strtoul(a.c_str() + 6, nullptr, 10);
    } else if (a == "--prom") {
      want_prom = true;
    } else if (a == "--audit") {
      want_audit = true;
    } else if (a == "--help" || a == "-h") {
      std::printf("usage: tic_inspect <file>... [--timeline=N] [--top=N] "
                  "[--audit] [--prom]\n"
                  "files: recorder dumps (TICREC01), Chrome traces "
                  "(--trace), bench --json records\n");
      return 0;
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "unknown flag %s\n", a.c_str());
      return 2;
    } else {
      files.push_back(a);
    }
  }
  if (files.empty()) {
    std::fprintf(stderr, "usage: tic_inspect <file>... [--timeline=N] "
                 "[--top=N] [--audit] [--prom]\n");
    return 2;
  }

  Inspection insp;
  for (const std::string& path : files) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    std::string text = ss.str();
    if (text.size() >= 8 && std::memcmp(text.data(), "TICREC01", 8) == 0) {
      std::vector<RecordedEvent> events;
      std::string error;
      if (!tic::telemetry::ParseRecorderDump(text.data(), text.size(), &events,
                                             &error)) {
        std::fprintf(stderr, "%s: bad recorder dump: %s\n", path.c_str(),
                     error.c_str());
        return 1;
      }
      IngestRecorderDump(path, events, &insp);
    } else if (text.find("\"traceEvents\"") != std::string::npos) {
      IngestChromeTrace(path, text, &insp);
    } else if (text.find("\"records\"") != std::string::npos) {
      IngestBenchJson(path, text, &insp);
    } else {
      std::fprintf(stderr, "%s: unrecognized file kind (expected TICREC01 "
                   "dump, Chrome trace, or bench --json records)\n",
                   path.c_str());
      return 1;
    }
  }

  if (want_prom) {
    // Prometheus text exposition only: machine-readable, nothing else.
    std::printf("# HELP tic_recorder_events_total flight-recorder events by type\n");
    std::printf("# TYPE tic_recorder_events_total counter\n");
    for (const auto& [k, v] : insp.prom) std::printf("%s %.17g\n", k.c_str(), v);
    std::printf("tic_recorder_watchdog_fires_total %zu\n", insp.watchdog_fires);
    return 0;
  }

  std::printf("tic_inspect: %zu source(s), %zu event(s)\n", insp.sources,
              insp.events);
  if (insp.events == 0) {
    std::printf("no events recorded (empty dump is fine: nothing ran, or the "
                "recorder was off)\n");
    return 0;
  }

  if (!insp.bench_lines.empty()) {
    std::printf("\n== bench records ==\n");
    for (const std::string& l : insp.bench_lines) std::printf("%s\n", l.c_str());
  }

  if (!insp.event_counts.empty()) {
    std::printf("\n== recorder event counts ==\n");
    for (const auto& [k, v] : insp.event_counts) {
      std::printf("  %-20s %10" PRIu64 "\n", k.c_str(), v);
    }
  }

  if (!insp.span_totals.empty()) {
    std::printf("\n== hottest spans (by total time) ==\n");
    std::vector<std::pair<std::string, std::pair<uint64_t, double>>> spans(
        insp.span_totals.begin(), insp.span_totals.end());
    std::stable_sort(spans.begin(), spans.end(), [](const auto& a, const auto& b) {
      return a.second.second > b.second.second;
    });
    if (spans.size() > top_n) spans.resize(top_n);
    for (const auto& [k, nv] : spans) {
      std::printf("  %-36s n=%-8" PRIu64 " total=%.3fus\n", k.c_str(), nv.first,
                  nv.second);
    }
  }

  if (!insp.letter_flips.empty()) {
    std::printf("\n== hottest letters (by flips) ==\n");
    for (const auto& [k, v] : TopN(insp.letter_flips, top_n)) {
      std::printf("  letter %-10" PRIu64 " %10" PRIu64 " flips\n", k, v);
    }
  }
  if (!insp.cohort_activity.empty()) {
    std::printf("\n== hottest cohorts (by owned letter flips) ==\n");
    for (const auto& [k, v] : TopN(insp.cohort_activity, top_n)) {
      std::printf("  cohort %-10" PRIu64 " %10" PRIu64 " flips\n", k, v);
    }
  }
  if (!insp.instance_activity.empty()) {
    std::printf("\n== hottest cohort slots ==\n");
    for (const auto& [k, v] : TopN(insp.instance_activity, top_n)) {
      std::printf("  cohort %" PRIu64 " slot %-8" PRIu64 " %10" PRIu64 " flips\n",
                  k >> 32, k & 0xFFFFFFFFu, v);
    }
  }

  if (want_audit || !insp.audit.empty()) {
    std::printf("\n== verdict audit log ==\n");
    if (insp.audit.empty()) std::printf("  (no verdict changes recorded)\n");
    for (const VerdictFlip& f : insp.audit) {
      std::printf("  %+12.3fus  t=%-8" PRIu64 " satisfied=%d instances=%-8" PRIu64
                  " [%s]\n", f.rel_us, f.time, f.satisfied ? 1 : 0, f.instances,
                  f.source.c_str());
    }
  }
  if (insp.watchdog_fires > 0) {
    std::printf("\n!! %zu watchdog fire(s) recorded — at least one update "
                "overran its deadline\n", insp.watchdog_fires);
  }

  if (timeline_n > 0 && !insp.timeline.empty()) {
    std::printf("\n== timeline (last %zu of %zu; per-source relative time) ==\n",
                std::min(timeline_n, insp.timeline.size()), insp.timeline.size());
    std::stable_sort(insp.timeline.begin(), insp.timeline.end(),
                     [](const TimelineItem& a, const TimelineItem& b) {
                       return a.rel_us < b.rel_us;
                     });
    size_t start = insp.timeline.size() > timeline_n
                       ? insp.timeline.size() - timeline_n
                       : 0;
    for (size_t i = start; i < insp.timeline.size(); ++i) {
      std::printf("  %s\n", insp.timeline[i].text.c_str());
    }
  }
  return 0;
}
