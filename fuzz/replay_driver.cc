// Standalone driver linked into the fuzz targets when libFuzzer is not
// available (-DTIC_FUZZ=OFF, the default — the GCC toolchain cannot build
// -fsanitize=fuzzer). It gives every CI preset the same entry point a real
// fuzzer binary has:
//
//   fuzz_target corpus_dir file1 file2   # replay: run every input once
//   fuzz_target --fuzz-seconds=30 --seed=1 [--max-len=512]
//                                        # bounded fuzz: random byte buffers
//                                        # until the wall-clock budget is spent
//
// Both modes exit 0 iff no input made the target trap, so the fuzz-smoke
// ctest label is a plain regression suite over the committed corpus plus a
// short random exploration.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

int RunFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open input: %s\n", path.c_str());
    return 1;
  }
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                         bytes.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  long fuzz_seconds = 0;
  uint64_t seed = 1;
  size_t max_len = 512;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--fuzz-seconds=", 0) == 0) {
      fuzz_seconds = std::stol(arg.substr(15));
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed = std::stoull(arg.substr(7));
    } else if (arg.rfind("--max-len=", 0) == 0) {
      max_len = std::stoull(arg.substr(10));
    } else {
      paths.push_back(arg);
    }
  }

  size_t executed = 0;
  for (const std::string& p : paths) {
    std::error_code ec;
    if (std::filesystem::is_directory(p, ec)) {
      std::vector<std::string> files;
      for (const auto& entry : std::filesystem::directory_iterator(p)) {
        if (entry.is_regular_file()) files.push_back(entry.path().string());
      }
      std::sort(files.begin(), files.end());  // deterministic replay order
      for (const std::string& f : files) {
        if (RunFile(f) != 0) return 1;
        ++executed;
      }
    } else {
      if (RunFile(p) != 0) return 1;
      ++executed;
    }
  }
  std::printf("replayed %zu corpus input(s)\n", executed);

  if (fuzz_seconds > 0) {
    std::mt19937_64 rng(seed);
    auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(fuzz_seconds);
    size_t runs = 0;
    std::vector<uint8_t> buf;
    while (std::chrono::steady_clock::now() < deadline) {
      size_t len = static_cast<size_t>(rng() % (max_len + 1));
      buf.resize(len);
      for (uint8_t& b : buf) b = static_cast<uint8_t>(rng());
      LLVMFuzzerTestOneInput(buf.data(), buf.size());
      ++runs;
    }
    std::printf("bounded fuzz: %zu run(s) in %lds (seed %llu)\n", runs,
                fuzz_seconds, static_cast<unsigned long long>(seed));
  }
  return 0;
}
