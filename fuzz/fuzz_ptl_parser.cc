// Fuzz target: the propositional-TL parser. Any byte string is fed to
// ptl::Parse; inputs that parse must round-trip — printing the formula and
// reparsing the printed text has to intern the *identical* hash-consed node.
// Traps (aborts) on a round-trip mismatch; parse errors are fine.

#include <cstdint>
#include <cstdlib>
#include <cstdio>
#include <memory>
#include <string>

#include "ptl/formula.h"
#include "ptl/parser.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using namespace tic;
  if (size > 4096) return 0;  // depth-bounded: keep recursive descent shallow
  std::string text(reinterpret_cast<const char*>(data), size);

  auto vocab = std::make_shared<ptl::PropVocabulary>();
  ptl::Factory fac(vocab);
  auto parsed = ptl::Parse(&fac, text);
  if (!parsed.ok()) return 0;

  std::string printed = ptl::ToString(fac, *parsed);
  auto reparsed = ptl::Parse(&fac, printed);
  if (!reparsed.ok()) {
    std::fprintf(stderr, "ptl print/parse round-trip broke: %s\n  printed: %s\n",
                 reparsed.status().ToString().c_str(), printed.c_str());
    std::abort();
  }
  if (*reparsed != *parsed) {
    std::fprintf(stderr, "ptl round-trip changed the formula\n  printed: %s\n",
                 printed.c_str());
    std::abort();
  }
  return 0;
}
