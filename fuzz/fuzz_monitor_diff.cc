// Fuzz target: the monitor differential oracles, driven by the byte-stream
// mode of the shared structure-aware generator. The fuzzer's entropy becomes
// a well-formed (safety sentence, update stream) case; the case then has to
// pass three paper-derived identities:
//   - automaton and progression backends agree per update,
//   - the incremental monitor agrees with the from-scratch batch check,
//   - Pref(C) is prefix-closed (verdicts are monotone, violations permanent).
// Any violation prints the self-contained reproducer and traps.

#include <cstdint>
#include <cstdlib>
#include <cstdio>

#include "testing/generators.h"
#include "testing/oracles.h"
#include "testing/reproducer.h"
#include "testing/rng.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using namespace tic;
  if (size > 256) size = 256;  // ~64 draws: keeps cases small and execs fast
  testing::Entropy ent(data, size);

  testing::SafetyCaseOptions options;
  options.max_preds = 3;
  options.max_vars = 2;
  options.max_depth = 3;
  options.min_stream = 3;
  options.max_stream = 6;
  options.universe = {1, 2};
  options.fresh_element = 3;  // exercise the epoch recompile + replay path
  testing::FotlCase c = testing::GenerateSafetyCase(&ent, options);

  for (auto* oracle : {&testing::BackendVerdictsAgree,
                       &testing::MonitorMatchesBatch,
                       &testing::PrefixClosureHolds}) {
    auto result = (*oracle)(c);
    if (!result.ok()) {
      std::fprintf(stderr, "generated case rejected by the checker: %s\n%s",
                   result.status().ToString().c_str(),
                   testing::SerializeCase(c).c_str());
      std::abort();
    }
    if (!result->pass) {
      std::fprintf(stderr, "oracle violation:\n%s\n", result->detail.c_str());
      std::abort();
    }
  }
  return 0;
}
