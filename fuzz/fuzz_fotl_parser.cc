// Fuzz target: the FOTL parser, over a fixed small vocabulary (unary p, r;
// binary q; constant c). Successfully parsed formulas must survive the
// classifier (pure traversal — any crash is a bug) and round-trip through the
// printer to the identical hash-consed node.

#include <cstdint>
#include <cstdlib>
#include <cstdio>
#include <memory>
#include <string>

#include "fotl/classify.h"
#include "fotl/factory.h"
#include "fotl/parser.h"
#include "fotl/printer.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using namespace tic;
  if (size > 4096) return 0;
  std::string text(reinterpret_cast<const char*>(data), size);

  auto v = std::make_shared<Vocabulary>();
  (void)*v->AddPredicate("p", 1);
  (void)*v->AddPredicate("q", 2);
  (void)*v->AddPredicate("r", 1);
  (void)*v->AddConstant("c");
  auto vocab = VocabularyPtr(v);
  fotl::FormulaFactory fac(vocab);

  auto parsed = fotl::Parse(&fac, text);
  if (!parsed.ok()) return 0;

  // The classifier must terminate and agree with the node's own flags.
  fotl::Classification cls = fotl::Classify(*parsed);
  if (cls.pure_first_order != (*parsed)->is_pure_first_order()) {
    std::fprintf(stderr, "classifier disagrees with node flags on: %s\n",
                 fotl::ToString(fac, *parsed).c_str());
    std::abort();
  }

  std::string printed = fotl::ToString(fac, *parsed);
  auto reparsed = fotl::Parse(&fac, printed);
  if (!reparsed.ok()) {
    std::fprintf(stderr, "fotl print/parse round-trip broke: %s\n  printed: %s\n",
                 reparsed.status().ToString().c_str(), printed.c_str());
    std::abort();
  }
  if (*reparsed != *parsed) {
    std::fprintf(stderr, "fotl round-trip changed the formula\n  printed: %s\n",
                 printed.c_str());
    std::abort();
  }
  return 0;
}
