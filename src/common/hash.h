#ifndef TIC_COMMON_HASH_H_
#define TIC_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>

namespace tic {

/// \brief Mixes a new value into a running hash (boost::hash_combine recipe, 64-bit).
inline void HashCombine(size_t* seed, size_t value) {
  *seed ^= value + 0x9e3779b97f4a7c15ULL + (*seed << 12) + (*seed >> 4);
}

/// \brief Hashes all arguments into one seed.
template <typename... Ts>
size_t HashAll(const Ts&... values) {
  size_t seed = 0;
  (HashCombine(&seed, std::hash<Ts>{}(values)), ...);
  return seed;
}

}  // namespace tic

#endif  // TIC_COMMON_HASH_H_
