#ifndef TIC_COMMON_STATUS_H_
#define TIC_COMMON_STATUS_H_

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <utility>

namespace tic {

/// \brief Error categories used across the library.
///
/// Modeled after the Arrow/RocksDB convention: public entry points that can
/// fail return a Status (or a Result<T>) rather than throwing exceptions.
enum class StatusCode : int8_t {
  kOk = 0,
  kInvalidArgument = 1,   ///< caller passed malformed input (bad formula, bad arity, ...)
  kParseError = 2,        ///< textual formula/machine description failed to parse
  kNotSupported = 3,      ///< operation outside the decidable fragment handled here
  kOutOfRange = 4,        ///< index/time instant outside the history
  kResourceExhausted = 5, ///< configured limit (node budget, step budget) exceeded
  kInternal = 6,          ///< invariant violation inside the library (a bug)
  kNotFound = 7,          ///< lookup of a named symbol/predicate failed
  kAlreadyExists = 8,     ///< duplicate registration of a symbol
};

/// \brief Returns a human-readable name for a status code ("OK", "ParseError", ...).
const char* StatusCodeToString(StatusCode code);

/// \brief A success-or-error value, cheap to pass by value in the success case.
///
/// The OK status carries no allocation; error states carry a code and message.
class Status {
 public:
  /// Constructs an OK status.
  Status() noexcept = default;

  Status(StatusCode code, std::string msg)
      : rep_(code == StatusCode::kOk ? nullptr
                                     : std::make_shared<Rep>(Rep{code, std::move(msg)})) {}

  /// \name Factory helpers, one per error category.
  /// @{
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  /// @}

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->msg : kEmpty;
  }

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsNotSupported() const { return code() == StatusCode::kNotSupported; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsResourceExhausted() const { return code() == StatusCode::kResourceExhausted; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }

  /// \brief "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  struct Rep {
    StatusCode code;
    std::string msg;
  };
  std::shared_ptr<const Rep> rep_;  // null == OK
};

std::ostream& operator<<(std::ostream& os, const Status& s);

/// \brief Propagates a non-OK Status out of the enclosing function.
#define TIC_RETURN_NOT_OK(expr)               \
  do {                                        \
    ::tic::Status _st = (expr);               \
    if (!_st.ok()) return _st;                \
  } while (0)

}  // namespace tic

#endif  // TIC_COMMON_STATUS_H_
