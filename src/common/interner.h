#ifndef TIC_COMMON_INTERNER_H_
#define TIC_COMMON_INTERNER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace tic {

/// \brief Dense id assigned to an interned string. 0-based, stable for the
/// lifetime of the owning StringInterner.
using SymbolId = uint32_t;

/// \brief Bidirectional string <-> dense-id map.
///
/// Predicates, constants and variables are referred to by SymbolId throughout
/// the library, so formula nodes stay small and comparisons are integral.
/// Not thread-safe; each Vocabulary owns its interner.
class StringInterner {
 public:
  /// Returns the id of `s`, interning it on first sight.
  SymbolId Intern(std::string_view s) {
    auto it = ids_.find(std::string(s));
    if (it != ids_.end()) return it->second;
    SymbolId id = static_cast<SymbolId>(strings_.size());
    strings_.emplace_back(s);
    ids_.emplace(strings_.back(), id);
    return id;
  }

  /// Returns the id of `s` if already interned, or false.
  bool Lookup(std::string_view s, SymbolId* out) const {
    auto it = ids_.find(std::string(s));
    if (it == ids_.end()) return false;
    *out = it->second;
    return true;
  }

  /// \pre id < size()
  const std::string& Name(SymbolId id) const { return strings_[id]; }

  size_t size() const { return strings_.size(); }

 private:
  std::vector<std::string> strings_;
  std::unordered_map<std::string, SymbolId> ids_;
};

}  // namespace tic

#endif  // TIC_COMMON_INTERNER_H_
