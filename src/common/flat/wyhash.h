#ifndef TIC_COMMON_FLAT_WYHASH_H_
#define TIC_COMMON_FLAT_WYHASH_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace tic {
namespace flat {

/// wyhash-style 64-bit mixing. The flat containers index buckets with
/// `hash & (pow2 - 1)`, so unlike the prime-modulus std tables they consume
/// only the LOW bits of the hash — identity hashes (std::hash on integers)
/// would turn sequential keys into sequential buckets and make robin-hood
/// displacement quadratic. Every key type therefore goes through a full
/// 128-bit-multiply mix.

inline uint64_t WyMix(uint64_t a, uint64_t b) {
  __uint128_t r = static_cast<__uint128_t>(a) * b;
  return static_cast<uint64_t>(r) ^ static_cast<uint64_t>(r >> 64);
}

inline uint64_t WyHash64(uint64_t x, uint64_t seed = 0xa0761d6478bd642fULL) {
  return WyMix(x ^ 0xe7037ed1a0b428dbULL, seed ^ 0x8ebc6af09c88c6e3ULL);
}

namespace wyhash_internal {

inline uint64_t Read8(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

inline uint64_t Read4(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

}  // namespace wyhash_internal

/// Byte-buffer hash following the wyhash read schedule (8-byte lanes, a
/// 1..8-byte tail folded from both ends). Self-contained; not bit-identical
/// to any upstream wyhash release, but with the same mixing structure.
inline uint64_t WyHashBytes(const void* data, size_t len,
                            uint64_t seed = 0x2d358dccaa6c78a5ULL) {
  using wyhash_internal::Read4;
  using wyhash_internal::Read8;
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint64_t a = 0, b = 0;
  seed ^= 0xa0761d6478bd642fULL;
  if (len <= 8) {
    if (len >= 4) {
      a = Read4(p);
      b = Read4(p + len - 4);
    } else if (len > 0) {
      a = (uint64_t{p[0]} << 16) | (uint64_t{p[len >> 1]} << 8) | p[len - 1];
    }
  } else if (len <= 16) {
    a = Read8(p);
    b = Read8(p + len - 8);
  } else {
    size_t i = len;
    while (i > 16) {
      seed = WyMix(Read8(p) ^ 0xe7037ed1a0b428dbULL, Read8(p + 8) ^ seed);
      p += 16;
      i -= 16;
    }
    // p has advanced by at least 16, so these two lanes (the final 16 bytes
    // of the buffer, re-read from the end) stay in bounds even for small i.
    a = Read8(p + i - 16);
    b = Read8(p + i - 8);
  }
  return WyMix(0x8ebc6af09c88c6e3ULL ^ len,
               WyMix(a ^ 0xe7037ed1a0b428dbULL, b ^ seed));
}

/// 128-bit content fingerprint: two independently seeded passes over the same
/// bytes. Used as a cache key in place of the full key string — 2^-128
/// accidental-collision probability makes equality-by-fingerprint safe, and
/// debug builds double-check against the retained key string.
struct Fp128 {
  uint64_t lo = 0;
  uint64_t hi = 0;

  static Fp128 OfBytes(const void* data, size_t len) {
    Fp128 fp;
    fp.lo = WyHashBytes(data, len, 0x2d358dccaa6c78a5ULL);
    fp.hi = WyHashBytes(data, len, 0x9e3779b97f4a7c15ULL);
    return fp;
  }
  static Fp128 OfString(const std::string& s) { return OfBytes(s.data(), s.size()); }

  friend bool operator==(const Fp128& a, const Fp128& b) {
    return a.lo == b.lo && a.hi == b.hi;
  }
  friend bool operator!=(const Fp128& a, const Fp128& b) { return !(a == b); }
};

/// Default hasher for the flat containers. Specialized per key family; a
/// custom functor can always be supplied instead.
template <typename K, typename Enable = void>
struct Hash;

template <typename K>
struct Hash<K, std::enable_if_t<std::is_integral_v<K> || std::is_enum_v<K>>> {
  uint64_t operator()(K k) const {
    return WyHash64(static_cast<uint64_t>(k));
  }
};

template <typename T>
struct Hash<T*> {
  uint64_t operator()(const T* p) const {
    return WyHash64(reinterpret_cast<uintptr_t>(p));
  }
};

template <>
struct Hash<std::string> {
  uint64_t operator()(const std::string& s) const {
    return WyHashBytes(s.data(), s.size());
  }
  uint64_t operator()(std::string_view s) const {
    return WyHashBytes(s.data(), s.size());
  }
};

template <>
struct Hash<Fp128> {
  uint64_t operator()(const Fp128& fp) const {
    // Already uniform; one mix folds both halves into the bucket index.
    return WyMix(fp.lo, fp.hi ^ 0x8ebc6af09c88c6e3ULL);
  }
};

template <typename T>
struct Hash<std::vector<T>, std::enable_if_t<std::is_integral_v<T>>> {
  uint64_t operator()(const std::vector<T>& v) const {
    return WyHashBytes(v.data(), v.size() * sizeof(T));
  }
};

/// Adapts any std-style size_t hasher (e.g. an existing std::unordered_map
/// functor being ported) by re-mixing its result for pow2 bucket indexing.
template <typename StdHash>
struct Remixed {
  StdHash inner;
  template <typename K>
  uint64_t operator()(const K& k) const {
    return WyHash64(static_cast<uint64_t>(inner(k)));
  }
};

}  // namespace flat
}  // namespace tic

#endif  // TIC_COMMON_FLAT_WYHASH_H_
