#ifndef TIC_COMMON_FLAT_ARENA_H_
#define TIC_COMMON_FLAT_ARENA_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

namespace tic {
namespace flat {

/// Epoch (bump) allocator for per-update scratch. One monitor update is one
/// epoch: temporaries are bump-allocated with no individual frees, and
/// Reset() at the epoch boundary rewinds the arena without returning memory
/// to the heap. After warm-up the per-epoch high-water mark stops growing, so
/// steady-state epochs perform ZERO heap allocations — the property the
/// `ctest -L alloc` gate checks end to end.
///
/// Alloc is not thread-safe; each thread (or each Monitor) owns its arena.
class EpochArena {
 public:
  static constexpr size_t kFirstBlockBytes = 4096;

  EpochArena() = default;
  EpochArena(const EpochArena&) = delete;
  EpochArena& operator=(const EpochArena&) = delete;
  EpochArena(EpochArena&&) = default;
  EpochArena& operator=(EpochArena&&) = default;

  /// Bump-allocates `bytes` with `align` alignment (power of 2). The block
  /// chain doubles, so even the first epoch does O(log size) heap
  /// allocations, and later epochs reuse the chain.
  void* Alloc(size_t bytes, size_t align) {
    assert((align & (align - 1)) == 0);
    while (true) {
      if (block_ < blocks_.size()) {
        Block& b = blocks_[block_];
        size_t at = (offset_ + align - 1) & ~(align - 1);
        if (at + bytes <= b.cap) {
          offset_ = at + bytes;
          return b.data.get() + at;
        }
        // Doesn't fit here; try the next (larger) block.
        ++block_;
        offset_ = 0;
        continue;
      }
      size_t cap = blocks_.empty() ? kFirstBlockBytes : blocks_.back().cap * 2;
      while (cap < bytes + align) cap *= 2;
      blocks_.push_back(Block{std::make_unique<unsigned char[]>(cap), cap});
    }
  }

  template <typename T>
  T* AllocArray(size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is rewound, never destructed");
    return static_cast<T*>(Alloc(n * sizeof(T), alignof(T)));
  }

  /// Epoch boundary: every pointer handed out so far is dead; the block
  /// chain is kept for the next epoch.
  void Reset() {
    block_ = 0;
    offset_ = 0;
  }

  /// Total heap bytes owned (diagnostics / tests).
  size_t bytes_reserved() const {
    size_t total = 0;
    for (const Block& b : blocks_) total += b.cap;
    return total;
  }

 private:
  struct Block {
    std::unique_ptr<unsigned char[]> data;
    size_t cap;
  };

  std::vector<Block> blocks_;
  size_t block_ = 0;   // current block index
  size_t offset_ = 0;  // bump offset within blocks_[block_]
};

/// Vector of trivially copyable elements backed by an EpochArena. Growth
/// abandons the old storage inside the arena (reclaimed wholesale at Reset),
/// so push_back never touches the heap once the arena is warm. Valid only
/// until the arena's next Reset.
template <typename T>
class ArenaVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "ArenaVec relocates with memcpy and never destructs");

 public:
  explicit ArenaVec(EpochArena* arena, size_t initial_cap = 8)
      : arena_(arena), cap_(initial_cap) {
    data_ = arena_->AllocArray<T>(cap_);
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }
  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }

  void push_back(const T& v) {
    if (size_ == cap_) {
      T* bigger = arena_->AllocArray<T>(cap_ * 2);
      std::memcpy(bigger, data_, size_ * sizeof(T));
      data_ = bigger;
      cap_ *= 2;
    }
    data_[size_++] = v;
  }

  void clear() { size_ = 0; }

 private:
  EpochArena* arena_;
  T* data_;
  size_t size_ = 0;
  size_t cap_;
};

}  // namespace flat
}  // namespace tic

#endif  // TIC_COMMON_FLAT_ARENA_H_
