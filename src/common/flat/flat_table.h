#ifndef TIC_COMMON_FLAT_FLAT_TABLE_H_
#define TIC_COMMON_FLAT_FLAT_TABLE_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

#include "common/flat/wyhash.h"

namespace tic {
namespace flat {

/// \file Robin-hood open-addressing core shared by FlatMap / FlatSet.
///
/// Layout: a power-of-2 array of buckets, each a probe-distance byte plus an
/// entry slot. distance 0 marks an empty bucket; distance d means the entry's
/// home bucket is d-1 steps back. Robin-hood insertion displaces entries that
/// are closer to home than the carried one ("steal from the rich"), which
/// bounds probe-sequence variance; erasure backward-shifts the following run
/// instead of leaving tombstones, so probe lengths never degrade with
/// insert/erase churn.
///
/// Capacity policy (after the fixed-containers exemplar): buckets oversize the
/// element capacity by ~30% — for n elements the table keeps
/// next_pow2(n * 13/10) buckets, i.e. load stays below ~77%.
///
/// Two storage variants share this core:
///  - kFixedCap == 0: buckets live on the heap and double when the load bound
///    is hit. A default-constructed table owns no memory until first insert.
///  - kFixedCap == N: bucket storage is inline (no heap, usable mid-hot-path
///    or in constexpr-sized scratch) and the table holds at most N entries;
///    inserting into a full table fails loudly via the Emplace result rather
///    than growing.

inline constexpr size_t kFlatMinBuckets = 8;

constexpr size_t FlatNextPow2(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

/// Buckets needed for `n` entries under the ~30% oversize policy.
constexpr size_t FlatBucketCountFor(size_t n) {
  size_t want = n + (n * 3 + 9) / 10;  // ceil(n * 1.3), never equal to n
  return FlatNextPow2(want < kFlatMinBuckets ? kFlatMinBuckets : want);
}

/// Max entries a bucket array of `buckets` may hold (inverse of the above).
constexpr size_t FlatCapacityForBuckets(size_t buckets) {
  return buckets * 10 / 13;
}

template <typename K, typename Entry, typename GetKey, typename HashT,
          typename EqT, size_t kFixedCap = 0>
class FlatTable {
  static constexpr bool kFixed = kFixedCap != 0;
  static constexpr size_t kFixedBuckets = kFixed ? FlatBucketCountFor(kFixedCap) : 0;

 public:
  using key_type = K;
  using value_type = Entry;

  FlatTable() = default;

  FlatTable(const FlatTable& o) { CopyFrom(o); }
  FlatTable& operator=(const FlatTable& o) {
    if (this != &o) {
      DestroyAll();
      CopyFrom(o);
    }
    return *this;
  }

  FlatTable(FlatTable&& o) noexcept { MoveFrom(std::move(o)); }
  FlatTable& operator=(FlatTable&& o) noexcept {
    if (this != &o) {
      DestroyAll();
      MoveFrom(std::move(o));
    }
    return *this;
  }

  ~FlatTable() { DestroyAll(); }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t bucket_count() const { return buckets(); }

  /// Entries the table can hold before the next reallocation (dynamic) or at
  /// all (fixed).
  size_t capacity() const {
    if constexpr (kFixed) return kFixedCap;
    return FlatCapacityForBuckets(buckets());
  }

  /// Fixed variant only: no further insert can succeed.
  bool full() const {
    if constexpr (kFixed) return size_ >= kFixedCap;
    return false;
  }

  Entry* Find(const K& key) { return FindImpl(key); }
  const Entry* Find(const K& key) const {
    return const_cast<FlatTable*>(this)->FindImpl(key);
  }
  bool Contains(const K& key) const { return Find(key) != nullptr; }

  /// Looks up `key`; when absent, inserts `make()` (invoked only on insert,
  /// so lookups construct nothing). Returns {entry, inserted}. On a FULL
  /// fixed table a miss returns {nullptr, false} — the only case the entry
  /// pointer is null — so callers choose the overflow policy.
  template <typename MakeEntry>
  std::pair<Entry*, bool> FindOrEmplace(const K& key, MakeEntry make) {
    if constexpr (!kFixed) {
      if (buckets() == 0) Rehash(kFlatMinBuckets);
    }
    const size_t mask = buckets() - 1;
    uint64_t h = hash_(key);
    size_t i = static_cast<size_t>(h) & mask;
    uint8_t dist = 1;
    while (dist_[i] >= dist) {
      if (dist_[i] == dist && eq_(GetKey{}(EntryAt(i)), key)) {
        return {&EntryAt(i), false};
      }
      i = (i + 1) & mask;
      ++dist;
    }
    // Absent. Fixed tables refuse at capacity; dynamic tables grow at the
    // load bound (and restart, since the probe position moved).
    if constexpr (kFixed) {
      if (size_ >= kFixedCap) return {nullptr, false};
    } else {
      if ((size_ + 1) * 13 > buckets() * 10) {
        Rehash(buckets() * 2);
        return FindOrEmplace(key, std::move(make));
      }
    }
    Entry* placed = InsertAt(i, dist, make());
    ++size_;
    return {placed, true};
  }

  /// Erases `key` with backward-shift deletion. Returns whether it was there.
  bool Erase(const K& key) {
    Entry* e = FindImpl(key);
    if (e == nullptr) return false;
    const size_t mask = buckets() - 1;
    size_t i = static_cast<size_t>(e - reinterpret_cast<Entry*>(SlotBase()));
    EntryAt(i).~Entry();
    size_t j = (i + 1) & mask;
    while (dist_[j] > 1) {
      ::new (static_cast<void*>(&EntryAt(i))) Entry(std::move(EntryAt(j)));
      EntryAt(j).~Entry();
      dist_[i] = static_cast<uint8_t>(dist_[j] - 1);
      i = j;
      j = (j + 1) & mask;
    }
    dist_[i] = 0;
    --size_;
    return true;
  }

  /// Destroys all entries; keeps the bucket array (so a warm scratch table
  /// clears without touching the heap).
  void Clear() {
    if (size_ != 0) {
      const size_t n = buckets();
      for (size_t i = 0; i < n; ++i) {
        if (dist_[i] != 0) EntryAt(i).~Entry();
      }
      std::memset(dist_, 0, n);
      size_ = 0;
    }
  }

  /// Dynamic variant: pre-size for `n` entries without rehashing later.
  void Reserve(size_t n) {
    if constexpr (!kFixed) {
      size_t want = FlatBucketCountFor(n);
      if (want > buckets()) Rehash(want);
    } else {
      assert(n <= kFixedCap);
      (void)n;
    }
  }

  template <typename Fn>
  void ForEach(Fn fn) const {
    const size_t n = buckets();
    for (size_t i = 0; i < n; ++i) {
      if (dist_[i] != 0) fn(EntryAt(i));
    }
  }
  template <typename Fn>
  void ForEach(Fn fn) {
    const size_t n = buckets();
    for (size_t i = 0; i < n; ++i) {
      if (dist_[i] != 0) fn(EntryAt(i));
    }
  }

 private:
  size_t buckets() const {
    if constexpr (kFixed) {
      return kFixedBuckets;
    } else {
      return buckets_;
    }
  }

  unsigned char* SlotBase() {
    if constexpr (kFixed) {
      return fixed_slots_;
    } else {
      return heap_slots_;
    }
  }
  const unsigned char* SlotBase() const {
    return const_cast<FlatTable*>(this)->SlotBase();
  }

  Entry& EntryAt(size_t i) {
    return *std::launder(reinterpret_cast<Entry*>(SlotBase() + i * sizeof(Entry)));
  }
  const Entry& EntryAt(size_t i) const {
    return const_cast<FlatTable*>(this)->EntryAt(i);
  }

  Entry* FindImpl(const K& key) {
    if (size_ == 0) return nullptr;
    const size_t mask = buckets() - 1;
    uint64_t h = hash_(key);
    size_t i = static_cast<size_t>(h) & mask;
    uint8_t dist = 1;
    while (dist_[i] >= dist) {
      if (dist_[i] == dist && eq_(GetKey{}(EntryAt(i)), key)) return &EntryAt(i);
      i = (i + 1) & mask;
      ++dist;
    }
    return nullptr;
  }

  /// Places `carry` at probe position (i, dist), displacing richer entries
  /// down the chain. Precondition: the key is absent and capacity allows it.
  Entry* InsertAt(size_t i, uint8_t dist, Entry carry) {
    const size_t mask = buckets() - 1;
    Entry* placed = nullptr;
    while (true) {
      if (dist_[i] == 0) {
        ::new (static_cast<void*>(&EntryAt(i))) Entry(std::move(carry));
        dist_[i] = dist;
        return placed != nullptr ? placed : &EntryAt(i);
      }
      if (dist_[i] < dist) {
        std::swap(EntryAt(i), carry);
        std::swap(dist_[i], dist);
        if (placed == nullptr) placed = &EntryAt(i);
      }
      i = (i + 1) & mask;
      if (dist == UINT8_MAX) {
        // Probe chain outran the distance byte. Unreachable under the load
        // bound with a mixing hash; grow out of it when we can.
        if constexpr (kFixed) {
          assert(false && "FlatTable: fixed-capacity probe overflow");
          __builtin_trap();
        } else {
          Entry rescued = std::move(carry);
          Rehash(buckets() * 2);
          return EmplaceUnique(std::move(rescued));
        }
      }
      ++dist;
    }
  }

  /// Insert for keys known absent (rehash path) — no equality probing.
  Entry* EmplaceUnique(Entry&& e) {
    const size_t mask = buckets() - 1;
    uint64_t h = hash_(GetKey{}(e));
    size_t i = static_cast<size_t>(h) & mask;
    uint8_t dist = 1;
    while (dist_[i] >= dist) {
      i = (i + 1) & mask;
      ++dist;
    }
    return InsertAt(i, dist, std::move(e));
  }

  void Rehash(size_t new_buckets) {
    static_assert(!kFixed, "fixed tables never rehash");
    assert((new_buckets & (new_buckets - 1)) == 0);
    uint8_t* old_dist = dist_;
    unsigned char* old_slots = heap_slots_;
    size_t old_buckets = buckets_;

    AllocBuckets(new_buckets);
    for (size_t i = 0; i < old_buckets; ++i) {
      if (old_dist[i] != 0) {
        Entry& e = *std::launder(
            reinterpret_cast<Entry*>(old_slots + i * sizeof(Entry)));
        EmplaceUnique(std::move(e));
        e.~Entry();
      }
    }
    FreeBuckets(old_dist, old_slots);
  }

  void AllocBuckets(size_t n) {
    if constexpr (!kFixed) {
      dist_ = new uint8_t[n]();
      heap_slots_ = static_cast<unsigned char*>(::operator new(
          n * sizeof(Entry), std::align_val_t{alignof(Entry)}));
      buckets_ = n;
    }
  }

  void FreeBuckets(uint8_t* dist, unsigned char* slots) {
    if constexpr (!kFixed) {
      delete[] dist;
      if (slots != nullptr) {
        ::operator delete(slots, std::align_val_t{alignof(Entry)});
      }
    }
  }

  void DestroyAll() {
    Clear();
    if constexpr (!kFixed) {
      FreeBuckets(dist_, heap_slots_);
      dist_ = nullptr;
      heap_slots_ = nullptr;
      buckets_ = 0;
    }
  }

  void CopyFrom(const FlatTable& o) {
    if constexpr (!kFixed) {
      if (o.size_ != 0) AllocBuckets(o.buckets_);
    }
    o.ForEach([this](const Entry& e) { EmplaceUnique(Entry(e)); });
    size_ = o.size_;
  }

  void MoveFrom(FlatTable&& o) {
    if constexpr (kFixed) {
      // Inline storage cannot be stolen; move slot-wise and clear the source.
      for (size_t i = 0; i < kFixedBuckets; ++i) {
        if (o.dist_[i] != 0) EmplaceUnique(std::move(o.EntryAt(i)));
      }
      size_ = o.size_;
      o.Clear();
    } else {
      dist_ = o.dist_;
      heap_slots_ = o.heap_slots_;
      buckets_ = o.buckets_;
      size_ = o.size_;
      o.dist_ = nullptr;
      o.heap_slots_ = nullptr;
      o.buckets_ = 0;
      o.size_ = 0;
    }
  }

  size_t size_ = 0;
  HashT hash_{};
  EqT eq_{};

  // Storage: the fixed variant keeps the distance bytes and entry slots
  // inline (dist_ aliases fixed_dist_); the dynamic variant owns two heap
  // blocks. The unused arm collapses to minimal stubs under if constexpr.
  uint8_t* dist_ = kFixed ? fixed_dist_ : nullptr;
  unsigned char* heap_slots_ = nullptr;
  size_t buckets_ = 0;

  uint8_t fixed_dist_[kFixed ? kFixedBuckets : 1] = {};
  alignas(Entry) unsigned char fixed_slots_[kFixed ? kFixedBuckets * sizeof(Entry) : 1];
};

}  // namespace flat
}  // namespace tic

#endif  // TIC_COMMON_FLAT_FLAT_TABLE_H_
