#ifndef TIC_COMMON_FLAT_FLAT_SET_H_
#define TIC_COMMON_FLAT_FLAT_SET_H_

#include <functional>
#include <utility>

#include "common/flat/flat_table.h"
#include "common/flat/wyhash.h"

namespace tic {
namespace flat {

/// Robin-hood open-addressing set; the set view of flat_table.h. Same
/// contract as FlatMap: pointer-returning lookups, entries move on insert,
/// Clear() keeps the bucket array warm.
template <typename K, typename HashT = Hash<K>, typename EqT = std::equal_to<K>>
class FlatSet {
 public:
  struct GetKey {
    const K& operator()(const K& e) const { return e; }
  };

  bool Contains(const K& key) const { return table_.Contains(key); }

  /// Returns true when the key was inserted (false: already present).
  template <typename KeyArg>
  bool Insert(KeyArg&& key) {
    auto [e, inserted] =
        table_.FindOrEmplace(key, [&] { return K(std::forward<KeyArg>(key)); });
    (void)e;
    return inserted;
  }

  /// STL-compatible spelling, so generic collectors (`out->insert(v)`) accept
  /// a FlatSet wherever they accept a std::unordered_set.
  template <typename KeyArg>
  bool insert(KeyArg&& key) { return Insert(std::forward<KeyArg>(key)); }

  bool Erase(const K& key) { return table_.Erase(key); }
  void Clear() { table_.Clear(); }
  void Reserve(size_t n) { table_.Reserve(n); }

  size_t size() const { return table_.size(); }
  bool empty() const { return table_.empty(); }
  size_t capacity() const { return table_.capacity(); }
  size_t bucket_count() const { return table_.bucket_count(); }

  template <typename Fn>
  void ForEach(Fn fn) const { table_.ForEach(fn); }

 private:
  FlatTable<K, K, GetKey, HashT, EqT> table_;
};

/// Fixed-capacity set: at most N keys, storage fully inline. Insert on a
/// full set returns false without inserting — indistinguishable from
/// "already present" by return value alone, so callers that need to tell the
/// two apart check full() first.
template <typename K, size_t N, typename HashT = Hash<K>,
          typename EqT = std::equal_to<K>>
class FixedFlatSet {
 public:
  using GetKey = typename FlatSet<K, HashT, EqT>::GetKey;
  static constexpr size_t kCapacity = N;

  bool Contains(const K& key) const { return table_.Contains(key); }

  /// True when inserted; false when already present OR the set is full
  /// (check full() to distinguish).
  template <typename KeyArg>
  bool Insert(KeyArg&& key) {
    auto [e, inserted] =
        table_.FindOrEmplace(key, [&] { return K(std::forward<KeyArg>(key)); });
    (void)e;
    return inserted;
  }

  bool Erase(const K& key) { return table_.Erase(key); }
  void Clear() { table_.Clear(); }

  size_t size() const { return table_.size(); }
  bool empty() const { return table_.empty(); }
  bool full() const { return table_.full(); }
  size_t capacity() const { return kCapacity; }

  template <typename Fn>
  void ForEach(Fn fn) const { table_.ForEach(fn); }

 private:
  FlatTable<K, K, GetKey, HashT, EqT, N> table_;
};

}  // namespace flat
}  // namespace tic

#endif  // TIC_COMMON_FLAT_FLAT_SET_H_
