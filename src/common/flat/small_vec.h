#ifndef TIC_COMMON_FLAT_SMALL_VEC_H_
#define TIC_COMMON_FLAT_SMALL_VEC_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>

namespace tic {
namespace flat {

/// Small-buffer vector for trivially copyable elements: up to N inline, heap
/// beyond. The inline tier is what makes PropState and similar per-element
/// hot-path values allocation-free — a copy of a small SmallVec is a memcpy,
/// not a heap allocation, and growth past N is the uncommon spill case.
template <typename T, size_t N>
class SmallVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVec relies on memcpy relocation");
  static_assert(std::is_trivially_default_constructible_v<T>,
                "inline storage lives in a union");
  static_assert(N > 0, "inline capacity must be positive");

 public:
  SmallVec() = default;

  SmallVec(const SmallVec& o) { CopyFrom(o); }
  SmallVec& operator=(const SmallVec& o) {
    if (this != &o) {
      if (spilled()) delete[] heap_;
      CopyFrom(o);
    }
    return *this;
  }

  SmallVec(SmallVec&& o) noexcept { MoveFrom(o); }
  SmallVec& operator=(SmallVec&& o) noexcept {
    if (this != &o) {
      if (spilled()) delete[] heap_;
      MoveFrom(o);
    }
    return *this;
  }

  ~SmallVec() {
    if (spilled()) delete[] heap_;
  }

  bool spilled() const { return cap_ > N; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return cap_; }

  T* data() { return spilled() ? heap_ : inline_; }
  const T* data() const { return spilled() ? heap_ : inline_; }
  T* begin() { return data(); }
  T* end() { return data() + size_; }
  const T* begin() const { return data(); }
  const T* end() const { return data() + size_; }

  T& operator[](size_t i) { return data()[i]; }
  const T& operator[](size_t i) const { return data()[i]; }
  T& back() { return data()[size_ - 1]; }
  const T& back() const { return data()[size_ - 1]; }

  void clear() { size_ = 0; }

  void reserve(size_t n) {
    if (n > cap_) Grow(n);
  }

  void push_back(const T& v) {
    if (size_ == cap_) Grow(cap_ * 2);
    data()[size_++] = v;
  }

  void pop_back() { --size_; }

  /// Inserts `v` at index `i`, shifting the tail right.
  void insert_at(size_t i, const T& v) {
    assert(i <= size_);
    if (size_ == cap_) Grow(cap_ * 2);
    T* d = data();
    std::memmove(d + i + 1, d + i, (size_ - i) * sizeof(T));
    d[i] = v;
    ++size_;
  }

  /// Removes the element at index `i`, shifting the tail left.
  void erase_at(size_t i) {
    assert(i < size_);
    T* d = data();
    std::memmove(d + i, d + i + 1, (size_ - i - 1) * sizeof(T));
    --size_;
  }

  void resize(size_t n) {
    reserve(n);
    if (n > size_) std::memset(data() + size_, 0, (n - size_) * sizeof(T));
    size_ = n;
  }

  friend bool operator==(const SmallVec& a, const SmallVec& b) {
    return a.size_ == b.size_ &&
           (a.size_ == 0 ||
            std::memcmp(a.data(), b.data(), a.size_ * sizeof(T)) == 0);
  }
  friend bool operator!=(const SmallVec& a, const SmallVec& b) { return !(a == b); }

 private:
  void Grow(size_t want) {
    size_t new_cap = cap_ * 2 > want ? cap_ * 2 : want;
    T* heap = new T[new_cap];
    std::memcpy(heap, data(), size_ * sizeof(T));
    if (spilled()) delete[] heap_;
    heap_ = heap;
    cap_ = new_cap;
  }

  void CopyFrom(const SmallVec& o) {
    size_ = o.size_;
    if (o.size_ <= N) {
      cap_ = N;
      std::memcpy(inline_, o.data(), o.size_ * sizeof(T));
    } else {
      cap_ = o.size_;
      heap_ = new T[cap_];
      std::memcpy(heap_, o.heap_, o.size_ * sizeof(T));
    }
  }

  void MoveFrom(SmallVec& o) {
    size_ = o.size_;
    cap_ = o.cap_;
    if (o.spilled()) {
      heap_ = o.heap_;
      o.cap_ = N;
    } else {
      std::memcpy(inline_, o.inline_, o.size_ * sizeof(T));
    }
    o.size_ = 0;
  }

  size_t size_ = 0;
  size_t cap_ = N;
  union {
    T inline_[N];
    T* heap_;
  };
};

}  // namespace flat
}  // namespace tic

#endif  // TIC_COMMON_FLAT_SMALL_VEC_H_
