#ifndef TIC_COMMON_FLAT_LRU_H_
#define TIC_COMMON_FLAT_LRU_H_

#include <cassert>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/flat/flat_map.h"
#include "common/flat/wyhash.h"

namespace tic {
namespace flat {

/// Fixed-capacity LRU index: a slab of nodes threaded into an intrusive
/// recency list (uint32 prev/next indices, no per-node heap allocation) plus
/// a FlatMap from key to slab slot. Capacity is fixed at construction and the
/// slab + index are pre-reserved, so after the slab fills once, hits,
/// refreshes, and evicting inserts all run with ZERO heap allocations — this
/// is what replaces the std::list + string-keyed std::unordered_map LRUs in
/// VerdictCache / AutomatonCache, whose every lookup allocated a key string.
///
/// Keys are expected to be cheap values (Fp128 fingerprints, ints). Values
/// may own memory; on eviction the value is destroyed in place.
template <typename K, typename V, typename HashT = Hash<K>,
          typename EqT = std::equal_to<K>>
class FlatLru {
 public:
  explicit FlatLru(size_t capacity) : capacity_(capacity < 1 ? 1 : capacity) {
    slab_.reserve(capacity_);
    index_.Reserve(capacity_);
  }

  size_t size() const { return slab_.size(); }
  size_t capacity() const { return capacity_; }

  /// Hit: returns the value and marks the entry most-recently used.
  /// Miss: nullptr.
  V* Find(const K& key) {
    uint32_t* slot = index_.Get(key);
    if (slot == nullptr) return nullptr;
    Touch(*slot);
    return &slab_[*slot].value;
  }

  /// Inserts or overwrites; the entry becomes most-recently used. At
  /// capacity the least-recently-used entry is evicted (its slab slot is
  /// reused, so no allocation). Returns the stored value.
  V* Insert(const K& key, V value) {
    uint32_t* slot = index_.Get(key);
    if (slot != nullptr) {
      Node& n = slab_[*slot];
      n.value = std::move(value);
      Touch(*slot);
      return &n.value;
    }
    uint32_t at;
    if (slab_.size() < capacity_) {
      at = static_cast<uint32_t>(slab_.size());
      slab_.push_back(Node{key, std::move(value), kNil, kNil});
      ++fills_;
    } else {
      at = tail_;
      Unlink(at);
      Node& n = slab_[at];
      index_.Erase(n.key);
      n.key = key;
      n.value = std::move(value);
      ++evictions_;
    }
    LinkFront(at);
    index_.Emplace(key, at);
    return &slab_[at].value;
  }

  uint64_t evictions() const { return evictions_; }

  /// Iterates entries in unspecified order: fn(const K&, const V&).
  template <typename Fn>
  void ForEach(Fn fn) const {
    for (const Node& n : slab_) fn(n.key, n.value);
  }

 private:
  static constexpr uint32_t kNil = UINT32_MAX;

  struct Node {
    K key;
    V value;
    uint32_t prev;
    uint32_t next;
  };

  void LinkFront(uint32_t at) {
    Node& n = slab_[at];
    n.prev = kNil;
    n.next = head_;
    if (head_ != kNil) slab_[head_].prev = at;
    head_ = at;
    if (tail_ == kNil) tail_ = at;
  }

  void Unlink(uint32_t at) {
    Node& n = slab_[at];
    if (n.prev != kNil) slab_[n.prev].next = n.next;
    if (n.next != kNil) slab_[n.next].prev = n.prev;
    if (head_ == at) head_ = n.next;
    if (tail_ == at) tail_ = n.prev;
    n.prev = n.next = kNil;
  }

  void Touch(uint32_t at) {
    if (head_ == at) return;
    Unlink(at);
    LinkFront(at);
  }

  size_t capacity_;
  std::vector<Node> slab_;
  FlatMap<K, uint32_t, HashT, EqT> index_;
  uint32_t head_ = kNil;
  uint32_t tail_ = kNil;
  uint64_t evictions_ = 0;
  uint64_t fills_ = 0;
};

}  // namespace flat
}  // namespace tic

#endif  // TIC_COMMON_FLAT_LRU_H_
