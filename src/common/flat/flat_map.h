#ifndef TIC_COMMON_FLAT_FLAT_MAP_H_
#define TIC_COMMON_FLAT_FLAT_MAP_H_

#include <functional>
#include <utility>

#include "common/flat/flat_table.h"
#include "common/flat/wyhash.h"

namespace tic {
namespace flat {

/// Robin-hood open-addressing map (see flat_table.h for the core invariants).
/// Replaces std::unordered_map on hot paths: entries are stored inline in the
/// bucket array, so lookups touch one cache line instead of chasing a node
/// pointer, and no per-entry allocation ever happens — the only heap traffic
/// is the bucket array itself, which Clear() retains.
///
/// Deliberate API differences from std::unordered_map:
///  - Find returns an entry pointer (nullptr on miss), not an iterator.
///  - Entries REHASH-MOVE: pointers returned by Find/Emplace are invalidated
///    by any insert (like iterators of a rehashing std table, but stricter —
///    any insert may displace, not just growing ones). Never hold an entry
///    pointer across an insert.
///  - No per-entry heap nodes, so keys/values must be movable.
template <typename K, typename V, typename HashT = Hash<K>,
          typename EqT = std::equal_to<K>>
class FlatMap {
 public:
  using Entry = std::pair<K, V>;

  struct GetKey {
    const K& operator()(const Entry& e) const { return e.first; }
  };

  Entry* Find(const K& key) { return table_.Find(key); }
  const Entry* Find(const K& key) const { return table_.Find(key); }
  bool Contains(const K& key) const { return table_.Contains(key); }

  /// Value lookup: nullptr on miss.
  V* Get(const K& key) {
    Entry* e = table_.Find(key);
    return e != nullptr ? &e->second : nullptr;
  }
  const V* Get(const K& key) const {
    const Entry* e = table_.Find(key);
    return e != nullptr ? &e->second : nullptr;
  }

  /// Inserts {key, value} unless the key exists. Returns {entry, inserted}.
  template <typename KeyArg, typename... ValueArgs>
  std::pair<Entry*, bool> Emplace(KeyArg&& key, ValueArgs&&... value) {
    return table_.FindOrEmplace(key, [&] {
      return Entry(std::piecewise_construct,
                   std::forward_as_tuple(std::forward<KeyArg>(key)),
                   std::forward_as_tuple(std::forward<ValueArgs>(value)...));
    });
  }

  V& operator[](const K& key) {
    auto [e, inserted] = table_.FindOrEmplace(key, [&] { return Entry(key, V()); });
    return e->second;
  }

  bool Erase(const K& key) { return table_.Erase(key); }
  void Clear() { table_.Clear(); }
  void Reserve(size_t n) { table_.Reserve(n); }

  size_t size() const { return table_.size(); }
  bool empty() const { return table_.empty(); }
  size_t capacity() const { return table_.capacity(); }
  size_t bucket_count() const { return table_.bucket_count(); }

  template <typename Fn>
  void ForEach(Fn fn) const { table_.ForEach(fn); }
  template <typename Fn>
  void ForEach(Fn fn) { table_.ForEach(fn); }

 private:
  FlatTable<K, Entry, GetKey, HashT, EqT> table_;
};

/// Fixed-capacity variant: at most N entries, all storage inline (no heap at
/// all). Emplace on a full table returns {nullptr, false}; callers own the
/// overflow policy (fail, spill to a dynamic table, ...).
template <typename K, typename V, size_t N, typename HashT = Hash<K>,
          typename EqT = std::equal_to<K>>
class FixedFlatMap {
 public:
  using Entry = std::pair<K, V>;
  using GetKey = typename FlatMap<K, V, HashT, EqT>::GetKey;
  static constexpr size_t kCapacity = N;

  Entry* Find(const K& key) { return table_.Find(key); }
  const Entry* Find(const K& key) const { return table_.Find(key); }
  bool Contains(const K& key) const { return table_.Contains(key); }

  V* Get(const K& key) {
    Entry* e = table_.Find(key);
    return e != nullptr ? &e->second : nullptr;
  }
  const V* Get(const K& key) const {
    const Entry* e = table_.Find(key);
    return e != nullptr ? &e->second : nullptr;
  }

  template <typename KeyArg, typename... ValueArgs>
  std::pair<Entry*, bool> Emplace(KeyArg&& key, ValueArgs&&... value) {
    return table_.FindOrEmplace(key, [&] {
      return Entry(std::piecewise_construct,
                   std::forward_as_tuple(std::forward<KeyArg>(key)),
                   std::forward_as_tuple(std::forward<ValueArgs>(value)...));
    });
  }

  bool Erase(const K& key) { return table_.Erase(key); }
  void Clear() { table_.Clear(); }

  size_t size() const { return table_.size(); }
  bool empty() const { return table_.empty(); }
  bool full() const { return table_.full(); }
  size_t capacity() const { return kCapacity; }

  template <typename Fn>
  void ForEach(Fn fn) const { table_.ForEach(fn); }

 private:
  FlatTable<K, Entry, GetKey, HashT, EqT, N> table_;
};

}  // namespace flat
}  // namespace tic

#endif  // TIC_COMMON_FLAT_FLAT_MAP_H_
