#ifndef TIC_COMMON_FLAT_GATHER_H_
#define TIC_COMMON_FLAT_GATHER_H_

#include <cstddef>
#include <cstdint>

namespace tic {
namespace flat {

/// Word-parallel row gather over a dense row-major `rows x cols` uint32 table:
/// for each i in [0, n), `out[i] = table[states[i] * cols + col]`. This is the
/// cohort lockstep primitive: `states` is a structure-of-arrays block of
/// current automaton state ids sharing one letter class `col`, and the gather
/// advances all of them in one pass.
///
/// The backend is chosen once at process start: AVX2 `vpgatherdd` when the
/// build enables TIC_SIMD (CMake option, default ON), the CPU reports AVX2,
/// and the environment variable TIC_SIMD is not set to `off`/`0`/`false`;
/// otherwise a portable scalar loop. Both produce identical output for
/// identical input — the `simd-scalar` ctest config pins the environment
/// override to keep the portable path honest.
///
/// Callers guarantee every `states[i] < rows` and `col < cols`; `out` may
/// alias `states` (each lane is read before it is written).
void GatherRow(const uint32_t* table, uint32_t cols, uint32_t col,
               const uint32_t* states, size_t n, uint32_t* out);

/// Lanes the selected backend advances per hardware step: 8 for AVX2, 1 for
/// scalar. Telemetry only — GatherRow handles any `n` on any backend.
uint32_t GatherWidth();

/// "avx2" or "scalar"; stable for the process lifetime.
const char* GatherBackendName();

}  // namespace flat
}  // namespace tic

#endif  // TIC_COMMON_FLAT_GATHER_H_
