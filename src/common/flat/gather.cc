#include "common/flat/gather.h"

#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) && defined(TIC_SIMD_ENABLED)
#define TIC_GATHER_HAVE_AVX2 1
#include <immintrin.h>
#endif

namespace tic {
namespace flat {
namespace {

void GatherRowScalar(const uint32_t* table, uint32_t cols, uint32_t col,
                     const uint32_t* states, size_t n, uint32_t* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = table[static_cast<size_t>(states[i]) * cols + col];
  }
}

#ifdef TIC_GATHER_HAVE_AVX2
__attribute__((target("avx2"))) void GatherRowAvx2(const uint32_t* table,
                                                   uint32_t cols, uint32_t col,
                                                   const uint32_t* states,
                                                   size_t n, uint32_t* out) {
  const __m256i vcols = _mm256_set1_epi32(static_cast<int>(cols));
  const __m256i vcol = _mm256_set1_epi32(static_cast<int>(col));
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i s = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(states + i));
    // Row-major cell index: states[i] * cols + col. Table ids stay below
    // 2^30 (the monitor packs verdict bits above bit 29), so the 32-bit
    // multiply cannot wrap for any real table.
    __m256i idx = _mm256_add_epi32(_mm256_mullo_epi32(s, vcols), vcol);
    __m256i v = _mm256_i32gather_epi32(
        reinterpret_cast<const int*>(table), idx, 4);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), v);
  }
  for (; i < n; ++i) {
    out[i] = table[static_cast<size_t>(states[i]) * cols + col];
  }
}
#endif

using GatherFn = void (*)(const uint32_t*, uint32_t, uint32_t, const uint32_t*,
                          size_t, uint32_t*);

struct Backend {
  GatherFn fn;
  uint32_t width;
  const char* name;
};

bool SimdDisabledByEnv() {
  const char* v = std::getenv("TIC_SIMD");
  if (v == nullptr) return false;
  return std::strcmp(v, "off") == 0 || std::strcmp(v, "OFF") == 0 ||
         std::strcmp(v, "0") == 0 || std::strcmp(v, "false") == 0;
}

Backend PickBackend() {
#ifdef TIC_GATHER_HAVE_AVX2
  if (!SimdDisabledByEnv() && __builtin_cpu_supports("avx2")) {
    return {GatherRowAvx2, 8, "avx2"};
  }
#endif
  return {GatherRowScalar, 1, "scalar"};
}

// Resolved once, before main: steady-state stepping never re-checks CPU
// features or the environment.
const Backend kBackend = PickBackend();

}  // namespace

void GatherRow(const uint32_t* table, uint32_t cols, uint32_t col,
               const uint32_t* states, size_t n, uint32_t* out) {
  kBackend.fn(table, cols, col, states, n, out);
}

uint32_t GatherWidth() { return kBackend.width; }

const char* GatherBackendName() { return kBackend.name; }

}  // namespace flat
}  // namespace tic
