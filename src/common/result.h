#ifndef TIC_COMMON_RESULT_H_
#define TIC_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace tic {

/// \brief Either a value of type T or a non-OK Status (Arrow's arrow::Result idiom).
///
/// Constructing a Result from an OK status is a programming error; fallible
/// functions either produce a value or a reason they could not.
template <typename T>
class Result {
 public:
  /// Implicit from a value (success).
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  /// Implicit from an error status.
  Result(Status status) : rep_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    assert(!std::get<Status>(rep_).ok() && "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  /// Returns OK when a value is held, the error otherwise.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(rep_);
  }

  /// \pre ok()
  const T& ValueOrDie() const& {
    assert(ok() && "ValueOrDie called on error Result");
    return std::get<T>(rep_);
  }
  T& ValueOrDie() & {
    assert(ok() && "ValueOrDie called on error Result");
    return std::get<T>(rep_);
  }
  T&& ValueOrDie() && {
    assert(ok() && "ValueOrDie called on error Result");
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  T&& operator*() && { return std::move(*this).ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::variant<Status, T> rep_;
};

/// \brief Assigns the value of a Result expression to `lhs`, or propagates its error.
#define TIC_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                              \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).ValueOrDie();

#define TIC_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define TIC_ASSIGN_OR_RETURN_NAME(a, b) TIC_ASSIGN_OR_RETURN_CONCAT(a, b)

#define TIC_ASSIGN_OR_RETURN(lhs, rexpr) \
  TIC_ASSIGN_OR_RETURN_IMPL(TIC_ASSIGN_OR_RETURN_NAME(_res_, __LINE__), lhs, rexpr)

}  // namespace tic

#endif  // TIC_COMMON_RESULT_H_
