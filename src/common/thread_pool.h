#ifndef TIC_COMMON_THREAD_POOL_H_
#define TIC_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace tic {

/// \brief A fixed-size pool of worker threads for data-parallel sections of
/// the checker hot path (residual progression, trigger substitution sweeps).
///
/// Deliberately minimal — no work stealing, no futures: the checker's
/// parallelism is flat fork/join over an index range, so a shared atomic
/// cursor plus the caller thread participating covers it. The pool is shared
/// between monitors and trigger managers through `checker::CheckOptions`.
///
/// Threads are joined in the destructor (`std::jthread`-style ownership);
/// exceptions thrown by tasks are captured and rethrown to the ParallelFor
/// caller, never lost or allowed to terminate a worker.
class ThreadPool {
 public:
  /// Spawns `num_workers` worker threads. Zero workers is valid: every
  /// ParallelFor then runs inline on the caller.
  explicit ThreadPool(size_t num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_workers() const { return workers_.size(); }

  /// Runs `fn(i)` for every i in [0, n), distributing indices across the
  /// workers and the calling thread, and blocks until all calls finished.
  /// The first exception thrown by any invocation is rethrown here (the
  /// remaining indices are still consumed, so the pool stays usable).
  /// Safe to call from one thread at a time per pool; nested calls from
  /// within tasks are not supported.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
};

}  // namespace tic

#endif  // TIC_COMMON_THREAD_POOL_H_
