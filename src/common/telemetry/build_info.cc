#include "common/telemetry/build_info.h"

#include <thread>

#include "common/flat/gather.h"
#include "common/telemetry/json.h"

// TIC_BUILD_GIT_SHA and TIC_BUILD_TYPE are passed as compile definitions on
// this file only (see src/common/CMakeLists.txt), so a SHA change recompiles
// one TU instead of the world.
#ifndef TIC_BUILD_GIT_SHA
#define TIC_BUILD_GIT_SHA "unknown"
#endif
#ifndef TIC_BUILD_TYPE
#define TIC_BUILD_TYPE "unknown"
#endif

namespace tic {
namespace telemetry {

const BuildInfo& GetBuildInfo() {
  static const BuildInfo info = [] {
    BuildInfo b;
    b.git_sha = TIC_BUILD_GIT_SHA;
    b.build_type = TIC_BUILD_TYPE;
    if (b.build_type.empty()) b.build_type = "unknown";
#ifdef TIC_TELEMETRY_ENABLED
    b.telemetry_compiled = true;
#else
    b.telemetry_compiled = false;
#endif
    b.simd = flat::GatherBackendName();  // runtime dispatch, not just build
    b.hardware_threads = std::thread::hardware_concurrency();
    return b;
  }();
  return info;
}

std::string BuildInfoJson() {
  const BuildInfo& b = GetBuildInfo();
  std::string out = "{\"git_sha\": \"";
  AppendJsonEscaped(&out, b.git_sha);
  out += "\", \"build_type\": \"";
  AppendJsonEscaped(&out, b.build_type);
  out += "\", \"telemetry\": ";
  out += b.telemetry_compiled ? "true" : "false";
  out += ", \"simd\": \"";
  AppendJsonEscaped(&out, b.simd);
  out += "\", \"threads\": " + std::to_string(b.hardware_threads);
  out += "}";
  return out;
}

}  // namespace telemetry
}  // namespace tic
