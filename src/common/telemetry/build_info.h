#ifndef TIC_COMMON_TELEMETRY_BUILD_INFO_H_
#define TIC_COMMON_TELEMETRY_BUILD_INFO_H_

#include <string>

namespace tic {
namespace telemetry {

/// \brief Build provenance stamped at configure time, attached to bench
/// --json records so BENCH_*.json trajectories are attributable to a commit
/// and configuration.
struct BuildInfo {
  std::string git_sha;     // "unknown" outside a git checkout
  std::string build_type;  // CMAKE_BUILD_TYPE, "unknown" if unset
  bool telemetry_compiled = false;
};

const BuildInfo& GetBuildInfo();

/// {"git_sha": "...", "build_type": "...", "telemetry": true}
std::string BuildInfoJson();

}  // namespace telemetry
}  // namespace tic

#endif  // TIC_COMMON_TELEMETRY_BUILD_INFO_H_
