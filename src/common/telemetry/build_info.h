#ifndef TIC_COMMON_TELEMETRY_BUILD_INFO_H_
#define TIC_COMMON_TELEMETRY_BUILD_INFO_H_

#include <string>

namespace tic {
namespace telemetry {

/// \brief Build provenance stamped at configure time, attached to bench
/// --json records so BENCH_*.json trajectories are attributable to a commit
/// and configuration.
struct BuildInfo {
  std::string git_sha;     // "unknown" outside a git checkout
  std::string build_type;  // CMAKE_BUILD_TYPE, "unknown" if unset
  bool telemetry_compiled = false;
  std::string simd;            // gather-kernel dispatch: "avx2" or "scalar"
  unsigned hardware_threads = 0;  // std::thread::hardware_concurrency()
};

const BuildInfo& GetBuildInfo();

/// {"git_sha": "...", "build_type": "...", "telemetry": true,
///  "simd": "avx2", "threads": 8} — everything a committed BENCH json needs
/// to be self-describing.
std::string BuildInfoJson();

}  // namespace telemetry
}  // namespace tic

#endif  // TIC_COMMON_TELEMETRY_BUILD_INFO_H_
