#include "common/telemetry/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace tic {
namespace telemetry {

void AppendJsonEscaped(std::string* out, const std::string& s) {
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\b':
        *out += "\\b";
        break;
      case '\f':
        *out += "\\f";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(static_cast<char>(c));
        }
    }
  }
}

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

namespace {

// Index-based strict parser; depth-capped so adversarial nesting cannot
// overflow the native stack.
class Parser {
 public:
  Parser(const std::string& text, std::string* error)
      : text_(text), error_(error) {}

  std::optional<JsonValue> Run() {
    SkipWs();
    JsonValue v;
    if (!ParseValue(&v, 0)) return std::nullopt;
    SkipWs();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after top-level value");
    }
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  std::optional<JsonValue> Fail(const std::string& what) {
    if (error_ != nullptr && error_->empty()) {
      *error_ = what + " (at byte " + std::to_string(pos_) + ")";
    }
    return std::nullopt;
  }
  bool FailB(const std::string& what) {
    Fail(what);
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Literal(const char* lit) {
    size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (text_.compare(pos_, n, lit) != 0) return FailB("invalid literal");
    pos_ += n;
    return true;
  }

  bool ParseString(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return FailB("expected string");
    }
    ++pos_;
    while (pos_ < text_.size()) {
      unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return FailB("unescaped control character in string");
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return FailB("truncated escape");
        char e = text_[pos_++];
        switch (e) {
          case '"':
            out->push_back('"');
            break;
          case '\\':
            out->push_back('\\');
            break;
          case '/':
            out->push_back('/');
            break;
          case 'b':
            out->push_back('\b');
            break;
          case 'f':
            out->push_back('\f');
            break;
          case 'n':
            out->push_back('\n');
            break;
          case 'r':
            out->push_back('\r');
            break;
          case 't':
            out->push_back('\t');
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return FailB("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code += static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code += static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code += static_cast<unsigned>(h - 'A' + 10);
              } else {
                return FailB("invalid hex digit in \\u escape");
              }
            }
            // Validation only needs *a* faithful decoding; encode as UTF-8
            // without surrogate-pair recombination.
            if (code < 0x80) {
              out->push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out->push_back(static_cast<char>(0xC0 | (code >> 6)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out->push_back(static_cast<char>(0xE0 | (code >> 12)));
              out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return FailB("invalid escape character");
        }
        continue;
      }
      out->push_back(static_cast<char>(c));
      ++pos_;
    }
    return FailB("unterminated string");
  }

  bool ParseNumber(double* out) {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
      return FailB("invalid number");
    }
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return FailB("digit required after decimal point");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return FailB("digit required in exponent");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    *out = std::strtod(text_.substr(start, pos_ - start).c_str(), nullptr);
    return true;
  }

  bool ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return FailB("nesting too deep");
    if (pos_ >= text_.size()) return FailB("unexpected end of input");
    char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      out->type = JsonValue::Type::kObject;
      SkipWs();
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      while (true) {
        SkipWs();
        std::string key;
        if (!ParseString(&key)) return false;
        SkipWs();
        if (pos_ >= text_.size() || text_[pos_] != ':') {
          return FailB("expected ':' in object");
        }
        ++pos_;
        SkipWs();
        JsonValue v;
        if (!ParseValue(&v, depth + 1)) return false;
        out->object.emplace_back(std::move(key), std::move(v));
        SkipWs();
        if (pos_ >= text_.size()) return FailB("unterminated object");
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (text_[pos_] == '}') {
          ++pos_;
          return true;
        }
        return FailB("expected ',' or '}' in object");
      }
    }
    if (c == '[') {
      ++pos_;
      out->type = JsonValue::Type::kArray;
      SkipWs();
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      while (true) {
        SkipWs();
        JsonValue v;
        if (!ParseValue(&v, depth + 1)) return false;
        out->array.push_back(std::move(v));
        SkipWs();
        if (pos_ >= text_.size()) return FailB("unterminated array");
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (text_[pos_] == ']') {
          ++pos_;
          return true;
        }
        return FailB("expected ',' or ']' in array");
      }
    }
    if (c == '"') {
      out->type = JsonValue::Type::kString;
      return ParseString(&out->string);
    }
    if (c == 't') {
      out->type = JsonValue::Type::kBool;
      out->boolean = true;
      return Literal("true");
    }
    if (c == 'f') {
      out->type = JsonValue::Type::kBool;
      out->boolean = false;
      return Literal("false");
    }
    if (c == 'n') {
      out->type = JsonValue::Type::kNull;
      return Literal("null");
    }
    out->type = JsonValue::Type::kNumber;
    return ParseNumber(&out->number);
  }

  const std::string& text_;
  std::string* error_;
  size_t pos_ = 0;
};

}  // namespace

std::optional<JsonValue> ParseJson(const std::string& text, std::string* error) {
  if (error != nullptr) error->clear();
  return Parser(text, error).Run();
}

}  // namespace telemetry
}  // namespace tic
