#ifndef TIC_COMMON_TELEMETRY_RECORDER_H_
#define TIC_COMMON_TELEMETRY_RECORDER_H_

/// Flight recorder: an always-on, lock-free, per-thread ring buffer of
/// compact structured events describing what the monitor did and when —
/// transactions applied, letter flips, cohort rebuilds/minimizations, epoch
/// resets, automaton compiles, verdict changes, transition-memo spills.
///
/// Design constraints (and how they are met):
///  - The hot path is a warmed automaton/cohort step of a few hundred ns, so
///    recording one event must cost ~10 ns and may not allocate: each thread
///    owns one fixed-capacity ring (pre-sized at creation, slots are plain
///    atomics), timestamps are raw TSC ticks (calibrated against the steady
///    clock only when a snapshot is taken), and sequence numbers are
///    per-thread (no cross-thread contended counter).
///  - Dumps must work from anywhere, including a signal handler: rings live
///    on a lock-free intrusive list that is only ever pushed (never freed),
///    so a reader — even an async-signal context — can walk it without locks
///    or allocation. Slot writes follow a seqlock protocol (seq invalidated,
///    payload stored, seq published with release semantics); readers discard
///    torn entries instead of blocking writers. All fields are atomics, so
///    concurrent snapshot-under-load is TSan-clean by construction.
///  - Bounded memory: capacity * 48 bytes per thread (default 4096 events,
///    ~192 KiB); older events are overwritten, `RecorderDropped()` counts
///    the overwritten ones.
///
/// The recorder is independent of the metrics registry's `Enabled()` gate —
/// `SetRecorderEnabled(false)` turns just the recorder off (used by the
/// recorder-on/off overhead benches). Under `-DTIC_TELEMETRY=OFF` the
/// `TIC_RECORD` macro (telemetry.h) compiles to a sizeof no-op and no
/// recorder symbol is referenced from hot paths; this header and the library
/// code still exist so tools link unconditionally.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#define TIC_RECORDER_HAS_TSC 1
#endif

namespace tic {
namespace telemetry {

enum class EventType : uint32_t {
  kNone = 0,
  kTxnApplied,        // a = time t, b = op count, c = instance count
  kLetterFlip,        // a = PropId, b = new value, c = cohort<<32|slot (~0 none)
  kCohortRebuild,     // a = cohort count, b = cohort slots, c = joint instances
  kCohortMinimize,    // a = collapsed sets, b = sets after, c = cohort index
  kEpochReset,        // a = time t, b = instance count, c = stored word runs
  kAutomatonCompile,  // a = closure size, b = letter count, c = state sets
  kVerdictChange,     // a = time t, b = potentially-satisfied 0/1, c = instances
  kMemoSpill,         // a = new state id, b = memo size, c = letter signature id
  kWatchdogFire,      // a = open-update elapsed ns, b = deadline ms, c = op seq
  kMaxEventType,      // sentinel, not a real event
};

/// Stable lower_snake name ("txn_applied", ...); "?" for out-of-range values.
const char* EventTypeName(EventType t);

/// One decoded event, as returned by snapshots and dump loaders. `seq` is
/// per-thread (1-based); (tid, seq) is unique, global order is by `ts_ns`.
struct RecordedEvent {
  uint64_t ts_ns = 0;
  uint64_t seq = 0;
  uint32_t tid = 0;
  EventType type = EventType::kNone;
  uint64_t a = 0, b = 0, c = 0;
};

namespace recorder_internal {

/// Seqlocked single-writer slot. The owner thread stores payload fields
/// relaxed and publishes `seq` last (release); snapshot readers re-check
/// `seq` after reading the payload and discard the entry on mismatch.
struct Slot {
  std::atomic<uint64_t> seq{0};  // 0 = empty/in-progress
  std::atomic<uint64_t> ticks{0};
  std::atomic<uint64_t> a{0};
  std::atomic<uint64_t> b{0};
  std::atomic<uint64_t> c{0};
  std::atomic<uint32_t> type{0};
};

struct ThreadRing {
  ThreadRing(uint32_t tid_arg, size_t capacity);
  const uint32_t tid;
  const uint64_t mask;  // capacity - 1, capacity is a power of two
  std::atomic<uint64_t> head{0};  // events ever written by the owner thread
  // Timestamp cache, owner thread only (readers never touch it): rdtsc
  // costs ~15 ns under a virtualized TSC — more than the whole slot write —
  // so RecordEvent resamples it once per kTicksResampleEvery events and
  // reuses the cached value in between. Per-thread order stays exact via
  // `seq`; only the cross-thread merge granularity coarsens.
  uint64_t cached_ticks = 0;
  std::vector<Slot> slots;
  ThreadRing* next = nullptr;  // intrusive list link, set once before publish
};

inline constexpr uint64_t kTicksResampleEvery = 64;  // power of two

inline std::atomic<bool> g_recorder_enabled{true};
inline std::atomic<ThreadRing*> g_rings{nullptr};

/// Creates (and registers) the calling thread's ring. Allocates; called at
/// most once per thread, outside any measured window when the caller warms
/// up via `EnsureThreadRing()`.
ThreadRing* CreateThreadRing();

/// The calling thread's cached ring pointer (null until first use).
inline ThreadRing*& TlsRing() {
  thread_local ThreadRing* ring = nullptr;
  return ring;
}

/// Steady-clock ns used for calibration pairs (not the hot path).
uint64_t CoarseNowNs();

inline uint64_t NowTicks() {
#ifdef TIC_RECORDER_HAS_TSC
  return __rdtsc();
#else
  return CoarseNowNs();  // ticks == ns; calibration degenerates to rate 1
#endif
}

}  // namespace recorder_internal

/// Runtime gate, default ON ("always-on"). Independent of telemetry
/// `Enabled()` so the recorder can be toggled in isolation.
inline bool RecorderActive() {
  return recorder_internal::g_recorder_enabled.load(std::memory_order_relaxed);
}
void SetRecorderEnabled(bool on);

/// Ring capacity (events per thread) for rings created after the call;
/// rounded up to a power of two, min 64. Existing rings keep their size.
void SetRecorderRingCapacity(size_t events);
size_t RecorderRingCapacity();

/// Pre-creates the calling thread's ring so the first `TIC_RECORD` on this
/// thread does not allocate. Monitor::Create calls this, which keeps the
/// `ctest -L alloc` zero-allocation gate green with the recorder enabled.
inline void EnsureThreadRing() {
  recorder_internal::ThreadRing*& ring = recorder_internal::TlsRing();
  if (ring == nullptr) ring = recorder_internal::CreateThreadRing();
}

/// The hot write. ~2-3 ns amortized: six relaxed atomic stores, one release
/// store, and one rdtsc per kTicksResampleEvery events (the rdtsc alone
/// costs more than all the stores on virtualized TSCs). Callers go through
/// `TIC_RECORD` (telemetry.h), which adds the `RecorderActive()` check and
/// compiles out under `-DTIC_TELEMETRY=OFF`.
inline void RecordEvent(EventType type, uint64_t a, uint64_t b, uint64_t c) {
  using recorder_internal::Slot;
  using recorder_internal::ThreadRing;
  ThreadRing*& ring = recorder_internal::TlsRing();
  if (ring == nullptr) ring = recorder_internal::CreateThreadRing();
  const uint64_t head = ring->head.load(std::memory_order_relaxed);
  if ((head & (recorder_internal::kTicksResampleEvery - 1)) == 0) {
    ring->cached_ticks = recorder_internal::NowTicks();
  }
  Slot& s = ring->slots[head & ring->mask];
  s.seq.store(0, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  s.ticks.store(ring->cached_ticks, std::memory_order_relaxed);
  s.type.store(static_cast<uint32_t>(type), std::memory_order_relaxed);
  s.a.store(a, std::memory_order_relaxed);
  s.b.store(b, std::memory_order_relaxed);
  s.c.store(c, std::memory_order_relaxed);
  s.seq.store(head + 1, std::memory_order_release);
  ring->head.store(head + 1, std::memory_order_relaxed);
}

/// Consistent decoded view of every ring, sorted by (ts_ns, tid, seq).
/// Torn slots (overwritten mid-read) are skipped. Safe to call from any
/// thread while writers keep recording.
std::vector<RecordedEvent> SnapshotRecorder();

/// Events overwritten (ring wrapped) across all rings, and live ring count.
uint64_t RecorderDropped();
size_t RecorderThreadCount();

/// Clears every ring (drops all recorded events; rings stay registered).
/// Only for test isolation — racy against concurrent writers by design.
void ResetRecorder();

/// JSON export: {"calibration": {...}, "events": [{...}, ...]}.
std::string RecorderJson();

/// On-demand binary dump (format below) of a consistent snapshot.
/// Returns false when the file cannot be written.
bool DumpRecorder(const std::string& path);

/// Async-signal-safe dump of all rings to an open fd using only write(2).
/// Torn/empty slots are skipped; events are NOT sorted (the loader sorts).
/// Returns the number of events written, -1 on write error.
int DumpRecorderToFd(int fd);

/// Binary dump format ("TICREC01"): 8-byte magic, 3 x u64 calibration
/// (base_ticks, base_ns, ns_per_tick as IEEE double bit pattern), then
/// 48-byte records: u64 seq, u64 ticks, u32 tid, u32 type, u64 a, b, c —
/// until EOF. Loaders convert ticks to ns via the calibration and sort.
bool ParseRecorderDump(const char* data, size_t size,
                       std::vector<RecordedEvent>* out, std::string* error);
bool LoadRecorderDump(const std::string& path, std::vector<RecordedEvent>* out,
                      std::string* error);

/// Installs a SIGUSR1 handler that dumps every ring to `path` (truncating)
/// via DumpRecorderToFd; when `on_crash` is set, SIGSEGV/SIGABRT also dump
/// before re-raising with the default disposition. The path is copied into
/// a fixed static buffer so the handler never allocates. Idempotent; the
/// last path wins.
void InstallRecorderDumpHook(const std::string& path, bool on_crash = false);

/// Stall watchdog: a sampling thread that watches one operation slot. The
/// owner arms the slot when an update starts (`Arm`) and disarms it on
/// completion; if a sample finds the same operation still open past the
/// deadline it records a kWatchdogFire event, dumps the recorder to
/// `dump_path` (when set), and notes the stall on stderr — once per
/// operation. Opt-in via `CheckOptions::watchdog_ms`.
class StallWatchdog {
 public:
  struct Options {
    uint64_t deadline_ms = 100;
    std::string dump_path;  // empty: no dump, stderr note only
  };

  explicit StallWatchdog(Options options);
  ~StallWatchdog();  // joins the sampling thread

  StallWatchdog(const StallWatchdog&) = delete;
  StallWatchdog& operator=(const StallWatchdog&) = delete;

  void Arm();
  void Disarm();
  uint64_t fires() const { return fires_.load(std::memory_order_relaxed); }

  /// RAII arm/disarm; tolerates a null watchdog.
  class Scope {
   public:
    explicit Scope(StallWatchdog* w) : w_(w) {
      if (w_ != nullptr) w_->Arm();
    }
    ~Scope() {
      if (w_ != nullptr) w_->Disarm();
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    StallWatchdog* w_;
  };

 private:
  struct Impl;
  Impl* impl_;
  std::atomic<uint64_t> fires_{0};
};

}  // namespace telemetry
}  // namespace tic

#endif  // TIC_COMMON_TELEMETRY_RECORDER_H_
