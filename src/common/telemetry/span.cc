#include "common/telemetry/span.h"

#include <deque>
#include <string>

#include "common/telemetry/trace.h"

namespace tic {
namespace telemetry {
namespace internal {

namespace {

// Thread-private span state. The arena is a deque so node addresses are
// stable; nodes live until thread exit and are only touched by their thread.
thread_local SpanNode* t_current = nullptr;
thread_local std::deque<SpanNode> t_node_arena;
thread_local SpanNode* t_roots = nullptr;  // sibling-linked root list

std::string PathOf(const SpanNode* node) {
  if (node->parent == nullptr) return node->name;
  return PathOf(node->parent) + "/" + node->name;
}

SpanNode* FindOrCreate(SpanNode** head, SpanNode* parent, const char* name) {
  for (SpanNode* n = *head; n != nullptr; n = n->sibling) {
    // Name literals are merged per TU at most; compare contents so the same
    // phase name used from two translation units lands on one node.
    if (n->name == name || std::string(n->name) == name) return n;
  }
  SpanNode& node = t_node_arena.emplace_back();
  node.name = name;
  node.parent = parent;
  node.sibling = *head;
  *head = &node;
  node.histogram =
      &Registry::Instance().GetHistogram("span/" + PathOf(&node));
  return &node;
}

}  // namespace

SpanNode* EnterNode(const char* name) {
  SpanNode* prev = t_current;
  SpanNode** head = prev == nullptr ? &t_roots : &prev->first_child;
  t_current = FindOrCreate(head, prev, name);
  return prev;
}

void ExitNode(SpanNode* prev) { t_current = prev; }

}  // namespace internal

void Span::Finish() {
  uint64_t end_ns = NowNs();
  uint64_t dur = end_ns >= start_ns_ ? end_ns - start_ns_ : 0;
  internal::SpanNode* node = internal::t_current;
  if (node != nullptr) {
    node->histogram->Record(dur);
    if (TracingActive()) {
      internal::EmitTraceEvent(node->name, start_ns_, dur);
    }
  }
  internal::ExitNode(prev_);
}

}  // namespace telemetry
}  // namespace tic
