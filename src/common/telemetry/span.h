#ifndef TIC_COMMON_TELEMETRY_SPAN_H_
#define TIC_COMMON_TELEMETRY_SPAN_H_

// Scoped phase spans. A Span is an RAII timer that (a) nests: concurrent
// spans on one thread form a tree keyed by the span-name literals, (b)
// aggregates: each distinct path records into a registry histogram named
// "span/<parent-path>/<name>" so per-phase totals fall out of the normal
// metrics snapshot, and (c) feeds the Chrome trace sink when one is active.
//
// Use via the TIC_SPAN("name") macro in telemetry.h; names must be string
// literals (node identity is the pointer, and TraceEvent keeps the pointer).

#include <cstdint>

#include "common/telemetry/registry.h"

namespace tic {
namespace telemetry {

class Histogram;

namespace internal {
/// \brief Per-thread node of the span tree. Nodes are interned per
/// (thread, parent, name-literal) on first entry and cached, so steady-state
/// span entry/exit is two pointer moves plus a clock read.
struct SpanNode {
  const char* name = nullptr;
  SpanNode* parent = nullptr;
  Histogram* histogram = nullptr;  // "span/<path>" in the registry
  SpanNode* sibling = nullptr;     // head of parent's child list links
  SpanNode* first_child = nullptr;
};

/// Returns the current thread's node for `name` under the current span,
/// creating (and registering its histogram) on first use, and makes it
/// current. Returns the previous current node for the paired ExitNode.
SpanNode* EnterNode(const char* name);
void ExitNode(SpanNode* prev);
}  // namespace internal

/// \brief RAII phase span (see file comment). Cheap no-op when telemetry is
/// disabled: the constructor reads one atomic and stops.
class Span {
 public:
  explicit Span(const char* name) {
    if (!Enabled()) return;
    prev_ = internal::EnterNode(name);
    active_ = true;
    start_ns_ = NowNs();
  }
  ~Span() {
    if (active_) Finish();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  void Finish();

  internal::SpanNode* prev_ = nullptr;
  uint64_t start_ns_ = 0;
  bool active_ = false;
};

}  // namespace telemetry
}  // namespace tic

#endif  // TIC_COMMON_TELEMETRY_SPAN_H_
