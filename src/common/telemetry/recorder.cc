#include "common/telemetry/recorder.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <thread>

namespace tic {
namespace telemetry {

namespace recorder_internal {

namespace {

std::atomic<size_t> g_capacity{4096};
std::atomic<uint64_t> g_dropped_reset{0};  // head total subtracted by Reset

// Calibration base pair, captured once at first ring creation so every tick
// value the recorder ever stores is >= base_ticks. Plain atomics: the signal
// handler reads them without locks.
std::atomic<uint64_t> g_base_ticks{0};
std::atomic<uint64_t> g_base_ns{0};
std::atomic<bool> g_calibrated{false};

void EnsureCalibration() {
  bool expected = false;
  if (g_calibrated.compare_exchange_strong(expected, true,
                                           std::memory_order_acq_rel)) {
    g_base_ticks.store(NowTicks(), std::memory_order_relaxed);
    g_base_ns.store(CoarseNowNs(), std::memory_order_relaxed);
  }
}

// ns per tick, measured against the elapsed (ticks, ns) span since the base
// pair. Returns 1.0 until enough ticks have elapsed to divide by.
double RateNow() {
  if (!g_calibrated.load(std::memory_order_acquire)) return 1.0;
  const uint64_t ticks = NowTicks();
  const uint64_t ns = CoarseNowNs();
  const uint64_t base_ticks = g_base_ticks.load(std::memory_order_relaxed);
  const uint64_t base_ns = g_base_ns.load(std::memory_order_relaxed);
  if (ticks <= base_ticks + 1024) return 1.0;
  return static_cast<double>(ns - base_ns) /
         static_cast<double>(ticks - base_ticks);
}

size_t RoundUpPow2(size_t n) {
  size_t p = 64;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

uint64_t CoarseNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

ThreadRing::ThreadRing(uint32_t tid_arg, size_t capacity)
    : tid(tid_arg), mask(capacity - 1), slots(capacity) {}

ThreadRing* CreateThreadRing() {
  EnsureCalibration();
  static std::atomic<uint32_t> next_tid{0};
  const uint32_t tid = next_tid.fetch_add(1, std::memory_order_relaxed);
  ThreadRing* ring = new ThreadRing(
      tid, RoundUpPow2(g_capacity.load(std::memory_order_relaxed)));
  // Publish on the intrusive list; rings are never removed, so a reader that
  // loaded the head at any point walks a stable suffix.
  ThreadRing* head = g_rings.load(std::memory_order_acquire);
  do {
    ring->next = head;
  } while (!g_rings.compare_exchange_weak(head, ring,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire));
  return ring;
}

}  // namespace recorder_internal

using recorder_internal::CoarseNowNs;
using recorder_internal::g_rings;
using recorder_internal::NowTicks;
using recorder_internal::RateNow;
using recorder_internal::Slot;
using recorder_internal::ThreadRing;

const char* EventTypeName(EventType t) {
  switch (t) {
    case EventType::kNone: return "none";
    case EventType::kTxnApplied: return "txn_applied";
    case EventType::kLetterFlip: return "letter_flip";
    case EventType::kCohortRebuild: return "cohort_rebuild";
    case EventType::kCohortMinimize: return "cohort_minimize";
    case EventType::kEpochReset: return "epoch_reset";
    case EventType::kAutomatonCompile: return "automaton_compile";
    case EventType::kVerdictChange: return "verdict_change";
    case EventType::kMemoSpill: return "memo_spill";
    case EventType::kWatchdogFire: return "watchdog_fire";
    case EventType::kMaxEventType: break;
  }
  return "?";
}

void SetRecorderEnabled(bool on) {
  recorder_internal::g_recorder_enabled.store(on, std::memory_order_relaxed);
}

void SetRecorderRingCapacity(size_t events) {
  recorder_internal::g_capacity.store(events, std::memory_order_relaxed);
}

size_t RecorderRingCapacity() {
  return recorder_internal::RoundUpPow2(
      recorder_internal::g_capacity.load(std::memory_order_relaxed));
}

namespace {

// Seqlock read of one slot; false when the slot is empty or torn.
bool ReadSlot(const Slot& s, uint64_t* seq, uint64_t* ticks, uint32_t* type,
              uint64_t* a, uint64_t* b, uint64_t* c) {
  const uint64_t s1 = s.seq.load(std::memory_order_acquire);
  if (s1 == 0) return false;
  *ticks = s.ticks.load(std::memory_order_relaxed);
  *type = s.type.load(std::memory_order_relaxed);
  *a = s.a.load(std::memory_order_relaxed);
  *b = s.b.load(std::memory_order_relaxed);
  *c = s.c.load(std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_acquire);
  if (s.seq.load(std::memory_order_relaxed) != s1) return false;
  *seq = s1;
  if (*type == 0 || *type >= static_cast<uint32_t>(EventType::kMaxEventType)) {
    return false;
  }
  return true;
}

uint64_t TicksToNs(uint64_t ticks, uint64_t base_ticks, uint64_t base_ns,
                   double rate) {
  if (ticks <= base_ticks) return base_ns;
  return base_ns + static_cast<uint64_t>(
                       static_cast<double>(ticks - base_ticks) * rate);
}

}  // namespace

std::vector<RecordedEvent> SnapshotRecorder() {
  std::vector<RecordedEvent> out;
  const uint64_t base_ticks =
      recorder_internal::g_base_ticks.load(std::memory_order_relaxed);
  const uint64_t base_ns =
      recorder_internal::g_base_ns.load(std::memory_order_relaxed);
  const double rate = RateNow();
  for (ThreadRing* r = g_rings.load(std::memory_order_acquire); r != nullptr;
       r = r->next) {
    const size_t cap = r->mask + 1;
    for (size_t i = 0; i < cap; ++i) {
      RecordedEvent e;
      uint64_t ticks = 0;
      uint32_t type = 0;
      if (!ReadSlot(r->slots[i], &e.seq, &ticks, &type, &e.a, &e.b, &e.c)) {
        continue;
      }
      e.tid = r->tid;
      e.type = static_cast<EventType>(type);
      e.ts_ns = TicksToNs(ticks, base_ticks, base_ns, rate);
      out.push_back(e);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const RecordedEvent& x, const RecordedEvent& y) {
              if (x.ts_ns != y.ts_ns) return x.ts_ns < y.ts_ns;
              if (x.tid != y.tid) return x.tid < y.tid;
              return x.seq < y.seq;
            });
  return out;
}

uint64_t RecorderDropped() {
  uint64_t dropped = 0;
  for (ThreadRing* r = g_rings.load(std::memory_order_acquire); r != nullptr;
       r = r->next) {
    const uint64_t head = r->head.load(std::memory_order_relaxed);
    const uint64_t cap = r->mask + 1;
    if (head > cap) dropped += head - cap;
  }
  return dropped;
}

size_t RecorderThreadCount() {
  size_t n = 0;
  for (ThreadRing* r = g_rings.load(std::memory_order_acquire); r != nullptr;
       r = r->next) {
    ++n;
  }
  return n;
}

void ResetRecorder() {
  for (ThreadRing* r = g_rings.load(std::memory_order_acquire); r != nullptr;
       r = r->next) {
    for (Slot& s : r->slots) s.seq.store(0, std::memory_order_release);
  }
}

std::string RecorderJson() {
  std::vector<RecordedEvent> events = SnapshotRecorder();
  std::string out = "{";
  char buf[256];
  snprintf(buf, sizeof(buf),
           "\"calibration\": {\"base_ticks\": %llu, \"base_ns\": %llu, "
           "\"ns_per_tick\": %.17g},\n \"events\": [",
           static_cast<unsigned long long>(
               recorder_internal::g_base_ticks.load(std::memory_order_relaxed)),
           static_cast<unsigned long long>(
               recorder_internal::g_base_ns.load(std::memory_order_relaxed)),
           recorder_internal::RateNow());
  out += buf;
  for (size_t i = 0; i < events.size(); ++i) {
    const RecordedEvent& e = events[i];
    snprintf(buf, sizeof(buf),
             "%s\n  {\"ts_ns\": %llu, \"tid\": %u, \"seq\": %llu, "
             "\"type\": \"%s\", \"a\": %llu, \"b\": %llu, \"c\": %llu}",
             i == 0 ? "" : ",", static_cast<unsigned long long>(e.ts_ns),
             e.tid, static_cast<unsigned long long>(e.seq),
             EventTypeName(e.type), static_cast<unsigned long long>(e.a),
             static_cast<unsigned long long>(e.b),
             static_cast<unsigned long long>(e.c));
    out += buf;
  }
  out += "\n]}\n";
  return out;
}

namespace {

constexpr char kMagic[8] = {'T', 'I', 'C', 'R', 'E', 'C', '0', '1'};
constexpr size_t kHeaderBytes = 8 + 3 * 8;
constexpr size_t kRecordBytes = 48;

void PutU64(char* p, uint64_t v) { memcpy(p, &v, 8); }
void PutU32(char* p, uint32_t v) { memcpy(p, &v, 4); }
uint64_t GetU64(const char* p) {
  uint64_t v;
  memcpy(&v, p, 8);
  return v;
}
uint32_t GetU32(const char* p) {
  uint32_t v;
  memcpy(&v, p, 4);
  return v;
}

void PackRecord(char* p, uint64_t seq, uint64_t ticks, uint32_t tid,
                uint32_t type, uint64_t a, uint64_t b, uint64_t c) {
  PutU64(p, seq);
  PutU64(p + 8, ticks);
  PutU32(p + 16, tid);
  PutU32(p + 20, type);
  PutU64(p + 24, a);
  PutU64(p + 32, b);
  PutU64(p + 40, c);
}

void PackHeader(char* p, uint64_t base_ticks, uint64_t base_ns, double rate) {
  memcpy(p, kMagic, 8);
  PutU64(p + 8, base_ticks);
  PutU64(p + 16, base_ns);
  uint64_t rate_bits;
  memcpy(&rate_bits, &rate, 8);
  PutU64(p + 24, rate_bits);
}

// Retries short writes; async-signal-safe.
bool WriteAll(int fd, const char* data, size_t size) {
  size_t off = 0;
  while (off < size) {
    ssize_t n = write(fd, data + off, size - off);
    if (n < 0) return false;
    off += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

bool DumpRecorder(const std::string& path) {
  std::vector<RecordedEvent> events = SnapshotRecorder();
  FILE* f = fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  char header[kHeaderBytes];
  // Snapshot events already carry ns: identity calibration.
  PackHeader(header, 0, 0, 1.0);
  bool ok = fwrite(header, 1, sizeof(header), f) == sizeof(header);
  char rec[kRecordBytes];
  for (const RecordedEvent& e : events) {
    if (!ok) break;
    PackRecord(rec, e.seq, e.ts_ns, e.tid, static_cast<uint32_t>(e.type), e.a,
               e.b, e.c);
    ok = fwrite(rec, 1, sizeof(rec), f) == sizeof(rec);
  }
  ok = (fclose(f) == 0) && ok;
  return ok;
}

int DumpRecorderToFd(int fd) {
  char buf[kHeaderBytes + 85 * kRecordBytes];  // ~4 KiB stack batches
  PackHeader(buf,
             recorder_internal::g_base_ticks.load(std::memory_order_relaxed),
             recorder_internal::g_base_ns.load(std::memory_order_relaxed),
             RateNow());
  size_t fill = kHeaderBytes;
  int events = 0;
  for (ThreadRing* r = g_rings.load(std::memory_order_acquire); r != nullptr;
       r = r->next) {
    const size_t cap = r->mask + 1;
    for (size_t i = 0; i < cap; ++i) {
      uint64_t seq, ticks, a, b, c;
      uint32_t type;
      if (!ReadSlot(r->slots[i], &seq, &ticks, &type, &a, &b, &c)) continue;
      if (fill + kRecordBytes > sizeof(buf)) {
        if (!WriteAll(fd, buf, fill)) return -1;
        fill = 0;
      }
      PackRecord(buf + fill, seq, ticks, r->tid, type, a, b, c);
      fill += kRecordBytes;
      ++events;
    }
  }
  if (fill > 0 && !WriteAll(fd, buf, fill)) return -1;
  return events;
}

bool ParseRecorderDump(const char* data, size_t size,
                       std::vector<RecordedEvent>* out, std::string* error) {
  out->clear();
  if (size < kHeaderBytes || memcmp(data, kMagic, 8) != 0) {
    if (error != nullptr) *error = "not a TICREC01 recorder dump";
    return false;
  }
  const uint64_t base_ticks = GetU64(data + 8);
  const uint64_t base_ns = GetU64(data + 16);
  const uint64_t rate_bits = GetU64(data + 24);
  double rate;
  memcpy(&rate, &rate_bits, 8);
  if (!(rate > 0.0) || rate > 1e6) rate = 1.0;  // reject NaN/garbage
  size_t off = kHeaderBytes;
  while (off + kRecordBytes <= size) {
    const char* p = data + off;
    RecordedEvent e;
    e.seq = GetU64(p);
    e.ts_ns = TicksToNs(GetU64(p + 8), base_ticks, base_ns, rate);
    e.tid = GetU32(p + 16);
    e.type = static_cast<EventType>(GetU32(p + 20));
    e.a = GetU64(p + 24);
    e.b = GetU64(p + 32);
    e.c = GetU64(p + 40);
    if (e.type != EventType::kNone && e.type < EventType::kMaxEventType) {
      out->push_back(e);
    }
    off += kRecordBytes;
  }
  if (off != size) {
    if (error != nullptr) *error = "truncated trailing record";
    return false;
  }
  std::sort(out->begin(), out->end(),
            [](const RecordedEvent& x, const RecordedEvent& y) {
              if (x.ts_ns != y.ts_ns) return x.ts_ns < y.ts_ns;
              if (x.tid != y.tid) return x.tid < y.tid;
              return x.seq < y.seq;
            });
  return true;
}

bool LoadRecorderDump(const std::string& path, std::vector<RecordedEvent>* out,
                      std::string* error) {
  FILE* f = fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  std::string data;
  char buf[1 << 16];
  size_t n;
  while ((n = fread(buf, 1, sizeof(buf), f)) > 0) data.append(buf, n);
  fclose(f);
  return ParseRecorderDump(data.data(), data.size(), out, error);
}

// ---------------------------------------------------------------------------
// Signal dump hook
// ---------------------------------------------------------------------------

namespace {

char g_dump_path[4096] = {0};

void DumpToPathFromSignal() {
  if (g_dump_path[0] == '\0') return;
  int fd = open(g_dump_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return;
  DumpRecorderToFd(fd);
  close(fd);
}

void OnDumpSignal(int) { DumpToPathFromSignal(); }

void OnCrashSignal(int sig) {
  DumpToPathFromSignal();
  signal(sig, SIG_DFL);
  raise(sig);
}

}  // namespace

void InstallRecorderDumpHook(const std::string& path, bool on_crash) {
  size_t n = path.size();
  if (n >= sizeof(g_dump_path)) n = sizeof(g_dump_path) - 1;
  memcpy(g_dump_path, path.data(), n);
  g_dump_path[n] = '\0';
  struct sigaction sa;
  memset(&sa, 0, sizeof(sa));
  sa.sa_handler = OnDumpSignal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  sigaction(SIGUSR1, &sa, nullptr);
  if (on_crash) {
    struct sigaction crash;
    memset(&crash, 0, sizeof(crash));
    crash.sa_handler = OnCrashSignal;
    sigemptyset(&crash.sa_mask);
    crash.sa_flags = SA_RESTART;
    sigaction(SIGSEGV, &crash, nullptr);
    sigaction(SIGABRT, &crash, nullptr);
  }
}

// ---------------------------------------------------------------------------
// Stall watchdog
// ---------------------------------------------------------------------------

struct StallWatchdog::Impl {
  Options options;
  std::atomic<uint64_t> op_start_ns{0};  // 0 = no operation open
  std::atomic<uint64_t> op_seq{0};
  std::mutex mu;
  std::condition_variable cv;
  bool stop = false;
  std::thread thread;
};

StallWatchdog::StallWatchdog(Options options) : impl_(new Impl) {
  impl_->options = std::move(options);
  if (impl_->options.deadline_ms == 0) impl_->options.deadline_ms = 1;
  impl_->thread = std::thread([this] {
    Impl* im = impl_;
    const uint64_t deadline_ns = im->options.deadline_ms * 1000000ull;
    // Sample at half the deadline so an overrun is caught within 1.5x.
    const auto period =
        std::chrono::nanoseconds(deadline_ns / 2 + 1);
    uint64_t dumped_seq = 0;
    std::unique_lock<std::mutex> lock(im->mu);
    while (!im->stop) {
      im->cv.wait_for(lock, period);
      if (im->stop) break;
      const uint64_t start = im->op_start_ns.load(std::memory_order_acquire);
      if (start == 0) continue;
      const uint64_t now = CoarseNowNs();
      if (now - start < deadline_ns) continue;
      const uint64_t seq = im->op_seq.load(std::memory_order_relaxed);
      if (seq == dumped_seq) continue;  // already reported this operation
      dumped_seq = seq;
      fires_.fetch_add(1, std::memory_order_relaxed);
      RecordEvent(EventType::kWatchdogFire, now - start,
                  im->options.deadline_ms, seq);
      if (!im->options.dump_path.empty()) {
        DumpRecorder(im->options.dump_path);
        fprintf(stderr,
                "tic: watchdog: update open for %.1f ms (deadline %llu ms); "
                "recorder dumped to %s\n",
                static_cast<double>(now - start) / 1e6,
                static_cast<unsigned long long>(im->options.deadline_ms),
                im->options.dump_path.c_str());
      } else {
        fprintf(stderr,
                "tic: watchdog: update open for %.1f ms (deadline %llu ms)\n",
                static_cast<double>(now - start) / 1e6,
                static_cast<unsigned long long>(im->options.deadline_ms));
      }
    }
  });
}

StallWatchdog::~StallWatchdog() {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->stop = true;
  }
  impl_->cv.notify_all();
  impl_->thread.join();
  delete impl_;
}

void StallWatchdog::Arm() {
  impl_->op_seq.fetch_add(1, std::memory_order_relaxed);
  impl_->op_start_ns.store(CoarseNowNs(), std::memory_order_release);
}

void StallWatchdog::Disarm() {
  impl_->op_start_ns.store(0, std::memory_order_release);
}

}  // namespace telemetry
}  // namespace tic
