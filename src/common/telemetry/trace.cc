#include "common/telemetry/trace.h"

#include <atomic>
#include <cstdio>

#include "common/telemetry/json.h"

namespace tic {
namespace telemetry {

TraceSink::TraceSink(size_t max_events) : max_events_(max_events) {
  events_.reserve(max_events_ < 4096 ? max_events_ : 4096);
}

void TraceSink::Append(const TraceEvent& ev) {
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= max_events_) {
    ++dropped_;
    return;
  }
  // Events arrive in COMPLETION order, so a parent span that started before
  // the first-completed child would be clamped to ts 0 if the base were just
  // the first arrival — a phantom interleaving in the rendered trace. The
  // base is the minimum start seen, keeping every relative ts exact.
  if (events_.empty() || ev.start_ns < base_ns_) base_ns_ = ev.start_ns;
  events_.push_back(ev);
}

std::string TraceSink::SerializeChromeTrace() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  out.reserve(64 + events_.size() * 96);
  out += "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  for (const TraceEvent& ev : events_) {
    if (!first) out += ",";
    first = false;
    uint64_t rel_ns = ev.start_ns >= base_ns_ ? ev.start_ns - base_ns_ : 0;
    char buf[64];
    out += "\n{\"ph\": \"X\", \"name\": \"";
    AppendJsonEscaped(&out, ev.name);
    // Chrome traces use microsecond floats; keep three decimals of ns.
    std::snprintf(buf, sizeof(buf), "\", \"ts\": %llu.%03llu, \"dur\": ",
                  static_cast<unsigned long long>(rel_ns / 1000),
                  static_cast<unsigned long long>(rel_ns % 1000));
    out += buf;
    std::snprintf(buf, sizeof(buf), "%llu.%03llu, \"pid\": 1, \"tid\": %u}",
                  static_cast<unsigned long long>(ev.dur_ns / 1000),
                  static_cast<unsigned long long>(ev.dur_ns % 1000), ev.tid);
    out += buf;
  }
  if (dropped_ > 0) {
    if (!first) out += ",";
    out += "\n{\"ph\": \"M\", \"name\": \"dropped_events\", \"pid\": 1, "
           "\"args\": {\"count\": " + std::to_string(dropped_) + "}}";
  }
  out += "\n]}\n";
  return out;
}

bool TraceSink::WriteChromeTrace(const std::string& path) const {
  std::string text = SerializeChromeTrace();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  size_t written = std::fwrite(text.data(), 1, text.size(), f);
  bool ok = std::fclose(f) == 0 && written == text.size();
  return ok;
}

void TraceSink::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  dropped_ = 0;
  base_ns_ = 0;
}

size_t TraceSink::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

uint64_t TraceSink::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

namespace {
std::mutex g_sink_mu;
std::shared_ptr<TraceSink> g_sink;  // guarded by g_sink_mu
}  // namespace

void SetTraceSink(std::shared_ptr<TraceSink> sink) {
  std::lock_guard<std::mutex> lock(g_sink_mu);
  g_sink = std::move(sink);
  internal::g_tracing.store(g_sink != nullptr, std::memory_order_relaxed);
}

std::shared_ptr<TraceSink> CurrentTraceSink() {
  std::lock_guard<std::mutex> lock(g_sink_mu);
  return g_sink;
}

namespace internal {

uint32_t CurrentThreadId() {
  static std::atomic<uint32_t> next{0};
  thread_local uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void EmitTraceEvent(const char* name, uint64_t start_ns, uint64_t dur_ns) {
  std::shared_ptr<TraceSink> sink = CurrentTraceSink();
  if (sink == nullptr) return;  // raced with SetTraceSink(nullptr)
  TraceEvent ev;
  ev.name = name;
  ev.start_ns = start_ns;
  ev.dur_ns = dur_ns;
  ev.tid = CurrentThreadId();
  sink->Append(ev);
}

}  // namespace internal

bool ValidateChromeTrace(const std::string& text, std::string* error,
                         size_t* num_events) {
  if (num_events != nullptr) *num_events = 0;
  std::string parse_error;
  std::optional<JsonValue> doc = ParseJson(text, &parse_error);
  if (!doc.has_value()) {
    if (error != nullptr) *error = "not valid JSON: " + parse_error;
    return false;
  }
  if (!doc->Is(JsonValue::Type::kObject)) {
    if (error != nullptr) *error = "top-level value is not an object";
    return false;
  }
  const JsonValue* events = doc->Find("traceEvents");
  if (events == nullptr || !events->Is(JsonValue::Type::kArray)) {
    if (error != nullptr) *error = "missing traceEvents array";
    return false;
  }
  size_t x_events = 0;
  for (size_t i = 0; i < events->array.size(); ++i) {
    const JsonValue& ev = events->array[i];
    if (!ev.Is(JsonValue::Type::kObject)) {
      if (error != nullptr) {
        *error = "traceEvents[" + std::to_string(i) + "] is not an object";
      }
      return false;
    }
    const JsonValue* ph = ev.Find("ph");
    if (ph == nullptr || !ph->Is(JsonValue::Type::kString)) {
      if (error != nullptr) {
        *error = "traceEvents[" + std::to_string(i) + "] missing \"ph\"";
      }
      return false;
    }
    if (ph->string != "X") continue;  // metadata events need only ph+name
    ++x_events;
    for (const char* field : {"name", "ts", "dur", "pid", "tid"}) {
      const JsonValue* v = ev.Find(field);
      bool ok = v != nullptr &&
                (field[0] == 'n' && field[1] == 'a'
                     ? v->Is(JsonValue::Type::kString)
                     : v->Is(JsonValue::Type::kNumber));
      if (!ok) {
        if (error != nullptr) {
          *error = "traceEvents[" + std::to_string(i) + "] missing or " +
                   "mistyped \"" + field + "\"";
        }
        return false;
      }
    }
  }
  if (num_events != nullptr) *num_events = x_events;
  return true;
}

}  // namespace telemetry
}  // namespace tic
