#ifndef TIC_COMMON_TELEMETRY_REGISTRY_H_
#define TIC_COMMON_TELEMETRY_REGISTRY_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace tic {
namespace telemetry {

/// \brief Process-wide runtime switch. All instrumentation macros check this
/// first (one relaxed atomic load); when false, no metric is touched and no
/// span timestamp is read. Off by default — benches and tests opt in.
namespace internal {
inline std::atomic<bool> g_enabled{false};

/// Number of per-metric shards. Each thread is assigned one shard round-robin
/// on first use; with thread pools at or below hardware concurrency, distinct
/// worker threads land on distinct cache lines and increments never contend.
inline constexpr uint32_t kShards = 16;

inline std::atomic<uint32_t> g_shard_seq{0};
inline uint32_t ShardIndex() {
  thread_local uint32_t idx =
      g_shard_seq.fetch_add(1, std::memory_order_relaxed) % kShards;
  return idx;
}

struct alignas(64) ShardCell {
  std::atomic<uint64_t> value{0};
};
}  // namespace internal

inline bool Enabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}
inline void SetEnabled(bool on) {
  internal::g_enabled.store(on, std::memory_order_relaxed);
}

/// Monotonic nanoseconds; the clock behind spans and trace timestamps.
inline uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// \brief Monotonic counter, sharded across threads (see kShards). Add is one
/// relaxed fetch_add on a thread-private cache line; Value folds the shards.
class Counter {
 public:
  void Add(uint64_t delta) {
    cells_[internal::ShardIndex()].value.fetch_add(delta,
                                                   std::memory_order_relaxed);
  }
  uint64_t Value() const {
    uint64_t sum = 0;
    for (const auto& c : cells_) sum += c.value.load(std::memory_order_relaxed);
    return sum;
  }
  void Reset() {
    for (auto& c : cells_) c.value.store(0, std::memory_order_relaxed);
  }

 private:
  internal::ShardCell cells_[internal::kShards];
};

/// \brief Point-in-time level (e.g. queue depth) plus its high-water mark.
/// Not sharded: gauges express a single global level, so Set/Add target one
/// atomic (gauge updates are orders of magnitude rarer than counter bumps).
class Gauge {
 public:
  void Set(int64_t v) {
    value_.store(v, std::memory_order_relaxed);
    UpdateMax(v);
  }
  void Add(int64_t delta) {
    int64_t v = value_.fetch_add(delta, std::memory_order_relaxed) + delta;
    UpdateMax(v);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  int64_t Max() const { return max_.load(std::memory_order_relaxed); }
  void Reset() {
    value_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  void UpdateMax(int64_t v) {
    int64_t m = max_.load(std::memory_order_relaxed);
    while (v > m &&
           !max_.compare_exchange_weak(m, v, std::memory_order_relaxed)) {
    }
  }
  std::atomic<int64_t> value_{0};
  std::atomic<int64_t> max_{0};
};

/// \brief Folded histogram contents (one consistent read of the shards).
struct HistogramData {
  static constexpr uint32_t kBuckets = 64;
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;
  std::array<uint64_t, kBuckets> buckets{};  // bucket b: values of bit-width b

  double Mean() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count);
  }
  /// Nearest-rank p-quantile (p in [0,1]), linearly interpolated within the
  /// log-scale bucket holding the rank (values inside a bucket are assumed
  /// uniform). Exact for samples that fill their buckets evenly; never
  /// exceeds `max`.
  uint64_t ApproxPercentile(double p) const;
};

/// \brief Log-scale latency/size histogram: 64 power-of-two buckets (bucket =
/// bit width of the value), per-shard bucket arrays so concurrent Record calls
/// from pool workers do not contend.
class Histogram {
 public:
  static uint32_t BucketOf(uint64_t v) {
    uint32_t w = v == 0 ? 0 : static_cast<uint32_t>(64 - __builtin_clzll(v));
    return w >= HistogramData::kBuckets ? HistogramData::kBuckets - 1 : w;
  }

  void Record(uint64_t v) {
    Shard& s = shards_[internal::ShardIndex()];
    s.buckets[BucketOf(v)].fetch_add(1, std::memory_order_relaxed);
    s.count.fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(v, std::memory_order_relaxed);
    uint64_t m = s.max.load(std::memory_order_relaxed);
    while (v > m &&
           !s.max.compare_exchange_weak(m, v, std::memory_order_relaxed)) {
    }
  }

  HistogramData Snapshot() const;
  void Reset();

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> max{0};
    std::array<std::atomic<uint64_t>, HistogramData::kBuckets> buckets{};
  };
  Shard shards_[internal::kShards];
};

struct GaugeData {
  int64_t value = 0;
  int64_t max = 0;
};

/// \brief One consistent collection pass over the registry, sorted by metric
/// name (deterministic output for goldens and diffs).
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, GaugeData>> gauges;
  std::vector<std::pair<std::string, HistogramData>> histograms;

  /// Flat JSON object: {"name": v, "hist/count": n, "hist/sum": s, ...}. The
  /// shape consumed by the bench --json "telemetry" section.
  std::string ToJson() const;
  /// Human-readable summary: the span tree (per-phase wall time) followed by
  /// counters, gauges, and non-span histograms.
  std::string SummaryTable() const;
};

/// \brief Process-wide registry of named metrics. Metrics are created on
/// first use and never destroyed (instrumentation sites cache references in
/// function-local statics), so handles stay valid for the process lifetime.
class Registry {
 public:
  /// Leaky singleton: never destructed, so worker threads draining after main
  /// (or static destructors flushing traces) can still touch metrics safely.
  static Registry& Instance();

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  MetricsSnapshot Collect() const;
  /// Zeroes every registered metric (names stay registered). For tests and
  /// per-run deltas.
  void Reset();

 private:
  Registry() = default;

  mutable std::mutex mu_;
  std::unordered_map<std::string, std::unique_ptr<Counter>> counters_;
  std::unordered_map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::unordered_map<std::string, std::unique_ptr<Histogram>> histograms_;
};

inline MetricsSnapshot CollectMetrics() { return Registry::Instance().Collect(); }
inline void ResetMetrics() { Registry::Instance().Reset(); }

}  // namespace telemetry
}  // namespace tic

#endif  // TIC_COMMON_TELEMETRY_REGISTRY_H_
