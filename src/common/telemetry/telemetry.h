#ifndef TIC_COMMON_TELEMETRY_TELEMETRY_H_
#define TIC_COMMON_TELEMETRY_TELEMETRY_H_

// Umbrella header and instrumentation macros for the telemetry layer.
//
// Two gates, cheapest first:
//   compile time — the TIC_TELEMETRY CMake option (default ON) defines
//     TIC_TELEMETRY_ENABLED. When OFF every macro below expands to nothing,
//     so hot paths reference zero telemetry symbols. The library itself is
//     still built (exporters, validation, build info stay available).
//   run time — telemetry::SetEnabled(true) flips one process-wide atomic;
//     every macro checks it first. Disabled-at-runtime cost: one relaxed
//     load per site.
//
// Metric-name arguments must be string literals: each site caches its
// registry handle in a function-local static, so the name is looked up once
// per site for the process lifetime.

#include "common/telemetry/build_info.h"
#include "common/telemetry/recorder.h"
#include "common/telemetry/registry.h"
#include "common/telemetry/span.h"
#include "common/telemetry/trace.h"

#ifdef TIC_TELEMETRY_ENABLED

#define TIC_TELEMETRY_CONCAT_INNER(a, b) a##b
#define TIC_TELEMETRY_CONCAT(a, b) TIC_TELEMETRY_CONCAT_INNER(a, b)

/// Times the enclosing scope as phase `name` (string literal). Nestable;
/// nested spans aggregate under "span/<outer>/<inner>".
#define TIC_SPAN(name) \
  ::tic::telemetry::Span TIC_TELEMETRY_CONCAT(tic_span_, __LINE__)(name)

#define TIC_COUNTER_ADD(name, delta)                                        \
  do {                                                                      \
    if (::tic::telemetry::Enabled()) {                                      \
      static ::tic::telemetry::Counter& tic_counter_ =                      \
          ::tic::telemetry::Registry::Instance().GetCounter(name);          \
      tic_counter_.Add(static_cast<uint64_t>(delta));                       \
    }                                                                       \
  } while (0)

#define TIC_GAUGE_SET(name, value)                                          \
  do {                                                                      \
    if (::tic::telemetry::Enabled()) {                                      \
      static ::tic::telemetry::Gauge& tic_gauge_ =                          \
          ::tic::telemetry::Registry::Instance().GetGauge(name);            \
      tic_gauge_.Set(static_cast<int64_t>(value));                          \
    }                                                                       \
  } while (0)

#define TIC_GAUGE_ADD(name, delta)                                          \
  do {                                                                      \
    if (::tic::telemetry::Enabled()) {                                      \
      static ::tic::telemetry::Gauge& tic_gauge_ =                          \
          ::tic::telemetry::Registry::Instance().GetGauge(name);            \
      tic_gauge_.Add(static_cast<int64_t>(delta));                          \
    }                                                                       \
  } while (0)

#define TIC_HISTOGRAM_RECORD(name, value)                                   \
  do {                                                                      \
    if (::tic::telemetry::Enabled()) {                                      \
      static ::tic::telemetry::Histogram& tic_histogram_ =                  \
          ::tic::telemetry::Registry::Instance().GetHistogram(name);        \
      tic_histogram_.Record(static_cast<uint64_t>(value));                  \
    }                                                                       \
  } while (0)

/// NowNs() when telemetry is runtime-enabled, 0 otherwise. Pair with
/// TIC_HISTOGRAM_RECORD for manual latency measurement across scopes (a
/// start of 0 is fine: the record side re-checks Enabled()).
#define TIC_NOW_NS() \
  (::tic::telemetry::Enabled() ? ::tic::telemetry::NowNs() : uint64_t{0})

/// Appends one flight-recorder event (recorder.h) to the calling thread's
/// ring. `type` is a bare EventType enumerator name (kTxnApplied, ...);
/// a/b/c are the event's payload words. Gated on RecorderActive() — the
/// recorder's own runtime switch, independent of telemetry Enabled().
#define TIC_RECORD(type, a, b, c)                                           \
  do {                                                                      \
    if (::tic::telemetry::RecorderActive()) {                               \
      ::tic::telemetry::RecordEvent(::tic::telemetry::EventType::type,      \
                                    static_cast<uint64_t>(a),               \
                                    static_cast<uint64_t>(b),               \
                                    static_cast<uint64_t>(c));              \
    }                                                                       \
  } while (0)

#else  // !TIC_TELEMETRY_ENABLED

// (void)sizeof keeps the arguments semantically checked but unevaluated, so
// "unused variable" warnings do not appear in TIC_TELEMETRY=OFF builds.
#define TIC_SPAN(name) \
  do { (void)sizeof(name); } while (0)
#define TIC_COUNTER_ADD(name, delta) \
  do { (void)sizeof(name); (void)sizeof(delta); } while (0)
#define TIC_GAUGE_SET(name, value) \
  do { (void)sizeof(name); (void)sizeof(value); } while (0)
#define TIC_GAUGE_ADD(name, delta) \
  do { (void)sizeof(name); (void)sizeof(delta); } while (0)
#define TIC_HISTOGRAM_RECORD(name, value) \
  do { (void)sizeof(name); (void)sizeof(value); } while (0)
#define TIC_NOW_NS() (uint64_t{0})
// `type` is an enumerator token, meaningless outside the macro expansion, so
// only the payload expressions get the sizeof treatment.
#define TIC_RECORD(type, a, b, c) \
  do { (void)sizeof(a); (void)sizeof(b); (void)sizeof(c); } while (0)

#endif  // TIC_TELEMETRY_ENABLED

#endif  // TIC_COMMON_TELEMETRY_TELEMETRY_H_
