#ifndef TIC_COMMON_TELEMETRY_TRACE_H_
#define TIC_COMMON_TELEMETRY_TRACE_H_

// Chrome trace-event capture. A TraceSink collects complete ("ph":"X") events
// from span exits across all threads and serializes them in the trace-event
// JSON format understood by chrome://tracing and Perfetto.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace tic {
namespace telemetry {

struct TraceEvent {
  const char* name = "";   // string literal (span names are literals)
  uint64_t start_ns = 0;   // NowNs() at span entry
  uint64_t dur_ns = 0;
  uint32_t tid = 0;        // process-local sequential thread id
};

/// \brief Thread-safe accumulator of trace events. Appends take a short lock;
/// the fast path in instrumented code checks a global atomic before calling
/// in, so a sink only costs anything while tracing is actually on.
class TraceSink {
 public:
  explicit TraceSink(size_t max_events = kDefaultMaxEvents);

  void Append(const TraceEvent& ev);

  /// Serialized Chrome trace: {"displayTimeUnit":"ms","traceEvents":[...]}.
  /// Timestamps are microseconds relative to the first captured event.
  std::string SerializeChromeTrace() const;

  /// Writes SerializeChromeTrace() to `path`. Returns false on I/O failure.
  bool WriteChromeTrace(const std::string& path) const;

  void Clear();
  size_t size() const;
  uint64_t dropped() const;

  static constexpr size_t kDefaultMaxEvents = 1u << 22;  // ~4M events

 private:
  mutable std::mutex mu_;
  size_t max_events_;
  uint64_t base_ns_ = 0;  // min start over events; makes ts small and exact
  uint64_t dropped_ = 0;
  std::vector<TraceEvent> events_;
};

/// Installs `sink` as the process-wide trace destination (nullptr to stop
/// tracing). Span exits everywhere start/stop feeding it immediately.
void SetTraceSink(std::shared_ptr<TraceSink> sink);
std::shared_ptr<TraceSink> CurrentTraceSink();

/// \brief Validates that `text` is a structurally sound Chrome trace: a JSON
/// object with a traceEvents array whose "X" entries carry name/ts/dur/pid/tid.
/// Fills `error` on failure; `num_events` (optional) gets the X-event count.
bool ValidateChromeTrace(const std::string& text, std::string* error,
                         size_t* num_events = nullptr);

namespace internal {
inline std::atomic<bool> g_tracing{false};

/// Sequential id of the calling thread, stable for the thread's lifetime.
uint32_t CurrentThreadId();

/// Called from span exits; assumes the caller already saw g_tracing == true.
void EmitTraceEvent(const char* name, uint64_t start_ns, uint64_t dur_ns);
}  // namespace internal

inline bool TracingActive() {
  return internal::g_tracing.load(std::memory_order_relaxed);
}

}  // namespace telemetry
}  // namespace tic

#endif  // TIC_COMMON_TELEMETRY_TRACE_H_
