#include "common/telemetry/registry.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/telemetry/json.h"

namespace tic {
namespace telemetry {

uint64_t HistogramData::ApproxPercentile(double p) const {
  if (count == 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  // Nearest-rank quantile, 1-based: the value whose position in the sorted
  // sample is ceil(p * count).
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(p * static_cast<double>(count)));
  if (rank == 0) rank = 1;
  if (rank > count) rank = count;
  uint64_t seen = 0;
  for (uint32_t b = 0; b < kBuckets; ++b) {
    if (buckets[b] == 0) continue;
    if (seen + buckets[b] < rank) {
      seen += buckets[b];
      continue;
    }
    // The rank lands in bucket b, which covers values of bit-width b:
    // [2^(b-1), 2^b - 1] (bucket 0 is just {0}). Interpolate linearly within
    // the bucket instead of reporting its raw upper bound — the log-scale
    // buckets are wide (2^22..2^23-1 spans 4M ns), and the upper bound used
    // to surface as nonsense like "p50: 4194303".
    const uint64_t lo = b == 0 ? 0 : (uint64_t{1} << (b - 1));
    uint64_t hi = b == 0 ? 0 : (b >= 63 ? max : (uint64_t{1} << b) - 1);
    if (hi > max) hi = max;  // the top occupied bucket cannot exceed max
    if (hi <= lo) return hi < max ? hi : max;
    const uint64_t in_bucket = rank - seen;  // 1..buckets[b]
    const double frac = static_cast<double>(in_bucket) /
                        static_cast<double>(buckets[b]);
    const uint64_t v =
        lo + static_cast<uint64_t>(
                 std::llround(static_cast<double>(hi - lo) * frac));
    return v > max ? max : v;
  }
  return max;
}

HistogramData Histogram::Snapshot() const {
  HistogramData d;
  for (const Shard& s : shards_) {
    d.count += s.count.load(std::memory_order_relaxed);
    d.sum += s.sum.load(std::memory_order_relaxed);
    uint64_t m = s.max.load(std::memory_order_relaxed);
    if (m > d.max) d.max = m;
    for (uint32_t b = 0; b < HistogramData::kBuckets; ++b) {
      d.buckets[b] += s.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return d;
}

void Histogram::Reset() {
  for (Shard& s : shards_) {
    s.count.store(0, std::memory_order_relaxed);
    s.sum.store(0, std::memory_order_relaxed);
    s.max.store(0, std::memory_order_relaxed);
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
  }
}

Registry& Registry::Instance() {
  // Deliberately leaked: outlives every static destructor and late worker.
  static Registry* instance = new Registry();
  return *instance;
}

Counter& Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

MetricsSnapshot Registry::Collect() const {
  MetricsSnapshot snap;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snap.counters.reserve(counters_.size());
    for (const auto& [name, c] : counters_) snap.counters.emplace_back(name, c->Value());
    snap.gauges.reserve(gauges_.size());
    for (const auto& [name, g] : gauges_) {
      snap.gauges.emplace_back(name, GaugeData{g->Value(), g->Max()});
    }
    snap.histograms.reserve(histograms_.size());
    for (const auto& [name, h] : histograms_) {
      snap.histograms.emplace_back(name, h->Snapshot());
    }
  }
  auto by_name = [](const auto& a, const auto& b) { return a.first < b.first; };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  return snap;
}

void Registry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{";
  bool first = true;
  auto emit = [&out, &first](const std::string& key, const std::string& value) {
    if (!first) out += ", ";
    first = false;
    out += "\"";
    AppendJsonEscaped(&out, key);
    out += "\": " + value;
  };
  for (const auto& [name, v] : counters) emit(name, std::to_string(v));
  for (const auto& [name, g] : gauges) {
    emit(name, std::to_string(g.value));
    emit(name + "/max", std::to_string(g.max));
  }
  for (const auto& [name, h] : histograms) {
    emit(name + "/count", std::to_string(h.count));
    emit(name + "/sum", std::to_string(h.sum));
    emit(name + "/max", std::to_string(h.max));
    emit(name + "/mean", JsonNumber(h.Mean()));
    emit(name + "/p50", std::to_string(h.ApproxPercentile(0.50)));
    emit(name + "/p95", std::to_string(h.ApproxPercentile(0.95)));
    emit(name + "/p99", std::to_string(h.ApproxPercentile(0.99)));
  }
  out += "}";
  return out;
}

namespace {

constexpr char kSpanPrefix[] = "span/";
constexpr size_t kSpanPrefixLen = sizeof(kSpanPrefix) - 1;

bool IsSpanMetric(const std::string& name) {
  return name.compare(0, kSpanPrefixLen, kSpanPrefix) == 0;
}

std::string FormatRow(const std::string& label, const HistogramData& h) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "  %-44s %10llu %11.3f %11.1f %11.1f\n",
                label.c_str(), static_cast<unsigned long long>(h.count),
                static_cast<double>(h.sum) / 1e6, h.Mean() / 1e3,
                static_cast<double>(h.ApproxPercentile(0.95)) / 1e3);
  return buf;
}

}  // namespace

std::string MetricsSnapshot::SummaryTable() const {
  std::string out;
  bool any_span = false;
  for (const auto& [name, h] : histograms) any_span = any_span || IsSpanMetric(name);
  if (any_span) {
    out += "spans (wall time):\n";
    char hdr[160];
    std::snprintf(hdr, sizeof(hdr), "  %-44s %10s %11s %11s %11s\n", "phase",
                  "count", "total_ms", "mean_us", "p95_us");
    out += hdr;
    // Lexicographic order places each parent path directly before its
    // children; indent by nesting depth and show the leaf phase name.
    for (const auto& [name, h] : histograms) {
      if (!IsSpanMetric(name)) continue;
      std::string path = name.substr(kSpanPrefixLen);
      size_t depth = static_cast<size_t>(
          std::count(path.begin(), path.end(), '/'));
      size_t leaf = path.rfind('/');
      std::string label(2 * depth, ' ');
      label += leaf == std::string::npos ? path : path.substr(leaf + 1);
      out += FormatRow(label, h);
    }
  }
  if (!counters.empty()) {
    out += "counters:\n";
    for (const auto& [name, v] : counters) {
      char buf[160];
      std::snprintf(buf, sizeof(buf), "  %-44s %10llu\n", name.c_str(),
                    static_cast<unsigned long long>(v));
      out += buf;
    }
  }
  if (!gauges.empty()) {
    out += "gauges (value / max):\n";
    for (const auto& [name, g] : gauges) {
      char buf[160];
      std::snprintf(buf, sizeof(buf), "  %-44s %10lld / %lld\n", name.c_str(),
                    static_cast<long long>(g.value), static_cast<long long>(g.max));
      out += buf;
    }
  }
  bool any_plain = false;
  for (const auto& [name, h] : histograms) any_plain = any_plain || !IsSpanMetric(name);
  if (any_plain) {
    out += "histograms:\n";
    char hdr[160];
    std::snprintf(hdr, sizeof(hdr), "  %-44s %10s %11s %11s %11s\n", "name",
                  "count", "total_ms", "mean_us", "p95_us");
    out += hdr;
    for (const auto& [name, h] : histograms) {
      if (IsSpanMetric(name)) continue;
      out += FormatRow(name, h);
    }
  }
  if (out.empty()) out = "(no telemetry recorded)\n";
  return out;
}

}  // namespace telemetry
}  // namespace tic
