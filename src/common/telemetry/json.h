#ifndef TIC_COMMON_TELEMETRY_JSON_H_
#define TIC_COMMON_TELEMETRY_JSON_H_

// Minimal JSON support for the telemetry exporters and their tests: string
// escaping / number formatting on the write side, and a small strict
// recursive-descent parser on the read side (used to validate emitted Chrome
// trace files without pulling in a JSON library dependency).

#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace tic {
namespace telemetry {

/// Appends `s` JSON-escaped (quotes, backslashes, control characters).
void AppendJsonEscaped(std::string* out, const std::string& s);

/// Shortest round-trippable formatting of a double (%.17g), with NaN/Inf
/// mapped to 0 (JSON has no representation for them).
std::string JsonNumber(double v);

/// \brief Parsed JSON value. Object member order is preserved; lookup is
/// linear (validation walks small documents).
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* Find(const std::string& key) const {
    if (type != Type::kObject) return nullptr;
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  bool Is(Type t) const { return type == t; }
};

/// Strict parse of a complete JSON document (trailing garbage rejected).
/// Returns nullopt and fills `error` (with byte offset) on malformed input.
std::optional<JsonValue> ParseJson(const std::string& text, std::string* error);

}  // namespace telemetry
}  // namespace tic

#endif  // TIC_COMMON_TELEMETRY_JSON_H_
