#include "common/thread_pool.h"

#include <atomic>

#include "common/telemetry/telemetry.h"

namespace tic {

ThreadPool::ThreadPool(size_t num_workers) {
  workers_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    TIC_GAUGE_ADD("thread_pool/queue_depth", -1);
    task();  // drainer tasks catch internally; see ParallelFor
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  TIC_SPAN("thread_pool.parallel_for");

  // Shared state for one fork/join round. Heap-allocated and shared with the
  // enqueued drainers so a worker that dequeues late (after the caller already
  // returned from a *previous* round) can never touch a dead frame.
  struct Round {
    std::atomic<size_t> next{0};
    size_t n;
    const std::function<void(size_t)>* fn;
    std::mutex mu;
    std::condition_variable done_cv;
    size_t active;  // drainers (incl. caller) still running
    std::exception_ptr error;  // first failure
  };
  auto round = std::make_shared<Round>();
  round->n = n;
  round->fn = &fn;

  auto drain = [round] {
    try {
      while (true) {
        size_t i = round->next.fetch_add(1, std::memory_order_relaxed);
        if (i >= round->n) break;
        (*round->fn)(i);
      }
    } catch (...) {
      std::lock_guard<std::mutex> lock(round->mu);
      if (!round->error) round->error = std::current_exception();
      // Consume the remaining indices so other drainers stop promptly.
      round->next.store(round->n, std::memory_order_relaxed);
    }
    std::lock_guard<std::mutex> lock(round->mu);
    if (--round->active == 0) round->done_cv.notify_all();
  };

  size_t helpers = std::min(workers_.size(), n - 1);
  round->active = helpers + 1;  // + the caller
  uint64_t enqueue_ns = TIC_NOW_NS();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < helpers; ++i) {
      queue_.emplace_back([drain, enqueue_ns] {
        // Time spent queued before a worker picked the task up; enqueue_ns is
        // 0 when telemetry was disabled at enqueue time — skip those.
        if (enqueue_ns != 0) {
          TIC_HISTOGRAM_RECORD("thread_pool/task_wait_ns",
                               ::tic::telemetry::NowNs() - enqueue_ns);
        }
        drain();
      });
    }
  }
  TIC_GAUGE_ADD("thread_pool/queue_depth", helpers);
  TIC_COUNTER_ADD("thread_pool/tasks", helpers);
  cv_.notify_all();
  drain();

  std::unique_lock<std::mutex> lock(round->mu);
  round->done_cv.wait(lock, [&] { return round->active == 0; });
  if (round->error) std::rethrow_exception(round->error);
}

}  // namespace tic
