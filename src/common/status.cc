#include "common/status.h"

namespace tic {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& s) { return os << s.ToString(); }

}  // namespace tic
