#ifndef TIC_DB_UPDATE_H_
#define TIC_DB_UPDATE_H_

#include <vector>

#include "common/status.h"
#include "db/history.h"

namespace tic {

/// \brief One primitive update: insert or delete a tuple of a predicate.
struct UpdateOp {
  enum class Kind { kInsert, kDelete };
  Kind kind;
  PredicateId predicate;
  Tuple tuple;

  static UpdateOp Insert(PredicateId p, Tuple t) {
    return UpdateOp{Kind::kInsert, p, std::move(t)};
  }
  static UpdateOp Delete(PredicateId p, Tuple t) {
    return UpdateOp{Kind::kDelete, p, std::move(t)};
  }
};

/// \brief A transaction: primitive updates applied atomically to produce the
/// next database state from the current one.
using Transaction = std::vector<UpdateOp>;

/// \brief Appends to `history` the state obtained by applying `txn` to its last
/// state (or to the empty state if the history is empty).
///
/// This is the update model of temporal integrity monitoring: each committed
/// transaction extends the current history by one state, after which the
/// monitor re-checks potential satisfaction.
inline Status ApplyTransaction(History* history, const Transaction& txn) {
  if (txn.empty() && !history->empty()) {
    // Identity update: alias the previous state instead of deep-copying every
    // relation — the steady-state fast path costs one shared_ptr append.
    return history->AppendAliasOfLast();
  }
  DatabaseState* next = nullptr;
  if (history->empty()) {
    next = history->AppendEmptyState();
  } else {
    TIC_ASSIGN_OR_RETURN(next, history->AppendCopyOfLast());
  }
  for (const UpdateOp& op : txn) {
    switch (op.kind) {
      case UpdateOp::Kind::kInsert:
        TIC_RETURN_NOT_OK(next->Insert(op.predicate, op.tuple));
        break;
      case UpdateOp::Kind::kDelete:
        TIC_RETURN_NOT_OK(next->Erase(op.predicate, op.tuple));
        break;
    }
  }
  return Status::OK();
}

}  // namespace tic

#endif  // TIC_DB_UPDATE_H_
