#ifndef TIC_DB_RELATION_H_
#define TIC_DB_RELATION_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "db/tuple.h"

namespace tic {

/// \brief A finite relation of fixed arity — the interpretation of one ordinary
/// predicate symbol in one database state.
///
/// Backed by a hash set; Contains/Insert/Erase are expected O(1).
class Relation {
 public:
  explicit Relation(uint32_t arity) : arity_(arity) {}

  uint32_t arity() const { return arity_; }
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  /// Adds a tuple; returns InvalidArgument on an arity mismatch.
  Status Insert(Tuple t) {
    if (t.size() != arity_) {
      return Status::InvalidArgument("tuple arity " + std::to_string(t.size()) +
                                     " != relation arity " + std::to_string(arity_));
    }
    tuples_.insert(std::move(t));
    return Status::OK();
  }

  /// Removes a tuple if present; returns InvalidArgument on an arity mismatch.
  Status Erase(const Tuple& t) {
    if (t.size() != arity_) {
      return Status::InvalidArgument("tuple arity " + std::to_string(t.size()) +
                                     " != relation arity " + std::to_string(arity_));
    }
    tuples_.erase(t);
    return Status::OK();
  }

  bool Contains(const Tuple& t) const { return tuples_.count(t) > 0; }

  /// Collects every element appearing in any tuple into `out`. Any set type
  /// with `insert(Value)` works (std::unordered_set, flat::FlatSet).
  template <typename SetT>
  void CollectElements(SetT* out) const {
    for (const Tuple& t : tuples_) {
      for (Value v : t) out->insert(v);
    }
  }

  auto begin() const { return tuples_.begin(); }
  auto end() const { return tuples_.end(); }

  bool operator==(const Relation& other) const {
    return arity_ == other.arity_ && tuples_ == other.tuples_;
  }

 private:
  uint32_t arity_;
  std::unordered_set<Tuple, TupleHash> tuples_;
};

}  // namespace tic

#endif  // TIC_DB_RELATION_H_
