#ifndef TIC_DB_STATE_H_
#define TIC_DB_STATE_H_

#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "db/relation.h"
#include "db/vocabulary.h"

namespace tic {

/// \brief One database state D_t: a finite interpretation for every ordinary
/// predicate of the vocabulary. Builtins and constants are interpreted at the
/// History level (they are rigid).
class DatabaseState {
 public:
  /// Creates an all-empty state over `vocab` (all relations empty).
  explicit DatabaseState(VocabularyPtr vocab) : vocab_(std::move(vocab)) {
    relations_.reserve(vocab_->num_predicates());
    for (size_t i = 0; i < vocab_->num_predicates(); ++i) {
      relations_.emplace_back(vocab_->predicate(static_cast<PredicateId>(i)).arity);
    }
  }

  const VocabularyPtr& vocabulary() const { return vocab_; }

  /// Mutable access for loading data; InvalidArgument if `p` is a builtin.
  Result<Relation*> MutableRelation(PredicateId p) {
    if (p >= relations_.size()) return Status::OutOfRange("no such predicate id");
    if (vocab_->predicate(p).builtin != Builtin::kNone) {
      return Status::InvalidArgument("builtin predicate '" + vocab_->predicate(p).name +
                                     "' has a fixed interpretation");
    }
    return &relations_[p];
  }

  /// \pre p < num_predicates()
  const Relation& relation(PredicateId p) const { return relations_[p]; }

  /// Convenience: inserts `t` into predicate `p`.
  Status Insert(PredicateId p, Tuple t) {
    TIC_ASSIGN_OR_RETURN(Relation * rel, MutableRelation(p));
    return rel->Insert(std::move(t));
  }

  /// Convenience: removes `t` from predicate `p`.
  Status Erase(PredicateId p, const Tuple& t) {
    TIC_ASSIGN_OR_RETURN(Relation * rel, MutableRelation(p));
    return rel->Erase(t);
  }

  bool Holds(PredicateId p, const Tuple& t) const {
    return p < relations_.size() && relations_[p].Contains(t);
  }

  /// Adds every element mentioned by any relation of this state to `out`
  /// (the state's contribution to the relevant set R_D of Section 4). Any set
  /// type with `insert(Value)` works (std::unordered_set, flat::FlatSet).
  template <typename SetT>
  void CollectActiveDomain(SetT* out) const {
    for (const Relation& r : relations_) r.CollectElements(out);
  }

  /// Total number of tuples across all relations.
  size_t TotalTuples() const {
    size_t n = 0;
    for (const Relation& r : relations_) n += r.size();
    return n;
  }

  bool operator==(const DatabaseState& other) const {
    return relations_ == other.relations_;
  }

 private:
  VocabularyPtr vocab_;
  std::vector<Relation> relations_;
};

}  // namespace tic

#endif  // TIC_DB_STATE_H_
