#ifndef TIC_DB_VOCABULARY_H_
#define TIC_DB_VOCABULARY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/interner.h"
#include "common/result.h"
#include "common/status.h"

namespace tic {

/// \brief Index of a predicate symbol within its Vocabulary.
using PredicateId = uint32_t;
/// \brief Index of a constant symbol within its Vocabulary.
using ConstantId = uint32_t;

/// \brief Built-in rigid predicates of the *extended vocabulary* (Section 2 of the
/// paper): interpreted identically in every database state, over the universe N.
///
/// kNone marks an ordinary (finite, state-dependent) database predicate.
enum class Builtin : uint8_t {
  kNone = 0,
  kLessEq,  ///< binary: standard ordering on N
  kSucc,    ///< binary: succ(a, b) iff b = a + 1
  kZero,    ///< unary: Zero(a) iff a = 0
};

/// \brief Metadata for one predicate symbol.
struct PredicateInfo {
  std::string name;
  uint32_t arity = 0;
  Builtin builtin = Builtin::kNone;
};

/// \brief A database vocabulary: finite sets of predicate and constant symbols.
///
/// Matches the paper's Section 2 notion. Ordinary predicates denote finite,
/// time-varying relations; builtins (when registered) denote the infinite rigid
/// relations <=, succ, Zero of the extended vocabulary. Equality is not a
/// vocabulary member; the formula layer has a dedicated node for it.
///
/// Vocabularies are immutable once shared; build one up front, then wrap it in a
/// shared_ptr passed to histories and formula factories.
class Vocabulary {
 public:
  Vocabulary() = default;

  /// Registers an ordinary predicate. Fails with AlreadyExists on a duplicate
  /// name and InvalidArgument on arity 0 (the paper requires r >= 1).
  Result<PredicateId> AddPredicate(std::string_view name, uint32_t arity) {
    return AddPredicateImpl(name, arity, Builtin::kNone);
  }

  /// Registers one of the extended-vocabulary builtins under `name`.
  Result<PredicateId> AddBuiltin(std::string_view name, Builtin builtin) {
    if (builtin == Builtin::kNone) {
      return Status::InvalidArgument("AddBuiltin requires a real builtin kind");
    }
    uint32_t arity = builtin == Builtin::kZero ? 1 : 2;
    return AddPredicateImpl(name, arity, builtin);
  }

  /// Registers a constant symbol.
  Result<ConstantId> AddConstant(std::string_view name) {
    SymbolId dummy;
    if (constant_names_.Lookup(name, &dummy)) {
      return Status::AlreadyExists("constant already declared: " + std::string(name));
    }
    ConstantId id = static_cast<ConstantId>(constant_names_.Intern(name));
    return id;
  }

  /// Looks up a predicate by name.
  Result<PredicateId> FindPredicate(std::string_view name) const {
    SymbolId id;
    if (!predicate_names_.Lookup(name, &id)) {
      return Status::NotFound("unknown predicate: " + std::string(name));
    }
    return static_cast<PredicateId>(id);
  }

  /// Looks up a constant by name.
  Result<ConstantId> FindConstant(std::string_view name) const {
    SymbolId id;
    if (!constant_names_.Lookup(name, &id)) {
      return Status::NotFound("unknown constant: " + std::string(name));
    }
    return static_cast<ConstantId>(id);
  }

  size_t num_predicates() const { return predicates_.size(); }
  size_t num_constants() const { return constant_names_.size(); }

  /// \pre id < num_predicates()
  const PredicateInfo& predicate(PredicateId id) const { return predicates_[id]; }
  /// \pre id < num_constants()
  const std::string& constant_name(ConstantId id) const {
    return constant_names_.Name(id);
  }

  /// Largest arity over ordinary predicates (the paper's `l`); 0 if none.
  uint32_t MaxArity() const {
    uint32_t m = 0;
    for (const auto& p : predicates_) {
      if (p.builtin == Builtin::kNone && p.arity > m) m = p.arity;
    }
    return m;
  }

  /// True if any extended-vocabulary builtin is registered.
  bool HasBuiltins() const {
    for (const auto& p : predicates_) {
      if (p.builtin != Builtin::kNone) return true;
    }
    return false;
  }

 private:
  Result<PredicateId> AddPredicateImpl(std::string_view name, uint32_t arity,
                                       Builtin builtin) {
    if (arity == 0) {
      return Status::InvalidArgument("predicate arity must be >= 1: " +
                                     std::string(name));
    }
    SymbolId dummy;
    if (predicate_names_.Lookup(name, &dummy)) {
      return Status::AlreadyExists("predicate already declared: " + std::string(name));
    }
    PredicateId id = static_cast<PredicateId>(predicate_names_.Intern(name));
    predicates_.push_back(PredicateInfo{std::string(name), arity, builtin});
    return id;
  }

  StringInterner predicate_names_;
  StringInterner constant_names_;
  std::vector<PredicateInfo> predicates_;
};

using VocabularyPtr = std::shared_ptr<const Vocabulary>;

}  // namespace tic

#endif  // TIC_DB_VOCABULARY_H_
