#ifndef TIC_DB_HISTORY_H_
#define TIC_DB_HISTORY_H_

#include <algorithm>
#include <memory>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "db/state.h"
#include "db/vocabulary.h"

namespace tic {

/// \brief A finite-time temporal database (D_0, ..., D_t): the "current history"
/// on which temporal integrity constraints are checked (Section 2).
///
/// Constants are rigid: their interpretation is fixed once per history.
class History {
 public:
  /// Creates an empty history (no states yet). `constant_interp[c]` gives the
  /// universe element denoted by constant id `c`; it must cover every constant
  /// of the vocabulary.
  static Result<History> Create(VocabularyPtr vocab,
                                std::vector<Value> constant_interp = {}) {
    if (constant_interp.size() != vocab->num_constants()) {
      return Status::InvalidArgument(
          "constant interpretation covers " + std::to_string(constant_interp.size()) +
          " of " + std::to_string(vocab->num_constants()) + " constants");
    }
    return History(std::move(vocab), std::move(constant_interp));
  }

  const VocabularyPtr& vocabulary() const { return vocab_; }

  /// Number of states; the paper's t+1 for history (D_0,...,D_t).
  size_t length() const { return states_.size(); }
  bool empty() const { return states_.empty(); }

  /// \pre t < length(). The reference stays valid across later appends —
  /// states are individually heap-owned, not stored inline in a vector.
  const DatabaseState& state(size_t t) const { return *states_[t]; }

  /// \pre c < vocabulary()->num_constants()
  Value ConstantValue(ConstantId c) const { return constant_interp_[c]; }
  const std::vector<Value>& constant_interpretation() const { return constant_interp_; }

  /// Appends a fresh all-empty state and returns a pointer for population.
  DatabaseState* AppendEmptyState() {
    states_.push_back(std::make_shared<DatabaseState>(vocab_));
    return states_.back().get();
  }

  /// Appends a copy of the last state (the identity update); the history must be
  /// non-empty. Returns a pointer for applying the delta.
  Result<DatabaseState*> AppendCopyOfLast() {
    if (states_.empty()) return Status::OutOfRange("history has no states to copy");
    states_.push_back(std::make_shared<DatabaseState>(*states_.back()));
    return states_.back().get();
  }

  /// Appends the last state again *by aliasing* (shared ownership, no deep
  /// copy): the empty-transaction fast path. The aliased state must not be
  /// mutated afterwards — use AppendCopyOfLast when a delta follows.
  Status AppendAliasOfLast() {
    if (states_.empty()) return Status::OutOfRange("history has no states to alias");
    states_.push_back(states_.back());
    return Status::OK();
  }

  /// Appends an externally built state; its vocabulary must match.
  Status AppendState(DatabaseState state) {
    if (state.vocabulary().get() != vocab_.get()) {
      return Status::InvalidArgument("state built over a different vocabulary");
    }
    states_.push_back(std::make_shared<DatabaseState>(std::move(state)));
    return Status::OK();
  }

  /// Computes the relevant set R_D of Section 4: every element interpreting a
  /// constant plus every element in the domain of some relation in some state.
  /// Returned sorted ascending (deterministic downstream numbering).
  std::vector<Value> RelevantSet() const {
    std::unordered_set<Value> set(constant_interp_.begin(), constant_interp_.end());
    for (const auto& s : states_) s->CollectActiveDomain(&set);
    std::vector<Value> out(set.begin(), set.end());
    std::sort(out.begin(), out.end());
    return out;
  }

 private:
  History(VocabularyPtr vocab, std::vector<Value> constant_interp)
      : vocab_(std::move(vocab)), constant_interp_(std::move(constant_interp)) {}

  VocabularyPtr vocab_;
  std::vector<Value> constant_interp_;
  // shared_ptr, not inline values: an empty transaction appends an alias of
  // the previous state (no deep copy of every relation), and state(t)
  // references survive later appends.
  std::vector<std::shared_ptr<DatabaseState>> states_;
};

/// \brief A finitely-represented *infinite* temporal database: `prefix` states
/// followed by `loop` states repeated forever.
///
/// Stands in for the paper's infinite-time databases. No generality is lost for
/// our purposes: the decision procedure of Section 4 always yields ultimately
/// periodic witnesses (Sistla–Clarke small-model property).
class UltimatelyPeriodicDb {
 public:
  /// \pre !loop.empty(); all states over `vocab`.
  UltimatelyPeriodicDb(VocabularyPtr vocab, std::vector<Value> constant_interp,
                       std::vector<DatabaseState> prefix,
                       std::vector<DatabaseState> loop)
      : vocab_(std::move(vocab)),
        constant_interp_(std::move(constant_interp)),
        prefix_(std::move(prefix)),
        loop_(std::move(loop)) {}

  const VocabularyPtr& vocabulary() const { return vocab_; }
  Value ConstantValue(ConstantId c) const { return constant_interp_[c]; }
  const std::vector<Value>& constant_interpretation() const { return constant_interp_; }

  size_t prefix_length() const { return prefix_.size(); }
  size_t loop_length() const { return loop_.size(); }

  /// D_t for any t >= 0.
  const DatabaseState& StateAt(size_t t) const {
    if (t < prefix_.size()) return prefix_[t];
    return loop_[(t - prefix_.size()) % loop_.size()];
  }

  /// Relevant set over the whole (infinite) database — finite because only
  /// prefix+loop states exist.
  std::vector<Value> RelevantSet() const {
    std::unordered_set<Value> set(constant_interp_.begin(), constant_interp_.end());
    for (const DatabaseState& s : prefix_) s.CollectActiveDomain(&set);
    for (const DatabaseState& s : loop_) s.CollectActiveDomain(&set);
    std::vector<Value> out(set.begin(), set.end());
    std::sort(out.begin(), out.end());
    return out;
  }

  /// The finite history (D_0,...,D_{t-1}) consisting of the first `t` states.
  Result<History> TakePrefix(size_t t) const {
    TIC_ASSIGN_OR_RETURN(History h, History::Create(vocab_, constant_interp_));
    for (size_t i = 0; i < t; ++i) {
      TIC_RETURN_NOT_OK(h.AppendState(StateAt(i)));
    }
    return h;
  }

 private:
  VocabularyPtr vocab_;
  std::vector<Value> constant_interp_;
  std::vector<DatabaseState> prefix_;
  std::vector<DatabaseState> loop_;
};

}  // namespace tic

#endif  // TIC_DB_HISTORY_H_
