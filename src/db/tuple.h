#ifndef TIC_DB_TUPLE_H_
#define TIC_DB_TUPLE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/hash.h"

namespace tic {

/// \brief A domain element. The paper's universe is countably infinite; we use
/// the non-negative 64-bit integers, and the relevant-domain discipline of
/// Lemma 4.1 guarantees only finitely many ever materialize.
using Value = int64_t;

/// \brief A database tuple (fixed arity determined by its relation).
using Tuple = std::vector<Value>;

struct TupleHash {
  size_t operator()(const Tuple& t) const {
    size_t seed = t.size();
    for (Value v : t) HashCombine(&seed, std::hash<Value>{}(static_cast<Value>(v)));
    return seed;
  }
};

/// \brief "(a, b, c)" rendering for diagnostics.
inline std::string TupleToString(const Tuple& t) {
  std::string out = "(";
  for (size_t i = 0; i < t.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(t[i]);
  }
  out += ")";
  return out;
}

}  // namespace tic

#endif  // TIC_DB_TUPLE_H_
