#ifndef TIC_TESTING_RNG_H_
#define TIC_TESTING_RNG_H_

#include <cstdint>
#include <cstring>
#include <random>
#include <vector>

namespace tic {
namespace testing {

/// \brief The single entropy source behind every structure-aware generator.
///
/// Two modes share one draw interface so the SAME generator code backs both
/// the seeded mt19937 property suites and the byte-stream-driven fuzz
/// harnesses (libFuzzer hands us raw bytes; structure-aware fuzzing means the
/// generator, not the parser, turns them into a well-formed case):
///
///  - Seed mode wraps std::mt19937 and reproduces the exact draw sequences of
///    the historical in-test generators: Raw() is `rng()`, Below(n) is
///    `rng() % n`, and Pick(lo, hi) goes through
///    std::uniform_int_distribution — so porting a suite onto the shared
///    generators keeps every historical seed producing the same case.
///  - Byte mode consumes the buffer little-endian, 4 bytes per draw, and
///    returns 0 once exhausted. Zero drives every generator grammar to its
///    leaf production, so generation always terminates and short fuzz inputs
///    yield small cases.
class Entropy {
 public:
  /// Seed mode.
  explicit Entropy(uint64_t seed) : mode_(Mode::kSeeded), rng_(static_cast<uint32_t>(seed)) {}

  /// Byte-stream mode; the buffer is copied (fuzzer data is transient).
  Entropy(const uint8_t* data, size_t size)
      : mode_(Mode::kBytes), bytes_(data, data + size) {}

  bool seeded() const { return mode_ == Mode::kSeeded; }

  /// One full 32-bit draw (`rng()` in seed mode).
  uint32_t Raw() {
    if (mode_ == Mode::kSeeded) return rng_();
    uint32_t v = 0;
    for (int i = 0; i < 4 && pos_ < bytes_.size(); ++i) {
      v |= static_cast<uint32_t>(bytes_[pos_++]) << (8 * i);
    }
    return v;
  }

  /// Draw in [0, n): the historical `rng() % n` in seed mode. \pre n > 0
  uint32_t Below(uint32_t n) { return Raw() % n; }

  /// Draw in [lo, hi]: uniform_int_distribution in seed mode (bit-compatible
  /// with the historical ptl formula generator).
  int Pick(int lo, int hi) {
    if (mode_ == Mode::kSeeded) {
      std::uniform_int_distribution<int> d(lo, hi);
      return d(rng_);
    }
    return lo + static_cast<int>(Raw() % static_cast<uint32_t>(hi - lo + 1));
  }

  /// Byte mode: all input consumed (subsequent draws are 0). Never true in
  /// seed mode.
  bool exhausted() const {
    return mode_ == Mode::kBytes && pos_ >= bytes_.size();
  }

 private:
  enum class Mode { kSeeded, kBytes };
  Mode mode_;
  std::mt19937 rng_;
  std::vector<uint8_t> bytes_;
  size_t pos_ = 0;
};

}  // namespace testing
}  // namespace tic

#endif  // TIC_TESTING_RNG_H_
