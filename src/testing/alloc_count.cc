#include "testing/alloc_count.h"

#ifdef TIC_COUNT_ALLOCS

#include <atomic>
#include <cstdlib>
#include <new>

namespace {

// Relaxed is enough: the gate tests quiesce worker threads before reading.
std::atomic<uint64_t> g_allocs{0};
std::atomic<uint64_t> g_frees{0};

void* CountedAlloc(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}

void* CountedAlignedAlloc(std::size_t size, std::size_t alignment) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  // Aligned new is allowed any power-of-two alignment (alignof(T) may be 1),
  // but posix_memalign requires at least sizeof(void*).
  if (alignment < sizeof(void*)) alignment = sizeof(void*);
  void* p = nullptr;
  if (posix_memalign(&p, alignment, size == 0 ? alignment : size) != 0) {
    return nullptr;
  }
  return p;
}

void CountedFree(void* p) {
  if (p == nullptr) return;
  g_frees.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}

}  // namespace

// The full replaceable-function family: sized and aligned deletes all funnel
// into the same malloc/free pair, so mixing variants stays consistent.
void* operator new(std::size_t size) {
  void* p = CountedAlloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size) {
  void* p = CountedAlloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return CountedAlloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return CountedAlloc(size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  void* p = CountedAlignedAlloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  void* p = CountedAlignedAlloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { CountedFree(p); }
void operator delete[](void* p) noexcept { CountedFree(p); }
void operator delete(void* p, std::size_t) noexcept { CountedFree(p); }
void operator delete[](void* p, std::size_t) noexcept { CountedFree(p); }
void operator delete(void* p, std::align_val_t) noexcept { CountedFree(p); }
void operator delete[](void* p, std::align_val_t) noexcept { CountedFree(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  CountedFree(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  CountedFree(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { CountedFree(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  CountedFree(p);
}

namespace tic {
namespace testing {

bool AllocCountingAvailable() { return true; }

void ResetAllocCounts() {
  g_allocs.store(0, std::memory_order_relaxed);
  g_frees.store(0, std::memory_order_relaxed);
}

uint64_t AllocationsSinceReset() {
  return g_allocs.load(std::memory_order_relaxed);
}

uint64_t DeallocationsSinceReset() {
  return g_frees.load(std::memory_order_relaxed);
}

}  // namespace testing
}  // namespace tic

#else  // !TIC_COUNT_ALLOCS

namespace tic {
namespace testing {

bool AllocCountingAvailable() { return false; }
void ResetAllocCounts() {}
uint64_t AllocationsSinceReset() { return 0; }
uint64_t DeallocationsSinceReset() { return 0; }

}  // namespace testing
}  // namespace tic

#endif  // TIC_COUNT_ALLOCS

namespace tic {
namespace testing {

AllocWindow::AllocWindow()
    : start_allocs_(AllocationsSinceReset()),
      start_frees_(DeallocationsSinceReset()) {}

uint64_t AllocWindow::allocations() const {
  return AllocationsSinceReset() - start_allocs_;
}

uint64_t AllocWindow::deallocations() const {
  return DeallocationsSinceReset() - start_frees_;
}

}  // namespace testing
}  // namespace tic
