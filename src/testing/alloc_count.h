#ifndef TIC_TESTING_ALLOC_COUNT_H_
#define TIC_TESTING_ALLOC_COUNT_H_

#include <cstdint>

// Heap-allocation counting for zero-allocation gate tests.
//
// When alloc_count.cc is compiled with TIC_COUNT_ALLOCS, it replaces the
// global operator new/delete family with counting forwarders; the counters
// below then report every heap allocation the process performs. Without the
// macro the same translation unit compiles to stubs (available() == false)
// and the default allocator stays untouched.
//
// The interposition is process-global, so alloc_count.cc must be compiled
// *into the gate-test target only* (see tests/CMakeLists.txt), never into a
// library other targets link.

namespace tic {
namespace testing {

/// True when the counting operator new/delete family is compiled in.
bool AllocCountingAvailable();

/// Zeroes both counters.
void ResetAllocCounts();

/// operator-new calls (any variant) since the last reset.
uint64_t AllocationsSinceReset();

/// operator-delete calls (any variant, null deletes excluded) since the last
/// reset.
uint64_t DeallocationsSinceReset();

/// RAII window: captures the counters at construction; allocations() gives
/// the delta so far without disturbing concurrent windows.
class AllocWindow {
 public:
  AllocWindow();
  uint64_t allocations() const;
  uint64_t deallocations() const;

 private:
  uint64_t start_allocs_;
  uint64_t start_frees_;
};

}  // namespace testing
}  // namespace tic

#endif  // TIC_TESTING_ALLOC_COUNT_H_
