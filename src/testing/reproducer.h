#ifndef TIC_TESTING_REPRODUCER_H_
#define TIC_TESTING_REPRODUCER_H_

#include <optional>
#include <string>
#include <string_view>

#include "common/result.h"
#include "testing/generators.h"

namespace tic {
namespace testing {

/// \brief Renders a case as a self-contained reproducer: vocabulary
/// declarations, the pretty-printed sentence (fotl::Parse-compatible), and
/// one `txn` line per transaction. The text round-trips through ParseCase,
/// and is what the differential suites print on failure so a CI log alone is
/// enough to replay locally (write it to a file, set TIC_REPLAY_FILE).
///
/// Format (one directive per line, `#` comments ignored):
///   # tic reproducer v1
///   pred P0 1
///   pred P1 2
///   sentence forall x . G (P0(x) -> X P1(x, x))
///   txn +P0(1) -P1(2, 3)
///   txn
std::string SerializeCase(const FotlCase& c);

/// \brief Rebuilds a case (fresh vocabulary + factory) from reproducer text.
Result<FotlCase> ParseCase(std::string_view text);

/// \brief Reads and parses a reproducer file.
Result<FotlCase> LoadCaseFile(const std::string& path);

/// \brief Writes SerializeCase(c) to `path`.
Status WriteCaseFile(const FotlCase& c, const std::string& path);

/// \brief TIC_REPLAY_SEED: when set, the random suites run only this seed
/// (and print the reproducer for it). Empty when unset or unparsable.
std::optional<uint64_t> ReplaySeedFromEnv();

/// \brief TIC_REPLAY_FILE: when set, the replay tests load this reproducer
/// and re-run the oracle kit on it. Empty when unset.
std::optional<std::string> ReplayFileFromEnv();

}  // namespace testing
}  // namespace tic

#endif  // TIC_TESTING_REPRODUCER_H_
