#ifndef TIC_TESTING_SHRINK_H_
#define TIC_TESTING_SHRINK_H_

#include <functional>

#include "testing/generators.h"

namespace tic {
namespace testing {

/// \brief The failure predicate a shrink run minimizes against: true when the
/// case still exhibits the failure (oracle reports pass == false). It must
/// return false — not crash — on candidates it cannot evaluate (the oracles'
/// Result layer gives this for free: infrastructure errors mean "not a valid
/// failing case").
using FailurePredicate = std::function<bool(const FotlCase&)>;

struct ShrinkStats {
  size_t attempts = 0;      ///< predicate evaluations
  size_t improvements = 0;  ///< accepted smaller candidates
};

/// \brief Greedy delta-debugging minimizer for a failing (sentence, stream)
/// pair. Alternates two reduction axes to a fixpoint:
///
///  - stream: ddmin-style chunk removal (halves, then quarters, ... down to
///    single transactions), then removal of individual update ops inside the
///    surviving transactions;
///  - sentence: replace the quantified matrix with each proper subformula
///    (smallest first), requantifying only over the variables still free —
///    candidates that no longer fail (including ones the checker rejects)
///    are simply discarded, so the result is always a valid failing case.
///
/// `seed` must satisfy `fails(seed)`; the returned case also does, and is
/// never larger. `max_attempts` bounds total predicate evaluations.
FotlCase ShrinkCase(const FotlCase& seed, const FailurePredicate& fails,
                    ShrinkStats* stats = nullptr, size_t max_attempts = 20000);

}  // namespace testing
}  // namespace tic

#endif  // TIC_TESTING_SHRINK_H_
