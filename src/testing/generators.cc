#include "testing/generators.h"

#include <string>

namespace tic {
namespace testing {

std::vector<ptl::Formula> PtlAtoms(ptl::Factory* fac, size_t n) {
  std::vector<ptl::Formula> atoms;
  atoms.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    atoms.push_back(
        fac->Atom(fac->vocabulary()->Intern(std::string(1, static_cast<char>('a' + i)))));
  }
  return atoms;
}

ptl::Formula GeneratePtlFormula(ptl::Factory* fac, Entropy* ent,
                                const std::vector<ptl::Formula>& atoms,
                                int depth) {
  switch (ent->Pick(0, depth <= 0 ? 1 : 9)) {
    case 0:
      return atoms[ent->Below(static_cast<uint32_t>(atoms.size()))];
    case 1:
      return fac->Not(atoms[ent->Below(static_cast<uint32_t>(atoms.size()))]);
    case 2:
      return fac->Not(GeneratePtlFormula(fac, ent, atoms, depth - 1));
    case 3:
      return fac->And(GeneratePtlFormula(fac, ent, atoms, depth - 1),
                      GeneratePtlFormula(fac, ent, atoms, depth - 1));
    case 4:
      return fac->Or(GeneratePtlFormula(fac, ent, atoms, depth - 1),
                     GeneratePtlFormula(fac, ent, atoms, depth - 1));
    case 5:
      return fac->Next(GeneratePtlFormula(fac, ent, atoms, depth - 1));
    case 6:
      return fac->Until(GeneratePtlFormula(fac, ent, atoms, depth - 1),
                        GeneratePtlFormula(fac, ent, atoms, depth - 1));
    case 7:
      return fac->Release(GeneratePtlFormula(fac, ent, atoms, depth - 1),
                          GeneratePtlFormula(fac, ent, atoms, depth - 1));
    case 8:
      return fac->Eventually(GeneratePtlFormula(fac, ent, atoms, depth - 1));
    default:
      return fac->Always(GeneratePtlFormula(fac, ent, atoms, depth - 1));
  }
}

CaseBuilder::CaseBuilder(size_t num_preds) {
  auto v = std::make_shared<Vocabulary>();
  preds_.reserve(num_preds);
  for (size_t i = 0; i < num_preds; ++i) {
    preds_.push_back(*v->AddPredicate("P" + std::to_string(i), 1));
  }
  vocab_ = v;
  factory_ = std::make_shared<fotl::FormulaFactory>(vocab_);
}

fotl::Term CaseBuilder::Var(size_t i) {
  return fotl::Term::Var(factory_->InternVar(i == 0 ? "x" : "y"));
}

fotl::Formula CaseBuilder::Lit(Entropy* ent, size_t num_vars) {
  fotl::Formula a =
      *factory_->Atom(preds_[ent->Below(static_cast<uint32_t>(preds_.size()))],
                      {Var(ent->Below(static_cast<uint32_t>(num_vars)))});
  return ent->Below(2) == 0 ? a : factory_->Not(a);
}

fotl::Formula CaseBuilder::LitConj(Entropy* ent, size_t num_vars) {
  fotl::Formula a = Lit(ent, num_vars);
  return ent->Below(2) == 0 ? a : factory_->And(a, Lit(ent, num_vars));
}

fotl::Formula CaseBuilder::GenCosafe(Entropy* ent, size_t num_vars, int depth) {
  if (depth <= 0) {
    return *factory_->Atom(preds_[ent->Below(static_cast<uint32_t>(preds_.size()))],
                           {Var(ent->Below(static_cast<uint32_t>(num_vars)))});
  }
  switch (ent->Below(5)) {
    case 0:
      return factory_->And(GenCosafe(ent, num_vars, depth - 1),
                           GenCosafe(ent, num_vars, depth - 1));
    case 1:
      return factory_->Or(GenCosafe(ent, num_vars, depth - 1),
                          GenCosafe(ent, num_vars, depth - 1));
    case 2:
      return factory_->Next(GenCosafe(ent, num_vars, depth - 1));
    case 3:
      return factory_->Until(GenCosafe(ent, num_vars, depth - 1),
                             GenCosafe(ent, num_vars, depth - 1));
    default:
      return factory_->Eventually(GenCosafe(ent, num_vars, depth - 1));
  }
}

fotl::Formula CaseBuilder::GenSafe(Entropy* ent, size_t num_vars, int depth) {
  if (depth <= 0) return Lit(ent, num_vars);
  switch (ent->Below(7)) {
    case 0:
      return Lit(ent, num_vars);
    case 1:
      return factory_->And(GenSafe(ent, num_vars, depth - 1),
                           GenSafe(ent, num_vars, depth - 1));
    case 2:
      return factory_->Or(GenSafe(ent, num_vars, depth - 1),
                          GenSafe(ent, num_vars, depth - 1));
    case 3:
      return factory_->Next(GenSafe(ent, num_vars, depth - 1));
    case 4:
      return factory_->Always(GenSafe(ent, num_vars, depth - 1));
    case 5:
      return factory_->Implies(LitConj(ent, num_vars),
                               GenSafe(ent, num_vars, depth - 1));
    default:
      return factory_->Not(GenCosafe(ent, num_vars, depth - 1));
  }
}

fotl::Formula CaseBuilder::Quantify(fotl::Formula matrix, size_t num_vars) {
  fotl::Formula phi = matrix;
  for (size_t i = num_vars; i-- > 0;) {
    phi = factory_->Forall(factory_->InternVar(i == 0 ? "x" : "y"), phi);
  }
  return phi;
}

FotlCase CaseBuilder::Finish(fotl::Formula sentence, size_t num_vars,
                             std::vector<Transaction> stream) const {
  FotlCase c;
  c.vocab = vocab_;
  c.factory = factory_;
  c.preds = preds_;
  c.num_vars = num_vars;
  c.sentence = sentence;
  c.stream = std::move(stream);
  return c;
}

Transaction ChurnTxn(Entropy* ent, const std::vector<PredicateId>& preds,
                     const std::vector<Value>& universe) {
  Transaction txn;
  for (PredicateId p : preds) {
    for (Value v : universe) {
      uint32_t r = ent->Below(4);
      if (r == 0) txn.push_back(UpdateOp::Insert(p, {v}));
      if (r == 1) txn.push_back(UpdateOp::Delete(p, {v}));
    }
  }
  return txn;
}

Transaction SingleOpTxn(Entropy* ent, const std::vector<PredicateId>& preds,
                        const std::vector<Value>& universe) {
  Transaction txn;
  Value e = universe[ent->Below(static_cast<uint32_t>(universe.size()))];
  uint32_t r = ent->Below(static_cast<uint32_t>(2 * preds.size()));
  PredicateId p = preds[r % preds.size()];
  if (r < preds.size()) {
    txn.push_back(UpdateOp::Insert(p, {e}));
  } else {
    txn.push_back(UpdateOp::Delete(p, {e}));
  }
  return txn;
}

void AppendRandomState(Entropy* ent, History* history,
                       const std::vector<PredicateId>& preds,
                       const std::vector<Value>& universe) {
  DatabaseState* s = history->AppendEmptyState();
  for (PredicateId p : preds) {
    for (Value v : universe) {
      if (ent->Below(2)) (void)s->Insert(p, {v});
    }
  }
}

FotlCase GenerateSafetyCase(Entropy* ent, const SafetyCaseOptions& options) {
  // Draw order mirrors the historical family A loop body exactly: predicate
  // count, variable count, matrix depth, then the stream.
  size_t num_preds =
      options.min_preds +
      ent->Below(static_cast<uint32_t>(options.max_preds - options.min_preds + 1));
  CaseBuilder builder(num_preds);
  size_t num_vars =
      options.min_vars +
      ent->Below(static_cast<uint32_t>(options.max_vars - options.min_vars + 1));
  int depth = options.min_depth +
              static_cast<int>(ent->Below(
                  static_cast<uint32_t>(options.max_depth - options.min_depth + 1)));
  fotl::Formula matrix = builder.GenSafe(ent, num_vars, depth);
  fotl::Formula phi = builder.Quantify(builder.factory()->Always(matrix), num_vars);
  size_t len =
      options.min_stream +
      ent->Below(static_cast<uint32_t>(options.max_stream - options.min_stream + 1));
  std::vector<Transaction> stream;
  stream.reserve(len);
  for (size_t t = 0; t < len; ++t) {
    std::vector<Value> universe = options.universe;
    if (options.fresh_element >= 0 && t >= len / 2) {
      universe.push_back(options.fresh_element);
    }
    stream.push_back(ChurnTxn(ent, builder.preds(), universe));
  }
  return builder.Finish(phi, num_vars, std::move(stream));
}

FotlCase GenerateTriggerCase(Entropy* ent) {
  CaseBuilder builder(2);
  int depth = 1 + static_cast<int>(ent->Below(2));
  fotl::Formula condition = builder.GenCosafe(ent, /*num_vars=*/1, depth);
  size_t len = 3 + ent->Below(3);
  std::vector<Transaction> stream;
  stream.reserve(len);
  for (size_t t = 0; t < len; ++t) {
    stream.push_back(ChurnTxn(ent, builder.preds(), {1, 2}));
  }
  return builder.Finish(condition, /*num_vars=*/1, std::move(stream));
}

}  // namespace testing
}  // namespace tic
