#include "testing/reproducer.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "fotl/classify.h"
#include "fotl/parser.h"
#include "fotl/printer.h"

namespace tic {
namespace testing {

namespace {

std::string OpToString(const Vocabulary& vocab, const UpdateOp& op) {
  std::string out = op.kind == UpdateOp::Kind::kInsert ? "+" : "-";
  out += vocab.predicate(op.predicate).name;
  out += "(";
  for (size_t i = 0; i < op.tuple.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(op.tuple[i]);
  }
  out += ")";
  return out;
}

// Parses "+Name(v, ...)" / "-Name(v, ...)".
Result<UpdateOp> ParseOp(const Vocabulary& vocab, std::string_view tok) {
  if (tok.size() < 2 || (tok[0] != '+' && tok[0] != '-')) {
    return Status::InvalidArgument("bad update op (want +P(...)/-P(...)): " +
                                   std::string(tok));
  }
  bool insert = tok[0] == '+';
  size_t open = tok.find('(');
  if (open == std::string_view::npos || tok.back() != ')') {
    return Status::InvalidArgument("bad update op syntax: " + std::string(tok));
  }
  std::string name(tok.substr(1, open - 1));
  TIC_ASSIGN_OR_RETURN(PredicateId pred, vocab.FindPredicate(name));
  Tuple tuple;
  std::string args(tok.substr(open + 1, tok.size() - open - 2));
  std::stringstream ss(args);
  std::string field;
  while (std::getline(ss, field, ',')) {
    try {
      tuple.push_back(std::stoll(field));
    } catch (...) {
      return Status::InvalidArgument("bad tuple value '" + field + "' in " +
                                     std::string(tok));
    }
  }
  if (tuple.size() != vocab.predicate(pred).arity) {
    return Status::InvalidArgument("arity mismatch in op: " + std::string(tok));
  }
  return insert ? UpdateOp::Insert(pred, std::move(tuple))
                : UpdateOp::Delete(pred, std::move(tuple));
}

}  // namespace

std::string SerializeCase(const FotlCase& c) {
  std::string out = "# tic reproducer v1\n";
  for (size_t i = 0; i < c.vocab->num_predicates(); ++i) {
    const PredicateInfo& info = c.vocab->predicate(static_cast<PredicateId>(i));
    out += "pred " + info.name + " " + std::to_string(info.arity) + "\n";
  }
  out += "sentence " + fotl::ToString(*c.factory, c.sentence) + "\n";
  for (const Transaction& txn : c.stream) {
    out += "txn";
    for (const UpdateOp& op : txn) {
      out += " " + OpToString(*c.vocab, op);
    }
    out += "\n";
  }
  return out;
}

Result<FotlCase> ParseCase(std::string_view text) {
  auto vocab = std::make_shared<Vocabulary>();
  std::vector<PredicateId> preds;
  std::optional<std::string> sentence_text;
  std::vector<std::vector<std::string>> txn_tokens;

  std::stringstream lines{std::string(text)};
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::stringstream ss(line);
    std::string directive;
    ss >> directive;
    if (directive == "pred") {
      std::string name;
      uint32_t arity = 0;
      ss >> name >> arity;
      TIC_ASSIGN_OR_RETURN(PredicateId id, vocab->AddPredicate(name, arity));
      preds.push_back(id);
    } else if (directive == "sentence") {
      std::string rest;
      std::getline(ss, rest);
      sentence_text = rest;
    } else if (directive == "txn") {
      // Ops contain "(v, w)" with spaces after commas; re-join tokens so a
      // token boundary inside parentheses does not split an op.
      std::vector<std::string> ops;
      std::string tok;
      std::string pending;
      while (ss >> tok) {
        pending += pending.empty() ? tok : " " + tok;
        if (pending.find('(') != std::string::npos && pending.back() == ')') {
          ops.push_back(pending);
          pending.clear();
        }
      }
      if (!pending.empty()) {
        return Status::InvalidArgument("unterminated op in txn line: " + line);
      }
      txn_tokens.push_back(std::move(ops));
    } else {
      return Status::InvalidArgument("unknown reproducer directive: " + directive);
    }
  }
  if (!sentence_text) {
    return Status::InvalidArgument("reproducer has no sentence line");
  }

  FotlCase c;
  c.vocab = vocab;
  c.preds = std::move(preds);
  c.factory = std::make_shared<fotl::FormulaFactory>(c.vocab);
  TIC_ASSIGN_OR_RETURN(c.sentence, fotl::Parse(c.factory.get(), *sentence_text));
  c.num_vars = fotl::Classify(c.sentence).external_universals.size();
  for (const auto& ops : txn_tokens) {
    Transaction txn;
    for (const std::string& tok : ops) {
      TIC_ASSIGN_OR_RETURN(UpdateOp op, ParseOp(*c.vocab, tok));
      txn.push_back(std::move(op));
    }
    c.stream.push_back(std::move(txn));
  }
  return c;
}

Result<FotlCase> LoadCaseFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open reproducer file: " + path);
  std::stringstream buf;
  buf << in.rdbuf();
  return ParseCase(buf.str());
}

Status WriteCaseFile(const FotlCase& c, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::InvalidArgument("cannot write reproducer file: " + path);
  out << SerializeCase(c);
  return Status::OK();
}

std::optional<uint64_t> ReplaySeedFromEnv() {
  const char* v = std::getenv("TIC_REPLAY_SEED");
  if (v == nullptr || *v == '\0') return std::nullopt;
  char* end = nullptr;
  uint64_t seed = std::strtoull(v, &end, 0);
  if (end == v) return std::nullopt;
  return seed;
}

std::optional<std::string> ReplayFileFromEnv() {
  const char* v = std::getenv("TIC_REPLAY_FILE");
  if (v == nullptr || *v == '\0') return std::nullopt;
  return std::string(v);
}

}  // namespace testing
}  // namespace tic
