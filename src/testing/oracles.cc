#include "testing/oracles.h"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "checker/extension.h"
#include "checker/monitor.h"
#include "checker/trigger.h"
#include "fotl/printer.h"
#include "ptl/transition_system.h"
#include "ptl/word.h"
#include "testing/reproducer.h"

namespace tic {
namespace testing {

namespace {

std::function<bool(const FotlCase&)>& FaultHook() {
  static std::function<bool(const FotlCase&)> hook;
  return hook;
}

OracleResult Fail(std::string what, const FotlCase& c) {
  OracleResult r;
  r.pass = false;
  r.detail = std::move(what) + "\nreproducer:\n" + SerializeCase(c);
  return r;
}

}  // namespace

void SetBackendFaultHookForTest(std::function<bool(const FotlCase&)> hook) {
  FaultHook() = std::move(hook);
}

Result<OracleResult> TableauEnginesAgree(ptl::Factory* fac, ptl::Formula f,
                                         bool* satisfiable) {
  ptl::TableauOptions legacy;
  legacy.engine = ptl::TableauEngine::kLegacy;
  ptl::TableauOptions bitset;
  bitset.engine = ptl::TableauEngine::kBitset;

  TIC_ASSIGN_OR_RETURN(auto rl, ptl::CheckSat(fac, f, legacy));
  TIC_ASSIGN_OR_RETURN(auto rb, ptl::CheckSat(fac, f, bitset));

  OracleResult out;
  if (rl.satisfiable != rb.satisfiable) {
    out.pass = false;
    out.detail = "engines disagree (legacy=" + std::to_string(rl.satisfiable) +
                 " bitset=" + std::to_string(rb.satisfiable) + ") on " +
                 ptl::ToString(*fac, f);
    return out;
  }
  // The engines may pick different (state-order-dependent) witnesses; each
  // must independently satisfy the formula under the word evaluator.
  for (const auto* r : {&rl, &rb}) {
    if (!r->satisfiable) continue;
    TIC_ASSIGN_OR_RETURN(bool holds, ptl::Evaluate(*r->witness, f, 0));
    if (!holds) {
      out.pass = false;
      out.detail = std::string(r == &rl ? "legacy" : "bitset") +
                   " witness fails " + ptl::ToString(*fac, f);
      return out;
    }
  }
  if (satisfiable != nullptr) *satisfiable = rb.satisfiable;
  return out;
}

Result<OracleResult> BackendVerdictsAgree(const FotlCase& c) {
  checker::CheckOptions prog_opts;
  prog_opts.backend = checker::MonitorBackend::kProgression;
  checker::CheckOptions auto_opts;
  auto_opts.backend = checker::MonitorBackend::kAutomaton;
  TIC_ASSIGN_OR_RETURN(auto mp,
                       checker::Monitor::Create(c.factory, c.sentence, {}, prog_opts));
  TIC_ASSIGN_OR_RETURN(auto ma,
                       checker::Monitor::Create(c.factory, c.sentence, {}, auto_opts));
  for (size_t t = 0; t < c.stream.size(); ++t) {
    TIC_ASSIGN_OR_RETURN(auto vp, mp->ApplyTransaction(c.stream[t]));
    TIC_ASSIGN_OR_RETURN(auto va, ma->ApplyTransaction(c.stream[t]));
    if (vp.potentially_satisfied != va.potentially_satisfied ||
        vp.permanently_violated != va.permanently_violated) {
      return Fail("backend divergence at t=" + std::to_string(t) +
                      ": progression (sat=" + std::to_string(vp.potentially_satisfied) +
                      ", dead=" + std::to_string(vp.permanently_violated) +
                      ") vs automaton (sat=" + std::to_string(va.potentially_satisfied) +
                      ", dead=" + std::to_string(va.permanently_violated) + ")",
                  c);
    }
    if (va.backend != checker::MonitorBackend::kAutomaton ||
        vp.backend != checker::MonitorBackend::kProgression) {
      return Fail("verdict reports wrong backend at t=" + std::to_string(t), c);
    }
  }
  if (FaultHook() && FaultHook()(c)) {
    return Fail("planted divergence (test-only fault hook)", c);
  }
  return OracleResult{};
}

Result<OracleResult> CohortConfigsAgree(const FotlCase& c) {
  // Four independent constructions of the same per-update verdict sequence:
  // the literal progression procedure, the joint residual graph (cohorts
  // off), cohort lockstep with minimization forced every discovery, and
  // cohort lockstep with minimization disabled.
  struct Config {
    const char* name;
    checker::CheckOptions opts;
  };
  std::vector<Config> configs(4);
  configs[0].name = "progression";
  configs[0].opts.backend = checker::MonitorBackend::kProgression;
  configs[1].name = "joint";
  configs[1].opts.cohort_stepping = false;
  configs[2].name = "cohort+minimize";
  configs[2].opts.cohort_minimize_interval = 1;
  configs[3].name = "cohort";
  configs[3].opts.cohort_minimize_interval = 0;

  std::vector<std::unique_ptr<checker::Monitor>> monitors;
  for (const Config& cfg : configs) {
    TIC_ASSIGN_OR_RETURN(
        auto m, checker::Monitor::Create(c.factory, c.sentence, {}, cfg.opts));
    monitors.push_back(std::move(m));
  }
  for (size_t t = 0; t < c.stream.size(); ++t) {
    TIC_ASSIGN_OR_RETURN(auto ref, monitors[0]->ApplyTransaction(c.stream[t]));
    for (size_t i = 1; i < monitors.size(); ++i) {
      TIC_ASSIGN_OR_RETURN(auto v, monitors[i]->ApplyTransaction(c.stream[t]));
      if (v.potentially_satisfied != ref.potentially_satisfied ||
          v.permanently_violated != ref.permanently_violated) {
        return Fail(
            std::string("cohort config divergence at t=") + std::to_string(t) +
                ": progression (sat=" + std::to_string(ref.potentially_satisfied) +
                ", dead=" + std::to_string(ref.permanently_violated) + ") vs " +
                configs[i].name + " (sat=" + std::to_string(v.potentially_satisfied) +
                ", dead=" + std::to_string(v.permanently_violated) + ")",
            c);
      }
    }
  }
  return OracleResult{};
}

Result<OracleResult> MinimizedAutomatonAgrees(ptl::Factory* fac, ptl::Formula f,
                                              Entropy* ent, size_t steps) {
  OracleResult out;
  // Two private compilations of the same formula: `ref` is never minimized,
  // `min` is minimized at random points mid-stream. Budget blowups (random
  // non-safe formulas with huge covers) are not the minimizer's fault — count
  // the case as vacuously passed.
  auto ref = ptl::TransitionSystem::Compile(fac, f);
  auto min = ptl::TransitionSystem::Compile(fac, f);
  if (!ref.ok() || !min.ok()) return out;
  ptl::TransitionSystem& a = **ref;
  ptl::TransitionSystem& b = **min;

  uint32_t sa = a.initial();
  uint32_t sb = b.initial();
  const std::vector<ptl::PropId>& letters = a.default_letters();
  for (size_t t = 0; t < steps; ++t) {
    ptl::PropState w;
    for (ptl::PropId p : letters) {
      if (ent->Below(2) == 1) w.Set(p, true);
    }
    TIC_ASSIGN_OR_RETURN(ptl::TransitionStep stepa, a.Step(sa, w));
    TIC_ASSIGN_OR_RETURN(ptl::TransitionStep stepb, b.Step(sb, w));
    if (stepa.any_survivor != stepb.any_survivor || stepa.live != stepb.live) {
      out.pass = false;
      out.detail = "minimized/unminimized divergence at step " +
                   std::to_string(t) + " (survivor " +
                   std::to_string(stepa.any_survivor) + "/" +
                   std::to_string(stepb.any_survivor) + ", live " +
                   std::to_string(stepa.live) + "/" + std::to_string(stepb.live) +
                   ") on " + ptl::ToString(*fac, f);
      return out;
    }
    sa = stepa.next;
    sb = stepb.next;
    if (ent->Below(4) == 0) {
      b.MinimizeNow();
      sb = b.Representative(sb);
    }
  }

  // Idempotence: with no new states interned in between, a second run must
  // compute the same partition, collapse the same sets, and leave every
  // representative where the first run put it.
  ptl::MinimizeStats first = b.MinimizeNow();
  uint64_t nsets = b.num_state_sets();
  std::vector<uint32_t> reps(nsets);
  for (uint64_t i = 0; i < nsets; ++i) {
    reps[i] = b.Representative(static_cast<uint32_t>(i));
  }
  ptl::MinimizeStats second = b.MinimizeNow();
  if (second.tableau_classes != first.tableau_classes ||
      second.state_sets != first.state_sets ||
      second.collapsed_sets != first.collapsed_sets) {
    out.pass = false;
    out.detail = "minimization not idempotent (classes " +
                 std::to_string(first.tableau_classes) + " -> " +
                 std::to_string(second.tableau_classes) + ", collapsed " +
                 std::to_string(first.collapsed_sets) + " -> " +
                 std::to_string(second.collapsed_sets) + ") on " +
                 ptl::ToString(*fac, f);
    return out;
  }
  for (uint64_t i = 0; i < nsets; ++i) {
    if (b.Representative(static_cast<uint32_t>(i)) != reps[i]) {
      out.pass = false;
      out.detail = "representative of set " + std::to_string(i) +
                   " moved across an idempotent re-run on " +
                   ptl::ToString(*fac, f);
      return out;
    }
  }
  return out;
}

Result<OracleResult> MonitorMatchesBatch(const FotlCase& c) {
  TIC_ASSIGN_OR_RETURN(auto monitor, checker::Monitor::Create(c.factory, c.sentence));
  TIC_ASSIGN_OR_RETURN(History reference, History::Create(c.vocab));
  for (size_t t = 0; t < c.stream.size(); ++t) {
    TIC_ASSIGN_OR_RETURN(auto verdict, monitor->ApplyTransaction(c.stream[t]));
    TIC_RETURN_NOT_OK(ApplyTransaction(&reference, c.stream[t]));
    TIC_ASSIGN_OR_RETURN(
        auto batch,
        checker::CheckPotentialSatisfaction(*c.factory, c.sentence, reference));
    if (verdict.potentially_satisfied != batch.potentially_satisfied) {
      return Fail("monitor/batch divergence at t=" + std::to_string(t) +
                      ": monitor=" + std::to_string(verdict.potentially_satisfied) +
                      " batch=" + std::to_string(batch.potentially_satisfied),
                  c);
    }
  }
  return OracleResult{};
}

Result<OracleResult> PrefixClosureHolds(const FotlCase& c) {
  TIC_ASSIGN_OR_RETURN(History h, History::Create(c.vocab));
  bool seen_no = false;
  bool seen_permanent = false;
  for (size_t t = 0; t < c.stream.size(); ++t) {
    TIC_RETURN_NOT_OK(ApplyTransaction(&h, c.stream[t]));
    TIC_ASSIGN_OR_RETURN(
        auto res, checker::CheckPotentialSatisfaction(*c.factory, c.sentence, h));
    if (seen_no && res.potentially_satisfied) {
      return Fail("prefix closure violated: prefix of length " + std::to_string(t + 1) +
                      " is in Pref(C) but a shorter prefix was not",
                  c);
    }
    if (res.permanently_violated && res.potentially_satisfied) {
      return Fail("permanently_violated together with potentially_satisfied at t=" +
                      std::to_string(t),
                  c);
    }
    if (seen_permanent && !res.permanently_violated) {
      return Fail("permanent violation forgotten at t=" + std::to_string(t), c);
    }
    seen_no = seen_no || !res.potentially_satisfied;
    seen_permanent = seen_permanent || res.permanently_violated;
  }
  return OracleResult{};
}

Result<OracleResult> RenamingInvariant(const FotlCase& c,
                                       const std::function<Value(Value)>& perm) {
  FotlCase renamed = c;
  renamed.stream.clear();
  for (const Transaction& txn : c.stream) {
    Transaction mapped;
    for (const UpdateOp& op : txn) {
      Tuple t = op.tuple;
      for (Value& v : t) v = perm(v);
      mapped.push_back(op.kind == UpdateOp::Kind::kInsert
                           ? UpdateOp::Insert(op.predicate, std::move(t))
                           : UpdateOp::Delete(op.predicate, std::move(t)));
    }
    renamed.stream.push_back(std::move(mapped));
  }

  TIC_ASSIGN_OR_RETURN(auto mo, checker::Monitor::Create(c.factory, c.sentence));
  TIC_ASSIGN_OR_RETURN(auto mr, checker::Monitor::Create(c.factory, c.sentence));
  for (size_t t = 0; t < c.stream.size(); ++t) {
    TIC_ASSIGN_OR_RETURN(auto vo, mo->ApplyTransaction(c.stream[t]));
    TIC_ASSIGN_OR_RETURN(auto vr, mr->ApplyTransaction(renamed.stream[t]));
    if (vo.potentially_satisfied != vr.potentially_satisfied ||
        vo.permanently_violated != vr.permanently_violated) {
      return Fail("renaming changed the verdict at t=" + std::to_string(t) +
                      ": original (sat=" + std::to_string(vo.potentially_satisfied) +
                      ") vs renamed (sat=" + std::to_string(vr.potentially_satisfied) +
                      ")",
                  c);
    }
  }
  return OracleResult{};
}

Result<OracleResult> TriggerDualityHolds(const FotlCase& c) {
  // Side 1: the production TriggerManager (default options: automaton
  // backend, simplified grounding).
  TIC_ASSIGN_OR_RETURN(auto mgr, checker::TriggerManager::Create(c.factory));
  TIC_RETURN_NOT_OK(mgr->AddTrigger("c", c.sentence));

  // Side 2: the duality taken literally, on the other backend: theta fires
  // iff !C(theta) is not potentially satisfied, substitutions over R_D.
  fotl::Formula negated = c.factory->Not(c.sentence);
  const std::vector<fotl::VarId>& params = c.sentence->free_vars();
  checker::CheckOptions dual_opts;
  dual_opts.backend = checker::MonitorBackend::kProgression;
  dual_opts.want_witness = false;

  TIC_ASSIGN_OR_RETURN(History h, History::Create(c.vocab));
  for (size_t t = 0; t < c.stream.size(); ++t) {
    TIC_ASSIGN_OR_RETURN(auto firings, mgr->OnTransaction(c.stream[t]));
    TIC_RETURN_NOT_OK(ApplyTransaction(&h, c.stream[t]));

    std::set<std::vector<Value>> fired;
    for (const checker::TriggerFiring& f : firings) {
      std::vector<Value> key;
      for (fotl::VarId v : params) key.push_back(f.substitution.at(v));
      fired.insert(std::move(key));
    }

    std::set<std::vector<Value>> expected;
    std::vector<Value> relevant = h.RelevantSet();
    // Degenerate domain: the manager enumerates over {0} when no element is
    // relevant yet, so the dual side must too or it misses firings at t=0.
    if (relevant.empty()) relevant.push_back(0);
    // Enumerate all |R_D|^k substitutions (k is 0 or 1 for generated cases,
    // but the loop is general).
    std::vector<size_t> idx(params.size(), 0);
    bool done = false;
    while (!done) {
      fotl::Valuation theta;
      std::vector<Value> key;
      for (size_t i = 0; i < params.size(); ++i) {
        theta[params[i]] = relevant[idx[i]];
        key.push_back(relevant[idx[i]]);
      }
      TIC_ASSIGN_OR_RETURN(auto res, checker::CheckPotentialSatisfaction(
                                         *c.factory, negated, h, theta, dual_opts));
      if (!res.potentially_satisfied) expected.insert(std::move(key));
      size_t d = 0;
      while (d < idx.size() && ++idx[d] == relevant.size()) {
        idx[d] = 0;
        ++d;
      }
      if (d == idx.size() || params.empty()) done = true;
    }

    if (fired != expected) {
      return Fail("trigger duality violated at t=" + std::to_string(t) +
                      ": manager fired " + std::to_string(fired.size()) +
                      " substitutions, dual check expects " +
                      std::to_string(expected.size()),
                  c);
    }
  }
  return OracleResult{};
}

}  // namespace testing
}  // namespace tic
