#ifndef TIC_TESTING_GENERATORS_H_
#define TIC_TESTING_GENERATORS_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "db/history.h"
#include "db/update.h"
#include "fotl/factory.h"
#include "ptl/formula.h"
#include "testing/rng.h"

namespace tic {
namespace testing {

// ---------------------------------------------------------------------------
// Propositional-TL generators (historically private to ptl_differential_test).
// ---------------------------------------------------------------------------

/// \brief Interns `n` single-letter atoms "a", "b", ... into the factory's
/// vocabulary and returns them as formulas. \pre n <= 26
std::vector<ptl::Formula> PtlAtoms(ptl::Factory* fac, size_t n);

/// \brief Random PTL formula over `atoms`, the connective distribution the
/// tableau differential suite has always used: at depth 0 a (possibly
/// negated) atom; otherwise uniformly one of atom / !atom / !sub / And / Or /
/// Next / Until / Release / Eventually / Always. Seed mode reproduces the
/// historical per-seed formulas bit for bit.
ptl::Formula GeneratePtlFormula(ptl::Factory* fac, Entropy* ent,
                                const std::vector<ptl::Formula>& atoms,
                                int depth);

// ---------------------------------------------------------------------------
// FOTL safety-sentence + update-stream generators (historically duplicated in
// checker_backend_diff_test and checker_property_test).
// ---------------------------------------------------------------------------

/// \brief A complete generated differential-test case: a sentence over a
/// fresh vocabulary of unary predicates P0..Pn-1, plus an update stream.
/// The case owns its vocabulary and formula factory so it can be generated,
/// serialized (reproducer.h), shrunk (shrink.h) and replayed independently
/// of any suite fixture.
struct FotlCase {
  VocabularyPtr vocab;
  std::shared_ptr<fotl::FormulaFactory> factory;
  std::vector<PredicateId> preds;
  /// Quantified variables requested at generation time ("x", then "y").
  /// Factory simplification can drop vacuous quantifiers, so the sentence's
  /// realized universal prefix may be shorter (ParseCase re-derives it).
  size_t num_vars = 1;
  fotl::Formula sentence = nullptr;
  std::vector<Transaction> stream;
};

/// \brief Builder for FOTL cases: a fresh vocabulary of `num_preds` unary
/// predicates and the safe/co-safe random grammars of the backend
/// differential suite. All grammar methods reproduce the historical draw
/// sequences in seed mode.
class CaseBuilder {
 public:
  explicit CaseBuilder(size_t num_preds);

  const VocabularyPtr& vocab() const { return vocab_; }
  const std::shared_ptr<fotl::FormulaFactory>& factory() const { return factory_; }
  const std::vector<PredicateId>& preds() const { return preds_; }

  /// Variable term: index 0 is "x", anything else "y".
  fotl::Term Var(size_t i);

  /// A possibly negated random unary atom over the first `num_vars` variables.
  fotl::Formula Lit(Entropy* ent, size_t num_vars);

  /// Conjunction of 1-2 literals: a safe implication antecedent (its negation
  /// NNFs to a disjunction of literals).
  fotl::Formula LitConj(Entropy* ent, size_t num_vars);

  /// Co-safe side: positive atoms under And/Or/Next/Until/Eventually. Only
  /// ever used under negation, where NNF turns Until into Release and
  /// Eventually into Always — still safe.
  fotl::Formula GenCosafe(Entropy* ent, size_t num_vars, int depth);

  /// Safe grammar: every production stays syntactically safe after NNF.
  fotl::Formula GenSafe(Entropy* ent, size_t num_vars, int depth);

  /// Wraps `matrix` in the universal prefix forall x (y) . matrix.
  fotl::Formula Quantify(fotl::Formula matrix, size_t num_vars);

  /// Assembles the finished case (moves nothing; the builder can keep going).
  FotlCase Finish(fotl::Formula sentence, size_t num_vars,
                  std::vector<Transaction> stream) const;

 private:
  VocabularyPtr vocab_;
  std::shared_ptr<fotl::FormulaFactory> factory_;
  std::vector<PredicateId> preds_;
};

/// \brief Dense random churn transaction: for every predicate x universe
/// element, insert with probability 1/4 and delete with probability 1/4 (the
/// historical backend-diff stream distribution).
Transaction ChurnTxn(Entropy* ent, const std::vector<PredicateId>& preds,
                     const std::vector<Value>& universe);

/// \brief Single random insert-or-delete transaction (the historical
/// monitor-agreement stream distribution: element drawn first, then the
/// op/predicate combination).
Transaction SingleOpTxn(Entropy* ent, const std::vector<PredicateId>& preds,
                        const std::vector<Value>& universe);

/// \brief Appends one independent random state to `history`: each
/// predicate(element) tuple present with probability 1/2 (the historical
/// brute-force-oracle history distribution).
void AppendRandomState(Entropy* ent, History* history,
                       const std::vector<PredicateId>& preds,
                       const std::vector<Value>& universe);

/// \brief Knobs for GenerateSafetyCase. Defaults reproduce the backend
/// differential suite's family A: 2-3 unary predicates, 1-2 variables,
/// matrix depth 2-4, stream length 5-8 over universe {1,2,3} with element 4
/// arriving in the back half (fresh-element epoch path).
struct SafetyCaseOptions {
  size_t min_preds = 2, max_preds = 3;
  size_t min_vars = 1, max_vars = 2;
  int min_depth = 2, max_depth = 4;
  size_t min_stream = 5, max_stream = 8;
  std::vector<Value> universe = {1, 2, 3};
  /// When >= 0, this element joins the universe for the back half of the
  /// stream; -1 disables the fresh-element arrival.
  Value fresh_element = 4;
};

/// \brief One-call structure-aware case generator: a closed universal safety
/// sentence `forall x (y) . G matrix` with a churn stream. This is the shared
/// entry point behind the property suites (seed mode) and fuzz_monitor_diff
/// (byte mode).
FotlCase GenerateSafetyCase(Entropy* ent, const SafetyCaseOptions& options = {});

/// \brief An open existential-fragment trigger condition (free variable "x")
/// over a fresh 2-predicate vocabulary, plus a churn stream: the input shape
/// of the trigger-duality oracle. The condition body is a positive co-safe
/// formula, so its negation is universal and TriggerManager accepts it.
FotlCase GenerateTriggerCase(Entropy* ent);

}  // namespace testing
}  // namespace tic

#endif  // TIC_TESTING_GENERATORS_H_
