#ifndef TIC_TESTING_ORACLES_H_
#define TIC_TESTING_ORACLES_H_

#include <functional>
#include <string>

#include "common/result.h"
#include "ptl/tableau.h"
#include "testing/generators.h"

namespace tic {
namespace testing {

/// \brief Verdict of one metamorphic oracle on one case. `pass == false`
/// means the paper-derived identity was violated; `detail` then carries a
/// human-readable explanation ending in the full reproducer text, so a CI log
/// alone suffices to replay the failure. Infrastructure errors (a monitor
/// rejecting the sentence, a tableau failing) are reported through the
/// surrounding Result instead — the distinction matters to the shrinker,
/// which must treat "invalid candidate" differently from "still failing".
struct OracleResult {
  bool pass = true;
  std::string detail;
};

// ---------------------------------------------------------------------------
// The oracle kit: each function checks one identity between independent
// constructions of the paper, on one generated case.
// ---------------------------------------------------------------------------

/// \brief Tableau-engine equality: kLegacy and kBitset must agree on
/// sat/unsat, and each engine's lasso witness must validate under the
/// independent word evaluator. Optionally reports the shared verdict.
Result<OracleResult> TableauEnginesAgree(ptl::Factory* fac, ptl::Formula f,
                                         bool* satisfiable = nullptr);

/// \brief Monitor-backend equality: the automaton backend (memoized
/// residual-graph transitions) must produce exactly the per-update verdicts
/// of the literal Lemma 4.2 progression + CheckSat procedure.
Result<OracleResult> BackendVerdictsAgree(const FotlCase& c);

/// \brief Cohort-configuration equality: the cohort lockstep path (SoA
/// states, dense-table gather stepping) — with offline minimization forced
/// (interval 1) and disabled (interval 0) — must produce exactly the
/// per-update verdicts of the joint residual-graph path (cohorts off) and of
/// the literal progression baseline, on every transaction of the case.
Result<OracleResult> CohortConfigsAgree(const FotlCase& c);

/// \brief Minimizer metamorphic oracle on one compiled PTL formula: stepping
/// a TransitionSystem through `steps` random letters must report identical
/// (any_survivor, live) per step whether or not MinimizeNow runs at random
/// points along the way (states remapped through Representative), and the
/// pass must be idempotent — a second consecutive run refines nothing and
/// leaves the representative map unchanged. Returns pass vacuously when the
/// formula exceeds the compile budget (random non-safe formulas may).
Result<OracleResult> MinimizedAutomatonAgrees(ptl::Factory* fac, ptl::Formula f,
                                              Entropy* ent, size_t steps);

/// \brief Monitor-vs-batch agreement: the incremental monitor's verdict after
/// each transaction must equal a from-scratch CheckPotentialSatisfaction on
/// the corresponding history prefix.
Result<OracleResult> MonitorMatchesBatch(const FotlCase& c);

/// \brief Prefix-closure of Pref(C) (Section 2): once a history prefix falls
/// out of Pref(C) no extension re-enters it, so the per-prefix verdict
/// sequence must be monotone non-increasing, and a permanent-violation flag
/// must coincide with (and persist after) the first NO.
Result<OracleResult> PrefixClosureHolds(const FotlCase& c);

/// \brief Renaming invariance: the Theorem 4.1 construction depends only on
/// the *pattern* of the history, not on which universe elements realize it.
/// Renaming every element of the stream through the bijection `perm` must
/// leave every per-update verdict unchanged.
Result<OracleResult> RenamingInvariant(const FotlCase& c,
                                       const std::function<Value(Value)>& perm);

/// \brief Trigger duality (Section 2): the trigger for condition C fires at t
/// for substitution theta iff !C(theta) is NOT potentially satisfied. Runs
/// TriggerManager (automaton backend) against an independent dual check that
/// enumerates substitutions over R_D and calls the progression backend.
/// `c.sentence` is the open existential condition.
Result<OracleResult> TriggerDualityHolds(const FotlCase& c);

// ---------------------------------------------------------------------------
// Test-only fault injection.
// ---------------------------------------------------------------------------

/// \brief When set, BackendVerdictsAgree reports a planted divergence on any
/// case for which the hook returns true (after running both real monitors, so
/// candidate validity is still enforced). Exists so the shrinker test can
/// plant a deterministic "bug" and prove minimization converges; never set it
/// outside tests. Pass nullptr to clear.
void SetBackendFaultHookForTest(std::function<bool(const FotlCase&)> hook);

}  // namespace testing
}  // namespace tic

#endif  // TIC_TESTING_ORACLES_H_
