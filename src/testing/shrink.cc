#include "testing/shrink.h"

#include <algorithm>
#include <unordered_set>

#include "fotl/classify.h"

namespace tic {
namespace testing {

namespace {

// All distinct subformulas of `f` (including f itself), smallest first.
std::vector<fotl::Formula> SubformulasOf(fotl::Formula f) {
  std::vector<fotl::Formula> out;
  std::unordered_set<fotl::Formula> seen;
  std::vector<fotl::Formula> stack{f};
  while (!stack.empty()) {
    fotl::Formula g = stack.back();
    stack.pop_back();
    if (!seen.insert(g).second) continue;
    out.push_back(g);
    fotl::NodeKind k = g->kind();
    if (fotl::IsBinaryConnective(k)) {
      stack.push_back(g->lhs());
      stack.push_back(g->rhs());
    } else if (fotl::IsUnaryConnective(k) || fotl::IsQuantifier(k)) {
      stack.push_back(g->child(0));
    }
  }
  std::sort(out.begin(), out.end(),
            [](fotl::Formula a, fotl::Formula b) { return a->size() < b->size(); });
  return out;
}

// `sub` universally closed over exactly its own free variables.
fotl::Formula Requantify(const FotlCase& c, fotl::Formula sub) {
  fotl::Formula phi = sub;
  const std::vector<fotl::VarId>& fv = sub->free_vars();
  for (auto it = fv.rbegin(); it != fv.rend(); ++it) {
    phi = c.factory->Forall(*it, phi);
  }
  return phi;
}

class Shrinker {
 public:
  Shrinker(const FailurePredicate& fails, ShrinkStats* stats, size_t max_attempts)
      : fails_(fails), stats_(stats), max_attempts_(max_attempts) {}

  bool StillFails(const FotlCase& candidate) {
    if (attempts_ >= max_attempts_) return false;
    ++attempts_;
    if (stats_ != nullptr) stats_->attempts = attempts_;
    bool failing = fails_(candidate);
    if (failing && stats_ != nullptr) ++stats_->improvements;
    return failing;
  }

  // ddmin-style: remove contiguous transaction chunks, halving the chunk size.
  bool ShrinkStream(FotlCase* c) {
    bool improved = false;
    for (size_t chunk = std::max<size_t>(c->stream.size() / 2, 1); chunk >= 1;
         chunk /= 2) {
      bool removed_any = true;
      while (removed_any && !c->stream.empty()) {
        removed_any = false;
        for (size_t start = 0; start + chunk <= c->stream.size(); ++start) {
          FotlCase candidate = *c;
          candidate.stream.erase(candidate.stream.begin() + start,
                                 candidate.stream.begin() + start + chunk);
          if (StillFails(candidate)) {
            *c = std::move(candidate);
            improved = removed_any = true;
            break;
          }
        }
      }
      if (chunk == 1) break;
    }
    // Individual ops inside the surviving transactions.
    bool removed_any = true;
    while (removed_any) {
      removed_any = false;
      for (size_t t = 0; t < c->stream.size() && !removed_any; ++t) {
        for (size_t i = 0; i < c->stream[t].size(); ++i) {
          FotlCase candidate = *c;
          candidate.stream[t].erase(candidate.stream[t].begin() + i);
          if (candidate.stream[t].empty()) {
            candidate.stream.erase(candidate.stream.begin() + t);
          }
          if (StillFails(candidate)) {
            *c = std::move(candidate);
            improved = removed_any = true;
            break;
          }
        }
      }
    }
    return improved;
  }

  // Replace the sentence with a requantified proper subformula, smallest
  // first, so the first accepted candidate is the best this pass can do.
  bool ShrinkSentence(FotlCase* c) {
    std::vector<fotl::VarId> vars;
    fotl::Formula body = nullptr;
    fotl::StripUniversalPrefix(c->sentence, &vars, &body);
    for (fotl::Formula sub : SubformulasOf(body)) {
      if (sub->size() >= c->sentence->size()) break;  // sorted: no gain beyond
      FotlCase candidate = *c;
      candidate.sentence = Requantify(*c, sub);
      candidate.num_vars = sub->free_vars().size();
      if (candidate.sentence == c->sentence) continue;
      if (candidate.sentence->size() >= c->sentence->size()) continue;
      if (StillFails(candidate)) {
        *c = std::move(candidate);
        return true;
      }
    }
    return false;
  }

  size_t attempts_ = 0;

 private:
  const FailurePredicate& fails_;
  ShrinkStats* stats_;
  size_t max_attempts_;
};

}  // namespace

FotlCase ShrinkCase(const FotlCase& seed, const FailurePredicate& fails,
                    ShrinkStats* stats, size_t max_attempts) {
  FotlCase best = seed;
  Shrinker shrinker(fails, stats, max_attempts);
  bool improved = true;
  while (improved && shrinker.attempts_ < max_attempts) {
    improved = false;
    if (shrinker.ShrinkStream(&best)) improved = true;
    if (shrinker.ShrinkSentence(&best)) improved = true;
  }
  return best;
}

}  // namespace testing
}  // namespace tic
