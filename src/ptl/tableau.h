#ifndef TIC_PTL_TABLEAU_H_
#define TIC_PTL_TABLEAU_H_

#include <cstdint>
#include <memory>
#include <optional>

#include "common/result.h"
#include "ptl/formula.h"
#include "ptl/verdict_cache.h"
#include "ptl/word.h"

namespace tic {
namespace ptl {

/// \brief Selects the satisfiability engine implementation. Both decide the
/// same relation and honor the same budgets; they may return different (but
/// equally valid) witnesses and state counts, because subsumption makes the
/// emitted state set depend on rule-application order.
enum class TableauEngine : uint8_t {
  /// Formula-set states (sorted vectors of hash-consed nodes), recursive
  /// branch expansion. Kept as the differential-testing oracle; also what the
  /// automaton inspection API renders.
  kLegacy,
  /// Closure-indexed engine: the Fischer–Ladner closure is computed once, each
  /// member gets a dense index, states are flat bitsets over that index, and
  /// expansion is table-driven with an explicit choice stack. Same verdicts,
  /// considerably faster on the exponential phase.
  kBitset,
};

/// \brief Resource limits for the satisfiability search. The worst case is
/// 2^O(|psi|) states (Sistla–Clarke); the budget turns a blow-up into a
/// ResourceExhausted error instead of an out-of-memory condition.
struct TableauOptions {
  size_t max_states = 1u << 22;
  /// Cap on expansion-rule applications (the branch tree explored inside
  /// Expand calls can dwarf the number of distinct states).
  size_t max_expansions = 1u << 24;

  /// \name Ablation switches (benchmarked in bench_ablation; keep defaults).
  /// @{
  /// Use the lazy cycle-searching DFS on syntactically safe formulas instead
  /// of materializing the full tableau graph.
  bool use_safety_fast_path = true;
  /// Skip a disjunct/goal branch when it is already asserted in the state.
  bool use_subsumption = true;
  /// Process non-branching rules before disjunctive ones so unit information
  /// can prune branches. Legacy engine only: the bitset engine's split
  /// alpha/beta worklists defer branching inherently.
  bool defer_branching = true;
  /// @}

  /// Engine choice (see TableauEngine). The default is the bitset engine;
  /// flip to kLegacy to cross-check verdicts or reproduce old traces.
  TableauEngine engine = TableauEngine::kBitset;

  /// Cap on the depth of the expansion-rule branch recursion (each level is a
  /// disjunctive split); exceeding it returns ResourceExhausted instead of
  /// overflowing the native stack on pathologically deep formulas.
  size_t max_branch_depth = 10000;

  /// Optional shared cache of verdicts keyed by the canonical residual form
  /// (letter-renaming-invariant, cross-factory). When set, CheckSat consults
  /// it before building a tableau and publishes its result afterwards. Shared
  /// across updates, Monitor instances, and the TriggerManager.
  std::shared_ptr<VerdictCache> verdict_cache;
};

/// \brief Size counters reported back to benchmarks (Experiment E4).
/// Per-call: every CheckSat starts from zero. Callers wanting lifetime totals
/// accumulate themselves (the Monitor does, see
/// MonitorVerdict::cumulative_tableau_stats).
struct TableauStats {
  size_t num_states = 0;
  size_t num_edges = 0;
  size_t num_expansions = 0;
  /// Verdict-cache outcome of this check: at most one of the two is 1.
  size_t cache_hits = 0;
  size_t cache_misses = 0;

  TableauStats& operator+=(const TableauStats& o) {
    num_states += o.num_states;
    num_edges += o.num_edges;
    num_expansions += o.num_expansions;
    cache_hits += o.cache_hits;
    cache_misses += o.cache_misses;
    return *this;
  }
};

/// \brief Outcome of a satisfiability check.
struct SatResult {
  bool satisfiable = false;
  /// A lasso model when satisfiable: the Sistla–Clarke small-model witness.
  /// Letters not mentioned positively by the tableau state are set to false.
  std::optional<UltimatelyPeriodicWord> witness;
  TableauStats stats;
};

/// \brief Decides satisfiability of a (future) propositional-TL formula.
///
/// Phase 2 of Lemma 4.2. The formula is first put into negation normal form;
/// then a tableau graph is built *on the fly* (only states reachable from the
/// initial cover are materialized, rather than all subsets of the closure),
/// and Tarjan SCC analysis searches for a reachable self-fulfilling component:
/// one where every Until/Eventually obligation appearing in a member state has
/// its goal formula present in some member state (Lichtenstein–Pnueli).
/// Worst-case time stays 2^O(|f|) as the paper states.
Result<SatResult> CheckSat(Factory* factory, Formula f, const TableauOptions& options = {});

/// \brief Validity of `f` == unsatisfiability of `!f`.
Result<bool> CheckValid(Factory* factory, Formula f, const TableauOptions& options = {});

/// \brief Equivalence of two formulas: `(a <-> b)` valid.
Result<bool> CheckEquivalent(Factory* factory, Formula a, Formula b,
                             const TableauOptions& options = {});

}  // namespace ptl
}  // namespace tic

#endif  // TIC_PTL_TABLEAU_H_
