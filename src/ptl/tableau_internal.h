#ifndef TIC_PTL_TABLEAU_INTERNAL_H_
#define TIC_PTL_TABLEAU_INTERNAL_H_

// Internal building blocks of the tableau decision procedure, shared between
// the satisfiability engine (tableau.cc) and the inspection/visualization API
// (automaton.cc). Not part of the public surface.

#include <algorithm>
#include <cstdint>
#include <functional>
#include <set>
#include <vector>

#include "common/flat/flat_set.h"
#include "common/hash.h"
#include "common/status.h"
#include "ptl/formula.h"
#include "ptl/nnf.h"
#include "ptl/tableau.h"
#include "ptl/word.h"

namespace tic {
namespace ptl {
namespace internal {

// A tableau state: the canonical (sorted) set of formulas asserted to hold now.
using StateSet = std::vector<Formula>;

// Iterative Tarjan SCC decomposition of an adjacency list, shared by both
// tableau engines and the automaton inspection API. Fills `scc_of` with a
// component id per node and returns the component member lists, indexed by id
// in emission (reverse topological) order — the searches rely on that order
// when they take the first acceptable component.
inline std::vector<std::vector<uint32_t>> ComputeSccs(
    const std::vector<std::vector<uint32_t>>& edges,
    std::vector<uint32_t>* scc_of) {
  size_t n = edges.size();
  std::vector<uint32_t> index(n, UINT32_MAX), low(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<uint32_t> stack;
  std::vector<std::vector<uint32_t>> members;
  scc_of->assign(n, UINT32_MAX);
  uint32_t next_index = 0;

  struct Frame {
    uint32_t v;
    size_t edge;
  };
  for (uint32_t start = 0; start < n; ++start) {
    if (index[start] != UINT32_MAX) continue;
    std::vector<Frame> call_stack{{start, 0}};
    index[start] = low[start] = next_index++;
    stack.push_back(start);
    on_stack[start] = true;
    while (!call_stack.empty()) {
      Frame& fr = call_stack.back();
      if (fr.edge < edges[fr.v].size()) {
        uint32_t w = edges[fr.v][fr.edge++];
        if (index[w] == UINT32_MAX) {
          index[w] = low[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          call_stack.push_back({w, 0});
        } else if (on_stack[w]) {
          low[fr.v] = std::min(low[fr.v], index[w]);
        }
      } else {
        uint32_t v = fr.v;
        call_stack.pop_back();
        if (!call_stack.empty()) {
          uint32_t parent = call_stack.back().v;
          low[parent] = std::min(low[parent], low[v]);
        }
        if (low[v] == index[v]) {
          uint32_t c = static_cast<uint32_t>(members.size());
          members.emplace_back();
          while (true) {
            uint32_t w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            (*scc_of)[w] = c;
            members[c].push_back(w);
            if (w == v) break;
          }
        }
      }
    }
  }
  return members;
}

// Canonical formula order within a StateSet: content fingerprint first, so
// state enumeration (and hence witness selection) is identical across runs.
// The address tiebreak only matters on a 64-bit fingerprint collision.
struct FormulaOrder {
  bool operator()(Formula a, Formula b) const {
    if (a->hash() != b->hash()) return a->hash() < b->hash();
    return a < b;
  }
};

struct StateSetHash {
  size_t operator()(const StateSet& s) const {
    size_t seed = s.size();
    for (Formula f : s) HashCombine(&seed, static_cast<size_t>(f->hash()));
    return seed;
  }
};

// The propositional assignment a state induces: positive atoms true, all other
// letters false.
inline PropState AssignmentOf(const StateSet& s) {
  PropState st;
  for (Formula f : s) {
    if (f->kind() == Kind::kAtom) st.Set(f->atom(), true);
  }
  return st;
}

// The next-time obligations of a fully expanded state.
inline std::vector<Formula> SeedOf(const StateSet& s) {
  std::vector<Formula> seed;
  for (Formula f : s) {
    if (f->kind() == Kind::kNext) seed.push_back(f->child(0));
  }
  return seed;
}

// Expands a seed set of formulas into the fully-expanded, locally consistent
// tableau states, applying the alpha/beta rules:
//   A & B   -> {A, B}
//   A | B   -> {A} or {B}
//   A U B   -> {B} or {A, X(A U B)}
//   A R B   -> {B, A} or {B, X(A R B)}
//   F A     -> {A} or {X(F A)}
//   G A     -> {A, X(G A)}
// Literals clash-check against the set; X-formulas are elementary. States are
// *enumerated lazily* through a sink callback (return false to stop early) —
// essential for the safety fast path, which needs one path, not the whole
// branch tree.
class Expander {
 public:
  Expander(Factory* fac, const TableauOptions& options, TableauStats* stats)
      : fac_(fac), options_(options), stats_(stats) {}

  using Sink = std::function<bool(StateSet&&)>;

  /// Non-OK when an enumeration aborted on a resource budget.
  const Status& status() const { return status_; }

  // Returns false if the sink stopped the enumeration.
  bool ExpandEach(const std::vector<Formula>& seed, const Sink& sink) {
    flat::FlatSet<StateSet, flat::Remixed<StateSetHash>> seen;
    Sink dedup = [&](StateSet&& s) {
      if (!seen.Insert(s)) return true;
      return sink(std::move(s));
    };
    return Rec(seed, std::set<Formula>(), dedup, 0);
  }

  std::vector<StateSet> Expand(const std::vector<Formula>& seed) {
    std::vector<StateSet> out;
    ExpandEach(seed, [&](StateSet&& s) {
      out.push_back(std::move(s));
      return true;
    });
    return out;
  }

 private:
  static bool IsBranching(Formula f) {
    switch (f->kind()) {
      case Kind::kOr:
      case Kind::kUntil:
      case Kind::kRelease:
      case Kind::kEventually:
      case Kind::kImplies:
        return true;
      default:
        return false;
    }
  }

  // True if some disjunct in the flattened Or-tree of `f` is already in
  // `done` (iterative, no allocation in the common case).
  static bool OrSubsumed(Formula f, const std::set<Formula>& done) {
    std::vector<Formula> stack{f->lhs(), f->rhs()};
    while (!stack.empty()) {
      Formula g = stack.back();
      stack.pop_back();
      if (g->kind() == Kind::kOr) {
        stack.push_back(g->lhs());
        stack.push_back(g->rhs());
        continue;
      }
      if (done.count(g) > 0) return true;
    }
    return false;
  }

  // Pops a non-branching formula when one exists (deferring disjunctive rules
  // until all unit information is in `done` lets the subsumption checks below
  // prune most branches — crucial for the literal-mode Axiom_D, whose diagram
  // literals pin every equality letter).
  Formula PopPreferred(std::vector<Formula>* todo) const {
    if (!options_.defer_branching) {
      Formula f = todo->back();
      todo->pop_back();
      return f;
    }
    for (size_t i = todo->size(); i-- > 0;) {
      if (!IsBranching((*todo)[i])) {
        // Swap-and-pop: every remaining element at i+1.. is branching, so
        // their relative order (which only picks the next split) may shift
        // without affecting soundness — and removal stays O(1) instead of
        // O(n) on the long unit chains the literal-mode diagrams produce.
        Formula f = (*todo)[i];
        (*todo)[i] = todo->back();
        todo->pop_back();
        return f;
      }
    }
    Formula f = todo->back();
    todo->pop_back();
    return f;
  }

  // `todo` holds formulas still to process; `done` holds everything already
  // asserted. Returns false iff the sink stopped the enumeration. Rec recurses
  // once per disjunctive split along the current branch (right alternatives
  // stay in this frame's loop), so `depth` is bounded by the branch length —
  // guarded because a deep left-nested disjunction would otherwise overflow
  // the native stack before any budget triggers.
  bool Rec(std::vector<Formula> todo, std::set<Formula> done, const Sink& sink,
           size_t depth) {
    if (++stats_->num_expansions > options_.max_expansions) {
      status_ = Status::ResourceExhausted(
          "tableau exceeded max_expansions = " +
          std::to_string(options_.max_expansions));
      return false;
    }
    if (depth > options_.max_branch_depth) {
      status_ = Status::ResourceExhausted(
          "tableau branch depth exceeded max_branch_depth = " +
          std::to_string(options_.max_branch_depth));
      return false;
    }
    while (!todo.empty()) {
      Formula f = PopPreferred(&todo);
      if (done.count(f) > 0) continue;
      switch (f->kind()) {
        case Kind::kTrue:
          continue;
        case Kind::kFalse:
          return true;  // inconsistent branch: nothing emitted
        case Kind::kAtom: {
          if (done.count(fac_->Not(f)) > 0) return true;  // clash
          done.insert(f);
          continue;
        }
        case Kind::kNot: {
          // NNF: child is an atom.
          if (done.count(f->child(0)) > 0) return true;  // clash
          done.insert(f);
          continue;
        }
        case Kind::kNext:
          done.insert(f);
          continue;
        case Kind::kAnd:
          done.insert(f);
          todo.push_back(f->lhs());
          todo.push_back(f->rhs());
          continue;
        case Kind::kOr: {
          done.insert(f);
          // Subsumption: if ANY disjunct of the flattened Or-tree is already
          // asserted, the disjunction holds without branching. Checking deep
          // disjuncts matters: NNF'd rule implications are right-nested Ors
          // whose satisfied leaf may sit several levels down, and spawning the
          // alternative branches anyway multiplies states exponentially.
          if (options_.use_subsumption && OrSubsumed(f, done)) continue;
          std::vector<Formula> todo2 = todo;
          todo2.push_back(f->lhs());
          if (!Rec(std::move(todo2), done, sink, depth + 1)) return false;
          todo.push_back(f->rhs());
          continue;
        }
        case Kind::kUntil: {
          done.insert(f);
          // Subsumption: goal already asserted — fulfilled right now.
          if (options_.use_subsumption && done.count(f->rhs()) > 0) continue;
          std::vector<Formula> todo2 = todo;
          todo2.push_back(f->rhs());
          if (!Rec(std::move(todo2), done, sink, depth + 1)) return false;
          todo.push_back(f->lhs());
          todo.push_back(fac_->Next(f));
          continue;
        }
        case Kind::kRelease: {
          done.insert(f);
          if (options_.use_subsumption && done.count(f->lhs()) > 0) {
            // Releasing side already asserted: B alone discharges A R B now.
            todo.push_back(f->rhs());
            continue;
          }
          std::vector<Formula> todo2 = todo;
          todo2.push_back(f->rhs());
          todo2.push_back(f->lhs());
          if (!Rec(std::move(todo2), done, sink, depth + 1)) return false;
          todo.push_back(f->rhs());
          todo.push_back(fac_->Next(f));
          continue;
        }
        case Kind::kEventually: {
          done.insert(f);
          if (options_.use_subsumption && done.count(f->child(0)) > 0) {
            continue;  // fulfilled right now
          }
          std::vector<Formula> todo2 = todo;
          todo2.push_back(f->child(0));
          if (!Rec(std::move(todo2), done, sink, depth + 1)) return false;
          todo.push_back(fac_->Next(f));
          continue;
        }
        case Kind::kAlways:
          done.insert(f);
          todo.push_back(f->child(0));
          todo.push_back(fac_->Next(f));
          continue;
        case Kind::kImplies: {
          // Defensive (NNF removes Implies): A -> B == !A | B with !A in NNF.
          done.insert(f);
          if (options_.use_subsumption && done.count(f->rhs()) > 0) continue;
          std::vector<Formula> todo2 = todo;
          todo2.push_back(ToNnf(fac_, fac_->Not(f->lhs())));
          if (!Rec(std::move(todo2), done, sink, depth + 1)) return false;
          todo.push_back(f->rhs());
          continue;
        }
      }
    }
    StateSet out(done.begin(), done.end());
    std::sort(out.begin(), out.end(), FormulaOrder{});
    return sink(std::move(out));
  }

  Factory* fac_;
  TableauOptions options_;
  TableauStats* stats_;
  Status status_;
};


}  // namespace internal
}  // namespace ptl
}  // namespace tic

#endif  // TIC_PTL_TABLEAU_INTERNAL_H_
