#ifndef TIC_PTL_VERDICT_CACHE_H_
#define TIC_PTL_VERDICT_CACHE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/flat/lru.h"
#include "common/flat/wyhash.h"
#include "ptl/formula.h"
#include "ptl/word.h"

namespace tic {
namespace ptl {

/// \brief Hit/miss/eviction counters, surfaced through `MonitorVerdict` and
/// the benches (EXPERIMENTS.md E2/E5).
struct VerdictCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t entries = 0;
  uint64_t capacity = 0;
};

/// \brief The canonical form of a formula *modulo letter renaming*: the
/// serialized structure with each letter replaced by its first-occurrence
/// index in a fixed (pre-order) traversal, plus the mapping from canonical
/// index back to the caller's concrete letters.
///
/// Two formulas have equal keys iff one is an injective letter-renaming of the
/// other — precisely the equivalence satisfiability is invariant under, and
/// the reason grounding instances over different domain elements (which are
/// letter-renamings of one another, the `kEagerHistoryLess` observation) can
/// share one cached verdict. Because the key carries no PropIds or node
/// addresses, it transfers across Factory and PropVocabulary instances.
struct CanonicalFormula {
  std::string key;
  flat::Fp128 fp;               ///< 128-bit fingerprint of `key` (cache index key)
  std::vector<PropId> letters;  ///< canonical index -> concrete letter
};

/// \brief Computes the canonical form. Iterative pre-order serialization of
/// the shared DAG (repeat visits emit back-references, so the key is linear in
/// the number of distinct nodes, never the tree unfolding). Returns nullopt
/// past `max_nodes` distinct nodes so outliers bypass the cache instead of
/// building huge keys.
std::optional<CanonicalFormula> Canonicalize(Formula f, size_t max_nodes = 1u << 20);

/// \brief Bounded, thread-safe LRU cache of tableau verdicts keyed by
/// canonical residual form.
///
/// Shared across updates, Monitor instances, and the TriggerManager (inject
/// one instance through `TableauOptions::verdict_cache`). Stores sat/unsat
/// plus the lasso witness over canonical letter indices; on a hit the witness
/// is reconstructed over the querying formula's letters, so a cached verdict
/// is indistinguishable from a fresh tableau run.
class VerdictCache {
 public:
  explicit VerdictCache(size_t capacity = 4096);

  /// On hit, fills `satisfiable` and (when the entry has one) `witness`
  /// remapped through `cf.letters`, and returns true.
  bool Lookup(const CanonicalFormula& cf, bool* satisfiable,
              std::optional<UltimatelyPeriodicWord>* witness);

  /// Inserts (or refreshes) the verdict for `cf`. The witness, when present,
  /// is stored over canonical letter indices via the inverse of `cf.letters`.
  void Insert(const CanonicalFormula& cf, bool satisfiable,
              const std::optional<UltimatelyPeriodicWord>& witness);

  /// Cheap snapshot: four relaxed atomic loads, never takes `mu_`, so
  /// per-update stat reads cannot serialize against hot-path lookups.
  VerdictCacheStats stats() const;

 private:
  // Lasso over canonical letter indices (sets of indices true per state).
  struct Entry {
    bool satisfiable = false;
    bool has_witness = false;
    std::vector<std::vector<uint32_t>> prefix;
    std::vector<std::vector<uint32_t>> loop;
#ifndef NDEBUG
    // Debug builds retain the full key to detect fingerprint collisions; a
    // release hit compares only the 128-bit fingerprint (2^-128 risk).
    std::string debug_key;
#endif
  };

  mutable std::mutex mu_;
  size_t capacity_;
  // Fingerprint-keyed slab LRU: hits and steady-state inserts touch no heap,
  // unlike the former std::list + string-keyed index (which re-hashed and
  // heap-compared a full key string on every lookup).
  flat::FlatLru<flat::Fp128, Entry> lru_;

  // Monotonic counters kept outside mu_ (relaxed atomics) so stats() is a
  // lock-free snapshot. entries_ mirrors lru_.size() at each mutation.
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> entries_{0};
};

}  // namespace ptl
}  // namespace tic

#endif  // TIC_PTL_VERDICT_CACHE_H_
