#ifndef TIC_PTL_NNF_H_
#define TIC_PTL_NNF_H_

#include "ptl/formula.h"

namespace tic {
namespace ptl {

/// \brief Negation normal form: negation only on atoms, Implies eliminated,
/// Eventually/Always rewritten to Until/Release. The tableau operates on NNF.
///
/// Equivalences used: !(A & B) == !A | !B, !(A | B) == !A & !B,
/// !X A == X !A, !(A U B) == !A R !B, !(A R B) == !A U !B,
/// F A == true U A, G A == false R A.
Formula ToNnf(Factory* factory, Formula f);

/// \brief True if `f` is already in NNF: negations on atoms only and no
/// Implies. Positive Eventually/Always are accepted (the factory folds
/// `true U A` / `false R A` back to them, and the tableau handles both).
bool IsNnf(Formula f);

}  // namespace ptl
}  // namespace tic

#endif  // TIC_PTL_NNF_H_
