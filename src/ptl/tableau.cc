#include "ptl/tableau.h"

#include <algorithm>
#include <deque>
#include <functional>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/hash.h"
#include "common/telemetry/telemetry.h"
#include "ptl/nnf.h"
#include "ptl/safety.h"
#include "ptl/tableau_bitset.h"
#include "ptl/tableau_internal.h"

namespace tic {
namespace ptl {

namespace {

using internal::AssignmentOf;
using internal::Expander;
using internal::SeedOf;
using internal::StateSet;
using internal::StateSetHash;

// Fast path for *syntactically safe* formulas (no Until/Eventually in NNF):
// every state's obligations are invariants, so the formula is satisfiable iff
// the tableau graph contains any infinite path — found by a lazy depth-first
// search that stops at the first cycle, without materializing the branch tree.
class SafetySearch {
 public:
  SafetySearch(Factory* fac, const TableauOptions& options, TableauStats* stats)
      : options_(options), stats_(stats), expander_(fac, options, stats) {}

  // On success fills `witness` with the lasso induced by the DFS path.
  Result<bool> Run(Formula root_nnf, UltimatelyPeriodicWord* witness) {
    bool found = false;
    bool keep_going = expander_.ExpandEach({root_nnf}, [&](StateSet&& s) {
      Result<bool> r = Dfs(std::move(s));
      if (!r.ok()) {
        status_ = r.status();
        return false;
      }
      found = *r;
      return !found;
    });
    (void)keep_going;
    TIC_RETURN_NOT_OK(expander_.status());
    TIC_RETURN_NOT_OK(status_);
    if (found) {
      witness->prefix.clear();
      witness->loop.clear();
      for (size_t i = 0; i < loop_start_; ++i) {
        witness->prefix.push_back(AssignmentOf(path_[i]));
      }
      for (size_t i = loop_start_; i < path_.size(); ++i) {
        witness->loop.push_back(AssignmentOf(path_[i]));
      }
    }
    return found;
  }

 private:
  Result<bool> Dfs(StateSet s) {
    auto on_path = on_path_.find(s);
    if (on_path != on_path_.end()) {
      loop_start_ = on_path->second;  // cycle: an infinite path exists
      return true;
    }
    if (failed_.count(s) > 0) return false;
    if (++stats_->num_states > options_.max_states) {
      return Status::ResourceExhausted("safety search exceeded max_states = " +
                                       std::to_string(options_.max_states));
    }
    if (path_.size() > 100000) {
      // Guard the native call stack (Dfs recurses once per path state).
      return Status::ResourceExhausted("safety search path exceeded 100000 states");
    }
    size_t index = path_.size();
    on_path_.emplace(s, index);
    path_.push_back(s);
    std::vector<Formula> seed = SeedOf(path_[index]);

    bool found = false;
    expander_.ExpandEach(seed, [&](StateSet&& succ) {
      ++stats_->num_edges;
      Result<bool> r = Dfs(std::move(succ));
      if (!r.ok()) {
        status_ = r.status();
        return false;
      }
      found = *r;
      return !found;
    });
    TIC_RETURN_NOT_OK(expander_.status());
    TIC_RETURN_NOT_OK(status_);
    if (found) return true;  // keep the path intact for witness extraction
    path_.pop_back();
    on_path_.erase(s);
    failed_.insert(std::move(s));
    return false;
  }

  TableauOptions options_;
  TableauStats* stats_;
  Expander expander_;
  Status status_;
  std::vector<StateSet> path_;
  std::unordered_map<StateSet, size_t, StateSetHash> on_path_;
  std::unordered_set<StateSet, StateSetHash> failed_;
  size_t loop_start_ = 0;
};

// The full reachable tableau graph plus SCC-based model search (general case
// with eventualities, Lichtenstein–Pnueli acceptance).
class TableauGraph {
 public:
  TableauGraph(Factory* fac, const TableauOptions& options)
      : options_(options), expander_(fac, options, &stats_) {}

  Status Build(Formula root_nnf) {
    std::vector<StateSet> initials = expander_.Expand({root_nnf});
    TIC_RETURN_NOT_OK(expander_.status());
    for (StateSet& s : initials) {
      TIC_ASSIGN_OR_RETURN(uint32_t id, InternState(std::move(s)));
      initial_ids_.push_back(id);
    }
    // BFS over the transition relation.
    size_t head = 0;
    while (head < states_.size()) {
      uint32_t id = static_cast<uint32_t>(head++);
      std::vector<StateSet> succs = expander_.Expand(SeedOf(states_[id]));
      TIC_RETURN_NOT_OK(expander_.status());
      for (StateSet& s : succs) {
        TIC_ASSIGN_OR_RETURN(uint32_t sid, InternState(std::move(s)));
        edges_[id].push_back(sid);
        ++stats_.num_edges;
      }
    }
    stats_.num_states = states_.size();
    return Status::OK();
  }

  // Finds a reachable self-fulfilling SCC; fills `witness` when found.
  bool FindModel(UltimatelyPeriodicWord* witness) {
    scc_members_ = internal::ComputeSccs(edges_, &scc_of_);
    for (size_t c = 0; c < scc_members_.size(); ++c) {
      if (!SccIsNontrivial(c)) continue;
      if (!SccIsSelfFulfilling(c)) continue;
      BuildWitness(c, witness);
      return true;
    }
    return false;
  }

  const TableauStats& stats() const { return stats_; }

 private:
  Result<uint32_t> InternState(StateSet&& s) {
    auto it = state_ids_.find(s);
    if (it != state_ids_.end()) return it->second;
    if (states_.size() >= options_.max_states) {
      return Status::ResourceExhausted("tableau exceeded max_states = " +
                                       std::to_string(options_.max_states));
    }
    uint32_t id = static_cast<uint32_t>(states_.size());
    state_ids_.emplace(s, id);
    states_.push_back(std::move(s));
    edges_.emplace_back();
    return id;
  }

  bool SccIsNontrivial(size_t c) const {
    const auto& members = scc_members_[c];
    if (members.size() > 1) return true;
    uint32_t v = members[0];
    for (uint32_t w : edges_[v]) {
      if (w == v) return true;
    }
    return false;
  }

  // Goal of an eventuality obligation: B for A U B, A for F A.
  static Formula ObligationGoal(Formula f) {
    if (f->kind() == Kind::kUntil) return f->rhs();
    if (f->kind() == Kind::kEventually) return f->child(0);
    return nullptr;
  }

  bool StateContains(uint32_t v, Formula f) const {
    const StateSet& s = states_[v];
    return std::binary_search(s.begin(), s.end(), f, internal::FormulaOrder{});
  }

  bool SccIsSelfFulfilling(size_t c) const {
    const auto& members = scc_members_[c];
    for (uint32_t v : members) {
      for (Formula f : states_[v]) {
        Formula goal = ObligationGoal(f);
        if (goal == nullptr) continue;
        bool fulfilled = false;
        for (uint32_t w : members) {
          if (StateContains(w, goal)) {
            fulfilled = true;
            break;
          }
        }
        if (!fulfilled) return false;
      }
    }
    return true;
  }

  // BFS path from any node in `sources` to a node satisfying `pred`, optionally
  // restricted to one SCC. Returns the node sequence including both endpoints,
  // or empty if unreachable.
  template <typename Pred>
  std::vector<uint32_t> Bfs(const std::vector<uint32_t>& sources, Pred pred,
                            int restrict_scc, bool require_step) const {
    std::vector<int64_t> parent(states_.size(), -2);  // -2 unvisited
    std::deque<uint32_t> queue;
    if (!require_step) {
      for (uint32_t s : sources) {
        if (pred(s)) return {s};
      }
    }
    for (uint32_t s : sources) {
      if (parent[s] == -2) {
        parent[s] = -1;
        queue.push_back(s);
      }
    }
    while (!queue.empty()) {
      uint32_t v = queue.front();
      queue.pop_front();
      for (uint32_t w : edges_[v]) {
        if (restrict_scc >= 0 && scc_of_[w] != static_cast<uint32_t>(restrict_scc)) {
          continue;
        }
        if (pred(w)) {
          std::vector<uint32_t> path{w, v};
          int64_t p = parent[v];
          while (p >= 0) {
            path.push_back(static_cast<uint32_t>(p));
            p = parent[static_cast<uint32_t>(p)];
          }
          std::reverse(path.begin(), path.end());
          return path;
        }
        if (parent[w] == -2) {
          parent[w] = v;
          queue.push_back(w);
        }
      }
    }
    return {};
  }

  void BuildWitness(size_t c, UltimatelyPeriodicWord* witness) {
    // Stem: path from an initial state to some member r of the SCC.
    std::vector<uint32_t> stem =
        Bfs(initial_ids_, [&](uint32_t v) { return scc_of_[v] == c; }, -1, false);
    uint32_t r = stem.back();

    // Gather the distinct obligation goals of the SCC.
    std::vector<Formula> goals;
    for (uint32_t v : scc_members_[c]) {
      for (Formula f : states_[v]) {
        Formula g = ObligationGoal(f);
        if (g != nullptr && std::find(goals.begin(), goals.end(), g) == goals.end()) {
          goals.push_back(g);
        }
      }
    }

    // Cycle within the SCC from r visiting a state containing each goal, then
    // back to r; the SCC is strongly connected, so each hop exists.
    std::vector<uint32_t> cycle{r};
    uint32_t cur = r;
    for (Formula g : goals) {
      std::vector<uint32_t> hop = Bfs(
          {cur}, [&](uint32_t v) { return StateContains(v, g); },
          static_cast<int>(c), false);
      for (size_t i = 1; i < hop.size(); ++i) cycle.push_back(hop[i]);
      if (!hop.empty()) cur = hop.back();
    }
    std::vector<uint32_t> back =
        Bfs({cur}, [&](uint32_t v) { return v == r; }, static_cast<int>(c), true);
    for (size_t i = 1; i + 1 < back.size(); ++i) cycle.push_back(back[i]);
    // `back` ends at r; excluding the final r keeps the loop half-open.

    witness->prefix.clear();
    witness->loop.clear();
    for (size_t i = 0; i + 1 < stem.size(); ++i) {
      witness->prefix.push_back(AssignmentOf(states_[stem[i]]));
    }
    for (uint32_t v : cycle) witness->loop.push_back(AssignmentOf(states_[v]));
  }

  TableauOptions options_;
  TableauStats stats_;
  Expander expander_;
  std::vector<StateSet> states_;
  std::vector<std::vector<uint32_t>> edges_;
  std::unordered_map<StateSet, uint32_t, StateSetHash> state_ids_;
  std::vector<uint32_t> initial_ids_;
  std::vector<uint32_t> scc_of_;
  std::vector<std::vector<uint32_t>> scc_members_;
};

}  // namespace

Result<SatResult> CheckSat(Factory* factory, Formula f, const TableauOptions& options) {
  TIC_SPAN("tableau.check_sat");
  TIC_COUNTER_ADD("tableau/calls", 1);
  SatResult result;
  Formula nnf;
  {
    TIC_SPAN("tableau.nnf");
    nnf = ToNnf(factory, f);
  }
  if (nnf->kind() == Kind::kFalse) {
    result.satisfiable = false;
    return result;
  }

  // Verdict cache: the canonical form is letter-renaming-invariant, so the
  // residuals of grounding instances over different elements — and successive
  // monitor residuals that differ only by letter phase — share one entry.
  std::optional<CanonicalFormula> canonical;
  if (options.verdict_cache != nullptr) {
    TIC_SPAN("tableau.cache_lookup");
    canonical = Canonicalize(nnf);
    if (canonical.has_value()) {
      bool sat = false;
      std::optional<UltimatelyPeriodicWord> cached;
      if (options.verdict_cache->Lookup(*canonical, &sat, &cached)) {
        result.satisfiable = sat;
        result.witness = std::move(cached);
        result.stats.cache_hits = 1;
        return result;
      }
      result.stats.cache_misses = 1;
    }
  }

  UltimatelyPeriodicWord witness;
  if (options.engine == TableauEngine::kBitset) {
    TIC_SPAN("tableau.engine_bitset");
    TIC_RETURN_NOT_OK(internal::CheckSatBitset(
        factory, nnf, options, &result.satisfiable, &witness, &result.stats));
  } else if (options.use_safety_fast_path && IsSyntacticallySafe(factory, nnf)) {
    // Safety fast path: any infinite tableau path is a model; lazy DFS with
    // early exit instead of materializing the whole graph.
    TIC_SPAN("tableau.engine_legacy");
    SafetySearch search(factory, options, &result.stats);
    TIC_ASSIGN_OR_RETURN(bool sat, search.Run(nnf, &witness));
    result.satisfiable = sat;
  } else {
    TIC_SPAN("tableau.engine_legacy");
    TableauGraph graph(factory, options);
    TIC_RETURN_NOT_OK(graph.Build(nnf));
    result.satisfiable = graph.FindModel(&witness);
    size_t misses = result.stats.cache_misses;
    result.stats = graph.stats();
    result.stats.cache_misses = misses;
  }
  if (result.satisfiable) {
    if (witness.loop.empty()) witness.loop.push_back(PropState());
    result.witness = std::move(witness);
  }
  if (canonical.has_value()) {
    options.verdict_cache->Insert(*canonical, result.satisfiable, result.witness);
  }
  // Mirror the per-call stat struct into the process-wide registry so the
  // bench/monitor summaries see lifetime totals without extra plumbing.
  TIC_COUNTER_ADD("tableau/states", result.stats.num_states);
  TIC_COUNTER_ADD("tableau/expansions", result.stats.num_expansions);
  return result;
}

Result<bool> CheckValid(Factory* factory, Formula f, const TableauOptions& options) {
  TIC_ASSIGN_OR_RETURN(SatResult neg, CheckSat(factory, factory->Not(f), options));
  return !neg.satisfiable;
}

Result<bool> CheckEquivalent(Factory* factory, Formula a, Formula b,
                             const TableauOptions& options) {
  Formula iff = factory->And(factory->Implies(a, b), factory->Implies(b, a));
  return CheckValid(factory, iff, options);
}

}  // namespace ptl
}  // namespace tic
