#ifndef TIC_PTL_FORMULA_H_
#define TIC_PTL_FORMULA_H_

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/interner.h"
#include "common/result.h"

namespace tic {
namespace ptl {

/// \brief Index of a propositional letter within a PropVocabulary.
using PropId = uint32_t;

/// \brief The set of propositional letters of a propositional-TL language
/// (Section 2, "Propositional temporal logic"). For grounded formulas the
/// letters carry names like "p(3,z1)" chosen by the grounder (Theorem 4.1
/// deliberately uses well-formed first-order atoms as letter names).
class PropVocabulary {
 public:
  PropId Intern(std::string_view name) { return interner_.Intern(name); }
  bool Lookup(std::string_view name, PropId* out) const {
    return interner_.Lookup(name, out);
  }
  const std::string& Name(PropId p) const { return interner_.Name(p); }
  size_t size() const { return interner_.size(); }

 private:
  StringInterner interner_;
};

using PropVocabularyPtr = std::shared_ptr<PropVocabulary>;

/// \brief Connectives of (future) propositional temporal logic, plus Release —
/// the dual of Until — which negation normal form requires.
enum class Kind : uint8_t {
  kTrue,
  kFalse,
  kAtom,
  kNot,
  kAnd,
  kOr,
  kImplies,
  kNext,
  kUntil,
  kRelease,     ///< A R B == !( !A until !B )
  kEventually,  ///< F A == true until A
  kAlways,      ///< G A == false R A
};

inline bool IsBinary(Kind k) {
  return k == Kind::kAnd || k == Kind::kOr || k == Kind::kImplies ||
         k == Kind::kUntil || k == Kind::kRelease;
}

class Node;
/// \brief Hash-consed formula handle; pointer equality == structural equality
/// within one Factory.
using Formula = const Node*;

/// \brief Immutable propositional-TL node; create via Factory.
class Node {
 public:
  Kind kind() const { return kind_; }
  PropId atom() const { return atom_; }
  Formula child(size_t i) const { return children_[i]; }
  Formula lhs() const { return children_[0]; }
  Formula rhs() const { return children_[1]; }
  /// Tree size |psi| — the complexity parameter of Lemma 4.2.
  uint64_t size() const { return size_; }
  /// Content fingerprint: derived purely from (kind, atom, child fingerprints),
  /// so it is identical across runs, factories, and interning orders — unlike
  /// the node's address. All hashing and canonical ordering of formulas go
  /// through this value to keep witnesses and bench numbers run-deterministic.
  uint64_t hash() const { return hash_; }
  /// True when the node is a literal / Next-formula (tableau-elementary).
  bool IsLiteral() const {
    return kind_ == Kind::kAtom ||
           (kind_ == Kind::kNot && children_[0]->kind() == Kind::kAtom);
  }

 private:
  friend class Factory;
  Node() = default;
  Kind kind_ = Kind::kTrue;
  PropId atom_ = 0;
  Formula children_[2] = {nullptr, nullptr};
  uint64_t size_ = 1;
  uint64_t hash_ = 0;
};

/// \brief Owning arena + hash-consing cache for propositional-TL formulas.
///
/// Builders constant-fold with True/False and collapse idempotent And/Or —
/// essential for keeping the Lemma 4.2 rewriting (formula progression)
/// residuals small, as the paper's "and the resulting formula simplified"
/// step prescribes.
///
/// Thread-safe: interning is sharded by content fingerprint, each shard
/// guarded by its own mutex, so the parallel monitor hot path can progress
/// residuals concurrently against one factory. Nodes are immutable once
/// published and pointer-stable (per-shard deque storage).
class Factory {
 public:
  explicit Factory(PropVocabularyPtr vocab);

  const PropVocabularyPtr& vocabulary() const { return vocab_; }

  Formula True();
  Formula False();
  Formula Atom(PropId p);
  Formula Not(Formula a);
  Formula And(Formula a, Formula b);
  Formula Or(Formula a, Formula b);
  Formula Implies(Formula a, Formula b);
  Formula AndAll(const std::vector<Formula>& fs);
  Formula OrAll(const std::vector<Formula>& fs);
  Formula Next(Formula a);
  Formula Until(Formula a, Formula b);
  Formula Release(Formula a, Formula b);
  Formula Eventually(Formula a);
  Formula Always(Formula a);

  size_t num_nodes() const;

 private:
  Formula Intern(Kind k, PropId atom, Formula c0, Formula c1);

  struct KeyHash {
    size_t operator()(const Node* n) const { return n->hash(); }
  };
  struct KeyEq {
    bool operator()(const Node* a, const Node* b) const {
      return a->kind() == b->kind() && a->atom() == b->atom() &&
             a->child(0) == b->child(0) && a->child(1) == b->child(1);
    }
  };
  static constexpr size_t kNumShards = 16;
  struct Shard {
    std::mutex mu;
    std::unordered_map<const Node*, Formula, KeyHash, KeyEq> cache;
    std::deque<Node> nodes;
  };

  PropVocabularyPtr vocab_;
  mutable std::array<Shard, kNumShards> shards_;
  Formula true_ = nullptr;   // interned eagerly: no lazy-init race
  Formula false_ = nullptr;
};

/// \brief Renders a formula: `(p U q) & G !r`.
std::string ToString(const Factory& factory, Formula f);

}  // namespace ptl
}  // namespace tic

#endif  // TIC_PTL_FORMULA_H_
