#include "ptl/word.h"

#include <unordered_map>

#include "common/hash.h"

namespace tic {
namespace ptl {

namespace {

struct Key {
  Formula f;
  size_t pos;
  bool operator==(const Key& o) const { return f == o.f && pos == o.pos; }
};
struct KeyHash {
  size_t operator()(const Key& k) const {
    // Content fingerprint, not the node address: run-deterministic.
    size_t seed = static_cast<size_t>(k.f->hash());
    HashCombine(&seed, k.pos);
    return seed;
  }
};

class WordEvaluator {
 public:
  explicit WordEvaluator(const UltimatelyPeriodicWord* w) : w_(w) {}

  Result<bool> Eval(Formula f, size_t pos) {
    Key key{f, pos};
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;
    TIC_ASSIGN_OR_RETURN(bool out, Compute(f, pos));
    memo_.emplace(key, out);
    return out;
  }

 private:
  size_t NextPos(size_t pos) const {
    size_t n = pos + 1;
    return n < w_->NumPositions() ? n : w_->prefix.size();
  }

  Result<bool> Compute(Formula f, size_t pos) {
    switch (f->kind()) {
      case Kind::kTrue:
        return true;
      case Kind::kFalse:
        return false;
      case Kind::kAtom:
        return w_->StateAt(pos).Get(f->atom());
      case Kind::kNot: {
        TIC_ASSIGN_OR_RETURN(bool a, Eval(f->child(0), pos));
        return !a;
      }
      case Kind::kAnd: {
        TIC_ASSIGN_OR_RETURN(bool a, Eval(f->lhs(), pos));
        if (!a) return false;
        return Eval(f->rhs(), pos);
      }
      case Kind::kOr: {
        TIC_ASSIGN_OR_RETURN(bool a, Eval(f->lhs(), pos));
        if (a) return true;
        return Eval(f->rhs(), pos);
      }
      case Kind::kImplies: {
        TIC_ASSIGN_OR_RETURN(bool a, Eval(f->lhs(), pos));
        if (!a) return true;
        return Eval(f->rhs(), pos);
      }
      case Kind::kNext:
        return Eval(f->child(0), NextPos(pos));
      case Kind::kUntil:
      case Kind::kEventually: {
        bool is_until = f->kind() == Kind::kUntil;
        Formula hold = is_until ? f->lhs() : nullptr;
        Formula goal = is_until ? f->rhs() : f->child(0);
        size_t cur = pos;
        for (size_t step = 0; step <= w_->NumPositions(); ++step) {
          TIC_ASSIGN_OR_RETURN(bool g, Eval(goal, cur));
          if (g) return true;
          if (hold != nullptr) {
            TIC_ASSIGN_OR_RETURN(bool h, Eval(hold, cur));
            if (!h) return false;
          }
          cur = NextPos(cur);
        }
        return false;
      }
      case Kind::kRelease:
      case Kind::kAlways: {
        // A R B: B holds up to and including the first A-position (if any).
        bool is_release = f->kind() == Kind::kRelease;
        Formula release = is_release ? f->lhs() : nullptr;
        Formula inv = is_release ? f->rhs() : f->child(0);
        size_t cur = pos;
        for (size_t step = 0; step <= w_->NumPositions(); ++step) {
          TIC_ASSIGN_OR_RETURN(bool b, Eval(inv, cur));
          if (!b) return false;
          if (release != nullptr) {
            TIC_ASSIGN_OR_RETURN(bool a, Eval(release, cur));
            if (a) return true;
          }
          cur = NextPos(cur);
        }
        return true;
      }
    }
    return Status::Internal("unhandled kind in WordEvaluator");
  }

  const UltimatelyPeriodicWord* w_;
  std::unordered_map<Key, bool, KeyHash> memo_;
};

}  // namespace

Result<bool> Evaluate(const UltimatelyPeriodicWord& word, Formula f, size_t pos) {
  if (word.loop.empty()) return Status::InvalidArgument("word loop must be non-empty");
  if (pos >= word.NumPositions()) {
    return Status::OutOfRange("position beyond prefix+loop representation");
  }
  WordEvaluator ev(&word);
  return ev.Eval(f, pos);
}

}  // namespace ptl
}  // namespace tic
