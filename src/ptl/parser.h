#ifndef TIC_PTL_PARSER_H_
#define TIC_PTL_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "ptl/formula.h"

namespace tic {
namespace ptl {

/// \brief Parses propositional temporal logic in the printer's syntax:
/// precedence (low to high) `->` (right-assoc), `|`, `&`, `U`/`R`
/// (right-assoc), prefix `! X F G`, atoms/parentheses/`true`/`false`.
/// Identifiers are interned into the factory's vocabulary on sight.
///
/// Examples: `G (p -> X q)`, `p U q & !r`, `(a R b) | F c`.
Result<Formula> Parse(Factory* factory, std::string_view text);

}  // namespace ptl
}  // namespace tic

#endif  // TIC_PTL_PARSER_H_
