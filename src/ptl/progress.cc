#include "ptl/progress.h"

#include "common/flat/flat_map.h"

namespace tic {
namespace ptl {

namespace {

class Progressor {
 public:
  Progressor(Factory* fac, const PropState* state) : fac_(fac), state_(state) {}

  Result<Formula> Run(Formula f) {
    if (const Formula* found = memo_.Get(f)) return *found;
    TIC_ASSIGN_OR_RETURN(Formula out, Compute(f));
    memo_.Emplace(f, out);
    return out;
  }

 private:
  Result<Formula> Compute(Formula f) {
    switch (f->kind()) {
      case Kind::kTrue:
        return fac_->True();
      case Kind::kFalse:
        return fac_->False();
      case Kind::kAtom:
        return state_->Get(f->atom()) ? fac_->True() : fac_->False();
      case Kind::kNot: {
        TIC_ASSIGN_OR_RETURN(Formula a, Run(f->child(0)));
        return fac_->Not(a);
      }
      case Kind::kAnd: {
        TIC_ASSIGN_OR_RETURN(Formula a, Run(f->lhs()));
        if (a->kind() == Kind::kFalse) return a;
        TIC_ASSIGN_OR_RETURN(Formula b, Run(f->rhs()));
        return fac_->And(a, b);
      }
      case Kind::kOr: {
        TIC_ASSIGN_OR_RETURN(Formula a, Run(f->lhs()));
        if (a->kind() == Kind::kTrue) return a;
        TIC_ASSIGN_OR_RETURN(Formula b, Run(f->rhs()));
        return fac_->Or(a, b);
      }
      case Kind::kImplies: {
        TIC_ASSIGN_OR_RETURN(Formula a, Run(f->lhs()));
        if (a->kind() == Kind::kFalse) return fac_->True();
        TIC_ASSIGN_OR_RETURN(Formula b, Run(f->rhs()));
        return fac_->Implies(a, b);
      }
      case Kind::kNext:
        return f->child(0);
      case Kind::kUntil: {
        TIC_ASSIGN_OR_RETURN(Formula b, Run(f->rhs()));
        if (b->kind() == Kind::kTrue) return b;
        TIC_ASSIGN_OR_RETURN(Formula a, Run(f->lhs()));
        return fac_->Or(b, fac_->And(a, f));
      }
      case Kind::kRelease: {
        TIC_ASSIGN_OR_RETURN(Formula b, Run(f->rhs()));
        if (b->kind() == Kind::kFalse) return b;
        TIC_ASSIGN_OR_RETURN(Formula a, Run(f->lhs()));
        return fac_->And(b, fac_->Or(a, f));
      }
      case Kind::kEventually: {
        TIC_ASSIGN_OR_RETURN(Formula a, Run(f->child(0)));
        if (a->kind() == Kind::kTrue) return a;
        return fac_->Or(a, f);
      }
      case Kind::kAlways: {
        TIC_ASSIGN_OR_RETURN(Formula a, Run(f->child(0)));
        if (a->kind() == Kind::kFalse) return a;
        return fac_->And(a, f);
      }
    }
    return Status::Internal("unhandled kind in Progressor");
  }

  Factory* fac_;
  const PropState* state_;
  flat::FlatMap<Formula, Formula> memo_;
};

}  // namespace

Result<Formula> Progress(Factory* factory, Formula f, const PropState& state) {
  Progressor p(factory, &state);
  return p.Run(f);
}

Result<Formula> ProgressThroughWord(Factory* factory, Formula f, const Word& prefix) {
  Formula cur = f;
  for (const PropState& s : prefix) {
    TIC_ASSIGN_OR_RETURN(cur, Progress(factory, cur, s));
    if (cur->kind() == Kind::kFalse) break;  // permanent violation (safety)
  }
  return cur;
}

}  // namespace ptl
}  // namespace tic
