#ifndef TIC_PTL_AUTOMATON_H_
#define TIC_PTL_AUTOMATON_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "ptl/formula.h"
#include "ptl/tableau.h"

namespace tic {
namespace ptl {

/// \brief An inspectable snapshot of the tableau graph for a formula — the
/// (generalized-Büchi-like) automaton that phase 2 of Lemma 4.2 searches.
/// Intended for debugging, teaching, and visualization; the satisfiability
/// API itself (CheckSat) never materializes this structure on the safety
/// fast path.
struct TableauAutomaton {
  struct State {
    /// The formulas asserted by the state, pretty-printed.
    std::vector<std::string> formulas;
    /// Letters assigned true by this state.
    std::vector<std::string> true_letters;
    bool initial = false;
    /// Unfulfilled-eventuality goals this state carries (Until/F goals).
    std::vector<std::string> obligations;
  };
  std::vector<State> states;
  /// Adjacency: edges[i] lists successor state indices of state i.
  std::vector<std::vector<uint32_t>> edges;
  /// Strongly connected component id per state, and which components are
  /// self-fulfilling (every obligation's goal appears inside).
  std::vector<uint32_t> scc_of;
  std::vector<bool> scc_self_fulfilling;
  bool satisfiable = false;
};

/// \brief Builds the full reachable tableau graph for `f` (after NNF).
/// Honors the resource limits in `options`; ablation switches are ignored
/// (the full graph is always built here).
Result<TableauAutomaton> BuildTableauAutomaton(Factory* factory, Formula f,
                                               const TableauOptions& options = {});

/// \brief Renders the automaton in Graphviz DOT: doubled circles for states in
/// self-fulfilling SCCs, bold border for initial states, letters as labels.
std::string ToDot(const TableauAutomaton& automaton);

}  // namespace ptl
}  // namespace tic

#endif  // TIC_PTL_AUTOMATON_H_
