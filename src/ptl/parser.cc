#include "ptl/parser.h"

#include <cctype>
#include <string>
#include <vector>

namespace tic {
namespace ptl {

namespace {

struct Token {
  enum class Kind { kEnd, kIdent, kLParen, kRParen, kBang, kAmp, kBar, kArrow };
  Kind kind;
  std::string text;
  size_t pos;
};

Result<std::vector<Token>> Lex(std::string_view in) {
  std::vector<Token> out;
  size_t i = 0;
  while (i < in.size()) {
    char c = in[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    size_t start = i;
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < in.size() && (std::isalnum(static_cast<unsigned char>(in[j])) ||
                               in[j] == '_')) {
        ++j;
      }
      out.push_back({Token::Kind::kIdent, std::string(in.substr(i, j - i)), start});
      i = j;
      continue;
    }
    switch (c) {
      case '(':
        out.push_back({Token::Kind::kLParen, "(", start});
        ++i;
        break;
      case ')':
        out.push_back({Token::Kind::kRParen, ")", start});
        ++i;
        break;
      case '!':
        out.push_back({Token::Kind::kBang, "!", start});
        ++i;
        break;
      case '&':
        out.push_back({Token::Kind::kAmp, "&", start});
        ++i;
        break;
      case '|':
        out.push_back({Token::Kind::kBar, "|", start});
        ++i;
        break;
      case '-':
        if (i + 1 < in.size() && in[i + 1] == '>') {
          out.push_back({Token::Kind::kArrow, "->", start});
          i += 2;
          break;
        }
        [[fallthrough]];
      default:
        return Status::ParseError(std::string("unexpected character '") + c +
                                  "' at offset " + std::to_string(start));
    }
  }
  out.push_back({Token::Kind::kEnd, "", in.size()});
  return out;
}

class Parser {
 public:
  Parser(Factory* fac, std::vector<Token> toks) : fac_(fac), toks_(std::move(toks)) {}

  Result<Formula> Run() {
    TIC_ASSIGN_OR_RETURN(Formula f, ParseImplies());
    if (Peek().kind != Token::Kind::kEnd) return Err("trailing input");
    return f;
  }

 private:
  const Token& Peek() const { return toks_[pos_]; }
  Token Take() { return toks_[pos_ < toks_.size() - 1 ? pos_++ : pos_]; }
  bool Accept(Token::Kind k) {
    if (Peek().kind == k) {
      Take();
      return true;
    }
    return false;
  }
  bool AcceptWord(const char* w) {
    if (Peek().kind == Token::Kind::kIdent && Peek().text == w) {
      Take();
      return true;
    }
    return false;
  }
  Status Err(const std::string& msg) const {
    return Status::ParseError(msg + " (near offset " + std::to_string(Peek().pos) +
                              ")");
  }

  Result<Formula> ParseImplies() {
    TIC_ASSIGN_OR_RETURN(Formula lhs, ParseOr());
    if (Accept(Token::Kind::kArrow)) {
      TIC_ASSIGN_OR_RETURN(Formula rhs, ParseImplies());
      return fac_->Implies(lhs, rhs);
    }
    return lhs;
  }

  Result<Formula> ParseOr() {
    TIC_ASSIGN_OR_RETURN(Formula lhs, ParseAnd());
    while (Accept(Token::Kind::kBar)) {
      TIC_ASSIGN_OR_RETURN(Formula rhs, ParseAnd());
      lhs = fac_->Or(lhs, rhs);
    }
    return lhs;
  }

  Result<Formula> ParseAnd() {
    TIC_ASSIGN_OR_RETURN(Formula lhs, ParseBinaryTemporal());
    while (Accept(Token::Kind::kAmp)) {
      TIC_ASSIGN_OR_RETURN(Formula rhs, ParseBinaryTemporal());
      lhs = fac_->And(lhs, rhs);
    }
    return lhs;
  }

  Result<Formula> ParseBinaryTemporal() {
    TIC_ASSIGN_OR_RETURN(Formula lhs, ParseUnary());
    if (AcceptWord("U")) {
      TIC_ASSIGN_OR_RETURN(Formula rhs, ParseBinaryTemporal());
      return fac_->Until(lhs, rhs);
    }
    if (AcceptWord("R")) {
      TIC_ASSIGN_OR_RETURN(Formula rhs, ParseBinaryTemporal());
      return fac_->Release(lhs, rhs);
    }
    return lhs;
  }

  Result<Formula> ParseUnary() {
    if (Accept(Token::Kind::kBang)) {
      TIC_ASSIGN_OR_RETURN(Formula a, ParseUnary());
      return fac_->Not(a);
    }
    if (AcceptWord("X")) {
      TIC_ASSIGN_OR_RETURN(Formula a, ParseUnary());
      return fac_->Next(a);
    }
    if (AcceptWord("F")) {
      TIC_ASSIGN_OR_RETURN(Formula a, ParseUnary());
      return fac_->Eventually(a);
    }
    if (AcceptWord("G")) {
      TIC_ASSIGN_OR_RETURN(Formula a, ParseUnary());
      return fac_->Always(a);
    }
    return ParsePrimary();
  }

  Result<Formula> ParsePrimary() {
    if (AcceptWord("true")) return fac_->True();
    if (AcceptWord("false")) return fac_->False();
    if (Accept(Token::Kind::kLParen)) {
      TIC_ASSIGN_OR_RETURN(Formula f, ParseImplies());
      if (!Accept(Token::Kind::kRParen)) return Err("expected ')'");
      return f;
    }
    if (Peek().kind != Token::Kind::kIdent) return Err("expected an atom");
    std::string name = Take().text;
    if (name == "U" || name == "R" || name == "X" || name == "F" || name == "G") {
      return Status::ParseError("'" + name + "' is an operator, not an atom");
    }
    return fac_->Atom(fac_->vocabulary()->Intern(name));
  }

  Factory* fac_;
  std::vector<Token> toks_;
  size_t pos_ = 0;
};

}  // namespace

Result<Formula> Parse(Factory* factory, std::string_view text) {
  TIC_ASSIGN_OR_RETURN(std::vector<Token> toks, Lex(text));
  Parser p(factory, std::move(toks));
  return p.Run();
}

}  // namespace ptl
}  // namespace tic
