#ifndef TIC_PTL_SAFETY_H_
#define TIC_PTL_SAFETY_H_

#include "common/result.h"
#include "ptl/formula.h"

namespace tic {
namespace ptl {

/// \brief Sound syntactic safety test in the spirit of Sistla's
/// characterization (cited in Sections 2 and 6): a formula whose negation
/// normal form contains no Until and no Eventually — i.e., is built from
/// literals with And/Or/Next/Release/Always — defines a safety property.
///
/// This is sufficient but not complete (recognizing propositional safety
/// exactly is decidable but expensive; Section 6 conjectures the syntactic
/// route generalizes to universal biquantified formulas, which is exactly how
/// the checker uses this test after grounding).
bool IsSyntacticallySafe(Factory* factory, Formula f);

/// \brief Sound syntactic *liveness*-shape test: NNF built from True plus
/// Until/Eventually/Next over liveness shapes; used in tests to demonstrate
/// the safety/liveness dichotomy of Section 2.
bool IsSyntacticallyCoSafe(Factory* factory, Formula f);

/// \brief Semantic safety check over a bounded horizon, used by tests as an
/// oracle on small formulas: verifies that every "bad" word (one that cannot
/// be extended to a model) has an irredeemable finite prefix of length <=
/// `horizon` over the letters of `props`. Exponential in horizon*|props|;
/// keep both tiny.
Result<bool> BoundedSafetyCheck(Factory* factory, Formula f,
                                const std::vector<PropId>& props, size_t horizon);

}  // namespace ptl
}  // namespace tic

#endif  // TIC_PTL_SAFETY_H_
