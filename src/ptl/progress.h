#ifndef TIC_PTL_PROGRESS_H_
#define TIC_PTL_PROGRESS_H_

#include "common/result.h"
#include "ptl/formula.h"
#include "ptl/word.h"

namespace tic {
namespace ptl {

/// \brief Phase 1 of the Lemma 4.2 decision procedure: the deterministic
/// Sistla–Wolfson state-indexed rewriting, implemented as one-step formula
/// progression with constant folding.
///
/// `Progress(f, w0)` returns a formula psi' such that for every infinite word
/// starting with state w0: (w0 w1 w2 ...) |= f  iff  (w1 w2 ...) |= psi'.
/// Rules (matching the paper's rewriting):
///   p          ->  true/false per w0            X A       ->  A
///   A U B      ->  B' | (A' & (A U B))          A R B     ->  B' & (A' | (A R B))
///   F A        ->  A' | F A                     G A       ->  A' & G A
/// where A' = Progress(A, w0); boolean connectives are rewritten
/// component-wise and folded. Each step costs O(|f|) on the hash-consed DAG,
/// so consuming a prefix of length t costs O(t * |f|) as Lemma 4.2 states.
Result<Formula> Progress(Factory* factory, Formula f, const PropState& state);

/// \brief Progresses `f` through all states of the prefix in order, producing
/// the residual formula tested for satisfiability in phase 2.
Result<Formula> ProgressThroughWord(Factory* factory, Formula f, const Word& prefix);

}  // namespace ptl
}  // namespace tic

#endif  // TIC_PTL_PROGRESS_H_
