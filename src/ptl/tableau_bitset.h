#ifndef TIC_PTL_TABLEAU_BITSET_H_
#define TIC_PTL_TABLEAU_BITSET_H_

// The closure-indexed bitset tableau engine (TableauEngine::kBitset): states
// are FlatBits over a dense Fischer–Ladner closure index, expansion is
// table-driven with an explicit worklist and choice stack, and state dedup is
// an open-addressing hash table over the bitset words backed by a contiguous
// per-run arena. Internal: reached through CheckSat via
// TableauOptions::engine.

#include "common/result.h"
#include "ptl/formula.h"
#include "ptl/tableau.h"
#include "ptl/word.h"

namespace tic {
namespace ptl {
namespace internal {

/// Decides satisfiability of `nnf` (already in negation normal form, not
/// constant-false) with the bitset engine. Honors `use_safety_fast_path` and
/// `use_subsumption`; `defer_branching` is inherent to the engine (the
/// worklist is split into alpha/beta queues, so unit information always lands
/// before a branch). Fills `*satisfiable`, `*witness` (when satisfiable) and
/// the size counters of `*stats` (cache counters are left untouched).
Status CheckSatBitset(Factory* factory, Formula nnf, const TableauOptions& options,
                      bool* satisfiable, UltimatelyPeriodicWord* witness,
                      TableauStats* stats);

}  // namespace internal
}  // namespace ptl
}  // namespace tic

#endif  // TIC_PTL_TABLEAU_BITSET_H_
