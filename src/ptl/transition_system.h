#ifndef TIC_PTL_TRANSITION_SYSTEM_H_
#define TIC_PTL_TRANSITION_SYSTEM_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/flat/lru.h"
#include "common/flat/wyhash.h"
#include "common/result.h"
#include "ptl/formula.h"
#include "ptl/tableau.h"
#include "ptl/word.h"

namespace tic {
namespace ptl {

/// \brief Outcome of pushing one letter through a state-set.
struct TransitionStep {
  /// Interned id of the successor state-set (the next basis).
  uint32_t next = 0;
  /// Some tableau state of the set was compatible with the letter. False
  /// means the residual is already propositionally inconsistent with the new
  /// state — the compile-once analogue of the residual collapsing to `false`.
  bool any_survivor = false;
  /// Some surviving state admits an accepting infinite extension: the residual
  /// after this letter is satisfiable. This is the monitor's
  /// potential-satisfaction verdict, with no per-update CheckSat.
  bool live = false;
};

/// \brief Counters of the offline minimization pass (MinimizeNow). `runs` is
/// cumulative; the remaining fields describe the most recent run.
struct MinimizeStats {
  uint64_t runs = 0;             ///< MinimizeNow calls over the system's lifetime
  uint64_t tableau_states = 0;   ///< tableau states covered by the last run
  uint64_t tableau_classes = 0;  ///< bisimulation classes after the last run
  uint64_t state_sets = 0;       ///< interned state-sets covered by the last run
  uint64_t collapsed_sets = 0;   ///< sets remapped to a lower representative
};

/// \brief Size and cache counters of one compiled transition system,
/// cumulative over its lifetime (which may span several monitors when shared
/// through an AutomatonCache).
struct TransitionSystemStats {
  uint64_t num_states = 0;       ///< interned tableau states
  uint64_t num_edges = 0;        ///< materialized successor edges
  uint64_t num_state_sets = 0;   ///< interned state-sets
  uint64_t num_signatures = 0;   ///< interned letter signatures
  uint64_t steps = 0;            ///< Step calls
  uint64_t memo_hits = 0;        ///< Step calls answered by the memo table
  uint64_t live_queries = 0;     ///< lazy liveness searches actually run
  uint64_t alphabet_size = 0;    ///< atoms mentioned by the closure
};

/// \brief A formula compiled once into a closure-indexed automaton: tableau
/// states are flat bitsets over the Fischer–Ladner closure, a *state-set* is
/// the set of tableau states consistent with the letters consumed so far, and
/// one update is a memoized `(state-set id, letter signature) -> state-set id`
/// transition.
///
/// Semantics (the Lemma 4.2 correspondence): after pushing letters
/// w_0..w_t through `initial()`, the returned step's `live` flag equals
/// satisfiability of Progress(...Progress(f, w_0)..., w_t) — what the
/// progression backend obtains by rewriting the formula and re-running
/// CheckSat per update. Liveness of a tableau state ("an accepting infinite
/// path exists") is precomputed per *state*, so the per-update check is a
/// survivor scan instead of a tableau search.
///
/// Compilation is lazy for syntactically safe formulas (no Until/Eventually in
/// NNF): states, edges and liveness bits materialize on demand and are
/// memoized, so only the part of the automaton the history actually visits is
/// ever built — mirroring the safety fast path. Non-safe formulas eagerly
/// materialize the reachable graph and resolve liveness by self-fulfilling-SCC
/// analysis at compile time.
///
/// Letter signatures are projected through a canonical letter numbering
/// (ptl::Canonicalize), so one compiled system serves every formula that is an
/// injective letter-renaming of the compiled one — the same equivalence the
/// verdict cache exploits. All methods are thread-safe (one internal mutex);
/// state-set and signature ids are only meaningful within this instance.
class TransitionSystem {
 public:
  ~TransitionSystem();
  TransitionSystem(const TransitionSystem&) = delete;
  TransitionSystem& operator=(const TransitionSystem&) = delete;

  /// Compiles `f` (NNF'd internally). Budgets come from `options` (max_states,
  /// max_expansions, max_branch_depth); the verdict cache and engine fields
  /// are ignored. Fails with ResourceExhausted when a non-safe formula's
  /// reachable graph exceeds the budgets.
  ///
  /// The compiled system's closure keeps raw node pointers into `factory`;
  /// the caller must keep the factory alive for the system's lifetime. When
  /// the system may outlive the caller (it is placed in an AutomatonCache and
  /// lazily expanded by later hits), use the shared_ptr overload, which pins
  /// the factory.
  static Result<std::shared_ptr<TransitionSystem>> Compile(
      Factory* factory, Formula f, const TableauOptions& options = {});
  static Result<std::shared_ptr<TransitionSystem>> Compile(
      std::shared_ptr<Factory> factory, Formula f,
      const TableauOptions& options = {});

  /// State-set id of the initial cover — the basis before any letter.
  uint32_t initial() const { return initial_set_; }

  /// Canonical-index -> concrete-letter mapping of the formula this system was
  /// compiled from. Callers that compiled directly (not through a cache) pass
  /// this to Step/Live.
  const std::vector<PropId>& default_letters() const { return default_letters_; }

  /// True when the compiled formula was syntactically safe (lazy mode).
  bool safe() const { return safe_; }

  /// Pushes one letter: survivors of `set_id` under `letter`, their successor
  /// union, and the liveness verdict. Memoized on (set id, letter signature).
  /// `letters` maps canonical letter indices to the caller's PropIds (use
  /// default_letters() when not sharing through a cache).
  Result<TransitionStep> Step(uint32_t set_id, const PropState& letter,
                              const std::vector<PropId>& letters);
  Result<TransitionStep> Step(uint32_t set_id, const PropState& letter);

  /// Satisfiability at the current basis: does some state of the set admit an
  /// accepting infinite path? `Live(initial())` decides the compiled formula
  /// itself (used for the empty-word case).
  Result<bool> Live(uint32_t set_id);

  /// Interns the letter signature of `w` projected through `letters` without
  /// stepping anything. Cohort lockstep stepping computes one signature per
  /// transaction and fans it across many StepSig calls; the returned ids are
  /// the ones Step's transition memo is keyed by. The pointer overload serves
  /// flattened structure-of-arrays letter storage (`letters[0..num_letters)`
  /// maps canonical indices to the caller's PropIds).
  Result<uint32_t> InternSignature(const PropState& w,
                                   const std::vector<PropId>& letters);
  Result<uint32_t> InternSignature(const PropState& w, const PropId* letters,
                                   size_t num_letters);

  /// Pushes one already-interned signature through `set_id`: identical to
  /// Step minus the letter projection, sharing the same memo. This is the
  /// per-slot cohort operation — O(1) on a memo hit regardless of alphabet.
  Result<TransitionStep> StepSig(uint32_t set_id, uint32_t sig_id);

  /// Offline minimization: partition refinement (Hopcroft/Moore style) over
  /// the tableau states discovered so far — initial classes by resolved
  /// liveness and exact literal masks, unexpanded states pinned to singleton
  /// classes (their edges are unknown), refined by successor-class sets to a
  /// fixpoint — then lifted to interned state-sets: two sets are equivalent
  /// iff their member-class sets coincide, and each maps to the lowest set id
  /// of its class. Representatives are valid under EVERY letter
  /// (compatibility depends only on the class-invariant literal masks, and
  /// liveness is class-invariant), so callers may remap live state ids at any
  /// time without replaying; ids interned after a run map to themselves until
  /// the next run. Step/StepSig canonicalize newly computed successors
  /// through the representative map, so symmetric cohorts converge onto the
  /// collapsed state space without caller-side work.
  MinimizeStats MinimizeNow();

  /// Representative state-set id of `set_id` per the last MinimizeNow run
  /// (identity before the first run and for ids interned since).
  uint32_t Representative(uint32_t set_id) const;

  /// Interned state-set count (the cohort minimization trigger reads this
  /// instead of building a full stats() struct).
  uint64_t num_state_sets() const;

  MinimizeStats minimize_stats() const;

  TransitionSystemStats stats() const;

 private:
  struct Rep;

  TransitionSystem();

  std::unique_ptr<Rep> rep_;
  mutable std::mutex mu_;
  uint32_t initial_set_ = 0;
  bool safe_ = false;
  std::vector<PropId> default_letters_;
  /// Keeps the compiling factory (and so every node the closure references)
  /// alive when the system is shared beyond the caller's scope. Null for the
  /// raw-pointer Compile overload.
  std::shared_ptr<Factory> factory_keepalive_;
};

/// \brief Handle returned by AutomatonCache::Get: the (possibly shared)
/// compiled system plus the caller's canonical-index -> letter mapping, which
/// Step needs to project concrete PropStates onto the shared alphabet.
struct AutomatonHandle {
  std::shared_ptr<TransitionSystem> ts;
  std::vector<PropId> letters;
};

/// \brief Counters of the automaton cache, mirroring VerdictCacheStats.
struct AutomatonCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t entries = 0;
  uint64_t capacity = 0;
};

/// \brief Bounded, thread-safe LRU cache of compiled transition systems keyed
/// by canonical formula form (letter-renaming-invariant, cross-factory) — the
/// same injection pattern as VerdictCache. Share one instance across monitors
/// and trigger managers through `CheckOptions::automaton_cache`: grounding
/// instances over different domain elements are letter-renamings of one
/// another, so they all run on one compiled automaton and one transition memo.
class AutomatonCache {
 public:
  explicit AutomatonCache(size_t capacity = 128);

  /// Returns the compiled system for `f`, compiling (outside the cache lock)
  /// on miss. Formulas too large to canonicalize bypass the cache and compile
  /// privately. The shared_ptr overload pins the compiling factory inside the
  /// cached system — required whenever the factory is shorter-lived than the
  /// cache (per-check grounding factories); the raw-pointer overload is for
  /// factories that outlive the cache.
  Result<AutomatonHandle> Get(std::shared_ptr<Factory> factory, Formula f,
                              const TableauOptions& options = {});
  Result<AutomatonHandle> Get(Factory* factory, Formula f,
                              const TableauOptions& options = {});

  AutomatonCacheStats stats() const;

 private:
  struct CacheEntry {
    std::shared_ptr<TransitionSystem> ts;
#ifndef NDEBUG
    // Debug builds retain the canonical key to detect fingerprint collisions.
    std::string debug_key;
#endif
  };

  mutable std::mutex mu_;
  size_t capacity_;
  // Fingerprint-keyed slab LRU (see VerdictCache): hits hash 16 bytes and
  // allocate nothing, where the string-keyed index re-hashed the whole
  // canonical key per lookup.
  flat::FlatLru<flat::Fp128, CacheEntry> lru_;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> entries_{0};
};

}  // namespace ptl
}  // namespace tic

#endif  // TIC_PTL_TRANSITION_SYSTEM_H_
