#ifndef TIC_PTL_WORD_H_
#define TIC_PTL_WORD_H_

#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "ptl/formula.h"

namespace tic {
namespace ptl {

/// \brief One propositional state: the set of letters that are true.
class PropState {
 public:
  PropState() = default;
  explicit PropState(std::unordered_set<PropId> trues) : trues_(std::move(trues)) {}

  bool Get(PropId p) const { return trues_.count(p) > 0; }
  void Set(PropId p, bool value) {
    if (value) {
      trues_.insert(p);
    } else {
      trues_.erase(p);
    }
  }
  const std::unordered_set<PropId>& trues() const { return trues_; }
  bool operator==(const PropState& o) const { return trues_ == o.trues_; }

 private:
  std::unordered_set<PropId> trues_;
};

/// \brief A finite sequence of propositional states — the paper's
/// w_D = (w_0, ..., w_t).
using Word = std::vector<PropState>;

/// \brief An infinite propositional sequence with finite representation:
/// prefix followed by loop repeated forever (a "lasso"). The tableau's
/// satisfiability witnesses take this shape (Sistla–Clarke small models).
struct UltimatelyPeriodicWord {
  Word prefix;
  Word loop;  ///< must be non-empty

  const PropState& StateAt(size_t t) const {
    if (t < prefix.size()) return prefix[t];
    return loop[(t - prefix.size()) % loop.size()];
  }
  size_t NumPositions() const { return prefix.size() + loop.size(); }
};

/// \brief Evaluates a (future) propositional-TL formula on an ultimately
/// periodic word at position `pos` (normalized: pos < prefix+loop).
/// Used by tests to independently confirm tableau witnesses, and by the
/// checker's internal audits.
Result<bool> Evaluate(const UltimatelyPeriodicWord& word, Formula f, size_t pos = 0);

}  // namespace ptl
}  // namespace tic

#endif  // TIC_PTL_WORD_H_
