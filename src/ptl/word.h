#ifndef TIC_PTL_WORD_H_
#define TIC_PTL_WORD_H_

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "common/flat/small_vec.h"
#include "common/result.h"
#include "ptl/formula.h"

namespace tic {
namespace ptl {

/// \brief One propositional state: the set of letters that are true.
///
/// Stored as a sorted inline small-vector (not a node-based set): states on
/// the monitor's word-building path hold a handful of letters, so membership
/// is a binary search over one cache line and building/copying a state
/// performs no heap allocation until the inline tier (12 letters) spills.
class PropState {
 public:
  /// Inline capacity. States wider than this spill to one heap block.
  static constexpr size_t kInlineTrues = 12;

  PropState() = default;
  explicit PropState(const std::unordered_set<PropId>& trues) {
    for (PropId p : trues) Set(p, true);
  }

  bool Get(PropId p) const {
    return std::binary_search(trues_.begin(), trues_.end(), p);
  }

  void Set(PropId p, bool value) {
    const PropId* at = std::lower_bound(trues_.begin(), trues_.end(), p);
    size_t i = static_cast<size_t>(at - trues_.begin());
    bool present = i < trues_.size() && trues_[i] == p;
    if (value && !present) {
      trues_.insert_at(i, p);
    } else if (!value && present) {
      trues_.erase_at(i);
    }
  }

  /// True letters in ascending PropId order.
  const flat::SmallVec<PropId, kInlineTrues>& trues() const { return trues_; }

  bool operator==(const PropState& o) const { return trues_ == o.trues_; }

 private:
  flat::SmallVec<PropId, kInlineTrues> trues_;
};

/// \brief A finite sequence of propositional states — the paper's
/// w_D = (w_0, ..., w_t).
using Word = std::vector<PropState>;

/// \brief An infinite propositional sequence with finite representation:
/// prefix followed by loop repeated forever (a "lasso"). The tableau's
/// satisfiability witnesses take this shape (Sistla–Clarke small models).
struct UltimatelyPeriodicWord {
  Word prefix;
  Word loop;  ///< must be non-empty

  const PropState& StateAt(size_t t) const {
    if (t < prefix.size()) return prefix[t];
    return loop[(t - prefix.size()) % loop.size()];
  }
  size_t NumPositions() const { return prefix.size() + loop.size(); }
};

/// \brief Evaluates a (future) propositional-TL formula on an ultimately
/// periodic word at position `pos` (normalized: pos < prefix+loop).
/// Used by tests to independently confirm tableau witnesses, and by the
/// checker's internal audits.
Result<bool> Evaluate(const UltimatelyPeriodicWord& word, Formula f, size_t pos = 0);

}  // namespace ptl
}  // namespace tic

#endif  // TIC_PTL_WORD_H_
