#ifndef TIC_PTL_TABLEAU_BITSET_INTERNAL_H_
#define TIC_PTL_TABLEAU_BITSET_INTERNAL_H_

// Building blocks of the closure-indexed bitset engine, shared between the
// satisfiability searches (tableau_bitset.cc) and the compile-once transition
// system (transition_system.cc). Not part of the public surface: states are
// FlatBits over closure indices and only make sense next to the Closure that
// produced them.

#include <cstring>
#include <string>
#include <vector>

#include "common/flat/flat_set.h"
#include "common/result.h"
#include "ptl/bitset.h"
#include "ptl/closure.h"
#include "ptl/tableau.h"
#include "ptl/word.h"

namespace tic {
namespace ptl {
namespace internal {

// Resumable depth-first enumerator of the fully expanded, locally consistent
// states covering a seed — the bitset counterpart of internal::Expander.
// Alpha (non-branching) rules fire in closure-index order off a bitset
// worklist; beta rules wait in a second worklist until the alpha queue drains
// (the engine's always-on equivalent of defer_branching), then the
// lowest-index beta member splits, with one explicit choice frame per split
// instead of a recursive call. Enumeration order is the pre-order of the
// branch tree, like the legacy expander; emitted states are not deduplicated
// here — callers intern them.
class BranchEnumerator {
 public:
  BranchEnumerator(const Closure* closure, const TableauOptions* options,
                   TableauStats* stats)
      : closure_(closure),
        options_(options),
        stats_(stats),
        done_(closure->size()),
        alpha_(closure->size()),
        beta_(closure->size()) {}

  // Begins enumeration over the cover of `seed` (closure indices). Counts one
  // expansion, like the legacy expander's initial Rec entry.
  Status Start(const std::vector<uint32_t>& seed) {
    done_ = FlatBits(closure_->size());
    alpha_ = FlatBits(closure_->size());
    beta_ = FlatBits(closure_->size());
    frames_.clear();
    exhausted_ = false;
    if (++stats_->num_expansions > options_->max_expansions) {
      exhausted_ = true;
      return Status::ResourceExhausted(
          "tableau exceeded max_expansions = " +
          std::to_string(options_->max_expansions));
    }
    for (uint32_t i : seed) Enqueue(i);
    return Status::OK();
  }

  // Produces the next state into `*out` and sets `*produced`; false means the
  // enumeration is exhausted. `*out` must have been constructed with the
  // closure width.
  Status Next(FlatBits* out, bool* produced) {
    using Op = Closure::Op;
    using Rule = Closure::Rule;
    *produced = false;
    if (exhausted_) return Status::OK();
    while (true) {
      // Alpha saturation: unit rules in ascending closure-index order.
      bool clash = false;
      uint32_t i;
      while ((i = alpha_.FindFirst()) != FlatBits::kNpos) {
        alpha_.Reset(i);
        if (done_.Test(i)) continue;
        const Rule& r = closure_->rule(i);
        switch (r.op) {
          case Op::kTrue:
            break;  // trivially holds; like legacy, never asserted into done
          case Op::kFalse:
            clash = true;
            break;
          case Op::kLitPos:
          case Op::kLitNeg:
            if (r.complement != Closure::kNone && done_.Test(r.complement)) {
              clash = true;
              break;
            }
            done_.Set(i);
            break;
          case Op::kAnd:
            done_.Set(i);
            Enqueue(r.a);
            Enqueue(r.b);
            break;
          case Op::kNext:
            done_.Set(i);  // elementary: feeds the successor seed
            break;
          case Op::kAlways:
            done_.Set(i);
            Enqueue(r.a);
            Enqueue(r.next_self);
            break;
          default:
            break;  // unreachable: beta ops never land on the alpha queue
        }
        if (clash) break;
      }
      if (clash) {
        if (!Backtrack()) return Status::OK();  // all branches closed
        continue;
      }

      uint32_t b = beta_.FindFirst();
      if (b == FlatBits::kNpos) {
        // Both queues drained without a clash: `done_` is a state. Position
        // at the innermost open choice before returning so the next call
        // resumes there.
        *out = done_;
        *produced = true;
        Backtrack();
        return Status::OK();
      }
      beta_.Reset(b);
      if (done_.Test(b)) continue;
      const Rule& r = closure_->rule(b);
      done_.Set(b);  // asserted on both alternatives, like legacy done.insert
      switch (r.op) {
        case Op::kOr:
          // Subsumption: a disjunct (of the flattened Or-tree) already
          // asserted discharges the disjunction without branching.
          if (options_->use_subsumption && OrSubsumed(b)) break;
          TIC_RETURN_NOT_OK(PushFrame(b));
          Enqueue(r.a);
          break;
        case Op::kUntil:
          if (options_->use_subsumption && done_.Test(r.b)) break;
          TIC_RETURN_NOT_OK(PushFrame(b));
          Enqueue(r.b);
          break;
        case Op::kRelease:
          if (options_->use_subsumption && done_.Test(r.a)) {
            // Releasing side already asserted: B alone discharges A R B now.
            Enqueue(r.b);
            break;
          }
          TIC_RETURN_NOT_OK(PushFrame(b));
          Enqueue(r.b);
          Enqueue(r.a);
          break;
        case Op::kEventually:
          if (options_->use_subsumption && done_.Test(r.a)) break;
          TIC_RETURN_NOT_OK(PushFrame(b));
          Enqueue(r.a);
          break;
        default:
          break;  // unreachable: alpha ops never land on the beta queue
      }
    }
  }

 private:
  struct Frame {
    FlatBits done, alpha, beta;
    uint32_t formula;
  };

  void Enqueue(uint32_t i) {
    if (done_.Test(i)) return;
    if (closure_->rule(i).is_alpha) {
      alpha_.Set(i);
    } else {
      beta_.Set(i);
    }
  }

  // True if some leaf of the flattened Or-tree of member `i` is already
  // asserted. Walks the rule DAG lazily, like the legacy OrSubsumed — a
  // precomputed per-Or leaf list would be quadratic in the closure size on
  // deep disjunction chains.
  bool OrSubsumed(uint32_t i) {
    using Op = Closure::Op;
    scratch_.clear();
    scratch_.push_back(closure_->rule(i).a);
    scratch_.push_back(closure_->rule(i).b);
    while (!scratch_.empty()) {
      uint32_t g = scratch_.back();
      scratch_.pop_back();
      const Closure::Rule& r = closure_->rule(g);
      if (r.op == Op::kOr) {
        scratch_.push_back(r.a);
        scratch_.push_back(r.b);
        continue;
      }
      if (done_.Test(g)) return true;
    }
    return false;
  }

  // Snapshots the branch state before applying the first alternative of a
  // split. Counts one expansion — the legacy engine's recursive Rec call for
  // the left alternative — and enforces the branch-depth budget.
  Status PushFrame(uint32_t formula) {
    if (++stats_->num_expansions > options_->max_expansions) {
      exhausted_ = true;
      return Status::ResourceExhausted(
          "tableau exceeded max_expansions = " +
          std::to_string(options_->max_expansions));
    }
    if (frames_.size() + 1 > options_->max_branch_depth) {
      exhausted_ = true;
      return Status::ResourceExhausted(
          "tableau branch depth exceeded max_branch_depth = " +
          std::to_string(options_->max_branch_depth));
    }
    frames_.push_back(Frame{done_, alpha_, beta_, formula});
    return Status::OK();
  }

  // Restores the innermost choice point and applies its second alternative;
  // false when no choice point remains (enumeration exhausted).
  bool Backtrack() {
    using Op = Closure::Op;
    if (frames_.empty()) {
      exhausted_ = true;
      return false;
    }
    Frame fr = std::move(frames_.back());
    frames_.pop_back();
    done_ = std::move(fr.done);
    alpha_ = std::move(fr.alpha);
    beta_ = std::move(fr.beta);
    const Closure::Rule& r = closure_->rule(fr.formula);
    switch (r.op) {
      case Op::kOr:
        Enqueue(r.b);
        break;
      case Op::kUntil:
        Enqueue(r.a);
        Enqueue(r.next_self);
        break;
      case Op::kRelease:
        Enqueue(r.b);
        Enqueue(r.next_self);
        break;
      case Op::kEventually:
        Enqueue(r.next_self);
        break;
      default:
        break;
    }
    return true;
  }

  const Closure* closure_;
  const TableauOptions* options_;
  TableauStats* stats_;
  FlatBits done_, alpha_, beta_;
  std::vector<Frame> frames_;
  std::vector<uint32_t> scratch_;  // OrSubsumed walk stack
  bool exhausted_ = false;
};

// State dedup: open-addressing (linear probing, power-of-two capacity) over
// bitset states stored row-wise in one contiguous arena. A probe touches the
// hash vector and, only on a candidate match, one memcmp of the row — no
// per-state allocation, no pointer-chasing comparator. Row pointers are
// invalidated by Intern (the arena grows); do not hold them across calls.
class StateTable {
 public:
  explicit StateTable(uint32_t words_per_state)
      : words_(words_per_state), slots_(kInitialSlots, UINT32_MAX) {}

  size_t size() const { return hashes_.size(); }

  const uint64_t* Row(uint32_t id) const {
    return arena_.data() + static_cast<size_t>(id) * words_;
  }

  bool RowTest(uint32_t id, uint32_t bit) const {
    return (Row(id)[bit >> 6] >> (bit & 63)) & 1u;
  }

  // Interns `s`, minting a new id on first sight; `max_states` of 0 means
  // unlimited (the safety search budgets visited states, not interned ones).
  Result<uint32_t> Intern(const FlatBits& s, size_t max_states, bool* inserted) {
    *inserted = false;
    uint64_t h = s.Hash();
    size_t mask = slots_.size() - 1;
    size_t pos = static_cast<size_t>(h) & mask;
    while (slots_[pos] != UINT32_MAX) {
      uint32_t id = slots_[pos];
      // words_ == 0 short-circuits: an empty arena's Row() is null, and
      // memcmp's pointer arguments are attribute-nonnull even for length 0.
      if (hashes_[id] == h &&
          (words_ == 0 ||
           std::memcmp(Row(id), s.words(), words_ * sizeof(uint64_t)) == 0)) {
        return id;
      }
      pos = (pos + 1) & mask;
    }
    if (max_states != 0 && size() >= max_states) {
      return Status::ResourceExhausted("tableau exceeded max_states = " +
                                       std::to_string(max_states));
    }
    uint32_t id = static_cast<uint32_t>(hashes_.size());
    hashes_.push_back(h);
    arena_.insert(arena_.end(), s.words(), s.words() + words_);
    slots_[pos] = id;
    *inserted = true;
    if (hashes_.size() * 10 >= slots_.size() * 7) Grow();
    return id;
  }

 private:
  static constexpr size_t kInitialSlots = 64;

  void Grow() {
    std::vector<uint32_t> fresh(slots_.size() * 2, UINT32_MAX);
    size_t mask = fresh.size() - 1;
    for (uint32_t id = 0; id < hashes_.size(); ++id) {
      size_t pos = static_cast<size_t>(hashes_[id]) & mask;
      while (fresh[pos] != UINT32_MAX) pos = (pos + 1) & mask;
      fresh[pos] = id;
    }
    slots_ = std::move(fresh);
  }

  uint32_t words_;
  std::vector<uint64_t> arena_;   // state id -> row of `words_` words
  std::vector<uint64_t> hashes_;  // state id -> full hash
  std::vector<uint32_t> slots_;   // open-addressing table over ids
};

// Shared scaffolding of the searches and the transition system: closure-
// derived masks, the state table, and per-state helpers.
class EngineBase {
 public:
  EngineBase(const Closure* closure, const TableauOptions* options,
             TableauStats* stats)
      : closure_(closure),
        options_(options),
        stats_(stats),
        words_per_state_((closure->size() + 63) / 64),
        table_(words_per_state_),
        enumerator_(closure, options, stats),
        next_mask_(closure->size()),
        lit_mask_(closure->size()),
        row_tmp_(closure->size()),
        cover_state_(closure->size()) {
    using Op = Closure::Op;
    for (uint32_t i = 0; i < closure->size(); ++i) {
      Op op = closure->rule(i).op;
      if (op == Op::kNext) next_mask_.Set(i);
      if (op == Op::kLitPos) lit_mask_.Set(i);
    }
  }

 protected:
  // Enumerates the cover of `seed`, interning each state; `out_ids` receives
  // the distinct successor ids in first-emission order (per-expansion dedup,
  // like the legacy ExpandEach seen-set).
  Status Cover(const std::vector<uint32_t>& seed, size_t max_states,
               std::vector<uint32_t>* out_ids) {
    TIC_RETURN_NOT_OK(enumerator_.Start(seed));
    cover_state_.ClearAll();
    cover_seen_.Clear();  // keeps warm buckets: no allocation on reuse
    while (true) {
      bool produced = false;
      TIC_RETURN_NOT_OK(enumerator_.Next(&cover_state_, &produced));
      if (!produced) break;
      bool inserted = false;
      TIC_ASSIGN_OR_RETURN(uint32_t id,
                           table_.Intern(cover_state_, max_states, &inserted));
      if (cover_seen_.Insert(id)) out_ids->push_back(id);
    }
    return Status::OK();
  }

  // Next-time obligations of a fully expanded state: X f bits map to f.
  std::vector<uint32_t> SeedIndicesOf(uint32_t id) {
    row_tmp_.AssignWords(table_.Row(id));
    std::vector<uint32_t> seed;
    row_tmp_.ForEachAnd(next_mask_,
                        [&](uint32_t i) { seed.push_back(closure_->rule(i).a); });
    return seed;
  }

  // The propositional assignment a state induces: positive atoms true.
  PropState AssignmentOf(uint32_t id) {
    PropState st;
    row_tmp_.AssignWords(table_.Row(id));
    row_tmp_.ForEachAnd(lit_mask_, [&](uint32_t i) {
      st.Set(closure_->rule(i).atom, true);
    });
    return st;
  }

  const Closure* closure_;
  const TableauOptions* options_;
  TableauStats* stats_;
  uint32_t words_per_state_;
  StateTable table_;
  BranchEnumerator enumerator_;
  FlatBits next_mask_;  // bits of the X-members
  FlatBits lit_mask_;   // bits of the positive literals
  FlatBits row_tmp_;
  FlatBits cover_state_;              // Cover's enumeration scratch
  flat::FlatSet<uint32_t> cover_seen_;  // Cover's per-call dedup scratch
};

}  // namespace internal
}  // namespace ptl
}  // namespace tic

#endif  // TIC_PTL_TABLEAU_BITSET_INTERNAL_H_
