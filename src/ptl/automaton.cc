#include "ptl/automaton.h"

#include "common/flat/flat_map.h"
#include "ptl/tableau_internal.h"

namespace tic {
namespace ptl {

namespace {

using internal::Expander;
using internal::SeedOf;
using internal::StateSet;
using internal::StateSetHash;

Formula ObligationGoal(Formula f) {
  if (f->kind() == Kind::kUntil) return f->rhs();
  if (f->kind() == Kind::kEventually) return f->child(0);
  return nullptr;
}

}  // namespace

Result<TableauAutomaton> BuildTableauAutomaton(Factory* factory, Formula f,
                                               const TableauOptions& options) {
  TableauAutomaton out;
  Formula nnf = ToNnf(factory, f);
  if (nnf->kind() == Kind::kFalse) return out;  // empty automaton, unsat

  TableauStats stats;
  Expander expander(factory, options, &stats);

  std::vector<StateSet> states;
  std::vector<std::vector<uint32_t>> edges;
  flat::FlatMap<StateSet, uint32_t, flat::Remixed<StateSetHash>> ids;
  ids.Reserve(64);  // skip the early growth rehashes of the intern loop
  std::vector<bool> initial;

  auto intern = [&](StateSet&& s) -> Result<uint32_t> {
    if (const uint32_t* found = ids.Get(s)) return *found;
    if (states.size() >= options.max_states) {
      return Status::ResourceExhausted("automaton exceeded max_states");
    }
    uint32_t id = static_cast<uint32_t>(states.size());
    ids.Emplace(s, id);
    states.push_back(std::move(s));
    edges.emplace_back();
    initial.push_back(false);
    return id;
  };

  for (StateSet& s : expander.Expand({nnf})) {
    TIC_ASSIGN_OR_RETURN(uint32_t id, intern(std::move(s)));
    initial[id] = true;
  }
  TIC_RETURN_NOT_OK(expander.status());
  for (size_t head = 0; head < states.size(); ++head) {
    for (StateSet& s : expander.Expand(SeedOf(states[head]))) {
      TIC_ASSIGN_OR_RETURN(uint32_t id, intern(std::move(s)));
      edges[head].push_back(id);
    }
    TIC_RETURN_NOT_OK(expander.status());
  }

  std::vector<std::vector<uint32_t>> members =
      internal::ComputeSccs(edges, &out.scc_of);
  size_t num_sccs = members.size();
  out.scc_self_fulfilling.assign(num_sccs, false);

  // Self-fulfilling test per SCC (and non-triviality).
  for (size_t c = 0; c < num_sccs; ++c) {
    bool nontrivial = members[c].size() > 1;
    if (!nontrivial) {
      uint32_t v = members[c][0];
      for (uint32_t w : edges[v]) nontrivial = nontrivial || w == v;
    }
    if (!nontrivial) continue;
    bool fulfilled = true;
    for (uint32_t v : members[c]) {
      for (Formula g : states[v]) {
        Formula goal = ObligationGoal(g);
        if (goal == nullptr) continue;
        bool found = false;
        for (uint32_t w : members[c]) {
          found = found || std::binary_search(states[w].begin(), states[w].end(),
                                              goal, internal::FormulaOrder{});
          if (found) break;
        }
        if (!found) {
          fulfilled = false;
          break;
        }
      }
      if (!fulfilled) break;
    }
    out.scc_self_fulfilling[c] = fulfilled;
    out.satisfiable = out.satisfiable || fulfilled;
  }

  // Render the states.
  out.states.reserve(states.size());
  for (uint32_t v = 0; v < states.size(); ++v) {
    TableauAutomaton::State st;
    st.initial = initial[v];
    for (Formula g : states[v]) {
      st.formulas.push_back(ToString(*factory, g));
      if (g->kind() == Kind::kAtom) {
        st.true_letters.push_back(factory->vocabulary()->Name(g->atom()));
      }
      Formula goal = ObligationGoal(g);
      if (goal != nullptr) st.obligations.push_back(ToString(*factory, goal));
    }
    out.states.push_back(std::move(st));
  }
  out.edges = std::move(edges);
  return out;
}

std::string ToDot(const TableauAutomaton& automaton) {
  std::string dot = "digraph tableau {\n  rankdir=LR;\n  node [shape=circle];\n";
  for (size_t v = 0; v < automaton.states.size(); ++v) {
    const auto& st = automaton.states[v];
    std::string label;
    if (st.true_letters.empty()) {
      label = "{}";
    } else {
      for (size_t i = 0; i < st.true_letters.size(); ++i) {
        if (i > 0) label += ",";
        label += st.true_letters[i];
      }
    }
    bool accepting = automaton.scc_self_fulfilling[automaton.scc_of[v]];
    dot += "  s" + std::to_string(v) + " [label=\"" + label + "\"";
    if (accepting) dot += ", shape=doublecircle";
    if (st.initial) dot += ", penwidth=3";
    dot += "];\n";
  }
  for (size_t v = 0; v < automaton.edges.size(); ++v) {
    for (uint32_t w : automaton.edges[v]) {
      dot += "  s" + std::to_string(v) + " -> s" + std::to_string(w) + ";\n";
    }
  }
  dot += "}\n";
  return dot;
}

}  // namespace ptl
}  // namespace tic
