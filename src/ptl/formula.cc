#include "ptl/formula.h"

namespace tic {
namespace ptl {

namespace {

// splitmix64 finalizer: the fingerprint must be well-mixed because it doubles
// as the shard selector and the canonical And/Or operand order.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

Factory::Factory(PropVocabularyPtr vocab) : vocab_(std::move(vocab)) {
  true_ = Intern(Kind::kTrue, 0, nullptr, nullptr);
  false_ = Intern(Kind::kFalse, 0, nullptr, nullptr);
}

Formula Factory::Intern(Kind k, PropId atom, Formula c0, Formula c1) {
  Node proto;
  proto.kind_ = k;
  proto.atom_ = atom;
  proto.children_[0] = c0;
  proto.children_[1] = c1;
  // Content fingerprint over (kind, atom, child fingerprints) — NOT child
  // addresses, so identical structures hash identically in every run.
  uint64_t fp = Mix(static_cast<uint64_t>(k) + 0x51ULL);
  fp = Mix(fp ^ static_cast<uint64_t>(atom));
  fp = Mix(fp ^ (c0 ? c0->hash() : 0x243f6a8885a308d3ULL));
  fp = Mix(fp ^ (c1 ? c1->hash() : 0x13198a2e03707344ULL));
  proto.hash_ = fp;

  Shard& shard = shards_[fp % kNumShards];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.cache.find(&proto);
  if (it != shard.cache.end()) return it->second;
  proto.size_ = 1 + (c0 ? c0->size() : 0) + (c1 ? c1->size() : 0);
  shard.nodes.push_back(proto);
  Formula f = &shard.nodes.back();
  shard.cache.emplace(f, f);
  return f;
}

size_t Factory::num_nodes() const {
  size_t total = 0;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.nodes.size();
  }
  return total;
}

Formula Factory::True() { return true_; }

Formula Factory::False() { return false_; }

Formula Factory::Atom(PropId p) { return Intern(Kind::kAtom, p, nullptr, nullptr); }

Formula Factory::Not(Formula a) {
  if (a->kind() == Kind::kTrue) return False();
  if (a->kind() == Kind::kFalse) return True();
  if (a->kind() == Kind::kNot) return a->child(0);
  return Intern(Kind::kNot, 0, a, nullptr);
}

Formula Factory::And(Formula a, Formula b) {
  if (a->kind() == Kind::kFalse || b->kind() == Kind::kFalse) return False();
  if (a->kind() == Kind::kTrue) return b;
  if (b->kind() == Kind::kTrue) return a;
  if (a == b) return a;
  // Shallow absorption, x & (x & y) == x & y: keeps the Lemma 4.2 progression
  // residuals from growing one conjunct per step on looping obligations.
  if (b->kind() == Kind::kAnd && (b->lhs() == a || b->rhs() == a)) return b;
  if (a->kind() == Kind::kAnd && (a->lhs() == b || a->rhs() == b)) return a;
  // Canonical operand order improves sharing (And is commutative). Ordering by
  // content fingerprint — not by address — keeps the chosen structure
  // identical across runs and across thread interleavings.
  if (b->hash() < a->hash()) std::swap(a, b);
  return Intern(Kind::kAnd, 0, a, b);
}

Formula Factory::Or(Formula a, Formula b) {
  if (a->kind() == Kind::kTrue || b->kind() == Kind::kTrue) return True();
  if (a->kind() == Kind::kFalse) return b;
  if (b->kind() == Kind::kFalse) return a;
  if (a == b) return a;
  // Shallow absorption, x | (x | y) == x | y.
  if (b->kind() == Kind::kOr && (b->lhs() == a || b->rhs() == a)) return b;
  if (a->kind() == Kind::kOr && (a->lhs() == b || a->rhs() == b)) return a;
  if (b->hash() < a->hash()) std::swap(a, b);
  return Intern(Kind::kOr, 0, a, b);
}

Formula Factory::Implies(Formula a, Formula b) {
  if (a->kind() == Kind::kFalse || b->kind() == Kind::kTrue) return True();
  if (a->kind() == Kind::kTrue) return b;
  if (b->kind() == Kind::kFalse) return Not(a);
  if (a == b) return True();
  return Intern(Kind::kImplies, 0, a, b);
}

Formula Factory::AndAll(const std::vector<Formula>& fs) {
  Formula acc = True();
  for (Formula f : fs) acc = And(acc, f);
  return acc;
}

Formula Factory::OrAll(const std::vector<Formula>& fs) {
  Formula acc = False();
  for (Formula f : fs) acc = Or(acc, f);
  return acc;
}

Formula Factory::Next(Formula a) {
  if (a->kind() == Kind::kTrue || a->kind() == Kind::kFalse) return a;
  return Intern(Kind::kNext, 0, a, nullptr);
}

Formula Factory::Until(Formula a, Formula b) {
  if (b->kind() == Kind::kTrue || b->kind() == Kind::kFalse) return b;
  if (a->kind() == Kind::kFalse) return b;  // false U b == b
  if (a->kind() == Kind::kTrue) return Eventually(b);
  return Intern(Kind::kUntil, 0, a, b);
}

Formula Factory::Release(Formula a, Formula b) {
  if (b->kind() == Kind::kTrue || b->kind() == Kind::kFalse) return b;
  if (a->kind() == Kind::kTrue) return b;  // true R b == b
  if (a->kind() == Kind::kFalse) return Always(b);
  return Intern(Kind::kRelease, 0, a, b);
}

Formula Factory::Eventually(Formula a) {
  if (a->kind() == Kind::kTrue || a->kind() == Kind::kFalse) return a;
  if (a->kind() == Kind::kEventually) return a;
  return Intern(Kind::kEventually, 0, a, nullptr);
}

Formula Factory::Always(Formula a) {
  if (a->kind() == Kind::kTrue || a->kind() == Kind::kFalse) return a;
  if (a->kind() == Kind::kAlways) return a;
  return Intern(Kind::kAlways, 0, a, nullptr);
}

namespace {

int Precedence(Kind k) {
  switch (k) {
    case Kind::kImplies:
      return 1;
    case Kind::kOr:
      return 2;
    case Kind::kAnd:
      return 3;
    case Kind::kUntil:
    case Kind::kRelease:
      return 4;
    case Kind::kNot:
    case Kind::kNext:
    case Kind::kEventually:
    case Kind::kAlways:
      return 5;
    default:
      return 6;
  }
}

void Render(const Factory& fac, Formula f, int min_prec, std::string* out) {
  int prec = Precedence(f->kind());
  bool parens = prec < min_prec;
  if (parens) *out += "(";
  switch (f->kind()) {
    case Kind::kTrue:
      *out += "true";
      break;
    case Kind::kFalse:
      *out += "false";
      break;
    case Kind::kAtom:
      *out += fac.vocabulary()->Name(f->atom());
      break;
    case Kind::kNot:
      *out += "!";
      Render(fac, f->child(0), 5, out);
      break;
    case Kind::kNext:
      *out += "X ";
      Render(fac, f->child(0), 5, out);
      break;
    case Kind::kEventually:
      *out += "F ";
      Render(fac, f->child(0), 5, out);
      break;
    case Kind::kAlways:
      *out += "G ";
      Render(fac, f->child(0), 5, out);
      break;
    case Kind::kAnd:
      Render(fac, f->lhs(), 3, out);
      *out += " & ";
      Render(fac, f->rhs(), 4, out);
      break;
    case Kind::kOr:
      Render(fac, f->lhs(), 2, out);
      *out += " | ";
      Render(fac, f->rhs(), 3, out);
      break;
    case Kind::kImplies:
      Render(fac, f->lhs(), 2, out);
      *out += " -> ";
      Render(fac, f->rhs(), 1, out);
      break;
    case Kind::kUntil:
      Render(fac, f->lhs(), 5, out);
      *out += " U ";
      Render(fac, f->rhs(), 4, out);
      break;
    case Kind::kRelease:
      Render(fac, f->lhs(), 5, out);
      *out += " R ";
      Render(fac, f->rhs(), 4, out);
      break;
  }
  if (parens) *out += ")";
}

}  // namespace

std::string ToString(const Factory& factory, Formula f) {
  std::string out;
  Render(factory, f, 0, &out);
  return out;
}

}  // namespace ptl
}  // namespace tic
