#include "ptl/transition_system.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <optional>
#include <unordered_map>
#include <utility>

#include "common/flat/flat_map.h"
#include "common/hash.h"
#include "common/telemetry/telemetry.h"
#include "ptl/closure.h"
#include "ptl/nnf.h"
#include "ptl/safety.h"
#include "ptl/tableau_bitset_internal.h"
#include "ptl/tableau_internal.h"
#include "ptl/verdict_cache.h"

namespace tic {
namespace ptl {

namespace {

struct IdVecHash {
  uint64_t operator()(const std::vector<uint32_t>& v) const {
    return flat::WyHashBytes(v.data(), v.size() * sizeof(uint32_t));
  }
};

// Lexicographic word comparison of two equal-width bitsets (the minimizer's
// initial partition groups by exact mask content, never by hash).
int CompareBits(const FlatBits& a, const FlatBits& b) {
  const uint64_t* wa = a.words();
  const uint64_t* wb = b.words();
  for (uint32_t i = 0; i < a.num_words(); ++i) {
    if (wa[i] != wb[i]) return wa[i] < wb[i] ? -1 : 1;
  }
  return 0;
}

}  // namespace

// All of the compiled automaton's mutable state. Methods assume the owning
// TransitionSystem's mutex is held.
struct TransitionSystem::Rep {
  // Liveness trichotomy per tableau state.
  enum : uint8_t { kUnknown = 0, kLive = 1, kDead = 2 };

  Closure closure;
  TableauOptions options;
  TableauStats tstats;

  // Thin adapter publishing the protected EngineBase machinery to Rep.
  struct Core : internal::EngineBase {
    using internal::EngineBase::EngineBase;
    using internal::EngineBase::Cover;
    using internal::EngineBase::SeedIndicesOf;
    using internal::EngineBase::table_;
    using internal::EngineBase::lit_mask_;
  };
  Core core;

  bool safe = false;

  // Alphabet: the atoms the closure's literals mention, in closure-index
  // order of first occurrence (deterministic across runs).
  std::vector<PropId> alphabet;
  flat::FlatMap<PropId, uint32_t> alpha_index;
  std::vector<uint32_t> canon_of_alpha;  // alphabet pos -> canonical letter idx
  FlatBits neg_lit_mask;                 // closure bits of the kLitNeg members

  // Per-state metadata, grown whenever Cover interns new states.
  std::vector<FlatBits> pos_mask;  // positive literal atoms, over the alphabet
  std::vector<FlatBits> neg_mask;  // negated literal atoms, over the alphabet
  std::vector<uint8_t> live;       // kUnknown / kLive / kDead
  std::vector<std::vector<uint32_t>> edges;
  std::vector<uint8_t> expanded;

  // State-set interning: sorted id vectors. Flat-table entries relocate on
  // insert, so the id->set view owns its vectors (set_by_id) and the index
  // maps a copy of the key; lookups of known sets touch no heap.
  flat::FlatMap<std::vector<uint32_t>, uint32_t, IdVecHash> set_ids;
  std::vector<std::vector<uint32_t>> set_by_id;
  uint32_t empty_set = 0;

  // Letter-signature interning (bitsets over the alphabet) and the
  // transition memo keyed by (state-set id, signature id).
  internal::StateTable sig_table;
  flat::FlatMap<uint64_t, TransitionStep> memo;

  uint64_t steps = 0;
  uint64_t memo_hits = 0;
  uint64_t live_queries = 0;

  // Minimization artifacts: bisimulation class per tableau state and the
  // set-id -> representative-set-id table from the last MinimizeNow run.
  // Both identity-by-default: RepOf answers for ids interned after the run.
  std::vector<uint32_t> state_class;
  std::vector<uint32_t> set_rep;
  MinimizeStats min_stats;

  // Scratch reused across Step calls (all under the owner's lock).
  FlatBits sig_scratch;
  std::vector<uint32_t> survivors_scratch;
  std::vector<uint32_t> next_scratch;
  flat::FlatMap<uint32_t, size_t> on_path_scratch;

  Rep(Closure c, const TableauOptions& o)
      : closure(std::move(c)),
        options(o),
        core(&closure, &options, &tstats),
        neg_lit_mask(closure.size()),
        sig_table(0),  // re-seated by BuildAlphabet once the width is known
        sig_scratch() {}

  void BuildAlphabet() {
    using Op = Closure::Op;
    for (uint32_t i = 0; i < closure.size(); ++i) {
      const Closure::Rule& r = closure.rule(i);
      PropId atom;
      if (r.op == Op::kLitPos) {
        atom = r.atom;
      } else if (r.op == Op::kLitNeg) {
        atom = closure.member(i)->child(0)->atom();
        neg_lit_mask.Set(i);
      } else {
        continue;
      }
      if (alpha_index.Emplace(atom, static_cast<uint32_t>(alphabet.size())).second) {
        alphabet.push_back(atom);
      }
    }
    uint32_t width = static_cast<uint32_t>(alphabet.size());
    sig_table = internal::StateTable((width + 63) / 64);
    sig_scratch = FlatBits(width);
  }

  uint32_t AlphaIndexOf(uint32_t closure_idx) const {
    using Op = Closure::Op;
    const Closure::Rule& r = closure.rule(closure_idx);
    PropId atom = r.op == Op::kLitPos ? r.atom
                                      : closure.member(closure_idx)->child(0)->atom();
    return *alpha_index.Get(atom);
  }

  // Extends the per-state vectors to cover states interned since the last
  // call, deriving each new state's literal masks from its arena row.
  void GrowStateMeta() {
    uint32_t width = static_cast<uint32_t>(alphabet.size());
    FlatBits row(closure.size());
    for (uint32_t id = static_cast<uint32_t>(pos_mask.size());
         id < core.table_.size(); ++id) {
      FlatBits pos(width), neg(width);
      row.AssignWords(core.table_.Row(id));
      row.ForEachAnd(core.lit_mask_, [&](uint32_t i) { pos.Set(AlphaIndexOf(i)); });
      row.ForEachAnd(neg_lit_mask, [&](uint32_t i) { neg.Set(AlphaIndexOf(i)); });
      pos_mask.push_back(std::move(pos));
      neg_mask.push_back(std::move(neg));
      live.push_back(kUnknown);
      edges.emplace_back();
      expanded.push_back(0);
    }
  }

  // Lookup is allocation-free; only a genuinely new set copies `ids`.
  uint32_t InternSet(const std::vector<uint32_t>& ids) {
    uint32_t next_id = static_cast<uint32_t>(set_by_id.size());
    auto [e, inserted] = set_ids.Emplace(ids, next_id);
    if (inserted) set_by_id.push_back(ids);
    return e->second;
  }

  Status EnsureExpanded(uint32_t s) {
    if (expanded[s]) return Status::OK();
    std::vector<uint32_t> succs;
    TIC_RETURN_NOT_OK(core.Cover(core.SeedIndicesOf(s), options.max_states, &succs));
    GrowStateMeta();
    tstats.num_edges += succs.size();
    edges[s] = std::move(succs);
    expanded[s] = 1;
    return Status::OK();
  }

  bool Compatible(uint32_t s, const FlatBits& sig) const {
    return pos_mask[s].SubsetOf(sig) && !neg_mask[s].Intersects(sig);
  }

  // Liveness of one tableau state in lazy (safe) mode: without obligations
  // every infinite path is accepting, so live == "a cycle is reachable".
  // Iterative DFS with a persistent live/dead memo: hitting a known-live state
  // or closing a cycle marks the whole DFS path live (every path state reaches
  // the cycle); a state whose subtree exhausts cannot reach any cycle — had it
  // reached an on-path ancestor the cycle check would have fired — so it is
  // dead for every future query too.
  Result<bool> LiveStateSafe(uint32_t root) {
    if (live[root] != kUnknown) return live[root] == kLive;
    ++live_queries;
    struct Lv {
      uint32_t id;
      size_t edge;
    };
    std::vector<Lv> stack{{root, 0}};
    flat::FlatMap<uint32_t, size_t>& on_path = on_path_scratch;
    on_path.Clear();
    on_path.Emplace(root, size_t{0});
    auto mark_path_live = [&] {
      for (const Lv& lv : stack) live[lv.id] = kLive;
    };
    while (!stack.empty()) {
      Lv& top = stack.back();
      TIC_RETURN_NOT_OK(EnsureExpanded(top.id));
      if (top.edge >= edges[top.id].size()) {
        live[top.id] = kDead;
        on_path.Erase(top.id);
        stack.pop_back();
        continue;
      }
      uint32_t w = edges[top.id][top.edge++];
      if (live[w] == kLive || on_path.Contains(w)) {
        mark_path_live();
        return true;
      }
      if (live[w] == kDead) continue;
      on_path.Emplace(w, stack.size());
      stack.push_back({w, 0});
    }
    return false;  // root (and its whole subtree) marked dead
  }

  Result<bool> LiveState(uint32_t s) {
    if (safe) return LiveStateSafe(s);
    return live[s] == kLive;  // general mode: resolved at compile time
  }

  // General (non-safe) mode: materialize the whole reachable graph, then
  // resolve liveness by SCC analysis — a state is live iff it reaches a
  // nontrivial self-fulfilling SCC (Lichtenstein–Pnueli). ComputeSccs emits
  // components in reverse topological order, so successors of component c
  // always have smaller ids and one ascending pass propagates liveness.
  Status MaterializeAndSolve() {
    size_t head = 0;
    while (head < core.table_.size()) {
      TIC_RETURN_NOT_OK(EnsureExpanded(static_cast<uint32_t>(head)));
      ++head;
    }
    std::vector<uint32_t> scc_of;
    std::vector<std::vector<uint32_t>> members = internal::ComputeSccs(edges, &scc_of);
    std::vector<char> comp_live(members.size(), 0);
    for (size_t c = 0; c < members.size(); ++c) {
      bool nontrivial = members[c].size() > 1;
      if (!nontrivial) {
        uint32_t v = members[c][0];
        for (uint32_t w : edges[v]) {
          if (w == v) nontrivial = true;
        }
      }
      bool ok = false;
      if (nontrivial) {
        // Self-fulfilling: every obligation asserted in the SCC has its goal
        // asserted somewhere in the SCC.
        FlatBits all(closure.size());
        for (uint32_t v : members[c]) all.OrWords(core.table_.Row(v));
        ok = true;
        all.ForEachAnd(closure.obligation_mask(), [&](uint32_t i) {
          if (!all.Test(closure.rule(i).goal)) ok = false;
        });
      }
      if (!ok) {
        for (uint32_t v : members[c]) {
          for (uint32_t w : edges[v]) {
            if (scc_of[w] != c && comp_live[scc_of[w]]) {
              ok = true;
              break;
            }
          }
          if (ok) break;
        }
      }
      comp_live[c] = ok ? 1 : 0;
    }
    for (uint32_t id = 0; id < live.size(); ++id) {
      live[id] = comp_live[scc_of[id]] ? kLive : kDead;
    }
    return Status::OK();
  }

  // Projects `w` onto the alphabet through the caller's canonical letters and
  // interns the signature.
  Result<uint32_t> InternSig(const PropState& w, const PropId* letters,
                             size_t num_letters) {
    uint32_t width = static_cast<uint32_t>(alphabet.size());
    // Reuses sig_scratch (sized by BuildAlphabet): no per-Step construction
    // even when the alphabet spills past FlatBits' inline words.
    FlatBits& sig = sig_scratch;
    sig.ClearAll();
    for (uint32_t j = 0; j < width; ++j) {
      uint32_t canon = canon_of_alpha[j];
      if (canon >= num_letters) {
        return Status::InvalidArgument(
            "letter mapping too small for this transition system");
      }
      if (w.Get(letters[canon])) sig.Set(j);
    }
    bool inserted = false;
    return sig_table.Intern(sig, 0, &inserted);
  }

  uint32_t RepOf(uint32_t set_id) const {
    return set_id < set_rep.size() ? set_rep[set_id] : set_id;
  }

  // Shared transition body of Step and StepSig: memo probe, survivor filter,
  // successor union, lazy liveness. Newly computed successors are
  // canonicalized through the representative map so post-minimization
  // stepping converges onto class representatives.
  Result<TransitionStep> StepBySig(uint32_t set_id, uint32_t sig_id) {
    uint64_t key = (static_cast<uint64_t>(set_id) << 32) | sig_id;
    if (const TransitionStep* hit = memo.Get(key)) {
      ++memo_hits;
      TIC_COUNTER_ADD("automaton/transition_memo_hits", 1);
      return *hit;
    }
    TIC_COUNTER_ADD("automaton/transition_memo_misses", 1);

    sig_scratch.AssignWords(sig_table.Row(sig_id));
    const std::vector<uint32_t>& current = set_by_id[set_id];
    survivors_scratch.clear();
    for (uint32_t s : current) {
      if (Compatible(s, sig_scratch)) survivors_scratch.push_back(s);
    }

    TransitionStep step;
    step.any_survivor = !survivors_scratch.empty();
    if (!step.any_survivor) {
      step.next = empty_set;
      step.live = false;
    } else {
      next_scratch.clear();
      for (uint32_t s : survivors_scratch) {
        TIC_RETURN_NOT_OK(EnsureExpanded(s));
        next_scratch.insert(next_scratch.end(), edges[s].begin(),
                            edges[s].end());
      }
      std::sort(next_scratch.begin(), next_scratch.end());
      next_scratch.erase(std::unique(next_scratch.begin(), next_scratch.end()),
                         next_scratch.end());
      step.next = RepOf(InternSet(next_scratch));
      step.live = false;
      for (uint32_t s : survivors_scratch) {
        TIC_ASSIGN_OR_RETURN(bool l, LiveState(s));
        if (l) {
          step.live = true;
          break;
        }
      }
    }
    memo.Emplace(key, step);
    return step;
  }

  // Partition refinement over discovered tableau states, lifted to state-sets
  // (see the header comment on MinimizeNow for the soundness argument).
  MinimizeStats Minimize() {
    GrowStateMeta();
    const uint32_t n = static_cast<uint32_t>(pos_mask.size());
    state_class.assign(n, 0);
    std::vector<uint32_t> expanded_order;
    expanded_order.reserve(n);
    for (uint32_t s = 0; s < n; ++s) {
      if (expanded[s]) expanded_order.push_back(s);
    }
    // Initial partition: resolved liveness plus exact literal masks. A finer
    // partition is always sound, so kUnknown simply counts as its own
    // liveness value and unexpanded states stay singleton.
    std::sort(expanded_order.begin(), expanded_order.end(),
              [&](uint32_t a, uint32_t b) {
                if (live[a] != live[b]) return live[a] < live[b];
                int c = CompareBits(pos_mask[a], pos_mask[b]);
                if (c != 0) return c < 0;
                return CompareBits(neg_mask[a], neg_mask[b]) < 0;
              });
    uint32_t num_classes = 0;
    for (size_t i = 0; i < expanded_order.size(); ++i) {
      if (i > 0) {
        uint32_t p = expanded_order[i - 1];
        uint32_t s = expanded_order[i];
        bool same = live[p] == live[s] &&
                    CompareBits(pos_mask[p], pos_mask[s]) == 0 &&
                    CompareBits(neg_mask[p], neg_mask[s]) == 0;
        if (!same) ++num_classes;
      }
      state_class[expanded_order[i]] = num_classes;
    }
    if (!expanded_order.empty()) ++num_classes;
    for (uint32_t s = 0; s < n; ++s) {
      if (!expanded[s]) state_class[s] = num_classes++;
    }

    // Refine by successor-class sets until stable. Rounds only split classes,
    // so the count is nondecreasing and bounded by n — termination in <= n
    // rounds, each O(states * out-degree + sort).
    std::vector<std::vector<uint32_t>> succ_sig(n);
    std::vector<uint32_t> next_class(n);
    while (true) {
      for (uint32_t s : expanded_order) {
        std::vector<uint32_t>& sig = succ_sig[s];
        sig.clear();
        for (uint32_t w : edges[s]) sig.push_back(state_class[w]);
        std::sort(sig.begin(), sig.end());
        sig.erase(std::unique(sig.begin(), sig.end()), sig.end());
      }
      std::sort(expanded_order.begin(), expanded_order.end(),
                [&](uint32_t a, uint32_t b) {
                  if (state_class[a] != state_class[b]) {
                    return state_class[a] < state_class[b];
                  }
                  return succ_sig[a] < succ_sig[b];
                });
      uint32_t count = 0;
      for (size_t i = 0; i < expanded_order.size(); ++i) {
        if (i > 0) {
          uint32_t p = expanded_order[i - 1];
          uint32_t s = expanded_order[i];
          if (state_class[p] != state_class[s] || succ_sig[p] != succ_sig[s]) {
            ++count;
          }
        }
        next_class[expanded_order[i]] = count;
      }
      if (!expanded_order.empty()) ++count;
      for (uint32_t s = 0; s < n; ++s) {
        if (!expanded[s]) next_class[s] = count++;
      }
      bool stable = count == num_classes;
      num_classes = count;
      state_class.swap(next_class);
      if (stable) break;
    }

    // Lift to state-sets: equivalence = equal member-class sets, the
    // representative is the lowest id (ascending scan: first occurrence wins).
    const uint32_t nsets = static_cast<uint32_t>(set_by_id.size());
    set_rep.assign(nsets, 0);
    flat::FlatMap<std::vector<uint32_t>, uint32_t, IdVecHash> rep_of_sig;
    std::vector<uint32_t> sig;
    uint64_t collapsed = 0;
    for (uint32_t i = 0; i < nsets; ++i) {
      sig.assign(set_by_id[i].begin(), set_by_id[i].end());
      for (uint32_t& s : sig) s = state_class[s];
      std::sort(sig.begin(), sig.end());
      sig.erase(std::unique(sig.begin(), sig.end()), sig.end());
      auto [e, inserted] = rep_of_sig.Emplace(sig, i);
      set_rep[i] = e->second;
      if (!inserted) ++collapsed;
    }
    ++min_stats.runs;
    min_stats.tableau_states = n;
    min_stats.tableau_classes = num_classes;
    min_stats.state_sets = nsets;
    min_stats.collapsed_sets = collapsed;
    TIC_COUNTER_ADD("automaton/minimize_runs", 1);
    TIC_GAUGE_SET("automaton/minimize_classes", num_classes);
    TIC_GAUGE_SET("automaton/minimize_collapsed_sets", collapsed);
    return min_stats;
  }
};

TransitionSystem::TransitionSystem() = default;
TransitionSystem::~TransitionSystem() = default;

Result<std::shared_ptr<TransitionSystem>> TransitionSystem::Compile(
    Factory* factory, Formula f, const TableauOptions& options) {
  TIC_SPAN("automaton.compile");
  TIC_COUNTER_ADD("automaton/compiles", 1);
  Formula nnf = ToNnf(factory, f);
  std::optional<CanonicalFormula> cf = Canonicalize(nnf);

  std::shared_ptr<TransitionSystem> ts(new TransitionSystem());
  TIC_ASSIGN_OR_RETURN(Closure closure, Closure::Build(factory, nnf));
  ts->rep_ = std::make_unique<Rep>(std::move(closure), options);
  Rep& r = *ts->rep_;
  r.BuildAlphabet();
  r.safe = ts->safe_ = IsSyntacticallySafe(factory, nnf);

  if (cf.has_value()) {
    std::unordered_map<PropId, uint32_t> inverse;
    for (uint32_t i = 0; i < cf->letters.size(); ++i) {
      inverse.emplace(cf->letters[i], i);
    }
    r.canon_of_alpha.resize(r.alphabet.size());
    for (uint32_t j = 0; j < r.alphabet.size(); ++j) {
      auto it = inverse.find(r.alphabet[j]);
      if (it == inverse.end()) {
        return Status::Internal("closure letter missing from canonical form");
      }
      r.canon_of_alpha[j] = it->second;
    }
    ts->default_letters_ = cf->letters;
  } else {
    // Too large to canonicalize: identity mapping, no cross-renaming sharing.
    r.canon_of_alpha.resize(r.alphabet.size());
    for (uint32_t j = 0; j < r.alphabet.size(); ++j) r.canon_of_alpha[j] = j;
    ts->default_letters_ = r.alphabet;
  }

  std::vector<uint32_t> initial;
  TIC_RETURN_NOT_OK(r.core.Cover({r.closure.root()}, options.max_states, &initial));
  r.GrowStateMeta();
  std::sort(initial.begin(), initial.end());
  r.empty_set = r.InternSet({});
  ts->initial_set_ = r.InternSet(std::move(initial));

  if (!ts->safe_) TIC_RETURN_NOT_OK(r.MaterializeAndSolve());
  TIC_RECORD(kAutomatonCompile, r.closure.size(), r.alphabet.size(),
             r.set_by_id.size());
  return ts;
}

Result<std::shared_ptr<TransitionSystem>> TransitionSystem::Compile(
    std::shared_ptr<Factory> factory, Formula f, const TableauOptions& options) {
  TIC_ASSIGN_OR_RETURN(std::shared_ptr<TransitionSystem> ts,
                       Compile(factory.get(), f, options));
  ts->factory_keepalive_ = std::move(factory);
  return ts;
}

Result<TransitionStep> TransitionSystem::Step(uint32_t set_id,
                                              const PropState& letter,
                                              const std::vector<PropId>& letters) {
  std::lock_guard<std::mutex> lock(mu_);
  Rep& r = *rep_;
  if (set_id >= r.set_by_id.size()) {
    return Status::InvalidArgument("unknown state-set id");
  }
  ++r.steps;
  TIC_ASSIGN_OR_RETURN(uint32_t sig_id,
                       r.InternSig(letter, letters.data(), letters.size()));
  return r.StepBySig(set_id, sig_id);
}

Result<TransitionStep> TransitionSystem::Step(uint32_t set_id,
                                              const PropState& letter) {
  return Step(set_id, letter, default_letters_);
}

Result<uint32_t> TransitionSystem::InternSignature(
    const PropState& w, const std::vector<PropId>& letters) {
  return InternSignature(w, letters.data(), letters.size());
}

Result<uint32_t> TransitionSystem::InternSignature(const PropState& w,
                                                   const PropId* letters,
                                                   size_t num_letters) {
  std::lock_guard<std::mutex> lock(mu_);
  return rep_->InternSig(w, letters, num_letters);
}

Result<TransitionStep> TransitionSystem::StepSig(uint32_t set_id,
                                                 uint32_t sig_id) {
  std::lock_guard<std::mutex> lock(mu_);
  Rep& r = *rep_;
  if (set_id >= r.set_by_id.size()) {
    return Status::InvalidArgument("unknown state-set id");
  }
  if (sig_id >= r.sig_table.size()) {
    return Status::InvalidArgument("unknown signature id");
  }
  ++r.steps;
  return r.StepBySig(set_id, sig_id);
}

MinimizeStats TransitionSystem::MinimizeNow() {
  TIC_SPAN("automaton.minimize");
  std::lock_guard<std::mutex> lock(mu_);
  return rep_->Minimize();
}

uint32_t TransitionSystem::Representative(uint32_t set_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return rep_->RepOf(set_id);
}

uint64_t TransitionSystem::num_state_sets() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rep_->set_by_id.size();
}

MinimizeStats TransitionSystem::minimize_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rep_->min_stats;
}

Result<bool> TransitionSystem::Live(uint32_t set_id) {
  std::lock_guard<std::mutex> lock(mu_);
  Rep& r = *rep_;
  if (set_id >= r.set_by_id.size()) {
    return Status::InvalidArgument("unknown state-set id");
  }
  for (uint32_t s : r.set_by_id[set_id]) {
    TIC_ASSIGN_OR_RETURN(bool l, r.LiveState(s));
    if (l) return true;
  }
  return false;
}

TransitionSystemStats TransitionSystem::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  const Rep& r = *rep_;
  TransitionSystemStats s;
  s.num_states = r.core.table_.size();
  s.num_edges = r.tstats.num_edges;
  s.num_state_sets = r.set_by_id.size();
  s.num_signatures = r.sig_table.size();
  s.steps = r.steps;
  s.memo_hits = r.memo_hits;
  s.live_queries = r.live_queries;
  s.alphabet_size = r.alphabet.size();
  return s;
}

AutomatonCache::AutomatonCache(size_t capacity)
    : capacity_(std::max<size_t>(1, capacity)), lru_(capacity_) {}

Result<AutomatonHandle> AutomatonCache::Get(Factory* factory, Formula f,
                                            const TableauOptions& options) {
  // Non-owning alias: the caller guarantees the factory outlives the cache.
  return Get(std::shared_ptr<Factory>(std::shared_ptr<Factory>(), factory), f,
             options);
}

Result<AutomatonHandle> AutomatonCache::Get(std::shared_ptr<Factory> factory,
                                            Formula f,
                                            const TableauOptions& options) {
  Formula nnf = ToNnf(factory.get(), f);
  std::optional<CanonicalFormula> cf = Canonicalize(nnf);
  if (!cf.has_value()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    TIC_ASSIGN_OR_RETURN(std::shared_ptr<TransitionSystem> ts,
                         TransitionSystem::Compile(std::move(factory), nnf,
                                                   options));
    return AutomatonHandle{ts, ts->default_letters()};
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (CacheEntry* e = lru_.Find(cf->fp)) {
#ifndef NDEBUG
      assert(e->debug_key == cf->key && "AutomatonCache: Fp128 fingerprint collision");
#endif
      hits_.fetch_add(1, std::memory_order_relaxed);
      return AutomatonHandle{e->ts, std::move(cf->letters)};
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  // Compile outside the lock: concurrent misses on the same key may compile
  // twice, but the first insert wins and nothing blocks behind a compile.
  TIC_ASSIGN_OR_RETURN(std::shared_ptr<TransitionSystem> ts,
                       TransitionSystem::Compile(factory, nnf, options));
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (CacheEntry* e = lru_.Find(cf->fp)) {
#ifndef NDEBUG
      assert(e->debug_key == cf->key && "AutomatonCache: Fp128 fingerprint collision");
#endif
      return AutomatonHandle{e->ts, std::move(cf->letters)};
    }
    CacheEntry entry;
    entry.ts = ts;
#ifndef NDEBUG
    entry.debug_key = cf->key;
#endif
    uint64_t evicted_before = lru_.evictions();
    lru_.Insert(cf->fp, std::move(entry));
    evictions_.fetch_add(lru_.evictions() - evicted_before,
                         std::memory_order_relaxed);
    entries_.store(lru_.size(), std::memory_order_relaxed);
  }
  return AutomatonHandle{std::move(ts), std::move(cf->letters)};
}

AutomatonCacheStats AutomatonCache::stats() const {
  AutomatonCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.entries = entries_.load(std::memory_order_relaxed);
  s.capacity = capacity_;
  return s;
}

}  // namespace ptl
}  // namespace tic
