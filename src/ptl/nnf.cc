#include "ptl/nnf.h"

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/hash.h"

namespace tic {
namespace ptl {

namespace {

struct Key {
  Formula f;
  bool neg;
  bool operator==(const Key& o) const { return f == o.f && neg == o.neg; }
};
struct KeyHash {
  size_t operator()(const Key& k) const {
    // Content fingerprint, not the node address: run-deterministic and stable
    // under allocation order.
    size_t seed = static_cast<size_t>(k.f->hash());
    HashCombine(&seed, k.neg ? 1u : 0u);
    return seed;
  }
};

// Explicit-stack negation-normal-form builder. The translation is a pure
// bottom-up function of (subformula, polarity) pairs; frames are expanded
// twice — first to push unresolved dependencies, then to combine their
// memoized results — so arbitrarily deep formulas never touch the native
// call stack.
class NnfBuilder {
 public:
  explicit NnfBuilder(Factory* fac) : fac_(fac) {}

  Formula Run(Formula root, bool root_neg) {
    struct Frame {
      Key key;
      bool expanded;
    };
    std::vector<Frame> stack{{Key{root, root_neg}, false}};
    while (!stack.empty()) {
      Frame fr = stack.back();
      stack.pop_back();
      if (memo_.count(fr.key) > 0) continue;
      Key deps[2];
      size_t n = DepsOf(fr.key, deps);
      if (!fr.expanded) {
        if (n == 0) {
          memo_.emplace(fr.key, Leaf(fr.key));
          continue;
        }
        stack.push_back({fr.key, true});
        for (size_t i = 0; i < n; ++i) {
          if (memo_.count(deps[i]) == 0) stack.push_back({deps[i], false});
        }
        continue;
      }
      Formula a = memo_.at(deps[0]);
      Formula b = n > 1 ? memo_.at(deps[1]) : nullptr;
      memo_.emplace(fr.key, Combine(fr.key, a, b));
    }
    return memo_.at(Key{root, root_neg});
  }

 private:
  // The (child, polarity) pairs this key's translation depends on.
  size_t DepsOf(const Key& k, Key out[2]) const {
    Formula f = k.f;
    bool neg = k.neg;
    switch (f->kind()) {
      case Kind::kTrue:
      case Kind::kFalse:
      case Kind::kAtom:
        return 0;
      case Kind::kNot:
        out[0] = Key{f->child(0), !neg};
        return 1;
      case Kind::kNext:
      case Kind::kEventually:
      case Kind::kAlways:
        out[0] = Key{f->child(0), neg};
        return 1;
      case Kind::kImplies:
        // A -> B == !A | B: the antecedent flips polarity.
        out[0] = Key{f->lhs(), !neg};
        out[1] = Key{f->rhs(), neg};
        return 2;
      case Kind::kAnd:
      case Kind::kOr:
      case Kind::kUntil:
      case Kind::kRelease:
        out[0] = Key{f->lhs(), neg};
        out[1] = Key{f->rhs(), neg};
        return 2;
    }
    return 0;
  }

  Formula Leaf(const Key& k) {
    switch (k.f->kind()) {
      case Kind::kTrue:
        return k.neg ? fac_->False() : fac_->True();
      case Kind::kFalse:
        return k.neg ? fac_->True() : fac_->False();
      case Kind::kAtom:
        return k.neg ? fac_->Not(k.f) : k.f;
      default:
        return k.f;
    }
  }

  Formula Combine(const Key& k, Formula a, Formula b) {
    bool neg = k.neg;
    switch (k.f->kind()) {
      case Kind::kNot:
        return a;
      case Kind::kAnd:
        return neg ? fac_->Or(a, b) : fac_->And(a, b);
      case Kind::kOr:
        return neg ? fac_->And(a, b) : fac_->Or(a, b);
      case Kind::kImplies:
        // deps were (!A-polarity lhs, rhs): negated -> A & !B, else !A | B.
        return neg ? fac_->And(a, b) : fac_->Or(a, b);
      case Kind::kNext:
        return fac_->Next(a);
      case Kind::kUntil:
        return neg ? fac_->Release(a, b) : fac_->Until(a, b);
      case Kind::kRelease:
        return neg ? fac_->Until(a, b) : fac_->Release(a, b);
      case Kind::kEventually:
        // F A == true U A;  !F A == G !A == false R !A.
        return neg ? fac_->Release(fac_->False(), a)
                   : fac_->Until(fac_->True(), a);
      case Kind::kAlways:
        return neg ? fac_->Until(fac_->True(), a)
                   : fac_->Release(fac_->False(), a);
      default:
        return k.f;
    }
  }

  Factory* fac_;
  std::unordered_map<Key, Formula, KeyHash> memo_;
};

}  // namespace

Formula ToNnf(Factory* factory, Formula f) {
  NnfBuilder builder(factory);
  return builder.Run(f, false);
}

bool IsNnf(Formula f) {
  // Iterative worklist; the visited set keeps shared DAG nodes from being
  // re-checked (the DAG's tree unfolding can be exponentially larger).
  std::vector<Formula> stack{f};
  std::unordered_set<Formula> seen;
  while (!stack.empty()) {
    Formula g = stack.back();
    stack.pop_back();
    if (!seen.insert(g).second) continue;
    switch (g->kind()) {
      case Kind::kTrue:
      case Kind::kFalse:
      case Kind::kAtom:
        break;
      case Kind::kNot:
        if (g->child(0)->kind() != Kind::kAtom) return false;
        break;
      case Kind::kImplies:
        return false;
      case Kind::kEventually:
      case Kind::kAlways:
      case Kind::kNext:
        stack.push_back(g->child(0));
        break;
      case Kind::kAnd:
      case Kind::kOr:
      case Kind::kUntil:
      case Kind::kRelease:
        stack.push_back(g->lhs());
        stack.push_back(g->rhs());
        break;
    }
  }
  return true;
}

}  // namespace ptl
}  // namespace tic
