#include "ptl/nnf.h"

#include <unordered_map>

#include "common/hash.h"

namespace tic {
namespace ptl {

namespace {

struct Key {
  Formula f;
  bool neg;
  bool operator==(const Key& o) const { return f == o.f && neg == o.neg; }
};
struct KeyHash {
  size_t operator()(const Key& k) const {
    size_t seed = reinterpret_cast<size_t>(k.f);
    HashCombine(&seed, k.neg ? 1u : 0u);
    return seed;
  }
};

class NnfBuilder {
 public:
  explicit NnfBuilder(Factory* fac) : fac_(fac) {}

  Formula Run(Formula f, bool neg) {
    Key key{f, neg};
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;
    Formula out = Build(f, neg);
    memo_.emplace(key, out);
    return out;
  }

 private:
  Formula Build(Formula f, bool neg) {
    switch (f->kind()) {
      case Kind::kTrue:
        return neg ? fac_->False() : fac_->True();
      case Kind::kFalse:
        return neg ? fac_->True() : fac_->False();
      case Kind::kAtom:
        return neg ? fac_->Not(f) : f;
      case Kind::kNot:
        return Run(f->child(0), !neg);
      case Kind::kAnd:
        return neg ? fac_->Or(Run(f->lhs(), true), Run(f->rhs(), true))
                   : fac_->And(Run(f->lhs(), false), Run(f->rhs(), false));
      case Kind::kOr:
        return neg ? fac_->And(Run(f->lhs(), true), Run(f->rhs(), true))
                   : fac_->Or(Run(f->lhs(), false), Run(f->rhs(), false));
      case Kind::kImplies:
        // A -> B == !A | B.
        return neg ? fac_->And(Run(f->lhs(), false), Run(f->rhs(), true))
                   : fac_->Or(Run(f->lhs(), true), Run(f->rhs(), false));
      case Kind::kNext:
        return fac_->Next(Run(f->child(0), neg));
      case Kind::kUntil:
        return neg ? fac_->Release(Run(f->lhs(), true), Run(f->rhs(), true))
                   : fac_->Until(Run(f->lhs(), false), Run(f->rhs(), false));
      case Kind::kRelease:
        return neg ? fac_->Until(Run(f->lhs(), true), Run(f->rhs(), true))
                   : fac_->Release(Run(f->lhs(), false), Run(f->rhs(), false));
      case Kind::kEventually:
        // F A == true U A;  !F A == G !A == false R !A.
        return neg ? fac_->Release(fac_->False(), Run(f->child(0), true))
                   : fac_->Until(fac_->True(), Run(f->child(0), false));
      case Kind::kAlways:
        return neg ? fac_->Until(fac_->True(), Run(f->child(0), true))
                   : fac_->Release(fac_->False(), Run(f->child(0), false));
    }
    return f;
  }

  Factory* fac_;
  std::unordered_map<Key, Formula, KeyHash> memo_;
};

}  // namespace

Formula ToNnf(Factory* factory, Formula f) {
  NnfBuilder builder(factory);
  return builder.Run(f, false);
}

bool IsNnf(Formula f) {
  switch (f->kind()) {
    case Kind::kTrue:
    case Kind::kFalse:
    case Kind::kAtom:
      return true;
    case Kind::kNot:
      return f->child(0)->kind() == Kind::kAtom;
    case Kind::kImplies:
      return false;
    case Kind::kEventually:
    case Kind::kAlways:
      return IsNnf(f->child(0));
    case Kind::kNext:
      return IsNnf(f->child(0));
    case Kind::kAnd:
    case Kind::kOr:
    case Kind::kUntil:
    case Kind::kRelease:
      return IsNnf(f->lhs()) && IsNnf(f->rhs());
  }
  return false;
}

}  // namespace ptl
}  // namespace tic
