#ifndef TIC_PTL_BITSET_H_
#define TIC_PTL_BITSET_H_

#include <cstdint>
#include <cstring>

namespace tic {
namespace ptl {

/// \brief Fixed-width flat bitset used by the closure-indexed tableau engine.
///
/// Every bitset of one engine run has the same width (the closure size), so
/// the width is fixed at construction. Up to 256 bits (4 words) are stored
/// inline; wider sets spill to a single heap allocation. All hot operations
/// (test/set, first-set-bit, union, intersection test, hash, equality) are
/// word-parallel — this is what replaces the legacy engine's
/// `std::set<Formula>` states and their pointer-chasing comparators.
class FlatBits {
 public:
  static constexpr uint32_t kNpos = UINT32_MAX;
  static constexpr uint32_t kInlineWords = 4;  ///< spill threshold: 256 bits

  FlatBits() : num_words_(0) { inline_[0] = 0; }

  explicit FlatBits(uint32_t num_bits) : num_words_((num_bits + 63) / 64) {
    if (spilled()) heap_ = new uint64_t[num_words_];
    std::memset(words(), 0, num_words_ * sizeof(uint64_t));
  }

  FlatBits(const FlatBits& o) : num_words_(o.num_words_) {
    if (spilled()) heap_ = new uint64_t[num_words_];
    std::memcpy(words(), o.words(), num_words_ * sizeof(uint64_t));
  }

  FlatBits(FlatBits&& o) noexcept : num_words_(o.num_words_) {
    if (spilled()) {
      heap_ = o.heap_;
      o.num_words_ = 0;
    } else {
      std::memcpy(inline_, o.inline_, num_words_ * sizeof(uint64_t));
    }
  }

  FlatBits& operator=(const FlatBits& o) {
    if (this == &o) return *this;
    if (num_words_ != o.num_words_) {
      if (spilled()) delete[] heap_;
      num_words_ = o.num_words_;
      if (spilled()) heap_ = new uint64_t[num_words_];
    }
    std::memcpy(words(), o.words(), num_words_ * sizeof(uint64_t));
    return *this;
  }

  FlatBits& operator=(FlatBits&& o) noexcept {
    if (this == &o) return *this;
    if (spilled()) delete[] heap_;
    num_words_ = o.num_words_;
    if (spilled()) {
      heap_ = o.heap_;
      o.num_words_ = 0;
    } else {
      std::memcpy(inline_, o.inline_, num_words_ * sizeof(uint64_t));
    }
    return *this;
  }

  ~FlatBits() {
    if (spilled()) delete[] heap_;
  }

  bool spilled() const { return num_words_ > kInlineWords; }
  uint32_t num_words() const { return num_words_; }
  uint64_t* words() { return spilled() ? heap_ : inline_; }
  const uint64_t* words() const { return spilled() ? heap_ : inline_; }

  /// Zeroes every bit, keeping the width (and any heap block).
  void ClearAll() { std::memset(words(), 0, num_words_ * sizeof(uint64_t)); }

  bool Test(uint32_t i) const {
    return (words()[i >> 6] >> (i & 63)) & 1u;
  }
  void Set(uint32_t i) { words()[i >> 6] |= uint64_t{1} << (i & 63); }
  void Reset(uint32_t i) { words()[i >> 6] &= ~(uint64_t{1} << (i & 63)); }

  bool Empty() const {
    const uint64_t* w = words();
    for (uint32_t k = 0; k < num_words_; ++k) {
      if (w[k] != 0) return false;
    }
    return true;
  }

  /// Index of the lowest set bit, or kNpos when empty.
  uint32_t FindFirst() const {
    const uint64_t* w = words();
    for (uint32_t k = 0; k < num_words_; ++k) {
      if (w[k] != 0) {
        return k * 64 + static_cast<uint32_t>(__builtin_ctzll(w[k]));
      }
    }
    return kNpos;
  }

  void OrWith(const FlatBits& o) {
    uint64_t* w = words();
    const uint64_t* v = o.words();
    for (uint32_t k = 0; k < num_words_; ++k) w[k] |= v[k];
  }

  /// Unions raw state words (e.g. a row of the engine's state arena).
  void OrWords(const uint64_t* v) {
    uint64_t* w = words();
    for (uint32_t k = 0; k < num_words_; ++k) w[k] |= v[k];
  }

  void AssignWords(const uint64_t* v) {
    // num_words_ == 0 keeps `v` unevaluated: memcpy's pointer arguments are
    // attribute-nonnull even for a zero-length copy.
    if (num_words_ != 0) std::memcpy(words(), v, num_words_ * sizeof(uint64_t));
  }

  bool Intersects(const FlatBits& o) const {
    const uint64_t* w = words();
    const uint64_t* v = o.words();
    for (uint32_t k = 0; k < num_words_; ++k) {
      if ((w[k] & v[k]) != 0) return true;
    }
    return false;
  }

  /// True when every bit of `this` is also set in `o` (same width assumed) —
  /// the transition system's letter-compatibility test: a state's positive
  /// literals must be a subset of the letter signature.
  bool SubsetOf(const FlatBits& o) const {
    const uint64_t* w = words();
    const uint64_t* v = o.words();
    for (uint32_t k = 0; k < num_words_; ++k) {
      if ((w[k] & ~v[k]) != 0) return false;
    }
    return true;
  }

  /// Calls `fn(index)` for every set bit, ascending.
  template <typename Fn>
  void ForEach(Fn fn) const {
    const uint64_t* w = words();
    for (uint32_t k = 0; k < num_words_; ++k) {
      uint64_t word = w[k];
      while (word != 0) {
        uint32_t bit = static_cast<uint32_t>(__builtin_ctzll(word));
        fn(k * 64 + bit);
        word &= word - 1;
      }
    }
  }

  /// Calls `fn(index)` for every bit set in both `this` and `mask`.
  template <typename Fn>
  void ForEachAnd(const FlatBits& mask, Fn fn) const {
    const uint64_t* w = words();
    const uint64_t* m = mask.words();
    for (uint32_t k = 0; k < num_words_; ++k) {
      uint64_t word = w[k] & m[k];
      while (word != 0) {
        uint32_t bit = static_cast<uint32_t>(__builtin_ctzll(word));
        fn(k * 64 + bit);
        word &= word - 1;
      }
    }
  }

  uint64_t Hash() const { return HashWords(words(), num_words_); }

  static uint64_t HashWords(const uint64_t* w, uint32_t num_words) {
    uint64_t h = 0x9e3779b97f4a7c15ULL ^ num_words;
    for (uint32_t k = 0; k < num_words; ++k) {
      h ^= w[k] + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      h *= 0xbf58476d1ce4e5b9ULL;
      h ^= h >> 29;
    }
    return h;
  }

  friend bool operator==(const FlatBits& a, const FlatBits& b) {
    return a.num_words_ == b.num_words_ &&
           std::memcmp(a.words(), b.words(), a.num_words_ * sizeof(uint64_t)) == 0;
  }
  friend bool operator!=(const FlatBits& a, const FlatBits& b) { return !(a == b); }

 private:
  uint32_t num_words_;
  union {
    uint64_t inline_[kInlineWords];
    uint64_t* heap_;
  };
};

}  // namespace ptl
}  // namespace tic

#endif  // TIC_PTL_BITSET_H_
