#include "ptl/verdict_cache.h"

#include <algorithm>
#include <cassert>

#include "common/telemetry/telemetry.h"

namespace tic {
namespace ptl {

namespace {

void AppendVarint(std::string* out, uint32_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

// Tag bytes: kinds occupy [1, 1+#kinds); back-references use 0.
constexpr char kBackRefTag = 0;

uint64_t ShapeMix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Letter-blind structural hash for every node in f's DAG. All atoms hash
// alike and And/Or combine their children symmetrically, so the hash is
// invariant under letter renaming — unlike the factory's content
// fingerprint, which orders And/Or operands by the concrete letters.
bool ShapeHashes(Formula f, size_t max_nodes,
                 std::unordered_map<Formula, uint64_t>* shape) {
  std::vector<Formula> stack{f};
  while (!stack.empty()) {
    Formula g = stack.back();
    if (shape->count(g) != 0) {
      stack.pop_back();
      continue;
    }
    Formula c0 = g->child(0);
    Formula c1 = g->child(1);
    bool ready = true;
    if (c0 != nullptr && shape->count(c0) == 0) {
      stack.push_back(c0);
      ready = false;
    }
    if (c1 != nullptr && shape->count(c1) == 0) {
      stack.push_back(c1);
      ready = false;
    }
    if (!ready) continue;
    stack.pop_back();
    if (shape->size() >= max_nodes) return false;
    uint64_t h0 = c0 != nullptr ? shape->at(c0) : 0x243f6a8885a308d3ULL;
    uint64_t h1 = c1 != nullptr ? shape->at(c1) : 0x13198a2e03707344ULL;
    if ((g->kind() == Kind::kAnd || g->kind() == Kind::kOr) && h1 < h0) {
      std::swap(h0, h1);
    }
    uint64_t h = ShapeMix(static_cast<uint64_t>(g->kind()) + 0xa5ULL);
    h = ShapeMix(h ^ h0);
    h = ShapeMix(h ^ h1);
    shape->emplace(g, h);
  }
  return true;
}

}  // namespace

std::optional<CanonicalFormula> Canonicalize(Formula f, size_t max_nodes) {
  // Pre-order DAG serialization. Within one hash-consing factory, structurally
  // equal subterms are the same node, so emitting a back-reference on repeat
  // visits yields a serialization determined by structure alone — identical
  // sharing, identical key, in whichever factory the formula was built.
  //
  // And/Or children are visited in letter-blind shape-hash order, because
  // their stored order follows the letter-dependent content fingerprint and
  // would break renaming invariance. When both children share one shape the
  // stored order is kept — renamings may then miss the cache, never collide.
  std::unordered_map<Formula, uint64_t> shape;
  if (!ShapeHashes(f, max_nodes, &shape)) return std::nullopt;
  CanonicalFormula out;
  std::unordered_map<Formula, uint32_t> seen;
  std::unordered_map<PropId, uint32_t> letter_idx;
  std::vector<Formula> stack{f};
  size_t distinct = 0;
  while (!stack.empty()) {
    Formula g = stack.back();
    stack.pop_back();
    auto it = seen.find(g);
    if (it != seen.end()) {
      out.key.push_back(kBackRefTag);
      AppendVarint(&out.key, it->second);
      continue;
    }
    if (++distinct > max_nodes) return std::nullopt;
    seen.emplace(g, static_cast<uint32_t>(seen.size()));
    out.key.push_back(static_cast<char>(static_cast<uint8_t>(g->kind()) + 1));
    if (g->kind() == Kind::kAtom) {
      auto [lit, inserted] =
          letter_idx.emplace(g->atom(), static_cast<uint32_t>(letter_idx.size()));
      if (inserted) out.letters.push_back(g->atom());
      AppendVarint(&out.key, lit->second);
    }
    Formula c0 = g->child(0);
    Formula c1 = g->child(1);
    if ((g->kind() == Kind::kAnd || g->kind() == Kind::kOr) &&
        shape.at(c1) < shape.at(c0)) {
      std::swap(c0, c1);
    }
    // Reverse push so the first child's subtree serializes first.
    if (c1 != nullptr) stack.push_back(c1);
    if (c0 != nullptr) stack.push_back(c0);
  }
  out.fp = flat::Fp128::OfString(out.key);
  return out;
}

VerdictCache::VerdictCache(size_t capacity)
    : capacity_(std::max<size_t>(1, capacity)), lru_(capacity_) {}

bool VerdictCache::Lookup(const CanonicalFormula& cf, bool* satisfiable,
                          std::optional<UltimatelyPeriodicWord>* witness) {
  TIC_SPAN("verdict_cache.lookup");
  std::lock_guard<std::mutex> lock(mu_);
  const Entry* found = lru_.Find(cf.fp);
  if (found == nullptr) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    TIC_COUNTER_ADD("verdict_cache/misses", 1);
    return false;
  }
  const Entry& e = *found;
#ifndef NDEBUG
  assert(e.debug_key == cf.key && "VerdictCache: Fp128 fingerprint collision");
#endif
  *satisfiable = e.satisfiable;
  if (witness != nullptr) {
    witness->reset();
    if (e.has_witness) {
      UltimatelyPeriodicWord w;
      auto decode = [&cf](const std::vector<std::vector<uint32_t>>& states,
                          Word* dst) {
        for (const auto& trues : states) {
          PropState s;
          for (uint32_t idx : trues) {
            if (idx < cf.letters.size()) s.Set(cf.letters[idx], true);
          }
          dst->push_back(std::move(s));
        }
      };
      decode(e.prefix, &w.prefix);
      decode(e.loop, &w.loop);
      if (w.loop.empty()) w.loop.push_back(PropState());
      *witness = std::move(w);
    }
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  TIC_COUNTER_ADD("verdict_cache/hits", 1);
  return true;
}

void VerdictCache::Insert(const CanonicalFormula& cf, bool satisfiable,
                          const std::optional<UltimatelyPeriodicWord>& witness) {
  Entry e;
  e.satisfiable = satisfiable;
  if (witness.has_value()) {
    e.has_witness = true;
    std::unordered_map<PropId, uint32_t> inverse;
    for (size_t i = 0; i < cf.letters.size(); ++i) {
      inverse.emplace(cf.letters[i], static_cast<uint32_t>(i));
    }
    auto encode = [&inverse](const Word& states,
                             std::vector<std::vector<uint32_t>>* dst) {
      for (const PropState& s : states) {
        std::vector<uint32_t> trues;
        for (PropId p : s.trues()) {
          auto it = inverse.find(p);
          // Letters outside the formula are false by the witness convention;
          // dropping them here is what the reconstruction assumes.
          if (it != inverse.end()) trues.push_back(it->second);
        }
        std::sort(trues.begin(), trues.end());
        dst->push_back(std::move(trues));
      }
    };
    encode(witness->prefix, &e.prefix);
    encode(witness->loop, &e.loop);
  }
#ifndef NDEBUG
  e.debug_key = cf.key;
#endif

  std::lock_guard<std::mutex> lock(mu_);
  uint64_t evicted_before = lru_.evictions();
  lru_.Insert(cf.fp, std::move(e));
  uint64_t evicted = lru_.evictions() - evicted_before;
  if (evicted != 0) {
    evictions_.fetch_add(evicted, std::memory_order_relaxed);
    TIC_COUNTER_ADD("verdict_cache/evictions", 1);
  }
  entries_.store(lru_.size(), std::memory_order_relaxed);
}

VerdictCacheStats VerdictCache::stats() const {
  VerdictCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.entries = entries_.load(std::memory_order_relaxed);
  s.capacity = capacity_;
  return s;
}

}  // namespace ptl
}  // namespace tic
