#include "ptl/closure.h"

#include <unordered_map>

namespace tic {
namespace ptl {

Result<Closure> Closure::Build(Factory* factory, Formula nnf) {
  Closure cl;
  std::unordered_map<Formula, uint32_t> index;

  auto intern = [&](Formula f) -> uint32_t {
    auto [it, inserted] = index.emplace(f, static_cast<uint32_t>(cl.members_.size()));
    if (inserted) cl.members_.push_back(f);
    return it->second;
  };

  // Pass 1: pre-order traversal over the DAG in stored child order (the
  // factory canonicalizes And/Or operands by content fingerprint, so this
  // order — and hence the index assignment — is identical across runs).
  std::vector<Formula> stack{nnf};
  while (!stack.empty()) {
    Formula f = stack.back();
    stack.pop_back();
    if (index.count(f) > 0) continue;
    switch (f->kind()) {
      case Kind::kImplies:
        return Status::Internal("closure: Implies survived NNF");
      case Kind::kNot:
        if (f->child(0)->kind() != Kind::kAtom) {
          return Status::Internal("closure: negation on a non-atom survived NNF");
        }
        break;
      default:
        break;
    }
    intern(f);
    // Reverse push so child(0)'s subtree is numbered first.
    if (f->child(1) != nullptr && index.count(f->child(1)) == 0) {
      stack.push_back(f->child(1));
    }
    if (f->child(0) != nullptr && index.count(f->child(0)) == 0) {
      stack.push_back(f->child(0));
    }
  }
  cl.root_ = index.at(nnf);

  // Pass 2: append the derived X(f) members of the temporal operators (their
  // expansion rules assert them; the child of each is already a member).
  size_t num_subformulas = cl.members_.size();
  for (size_t i = 0; i < num_subformulas; ++i) {
    Kind k = cl.members_[i]->kind();
    if (k == Kind::kUntil || k == Kind::kRelease || k == Kind::kEventually ||
        k == Kind::kAlways) {
      intern(factory->Next(cl.members_[i]));
    }
  }

  // Pass 3: compile the per-index rules.
  cl.rules_.resize(cl.members_.size());
  cl.obligation_mask_ = FlatBits(cl.size());
  for (uint32_t i = 0; i < cl.size(); ++i) {
    Formula f = cl.members_[i];
    Rule& r = cl.rules_[i];
    switch (f->kind()) {
      case Kind::kTrue:
        r.op = Op::kTrue;
        break;
      case Kind::kFalse:
        r.op = Op::kFalse;
        break;
      case Kind::kAtom: {
        r.op = Op::kLitPos;
        r.atom = f->atom();
        auto it = index.find(factory->Not(f));
        if (it != index.end()) r.complement = it->second;
        break;
      }
      case Kind::kNot:
        r.op = Op::kLitNeg;
        r.a = index.at(f->child(0));
        r.complement = r.a;
        break;
      case Kind::kAnd:
        r.op = Op::kAnd;
        r.a = index.at(f->lhs());
        r.b = index.at(f->rhs());
        break;
      case Kind::kOr:
        r.op = Op::kOr;
        r.is_alpha = false;
        r.a = index.at(f->lhs());
        r.b = index.at(f->rhs());
        break;
      case Kind::kNext:
        r.op = Op::kNext;
        r.a = index.at(f->child(0));
        break;
      case Kind::kUntil:
        r.op = Op::kUntil;
        r.is_alpha = false;
        r.a = index.at(f->lhs());
        r.b = index.at(f->rhs());
        r.goal = r.b;
        r.next_self = index.at(factory->Next(f));
        cl.obligation_mask_.Set(i);
        break;
      case Kind::kRelease:
        r.op = Op::kRelease;
        r.is_alpha = false;
        r.a = index.at(f->lhs());
        r.b = index.at(f->rhs());
        r.next_self = index.at(factory->Next(f));
        break;
      case Kind::kEventually:
        r.op = Op::kEventually;
        r.is_alpha = false;
        r.a = index.at(f->child(0));
        r.goal = r.a;
        r.next_self = index.at(factory->Next(f));
        cl.obligation_mask_.Set(i);
        break;
      case Kind::kAlways:
        r.op = Op::kAlways;
        r.a = index.at(f->child(0));
        r.next_self = index.at(factory->Next(f));
        break;
      case Kind::kImplies:
        return Status::Internal("closure: Implies survived NNF");
    }
  }
  return cl;
}

}  // namespace ptl
}  // namespace tic
