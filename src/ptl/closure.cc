#include "ptl/closure.h"

#include "common/flat/flat_map.h"
#include "ptl/nnf.h"
#include "ptl/progress.h"
#include "ptl/tableau.h"

namespace tic {
namespace ptl {

namespace {

/// Formula -> closure-index map with a compile-time fast tier: closures at or
/// below the bitset engine's spill threshold (FlatBits::kInlineWords * 64 =
/// 256 members, the overwhelmingly common case) are indexed by a fully inline
/// fixed-capacity table — zero heap allocations to build the index. Larger
/// closures migrate once into a heap-backed flat table and stay there.
class ClosureIndex {
  static constexpr size_t kInlineMembers = FlatBits::kInlineWords * 64;

 public:
  /// Returns {index of f, inserted}.
  std::pair<uint32_t, bool> Emplace(Formula f, uint32_t next_index) {
    if (!spilled_) {
      auto [e, inserted] = small_.Emplace(f, next_index);
      if (e != nullptr) return {e->second, inserted};
      Spill();
    }
    auto [e, inserted] = big_.Emplace(f, next_index);
    return {e->second, inserted};
  }

  const uint32_t* Get(Formula f) const {
    return spilled_ ? big_.Get(f) : small_.Get(f);
  }
  bool Contains(Formula f) const { return Get(f) != nullptr; }

  /// \pre f was interned.
  uint32_t At(Formula f) const { return *Get(f); }

 private:
  void Spill() {
    big_.Reserve(2 * kInlineMembers);
    small_.ForEach([this](const auto& e) { big_.Emplace(e.first, e.second); });
    small_.Clear();
    spilled_ = true;
  }

  flat::FixedFlatMap<Formula, uint32_t, kInlineMembers> small_;
  flat::FlatMap<Formula, uint32_t> big_;
  bool spilled_ = false;
};

}  // namespace

Result<Closure> Closure::Build(Factory* factory, Formula nnf) {
  Closure cl;
  ClosureIndex index;

  auto intern = [&](Formula f) -> uint32_t {
    auto [idx, inserted] =
        index.Emplace(f, static_cast<uint32_t>(cl.members_.size()));
    if (inserted) cl.members_.push_back(f);
    return idx;
  };

  // Pass 1: pre-order traversal over the DAG in stored child order (the
  // factory canonicalizes And/Or operands by content fingerprint, so this
  // order — and hence the index assignment — is identical across runs).
  std::vector<Formula> stack{nnf};
  while (!stack.empty()) {
    Formula f = stack.back();
    stack.pop_back();
    if (index.Contains(f)) continue;
    switch (f->kind()) {
      case Kind::kImplies:
        return Status::Internal("closure: Implies survived NNF");
      case Kind::kNot:
        if (f->child(0)->kind() != Kind::kAtom) {
          return Status::Internal("closure: negation on a non-atom survived NNF");
        }
        break;
      default:
        break;
    }
    intern(f);
    // Reverse push so child(0)'s subtree is numbered first.
    if (f->child(1) != nullptr && !index.Contains(f->child(1))) {
      stack.push_back(f->child(1));
    }
    if (f->child(0) != nullptr && !index.Contains(f->child(0))) {
      stack.push_back(f->child(0));
    }
  }
  cl.root_ = index.At(nnf);

  // Pass 2: append the derived X(f) members of the temporal operators (their
  // expansion rules assert them; the child of each is already a member).
  size_t num_subformulas = cl.members_.size();
  for (size_t i = 0; i < num_subformulas; ++i) {
    Kind k = cl.members_[i]->kind();
    if (k == Kind::kUntil || k == Kind::kRelease || k == Kind::kEventually ||
        k == Kind::kAlways) {
      intern(factory->Next(cl.members_[i]));
    }
  }

  // Pass 3: compile the per-index rules.
  cl.rules_.resize(cl.members_.size());
  cl.obligation_mask_ = FlatBits(cl.size());
  for (uint32_t i = 0; i < cl.size(); ++i) {
    Formula f = cl.members_[i];
    Rule& r = cl.rules_[i];
    switch (f->kind()) {
      case Kind::kTrue:
        r.op = Op::kTrue;
        break;
      case Kind::kFalse:
        r.op = Op::kFalse;
        break;
      case Kind::kAtom: {
        r.op = Op::kLitPos;
        r.atom = f->atom();
        const uint32_t* neg = index.Get(factory->Not(f));
        if (neg != nullptr) r.complement = *neg;
        break;
      }
      case Kind::kNot:
        r.op = Op::kLitNeg;
        r.a = index.At(f->child(0));
        r.complement = r.a;
        break;
      case Kind::kAnd:
        r.op = Op::kAnd;
        r.a = index.At(f->lhs());
        r.b = index.At(f->rhs());
        break;
      case Kind::kOr:
        r.op = Op::kOr;
        r.is_alpha = false;
        r.a = index.At(f->lhs());
        r.b = index.At(f->rhs());
        break;
      case Kind::kNext:
        r.op = Op::kNext;
        r.a = index.At(f->child(0));
        break;
      case Kind::kUntil:
        r.op = Op::kUntil;
        r.is_alpha = false;
        r.a = index.At(f->lhs());
        r.b = index.At(f->rhs());
        r.goal = r.b;
        r.next_self = index.At(factory->Next(f));
        cl.obligation_mask_.Set(i);
        break;
      case Kind::kRelease:
        r.op = Op::kRelease;
        r.is_alpha = false;
        r.a = index.At(f->lhs());
        r.b = index.At(f->rhs());
        r.next_self = index.At(factory->Next(f));
        break;
      case Kind::kEventually:
        r.op = Op::kEventually;
        r.is_alpha = false;
        r.a = index.At(f->child(0));
        r.goal = r.a;
        r.next_self = index.At(factory->Next(f));
        cl.obligation_mask_.Set(i);
        break;
      case Kind::kAlways:
        r.op = Op::kAlways;
        r.a = index.At(f->child(0));
        r.next_self = index.At(factory->Next(f));
        break;
      case Kind::kImplies:
        return Status::Internal("closure: Implies survived NNF");
    }
  }
  return cl;
}

Result<CollapseExplanation> ExplainCollapse(Factory* factory, Formula last_live,
                                            const PropState& w,
                                            size_t max_sat_checks) {
  Formula nnf = ToNnf(factory, last_live);
  TIC_ASSIGN_OR_RETURN(Closure closure, Closure::Build(factory, nnf));
  CollapseExplanation best;
  // Pass 1: members that progress to False under `w` — the syntactic
  // collapse the automaton/progression backends detect. Smallest wins: the
  // tightest subformula is the most useful explanation.
  for (uint32_t i = 0; i < closure.size(); ++i) {
    Formula m = closure.member(i);
    if (m->kind() == Kind::kTrue || m->kind() == Kind::kFalse) continue;
    Result<Formula> prog = Progress(factory, m, w);
    if (!prog.ok()) continue;
    if ((*prog)->kind() != Kind::kFalse) continue;
    if (best.subformula == nullptr || m->size() < best.subformula->size()) {
      best.subformula = m;
      best.closure_index = i;
      best.progressed_to_false = true;
    }
  }
  if (best.subformula != nullptr) return best;
  // Pass 2: tableau-unsat without syntactic collapse (e.g. `a & !a` split
  // across conjuncts of a progressed residual). CheckSat per member is
  // exponential in the worst case, hence the cap — this runs once per
  // violation, not per update.
  TableauOptions topts;
  size_t checks = 0;
  for (uint32_t i = 0; i < closure.size() && checks < max_sat_checks; ++i) {
    Formula m = closure.member(i);
    if (m->kind() == Kind::kTrue || m->kind() == Kind::kFalse) continue;
    if (best.subformula != nullptr && m->size() >= best.subformula->size()) {
      continue;
    }
    Result<Formula> prog = Progress(factory, m, w);
    if (!prog.ok() || (*prog)->kind() == Kind::kTrue) continue;
    ++checks;
    Result<SatResult> sat = CheckSat(factory, *prog, topts);
    if (!sat.ok() || sat->satisfiable) continue;
    best.subformula = m;
    best.closure_index = i;
    best.progressed_to_false = false;
  }
  if (best.subformula == nullptr) {
    // Nothing smaller explains it; point at the whole residual.
    best.subformula = nnf;
    best.closure_index = closure.root();
  }
  return best;
}

}  // namespace ptl
}  // namespace tic
