#ifndef TIC_PTL_CLOSURE_H_
#define TIC_PTL_CLOSURE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "ptl/bitset.h"
#include "ptl/formula.h"
#include "ptl/word.h"

namespace tic {
namespace ptl {

/// \brief The Fischer–Ladner closure of an NNF formula with a dense index per
/// member, plus the precompiled alpha/beta expansion rule for each index.
///
/// The closure contains every subformula of the input plus `X(f)` for every
/// temporal member `f` (Until/Release/Eventually/Always) — exactly the
/// formulas the tableau expansion rules can ever assert — so a tableau state
/// is a subset of the closure and can be represented as a FlatBits of width
/// `size()`. Indices are assigned by first occurrence in a pre-order
/// traversal of the (hash-consed, content-fingerprint-canonicalized) formula
/// DAG, the same first-occurrence discipline the verdict cache uses for
/// letter numbering, so the indexing is identical across runs.
class Closure {
 public:
  /// Rule operator of one closure member. Alpha (non-branching) operators:
  /// True/False/literals/And/Next/Always; beta (branching): Or/Until/Release/
  /// Eventually.
  enum class Op : uint8_t {
    kTrue,
    kFalse,
    kLitPos,      ///< atom p          — clashes with `complement`
    kLitNeg,      ///< !p              — clashes with `complement`
    kAnd,         ///< {a, b}
    kOr,          ///< {a} or {b}
    kNext,        ///< elementary; `a` feeds the successor seed
    kUntil,       ///< {b} or {a, next_self};     goal = b
    kRelease,     ///< {b, a} or {b, next_self}
    kEventually,  ///< {a} or {next_self};        goal = a
    kAlways,      ///< {a, next_self}
  };

  static constexpr uint32_t kNone = UINT32_MAX;

  struct Rule {
    Op op = Op::kTrue;
    uint32_t a = kNone;           ///< lhs / only-child index
    uint32_t b = kNone;           ///< rhs index
    uint32_t next_self = kNone;   ///< index of X(f) for U/R/F/G members
    uint32_t complement = kNone;  ///< clashing literal index (literals only)
    uint32_t goal = kNone;        ///< eventuality goal index (U/F only)
    PropId atom = 0;              ///< letter of a kLitPos member
    bool is_alpha = true;
  };

  /// Builds the closure of `nnf`, which must be in negation normal form
  /// (negation on atoms only, no Implies) — `CheckSat` guarantees this.
  static Result<Closure> Build(Factory* factory, Formula nnf);

  uint32_t size() const { return static_cast<uint32_t>(members_.size()); }
  uint32_t root() const { return root_; }
  Formula member(uint32_t i) const { return members_[i]; }
  const Rule& rule(uint32_t i) const { return rules_[i]; }

  /// Bits of the Until/Eventually members: the obligations the lasso search
  /// must see fulfilled inside a self-fulfilling SCC.
  const FlatBits& obligation_mask() const { return obligation_mask_; }

 private:
  std::vector<Formula> members_;
  std::vector<Rule> rules_;
  FlatBits obligation_mask_;
  uint32_t root_ = 0;
};

/// \brief Back-reference from a collapsed monitor state to the closure: which
/// subformula of the last live residual became unsatisfiable when letter `w`
/// was consumed.
struct CollapseExplanation {
  Formula subformula = nullptr;  ///< closure member (NNF of the residual)
  uint32_t closure_index = Closure::kNone;
  bool progressed_to_false = false;  ///< false: unsat found via CheckSat
};

/// \brief Explains a residual collapse for verdict provenance: builds the
/// Fischer–Ladner closure of NNF(`last_live`) — the residual that entered the
/// violating state — and returns the smallest member that is unsatisfiable
/// after consuming `w`: first the smallest member that progresses to False
/// outright, otherwise (tableau-unsat without syntactic collapse) the
/// smallest member whose progression CheckSat refutes, capped at
/// `max_sat_checks` tableau runs. Falls back to the closure root when nothing
/// smaller explains the collapse, so the result is always usable. Cold-path
/// only — called once per monitor death, never per update.
Result<CollapseExplanation> ExplainCollapse(Factory* factory, Formula last_live,
                                            const PropState& w,
                                            size_t max_sat_checks = 128);

}  // namespace ptl
}  // namespace tic

#endif  // TIC_PTL_CLOSURE_H_
