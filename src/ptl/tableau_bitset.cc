#include "ptl/tableau_bitset.h"

#include <algorithm>
#include <cstring>
#include <deque>
#include <vector>

#include "common/flat/flat_map.h"
#include "common/flat/flat_set.h"
#include "common/telemetry/telemetry.h"
#include "ptl/bitset.h"
#include "ptl/closure.h"
#include "ptl/safety.h"
#include "ptl/tableau_bitset_internal.h"
#include "ptl/tableau_internal.h"

namespace tic {
namespace ptl {
namespace internal {

namespace {

// Safety fast path for syntactically safe formulas: iterative lazy DFS that
// stops at the first cycle (any infinite path is a model). Mirrors the legacy
// SafetySearch exactly — including what gets counted when — but the DFS stack
// is explicit: one resumable BranchEnumerator per path level instead of a
// native stack frame per state.
class BitsetSafetySearch : public EngineBase {
 public:
  using EngineBase::EngineBase;

  Result<bool> Run(UltimatelyPeriodicWord* witness) {
    levels_.emplace_back(FlatBits::kNpos,
                         BranchEnumerator(closure_, options_, stats_));
    TIC_RETURN_NOT_OK(levels_.back().enumerator.Start({closure_->root()}));

    FlatBits state(closure_->size());
    bool found = false;
    while (!levels_.empty() && !found) {
      Level& top = levels_.back();
      bool produced = false;
      TIC_RETURN_NOT_OK(top.enumerator.Next(&state, &produced));
      if (!produced) {
        // Every successor branch of this level's state failed.
        if (top.id != FlatBits::kNpos) {
          on_path_.Erase(top.id);
          path_.pop_back();
          MarkFailed(top.id);
        }
        levels_.pop_back();
        continue;
      }
      bool inserted = false;
      TIC_ASSIGN_OR_RETURN(uint32_t sid, table_.Intern(state, 0, &inserted));
      if (!top.seen.Insert(sid)) continue;  // per-expansion dedup
      if (top.id != FlatBits::kNpos) ++stats_->num_edges;

      if (const size_t* depth = on_path_.Get(sid)) {
        loop_start_ = *depth;  // cycle: an infinite path exists
        found = true;
        break;
      }
      if (sid < failed_.size() && failed_[sid]) continue;
      if (++stats_->num_states > options_->max_states) {
        return Status::ResourceExhausted(
            "safety search exceeded max_states = " +
            std::to_string(options_->max_states));
      }
      if (path_.size() > 100000) {
        return Status::ResourceExhausted(
            "safety search path exceeded 100000 states");
      }
      on_path_.Emplace(sid, path_.size());
      path_.push_back(sid);
      levels_.emplace_back(sid, BranchEnumerator(closure_, options_, stats_));
      TIC_RETURN_NOT_OK(levels_.back().enumerator.Start(SeedIndicesOf(sid)));
    }

    if (found) {
      witness->prefix.clear();
      witness->loop.clear();
      for (size_t i = 0; i < loop_start_; ++i) {
        witness->prefix.push_back(AssignmentOf(path_[i]));
      }
      for (size_t i = loop_start_; i < path_.size(); ++i) {
        witness->loop.push_back(AssignmentOf(path_[i]));
      }
    }
    return found;
  }

 private:
  struct Level {
    uint32_t id;  // path state expanded at this level; kNpos for the root seed
    BranchEnumerator enumerator;
    flat::FlatSet<uint32_t> seen;

    Level(uint32_t id_in, BranchEnumerator e)
        : id(id_in), enumerator(std::move(e)) {}
  };

  void MarkFailed(uint32_t id) {
    if (failed_.size() <= id) failed_.resize(id + 1, false);
    failed_[id] = true;
  }

  std::vector<Level> levels_;
  std::vector<uint32_t> path_;
  flat::FlatMap<uint32_t, size_t> on_path_;
  std::vector<bool> failed_;
  size_t loop_start_ = 0;
};

// General case: BFS-materialize the reachable tableau graph over interned
// bitset states, then Tarjan + the Lichtenstein–Pnueli self-fulfilling-SCC
// test, word-parallel over the closure's obligation mask.
class BitsetGraph : public EngineBase {
 public:
  using EngineBase::EngineBase;

  Status Build() {
    TIC_RETURN_NOT_OK(Cover({closure_->root()}, options_->max_states, &initial_ids_));
    size_t head = 0;
    while (head < table_.size()) {
      uint32_t id = static_cast<uint32_t>(head++);
      std::vector<uint32_t> succs;
      TIC_RETURN_NOT_OK(Cover(SeedIndicesOf(id), options_->max_states, &succs));
      stats_->num_edges += succs.size();
      edges_.push_back(std::move(succs));
    }
    stats_->num_states += table_.size();
    return Status::OK();
  }

  // Finds a reachable self-fulfilling SCC; fills `witness` when found.
  bool FindModel(UltimatelyPeriodicWord* witness) {
    scc_members_ = ComputeSccs(edges_, &scc_of_);
    for (size_t c = 0; c < scc_members_.size(); ++c) {
      if (!SccIsNontrivial(c)) continue;
      if (!SccIsSelfFulfilling(c)) continue;
      BuildWitness(c, witness);
      return true;
    }
    return false;
  }

 private:
  bool SccIsNontrivial(size_t c) const {
    const auto& members = scc_members_[c];
    if (members.size() > 1) return true;
    uint32_t v = members[0];
    for (uint32_t w : edges_[v]) {
      if (w == v) return true;
    }
    return false;
  }

  // An obligation (Until/Eventually) asserted anywhere in the SCC must have
  // its goal asserted somewhere in the SCC. Obligations and goals only occur
  // in member states, so both sides reduce to bits of the members' union.
  bool SccIsSelfFulfilling(size_t c) const {
    FlatBits all(closure_->size());
    for (uint32_t v : scc_members_[c]) all.OrWords(table_.Row(v));
    bool fulfilled = true;
    all.ForEachAnd(closure_->obligation_mask(), [&](uint32_t i) {
      if (!all.Test(closure_->rule(i).goal)) fulfilled = false;
    });
    return fulfilled;
  }

  // BFS path from any node in `sources` to a node satisfying `pred`,
  // optionally restricted to one SCC. Returns the node sequence including
  // both endpoints, or empty if unreachable.
  template <typename Pred>
  std::vector<uint32_t> Bfs(const std::vector<uint32_t>& sources, Pred pred,
                            int restrict_scc, bool require_step) const {
    std::vector<int64_t> parent(table_.size(), -2);  // -2 unvisited
    std::deque<uint32_t> queue;
    if (!require_step) {
      for (uint32_t s : sources) {
        if (pred(s)) return {s};
      }
    }
    for (uint32_t s : sources) {
      if (parent[s] == -2) {
        parent[s] = -1;
        queue.push_back(s);
      }
    }
    while (!queue.empty()) {
      uint32_t v = queue.front();
      queue.pop_front();
      for (uint32_t w : edges_[v]) {
        if (restrict_scc >= 0 &&
            scc_of_[w] != static_cast<uint32_t>(restrict_scc)) {
          continue;
        }
        if (pred(w)) {
          std::vector<uint32_t> path{w, v};
          int64_t p = parent[v];
          while (p >= 0) {
            path.push_back(static_cast<uint32_t>(p));
            p = parent[static_cast<uint32_t>(p)];
          }
          std::reverse(path.begin(), path.end());
          return path;
        }
        if (parent[w] == -2) {
          parent[w] = v;
          queue.push_back(w);
        }
      }
    }
    return {};
  }

  void BuildWitness(size_t c, UltimatelyPeriodicWord* witness) {
    // Stem: path from an initial state to some member r of the SCC.
    std::vector<uint32_t> stem = Bfs(
        initial_ids_, [&](uint32_t v) { return scc_of_[v] == c; }, -1, false);
    uint32_t r = stem.back();

    // Gather the distinct obligation-goal indices of the SCC.
    std::vector<uint32_t> goals;
    FlatBits row(closure_->size());
    for (uint32_t v : scc_members_[c]) {
      row.AssignWords(table_.Row(v));
      row.ForEachAnd(closure_->obligation_mask(), [&](uint32_t i) {
        uint32_t g = closure_->rule(i).goal;
        if (std::find(goals.begin(), goals.end(), g) == goals.end()) {
          goals.push_back(g);
        }
      });
    }

    // Cycle within the SCC from r visiting a state containing each goal, then
    // back to r; the SCC is strongly connected, so each hop exists.
    std::vector<uint32_t> cycle{r};
    uint32_t cur = r;
    for (uint32_t g : goals) {
      std::vector<uint32_t> hop = Bfs(
          {cur}, [&](uint32_t v) { return table_.RowTest(v, g); },
          static_cast<int>(c), false);
      for (size_t i = 1; i < hop.size(); ++i) cycle.push_back(hop[i]);
      if (!hop.empty()) cur = hop.back();
    }
    std::vector<uint32_t> back = Bfs(
        {cur}, [&](uint32_t v) { return v == r; }, static_cast<int>(c), true);
    for (size_t i = 1; i + 1 < back.size(); ++i) cycle.push_back(back[i]);
    // `back` ends at r; excluding the final r keeps the loop half-open.

    witness->prefix.clear();
    witness->loop.clear();
    for (size_t i = 0; i + 1 < stem.size(); ++i) {
      witness->prefix.push_back(AssignmentOf(stem[i]));
    }
    for (uint32_t v : cycle) witness->loop.push_back(AssignmentOf(v));
  }

  std::vector<std::vector<uint32_t>> edges_;
  std::vector<uint32_t> initial_ids_;
  std::vector<uint32_t> scc_of_;
  std::vector<std::vector<uint32_t>> scc_members_;
};

}  // namespace

Status CheckSatBitset(Factory* factory, Formula nnf, const TableauOptions& options,
                      bool* satisfiable, UltimatelyPeriodicWord* witness,
                      TableauStats* stats) {
  TIC_ASSIGN_OR_RETURN(Closure closure, [&] {
    TIC_SPAN("tableau.closure");
    return Closure::Build(factory, nnf);
  }());
  if (options.use_safety_fast_path && IsSyntacticallySafe(factory, nnf)) {
    BitsetSafetySearch search(&closure, &options, stats);
    TIC_ASSIGN_OR_RETURN(*satisfiable, search.Run(witness));
    return Status::OK();
  }
  BitsetGraph graph(&closure, &options, stats);
  TIC_RETURN_NOT_OK(graph.Build());
  *satisfiable = graph.FindModel(witness);
  return Status::OK();
}

}  // namespace internal
}  // namespace ptl
}  // namespace tic
