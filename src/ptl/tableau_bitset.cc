#include "ptl/tableau_bitset.h"

#include <algorithm>
#include <cstring>
#include <deque>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/telemetry/telemetry.h"
#include "ptl/bitset.h"
#include "ptl/closure.h"
#include "ptl/safety.h"
#include "ptl/tableau_internal.h"

namespace tic {
namespace ptl {
namespace internal {

namespace {

using Op = Closure::Op;
using Rule = Closure::Rule;

// Resumable depth-first enumerator of the fully expanded, locally consistent
// states covering a seed — the bitset counterpart of internal::Expander.
// Alpha (non-branching) rules fire in closure-index order off a bitset
// worklist; beta rules wait in a second worklist until the alpha queue drains
// (the engine's always-on equivalent of defer_branching), then the
// lowest-index beta member splits, with one explicit choice frame per split
// instead of a recursive call. Enumeration order is the pre-order of the
// branch tree, like the legacy expander; emitted states are not deduplicated
// here — callers intern them.
class BranchEnumerator {
 public:
  BranchEnumerator(const Closure* closure, const TableauOptions* options,
                   TableauStats* stats)
      : closure_(closure),
        options_(options),
        stats_(stats),
        done_(closure->size()),
        alpha_(closure->size()),
        beta_(closure->size()) {}

  // Begins enumeration over the cover of `seed` (closure indices). Counts one
  // expansion, like the legacy expander's initial Rec entry.
  Status Start(const std::vector<uint32_t>& seed) {
    done_ = FlatBits(closure_->size());
    alpha_ = FlatBits(closure_->size());
    beta_ = FlatBits(closure_->size());
    frames_.clear();
    exhausted_ = false;
    if (++stats_->num_expansions > options_->max_expansions) {
      exhausted_ = true;
      return Status::ResourceExhausted(
          "tableau exceeded max_expansions = " +
          std::to_string(options_->max_expansions));
    }
    for (uint32_t i : seed) Enqueue(i);
    return Status::OK();
  }

  // Produces the next state into `*out` and sets `*produced`; false means the
  // enumeration is exhausted. `*out` must have been constructed with the
  // closure width.
  Status Next(FlatBits* out, bool* produced) {
    *produced = false;
    if (exhausted_) return Status::OK();
    while (true) {
      // Alpha saturation: unit rules in ascending closure-index order.
      bool clash = false;
      uint32_t i;
      while ((i = alpha_.FindFirst()) != FlatBits::kNpos) {
        alpha_.Reset(i);
        if (done_.Test(i)) continue;
        const Rule& r = closure_->rule(i);
        switch (r.op) {
          case Op::kTrue:
            break;  // trivially holds; like legacy, never asserted into done
          case Op::kFalse:
            clash = true;
            break;
          case Op::kLitPos:
          case Op::kLitNeg:
            if (r.complement != Closure::kNone && done_.Test(r.complement)) {
              clash = true;
              break;
            }
            done_.Set(i);
            break;
          case Op::kAnd:
            done_.Set(i);
            Enqueue(r.a);
            Enqueue(r.b);
            break;
          case Op::kNext:
            done_.Set(i);  // elementary: feeds the successor seed
            break;
          case Op::kAlways:
            done_.Set(i);
            Enqueue(r.a);
            Enqueue(r.next_self);
            break;
          default:
            break;  // unreachable: beta ops never land on the alpha queue
        }
        if (clash) break;
      }
      if (clash) {
        if (!Backtrack()) return Status::OK();  // all branches closed
        continue;
      }

      uint32_t b = beta_.FindFirst();
      if (b == FlatBits::kNpos) {
        // Both queues drained without a clash: `done_` is a state. Position
        // at the innermost open choice before returning so the next call
        // resumes there.
        *out = done_;
        *produced = true;
        Backtrack();
        return Status::OK();
      }
      beta_.Reset(b);
      if (done_.Test(b)) continue;
      const Rule& r = closure_->rule(b);
      done_.Set(b);  // asserted on both alternatives, like legacy done.insert
      switch (r.op) {
        case Op::kOr:
          // Subsumption: a disjunct (of the flattened Or-tree) already
          // asserted discharges the disjunction without branching.
          if (options_->use_subsumption && OrSubsumed(b)) break;
          TIC_RETURN_NOT_OK(PushFrame(b));
          Enqueue(r.a);
          break;
        case Op::kUntil:
          if (options_->use_subsumption && done_.Test(r.b)) break;
          TIC_RETURN_NOT_OK(PushFrame(b));
          Enqueue(r.b);
          break;
        case Op::kRelease:
          if (options_->use_subsumption && done_.Test(r.a)) {
            // Releasing side already asserted: B alone discharges A R B now.
            Enqueue(r.b);
            break;
          }
          TIC_RETURN_NOT_OK(PushFrame(b));
          Enqueue(r.b);
          Enqueue(r.a);
          break;
        case Op::kEventually:
          if (options_->use_subsumption && done_.Test(r.a)) break;
          TIC_RETURN_NOT_OK(PushFrame(b));
          Enqueue(r.a);
          break;
        default:
          break;  // unreachable: alpha ops never land on the beta queue
      }
    }
  }

 private:
  struct Frame {
    FlatBits done, alpha, beta;
    uint32_t formula;
  };

  void Enqueue(uint32_t i) {
    if (done_.Test(i)) return;
    if (closure_->rule(i).is_alpha) {
      alpha_.Set(i);
    } else {
      beta_.Set(i);
    }
  }

  // True if some leaf of the flattened Or-tree of member `i` is already
  // asserted. Walks the rule DAG lazily, like the legacy OrSubsumed — a
  // precomputed per-Or leaf list would be quadratic in the closure size on
  // deep disjunction chains.
  bool OrSubsumed(uint32_t i) {
    scratch_.clear();
    scratch_.push_back(closure_->rule(i).a);
    scratch_.push_back(closure_->rule(i).b);
    while (!scratch_.empty()) {
      uint32_t g = scratch_.back();
      scratch_.pop_back();
      const Rule& r = closure_->rule(g);
      if (r.op == Op::kOr) {
        scratch_.push_back(r.a);
        scratch_.push_back(r.b);
        continue;
      }
      if (done_.Test(g)) return true;
    }
    return false;
  }

  // Snapshots the branch state before applying the first alternative of a
  // split. Counts one expansion — the legacy engine's recursive Rec call for
  // the left alternative — and enforces the branch-depth budget.
  Status PushFrame(uint32_t formula) {
    if (++stats_->num_expansions > options_->max_expansions) {
      exhausted_ = true;
      return Status::ResourceExhausted(
          "tableau exceeded max_expansions = " +
          std::to_string(options_->max_expansions));
    }
    if (frames_.size() + 1 > options_->max_branch_depth) {
      exhausted_ = true;
      return Status::ResourceExhausted(
          "tableau branch depth exceeded max_branch_depth = " +
          std::to_string(options_->max_branch_depth));
    }
    frames_.push_back(Frame{done_, alpha_, beta_, formula});
    return Status::OK();
  }

  // Restores the innermost choice point and applies its second alternative;
  // false when no choice point remains (enumeration exhausted).
  bool Backtrack() {
    if (frames_.empty()) {
      exhausted_ = true;
      return false;
    }
    Frame fr = std::move(frames_.back());
    frames_.pop_back();
    done_ = std::move(fr.done);
    alpha_ = std::move(fr.alpha);
    beta_ = std::move(fr.beta);
    const Rule& r = closure_->rule(fr.formula);
    switch (r.op) {
      case Op::kOr:
        Enqueue(r.b);
        break;
      case Op::kUntil:
        Enqueue(r.a);
        Enqueue(r.next_self);
        break;
      case Op::kRelease:
        Enqueue(r.b);
        Enqueue(r.next_self);
        break;
      case Op::kEventually:
        Enqueue(r.next_self);
        break;
      default:
        break;
    }
    return true;
  }

  const Closure* closure_;
  const TableauOptions* options_;
  TableauStats* stats_;
  FlatBits done_, alpha_, beta_;
  std::vector<Frame> frames_;
  std::vector<uint32_t> scratch_;  // OrSubsumed walk stack
  bool exhausted_ = false;
};

// State dedup: open-addressing (linear probing, power-of-two capacity) over
// bitset states stored row-wise in one contiguous arena. A probe touches the
// hash vector and, only on a candidate match, one memcmp of the row — no
// per-state allocation, no pointer-chasing comparator. Row pointers are
// invalidated by Intern (the arena grows); do not hold them across calls.
class StateTable {
 public:
  explicit StateTable(uint32_t words_per_state)
      : words_(words_per_state), slots_(kInitialSlots, UINT32_MAX) {}

  size_t size() const { return hashes_.size(); }

  const uint64_t* Row(uint32_t id) const {
    return arena_.data() + static_cast<size_t>(id) * words_;
  }

  bool RowTest(uint32_t id, uint32_t bit) const {
    return (Row(id)[bit >> 6] >> (bit & 63)) & 1u;
  }

  // Interns `s`, minting a new id on first sight; `max_states` of 0 means
  // unlimited (the safety search budgets visited states, not interned ones).
  Result<uint32_t> Intern(const FlatBits& s, size_t max_states, bool* inserted) {
    *inserted = false;
    uint64_t h = s.Hash();
    size_t mask = slots_.size() - 1;
    size_t pos = static_cast<size_t>(h) & mask;
    while (slots_[pos] != UINT32_MAX) {
      uint32_t id = slots_[pos];
      if (hashes_[id] == h &&
          std::memcmp(Row(id), s.words(), words_ * sizeof(uint64_t)) == 0) {
        return id;
      }
      pos = (pos + 1) & mask;
    }
    if (max_states != 0 && size() >= max_states) {
      return Status::ResourceExhausted("tableau exceeded max_states = " +
                                       std::to_string(max_states));
    }
    uint32_t id = static_cast<uint32_t>(hashes_.size());
    hashes_.push_back(h);
    arena_.insert(arena_.end(), s.words(), s.words() + words_);
    slots_[pos] = id;
    *inserted = true;
    if (hashes_.size() * 10 >= slots_.size() * 7) Grow();
    return id;
  }

 private:
  static constexpr size_t kInitialSlots = 64;

  void Grow() {
    std::vector<uint32_t> fresh(slots_.size() * 2, UINT32_MAX);
    size_t mask = fresh.size() - 1;
    for (uint32_t id = 0; id < hashes_.size(); ++id) {
      size_t pos = static_cast<size_t>(hashes_[id]) & mask;
      while (fresh[pos] != UINT32_MAX) pos = (pos + 1) & mask;
      fresh[pos] = id;
    }
    slots_ = std::move(fresh);
  }

  uint32_t words_;
  std::vector<uint64_t> arena_;   // state id -> row of `words_` words
  std::vector<uint64_t> hashes_;  // state id -> full hash
  std::vector<uint32_t> slots_;   // open-addressing table over ids
};

// Shared scaffolding of the two searches: closure-derived masks, the state
// table, and per-state helpers.
class EngineBase {
 public:
  EngineBase(const Closure* closure, const TableauOptions* options,
             TableauStats* stats)
      : closure_(closure),
        options_(options),
        stats_(stats),
        words_per_state_((closure->size() + 63) / 64),
        table_(words_per_state_),
        enumerator_(closure, options, stats),
        next_mask_(closure->size()),
        lit_mask_(closure->size()),
        row_tmp_(closure->size()) {
    for (uint32_t i = 0; i < closure->size(); ++i) {
      Op op = closure->rule(i).op;
      if (op == Op::kNext) next_mask_.Set(i);
      if (op == Op::kLitPos) lit_mask_.Set(i);
    }
  }

 protected:
  // Enumerates the cover of `seed`, interning each state; `out_ids` receives
  // the distinct successor ids in first-emission order (per-expansion dedup,
  // like the legacy ExpandEach seen-set).
  Status Cover(const std::vector<uint32_t>& seed, size_t max_states,
               std::vector<uint32_t>* out_ids) {
    TIC_RETURN_NOT_OK(enumerator_.Start(seed));
    FlatBits state(closure_->size());
    std::unordered_set<uint32_t> seen;
    while (true) {
      bool produced = false;
      TIC_RETURN_NOT_OK(enumerator_.Next(&state, &produced));
      if (!produced) break;
      bool inserted = false;
      TIC_ASSIGN_OR_RETURN(uint32_t id, table_.Intern(state, max_states, &inserted));
      if (seen.insert(id).second) out_ids->push_back(id);
    }
    return Status::OK();
  }

  // Next-time obligations of a fully expanded state: X f bits map to f.
  std::vector<uint32_t> SeedIndicesOf(uint32_t id) {
    row_tmp_.AssignWords(table_.Row(id));
    std::vector<uint32_t> seed;
    row_tmp_.ForEachAnd(next_mask_,
                        [&](uint32_t i) { seed.push_back(closure_->rule(i).a); });
    return seed;
  }

  // The propositional assignment a state induces: positive atoms true.
  PropState AssignmentOf(uint32_t id) {
    PropState st;
    row_tmp_.AssignWords(table_.Row(id));
    row_tmp_.ForEachAnd(lit_mask_, [&](uint32_t i) {
      st.Set(closure_->rule(i).atom, true);
    });
    return st;
  }

  const Closure* closure_;
  const TableauOptions* options_;
  TableauStats* stats_;
  uint32_t words_per_state_;
  StateTable table_;
  BranchEnumerator enumerator_;
  FlatBits next_mask_;  // bits of the X-members
  FlatBits lit_mask_;   // bits of the positive literals
  FlatBits row_tmp_;
};

// Safety fast path for syntactically safe formulas: iterative lazy DFS that
// stops at the first cycle (any infinite path is a model). Mirrors the legacy
// SafetySearch exactly — including what gets counted when — but the DFS stack
// is explicit: one resumable BranchEnumerator per path level instead of a
// native stack frame per state.
class BitsetSafetySearch : public EngineBase {
 public:
  using EngineBase::EngineBase;

  Result<bool> Run(UltimatelyPeriodicWord* witness) {
    levels_.emplace_back(FlatBits::kNpos,
                         BranchEnumerator(closure_, options_, stats_));
    TIC_RETURN_NOT_OK(levels_.back().enumerator.Start({closure_->root()}));

    FlatBits state(closure_->size());
    bool found = false;
    while (!levels_.empty() && !found) {
      Level& top = levels_.back();
      bool produced = false;
      TIC_RETURN_NOT_OK(top.enumerator.Next(&state, &produced));
      if (!produced) {
        // Every successor branch of this level's state failed.
        if (top.id != FlatBits::kNpos) {
          on_path_.erase(top.id);
          path_.pop_back();
          MarkFailed(top.id);
        }
        levels_.pop_back();
        continue;
      }
      bool inserted = false;
      TIC_ASSIGN_OR_RETURN(uint32_t sid, table_.Intern(state, 0, &inserted));
      if (!top.seen.insert(sid).second) continue;  // per-expansion dedup
      if (top.id != FlatBits::kNpos) ++stats_->num_edges;

      auto it = on_path_.find(sid);
      if (it != on_path_.end()) {
        loop_start_ = it->second;  // cycle: an infinite path exists
        found = true;
        break;
      }
      if (sid < failed_.size() && failed_[sid]) continue;
      if (++stats_->num_states > options_->max_states) {
        return Status::ResourceExhausted(
            "safety search exceeded max_states = " +
            std::to_string(options_->max_states));
      }
      if (path_.size() > 100000) {
        return Status::ResourceExhausted(
            "safety search path exceeded 100000 states");
      }
      on_path_.emplace(sid, path_.size());
      path_.push_back(sid);
      levels_.emplace_back(sid, BranchEnumerator(closure_, options_, stats_));
      TIC_RETURN_NOT_OK(levels_.back().enumerator.Start(SeedIndicesOf(sid)));
    }

    if (found) {
      witness->prefix.clear();
      witness->loop.clear();
      for (size_t i = 0; i < loop_start_; ++i) {
        witness->prefix.push_back(AssignmentOf(path_[i]));
      }
      for (size_t i = loop_start_; i < path_.size(); ++i) {
        witness->loop.push_back(AssignmentOf(path_[i]));
      }
    }
    return found;
  }

 private:
  struct Level {
    uint32_t id;  // path state expanded at this level; kNpos for the root seed
    BranchEnumerator enumerator;
    std::unordered_set<uint32_t> seen;

    Level(uint32_t id_in, BranchEnumerator e)
        : id(id_in), enumerator(std::move(e)) {}
  };

  void MarkFailed(uint32_t id) {
    if (failed_.size() <= id) failed_.resize(id + 1, false);
    failed_[id] = true;
  }

  std::vector<Level> levels_;
  std::vector<uint32_t> path_;
  std::unordered_map<uint32_t, size_t> on_path_;
  std::vector<bool> failed_;
  size_t loop_start_ = 0;
};

// General case: BFS-materialize the reachable tableau graph over interned
// bitset states, then Tarjan + the Lichtenstein–Pnueli self-fulfilling-SCC
// test, word-parallel over the closure's obligation mask.
class BitsetGraph : public EngineBase {
 public:
  using EngineBase::EngineBase;

  Status Build() {
    TIC_RETURN_NOT_OK(Cover({closure_->root()}, options_->max_states, &initial_ids_));
    size_t head = 0;
    while (head < table_.size()) {
      uint32_t id = static_cast<uint32_t>(head++);
      std::vector<uint32_t> succs;
      TIC_RETURN_NOT_OK(Cover(SeedIndicesOf(id), options_->max_states, &succs));
      stats_->num_edges += succs.size();
      edges_.push_back(std::move(succs));
    }
    stats_->num_states += table_.size();
    return Status::OK();
  }

  // Finds a reachable self-fulfilling SCC; fills `witness` when found.
  bool FindModel(UltimatelyPeriodicWord* witness) {
    scc_members_ = ComputeSccs(edges_, &scc_of_);
    for (size_t c = 0; c < scc_members_.size(); ++c) {
      if (!SccIsNontrivial(c)) continue;
      if (!SccIsSelfFulfilling(c)) continue;
      BuildWitness(c, witness);
      return true;
    }
    return false;
  }

 private:
  bool SccIsNontrivial(size_t c) const {
    const auto& members = scc_members_[c];
    if (members.size() > 1) return true;
    uint32_t v = members[0];
    for (uint32_t w : edges_[v]) {
      if (w == v) return true;
    }
    return false;
  }

  // An obligation (Until/Eventually) asserted anywhere in the SCC must have
  // its goal asserted somewhere in the SCC. Obligations and goals only occur
  // in member states, so both sides reduce to bits of the members' union.
  bool SccIsSelfFulfilling(size_t c) const {
    FlatBits all(closure_->size());
    for (uint32_t v : scc_members_[c]) all.OrWords(table_.Row(v));
    bool fulfilled = true;
    all.ForEachAnd(closure_->obligation_mask(), [&](uint32_t i) {
      if (!all.Test(closure_->rule(i).goal)) fulfilled = false;
    });
    return fulfilled;
  }

  // BFS path from any node in `sources` to a node satisfying `pred`,
  // optionally restricted to one SCC. Returns the node sequence including
  // both endpoints, or empty if unreachable.
  template <typename Pred>
  std::vector<uint32_t> Bfs(const std::vector<uint32_t>& sources, Pred pred,
                            int restrict_scc, bool require_step) const {
    std::vector<int64_t> parent(table_.size(), -2);  // -2 unvisited
    std::deque<uint32_t> queue;
    if (!require_step) {
      for (uint32_t s : sources) {
        if (pred(s)) return {s};
      }
    }
    for (uint32_t s : sources) {
      if (parent[s] == -2) {
        parent[s] = -1;
        queue.push_back(s);
      }
    }
    while (!queue.empty()) {
      uint32_t v = queue.front();
      queue.pop_front();
      for (uint32_t w : edges_[v]) {
        if (restrict_scc >= 0 &&
            scc_of_[w] != static_cast<uint32_t>(restrict_scc)) {
          continue;
        }
        if (pred(w)) {
          std::vector<uint32_t> path{w, v};
          int64_t p = parent[v];
          while (p >= 0) {
            path.push_back(static_cast<uint32_t>(p));
            p = parent[static_cast<uint32_t>(p)];
          }
          std::reverse(path.begin(), path.end());
          return path;
        }
        if (parent[w] == -2) {
          parent[w] = v;
          queue.push_back(w);
        }
      }
    }
    return {};
  }

  void BuildWitness(size_t c, UltimatelyPeriodicWord* witness) {
    // Stem: path from an initial state to some member r of the SCC.
    std::vector<uint32_t> stem = Bfs(
        initial_ids_, [&](uint32_t v) { return scc_of_[v] == c; }, -1, false);
    uint32_t r = stem.back();

    // Gather the distinct obligation-goal indices of the SCC.
    std::vector<uint32_t> goals;
    FlatBits row(closure_->size());
    for (uint32_t v : scc_members_[c]) {
      row.AssignWords(table_.Row(v));
      row.ForEachAnd(closure_->obligation_mask(), [&](uint32_t i) {
        uint32_t g = closure_->rule(i).goal;
        if (std::find(goals.begin(), goals.end(), g) == goals.end()) {
          goals.push_back(g);
        }
      });
    }

    // Cycle within the SCC from r visiting a state containing each goal, then
    // back to r; the SCC is strongly connected, so each hop exists.
    std::vector<uint32_t> cycle{r};
    uint32_t cur = r;
    for (uint32_t g : goals) {
      std::vector<uint32_t> hop = Bfs(
          {cur}, [&](uint32_t v) { return table_.RowTest(v, g); },
          static_cast<int>(c), false);
      for (size_t i = 1; i < hop.size(); ++i) cycle.push_back(hop[i]);
      if (!hop.empty()) cur = hop.back();
    }
    std::vector<uint32_t> back = Bfs(
        {cur}, [&](uint32_t v) { return v == r; }, static_cast<int>(c), true);
    for (size_t i = 1; i + 1 < back.size(); ++i) cycle.push_back(back[i]);
    // `back` ends at r; excluding the final r keeps the loop half-open.

    witness->prefix.clear();
    witness->loop.clear();
    for (size_t i = 0; i + 1 < stem.size(); ++i) {
      witness->prefix.push_back(AssignmentOf(stem[i]));
    }
    for (uint32_t v : cycle) witness->loop.push_back(AssignmentOf(v));
  }

  std::vector<std::vector<uint32_t>> edges_;
  std::vector<uint32_t> initial_ids_;
  std::vector<uint32_t> scc_of_;
  std::vector<std::vector<uint32_t>> scc_members_;
};

}  // namespace

Status CheckSatBitset(Factory* factory, Formula nnf, const TableauOptions& options,
                      bool* satisfiable, UltimatelyPeriodicWord* witness,
                      TableauStats* stats) {
  TIC_ASSIGN_OR_RETURN(Closure closure, [&] {
    TIC_SPAN("tableau.closure");
    return Closure::Build(factory, nnf);
  }());
  if (options.use_safety_fast_path && IsSyntacticallySafe(factory, nnf)) {
    BitsetSafetySearch search(&closure, &options, stats);
    TIC_ASSIGN_OR_RETURN(*satisfiable, search.Run(witness));
    return Status::OK();
  }
  BitsetGraph graph(&closure, &options, stats);
  TIC_RETURN_NOT_OK(graph.Build());
  *satisfiable = graph.FindModel(witness);
  return Status::OK();
}

}  // namespace internal
}  // namespace ptl
}  // namespace tic
