#include "ptl/safety.h"

#include <unordered_set>
#include <vector>

#include "ptl/nnf.h"
#include "ptl/progress.h"
#include "ptl/tableau.h"
#include "ptl/word.h"

namespace tic {
namespace ptl {

namespace {

// Iterative (explicit worklist) so arbitrarily deep formulas cannot overflow
// the native stack; the visited set keeps shared DAG nodes from re-expanding.
bool NnfHasKind(Formula f, Kind k1, Kind k2) {
  std::vector<Formula> stack{f};
  std::unordered_set<Formula> seen;
  while (!stack.empty()) {
    Formula g = stack.back();
    stack.pop_back();
    if (!seen.insert(g).second) continue;
    if (g->kind() == k1 || g->kind() == k2) return true;
    if (g->child(0) != nullptr) stack.push_back(g->child(0));
    if (g->child(1) != nullptr) stack.push_back(g->child(1));
  }
  return false;
}

bool NnfHasEventuality(Formula f) {
  return NnfHasKind(f, Kind::kUntil, Kind::kEventually);
}

bool NnfHasUniversality(Formula f) {
  return NnfHasKind(f, Kind::kRelease, Kind::kAlways);
}

}  // namespace

bool IsSyntacticallySafe(Factory* factory, Formula f) {
  return !NnfHasEventuality(ToNnf(factory, f));
}

bool IsSyntacticallyCoSafe(Factory* factory, Formula f) {
  return !NnfHasUniversality(ToNnf(factory, f));
}

namespace {

// The subsets of `props` as propositional states.
class StateSpace {
 public:
  explicit StateSpace(const std::vector<PropId>& props) : props_(props) {}

  size_t size() const { return size_t{1} << props_.size(); }

  PropState State(size_t code) const {
    PropState s;
    for (size_t i = 0; i < props_.size(); ++i) {
      if ((code >> i) & 1) s.Set(props_[i], true);
    }
    return s;
  }

 private:
  const std::vector<PropId>& props_;
};

// True when every finite prefix of the lasso `w` has a satisfiable residual
// under progression (i.e., every prefix of w extends to SOME model of f).
Result<bool> AllPrefixesExtendable(Factory* factory, Formula f,
                                   const UltimatelyPeriodicWord& w) {
  Formula residual = f;
  std::unordered_set<Formula> seen_at_loop_entry;
  size_t pos = 0;
  for (size_t guard = 0; guard < 10000; ++guard) {
    TIC_ASSIGN_OR_RETURN(SatResult sr, CheckSat(factory, residual));
    if (!sr.satisfiable) return false;
    if (pos >= w.prefix.size() && (pos - w.prefix.size()) % w.loop.size() == 0) {
      if (!seen_at_loop_entry.insert(residual).second) return true;  // cycled
    }
    TIC_ASSIGN_OR_RETURN(residual, Progress(factory, residual, w.StateAt(pos)));
    ++pos;
  }
  return Status::ResourceExhausted("residual sequence did not cycle");
}

}  // namespace

Result<bool> BoundedSafetyCheck(Factory* factory, Formula f,
                                const std::vector<PropId>& props, size_t horizon) {
  if (props.size() > 4 || horizon > 4) {
    return Status::InvalidArgument("BoundedSafetyCheck is an oracle for tiny inputs");
  }
  StateSpace space(props);
  size_t ns = space.size();

  // Enumerate lassos (stem, loop) with |stem| <= horizon, 1 <= |loop| <= horizon.
  // f fails the (bounded) safety condition iff some lasso falsifies f while all
  // of its finite prefixes remain extendable to models of f.
  for (size_t sl = 0; sl <= horizon; ++sl) {
    for (size_t ll = 1; ll <= horizon; ++ll) {
      size_t total = sl + ll;
      std::vector<size_t> idx(total, 0);
      while (true) {
        UltimatelyPeriodicWord w;
        for (size_t i = 0; i < sl; ++i) w.prefix.push_back(space.State(idx[i]));
        for (size_t i = sl; i < total; ++i) w.loop.push_back(space.State(idx[i]));

        TIC_ASSIGN_OR_RETURN(bool holds, Evaluate(w, f, 0));
        if (!holds) {
          TIC_ASSIGN_OR_RETURN(bool extendable, AllPrefixesExtendable(factory, f, w));
          if (extendable) return false;  // counterexample to safety
        }

        size_t d = 0;
        while (d < total && ++idx[d] == ns) {
          idx[d] = 0;
          ++d;
        }
        if (d == total) break;
      }
    }
  }
  return true;
}

}  // namespace ptl
}  // namespace tic
