#ifndef TIC_FOTL_AST_H_
#define TIC_FOTL_AST_H_

#include <cstdint>
#include <vector>

#include "common/interner.h"
#include "db/vocabulary.h"

namespace tic {
namespace fotl {

/// \brief Identifier of a (rigid/global) variable, interned by the owning
/// FormulaFactory. Variable values do not change with time (Section 2).
using VarId = SymbolId;

/// \brief A term: a variable or a constant symbol (paper, Section 2).
struct Term {
  enum class Kind : uint8_t { kVariable, kConstant };
  Kind kind;
  uint32_t id;  ///< VarId or ConstantId depending on kind

  static Term Var(VarId v) { return Term{Kind::kVariable, v}; }
  static Term Const(ConstantId c) { return Term{Kind::kConstant, c}; }

  bool is_variable() const { return kind == Kind::kVariable; }
  bool is_constant() const { return kind == Kind::kConstant; }

  bool operator==(const Term& o) const { return kind == o.kind && id == o.id; }
};

/// \brief Connectives of first-order temporal logic.
///
/// The base language of the paper has =, the boolean connectives, quantifiers,
/// Next/Until (future) and Prev/Since (past). The derived connectives
/// Eventually (sometime-in-the-future), Always, Once (sometime-in-the-past) and
/// Historically are kept first-class for readability; Desugar() removes them.
enum class NodeKind : uint8_t {
  kTrue,
  kFalse,
  kEquals,   ///< t1 = t2
  kAtom,     ///< p(t1,...,tr)
  kNot,
  kAnd,
  kOr,
  kImplies,
  kExists,
  kForall,
  kNext,          ///< O A  ("next time A")
  kUntil,         ///< A until B
  kPrev,          ///< previous time A
  kSince,         ///< A since B
  kEventually,    ///< <> A  == True until A
  kAlways,        ///< [] A  == !<>!A
  kOnce,          ///< sometime in the past
  kHistorically,  ///< always in the past
};

/// \brief True for the binary connectives (two formula children).
inline bool IsBinaryConnective(NodeKind k) {
  switch (k) {
    case NodeKind::kAnd:
    case NodeKind::kOr:
    case NodeKind::kImplies:
    case NodeKind::kUntil:
    case NodeKind::kSince:
      return true;
    default:
      return false;
  }
}

/// \brief True for the unary connectives (one formula child).
inline bool IsUnaryConnective(NodeKind k) {
  switch (k) {
    case NodeKind::kNot:
    case NodeKind::kNext:
    case NodeKind::kPrev:
    case NodeKind::kEventually:
    case NodeKind::kAlways:
    case NodeKind::kOnce:
    case NodeKind::kHistorically:
      return true;
    default:
      return false;
  }
}

/// \brief True for future-tense temporal connectives.
inline bool IsFutureConnective(NodeKind k) {
  switch (k) {
    case NodeKind::kNext:
    case NodeKind::kUntil:
    case NodeKind::kEventually:
    case NodeKind::kAlways:
      return true;
    default:
      return false;
  }
}

/// \brief True for past-tense temporal connectives.
inline bool IsPastConnective(NodeKind k) {
  switch (k) {
    case NodeKind::kPrev:
    case NodeKind::kSince:
    case NodeKind::kOnce:
    case NodeKind::kHistorically:
      return true;
    default:
      return false;
  }
}

inline bool IsTemporalConnective(NodeKind k) {
  return IsFutureConnective(k) || IsPastConnective(k);
}

inline bool IsQuantifier(NodeKind k) {
  return k == NodeKind::kExists || k == NodeKind::kForall;
}

class Node;
/// \brief A formula handle. Nodes are hash-consed by their FormulaFactory, so
/// pointer equality is structural equality (within one factory).
using Formula = const Node*;

/// \brief Immutable, hash-consed FOTL formula node. Create via FormulaFactory.
class Node {
 public:
  NodeKind kind() const { return kind_; }

  /// \pre kind() is unary or binary or a quantifier
  Formula child(size_t i) const { return children_[i]; }
  Formula lhs() const { return children_[0]; }
  Formula rhs() const { return children_[1]; }

  /// \pre kind() == kExists || kind() == kForall
  VarId var() const { return var_; }

  /// \pre kind() == kAtom
  PredicateId predicate() const { return predicate_; }
  /// \pre kind() == kAtom (argument list) or kEquals (the two terms)
  const std::vector<Term>& terms() const { return terms_; }

  /// Formula size |A|: number of connective/atom nodes (counted with
  /// multiplicity, i.e., as a tree), the measure used in Theorem 4.2.
  uint64_t size() const { return size_; }

  /// Free variables, sorted ascending.
  const std::vector<VarId>& free_vars() const { return free_vars_; }

  bool has_future() const { return has_future_; }
  bool has_past() const { return has_past_; }
  bool has_temporal() const { return has_future_ || has_past_; }
  bool has_quantifier() const { return has_quantifier_; }
  bool is_closed() const { return free_vars_.empty(); }
  /// Pure first-order: no temporal connectives anywhere (Section 2).
  bool is_pure_first_order() const { return !has_temporal(); }

  uint64_t hash() const { return hash_; }

 private:
  friend class FormulaFactory;
  Node() = default;

  NodeKind kind_ = NodeKind::kTrue;
  PredicateId predicate_ = 0;
  VarId var_ = 0;
  std::vector<Term> terms_;
  Formula children_[2] = {nullptr, nullptr};

  // Derived/cached data.
  uint64_t size_ = 1;
  uint64_t hash_ = 0;
  std::vector<VarId> free_vars_;
  bool has_future_ = false;
  bool has_past_ = false;
  bool has_quantifier_ = false;
};

}  // namespace fotl
}  // namespace tic

#endif  // TIC_FOTL_AST_H_
