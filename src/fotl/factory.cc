#include "fotl/factory.h"

#include <algorithm>

#include "common/hash.h"

namespace tic {
namespace fotl {

namespace {

uint64_t HashNode(const Node& n, NodeKind kind, PredicateId pred, VarId var,
                  const std::vector<Term>& terms, Formula c0, Formula c1) {
  (void)n;
  size_t seed = static_cast<size_t>(kind) * 0x9e3779b97f4a7c15ULL + 1;
  HashCombine(&seed, static_cast<size_t>(pred));
  HashCombine(&seed, static_cast<size_t>(var));
  for (const Term& t : terms) {
    HashCombine(&seed, static_cast<size_t>(t.kind));
    HashCombine(&seed, static_cast<size_t>(t.id));
  }
  // Child content fingerprints, not addresses: node hashes are then pure
  // functions of structure, identical in every run (and usable as
  // deterministic seeds by downstream memo tables).
  HashCombine(&seed, static_cast<size_t>(c0 ? c0->hash() : 0x243f6a8885a308d3ULL));
  HashCombine(&seed, static_cast<size_t>(c1 ? c1->hash() : 0x13198a2e03707344ULL));
  return seed;
}

// Sorted union of free-variable lists.
std::vector<VarId> UnionVars(const std::vector<VarId>& a, const std::vector<VarId>& b) {
  std::vector<VarId> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  return out;
}

}  // namespace

bool FormulaFactory::NodeKeyEq::operator()(const Node* a, const Node* b) const {
  return a->kind() == b->kind() &&
         (a->kind() != NodeKind::kAtom || a->predicate() == b->predicate()) &&
         a->terms() == b->terms() && a->child(0) == b->child(0) &&
         a->child(1) == b->child(1) &&
         (!IsQuantifier(a->kind()) || a->var() == b->var());
}

Formula FormulaFactory::Intern(Node&& proto) {
  proto.hash_ = HashNode(proto, proto.kind_, proto.predicate_, proto.var_, proto.terms_,
                         proto.children_[0], proto.children_[1]);
  auto it = cache_.find(&proto);
  if (it != cache_.end()) return it->second;

  // Compute cached metadata.
  uint64_t size = 1;
  bool fut = IsFutureConnective(proto.kind_);
  bool past = IsPastConnective(proto.kind_);
  bool quant = IsQuantifier(proto.kind_);
  std::vector<VarId> fv;
  for (int i = 0; i < 2; ++i) {
    Formula c = proto.children_[i];
    if (c == nullptr) continue;
    size += c->size();
    fut = fut || c->has_future();
    past = past || c->has_past();
    quant = quant || c->has_quantifier();
    fv = UnionVars(fv, c->free_vars());
  }
  for (const Term& t : proto.terms_) {
    if (t.is_variable()) {
      auto pos = std::lower_bound(fv.begin(), fv.end(), t.id);
      if (pos == fv.end() || *pos != t.id) fv.insert(pos, t.id);
    }
  }
  if (quant && IsQuantifier(proto.kind_)) {
    auto pos = std::lower_bound(fv.begin(), fv.end(), proto.var_);
    if (pos != fv.end() && *pos == proto.var_) fv.erase(pos);
  }
  proto.size_ = size;
  proto.has_future_ = fut;
  proto.has_past_ = past;
  proto.has_quantifier_ = quant;
  proto.free_vars_ = std::move(fv);

  nodes_.push_back(std::move(proto));
  Formula f = &nodes_.back();
  cache_.emplace(f, f);
  return f;
}

Formula FormulaFactory::True() {
  if (true_ == nullptr) {
    Node n;
    n.kind_ = NodeKind::kTrue;
    true_ = Intern(std::move(n));
  }
  return true_;
}

Formula FormulaFactory::False() {
  if (false_ == nullptr) {
    Node n;
    n.kind_ = NodeKind::kFalse;
    false_ = Intern(std::move(n));
  }
  return false_;
}

Formula FormulaFactory::Equals(Term t1, Term t2) {
  if (t1 == t2) return True();
  Node n;
  n.kind_ = NodeKind::kEquals;
  n.terms_ = {t1, t2};
  return Intern(std::move(n));
}

Result<Formula> FormulaFactory::Atom(PredicateId p, std::vector<Term> terms) {
  if (p >= vocab_->num_predicates()) {
    return Status::OutOfRange("predicate id out of range");
  }
  const PredicateInfo& info = vocab_->predicate(p);
  if (info.arity != terms.size()) {
    return Status::InvalidArgument("predicate " + info.name + " expects " +
                                   std::to_string(info.arity) + " arguments, got " +
                                   std::to_string(terms.size()));
  }
  Node n;
  n.kind_ = NodeKind::kAtom;
  n.predicate_ = p;
  n.terms_ = std::move(terms);
  return Intern(std::move(n));
}

Formula FormulaFactory::MakeUnary(NodeKind k, Formula a) {
  Node n;
  n.kind_ = k;
  n.children_[0] = a;
  return Intern(std::move(n));
}

Formula FormulaFactory::MakeBinary(NodeKind k, Formula a, Formula b) {
  Node n;
  n.kind_ = k;
  n.children_[0] = a;
  n.children_[1] = b;
  return Intern(std::move(n));
}

Formula FormulaFactory::MakeQuantifier(NodeKind k, VarId v, Formula a) {
  Node n;
  n.kind_ = k;
  n.var_ = v;
  n.children_[0] = a;
  return Intern(std::move(n));
}

Formula FormulaFactory::Not(Formula a) {
  if (a->kind() == NodeKind::kTrue) return False();
  if (a->kind() == NodeKind::kFalse) return True();
  if (a->kind() == NodeKind::kNot) return a->child(0);
  return MakeUnary(NodeKind::kNot, a);
}

Formula FormulaFactory::And(Formula a, Formula b) {
  if (a->kind() == NodeKind::kFalse || b->kind() == NodeKind::kFalse) return False();
  if (a->kind() == NodeKind::kTrue) return b;
  if (b->kind() == NodeKind::kTrue) return a;
  if (a == b) return a;
  return MakeBinary(NodeKind::kAnd, a, b);
}

Formula FormulaFactory::Or(Formula a, Formula b) {
  if (a->kind() == NodeKind::kTrue || b->kind() == NodeKind::kTrue) return True();
  if (a->kind() == NodeKind::kFalse) return b;
  if (b->kind() == NodeKind::kFalse) return a;
  if (a == b) return a;
  return MakeBinary(NodeKind::kOr, a, b);
}

Formula FormulaFactory::Implies(Formula a, Formula b) {
  if (a->kind() == NodeKind::kFalse || b->kind() == NodeKind::kTrue) return True();
  if (a->kind() == NodeKind::kTrue) return b;
  if (b->kind() == NodeKind::kFalse) return Not(a);
  if (a == b) return True();
  return MakeBinary(NodeKind::kImplies, a, b);
}

Formula FormulaFactory::AndAll(const std::vector<Formula>& fs) {
  Formula acc = True();
  for (Formula f : fs) acc = And(acc, f);
  return acc;
}

Formula FormulaFactory::OrAll(const std::vector<Formula>& fs) {
  Formula acc = False();
  for (Formula f : fs) acc = Or(acc, f);
  return acc;
}

Formula FormulaFactory::Exists(VarId v, Formula a) {
  if (a->kind() == NodeKind::kTrue || a->kind() == NodeKind::kFalse) return a;
  return MakeQuantifier(NodeKind::kExists, v, a);
}

Formula FormulaFactory::Forall(VarId v, Formula a) {
  if (a->kind() == NodeKind::kTrue || a->kind() == NodeKind::kFalse) return a;
  return MakeQuantifier(NodeKind::kForall, v, a);
}

Formula FormulaFactory::Next(Formula a) {
  if (a->kind() == NodeKind::kTrue || a->kind() == NodeKind::kFalse) return a;
  return MakeUnary(NodeKind::kNext, a);
}

Formula FormulaFactory::Until(Formula a, Formula b) {
  if (b->kind() == NodeKind::kTrue) return True();
  if (b->kind() == NodeKind::kFalse) return False();
  // True until B == Eventually B kept distinct only when built via Eventually().
  return MakeBinary(NodeKind::kUntil, a, b);
}

Formula FormulaFactory::Prev(Formula a) {
  // Note: Prev False == False, but Prev True != True (false at instant 0), so
  // only the False case folds.
  if (a->kind() == NodeKind::kFalse) return a;
  return MakeUnary(NodeKind::kPrev, a);
}

Formula FormulaFactory::Since(Formula a, Formula b) {
  if (b->kind() == NodeKind::kFalse) return False();
  // A since True == True (witness s = t).
  if (b->kind() == NodeKind::kTrue) return True();
  return MakeBinary(NodeKind::kSince, a, b);
}

Formula FormulaFactory::Eventually(Formula a) {
  if (a->kind() == NodeKind::kTrue || a->kind() == NodeKind::kFalse) return a;
  return MakeUnary(NodeKind::kEventually, a);
}

Formula FormulaFactory::Always(Formula a) {
  if (a->kind() == NodeKind::kTrue || a->kind() == NodeKind::kFalse) return a;
  return MakeUnary(NodeKind::kAlways, a);
}

Formula FormulaFactory::Once(Formula a) {
  if (a->kind() == NodeKind::kTrue || a->kind() == NodeKind::kFalse) return a;
  return MakeUnary(NodeKind::kOnce, a);
}

Formula FormulaFactory::Historically(Formula a) {
  if (a->kind() == NodeKind::kTrue || a->kind() == NodeKind::kFalse) return a;
  return MakeUnary(NodeKind::kHistorically, a);
}

}  // namespace fotl
}  // namespace tic
