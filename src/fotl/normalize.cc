#include "fotl/normalize.h"

#include <string>
#include <unordered_map>

#include "fotl/classify.h"
#include "fotl/transform.h"

namespace tic {
namespace fotl {

Result<Formula> MergeUniversal(FormulaFactory* factory,
                               const std::vector<Formula>& conjuncts) {
  if (conjuncts.empty()) return factory->True();

  // Widest prefix determines the shared one.
  size_t width = 0;
  for (Formula f : conjuncts) {
    Classification c = Classify(f);
    if (!c.universal) {
      return Status::NotSupported(
          "MergeUniversal requires universal conjuncts (forall* tense(Sigma_0))");
    }
    if (!c.closed) {
      return Status::InvalidArgument("MergeUniversal requires sentences");
    }
    width = std::max(width, c.external_universals.size());
  }

  // Fresh shared prefix variables: names like "$u0" cannot collide with
  // parser-produced variables ('$' is not an identifier character).
  std::vector<VarId> shared;
  shared.reserve(width);
  for (size_t i = 0; i < width; ++i) {
    shared.push_back(factory->InternVar("$u" + std::to_string(i)));
  }

  Formula merged_body = factory->True();
  for (Formula f : conjuncts) {
    std::vector<VarId> prefix;
    Formula body = nullptr;
    StripUniversalPrefix(f, &prefix, &body);
    std::unordered_map<VarId, Term> rename;
    for (size_t i = 0; i < prefix.size(); ++i) {
      rename.emplace(prefix[i], Term::Var(shared[i]));
    }
    TIC_ASSIGN_OR_RETURN(Formula renamed, SubstituteVars(factory, body, rename));
    merged_body = factory->And(merged_body, renamed);
  }

  Formula out = merged_body;
  for (auto it = shared.rbegin(); it != shared.rend(); ++it) {
    out = factory->Forall(*it, out);
  }
  return out;
}

}  // namespace fotl
}  // namespace tic
