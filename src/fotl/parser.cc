#include "fotl/parser.h"

#include <cctype>
#include <string>
#include <vector>

namespace tic {
namespace fotl {

namespace {

enum class Tok {
  kEnd,
  kIdent,
  kLParen,
  kRParen,
  kComma,
  kDot,
  kEq,
  kNeq,
  kBang,
  kAmp,
  kBar,
  kArrow,
};

struct Token {
  Tok kind;
  std::string text;
  size_t pos;
};

class Lexer {
 public:
  explicit Lexer(std::string_view in) : in_(in) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> out;
    size_t i = 0;
    while (i < in_.size()) {
      char c = in_[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      size_t start = i;
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t j = i;
        while (j < in_.size() && (std::isalnum(static_cast<unsigned char>(in_[j])) ||
                                  in_[j] == '_' || in_[j] == '\'')) {
          ++j;
        }
        out.push_back({Tok::kIdent, std::string(in_.substr(i, j - i)), start});
        i = j;
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        return Status::ParseError("numeric literals are not terms; declare a constant (at offset " +
                                  std::to_string(start) + ")");
      }
      switch (c) {
        case '(':
          out.push_back({Tok::kLParen, "(", start});
          ++i;
          break;
        case ')':
          out.push_back({Tok::kRParen, ")", start});
          ++i;
          break;
        case ',':
          out.push_back({Tok::kComma, ",", start});
          ++i;
          break;
        case '.':
          out.push_back({Tok::kDot, ".", start});
          ++i;
          break;
        case '=':
          out.push_back({Tok::kEq, "=", start});
          ++i;
          break;
        case '!':
          if (i + 1 < in_.size() && in_[i + 1] == '=') {
            out.push_back({Tok::kNeq, "!=", start});
            i += 2;
          } else {
            out.push_back({Tok::kBang, "!", start});
            ++i;
          }
          break;
        case '&':
          out.push_back({Tok::kAmp, "&", start});
          ++i;
          break;
        case '|':
          out.push_back({Tok::kBar, "|", start});
          ++i;
          break;
        case '-':
          if (i + 1 < in_.size() && in_[i + 1] == '>') {
            out.push_back({Tok::kArrow, "->", start});
            i += 2;
            break;
          }
          [[fallthrough]];
        default:
          return Status::ParseError(std::string("unexpected character '") + c +
                                    "' at offset " + std::to_string(start));
      }
    }
    out.push_back({Tok::kEnd, "", in_.size()});
    return out;
  }

 private:
  std::string_view in_;
};

bool IsKeyword(const std::string& s) {
  static const char* kKeywords[] = {
      "true",   "false",  "forall", "exists",     "until", "since",
      "not",    "and",    "or",     "implies",    "next",  "eventually",
      "always", "prev",   "once",   "historically",
      "X",      "F",      "G",      "Y",          "O",     "H"};
  for (const char* k : kKeywords) {
    if (s == k) return true;
  }
  return false;
}

class Parser {
 public:
  Parser(FormulaFactory* fac, std::vector<Token> toks)
      : fac_(fac), toks_(std::move(toks)) {}

  Result<Formula> Run() {
    TIC_ASSIGN_OR_RETURN(Formula f, ParseFormula());
    if (Peek().kind != Tok::kEnd) {
      return Err("trailing input after formula");
    }
    return f;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  Token Take() { return toks_[pos_ < toks_.size() - 1 ? pos_++ : pos_]; }
  bool Accept(Tok k) {
    if (Peek().kind == k) {
      Take();
      return true;
    }
    return false;
  }
  bool AcceptIdent(const char* word) {
    if (Peek().kind == Tok::kIdent && Peek().text == word) {
      Take();
      return true;
    }
    return false;
  }
  Status Err(const std::string& msg) const {
    return Status::ParseError(msg + " (near offset " + std::to_string(Peek().pos) + ")");
  }

  // formula := implies
  Result<Formula> ParseFormula() { return ParseImplies(); }

  // implies := or ( ('->' | 'implies') implies )?
  Result<Formula> ParseImplies() {
    TIC_ASSIGN_OR_RETURN(Formula lhs, ParseOr());
    if (Accept(Tok::kArrow) || AcceptIdent("implies")) {
      TIC_ASSIGN_OR_RETURN(Formula rhs, ParseImplies());
      return fac_->Implies(lhs, rhs);
    }
    return lhs;
  }

  // or := and ( ('|' | 'or') and )*
  Result<Formula> ParseOr() {
    TIC_ASSIGN_OR_RETURN(Formula lhs, ParseAnd());
    while (Peek().kind == Tok::kBar ||
           (Peek().kind == Tok::kIdent && Peek().text == "or")) {
      Take();
      TIC_ASSIGN_OR_RETURN(Formula rhs, ParseAnd());
      lhs = fac_->Or(lhs, rhs);
    }
    return lhs;
  }

  // and := until ( ('&' | 'and') until )*
  Result<Formula> ParseAnd() {
    TIC_ASSIGN_OR_RETURN(Formula lhs, ParseUntil());
    while (Peek().kind == Tok::kAmp ||
           (Peek().kind == Tok::kIdent && Peek().text == "and")) {
      Take();
      TIC_ASSIGN_OR_RETURN(Formula rhs, ParseUntil());
      lhs = fac_->And(lhs, rhs);
    }
    return lhs;
  }

  // until := unary ( ('until'|'since') until )?   right-assoc
  Result<Formula> ParseUntil() {
    TIC_ASSIGN_OR_RETURN(Formula lhs, ParseUnary());
    if (AcceptIdent("until")) {
      TIC_ASSIGN_OR_RETURN(Formula rhs, ParseUntil());
      return fac_->Until(lhs, rhs);
    }
    if (AcceptIdent("since")) {
      TIC_ASSIGN_OR_RETURN(Formula rhs, ParseUntil());
      return fac_->Since(lhs, rhs);
    }
    return lhs;
  }

  Result<Formula> ParseUnary() {
    if (Accept(Tok::kBang) || AcceptIdent("not")) {
      TIC_ASSIGN_OR_RETURN(Formula a, ParseUnary());
      return fac_->Not(a);
    }
    if (AcceptIdent("X") || AcceptIdent("next")) {
      TIC_ASSIGN_OR_RETURN(Formula a, ParseUnary());
      return fac_->Next(a);
    }
    if (AcceptIdent("F") || AcceptIdent("eventually")) {
      TIC_ASSIGN_OR_RETURN(Formula a, ParseUnary());
      return fac_->Eventually(a);
    }
    if (AcceptIdent("G") || AcceptIdent("always")) {
      TIC_ASSIGN_OR_RETURN(Formula a, ParseUnary());
      return fac_->Always(a);
    }
    if (AcceptIdent("Y") || AcceptIdent("prev")) {
      TIC_ASSIGN_OR_RETURN(Formula a, ParseUnary());
      return fac_->Prev(a);
    }
    if (AcceptIdent("O") || AcceptIdent("once")) {
      TIC_ASSIGN_OR_RETURN(Formula a, ParseUnary());
      return fac_->Once(a);
    }
    if (AcceptIdent("H") || AcceptIdent("historically")) {
      TIC_ASSIGN_OR_RETURN(Formula a, ParseUnary());
      return fac_->Historically(a);
    }
    if (Peek().kind == Tok::kIdent &&
        (Peek().text == "forall" || Peek().text == "exists")) {
      return ParseQuantifier();
    }
    return ParsePrimary();
  }

  Result<Formula> ParseQuantifier() {
    bool is_forall = Take().text == "forall";
    std::vector<VarId> vars;
    while (Peek().kind == Tok::kIdent && !IsKeyword(Peek().text)) {
      vars.push_back(fac_->InternVar(Take().text));
    }
    if (vars.empty()) return Err("quantifier needs at least one variable");
    if (!Accept(Tok::kDot)) return Err("expected '.' after quantified variables");
    TIC_ASSIGN_OR_RETURN(Formula body, ParseFormula());
    for (auto it = vars.rbegin(); it != vars.rend(); ++it) {
      body = is_forall ? fac_->Forall(*it, body) : fac_->Exists(*it, body);
    }
    return body;
  }

  Result<Term> ParseTerm() {
    if (Peek().kind != Tok::kIdent || IsKeyword(Peek().text)) {
      return Status::ParseError("expected a term (variable or constant) near offset " +
                                std::to_string(Peek().pos));
    }
    std::string name = Take().text;
    auto c = fac_->vocabulary()->FindConstant(name);
    if (c.ok()) return Term::Const(*c);
    return Term::Var(fac_->InternVar(name));
  }

  Result<Formula> ParsePrimary() {
    if (AcceptIdent("true")) return fac_->True();
    if (AcceptIdent("false")) return fac_->False();
    if (Accept(Tok::kLParen)) {
      TIC_ASSIGN_OR_RETURN(Formula f, ParseFormula());
      if (!Accept(Tok::kRParen)) return Err("expected ')'");
      return f;
    }
    if (Peek().kind != Tok::kIdent || IsKeyword(Peek().text)) {
      return Err("expected an atom");
    }
    // Predicate application?
    if (Peek(1).kind == Tok::kLParen) {
      std::string name = Take().text;
      TIC_ASSIGN_OR_RETURN(PredicateId p, fac_->vocabulary()->FindPredicate(name));
      Take();  // '('
      std::vector<Term> args;
      if (Peek().kind != Tok::kRParen) {
        while (true) {
          TIC_ASSIGN_OR_RETURN(Term t, ParseTerm());
          args.push_back(t);
          if (!Accept(Tok::kComma)) break;
        }
      }
      if (!Accept(Tok::kRParen)) return Err("expected ')' after atom arguments");
      return fac_->Atom(p, std::move(args));
    }
    // Equality / inequality.
    TIC_ASSIGN_OR_RETURN(Term lhs, ParseTerm());
    if (Accept(Tok::kEq)) {
      TIC_ASSIGN_OR_RETURN(Term rhs, ParseTerm());
      return fac_->Equals(lhs, rhs);
    }
    if (Accept(Tok::kNeq)) {
      TIC_ASSIGN_OR_RETURN(Term rhs, ParseTerm());
      return fac_->Not(fac_->Equals(lhs, rhs));
    }
    return Err("expected '=' or '!=' or a predicate application");
  }

  FormulaFactory* fac_;
  std::vector<Token> toks_;
  size_t pos_ = 0;
};

}  // namespace

Result<Formula> Parse(FormulaFactory* factory, std::string_view text) {
  Lexer lexer(text);
  TIC_ASSIGN_OR_RETURN(std::vector<Token> toks, lexer.Run());
  Parser parser(factory, std::move(toks));
  return parser.Run();
}

}  // namespace fotl
}  // namespace tic
