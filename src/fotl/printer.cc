#include "fotl/printer.h"

namespace tic {
namespace fotl {

namespace {

// Binding strength: higher binds tighter. Parenthesize a child whenever its
// precedence is lower than (or, for non-associative cases, equal to) the
// parent's requirement.
int Precedence(NodeKind k) {
  switch (k) {
    case NodeKind::kImplies:
      return 1;
    case NodeKind::kOr:
      return 2;
    case NodeKind::kAnd:
      return 3;
    case NodeKind::kUntil:
    case NodeKind::kSince:
      return 4;
    case NodeKind::kNot:
    case NodeKind::kNext:
    case NodeKind::kPrev:
    case NodeKind::kEventually:
    case NodeKind::kAlways:
    case NodeKind::kOnce:
    case NodeKind::kHistorically:
      return 5;
    case NodeKind::kExists:
    case NodeKind::kForall:
      return 0;  // quantifiers extend as far right as possible
    default:
      return 6;  // atoms and constants never need parens
  }
}

std::string TermToString(const FormulaFactory& fac, const Term& t) {
  if (t.is_variable()) return fac.VarName(t.id);
  return fac.vocabulary()->constant_name(t.id);
}

void Render(const FormulaFactory& fac, Formula f, int min_prec, std::string* out) {
  int prec = Precedence(f->kind());
  bool parens = prec < min_prec;
  if (parens) *out += "(";
  switch (f->kind()) {
    case NodeKind::kTrue:
      *out += "true";
      break;
    case NodeKind::kFalse:
      *out += "false";
      break;
    case NodeKind::kEquals:
      *out += TermToString(fac, f->terms()[0]);
      *out += " = ";
      *out += TermToString(fac, f->terms()[1]);
      break;
    case NodeKind::kAtom: {
      *out += fac.vocabulary()->predicate(f->predicate()).name;
      *out += "(";
      for (size_t i = 0; i < f->terms().size(); ++i) {
        if (i > 0) *out += ", ";
        *out += TermToString(fac, f->terms()[i]);
      }
      *out += ")";
      break;
    }
    case NodeKind::kNot:
      *out += "!";
      Render(fac, f->child(0), 5, out);
      break;
    case NodeKind::kNext:
      *out += "X ";
      Render(fac, f->child(0), 5, out);
      break;
    case NodeKind::kPrev:
      *out += "Y ";
      Render(fac, f->child(0), 5, out);
      break;
    case NodeKind::kEventually:
      *out += "F ";
      Render(fac, f->child(0), 5, out);
      break;
    case NodeKind::kAlways:
      *out += "G ";
      Render(fac, f->child(0), 5, out);
      break;
    case NodeKind::kOnce:
      *out += "O ";
      Render(fac, f->child(0), 5, out);
      break;
    case NodeKind::kHistorically:
      *out += "H ";
      Render(fac, f->child(0), 5, out);
      break;
    case NodeKind::kAnd:
      Render(fac, f->lhs(), 3, out);
      *out += " & ";
      Render(fac, f->rhs(), 4, out);
      break;
    case NodeKind::kOr:
      Render(fac, f->lhs(), 2, out);
      *out += " | ";
      Render(fac, f->rhs(), 3, out);
      break;
    case NodeKind::kImplies:
      // Right-associative.
      Render(fac, f->lhs(), 2, out);
      *out += " -> ";
      Render(fac, f->rhs(), 1, out);
      break;
    case NodeKind::kUntil:
      // Right-associative.
      Render(fac, f->lhs(), 5, out);
      *out += " until ";
      Render(fac, f->rhs(), 4, out);
      break;
    case NodeKind::kSince:
      Render(fac, f->lhs(), 5, out);
      *out += " since ";
      Render(fac, f->rhs(), 4, out);
      break;
    case NodeKind::kExists:
    case NodeKind::kForall: {
      *out += f->kind() == NodeKind::kExists ? "exists " : "forall ";
      // Coalesce runs of the same quantifier.
      Formula body = f;
      NodeKind q = f->kind();
      bool first = true;
      while (body->kind() == q) {
        if (!first) *out += " ";
        *out += fac.VarName(body->var());
        first = false;
        body = body->child(0);
      }
      *out += " . ";
      Render(fac, body, 0, out);
      break;
    }
  }
  if (parens) *out += ")";
}

}  // namespace

std::string ToString(const FormulaFactory& factory, Formula f) {
  std::string out;
  Render(factory, f, 0, &out);
  return out;
}

}  // namespace fotl
}  // namespace tic
