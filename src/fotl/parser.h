#ifndef TIC_FOTL_PARSER_H_
#define TIC_FOTL_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "fotl/factory.h"

namespace tic {
namespace fotl {

/// \brief Parses the library's concrete FOTL syntax.
///
/// Grammar (precedence low to high): `->` (right-assoc), `|`, `&`,
/// `until`/`since` (right-assoc), prefix unaries `! X F G Y O H` (with word
/// aliases `not next eventually always prev once historically`), then atoms.
/// Quantifiers `forall x y . A` / `exists x . A` extend maximally to the right.
/// Atoms: `p(t1, ..., tr)`, `t1 = t2`, `t1 != t2`, `true`, `false`.
///
/// An identifier in term position denotes a declared constant of the
/// vocabulary if one exists under that name, otherwise a variable.
///
/// Examples from the paper (Section 2):
///   `forall x . Sub(x) -> X G !Sub(x)`
///   `forall x y . !(x != y & Sub(x) & (!Fill(x) until
///        (Sub(y) & (!Fill(x) until (Fill(y) & !Fill(x))))))`
Result<Formula> Parse(FormulaFactory* factory, std::string_view text);

}  // namespace fotl
}  // namespace tic

#endif  // TIC_FOTL_PARSER_H_
