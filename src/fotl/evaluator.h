#ifndef TIC_FOTL_EVALUATOR_H_
#define TIC_FOTL_EVALUATOR_H_

#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "db/history.h"
#include "fotl/factory.h"

namespace tic {
namespace fotl {

/// \brief A valuation: variable -> universe element (rigid, Section 2).
using Valuation = std::unordered_map<VarId, Value>;

/// \brief Evaluates *future* FOTL formulas on a finitely-represented infinite
/// temporal database (prefix + loop), with quantifiers ranging over a given
/// finite domain.
///
/// Domain finiteness is justified by the relevant-element argument of
/// Lemma 4.1: elements outside every relation and constant are pairwise
/// indistinguishable, so quantification over the relevant set plus one fresh
/// element per quantified variable is *exact* for ordinary vocabularies.
/// When the formula mentions extended-vocabulary builtins (<=, succ, Zero),
/// irrelevant elements become distinguishable and evaluation is relative to
/// the supplied domain (active-domain semantics); callers must then supply a
/// domain that covers the positions of interest.
class PeriodicEvaluator {
 public:
  /// `db` must outlive the evaluator.
  PeriodicEvaluator(const UltimatelyPeriodicDb* db, std::vector<Value> domain)
      : db_(db), domain_(std::move(domain)) {}

  /// Truth of closed `f` at instant 0 (the paper's `D |= f`).
  Result<bool> Evaluate(Formula f) { return EvaluateAt(f, Valuation{}, 0); }

  /// Truth of `f` under `v` at normalized position `pos` in [0, prefix+loop).
  Result<bool> EvaluateAt(Formula f, const Valuation& v, size_t pos);

 private:
  struct MemoKey {
    Formula f;
    size_t pos;
    std::vector<Value> env;  // values of f's free vars, in sorted-var order
    bool operator==(const MemoKey& o) const {
      return f == o.f && pos == o.pos && env == o.env;
    }
  };
  struct MemoKeyHash {
    size_t operator()(const MemoKey& k) const;
  };

  size_t NumPositions() const { return db_->prefix_length() + db_->loop_length(); }
  size_t NextPos(size_t pos) const {
    size_t n = pos + 1;
    return n < NumPositions() ? n : db_->prefix_length();
  }

  Result<Value> ResolveTerm(const Term& t, const Valuation& v) const;
  Result<bool> Eval(Formula f, const Valuation& v, size_t pos);

  const UltimatelyPeriodicDb* db_;
  std::vector<Value> domain_;
  std::unordered_map<MemoKey, bool, MemoKeyHash> memo_;
};

/// \brief Evaluates a future FOTL *sentence* on `db` at instant 0, using the
/// relevant set of `db` plus `num_fresh` fresh elements as the quantifier
/// domain. When `num_fresh` is SIZE_MAX (default), one fresh element per
/// distinct bound variable of the sentence is used, which is exact for
/// builtin-free vocabularies.
Result<bool> EvaluateFuture(const UltimatelyPeriodicDb& db, Formula sentence,
                            size_t num_fresh = static_cast<size_t>(-1));

/// \brief Evaluates *past* FOTL formulas over a finite history, as used for
/// `G past` constraints (Proposition 2.1) and the past-FOTL baseline.
/// Quantifier domain handling is as in PeriodicEvaluator.
class FiniteHistoryEvaluator {
 public:
  FiniteHistoryEvaluator(const History* history, std::vector<Value> domain)
      : history_(history), domain_(std::move(domain)) {}

  /// Truth of past formula `f` under `v` at instant `t` < history length.
  Result<bool> EvaluateAt(Formula f, const Valuation& v, size_t t);

 private:
  struct MemoKey {
    Formula f;
    size_t t;
    std::vector<Value> env;
    bool operator==(const MemoKey& o) const {
      return f == o.f && t == o.t && env == o.env;
    }
  };
  struct MemoKeyHash {
    size_t operator()(const MemoKey& k) const;
  };

  Result<Value> ResolveTerm(const Term& t, const Valuation& v) const;
  Result<bool> Eval(Formula f, const Valuation& v, size_t t);

  const History* history_;
  std::vector<Value> domain_;
  std::unordered_map<MemoKey, bool, MemoKeyHash> memo_;
};

/// \brief Number of distinct bound variables of `f` (used to size the fresh
/// part of quantifier domains).
size_t CountDistinctBoundVars(Formula f);

/// \brief Evaluates a rigid builtin on concrete elements.
bool EvaluateBuiltin(Builtin b, const std::vector<Value>& args);

}  // namespace fotl
}  // namespace tic

#endif  // TIC_FOTL_EVALUATOR_H_
