#ifndef TIC_FOTL_CLASSIFY_H_
#define TIC_FOTL_CLASSIFY_H_

#include <vector>

#include "fotl/ast.h"

namespace tic {
namespace fotl {

/// \brief Syntactic classification of a formula according to the paper's
/// hierarchy (Section 2, "Classification of formulas").
///
/// A *biquantified* formula is of the form `forall x1 ... xk . rho` where `rho`
/// is built from pure first-order formulas using future temporal and boolean
/// connectives only (class `8* tense(Sigma)`): external quantifiers are all
/// universal and sit outside every temporal operator; internal quantifiers have
/// no temporal operator in their scope.
///
/// A *universal* formula is a biquantified formula with no internal quantifiers
/// (class `8* tense(Sigma_0)`); these are the formulas for which Section 4
/// gives the exponential-time checking algorithm.
struct Classification {
  bool closed = false;            ///< sentence (no free variables)
  bool future_only = false;       ///< no past-tense connectives
  bool past_only = false;         ///< no future-tense connectives
  bool pure_first_order = false;  ///< no temporal connectives at all

  /// The maximal leading chain of universal quantifiers (the external prefix).
  std::vector<VarId> external_universals;

  bool biquantified = false;
  /// Number of quantifier nodes in the body after stripping the external
  /// prefix (the paper's internal quantifiers). Only meaningful when
  /// biquantified is true.
  size_t num_internal_quantifiers = 0;
  /// True when every internal quantified block is a prenex
  /// exists*/forall*-over-quantifier-free formula (Sigma_1 or Pi_1), so the
  /// formula lies in `8* tense(Sigma_1)` — the fragment shown undecidable in
  /// Section 3 (when num_internal_quantifiers >= 1).
  bool internal_blocks_prenex1 = false;

  /// biquantified && num_internal_quantifiers == 0.
  bool universal = false;

  /// Of the form `G A` with A a past formula — the shape of Proposition 2.1,
  /// always a safety formula, and the shape the past-FOTL baseline handles.
  bool is_always_past = false;
};

/// \brief Computes the classification of `f`.
Classification Classify(Formula f);

/// \brief Splits `forall x1 ... xk . body` into prefix variables and body
/// (k = 0 and body = f when there is no universal prefix).
void StripUniversalPrefix(Formula f, std::vector<VarId>* vars, Formula* body);

}  // namespace fotl
}  // namespace tic

#endif  // TIC_FOTL_CLASSIFY_H_
