#include "fotl/classify.h"

namespace tic {
namespace fotl {

namespace {

// Counts quantifier nodes in the subtree (as a tree, but each distinct shared
// node contributes per occurrence only once since formulas are DAGs with
// logical semantics; counting distinct nodes suffices for classification).
size_t CountQuantifiers(Formula f) {
  if (!f->has_quantifier()) return 0;
  size_t n = IsQuantifier(f->kind()) ? 1 : 0;
  if (f->child(0) != nullptr) n += CountQuantifiers(f->child(0));
  if (f->child(1) != nullptr) n += CountQuantifiers(f->child(1));
  return n;
}

// True when f is a prenex block: a (possibly empty) chain of one kind of
// quantifier over a quantifier-free pure-FO formula. (Covers Sigma_1 / Pi_1.)
bool IsPrenex1(Formula f) {
  if (!f->has_quantifier()) return true;
  NodeKind q = f->kind();
  if (!IsQuantifier(q)) return false;
  Formula body = f;
  while (body->kind() == q) body = body->child(0);
  return !body->has_quantifier();
}

// Checks that in `f`, every quantifier subtree is pure first-order, i.e. no
// temporal operator occurs in the scope of a quantifier. Also gathers each
// maximal quantified block for the prenex-1 test.
bool QuantifiersArePureFO(Formula f, bool* blocks_prenex1) {
  if (!f->has_quantifier()) return true;
  if (IsQuantifier(f->kind())) {
    if (f->has_temporal()) return false;  // temporal op inside quantifier scope
    *blocks_prenex1 = *blocks_prenex1 && IsPrenex1(f);
    return true;
  }
  bool ok = true;
  if (f->child(0) != nullptr) ok = ok && QuantifiersArePureFO(f->child(0), blocks_prenex1);
  if (f->child(1) != nullptr) ok = ok && QuantifiersArePureFO(f->child(1), blocks_prenex1);
  return ok;
}

}  // namespace

void StripUniversalPrefix(Formula f, std::vector<VarId>* vars, Formula* body) {
  vars->clear();
  while (f->kind() == NodeKind::kForall) {
    vars->push_back(f->var());
    f = f->child(0);
  }
  *body = f;
}

Classification Classify(Formula f) {
  Classification c;
  c.closed = f->is_closed();
  c.future_only = !f->has_past();
  c.past_only = !f->has_future();
  c.pure_first_order = f->is_pure_first_order();

  Formula body = nullptr;
  StripUniversalPrefix(f, &c.external_universals, &body);

  c.num_internal_quantifiers = CountQuantifiers(body);
  c.internal_blocks_prenex1 = true;
  bool internal_ok = QuantifiersArePureFO(body, &c.internal_blocks_prenex1);
  c.biquantified = c.future_only && internal_ok;
  if (!c.biquantified) c.internal_blocks_prenex1 = false;
  c.universal = c.biquantified && c.num_internal_quantifiers == 0;

  c.is_always_past =
      f->kind() == NodeKind::kAlways && !f->child(0)->has_future();
  return c;
}

}  // namespace fotl
}  // namespace tic
