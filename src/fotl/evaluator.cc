#include "fotl/evaluator.h"

#include <algorithm>
#include <unordered_set>

#include "common/hash.h"

namespace tic {
namespace fotl {

namespace {

// Projects the valuation onto the free variables of f (sorted order) to form a
// compact memo environment.
std::vector<Value> ProjectEnv(Formula f, const Valuation& v) {
  std::vector<Value> env;
  env.reserve(f->free_vars().size());
  for (VarId var : f->free_vars()) {
    auto it = v.find(var);
    env.push_back(it == v.end() ? -1 : it->second);
  }
  return env;
}

size_t HashEnvKey(const void* f, size_t pos, const std::vector<Value>& env) {
  size_t seed = reinterpret_cast<size_t>(f);
  HashCombine(&seed, pos);
  for (Value x : env) HashCombine(&seed, std::hash<Value>{}(x));
  return seed;
}

void CollectBoundVars(Formula f, std::unordered_set<VarId>* out) {
  if (!f->has_quantifier()) return;
  if (IsQuantifier(f->kind())) out->insert(f->var());
  if (f->child(0) != nullptr) CollectBoundVars(f->child(0), out);
  if (f->child(1) != nullptr) CollectBoundVars(f->child(1), out);
}

}  // namespace

size_t CountDistinctBoundVars(Formula f) {
  std::unordered_set<VarId> vars;
  CollectBoundVars(f, &vars);
  return vars.size();
}

bool EvaluateBuiltin(Builtin b, const std::vector<Value>& args) {
  switch (b) {
    case Builtin::kLessEq:
      return args[0] <= args[1];
    case Builtin::kSucc:
      return args[1] == args[0] + 1;
    case Builtin::kZero:
      return args[0] == 0;
    case Builtin::kNone:
      break;
  }
  return false;
}

size_t PeriodicEvaluator::MemoKeyHash::operator()(const MemoKey& k) const {
  return HashEnvKey(k.f, k.pos, k.env);
}

Result<Value> PeriodicEvaluator::ResolveTerm(const Term& t, const Valuation& v) const {
  if (t.is_constant()) return db_->ConstantValue(t.id);
  auto it = v.find(t.id);
  if (it == v.end()) {
    return Status::InvalidArgument("free variable without a value (formula not closed)");
  }
  return it->second;
}

Result<bool> PeriodicEvaluator::EvaluateAt(Formula f, const Valuation& v, size_t pos) {
  if (pos >= NumPositions()) {
    return Status::OutOfRange("position beyond prefix+loop representation");
  }
  return Eval(f, v, pos);
}

Result<bool> PeriodicEvaluator::Eval(Formula f, const Valuation& v, size_t pos) {
  MemoKey key{f, pos, ProjectEnv(f, v)};
  auto memo_it = memo_.find(key);
  if (memo_it != memo_.end()) return memo_it->second;

  auto remember = [&](bool value) -> Result<bool> {
    memo_.emplace(std::move(key), value);
    return value;
  };

  switch (f->kind()) {
    case NodeKind::kTrue:
      return true;
    case NodeKind::kFalse:
      return false;
    case NodeKind::kEquals: {
      TIC_ASSIGN_OR_RETURN(Value a, ResolveTerm(f->terms()[0], v));
      TIC_ASSIGN_OR_RETURN(Value b, ResolveTerm(f->terms()[1], v));
      return a == b;
    }
    case NodeKind::kAtom: {
      const PredicateInfo& info = db_->vocabulary()->predicate(f->predicate());
      Tuple args;
      args.reserve(f->terms().size());
      for (const Term& t : f->terms()) {
        TIC_ASSIGN_OR_RETURN(Value a, ResolveTerm(t, v));
        args.push_back(a);
      }
      if (info.builtin != Builtin::kNone) {
        return EvaluateBuiltin(info.builtin, args);
      }
      return db_->StateAt(pos).Holds(f->predicate(), args);
    }
    case NodeKind::kNot: {
      TIC_ASSIGN_OR_RETURN(bool a, Eval(f->child(0), v, pos));
      return remember(!a);
    }
    case NodeKind::kAnd: {
      TIC_ASSIGN_OR_RETURN(bool a, Eval(f->lhs(), v, pos));
      if (!a) return remember(false);
      TIC_ASSIGN_OR_RETURN(bool b, Eval(f->rhs(), v, pos));
      return remember(b);
    }
    case NodeKind::kOr: {
      TIC_ASSIGN_OR_RETURN(bool a, Eval(f->lhs(), v, pos));
      if (a) return remember(true);
      TIC_ASSIGN_OR_RETURN(bool b, Eval(f->rhs(), v, pos));
      return remember(b);
    }
    case NodeKind::kImplies: {
      TIC_ASSIGN_OR_RETURN(bool a, Eval(f->lhs(), v, pos));
      if (!a) return remember(true);
      TIC_ASSIGN_OR_RETURN(bool b, Eval(f->rhs(), v, pos));
      return remember(b);
    }
    case NodeKind::kExists:
    case NodeKind::kForall: {
      bool is_exists = f->kind() == NodeKind::kExists;
      Valuation v2 = v;
      for (Value d : domain_) {
        v2[f->var()] = d;
        TIC_ASSIGN_OR_RETURN(bool a, Eval(f->child(0), v2, pos));
        if (is_exists && a) return remember(true);
        if (!is_exists && !a) return remember(false);
      }
      return remember(!is_exists);
    }
    case NodeKind::kNext:
      return Eval(f->child(0), v, NextPos(pos));
    case NodeKind::kEventually:
    case NodeKind::kAlways:
    case NodeKind::kUntil: {
      // Walk the deterministic successor chain; it revisits a position after at
      // most prefix+loop steps, at which point the answer is forced.
      size_t cur = pos;
      size_t bound = NumPositions() + 1;
      bool is_until = f->kind() == NodeKind::kUntil;
      bool is_always = f->kind() == NodeKind::kAlways;
      Formula hold = is_until ? f->lhs() : f->child(0);
      Formula goal = is_until ? f->rhs() : f->child(0);
      for (size_t step = 0; step < bound; ++step) {
        if (is_always) {
          TIC_ASSIGN_OR_RETURN(bool h, Eval(hold, v, cur));
          if (!h) return remember(false);
        } else {
          TIC_ASSIGN_OR_RETURN(bool g, Eval(goal, v, cur));
          if (g) return remember(true);
          if (is_until) {
            TIC_ASSIGN_OR_RETURN(bool h, Eval(hold, v, cur));
            if (!h) return remember(false);
          }
        }
        cur = NextPos(cur);
      }
      // Cycled through every reachable position.
      return remember(is_always);
    }
    case NodeKind::kPrev:
    case NodeKind::kSince:
    case NodeKind::kOnce:
    case NodeKind::kHistorically:
      return Status::NotSupported(
          "PeriodicEvaluator handles future formulas only; use "
          "FiniteHistoryEvaluator for past formulas");
  }
  return Status::Internal("unhandled node kind in PeriodicEvaluator");
}

Result<bool> EvaluateFuture(const UltimatelyPeriodicDb& db, Formula sentence,
                            size_t num_fresh) {
  if (!sentence->is_closed()) {
    return Status::InvalidArgument("EvaluateFuture requires a sentence");
  }
  if (sentence->has_past()) {
    return Status::NotSupported("EvaluateFuture requires a future formula");
  }
  if (num_fresh == static_cast<size_t>(-1)) {
    num_fresh = CountDistinctBoundVars(sentence);
  }
  std::vector<Value> domain = db.RelevantSet();
  Value next_fresh = domain.empty() ? 0 : domain.back() + 1;
  for (size_t i = 0; i < num_fresh; ++i) domain.push_back(next_fresh + i);
  PeriodicEvaluator ev(&db, std::move(domain));
  return ev.Evaluate(sentence);
}

size_t FiniteHistoryEvaluator::MemoKeyHash::operator()(const MemoKey& k) const {
  return HashEnvKey(k.f, k.t, k.env);
}

Result<Value> FiniteHistoryEvaluator::ResolveTerm(const Term& t,
                                                  const Valuation& v) const {
  if (t.is_constant()) return history_->ConstantValue(t.id);
  auto it = v.find(t.id);
  if (it == v.end()) {
    return Status::InvalidArgument("free variable without a value");
  }
  return it->second;
}

Result<bool> FiniteHistoryEvaluator::EvaluateAt(Formula f, const Valuation& v,
                                                size_t t) {
  if (t >= history_->length()) return Status::OutOfRange("instant beyond history");
  return Eval(f, v, t);
}

Result<bool> FiniteHistoryEvaluator::Eval(Formula f, const Valuation& v, size_t t) {
  MemoKey key{f, t, ProjectEnv(f, v)};
  auto memo_it = memo_.find(key);
  if (memo_it != memo_.end()) return memo_it->second;
  auto remember = [&](bool value) -> Result<bool> {
    memo_.emplace(std::move(key), value);
    return value;
  };

  switch (f->kind()) {
    case NodeKind::kTrue:
      return true;
    case NodeKind::kFalse:
      return false;
    case NodeKind::kEquals: {
      TIC_ASSIGN_OR_RETURN(Value a, ResolveTerm(f->terms()[0], v));
      TIC_ASSIGN_OR_RETURN(Value b, ResolveTerm(f->terms()[1], v));
      return a == b;
    }
    case NodeKind::kAtom: {
      const PredicateInfo& info = history_->vocabulary()->predicate(f->predicate());
      Tuple args;
      args.reserve(f->terms().size());
      for (const Term& term : f->terms()) {
        TIC_ASSIGN_OR_RETURN(Value a, ResolveTerm(term, v));
        args.push_back(a);
      }
      if (info.builtin != Builtin::kNone) {
        return EvaluateBuiltin(info.builtin, args);
      }
      return history_->state(t).Holds(f->predicate(), args);
    }
    case NodeKind::kNot: {
      TIC_ASSIGN_OR_RETURN(bool a, Eval(f->child(0), v, t));
      return remember(!a);
    }
    case NodeKind::kAnd: {
      TIC_ASSIGN_OR_RETURN(bool a, Eval(f->lhs(), v, t));
      if (!a) return remember(false);
      TIC_ASSIGN_OR_RETURN(bool b, Eval(f->rhs(), v, t));
      return remember(b);
    }
    case NodeKind::kOr: {
      TIC_ASSIGN_OR_RETURN(bool a, Eval(f->lhs(), v, t));
      if (a) return remember(true);
      TIC_ASSIGN_OR_RETURN(bool b, Eval(f->rhs(), v, t));
      return remember(b);
    }
    case NodeKind::kImplies: {
      TIC_ASSIGN_OR_RETURN(bool a, Eval(f->lhs(), v, t));
      if (!a) return remember(true);
      TIC_ASSIGN_OR_RETURN(bool b, Eval(f->rhs(), v, t));
      return remember(b);
    }
    case NodeKind::kExists:
    case NodeKind::kForall: {
      bool is_exists = f->kind() == NodeKind::kExists;
      Valuation v2 = v;
      for (Value d : domain_) {
        v2[f->var()] = d;
        TIC_ASSIGN_OR_RETURN(bool a, Eval(f->child(0), v2, t));
        if (is_exists && a) return remember(true);
        if (!is_exists && !a) return remember(false);
      }
      return remember(!is_exists);
    }
    case NodeKind::kPrev: {
      if (t == 0) return remember(false);
      TIC_ASSIGN_OR_RETURN(bool a, Eval(f->child(0), v, t - 1));
      return remember(a);
    }
    case NodeKind::kSince: {
      // A since B at t == B(t) or (A(t) and t > 0 and (A since B)(t-1)).
      TIC_ASSIGN_OR_RETURN(bool b, Eval(f->rhs(), v, t));
      if (b) return remember(true);
      TIC_ASSIGN_OR_RETURN(bool a, Eval(f->lhs(), v, t));
      if (!a || t == 0) return remember(false);
      TIC_ASSIGN_OR_RETURN(bool s, Eval(f, v, t - 1));
      return remember(s);
    }
    case NodeKind::kOnce: {
      TIC_ASSIGN_OR_RETURN(bool a, Eval(f->child(0), v, t));
      if (a) return remember(true);
      if (t == 0) return remember(false);
      TIC_ASSIGN_OR_RETURN(bool o, Eval(f, v, t - 1));
      return remember(o);
    }
    case NodeKind::kHistorically: {
      TIC_ASSIGN_OR_RETURN(bool a, Eval(f->child(0), v, t));
      if (!a) return remember(false);
      if (t == 0) return remember(true);
      TIC_ASSIGN_OR_RETURN(bool h, Eval(f, v, t - 1));
      return remember(h);
    }
    case NodeKind::kNext:
    case NodeKind::kUntil:
    case NodeKind::kEventually:
    case NodeKind::kAlways:
      return Status::NotSupported(
          "FiniteHistoryEvaluator handles past formulas only; use "
          "PeriodicEvaluator for future formulas");
  }
  return Status::Internal("unhandled node kind in FiniteHistoryEvaluator");
}

}  // namespace fotl
}  // namespace tic
