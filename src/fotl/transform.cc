#include "fotl/transform.h"

#include <vector>

namespace tic {
namespace fotl {

namespace {

// Generic bottom-up rebuild. `leaf` handles kAtom/kEquals/kTrue/kFalse nodes;
// connectives and quantifiers are rebuilt through the factory (so builder
// simplifications re-apply). Memoized per call over the shared DAG.
class Rebuilder {
 public:
  Rebuilder(FormulaFactory* fac, std::function<Result<Formula>(Formula)> leaf)
      : fac_(fac), leaf_(std::move(leaf)) {}

  Result<Formula> Run(Formula f) {
    auto it = memo_.find(f);
    if (it != memo_.end()) return it->second;
    TIC_ASSIGN_OR_RETURN(Formula out, Rebuild(f));
    memo_.emplace(f, out);
    return out;
  }

 private:
  Result<Formula> Rebuild(Formula f) {
    switch (f->kind()) {
      case NodeKind::kTrue:
      case NodeKind::kFalse:
      case NodeKind::kEquals:
      case NodeKind::kAtom:
        return leaf_(f);
      case NodeKind::kNot: {
        TIC_ASSIGN_OR_RETURN(Formula a, Run(f->child(0)));
        return fac_->Not(a);
      }
      case NodeKind::kNext: {
        TIC_ASSIGN_OR_RETURN(Formula a, Run(f->child(0)));
        return fac_->Next(a);
      }
      case NodeKind::kPrev: {
        TIC_ASSIGN_OR_RETURN(Formula a, Run(f->child(0)));
        return fac_->Prev(a);
      }
      case NodeKind::kEventually: {
        TIC_ASSIGN_OR_RETURN(Formula a, Run(f->child(0)));
        return fac_->Eventually(a);
      }
      case NodeKind::kAlways: {
        TIC_ASSIGN_OR_RETURN(Formula a, Run(f->child(0)));
        return fac_->Always(a);
      }
      case NodeKind::kOnce: {
        TIC_ASSIGN_OR_RETURN(Formula a, Run(f->child(0)));
        return fac_->Once(a);
      }
      case NodeKind::kHistorically: {
        TIC_ASSIGN_OR_RETURN(Formula a, Run(f->child(0)));
        return fac_->Historically(a);
      }
      case NodeKind::kAnd: {
        TIC_ASSIGN_OR_RETURN(Formula a, Run(f->lhs()));
        TIC_ASSIGN_OR_RETURN(Formula b, Run(f->rhs()));
        return fac_->And(a, b);
      }
      case NodeKind::kOr: {
        TIC_ASSIGN_OR_RETURN(Formula a, Run(f->lhs()));
        TIC_ASSIGN_OR_RETURN(Formula b, Run(f->rhs()));
        return fac_->Or(a, b);
      }
      case NodeKind::kImplies: {
        TIC_ASSIGN_OR_RETURN(Formula a, Run(f->lhs()));
        TIC_ASSIGN_OR_RETURN(Formula b, Run(f->rhs()));
        return fac_->Implies(a, b);
      }
      case NodeKind::kUntil: {
        TIC_ASSIGN_OR_RETURN(Formula a, Run(f->lhs()));
        TIC_ASSIGN_OR_RETURN(Formula b, Run(f->rhs()));
        return fac_->Until(a, b);
      }
      case NodeKind::kSince: {
        TIC_ASSIGN_OR_RETURN(Formula a, Run(f->lhs()));
        TIC_ASSIGN_OR_RETURN(Formula b, Run(f->rhs()));
        return fac_->Since(a, b);
      }
      case NodeKind::kExists: {
        TIC_ASSIGN_OR_RETURN(Formula a, Run(f->child(0)));
        return fac_->Exists(f->var(), a);
      }
      case NodeKind::kForall: {
        TIC_ASSIGN_OR_RETURN(Formula a, Run(f->child(0)));
        return fac_->Forall(f->var(), a);
      }
    }
    return Status::Internal("unhandled node kind in Rebuilder");
  }

  FormulaFactory* fac_;
  std::function<Result<Formula>(Formula)> leaf_;
  std::unordered_map<Formula, Formula> memo_;
};

Formula DesugarImpl(FormulaFactory* fac, Formula f,
                    std::unordered_map<Formula, Formula>* memo) {
  auto it = memo->find(f);
  if (it != memo->end()) return it->second;
  Formula out = nullptr;
  Formula a = f->child(0) ? DesugarImpl(fac, f->child(0), memo) : nullptr;
  Formula b = f->child(1) ? DesugarImpl(fac, f->child(1), memo) : nullptr;
  switch (f->kind()) {
    case NodeKind::kEventually:
      out = fac->Until(fac->True(), a);
      break;
    case NodeKind::kAlways:
      out = fac->Not(fac->Until(fac->True(), fac->Not(a)));
      break;
    case NodeKind::kOnce:
      out = fac->Since(fac->True(), a);
      break;
    case NodeKind::kHistorically:
      out = fac->Not(fac->Since(fac->True(), fac->Not(a)));
      break;
    case NodeKind::kNot:
      out = fac->Not(a);
      break;
    case NodeKind::kNext:
      out = fac->Next(a);
      break;
    case NodeKind::kPrev:
      out = fac->Prev(a);
      break;
    case NodeKind::kAnd:
      out = fac->And(a, b);
      break;
    case NodeKind::kOr:
      out = fac->Or(a, b);
      break;
    case NodeKind::kImplies:
      out = fac->Implies(a, b);
      break;
    case NodeKind::kUntil:
      out = fac->Until(a, b);
      break;
    case NodeKind::kSince:
      out = fac->Since(a, b);
      break;
    case NodeKind::kExists:
      out = fac->Exists(f->var(), a);
      break;
    case NodeKind::kForall:
      out = fac->Forall(f->var(), a);
      break;
    default:
      out = f;  // leaves
      break;
  }
  memo->emplace(f, out);
  return out;
}

}  // namespace

Formula Desugar(FormulaFactory* factory, Formula f) {
  std::unordered_map<Formula, Formula> memo;
  return DesugarImpl(factory, f, &memo);
}

Result<Formula> SubstituteVars(FormulaFactory* factory, Formula f,
                               const std::unordered_map<VarId, Term>& subst) {
  // Capture check: replacement variables must not be bound anywhere in f.
  // (Our callers substitute constants or globally fresh variables.)
  std::function<Result<Formula>(Formula, std::unordered_map<VarId, Term>)> go =
      [&](Formula g, std::unordered_map<VarId, Term> active) -> Result<Formula> {
    if (IsQuantifier(g->kind())) {
      active.erase(g->var());  // bound occurrences are untouched
      for (const auto& [from, to] : active) {
        (void)from;
        if (to.is_variable() && to.id == g->var()) {
          return Status::InvalidArgument(
              "substitution would capture variable '" + factory->VarName(g->var()) +
              "'");
        }
      }
      TIC_ASSIGN_OR_RETURN(Formula body, go(g->child(0), active));
      return g->kind() == NodeKind::kExists ? factory->Exists(g->var(), body)
                                            : factory->Forall(g->var(), body);
    }
    Rebuilder rebuild(factory, [&](Formula leaf) -> Result<Formula> {
      switch (leaf->kind()) {
        case NodeKind::kTrue:
        case NodeKind::kFalse:
          return leaf;
        case NodeKind::kEquals:
        case NodeKind::kAtom: {
          std::vector<Term> terms = leaf->terms();
          bool changed = false;
          for (Term& t : terms) {
            if (t.is_variable()) {
              auto it = active.find(t.id);
              if (it != active.end()) {
                t = it->second;
                changed = true;
              }
            }
          }
          if (!changed) return leaf;
          if (leaf->kind() == NodeKind::kEquals) {
            return factory->Equals(terms[0], terms[1]);
          }
          return factory->Atom(leaf->predicate(), std::move(terms));
        }
        default:
          return Status::Internal("non-leaf in leaf handler");
      }
    });
    // Rebuilder cannot recurse back into `go` for nested quantifiers, so only
    // use it on quantifier-free subtrees; otherwise recurse manually.
    if (!g->has_quantifier()) return rebuild.Run(g);
    // Manual recursion for mixed nodes.
    Formula c0 = g->child(0);
    Formula c1 = g->child(1);
    Formula r0 = nullptr, r1 = nullptr;
    if (c0 != nullptr) {
      TIC_ASSIGN_OR_RETURN(r0, go(c0, active));
    }
    if (c1 != nullptr) {
      TIC_ASSIGN_OR_RETURN(r1, go(c1, active));
    }
    switch (g->kind()) {
      case NodeKind::kNot:
        return factory->Not(r0);
      case NodeKind::kNext:
        return factory->Next(r0);
      case NodeKind::kPrev:
        return factory->Prev(r0);
      case NodeKind::kEventually:
        return factory->Eventually(r0);
      case NodeKind::kAlways:
        return factory->Always(r0);
      case NodeKind::kOnce:
        return factory->Once(r0);
      case NodeKind::kHistorically:
        return factory->Historically(r0);
      case NodeKind::kAnd:
        return factory->And(r0, r1);
      case NodeKind::kOr:
        return factory->Or(r0, r1);
      case NodeKind::kImplies:
        return factory->Implies(r0, r1);
      case NodeKind::kUntil:
        return factory->Until(r0, r1);
      case NodeKind::kSince:
        return factory->Since(r0, r1);
      default:
        return Status::Internal("unexpected node kind in substitution");
    }
  };
  return go(f, subst);
}

Result<Formula> SubstituteVar(FormulaFactory* factory, Formula f, VarId var,
                              Term replacement) {
  std::unordered_map<VarId, Term> subst{{var, replacement}};
  return SubstituteVars(factory, f, subst);
}

Result<Formula> RewriteAtoms(FormulaFactory* factory, Formula f,
                             const std::function<Result<Formula>(Formula)>& fn) {
  Rebuilder rebuild(factory, [&](Formula leaf) -> Result<Formula> {
    if (leaf->kind() == NodeKind::kAtom) return fn(leaf);
    return leaf;
  });
  return rebuild.Run(f);
}

Result<Formula> TransferFormula(const FormulaFactory& from, Formula f,
                                FormulaFactory* to) {
  const Vocabulary& target = *to->vocabulary();
  std::function<Result<Term>(const Term&)> term =
      [&](const Term& t) -> Result<Term> {
    if (t.is_variable()) return Term::Var(to->InternVar(from.VarName(t.id)));
    TIC_ASSIGN_OR_RETURN(ConstantId c,
                         target.FindConstant(from.vocabulary()->constant_name(t.id)));
    return Term::Const(c);
  };
  std::function<Result<Formula>(Formula)> go = [&](Formula g) -> Result<Formula> {
    switch (g->kind()) {
      case NodeKind::kTrue:
        return to->True();
      case NodeKind::kFalse:
        return to->False();
      case NodeKind::kEquals: {
        TIC_ASSIGN_OR_RETURN(Term a, term(g->terms()[0]));
        TIC_ASSIGN_OR_RETURN(Term b, term(g->terms()[1]));
        return to->Equals(a, b);
      }
      case NodeKind::kAtom: {
        TIC_ASSIGN_OR_RETURN(
            PredicateId p,
            target.FindPredicate(from.vocabulary()->predicate(g->predicate()).name));
        std::vector<Term> args;
        args.reserve(g->terms().size());
        for (const Term& t : g->terms()) {
          TIC_ASSIGN_OR_RETURN(Term mapped, term(t));
          args.push_back(mapped);
        }
        return to->Atom(p, std::move(args));
      }
      case NodeKind::kExists:
      case NodeKind::kForall: {
        TIC_ASSIGN_OR_RETURN(Formula body, go(g->child(0)));
        VarId v = to->InternVar(from.VarName(g->var()));
        return g->kind() == NodeKind::kExists ? to->Exists(v, body)
                                              : to->Forall(v, body);
      }
      default: {
        Formula c0 = g->child(0);
        Formula c1 = g->child(1);
        Formula r0 = nullptr, r1 = nullptr;
        if (c0 != nullptr) {
          TIC_ASSIGN_OR_RETURN(r0, go(c0));
        }
        if (c1 != nullptr) {
          TIC_ASSIGN_OR_RETURN(r1, go(c1));
        }
        switch (g->kind()) {
          case NodeKind::kNot:
            return to->Not(r0);
          case NodeKind::kNext:
            return to->Next(r0);
          case NodeKind::kPrev:
            return to->Prev(r0);
          case NodeKind::kEventually:
            return to->Eventually(r0);
          case NodeKind::kAlways:
            return to->Always(r0);
          case NodeKind::kOnce:
            return to->Once(r0);
          case NodeKind::kHistorically:
            return to->Historically(r0);
          case NodeKind::kAnd:
            return to->And(r0, r1);
          case NodeKind::kOr:
            return to->Or(r0, r1);
          case NodeKind::kImplies:
            return to->Implies(r0, r1);
          case NodeKind::kUntil:
            return to->Until(r0, r1);
          case NodeKind::kSince:
            return to->Since(r0, r1);
          default:
            return Status::Internal("unhandled kind in TransferFormula");
        }
      }
    }
  };
  return go(f);
}

}  // namespace fotl
}  // namespace tic
