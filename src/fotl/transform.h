#ifndef TIC_FOTL_TRANSFORM_H_
#define TIC_FOTL_TRANSFORM_H_

#include <functional>
#include <unordered_map>

#include "common/result.h"
#include "fotl/factory.h"

namespace tic {
namespace fotl {

/// \brief Rewrites the derived temporal connectives into the base language:
/// `F A == true until A`, `G A == !(true until !A)`, `O A == true since A`,
/// `H A == !(true since !A)` (the definitions of Section 2).
Formula Desugar(FormulaFactory* factory, Formula f);

/// \brief Capture-avoiding substitution of `replacement` for free occurrences
/// of variable `var`. Fails with InvalidArgument if `replacement` is a variable
/// that would be captured by a quantifier of `f`.
Result<Formula> SubstituteVar(FormulaFactory* factory, Formula f, VarId var,
                              Term replacement);

/// \brief Simultaneous substitution of terms for several variables.
Result<Formula> SubstituteVars(FormulaFactory* factory, Formula f,
                               const std::unordered_map<VarId, Term>& subst);

/// \brief Rebuilds `f`, replacing every atom `p(...)` by `fn(atom)`. All other
/// structure is preserved. Used by the W-ordering transformation of Section 3
/// (<=, succ, Zero atoms become temporal formulas over W).
Result<Formula> RewriteAtoms(FormulaFactory* factory, Formula f,
                             const std::function<Result<Formula>(Formula)>& fn);

/// \brief Structurally copies a formula from one factory into another.
/// Variables are re-interned by name; predicate/constant ids are mapped by
/// name through the target vocabulary (which must declare them all).
Result<Formula> TransferFormula(const FormulaFactory& from, Formula f,
                                FormulaFactory* to);

}  // namespace fotl
}  // namespace tic

#endif  // TIC_FOTL_TRANSFORM_H_
