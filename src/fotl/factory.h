#ifndef TIC_FOTL_FACTORY_H_
#define TIC_FOTL_FACTORY_H_

#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/interner.h"
#include "common/result.h"
#include "db/vocabulary.h"
#include "fotl/ast.h"

namespace tic {
namespace fotl {

/// \brief Owning arena + hash-consing cache for FOTL formulas over one
/// vocabulary.
///
/// All construction goes through this factory; structurally equal formulas
/// share one node, so Formula (a pointer) compares by structure in O(1) and
/// memory stays proportional to the number of *distinct* subformulas — vital
/// for the grounding of Theorem 4.1 which creates heavily shared instances.
///
/// Builders apply only trivially sound rewrites (constant folding with
/// True/False, double negation, idempotent And/Or); they never change the
/// quantifier or tense structure of non-constant operands, so classification
/// results are unaffected.
class FormulaFactory {
 public:
  explicit FormulaFactory(VocabularyPtr vocab) : vocab_(std::move(vocab)) {}

  const VocabularyPtr& vocabulary() const { return vocab_; }

  /// Interns a variable name.
  VarId InternVar(std::string_view name) { return vars_.Intern(name); }
  const std::string& VarName(VarId v) const { return vars_.Name(v); }
  size_t num_vars() const { return vars_.size(); }

  Formula True();
  Formula False();

  /// t1 = t2. Folds trivially equal terms to True.
  Formula Equals(Term t1, Term t2);

  /// p(terms...). Fails if the arity does not match the vocabulary.
  Result<Formula> Atom(PredicateId p, std::vector<Term> terms);

  Formula Not(Formula a);
  Formula And(Formula a, Formula b);
  Formula Or(Formula a, Formula b);
  Formula Implies(Formula a, Formula b);
  /// Conjunction of a list (True if empty), folded left.
  Formula AndAll(const std::vector<Formula>& fs);
  /// Disjunction of a list (False if empty), folded left.
  Formula OrAll(const std::vector<Formula>& fs);

  Formula Exists(VarId v, Formula a);
  Formula Forall(VarId v, Formula a);

  Formula Next(Formula a);
  Formula Until(Formula a, Formula b);
  Formula Prev(Formula a);
  Formula Since(Formula a, Formula b);
  Formula Eventually(Formula a);
  Formula Always(Formula a);
  Formula Once(Formula a);
  Formula Historically(Formula a);

  /// Number of distinct nodes created so far.
  size_t num_nodes() const { return nodes_.size(); }

 private:
  Formula Intern(Node&& proto);
  Formula MakeUnary(NodeKind k, Formula a);
  Formula MakeBinary(NodeKind k, Formula a, Formula b);
  Formula MakeQuantifier(NodeKind k, VarId v, Formula a);

  struct NodeKeyHash {
    size_t operator()(const Node* n) const { return n->hash(); }
  };
  struct NodeKeyEq {
    bool operator()(const Node* a, const Node* b) const;
  };

  VocabularyPtr vocab_;
  StringInterner vars_;
  std::deque<Node> nodes_;  // stable addresses
  std::unordered_map<const Node*, Formula, NodeKeyHash, NodeKeyEq> cache_;
  Formula true_ = nullptr;
  Formula false_ = nullptr;
};

}  // namespace fotl
}  // namespace tic

#endif  // TIC_FOTL_FACTORY_H_
