#ifndef TIC_FOTL_NORMALIZE_H_
#define TIC_FOTL_NORMALIZE_H_

#include <vector>

#include "common/result.h"
#include "fotl/factory.h"

namespace tic {
namespace fotl {

/// \brief Merges several universal sentences into one:
/// `forall x̄ . psi1  &  forall ȳ . psi2  ==  forall z̄ . (psi1' & psi2')`
/// where z̄ is a fresh prefix of length max(|x̄|, |ȳ|) and each psi_i has its
/// prefix variables renamed onto z̄.
///
/// This keeps conjunctions of universal constraints inside the Theorem 4.2
/// fragment: the naive `And(forall..., forall...)` has quantifiers below a
/// boolean connective and is rejected by the checker, while the merged form
/// is again `forall* tense(Sigma_0)`. Sharing one prefix is sound because the
/// conjuncts are independently closed: forall distributes over conjunction,
/// and padding a prefix with unused variables is vacuous.
///
/// Every input must itself be universal (biquantified, no internal
/// quantifiers); otherwise NotSupported.
Result<Formula> MergeUniversal(FormulaFactory* factory,
                               const std::vector<Formula>& conjuncts);

}  // namespace fotl
}  // namespace tic

#endif  // TIC_FOTL_NORMALIZE_H_
