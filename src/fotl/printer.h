#ifndef TIC_FOTL_PRINTER_H_
#define TIC_FOTL_PRINTER_H_

#include <string>

#include "fotl/factory.h"

namespace tic {
namespace fotl {

/// \brief Renders a formula in the library's concrete syntax (parseable back by
/// Parser): `forall x . (Sub(x) -> X G !Sub(x))`.
std::string ToString(const FormulaFactory& factory, Formula f);

}  // namespace fotl
}  // namespace tic

#endif  // TIC_FOTL_PRINTER_H_
