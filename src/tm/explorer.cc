#include "tm/explorer.h"

namespace tic {
namespace tm {

Result<ExploreResult> ExploreRepeating(const TuringMachine& machine,
                                       const std::string& input, size_t max_steps) {
  Simulator sim(&machine);
  TIC_ASSIGN_OR_RETURN(Configuration c, sim.Initial(input));
  Simulator::RunStats stats = sim.Run(&c, max_steps);
  ExploreResult out;
  out.steps = stats.steps;
  out.origin_visits = stats.origin_visits;
  out.verdict = stats.last;
  return out;
}

Result<bool> ReachesOriginVisits(const TuringMachine& machine,
                                 const std::string& input, size_t n,
                                 size_t max_steps) {
  Simulator sim(&machine);
  TIC_ASSIGN_OR_RETURN(Configuration c, sim.Initial(input));
  size_t visits = c.head == 0 ? 1 : 0;
  if (visits >= n) return true;
  for (size_t i = 0; i < max_steps; ++i) {
    StepOutcome out = sim.Step(&c);
    if (out != StepOutcome::kContinue) return false;  // finite computation
    if (c.head == 0 && ++visits >= n) return true;
  }
  return Status::ResourceExhausted(
      "undecided within " + std::to_string(max_steps) +
      " steps (the repeating-behaviour problem is Sigma^0_2-complete)");
}

const DovetailingMachine::Progress& DovetailingMachine::Run(uint64_t budget) {
  for (uint64_t i = 0; i < budget; ++i) {
    ++progress_.probes;
    if (relation_(input_, progress_.current_v, progress_.next_u)) {
      // Witness found for current_v: M_R returns to the origin and moves on.
      ++progress_.origin_visits;
      ++progress_.current_v;
      progress_.next_u = 0;
    } else {
      ++progress_.next_u;
    }
  }
  return progress_;
}

}  // namespace tm
}  // namespace tic
