#include "tm/simulator.h"

namespace tic {
namespace tm {

std::string Configuration::AsConfigurationWord(const TuringMachine& m) const {
  std::string out;
  size_t len = std::max(tape.size(), head + 1);
  for (size_t i = 0; i <= len; ++i) {
    if (i == head) out += "[" + m.state_name(state) + "]";
    out += i < tape.size() ? tape[i] : TuringMachine::kBlank;
  }
  return out;
}

Result<Configuration> Simulator::Initial(const std::string& input) const {
  Configuration c;
  c.state = 0;
  c.head = 0;
  c.tape.reserve(input.size());
  for (char ch : input) {
    if (ch != '0' && ch != '1') {
      return Status::InvalidArgument("input must be over {0,1}");
    }
    c.tape.push_back(ch);
  }
  return c;
}

StepOutcome Simulator::Step(Configuration* c) const {
  Transition tr;
  if (!machine_->Lookup(c->state, c->Read(), &tr)) return StepOutcome::kHalt;
  if (tr.dir == Dir::kLeft && c->head == 0) return StepOutcome::kLeftCrash;
  if (c->head >= c->tape.size()) {
    c->tape.resize(c->head + 1, TuringMachine::kBlank);
  }
  c->tape[c->head] = tr.write;
  c->state = tr.next_state;
  c->head += tr.dir == Dir::kRight ? 1 : -1;
  return StepOutcome::kContinue;
}

Simulator::RunStats Simulator::Run(Configuration* c, size_t max_steps) const {
  RunStats stats;
  if (c->head == 0) ++stats.origin_visits;
  for (size_t i = 0; i < max_steps; ++i) {
    StepOutcome out = Step(c);
    if (out != StepOutcome::kContinue) {
      stats.last = out;
      return stats;
    }
    ++stats.steps;
    if (c->head == 0) ++stats.origin_visits;
  }
  stats.last = StepOutcome::kContinue;
  return stats;
}

}  // namespace tm
}  // namespace tic
