#include "tm/formulas.h"

#include <functional>
#include <vector>

namespace tic {
namespace tm {

namespace {

using fotl::Formula;
using fotl::FormulaFactory;
using fotl::Term;

// How the rigid arithmetic atoms are expressed: as extended-vocabulary
// builtins (phi, Proposition 3.1) or as temporal W-formulas (phi-tilde,
// Section 3's "Formula phi~").
class RigidOps {
 public:
  virtual ~RigidOps() = default;
  virtual Result<Formula> Leq(Term a, Term b) = 0;
  virtual Result<Formula> Succ(Term a, Term b) = 0;
  virtual Result<Formula> Zero(Term a) = 0;
};

class BuiltinOps : public RigidOps {
 public:
  BuiltinOps(FormulaFactory* fac, const TmEncoding& enc) : fac_(fac), enc_(enc) {}
  Result<Formula> Leq(Term a, Term b) override {
    return fac_->Atom(enc_.leq(), {a, b});
  }
  Result<Formula> Succ(Term a, Term b) override {
    return fac_->Atom(enc_.succ(), {a, b});
  }
  Result<Formula> Zero(Term a) override { return fac_->Atom(enc_.zero(), {a}); }

 private:
  FormulaFactory* fac_;
  const TmEncoding& enc_;
};

// Ordinary-vocabulary variant (Section 6's bounded construction): the
// successor/origin live in database relations held rigid by the formula.
class DbOps : public RigidOps {
 public:
  DbOps(FormulaFactory* fac, const TmEncoding& enc) : fac_(fac), enc_(enc) {}
  Result<Formula> Leq(Term, Term) override {
    return Status::NotSupported("the bounded construction has no ordering atom");
  }
  Result<Formula> Succ(Term a, Term b) override {
    return fac_->Atom(enc_.succ(), {a, b});
  }
  Result<Formula> Zero(Term a) override { return fac_->Atom(enc_.zero(), {a}); }

 private:
  FormulaFactory* fac_;
  const TmEncoding& enc_;
};

// x <=_W y == F(W(x) & F W(y));  S_W(x,y) == F(W(x) & X W(y));  Z_W(x) == W(x).
class WOps : public RigidOps {
 public:
  WOps(FormulaFactory* fac, const TmEncoding& enc) : fac_(fac), enc_(enc) {}
  Result<Formula> W(Term a) { return fac_->Atom(enc_.w_pred(), {a}); }
  Result<Formula> Leq(Term a, Term b) override {
    TIC_ASSIGN_OR_RETURN(Formula wa, W(a));
    TIC_ASSIGN_OR_RETURN(Formula wb, W(b));
    return fac_->Eventually(fac_->And(wa, fac_->Eventually(wb)));
  }
  Result<Formula> Succ(Term a, Term b) override {
    TIC_ASSIGN_OR_RETURN(Formula wa, W(a));
    TIC_ASSIGN_OR_RETURN(Formula wb, W(b));
    return fac_->Eventually(fac_->And(wa, fac_->Next(wb)));
  }
  Result<Formula> Zero(Term a) override { return W(a); }

 private:
  FormulaFactory* fac_;
  const TmEncoding& enc_;
};

// Builds the quantifier-free matrices psi1..psi4 of the appendix construction.
class PhiBuilder {
 public:
  PhiBuilder(FormulaFactory* fac, const TmEncoding& enc, RigidOps* ops)
      : fac_(fac), enc_(enc), ops_(ops) {
    x_ = Term::Var(fac_->InternVar("x"));
    y_ = Term::Var(fac_->InternVar("y"));
    z_ = Term::Var(fac_->InternVar("z"));
  }

  Term x() const { return x_; }
  Term y() const { return y_; }
  Term z() const { return z_; }

  // All monadic letters P_z, z in Q u (Sigma \ {B}).
  std::vector<PredicateId> Letters() const {
    std::vector<PredicateId> ps;
    for (uint32_t q = 0; q < enc_.machine().num_states(); ++q) {
      ps.push_back(enc_.state_pred(q));
    }
    for (char s : enc_.machine().alphabet()) {
      if (s == TuringMachine::kBlank) continue;
      ps.push_back(*enc_.symbol_pred(s));
    }
    return ps;
  }

  Result<Formula> P(PredicateId p, Term t) { return fac_->Atom(p, {t}); }

  // P_B(t): the abbreviation "no letter true of t".
  Result<Formula> Blank(Term t) {
    std::vector<Formula> negs;
    for (PredicateId p : Letters()) {
      TIC_ASSIGN_OR_RETURN(Formula a, P(p, t));
      negs.push_back(fac_->Not(a));
    }
    return fac_->AndAll(negs);
  }

  // Sym_s(t): P_s(t) for a real symbol, the blank abbreviation for B.
  Result<Formula> Sym(char s, Term t) {
    if (s == TuringMachine::kBlank) return Blank(t);
    TIC_ASSIGN_OR_RETURN(PredicateId p, enc_.symbol_pred(s));
    return P(p, t);
  }

  // Exact content: the position holds letter `keep` and nothing else. Under
  // the uniqueness group this is equivalent to asserting `keep` alone, but
  // stating the negatives explicitly makes every write/copy rule pin the full
  // next-state content — which keeps the tableau of the grounded formula
  // deterministic along forced computations (no free uniqueness branching).
  Result<Formula> ExactLetter(PredicateId keep, Term t) {
    std::vector<Formula> cs;
    TIC_ASSIGN_OR_RETURN(Formula kept, P(keep, t));
    cs.push_back(kept);
    for (PredicateId p : Letters()) {
      if (p == keep) continue;
      TIC_ASSIGN_OR_RETURN(Formula a, P(p, t));
      cs.push_back(fac_->Not(a));
    }
    return fac_->AndAll(cs);
  }

  Result<Formula> ExactSym(char s, Term t) {
    if (s == TuringMachine::kBlank) return Blank(t);
    TIC_ASSIGN_OR_RETURN(PredicateId p, enc_.symbol_pred(s));
    return ExactLetter(p, t);
  }

  Result<Formula> ExactState(uint32_t q, Term t) {
    return ExactLetter(enc_.state_pred(q), t);
  }

  // \/_{q in Q} P_q(t).
  Result<Formula> AnyState(Term t) {
    std::vector<Formula> ds;
    for (uint32_t q = 0; q < enc_.machine().num_states(); ++q) {
      TIC_ASSIGN_OR_RETURN(Formula a, P(enc_.state_pred(q), t));
      ds.push_back(a);
    }
    return fac_->OrAll(ds);
  }

  Result<Formula> NoState(Term t) {
    TIC_ASSIGN_OR_RETURN(Formula any, AnyState(t));
    return fac_->Not(any);
  }

  // /\_{s in Sigma} (Sym_s(t) -> X ExactSym_s(t2)): position t2's next content
  // is exactly position t's current content.
  Result<Formula> CopySymbolsTo(Term t, Term t2) {
    std::vector<Formula> cs;
    for (char s : enc_.machine().alphabet()) {
      TIC_ASSIGN_OR_RETURN(Formula now, Sym(s, t));
      TIC_ASSIGN_OR_RETURN(Formula next_val, ExactSym(s, t2));
      cs.push_back(fac_->Implies(now, fac_->Next(next_val)));
    }
    return fac_->AndAll(cs);
  }

  // Group 1: always, at most one letter per position.
  Result<Formula> Uniqueness() {
    std::vector<PredicateId> ps = Letters();
    std::vector<Formula> cs;
    for (size_t i = 0; i < ps.size(); ++i) {
      for (size_t j = i + 1; j < ps.size(); ++j) {
        TIC_ASSIGN_OR_RETURN(Formula a, P(ps[i], x_));
        TIC_ASSIGN_OR_RETURN(Formula b, P(ps[j], x_));
        cs.push_back(fac_->Not(fac_->And(a, b)));
      }
    }
    return fac_->Always(fac_->AndAll(cs));
  }

  // Group 2: the first database state encodes q0 w B^omega with w over {0,1}.
  Result<Formula> Initial() {
    TIC_ASSIGN_OR_RETURN(Formula zero_x, ops_->Zero(x_));
    TIC_ASSIGN_OR_RETURN(Formula q0_x, P(enc_.state_pred(0), x_));
    TIC_ASSIGN_OR_RETURN(Formula leq_xy, ops_->Leq(x_, y_));
    TIC_ASSIGN_OR_RETURN(Formula blank_y, Blank(y_));
    TIC_ASSIGN_OR_RETURN(Formula s0y, Sym('0', y_));
    TIC_ASSIGN_OR_RETURN(Formula s1y, Sym('1', y_));
    TIC_ASSIGN_OR_RETURN(Formula s0x, Sym('0', x_));
    TIC_ASSIGN_OR_RETURN(Formula s1x, Sym('1', x_));
    Formula head0 = fac_->Implies(zero_x, q0_x);
    Formula input = fac_->Implies(
        fac_->And(fac_->And(fac_->Not(zero_x), leq_xy), fac_->Not(blank_y)),
        fac_->And(fac_->Or(s0y, s1y), fac_->Or(s0x, s1x)));
    return fac_->And(head0, input);
  }

  // Group 3: successor-configuration rules (see TmFormulas doc comment).
  Result<Formula> TransitionRules() {
    std::vector<Formula> rules;
    TIC_ASSIGN_OR_RETURN(Formula succ_xy, ops_->Succ(x_, y_));
    TIC_ASSIGN_OR_RETURN(Formula succ_yz, ops_->Succ(y_, z_));
    TIC_ASSIGN_OR_RETURN(Formula zero_x, ops_->Zero(x_));
    TIC_ASSIGN_OR_RETURN(Formula nostate_x, NoState(x_));
    TIC_ASSIGN_OR_RETURN(Formula nostate_y, NoState(y_));
    TIC_ASSIGN_OR_RETURN(Formula nostate_z, NoState(z_));
    TIC_ASSIGN_OR_RETURN(Formula copy_yy, CopySymbolsTo(y_, y_));
    TIC_ASSIGN_OR_RETURN(Formula copy_xx, CopySymbolsTo(x_, x_));
    TIC_ASSIGN_OR_RETURN(Formula copy_xy, CopySymbolsTo(x_, y_));

    // Frame: a state-free window keeps its middle (logically equivalent to the
    // paper's /\_{a,b,c in Sigma} enumeration, factored through CopySymbolsTo).
    rules.push_back(fac_->Implies(
        fac_->AndAll({succ_xy, succ_yz, nostate_x, nostate_y, nostate_z}), copy_yy));
    // Origin frame: position 0 keeps its symbol while no state is at 0 or 1.
    rules.push_back(fac_->Implies(
        fac_->AndAll({zero_x, succ_xy, nostate_x, nostate_y}), copy_xx));

    const TuringMachine& m = enc_.machine();
    for (const auto& [key, tr] : m.transitions()) {
      auto [q, read] = key;
      TIC_ASSIGN_OR_RETURN(Formula q_x, P(enc_.state_pred(q), x_));
      TIC_ASSIGN_OR_RETURN(Formula q_y, P(enc_.state_pred(q), y_));
      TIC_ASSIGN_OR_RETURN(Formula read_y, Sym(read, y_));
      TIC_ASSIGN_OR_RETURN(Formula read_z, Sym(read, z_));
      if (tr.dir == Dir::kRight) {
        // Head window q sigma -> tau p.
        TIC_ASSIGN_OR_RETURN(Formula write_x, ExactSym(tr.write, x_));
        TIC_ASSIGN_OR_RETURN(Formula p_y, ExactState(tr.next_state, y_));
        rules.push_back(fac_->Implies(
            fac_->AndAll({q_x, succ_xy, read_y}),
            fac_->And(fac_->Next(write_x), fac_->Next(p_y))));
        // The cell left of the head is untouched.
        rules.push_back(fac_->Implies(
            fac_->AndAll({succ_xy, succ_yz, nostate_x, q_y, read_z}), copy_xx));
      } else {
        // Head window c q sigma -> p c tau.
        TIC_ASSIGN_OR_RETURN(Formula p_x, ExactState(tr.next_state, x_));
        TIC_ASSIGN_OR_RETURN(Formula write_z, ExactSym(tr.write, z_));
        rules.push_back(fac_->Implies(
            fac_->AndAll({succ_xy, succ_yz, nostate_x, q_y, read_z}),
            fac_->AndAll({fac_->Next(p_x), copy_xy, fac_->Next(write_z)})));
        // A left move with the state symbol at the origin falls off the tape:
        // no successor configuration exists.
        rules.push_back(fac_->Implies(fac_->AndAll({zero_x, q_x, succ_xy, read_y}),
                                      fac_->False()));
      }
    }
    // Halting pairs (q, sigma) with no transition: the computation ends, so an
    // encoding of an infinite (repeating) computation cannot contain them.
    for (uint32_t q = 0; q < m.num_states(); ++q) {
      for (char s : m.alphabet()) {
        Transition tr;
        if (m.Lookup(q, s, &tr)) continue;
        TIC_ASSIGN_OR_RETURN(Formula q_x, P(enc_.state_pred(q), x_));
        TIC_ASSIGN_OR_RETURN(Formula s_y, Sym(s, y_));
        rules.push_back(
            fac_->Implies(fac_->AndAll({q_x, succ_xy, s_y}), fac_->False()));
      }
    }
    return fac_->Always(fac_->AndAll(rules));
  }

  // Group 4: the head returns to the origin infinitely often.
  Result<Formula> Repeating() {
    TIC_ASSIGN_OR_RETURN(Formula zero_x, ops_->Zero(x_));
    TIC_ASSIGN_OR_RETURN(Formula any, AnyState(x_));
    return fac_->Implies(zero_x, fac_->Always(fac_->Eventually(any)));
  }

 private:
  FormulaFactory* fac_;
  const TmEncoding& enc_;
  RigidOps* ops_;
  Term x_, y_, z_;
};

}  // namespace

Result<TmFormulas> BuildPhi(const TmEncoding& enc) {
  if (enc.with_w()) {
    return Status::InvalidArgument("BuildPhi expects an encoding without W");
  }
  TmFormulas out;
  out.factory = std::make_shared<FormulaFactory>(enc.vocabulary());
  FormulaFactory* fac = out.factory.get();
  BuiltinOps ops(fac, enc);
  PhiBuilder b(fac, enc, &ops);
  TIC_ASSIGN_OR_RETURN(Formula uniq, b.Uniqueness());
  TIC_ASSIGN_OR_RETURN(Formula init, b.Initial());
  TIC_ASSIGN_OR_RETURN(Formula trans, b.TransitionRules());
  TIC_ASSIGN_OR_RETURN(Formula rep, b.Repeating());
  auto close = [&](Formula body) {
    return fac->Forall(b.x().id,
                       fac->Forall(b.y().id, fac->Forall(b.z().id, body)));
  };
  out.uniqueness = close(uniq);
  out.initial = close(init);
  out.transition = close(trans);
  out.repeating = close(rep);
  out.phi = close(fac->AndAll({uniq, init, trans, rep}));
  return out;
}

Result<TmTildeFormulas> BuildPhiTilde(const TmEncoding& enc) {
  if (!enc.with_w()) {
    return Status::InvalidArgument("BuildPhiTilde expects an encoding with W");
  }
  TmTildeFormulas out;
  out.factory = std::make_shared<FormulaFactory>(enc.vocabulary());
  FormulaFactory* fac = out.factory.get();
  WOps ops(fac, enc);
  PhiBuilder b(fac, enc, &ops);

  Term x = b.x(), y = b.y(), z = b.z();
  TIC_ASSIGN_OR_RETURN(Formula wx, fac->Atom(enc.w_pred(), {x}));
  TIC_ASSIGN_OR_RETURN(Formula wy, fac->Atom(enc.w_pred(), {y}));
  TIC_ASSIGN_OR_RETURN(Formula wz, fac->Atom(enc.w_pred(), {z}));

  // W1: per state, at most one W-element.
  Formula w1_body =
      fac->Always(fac->Implies(fac->And(wx, wy), fac->Equals(x, y)));
  out.w1 = fac->Forall(x.id, fac->Forall(y.id, w1_body));
  // W2: per state, some W-element — the single internal existential quantifier.
  Term u = Term::Var(fac->InternVar("u"));
  TIC_ASSIGN_OR_RETURN(Formula wu, fac->Atom(enc.w_pred(), {u}));
  out.w2 = fac->Always(fac->Exists(u.id, wu));
  // W3: each element is W in at most one state.
  Formula w3_body = fac->Always(
      fac->Implies(wx, fac->Next(fac->Always(fac->Not(wx)))));
  out.w3 = fac->Forall(x.id, w3_body);

  // Relativized phi: quantifiers restricted to the W-ordered part.
  TIC_ASSIGN_OR_RETURN(Formula u1, b.Uniqueness());
  TIC_ASSIGN_OR_RETURN(Formula u2, b.Initial());
  TIC_ASSIGN_OR_RETURN(Formula u3, b.TransitionRules());
  TIC_ASSIGN_OR_RETURN(Formula u4, b.Repeating());
  Formula psi_w = fac->AndAll({u1, u2, u3, u4});
  Formula guard = fac->AndAll(
      {fac->Eventually(wx), fac->Eventually(wy), fac->Eventually(wz)});
  Formula phi_w_body = fac->Implies(guard, psi_w);
  out.phi_w = fac->Forall(
      x.id, fac->Forall(y.id, fac->Forall(z.id, phi_w_body)));

  // phi~ == forall x y z . (W1-body & W3-body & W2 & (guard -> psi_W)),
  // a forall^3 tense(Sigma_1) sentence over monadic predicates only.
  Formula tilde_body = fac->AndAll({w1_body, w3_body, out.w2, phi_w_body});
  out.phi_tilde = fac->Forall(
      x.id, fac->Forall(y.id, fac->Forall(z.id, tilde_body)));
  return out;
}

Result<BoundedTmInstance> BuildBoundedInstance(const TuringMachine& machine,
                                               const std::string& input,
                                               size_t region) {
  if (region < input.size() + 2) {
    return Status::InvalidArgument(
        "region must cover the input, the state symbol and one boundary cell");
  }
  BoundedTmInstance out;
  // The formulas and D0 reference only predicate ids of the vocabulary (owned
  // by the returned factory/history), so the machine copy and encoding may be
  // locals: nothing in the instance dangles after they are destroyed.
  auto machine_copy = std::make_shared<TuringMachine>(machine);
  auto enc_holder = std::make_shared<TmEncoding>(
      *TmEncoding::CreateBounded(machine_copy.get()));
  const TmEncoding& enc = *enc_holder;
  out.vocab = enc.vocabulary();
  out.factory = std::make_shared<FormulaFactory>(out.vocab);
  FormulaFactory* fac = out.factory.get();

  DbOps ops(fac, enc);
  PhiBuilder b(fac, enc, &ops);
  Term x = b.x(), y = b.y();

  TIC_ASSIGN_OR_RETURN(Formula uniq, b.Uniqueness());
  TIC_ASSIGN_OR_RETURN(Formula trans, b.TransitionRules());

  // Rigidity: Succ/First/Last never change (the Section 6 sketch's "the
  // formula can force that this relation remains the same throughout").
  auto rigid1 = [&](PredicateId p, Term t) -> Result<Formula> {
    TIC_ASSIGN_OR_RETURN(Formula a, fac->Atom(p, {t}));
    return fac->Always(fac->And(fac->Implies(a, fac->Next(a)),
                                fac->Implies(fac->Not(a), fac->Next(fac->Not(a)))));
  };
  TIC_ASSIGN_OR_RETURN(Formula succ_xy, fac->Atom(enc.succ(), {x, y}));
  Formula succ_rigid = fac->Always(
      fac->And(fac->Implies(succ_xy, fac->Next(succ_xy)),
               fac->Implies(fac->Not(succ_xy), fac->Next(fac->Not(succ_xy)))));
  TIC_ASSIGN_OR_RETURN(Formula first_rigid, rigid1(enc.zero(), x));
  TIC_ASSIGN_OR_RETURN(Formula last_rigid, rigid1(enc.last_pred(), x));

  // Boundary: the head never reaches the Last cell (space bound), and the
  // Last cell's content is frozen — it is the only region position not
  // covered by a successor window, so without this its letters would be
  // unconstrained in every state (and the tableau would branch on them).
  TIC_ASSIGN_OR_RETURN(Formula last_x, fac->Atom(enc.last_pred(), {x}));
  TIC_ASSIGN_OR_RETURN(Formula any_state_x, b.AnyState(x));
  TIC_ASSIGN_OR_RETURN(Formula copy_last, b.CopySymbolsTo(x, x));
  Formula boundary = fac->Always(
      fac->Implies(last_x, fac->And(fac->Not(any_state_x), copy_last)));

  Formula body = fac->AndAll(
      {uniq, trans, succ_rigid, first_rigid, last_rigid, boundary});
  out.phi = fac->Forall(
      b.x().id, fac->Forall(b.y().id, fac->Forall(b.z().id, body)));

  // D0: the initial configuration plus the Succ chain and region markers.
  Simulator sim(machine_copy.get());
  TIC_ASSIGN_OR_RETURN(Configuration c0, sim.Initial(input));
  TIC_ASSIGN_OR_RETURN(DatabaseState d0, enc.EncodeConfiguration(c0));
  for (size_t i = 0; i + 1 < region; ++i) {
    TIC_RETURN_NOT_OK(d0.Insert(enc.succ(), {static_cast<Value>(i),
                                             static_cast<Value>(i) + 1}));
  }
  TIC_RETURN_NOT_OK(d0.Insert(enc.zero(), {0}));
  TIC_RETURN_NOT_OK(
      d0.Insert(enc.last_pred(), {static_cast<Value>(region) - 1}));
  TIC_ASSIGN_OR_RETURN(out.history, History::Create(out.vocab));
  TIC_RETURN_NOT_OK(out.history.AppendState(std::move(d0)));
  out.region = region;

  return out;
}

}  // namespace tm
}  // namespace tic
