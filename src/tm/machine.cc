#include "tm/machine.h"

namespace tic {
namespace tm {

Result<TuringMachine> TuringMachine::Create(std::vector<std::string> state_names,
                                            std::vector<char> alphabet) {
  if (state_names.empty()) {
    return Status::InvalidArgument("a machine needs at least the initial state");
  }
  bool has0 = false, has1 = false, hasB = false;
  for (char c : alphabet) {
    has0 = has0 || c == '0';
    has1 = has1 || c == '1';
    hasB = hasB || c == kBlank;
  }
  if (!has0 || !has1 || !hasB) {
    return Status::InvalidArgument("alphabet must contain '0', '1' and 'B'");
  }
  return TuringMachine(std::move(state_names), std::move(alphabet));
}

Status TuringMachine::AddTransition(uint32_t state, char read, uint32_t next_state,
                                    char write, Dir dir) {
  if (state >= state_names_.size() || next_state >= state_names_.size()) {
    return Status::OutOfRange("state index out of range");
  }
  if (!HasSymbol(read) || !HasSymbol(write)) {
    return Status::InvalidArgument("symbol not in alphabet");
  }
  auto [it, inserted] = delta_.emplace(std::make_pair(state, read),
                                       Transition{next_state, write, dir});
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("duplicate transition (machine must be deterministic)");
  }
  return Status::OK();
}

Result<TuringMachine> MakeImmediateHaltMachine() {
  return TuringMachine::Create({"q0"}, {'0', '1', 'B'});
}

Result<TuringMachine> MakeRightWalkerMachine() {
  TIC_ASSIGN_OR_RETURN(TuringMachine m,
                       TuringMachine::Create({"q0"}, {'0', '1', 'B'}));
  TIC_RETURN_NOT_OK(m.AddTransition(0, '0', 0, '0', Dir::kRight));
  TIC_RETURN_NOT_OK(m.AddTransition(0, '1', 0, '1', Dir::kRight));
  TIC_RETURN_NOT_OK(m.AddTransition(0, 'B', 0, 'B', Dir::kRight));
  return m;
}

Result<TuringMachine> MakeShuttleMachine() {
  // q0 marks the origin with 'M'; qR walks right to the first blank; qL walks
  // back to the mark (an origin visit), then repeats.
  TIC_ASSIGN_OR_RETURN(
      TuringMachine m, TuringMachine::Create({"q0", "qR", "qL"}, {'0', '1', 'B', 'M'}));
  const uint32_t q0 = 0, qR = 1, qL = 2;
  TIC_RETURN_NOT_OK(m.AddTransition(q0, '0', qR, 'M', Dir::kRight));
  TIC_RETURN_NOT_OK(m.AddTransition(q0, '1', qR, 'M', Dir::kRight));
  TIC_RETURN_NOT_OK(m.AddTransition(q0, 'B', qR, 'M', Dir::kRight));
  TIC_RETURN_NOT_OK(m.AddTransition(qR, '0', qR, '0', Dir::kRight));
  TIC_RETURN_NOT_OK(m.AddTransition(qR, '1', qR, '1', Dir::kRight));
  TIC_RETURN_NOT_OK(m.AddTransition(qR, 'B', qL, 'B', Dir::kLeft));
  TIC_RETURN_NOT_OK(m.AddTransition(qL, '0', qL, '0', Dir::kLeft));
  TIC_RETURN_NOT_OK(m.AddTransition(qL, '1', qL, '1', Dir::kLeft));
  TIC_RETURN_NOT_OK(m.AddTransition(qL, 'M', qR, 'M', Dir::kRight));
  return m;
}

Result<TuringMachine> MakeBinaryCounterMachine() {
  // Cell 0 holds the mark; cells 1.. hold a binary counter, least significant
  // bit first. `inc` propagates the carry right; `ret` returns to the mark.
  TIC_ASSIGN_OR_RETURN(
      TuringMachine m,
      TuringMachine::Create({"q0", "inc", "ret"}, {'0', '1', 'B', 'M'}));
  const uint32_t q0 = 0, inc = 1, ret = 2;
  TIC_RETURN_NOT_OK(m.AddTransition(q0, '0', inc, 'M', Dir::kRight));
  TIC_RETURN_NOT_OK(m.AddTransition(q0, '1', inc, 'M', Dir::kRight));
  TIC_RETURN_NOT_OK(m.AddTransition(q0, 'B', inc, 'M', Dir::kRight));
  TIC_RETURN_NOT_OK(m.AddTransition(inc, '1', inc, '0', Dir::kRight));
  TIC_RETURN_NOT_OK(m.AddTransition(inc, '0', ret, '1', Dir::kLeft));
  TIC_RETURN_NOT_OK(m.AddTransition(inc, 'B', ret, '1', Dir::kLeft));
  TIC_RETURN_NOT_OK(m.AddTransition(ret, '0', ret, '0', Dir::kLeft));
  TIC_RETURN_NOT_OK(m.AddTransition(ret, '1', ret, '1', Dir::kLeft));
  TIC_RETURN_NOT_OK(m.AddTransition(ret, 'M', inc, 'M', Dir::kRight));
  return m;
}

}  // namespace tm
}  // namespace tic
