#ifndef TIC_TM_FORMULAS_H_
#define TIC_TM_FORMULAS_H_

#include <memory>

#include "common/result.h"
#include "fotl/factory.h"
#include "tm/encoding.h"

namespace tic {
namespace tm {

/// \brief The appendix formula phi = forall x y z . psi (Proposition 3.1):
/// a universal formula over the extended vocabulary (<=, succ, Zero) whose
/// temporal models are exactly the encodings of repeating computations of the
/// machine.
///
/// The appendix sketches the rule groups; the complete rule set built here is:
///  1. uniqueness  — at most one of the monadic predicates per position, always;
///  2. initial     — state 0 encodes an initial configuration q0 w B^omega;
///  3. transition  — each database state is followed by the successor
///     configuration word: head-window rules per transition (both move
///     directions), frame rules for state-free windows, an origin frame rule,
///     and X false rules excluding halting/left-crashing continuations;
///  4. repeating   — the origin position carries a state predicate infinitely
///     often (forall x . Zero(x) -> G F \/_q P_q(x)).
struct TmFormulas {
  std::shared_ptr<fotl::FormulaFactory> factory;
  fotl::Formula uniqueness = nullptr;
  fotl::Formula initial = nullptr;
  fotl::Formula transition = nullptr;
  fotl::Formula repeating = nullptr;
  /// phi == forall x y z . (psi1 & psi2 & psi3 & psi4), the Proposition 3.1
  /// form with k = 3 external universal quantifiers.
  fotl::Formula phi = nullptr;
};

/// \pre !enc.with_w()
Result<TmFormulas> BuildPhi(const TmEncoding& enc);

/// \brief The Section 3 phi-tilde construction: eliminates the extended
/// vocabulary using the fresh monadic predicate W whose temporal occurrence
/// order defines an omega-ordering of the universe:
///   x <=_W y   ==  F (W(x) & F W(y))
///   S_W(x, y)  ==  F (W(x) & X W(y))
///   Z_W(x)     ==  W(x)
/// together with W1 (one W-element per state), W2 (some W-element per state —
/// the single internal existential quantifier), and W3 (each element is W in
/// at most one state). The result is a forall^3 tense(Sigma_1) sentence over a
/// purely monadic vocabulary (Theorem 3.2: its extension problem is
/// Sigma^0_2-complete).
struct TmTildeFormulas {
  std::shared_ptr<fotl::FormulaFactory> factory;  ///< over the with_w vocabulary
  fotl::Formula w1 = nullptr;
  fotl::Formula w2 = nullptr;  ///< the tense(Sigma_1) conjunct G exists u . W(u)
  fotl::Formula w3 = nullptr;
  fotl::Formula phi_w = nullptr;  ///< relativized phi
  fotl::Formula phi_tilde = nullptr;
};

/// \pre enc.with_w()
Result<TmTildeFormulas> BuildPhiTilde(const TmEncoding& enc);

/// \brief The Section 6 lower-bound construction, made runnable: a
/// *space-bounded* machine encoded entirely over an ordinary database
/// vocabulary, so the Theorem 4.2 checker applies.
///
/// Instead of the builtin succ/Zero, the tape ordering lives in a binary
/// database relation `Succ` (plus monadic `First`/`Last` markers) that the
/// initial state D0 provides and the formula holds rigid
/// ("it is enough that the successor relation will be correctly defined in
/// D0; the formula can force that this relation remains the same throughout
/// the other database states"). The constraint is a *universal safety
/// sentence*: uniqueness + transition forcing + rigidity + a Last-exclusion
/// rule that forbids the head from reaching the region boundary.
///
/// Consequence (the paper's point): the single-state history (D0) is
/// potentially satisfied iff the machine runs forever within the region —
/// so the checker's running time must track the machine's, and |R_D| (the
/// region size) cannot leave the exponent. Conversely, when the answer is
/// YES the checker's witness lasso IS the machine's eventual cycle: the
/// decision procedure synthesizes the computation.
struct BoundedTmInstance {
  VocabularyPtr vocab;
  std::shared_ptr<fotl::FormulaFactory> factory;
  fotl::Formula phi = nullptr;  ///< universal safety sentence (k = 3, l = 2)
  History history;              ///< the single-state history (D0)
  size_t region = 0;            ///< number of word positions 0..region-1

  BoundedTmInstance() : history(*History::Create(std::make_shared<Vocabulary>())) {}
};

/// \brief Builds the bounded instance for `machine` on `input`, with a tape
/// region of `region` word positions (must fit the input plus the state
/// symbol). The machine must stay strictly left of position region-1 forever
/// for the instance to be potentially satisfiable.
Result<BoundedTmInstance> BuildBoundedInstance(const TuringMachine& machine,
                                               const std::string& input,
                                               size_t region);

}  // namespace tm
}  // namespace tic

#endif  // TIC_TM_FORMULAS_H_
