#ifndef TIC_TM_EXPLORER_H_
#define TIC_TM_EXPLORER_H_

#include <functional>
#include <string>

#include "common/result.h"
#include "tm/simulator.h"

namespace tic {
namespace tm {

/// \brief Result of a bounded exploration of the repeating-behaviour question.
///
/// "Does input w induce a repeating behaviour of M?" is Sigma^0_2-complete in
/// general (Lemma 3.1), so no bounded procedure can decide it; this explorer
/// reports what is knowable within a step budget. This is exactly the
/// semi-decision structure that Theorem 3.1's "for each n there is a
/// prolongation with >= n origin visits" formulation describes.
struct ExploreResult {
  size_t steps = 0;
  size_t origin_visits = 0;
  /// kHalt / kLeftCrash: refuted — the computation is finite, the behaviour is
  /// definitely NOT repeating. kContinue: budget exhausted, undecided (the
  /// visits count is a lower bound).
  StepOutcome verdict = StepOutcome::kContinue;
};

/// \brief Runs M on `input` for up to `max_steps` moves, counting origin
/// visits. Because M is deterministic, this simultaneously answers the
/// extension question for the encoded history prefix (Theorem 3.1 proof): the
/// one-state history encoding q0 w extends to >= n origin visits iff the run
/// reaches n visits.
Result<ExploreResult> ExploreRepeating(const TuringMachine& machine,
                                       const std::string& input, size_t max_steps);

/// \brief Semi-decides "the computation of M on `input` visits the origin at
/// least `n` times" within `max_steps` moves: returns true/false when
/// determined, ResourceExhausted when the budget runs out first.
Result<bool> ReachesOriginVisits(const TuringMachine& machine,
                                 const std::string& input, size_t n,
                                 size_t max_steps);

/// \brief The Lemma 3.1 construction, at the observable-behaviour level: the
/// machine M_R built from a decidable relation R(w, v, u) whose input w
/// induces repeating behaviour iff forall v exists u R(w, v, u).
///
/// M_R walks v = 0, 1, 2, ... and, for each v, dovetails over candidate pairs
/// (u, m) — simulating m steps of the R-decider on (w, v, u) — visiting the
/// origin once a witness u is found, then moving to v+1. If some v has no
/// witness, M_R works on that v forever and never returns to the origin.
/// We expose the probe/visit structure abstractly; one abstract step = one
/// dovetail probe.
class DovetailingMachine {
 public:
  using Relation = std::function<bool(const std::string& w, uint64_t v, uint64_t u)>;

  DovetailingMachine(Relation relation, std::string input)
      : relation_(std::move(relation)), input_(std::move(input)) {}

  struct Progress {
    uint64_t probes = 0;         ///< abstract steps consumed so far (cumulative)
    uint64_t origin_visits = 0;  ///< v-values completed so far (cumulative)
    uint64_t current_v = 0;      ///< the v currently being searched
    uint64_t next_u = 0;         ///< next u candidate for current_v
  };

  /// Runs `budget` more probes; state persists across calls.
  const Progress& Run(uint64_t budget);

  const Progress& progress() const { return progress_; }

 private:
  Relation relation_;
  std::string input_;
  Progress progress_;
};

}  // namespace tm
}  // namespace tic

#endif  // TIC_TM_EXPLORER_H_
