#ifndef TIC_TM_MACHINE_H_
#define TIC_TM_MACHINE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"

namespace tic {
namespace tm {

/// \brief Head movement direction.
enum class Dir : uint8_t { kLeft, kRight };

/// \brief One transition: in state `state` scanning `read`, write `write`,
/// switch to `next_state`, move `dir`.
struct Transition {
  uint32_t next_state;
  char write;
  Dir dir;
};

/// \brief A deterministic single-tape Turing machine with a tape infinite to
/// the right (Section 3): alphabet includes the input alphabet {0,1} and the
/// blank 'B'; state 0 is initial. Missing transitions mean the machine halts.
class TuringMachine {
 public:
  /// \param state_names human-readable state names (index 0 = initial q0)
  /// \param alphabet must contain '0', '1', 'B'
  static Result<TuringMachine> Create(std::vector<std::string> state_names,
                                      std::vector<char> alphabet);

  size_t num_states() const { return state_names_.size(); }
  const std::string& state_name(uint32_t q) const { return state_names_[q]; }
  const std::vector<char>& alphabet() const { return alphabet_; }
  static constexpr char kBlank = 'B';

  /// Adds delta(state, read) = (next_state, write, dir). Fails on duplicates,
  /// out-of-range states, or symbols not in the alphabet.
  Status AddTransition(uint32_t state, char read, uint32_t next_state, char write,
                       Dir dir);

  /// Looks up delta(state, read); false when the machine halts there.
  bool Lookup(uint32_t state, char read, Transition* out) const {
    auto it = delta_.find({state, read});
    if (it == delta_.end()) return false;
    *out = it->second;
    return true;
  }

  /// All transitions, for the Section 3 formula builder.
  const std::map<std::pair<uint32_t, char>, Transition>& transitions() const {
    return delta_;
  }

  bool HasSymbol(char c) const {
    for (char a : alphabet_) {
      if (a == c) return true;
    }
    return false;
  }

 private:
  TuringMachine(std::vector<std::string> state_names, std::vector<char> alphabet)
      : state_names_(std::move(state_names)), alphabet_(std::move(alphabet)) {}

  std::vector<std::string> state_names_;
  std::vector<char> alphabet_;
  std::map<std::pair<uint32_t, char>, Transition> delta_;
};

/// \name A small library of machines with the three qualitatively different
/// behaviours that the Section 3 reduction distinguishes.
/// @{

/// Halts immediately on any input (computation finite => not repeating).
Result<TuringMachine> MakeImmediateHaltMachine();

/// Walks right forever without ever returning to the origin
/// (computation infinite but not repeating).
Result<TuringMachine> MakeRightWalkerMachine();

/// Shuttles between the origin and the end of the input forever
/// (repeating behaviour with a bounded tape).
Result<TuringMachine> MakeShuttleMachine();

/// Repeatedly increments a binary counter written on the tape, returning to
/// the origin after each increment (repeating behaviour with an unboundedly
/// growing tape) — the interesting witness for Lemma 3.1-style machines.
Result<TuringMachine> MakeBinaryCounterMachine();

/// @}

}  // namespace tm
}  // namespace tic

#endif  // TIC_TM_MACHINE_H_
