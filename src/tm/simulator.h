#ifndef TIC_TM_SIMULATOR_H_
#define TIC_TM_SIMULATOR_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "tm/machine.h"

namespace tic {
namespace tm {

/// \brief A machine configuration: finite explicit tape (blanks beyond),
/// head position and control state. The paper presents configurations as the
/// infinite word alpha q beta B^omega with the state symbol immediately before
/// the scanned cell; AsConfigurationWord renders that form.
struct Configuration {
  std::vector<char> tape;
  size_t head = 0;
  uint32_t state = 0;

  char Read() const { return head < tape.size() ? tape[head] : TuringMachine::kBlank; }

  /// The paper's configuration word c_0 c_1 ... : symbols with the state
  /// inserted before the scanned cell. Length = max(tape, head)+1 plus one.
  std::string AsConfigurationWord(const TuringMachine& m) const;
};

/// \brief Outcome of one step.
enum class StepOutcome {
  kContinue,
  kHalt,       ///< no transition defined
  kLeftCrash,  ///< attempted to move left of the origin
};

/// \brief Deterministic simulator over one TuringMachine.
class Simulator {
 public:
  explicit Simulator(const TuringMachine* machine) : machine_(machine) {}

  /// Initial configuration q0 w B^omega for input w over {0,1}.
  Result<Configuration> Initial(const std::string& input) const;

  /// Executes one move; mutates `c` only on kContinue.
  StepOutcome Step(Configuration* c) const;

  struct RunStats {
    size_t steps = 0;
    /// Number of configurations (including the initial one) with the head on
    /// the leftmost cell — the quantity of the repeating-behaviour problem.
    size_t origin_visits = 0;
    StepOutcome last = StepOutcome::kContinue;  ///< kContinue == budget exhausted
  };

  /// Runs up to `max_steps` moves, counting origin visits.
  RunStats Run(Configuration* c, size_t max_steps) const;

  const TuringMachine& machine() const { return *machine_; }

 private:
  const TuringMachine* machine_;
};

}  // namespace tm
}  // namespace tic

#endif  // TIC_TM_SIMULATOR_H_
