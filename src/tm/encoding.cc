#include "tm/encoding.h"

namespace tic {
namespace tm {

Result<TmEncoding> TmEncoding::Create(const TuringMachine* machine, bool with_w) {
  TmEncoding enc;
  enc.machine_ = machine;
  enc.with_w_ = with_w;
  auto vocab = std::make_shared<Vocabulary>();
  for (uint32_t q = 0; q < machine->num_states(); ++q) {
    TIC_ASSIGN_OR_RETURN(PredicateId p,
                         vocab->AddPredicate("P_" + machine->state_name(q), 1));
    enc.state_preds_.push_back(p);
  }
  for (char sym : machine->alphabet()) {
    if (sym == TuringMachine::kBlank) continue;
    TIC_ASSIGN_OR_RETURN(PredicateId p,
                         vocab->AddPredicate(std::string("P_") + sym, 1));
    enc.symbol_preds_.emplace(sym, p);
  }
  TIC_ASSIGN_OR_RETURN(enc.leq_, vocab->AddBuiltin("leq", Builtin::kLessEq));
  TIC_ASSIGN_OR_RETURN(enc.succ_, vocab->AddBuiltin("succ", Builtin::kSucc));
  TIC_ASSIGN_OR_RETURN(enc.zero_, vocab->AddBuiltin("Zero", Builtin::kZero));
  if (with_w) {
    TIC_ASSIGN_OR_RETURN(enc.w_pred_, vocab->AddPredicate("W", 1));
  }
  enc.vocab_ = std::move(vocab);
  return enc;
}

Result<TmEncoding> TmEncoding::CreateBounded(const TuringMachine* machine) {
  TmEncoding enc;
  enc.machine_ = machine;
  enc.bounded_ = true;
  auto vocab = std::make_shared<Vocabulary>();
  for (uint32_t q = 0; q < machine->num_states(); ++q) {
    TIC_ASSIGN_OR_RETURN(PredicateId p,
                         vocab->AddPredicate("P_" + machine->state_name(q), 1));
    enc.state_preds_.push_back(p);
  }
  for (char sym : machine->alphabet()) {
    if (sym == TuringMachine::kBlank) continue;
    TIC_ASSIGN_OR_RETURN(PredicateId p,
                         vocab->AddPredicate(std::string("P_") + sym, 1));
    enc.symbol_preds_.emplace(sym, p);
  }
  TIC_ASSIGN_OR_RETURN(enc.succ_, vocab->AddPredicate("Succ", 2));
  TIC_ASSIGN_OR_RETURN(enc.zero_, vocab->AddPredicate("First", 1));
  TIC_ASSIGN_OR_RETURN(enc.last_, vocab->AddPredicate("Last", 1));
  enc.vocab_ = std::move(vocab);
  return enc;
}

Result<PredicateId> TmEncoding::symbol_pred(char sym) const {
  auto it = symbol_preds_.find(sym);
  if (it == symbol_preds_.end()) {
    return Status::NotFound(std::string("no predicate for symbol '") + sym + "'");
  }
  return it->second;
}

Result<DatabaseState> TmEncoding::EncodeConfiguration(const Configuration& c,
                                                      Value w_position) const {
  DatabaseState state(vocab_);
  // Configuration word: cells 0..head-1, then the state symbol, then the
  // scanned cell and the rest of the tape.
  size_t cells = std::max(c.tape.size(), c.head);
  for (size_t i = 0; i < cells + 1; ++i) {
    Value pos = static_cast<Value>(i);
    char sym;
    if (i < c.head) {
      sym = i < c.tape.size() ? c.tape[i] : TuringMachine::kBlank;
    } else if (i == c.head) {
      TIC_RETURN_NOT_OK(state.Insert(state_preds_[c.state], {pos}));
      continue;
    } else {
      size_t cell = i - 1;  // shifted one right of the state symbol
      sym = cell < c.tape.size() ? c.tape[cell] : TuringMachine::kBlank;
    }
    if (sym == TuringMachine::kBlank) continue;
    TIC_ASSIGN_OR_RETURN(PredicateId p, symbol_pred(sym));
    TIC_RETURN_NOT_OK(state.Insert(p, {pos}));
  }
  if (with_w_ && w_position >= 0) {
    TIC_RETURN_NOT_OK(state.Insert(w_pred_, {w_position}));
  }
  return state;
}

Result<Configuration> TmEncoding::DecodeState(const DatabaseState& s,
                                              size_t limit) const {
  Configuration c;
  bool state_seen = false;
  std::vector<char> word(limit, TuringMachine::kBlank);
  for (uint32_t q = 0; q < machine_->num_states(); ++q) {
    for (const Tuple& t : s.relation(state_preds_[q])) {
      if (t[0] < 0 || static_cast<size_t>(t[0]) >= limit) {
        return Status::OutOfRange("state symbol beyond decode limit");
      }
      if (state_seen) return Status::InvalidArgument("two state symbols in state");
      state_seen = true;
      c.state = q;
      c.head = static_cast<size_t>(t[0]);
      word[t[0]] = '\0';  // marker
    }
  }
  if (!state_seen) return Status::InvalidArgument("no state symbol in database state");
  for (const auto& [sym, pred] : symbol_preds_) {
    for (const Tuple& t : s.relation(pred)) {
      if (t[0] < 0 || static_cast<size_t>(t[0]) >= limit) {
        return Status::OutOfRange("tape symbol beyond decode limit");
      }
      if (word[t[0]] != TuringMachine::kBlank) {
        return Status::InvalidArgument("two symbols at one position");
      }
      word[t[0]] = sym;
    }
  }
  // Rebuild the tape: word positions before the head copy over; positions
  // after the state symbol shift one left.
  c.tape.clear();
  for (size_t i = 0; i < limit; ++i) {
    if (i == c.head) continue;
    size_t cell = i < c.head ? i : i - 1;
    if (c.tape.size() <= cell) c.tape.resize(cell + 1, TuringMachine::kBlank);
    if (word[i] != '\0') c.tape[cell] = word[i];
  }
  while (!c.tape.empty() && c.tape.back() == TuringMachine::kBlank) c.tape.pop_back();
  return c;
}

Result<History> TmEncoding::EncodeComputation(const std::string& input,
                                              size_t num_states) const {
  Simulator sim(machine_);
  TIC_ASSIGN_OR_RETURN(Configuration c, sim.Initial(input));
  TIC_ASSIGN_OR_RETURN(History h, History::Create(vocab_));
  for (size_t t = 0; t < num_states; ++t) {
    TIC_ASSIGN_OR_RETURN(
        DatabaseState s,
        EncodeConfiguration(c, with_w_ ? static_cast<Value>(t) : Value{-1}));
    TIC_RETURN_NOT_OK(h.AppendState(std::move(s)));
    if (t + 1 < num_states) {
      StepOutcome out = sim.Step(&c);
      if (out == StepOutcome::kHalt) {
        return Status::InvalidArgument("machine halted before step " +
                                       std::to_string(t + 1));
      }
      if (out == StepOutcome::kLeftCrash) {
        return Status::InvalidArgument("machine fell off the tape at step " +
                                       std::to_string(t + 1));
      }
    }
  }
  return h;
}

}  // namespace tm
}  // namespace tic
