#ifndef TIC_TM_ENCODING_H_
#define TIC_TM_ENCODING_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "db/history.h"
#include "tm/simulator.h"

namespace tic {
namespace tm {

/// \brief The Section 3 / Appendix encoding of machine configurations as
/// database states over a monadic vocabulary.
///
/// The vocabulary has one monadic predicate P_q per state q and one monadic
/// predicate P_s per tape symbol s except the blank (P_B is the abbreviation
/// "no predicate true here"), plus the extended-vocabulary builtins <=, succ,
/// Zero. A database state encodes the configuration word c_0 c_1 ... (state
/// symbol inserted before the scanned cell): predicate P_z true of i iff
/// c_i = z.
class TmEncoding {
 public:
  /// `machine` must outlive the encoding. When `with_w` is set, the vocabulary
  /// additionally carries the fresh monadic predicate W of the phi-tilde
  /// construction (and EncodeComputation marks W(t) in state t).
  static Result<TmEncoding> Create(const TuringMachine* machine, bool with_w = false);

  /// Ordinary-vocabulary variant for the Section 6 bounded-space construction:
  /// instead of the <= / succ / Zero builtins, the vocabulary carries ordinary
  /// database relations Succ/2, First/1 and Last/1 whose interpretation D0
  /// supplies and the formula holds rigid. No leq is available.
  static Result<TmEncoding> CreateBounded(const TuringMachine* machine);

  const VocabularyPtr& vocabulary() const { return vocab_; }
  const TuringMachine& machine() const { return *machine_; }
  bool with_w() const { return with_w_; }

  PredicateId state_pred(uint32_t q) const { return state_preds_[q]; }
  /// \pre sym in alphabet, sym != 'B'
  Result<PredicateId> symbol_pred(char sym) const;
  PredicateId leq() const { return leq_; }
  PredicateId succ() const { return succ_; }
  PredicateId zero() const { return zero_; }
  /// \pre with_w()
  PredicateId w_pred() const { return w_pred_; }
  /// \pre bounded()
  PredicateId last_pred() const { return last_; }
  bool bounded() const { return bounded_; }

  /// Encodes one configuration as a database state; when with_w, `w_position`
  /// (if non-negative) is the element satisfying W in this state.
  Result<DatabaseState> EncodeConfiguration(const Configuration& c,
                                            Value w_position = -1) const;

  /// Decodes a database state back into a configuration (inverse of
  /// EncodeConfiguration); positions are scanned up to `limit`.
  Result<Configuration> DecodeState(const DatabaseState& s, size_t limit) const;

  /// Encodes the first `num_states` configurations of the computation on
  /// `input` as a finite history (with_w: state t additionally marks W(t)).
  /// Fails if the machine halts or crashes before producing enough
  /// configurations.
  Result<History> EncodeComputation(const std::string& input,
                                    size_t num_states) const;

 private:
  TmEncoding() = default;

  const TuringMachine* machine_ = nullptr;
  VocabularyPtr vocab_;
  bool with_w_ = false;
  std::vector<PredicateId> state_preds_;
  std::unordered_map<char, PredicateId> symbol_preds_;
  PredicateId leq_ = 0, succ_ = 0, zero_ = 0, w_pred_ = 0, last_ = 0;
  bool bounded_ = false;
};

}  // namespace tm
}  // namespace tic

#endif  // TIC_TM_ENCODING_H_
