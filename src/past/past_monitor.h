#ifndef TIC_PAST_PAST_MONITOR_H_
#define TIC_PAST_PAST_MONITOR_H_

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "db/update.h"
#include "fotl/evaluator.h"
#include "fotl/factory.h"

namespace tic {
namespace past {

/// \brief Verdict after one transaction.
struct PastVerdict {
  size_t time = 0;
  /// A(theta) held at the new instant for every substitution — the G-past
  /// constraint is still satisfied by the history.
  bool satisfied = false;
  /// Instant of the first violation, once one occurred (violations of
  /// G-constraints are permanent).
  std::optional<size_t> first_violation;
};

/// \brief History-less monitor for constraints of the form
/// `forall x1 ... xm . G A` with A a *past* formula — the Past FOTL baseline
/// of Chomicki [3] cited in Sections 1, 5 and 6, and the shape of
/// Proposition 2.1 (always a safety property).
///
/// Unlike the potential-satisfaction checker (Theorem 4.2), this implements
/// the weaker classical notion: report a violation as soon as A fails at some
/// instant <= now. It is "history-less": per update it touches only
/// constant-size-per-element auxiliary tables (one per temporal subformula of
/// A, keyed by valuations over the relevant set plus fresh-element
/// stand-ins), never the stored history — so the per-update cost is
/// independent of the history length (Experiment E6/E10).
class PastMonitor {
 public:
  static Result<std::unique_ptr<PastMonitor>> Create(
      std::shared_ptr<fotl::FormulaFactory> factory, fotl::Formula constraint,
      std::vector<Value> constant_interp = {});

  /// Applies `txn` (appending one state) and evaluates A at the new instant.
  Result<PastVerdict> ApplyTransaction(const Transaction& txn);

  const History& history() const { return history_; }
  const PastVerdict& last_verdict() const { return last_verdict_; }

  /// Total auxiliary-table entries — the "history-less" state size, which
  /// depends on |R_D| but not on the history length.
  size_t AuxiliaryStateSize() const;

 private:
  PastMonitor(std::shared_ptr<fotl::FormulaFactory> factory, History history);

  // One auxiliary table per temporal subformula (and per Prev-child), holding
  // the previous instant's truth values per projected valuation.
  struct Table {
    fotl::Formula node = nullptr;   // the temporal subformula
    fotl::Formula source = nullptr; // formula whose *current* value feeds the
                                    // next instant (child for Prev, self else)
    std::vector<fotl::VarId> vars;  // free vars, sorted
    std::unordered_map<Tuple, bool, TupleHash> prev;
    std::unordered_map<Tuple, bool, TupleHash> curr;
  };

  // Evaluates `f` at the current instant under `env`, reading temporal
  // subformulas from the freshly computed `curr` columns.
  Result<bool> EvalNow(fotl::Formula f,
                       const std::unordered_map<fotl::VarId, Value>& env);

  Tuple Project(const Table& table,
                const std::unordered_map<fotl::VarId, Value>& env) const;

  // Previous-instant value for `table` under a tuple possibly containing
  // elements that only became relevant this instant (canonicalized to
  // fresh-element stand-ins).
  bool PrevValue(const Table& table, const Tuple& tuple) const;

  std::shared_ptr<fotl::FormulaFactory> ffac_;
  fotl::Formula matrix_ = nullptr;        // A
  std::vector<fotl::VarId> external_;     // x1..xm
  size_t num_z_ = 0;                      // fresh-element stand-ins
  History history_;
  std::vector<Value> known_relevant_;     // sorted, before the current instant
  std::vector<Value> domain_;             // current M_t (relevant + z codes)
  std::vector<Table> tables_;             // post-order
  std::unordered_map<fotl::Formula, size_t> table_of_;
  PastVerdict last_verdict_;
  bool first_instant_ = true;
};

}  // namespace past
}  // namespace tic

#endif  // TIC_PAST_PAST_MONITOR_H_
