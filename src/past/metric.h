#ifndef TIC_PAST_METRIC_H_
#define TIC_PAST_METRIC_H_

#include <cstddef>

#include "fotl/factory.h"

namespace tic {
namespace past {

/// \brief Bounded-past ("metric") operator builders, after the Past Metric
/// FOTL extension the paper cites for real-time constraints (Section 5,
/// Chomicki'92). Discrete time: each builder expands into an ordinary past
/// formula of size O(k), so every metric constraint stays inside the
/// PastMonitor fragment.

/// `Once within the last k instants` (inclusive of now):
/// O_{<=k} A == A | Y (A | Y (... ))  with k nested Y's.
fotl::Formula OnceWithin(fotl::FormulaFactory* factory, size_t k, fotl::Formula a);

/// `Continuously for the last k instants` (inclusive of now; instants before
/// time 0 count as satisfied, matching H's behaviour at the history start):
/// H_{<=k} A == A & YW (A & YW (...)) where YW is the weak previous
/// (true at instant 0).
fotl::Formula HistoricallyWithin(fotl::FormulaFactory* factory, size_t k,
                                 fotl::Formula a);

/// `Exactly k instants ago` (false if the history is shorter): Y^k A.
fotl::Formula PrevK(fotl::FormulaFactory* factory, size_t k, fotl::Formula a);

/// Weak previous: true at instant 0, otherwise Y A. (Y A is false at 0.)
fotl::Formula WeakPrev(fotl::FormulaFactory* factory, fotl::Formula a);

}  // namespace past
}  // namespace tic

#endif  // TIC_PAST_METRIC_H_
