#include "past/past_monitor.h"

#include <algorithm>
#include <unordered_set>

#include "fotl/classify.h"

namespace tic {
namespace past {

namespace {

using fotl::NodeKind;

void CollectTemporalPostOrder(fotl::Formula f, std::vector<fotl::Formula>* out,
                              std::unordered_set<fotl::Formula>* seen) {
  if (!seen->insert(f).second) return;
  if (f->child(0) != nullptr) CollectTemporalPostOrder(f->child(0), out, seen);
  if (f->child(1) != nullptr) CollectTemporalPostOrder(f->child(1), out, seen);
  if (fotl::IsPastConnective(f->kind())) out->push_back(f);
}

bool HasBuiltin(const Vocabulary& vocab, fotl::Formula f) {
  if (f->kind() == NodeKind::kAtom &&
      vocab.predicate(f->predicate()).builtin != Builtin::kNone) {
    return true;
  }
  for (int i = 0; i < 2; ++i) {
    if (f->child(i) != nullptr && HasBuiltin(vocab, f->child(i))) return true;
  }
  return false;
}

}  // namespace

PastMonitor::PastMonitor(std::shared_ptr<fotl::FormulaFactory> factory,
                         History history)
    : ffac_(std::move(factory)), history_(std::move(history)) {}

Result<std::unique_ptr<PastMonitor>> PastMonitor::Create(
    std::shared_ptr<fotl::FormulaFactory> factory, fotl::Formula constraint,
    std::vector<Value> constant_interp) {
  if (!constraint->is_closed()) {
    return Status::InvalidArgument("constraint must be a sentence");
  }
  std::vector<fotl::VarId> external;
  fotl::Formula body = nullptr;
  fotl::StripUniversalPrefix(constraint, &external, &body);
  if (body->kind() != NodeKind::kAlways || body->child(0)->has_future()) {
    return Status::NotSupported(
        "PastMonitor handles constraints of the form forall* G A with A a "
        "past formula (Proposition 2.1)");
  }
  if (HasBuiltin(*factory->vocabulary(), constraint)) {
    return Status::NotSupported("extended-vocabulary builtins are unsupported");
  }
  TIC_ASSIGN_OR_RETURN(
      History h, History::Create(factory->vocabulary(), std::move(constant_interp)));
  std::unique_ptr<PastMonitor> m(new PastMonitor(std::move(factory), std::move(h)));
  m->external_ = external;
  m->matrix_ = body->child(0);
  m->num_z_ =
      external.size() + fotl::CountDistinctBoundVars(m->matrix_);
  if (m->num_z_ == 0) m->num_z_ = 1;

  // One table per past-temporal subformula, children first.
  std::vector<fotl::Formula> temporal;
  std::unordered_set<fotl::Formula> seen;
  CollectTemporalPostOrder(m->matrix_, &temporal, &seen);
  for (fotl::Formula node : temporal) {
    Table t;
    t.node = node;
    t.source = node->kind() == NodeKind::kPrev ? node->child(0) : node;
    t.vars = node->free_vars();
    m->table_of_.emplace(node, m->tables_.size());
    m->tables_.push_back(std::move(t));
  }

  // Initial domain: constants plus the fresh-element stand-ins (negative codes).
  m->known_relevant_ = m->history_.RelevantSet();
  m->domain_ = m->known_relevant_;
  for (size_t i = 0; i < m->num_z_; ++i) {
    m->domain_.push_back(-static_cast<Value>(i) - 1);
  }
  return m;
}

Tuple PastMonitor::Project(const Table& table,
                           const std::unordered_map<fotl::VarId, Value>& env) const {
  Tuple t;
  t.reserve(table.vars.size());
  for (fotl::VarId v : table.vars) t.push_back(env.at(v));
  return t;
}

bool PastMonitor::PrevValue(const Table& table, const Tuple& tuple) const {
  auto it = table.prev.find(tuple);
  if (it != table.prev.end()) return it->second;
  // Tuple mentions elements that only became relevant this instant: before
  // now they were indistinguishable from the fresh-element stand-ins, so
  // canonicalize each such element to a distinct unused stand-in and retry.
  Tuple canon = tuple;
  std::unordered_map<Value, Value> map;
  std::unordered_set<Value> used(tuple.begin(), tuple.end());
  Value next_z = -1;
  for (Value& v : canon) {
    if (v < 0) continue;
    if (std::binary_search(known_relevant_.begin(), known_relevant_.end(), v)) {
      continue;
    }
    auto mapped = map.find(v);
    if (mapped != map.end()) {
      v = mapped->second;
      continue;
    }
    while (used.count(next_z) > 0) --next_z;
    used.insert(next_z);
    map.emplace(v, next_z);
    v = next_z;
  }
  auto it2 = table.prev.find(canon);
  return it2 != table.prev.end() && it2->second;
}

Result<bool> PastMonitor::EvalNow(
    fotl::Formula f, const std::unordered_map<fotl::VarId, Value>& env) {
  switch (f->kind()) {
    case NodeKind::kTrue:
      return true;
    case NodeKind::kFalse:
      return false;
    case NodeKind::kEquals: {
      auto resolve = [&](const fotl::Term& t) -> Value {
        return t.is_constant() ? history_.ConstantValue(t.id) : env.at(t.id);
      };
      return resolve(f->terms()[0]) == resolve(f->terms()[1]);
    }
    case NodeKind::kAtom: {
      Tuple args;
      args.reserve(f->terms().size());
      bool has_z = false;
      for (const fotl::Term& t : f->terms()) {
        Value v = t.is_constant() ? history_.ConstantValue(t.id) : env.at(t.id);
        has_z = has_z || v < 0;
        args.push_back(v);
      }
      if (has_z) return false;  // stand-ins are in no relation
      return history_.state(history_.length() - 1).Holds(f->predicate(), args);
    }
    case NodeKind::kNot: {
      TIC_ASSIGN_OR_RETURN(bool a, EvalNow(f->child(0), env));
      return !a;
    }
    case NodeKind::kAnd: {
      TIC_ASSIGN_OR_RETURN(bool a, EvalNow(f->lhs(), env));
      if (!a) return false;
      return EvalNow(f->rhs(), env);
    }
    case NodeKind::kOr: {
      TIC_ASSIGN_OR_RETURN(bool a, EvalNow(f->lhs(), env));
      if (a) return true;
      return EvalNow(f->rhs(), env);
    }
    case NodeKind::kImplies: {
      TIC_ASSIGN_OR_RETURN(bool a, EvalNow(f->lhs(), env));
      if (!a) return true;
      return EvalNow(f->rhs(), env);
    }
    case NodeKind::kExists:
    case NodeKind::kForall: {
      bool is_exists = f->kind() == NodeKind::kExists;
      auto env2 = env;
      for (Value d : domain_) {
        env2[f->var()] = d;
        TIC_ASSIGN_OR_RETURN(bool a, EvalNow(f->child(0), env2));
        if (is_exists && a) return true;
        if (!is_exists && !a) return false;
      }
      return !is_exists;
    }
    case NodeKind::kPrev:
    case NodeKind::kSince:
    case NodeKind::kOnce:
    case NodeKind::kHistorically: {
      const Table& table = tables_[table_of_.at(f)];
      auto it = table.curr.find(Project(table, env));
      if (it == table.curr.end()) {
        return Status::Internal("auxiliary table missing a current entry");
      }
      return it->second;
    }
    default:
      return Status::NotSupported("future connective inside a past matrix");
  }
}

Result<PastVerdict> PastMonitor::ApplyTransaction(const Transaction& txn) {
  TIC_RETURN_NOT_OK(tic::ApplyTransaction(&history_, txn));
  size_t t = history_.length() - 1;
  PastVerdict verdict;
  verdict.time = t;
  verdict.first_violation = last_verdict_.first_violation;

  // Extend the domain with elements that just became relevant. known_relevant_
  // still describes the previous instant until the end of this round (the
  // canonicalization in PrevValue depends on that).
  std::unordered_set<Value> active;
  history_.state(t).CollectActiveDomain(&active);
  std::vector<Value> fresh;
  for (Value v : active) {
    if (!std::binary_search(known_relevant_.begin(), known_relevant_.end(), v)) {
      fresh.push_back(v);
    }
  }
  std::sort(fresh.begin(), fresh.end());
  for (Value v : fresh) domain_.push_back(v);

  // Recompute every auxiliary table at the new instant, children first.
  for (Table& table : tables_) {
    table.curr.clear();
    size_t arity = table.vars.size();
    std::vector<size_t> idx(arity, 0);
    std::unordered_map<fotl::VarId, Value> env;
    while (true) {
      for (size_t i = 0; i < arity; ++i) env[table.vars[i]] = domain_[idx[i]];
      Tuple key = Project(table, env);
      bool value = false;
      switch (table.node->kind()) {
        case NodeKind::kPrev:
          value = first_instant_ ? false : PrevValue(table, key);
          break;
        case NodeKind::kSince: {
          TIC_ASSIGN_OR_RETURN(bool b, EvalNow(table.node->rhs(), env));
          if (b) {
            value = true;
          } else {
            TIC_ASSIGN_OR_RETURN(bool a, EvalNow(table.node->lhs(), env));
            value = a && !first_instant_ && PrevValue(table, key);
          }
          break;
        }
        case NodeKind::kOnce: {
          TIC_ASSIGN_OR_RETURN(bool a, EvalNow(table.node->child(0), env));
          value = a || (!first_instant_ && PrevValue(table, key));
          break;
        }
        case NodeKind::kHistorically: {
          TIC_ASSIGN_OR_RETURN(bool a, EvalNow(table.node->child(0), env));
          value = a && (first_instant_ || PrevValue(table, key));
          break;
        }
        default:
          return Status::Internal("non-past node in auxiliary tables");
      }
      table.curr.emplace(std::move(key), value);

      size_t d = 0;
      while (d < arity && ++idx[d] == domain_.size()) {
        idx[d] = 0;
        ++d;
      }
      if (d == arity) break;
    }
  }

  // Check A(theta) at the new instant for every external substitution.
  bool ok = true;
  {
    size_t m = external_.size();
    std::vector<size_t> idx(m, 0);
    std::unordered_map<fotl::VarId, Value> env;
    while (ok) {
      for (size_t i = 0; i < m; ++i) env[external_[i]] = domain_[idx[i]];
      TIC_ASSIGN_OR_RETURN(bool holds, EvalNow(matrix_, env));
      if (!holds) ok = false;
      size_t d = 0;
      while (d < m && ++idx[d] == domain_.size()) {
        idx[d] = 0;
        ++d;
      }
      if (d == m) break;
    }
  }
  verdict.satisfied = ok;
  if (!ok && !verdict.first_violation.has_value()) verdict.first_violation = t;

  // Roll tables forward: the next instant's "previous" column is the current
  // value of the source formula (the child for Prev, the node itself else).
  for (Table& table : tables_) {
    if (table.node->kind() == NodeKind::kPrev) {
      table.prev.clear();
      size_t arity = table.vars.size();
      std::vector<size_t> idx(arity, 0);
      std::unordered_map<fotl::VarId, Value> env;
      while (true) {
        for (size_t i = 0; i < arity; ++i) env[table.vars[i]] = domain_[idx[i]];
        Tuple key = Project(table, env);
        TIC_ASSIGN_OR_RETURN(bool v, EvalNow(table.source, env));
        table.prev.emplace(std::move(key), v);
        size_t d = 0;
        while (d < arity && ++idx[d] == domain_.size()) {
          idx[d] = 0;
          ++d;
        }
        if (d == arity) break;
      }
    } else {
      table.prev = table.curr;
    }
  }

  // Now the new elements are officially relevant.
  if (!fresh.empty()) {
    std::vector<Value> merged;
    std::merge(known_relevant_.begin(), known_relevant_.end(), fresh.begin(),
               fresh.end(), std::back_inserter(merged));
    known_relevant_ = std::move(merged);
  }
  first_instant_ = false;
  last_verdict_ = verdict;
  return verdict;
}

size_t PastMonitor::AuxiliaryStateSize() const {
  size_t n = 0;
  for (const Table& table : tables_) n += table.prev.size();
  return n;
}

}  // namespace past
}  // namespace tic
