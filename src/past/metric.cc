#include "past/metric.h"

namespace tic {
namespace past {

fotl::Formula WeakPrev(fotl::FormulaFactory* factory, fotl::Formula a) {
  // !Y true  holds exactly at instant 0; YW A == Y A | !Y true.
  fotl::Formula at_origin = factory->Not(factory->Prev(factory->True()));
  return factory->Or(factory->Prev(a), at_origin);
}

fotl::Formula OnceWithin(fotl::FormulaFactory* factory, size_t k, fotl::Formula a) {
  fotl::Formula acc = a;
  for (size_t i = 0; i < k; ++i) acc = factory->Or(a, factory->Prev(acc));
  return acc;
}

fotl::Formula HistoricallyWithin(fotl::FormulaFactory* factory, size_t k,
                                 fotl::Formula a) {
  fotl::Formula acc = a;
  for (size_t i = 0; i < k; ++i) acc = factory->And(a, WeakPrev(factory, acc));
  return acc;
}

fotl::Formula PrevK(fotl::FormulaFactory* factory, size_t k, fotl::Formula a) {
  fotl::Formula acc = a;
  for (size_t i = 0; i < k; ++i) acc = factory->Prev(acc);
  return acc;
}

}  // namespace past
}  // namespace tic
