#ifndef TIC_SPEC_SPEC_H_
#define TIC_SPEC_SPEC_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "db/update.h"
#include "fotl/factory.h"

namespace tic {
namespace spec {

/// \brief A declarative specification of a monitored database: vocabulary,
/// constraints, triggers, and (optionally) a scripted transaction stream.
///
/// Text format, one directive per line ('#' starts a comment):
///
///   predicate Sub/1
///   predicate Owns/2
///   constant  admin = 42
///
///   constraint submit_once : forall x . G (Sub(x) -> X G !Sub(x))
///   past      audit        : forall x . G (Fill(x) -> O Sub(x))
///   trigger   dup_alert    : F (Sub(x) & X F Sub(x))
///
///   # transactions: +Pred(a, b) inserts, -Pred(a, b) deletes; one line per
///   # database state. Arguments are integers or declared constants.
///   step +Sub(1)
///   step +Sub(2) -Sub(1)
///   step -Sub(2)
///
/// `constraint` declares a universal future constraint checked for potential
/// satisfaction (Theorem 4.2); `past` declares a G-past constraint for the
/// history-less baseline; `trigger` declares a Condition-Action trigger via
/// the duality.
struct ConstraintDecl {
  enum class Engine { kUniversal, kPast, kTrigger };
  Engine engine;
  std::string name;
  fotl::Formula formula = nullptr;
};

struct Specification {
  VocabularyPtr vocabulary;
  std::shared_ptr<fotl::FormulaFactory> factory;
  std::vector<Value> constant_interpretation;
  std::vector<ConstraintDecl> constraints;
  std::vector<Transaction> steps;
};

/// \brief Parses the specification text format above.
Result<Specification> ParseSpecification(std::string_view text);

/// \brief One line of replay output (per state, per declared constraint).
struct ReplayEvent {
  size_t time = 0;
  std::string constraint;
  /// "ok", "violated", "PERMANENTLY VIOLATED", or "fired theta={...}".
  std::string verdict;
  bool is_violation = false;
};

struct ReplayResult {
  std::vector<ReplayEvent> events;
  size_t states_applied = 0;
  bool any_violation = false;
};

/// \brief Runs the scripted steps through all declared engines (universal
/// monitors, past monitors, trigger manager) and collects the verdicts.
Result<ReplayResult> Replay(const Specification& spec);

}  // namespace spec
}  // namespace tic

#endif  // TIC_SPEC_SPEC_H_
