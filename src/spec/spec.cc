#include "spec/spec.h"

#include <cctype>
#include <charconv>
#include <sstream>

#include "checker/monitor.h"
#include "checker/trigger.h"
#include "fotl/parser.h"
#include "past/past_monitor.h"

namespace tic {
namespace spec {

namespace {

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

// Splits "head rest" at the first whitespace run.
void SplitHead(const std::string& line, std::string* head, std::string* rest) {
  size_t sp = line.find_first_of(" \t");
  if (sp == std::string::npos) {
    *head = line;
    rest->clear();
    return;
  }
  *head = line.substr(0, sp);
  *rest = Trim(line.substr(sp + 1));
}

// "name : formula" -> (name, formula text).
Status SplitNamed(const std::string& rest, size_t line_no, std::string* name,
                  std::string* formula) {
  size_t colon = rest.find(':');
  if (colon == std::string::npos) {
    return Status::ParseError("line " + std::to_string(line_no) +
                              ": expected 'name : formula'");
  }
  *name = Trim(rest.substr(0, colon));
  *formula = Trim(rest.substr(colon + 1));
  if (name->empty() || formula->empty()) {
    return Status::ParseError("line " + std::to_string(line_no) +
                              ": empty name or formula");
  }
  return Status::OK();
}


// Exception-free integer parsing.
bool ParseInt(const std::string& s, Value* out) {
  const char* b = s.data();
  const char* e = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(b, e, *out);
  return ec == std::errc() && ptr == e;
}

// Parses "+Pred(a, b)" / "-Pred(c)" tokens of a `step` line.
Result<UpdateOp> ParseOp(const std::string& token, const Vocabulary& vocab,
                         const std::vector<Value>& constant_interp, size_t line_no) {
  if (token.size() < 2 || (token[0] != '+' && token[0] != '-')) {
    return Status::ParseError("line " + std::to_string(line_no) +
                              ": update must start with + or -: " + token);
  }
  bool insert = token[0] == '+';
  size_t lp = token.find('(');
  size_t rp = token.rfind(')');
  if (lp == std::string::npos || rp == std::string::npos || rp < lp) {
    return Status::ParseError("line " + std::to_string(line_no) +
                              ": malformed update: " + token);
  }
  std::string pred_name = Trim(token.substr(1, lp - 1));
  TIC_ASSIGN_OR_RETURN(PredicateId pred, vocab.FindPredicate(pred_name));

  Tuple args;
  std::string arg;
  std::stringstream argstream(token.substr(lp + 1, rp - lp - 1));
  while (std::getline(argstream, arg, ',')) {
    arg = Trim(arg);
    if (arg.empty()) {
      return Status::ParseError("line " + std::to_string(line_no) +
                                ": empty argument in " + token);
    }
    if (std::isdigit(static_cast<unsigned char>(arg[0])) || arg[0] == '-') {
      Value v = 0;
      if (!ParseInt(arg, &v)) {
        return Status::ParseError("line " + std::to_string(line_no) +
                                  ": bad integer '" + arg + "'");
      }
      args.push_back(v);
    } else {
      TIC_ASSIGN_OR_RETURN(ConstantId c, vocab.FindConstant(arg));
      args.push_back(constant_interp[c]);
    }
  }
  if (args.size() != vocab.predicate(pred).arity) {
    return Status::ParseError("line " + std::to_string(line_no) + ": " + pred_name +
                              " expects " + std::to_string(vocab.predicate(pred).arity) +
                              " arguments");
  }
  return insert ? UpdateOp::Insert(pred, std::move(args))
                : UpdateOp::Delete(pred, std::move(args));
}

}  // namespace

Result<Specification> ParseSpecification(std::string_view text) {
  Specification spec;
  auto vocab = std::make_shared<Vocabulary>();

  struct PendingConstraint {
    ConstraintDecl::Engine engine;
    std::string name;
    std::string formula_text;
    size_t line_no;
  };
  std::vector<PendingConstraint> pending;
  std::vector<std::pair<std::string, size_t>> pending_steps;

  std::stringstream in{std::string(text)};
  std::string raw;
  size_t line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    std::string line = Trim(raw);
    size_t hash = line.find('#');
    if (hash != std::string::npos) line = Trim(line.substr(0, hash));
    if (line.empty()) continue;

    std::string head, rest;
    SplitHead(line, &head, &rest);
    if (head == "predicate") {
      size_t slash = rest.find('/');
      if (slash == std::string::npos) {
        return Status::ParseError("line " + std::to_string(line_no) +
                                  ": expected 'predicate Name/arity'");
      }
      std::string name = Trim(rest.substr(0, slash));
      Value arity_value = 0;
      if (!ParseInt(Trim(rest.substr(slash + 1)), &arity_value) ||
          arity_value <= 0) {
        return Status::ParseError("line " + std::to_string(line_no) + ": bad arity");
      }
      uint32_t arity = static_cast<uint32_t>(arity_value);
      TIC_RETURN_NOT_OK(vocab->AddPredicate(name, arity).status());
    } else if (head == "constant") {
      size_t eq = rest.find('=');
      if (eq == std::string::npos) {
        return Status::ParseError("line " + std::to_string(line_no) +
                                  ": expected 'constant name = value'");
      }
      std::string name = Trim(rest.substr(0, eq));
      Value value = 0;
      if (!ParseInt(Trim(rest.substr(eq + 1)), &value)) {
        return Status::ParseError("line " + std::to_string(line_no) + ": bad value");
      }
      TIC_RETURN_NOT_OK(vocab->AddConstant(name).status());
      spec.constant_interpretation.push_back(value);
    } else if (head == "constraint" || head == "past" || head == "trigger") {
      PendingConstraint pc;
      pc.engine = head == "constraint" ? ConstraintDecl::Engine::kUniversal
                  : head == "past"     ? ConstraintDecl::Engine::kPast
                                       : ConstraintDecl::Engine::kTrigger;
      pc.line_no = line_no;
      TIC_RETURN_NOT_OK(SplitNamed(rest, line_no, &pc.name, &pc.formula_text));
      pending.push_back(std::move(pc));
    } else if (head == "step") {
      pending_steps.emplace_back(rest, line_no);
    } else {
      return Status::ParseError("line " + std::to_string(line_no) +
                                ": unknown directive '" + head + "'");
    }
  }

  spec.vocabulary = vocab;
  spec.factory = std::make_shared<fotl::FormulaFactory>(spec.vocabulary);

  for (const PendingConstraint& pc : pending) {
    auto f = fotl::Parse(spec.factory.get(), pc.formula_text);
    if (!f.ok()) {
      return Status::ParseError("line " + std::to_string(pc.line_no) + " (" +
                                pc.name + "): " + f.status().message());
    }
    spec.constraints.push_back(ConstraintDecl{pc.engine, pc.name, *f});
  }
  for (const auto& [line, no] : pending_steps) {
    Transaction txn;
    // Tokens run from a '+'/'-' to the matching ')': argument lists may
    // contain spaces ("+Owns(1, 2)"), so plain whitespace splitting is wrong.
    size_t i = 0;
    while (i < line.size()) {
      if (std::isspace(static_cast<unsigned char>(line[i]))) {
        ++i;
        continue;
      }
      size_t close = line.find(')', i);
      if (close == std::string::npos) {
        return Status::ParseError("line " + std::to_string(no) +
                                  ": unterminated update in step");
      }
      std::string token = Trim(line.substr(i, close - i + 1));
      TIC_ASSIGN_OR_RETURN(UpdateOp op,
                           ParseOp(token, *spec.vocabulary,
                                   spec.constant_interpretation, no));
      txn.push_back(std::move(op));
      i = close + 1;
    }
    spec.steps.push_back(std::move(txn));
  }
  return spec;
}

Result<ReplayResult> Replay(const Specification& spec) {
  ReplayResult out;

  struct Engines {
    std::vector<std::pair<std::string, std::unique_ptr<checker::Monitor>>> universal;
    std::vector<std::pair<std::string, std::unique_ptr<past::PastMonitor>>> past;
    std::unique_ptr<checker::TriggerManager> triggers;
  } engines;

  for (const ConstraintDecl& decl : spec.constraints) {
    switch (decl.engine) {
      case ConstraintDecl::Engine::kUniversal: {
        TIC_ASSIGN_OR_RETURN(
            auto m, checker::Monitor::Create(spec.factory, decl.formula,
                                             spec.constant_interpretation));
        engines.universal.emplace_back(decl.name, std::move(m));
        break;
      }
      case ConstraintDecl::Engine::kPast: {
        TIC_ASSIGN_OR_RETURN(
            auto m, past::PastMonitor::Create(spec.factory, decl.formula,
                                              spec.constant_interpretation));
        engines.past.emplace_back(decl.name, std::move(m));
        break;
      }
      case ConstraintDecl::Engine::kTrigger: {
        if (engines.triggers == nullptr) {
          TIC_ASSIGN_OR_RETURN(
              engines.triggers,
              checker::TriggerManager::Create(spec.factory,
                                              spec.constant_interpretation));
        }
        TIC_RETURN_NOT_OK(engines.triggers->AddTrigger(decl.name, decl.formula));
        break;
      }
    }
  }

  for (size_t t = 0; t < spec.steps.size(); ++t) {
    const Transaction& txn = spec.steps[t];
    for (auto& [name, monitor] : engines.universal) {
      TIC_ASSIGN_OR_RETURN(checker::MonitorVerdict v,
                           monitor->ApplyTransaction(txn));
      ReplayEvent ev;
      ev.time = t;
      ev.constraint = name;
      ev.is_violation = !v.potentially_satisfied;
      ev.verdict = v.permanently_violated    ? "PERMANENTLY VIOLATED"
                   : v.potentially_satisfied ? "ok"
                                             : "violated";
      out.any_violation = out.any_violation || ev.is_violation;
      out.events.push_back(std::move(ev));
    }
    for (auto& [name, monitor] : engines.past) {
      TIC_ASSIGN_OR_RETURN(past::PastVerdict v, monitor->ApplyTransaction(txn));
      ReplayEvent ev;
      ev.time = t;
      ev.constraint = name;
      ev.is_violation = !v.satisfied;
      ev.verdict = v.satisfied ? "ok" : "violated";
      out.any_violation = out.any_violation || ev.is_violation;
      out.events.push_back(std::move(ev));
    }
    if (engines.triggers != nullptr) {
      TIC_ASSIGN_OR_RETURN(std::vector<checker::TriggerFiring> firings,
                           engines.triggers->OnTransaction(txn));
      for (const checker::TriggerFiring& f : firings) {
        ReplayEvent ev;
        ev.time = t;
        ev.constraint = f.trigger;
        ev.is_violation = true;
        std::string theta = "fired theta={";
        bool first = true;
        for (const auto& [var, val] : f.substitution) {
          if (!first) theta += ", ";
          theta += spec.factory->VarName(var) + "=" + std::to_string(val);
          first = false;
        }
        theta += "}";
        ev.verdict = std::move(theta);
        out.any_violation = true;
        out.events.push_back(std::move(ev));
      }
    }
    ++out.states_applied;
  }
  return out;
}

}  // namespace spec
}  // namespace tic
