#include "checker/extension.h"

#include "common/telemetry/telemetry.h"
#include "ptl/progress.h"
#include "ptl/safety.h"

namespace tic {
namespace checker {

Result<CheckResult> CheckPotentialSatisfaction(
    const fotl::FormulaFactory& fotl_factory, fotl::Formula phi,
    const History& history, const fotl::Valuation& binding,
    const CheckOptions& options) {
  TIC_SPAN("check.extension");
  CheckResult result;

  // Theorem 4.1: build phi_D and w_D.
  TIC_ASSIGN_OR_RETURN(
      Grounding g, GroundUniversal(fotl_factory, phi, history, binding,
                                   options.grounding));
  result.grounding_stats = g.stats;
  ptl::Factory* pf = g.prop_factory.get();

  if (options.require_safety && !ptl::IsSyntacticallySafe(pf, g.phi_d)) {
    return Status::NotSupported(
        "constraint is not syntactically safe; Section 4's algorithm is only "
        "sound for safety sentences (set require_safety=false to experiment)");
  }

  // Lemma 4.2 phase 1: deterministic rewriting through w_D.
  TIC_ASSIGN_OR_RETURN(ptl::Formula residual, [&] {
    TIC_SPAN("check.progress_prefix");
    return ptl::ProgressThroughWord(pf, g.phi_d, g.word);
  }());
  result.residual_size = residual->size();
  if (residual->kind() == ptl::Kind::kFalse) {
    result.potentially_satisfied = false;
    result.permanently_violated = true;
    return result;
  }

  // Lemma 4.2 phase 2: satisfiability of the residual.
  TIC_ASSIGN_OR_RETURN(ptl::SatResult sat,
                       ptl::CheckSat(pf, residual, options.tableau));
  result.tableau_stats = sat.stats;
  result.potentially_satisfied = sat.satisfiable;
  if (!sat.satisfiable) {
    // For safety sentences an unsatisfiable residual is irreparable: progression
    // of `false`-bound residuals can only shrink the model set.
    result.permanently_violated = true;
    return result;
  }

  if (options.want_witness && sat.witness.has_value()) {
    TIC_SPAN("check.decode_witness");
    // Decode the lasso into database states (Theorem 4.1, decoding direction):
    // the infinite witness database is the history followed by the decoded
    // future states; elements outside R_D stay out of all relations, which is
    // exactly the D' of Lemma 4.1.
    std::vector<DatabaseState> prefix_states;
    prefix_states.reserve(history.length() + sat.witness->prefix.size());
    for (size_t t = 0; t < history.length(); ++t) {
      prefix_states.push_back(history.state(t));
    }
    for (const ptl::PropState& w : sat.witness->prefix) {
      TIC_ASSIGN_OR_RETURN(DatabaseState s,
                           DecodePropState(g, history.vocabulary(), w));
      prefix_states.push_back(std::move(s));
    }
    std::vector<DatabaseState> loop_states;
    loop_states.reserve(sat.witness->loop.size());
    for (const ptl::PropState& w : sat.witness->loop) {
      TIC_ASSIGN_OR_RETURN(DatabaseState s,
                           DecodePropState(g, history.vocabulary(), w));
      loop_states.push_back(std::move(s));
    }
    if (loop_states.empty()) loop_states.emplace_back(history.vocabulary());
    result.witness = UltimatelyPeriodicDb(
        history.vocabulary(), history.constant_interpretation(),
        std::move(prefix_states), std::move(loop_states));
  }
  return result;
}

}  // namespace checker
}  // namespace tic
