#include "checker/extension.h"

#include <algorithm>

#include "common/telemetry/telemetry.h"
#include "ptl/progress.h"
#include "ptl/safety.h"

namespace tic {
namespace checker {

Result<CheckResult> CheckPotentialSatisfaction(
    const fotl::FormulaFactory& fotl_factory, fotl::Formula phi,
    const History& history, const fotl::Valuation& binding,
    const CheckOptions& options) {
  TIC_SPAN("check.extension");
  CheckResult result;

  // Theorem 4.1: build phi_D and w_D.
  TIC_ASSIGN_OR_RETURN(
      Grounding g, GroundUniversal(fotl_factory, phi, history, binding,
                                   options.grounding));
  result.grounding_stats = g.stats;
  ptl::Factory* pf = g.prop_factory.get();

  if (options.require_safety && !ptl::IsSyntacticallySafe(pf, g.phi_d)) {
    return Status::NotSupported(
        "constraint is not syntactically safe; Section 4's algorithm is only "
        "sound for safety sentences (set require_safety=false to experiment)");
  }

  // Automaton backend: when no witness is wanted, run the compiled transition
  // system over w_D instead of progression + CheckSat — per-letter verdicts
  // are identical (TransitionSystem's Lemma 4.2 correspondence), and in eager
  // mode !potentially_satisfied is always permanent for safety sentences,
  // matching the progression path's verdict mapping below.
  if (options.backend == MonitorBackend::kAutomaton && !options.want_witness) {
    TIC_SPAN("check.automaton_run");
    // Compile under a clamped budget: the determinized cover of a joint
    // grounding is the product of the per-instance covers, so a multi-instance
    // phi_D can be exponentially larger than anything CheckSat's lazy DFS ever
    // visits. When the cover is tractable (single-pattern formulas — the
    // trigger substitution sweeps this path exists for) the compiled system is
    // reused across renamings; when it is not, fall through to progression
    // below rather than failing the check.
    ptl::TableauOptions compile_opts = options.tableau;
    compile_opts.max_states = std::min(compile_opts.max_states, size_t{1} << 16);
    compile_opts.max_expansions =
        std::min(compile_opts.max_expansions, size_t{1} << 18);
    Result<ptl::AutomatonHandle> compiled = [&]() -> Result<ptl::AutomatonHandle> {
      if (options.automaton_cache != nullptr) {
        // Pass the owning factory: the cached system outlives this check's
        // grounding and lazily dereferences closure nodes on later hits.
        return options.automaton_cache->Get(g.prop_factory, g.phi_d,
                                            compile_opts);
      }
      TIC_ASSIGN_OR_RETURN(std::shared_ptr<ptl::TransitionSystem> ts,
                           ptl::TransitionSystem::Compile(pf, g.phi_d, compile_opts));
      return ptl::AutomatonHandle{ts, ts->default_letters()};
    }();
    if (!compiled.ok() && !compiled.status().IsResourceExhausted()) {
      return compiled.status();
    }
    if (compiled.ok()) {
      const ptl::AutomatonHandle& handle = *compiled;
      uint32_t set = handle.ts->initial();
      bool live = false;
      bool exhausted = false;
      if (g.word.empty()) {
        TIC_ASSIGN_OR_RETURN(live, handle.ts->Live(set));
      }
      for (const ptl::PropState& w : g.word) {
        Result<ptl::TransitionStep> step = handle.ts->Step(set, w, handle.letters);
        if (!step.ok()) {
          if (step.status().IsResourceExhausted()) {
            exhausted = true;  // lazy-mode expansion blew the clamped budget
            break;
          }
          return step.status();
        }
        set = step->next;
        live = step->live;
      }
      if (!exhausted) {
        result.residual_size = g.phi_d->size();
        result.potentially_satisfied = live;
        result.permanently_violated = !live;
        return result;
      }
    }
    TIC_COUNTER_ADD("automaton/compile_fallbacks", 1);
  }

  // Lemma 4.2 phase 1: deterministic rewriting through w_D.
  TIC_ASSIGN_OR_RETURN(ptl::Formula residual, [&] {
    TIC_SPAN("check.progress_prefix");
    return ptl::ProgressThroughWord(pf, g.phi_d, g.word);
  }());
  result.residual_size = residual->size();
  if (residual->kind() == ptl::Kind::kFalse) {
    result.potentially_satisfied = false;
    result.permanently_violated = true;
    return result;
  }

  // Lemma 4.2 phase 2: satisfiability of the residual.
  TIC_ASSIGN_OR_RETURN(ptl::SatResult sat,
                       ptl::CheckSat(pf, residual, options.tableau));
  result.tableau_stats = sat.stats;
  result.potentially_satisfied = sat.satisfiable;
  if (!sat.satisfiable) {
    // For safety sentences an unsatisfiable residual is irreparable: progression
    // of `false`-bound residuals can only shrink the model set.
    result.permanently_violated = true;
    return result;
  }

  if (options.want_witness && sat.witness.has_value()) {
    TIC_SPAN("check.decode_witness");
    // Decode the lasso into database states (Theorem 4.1, decoding direction):
    // the infinite witness database is the history followed by the decoded
    // future states; elements outside R_D stay out of all relations, which is
    // exactly the D' of Lemma 4.1.
    std::vector<DatabaseState> prefix_states;
    prefix_states.reserve(history.length() + sat.witness->prefix.size());
    for (size_t t = 0; t < history.length(); ++t) {
      prefix_states.push_back(history.state(t));
    }
    for (const ptl::PropState& w : sat.witness->prefix) {
      TIC_ASSIGN_OR_RETURN(DatabaseState s,
                           DecodePropState(g, history.vocabulary(), w));
      prefix_states.push_back(std::move(s));
    }
    std::vector<DatabaseState> loop_states;
    loop_states.reserve(sat.witness->loop.size());
    for (const ptl::PropState& w : sat.witness->loop) {
      TIC_ASSIGN_OR_RETURN(DatabaseState s,
                           DecodePropState(g, history.vocabulary(), w));
      loop_states.push_back(std::move(s));
    }
    if (loop_states.empty()) loop_states.emplace_back(history.vocabulary());
    result.witness = UltimatelyPeriodicDb(
        history.vocabulary(), history.constant_interpretation(),
        std::move(prefix_states), std::move(loop_states));
  }
  return result;
}

}  // namespace checker
}  // namespace tic
