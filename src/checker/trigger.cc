#include "checker/trigger.h"

#include "fotl/classify.h"

namespace tic {
namespace checker {

TriggerManager::TriggerManager(std::shared_ptr<fotl::FormulaFactory> fotl_factory,
                               History history, CheckOptions options)
    : ffac_(std::move(fotl_factory)),
      options_(options),
      history_(std::move(history)) {
  options_.want_witness = false;  // triggers only need the verdict
}

Result<std::unique_ptr<TriggerManager>> TriggerManager::Create(
    std::shared_ptr<fotl::FormulaFactory> fotl_factory,
    std::vector<Value> constant_interp, CheckOptions options) {
  TIC_ASSIGN_OR_RETURN(
      History h,
      History::Create(fotl_factory->vocabulary(), std::move(constant_interp)));
  return std::unique_ptr<TriggerManager>(
      new TriggerManager(std::move(fotl_factory), std::move(h), options));
}

Status TriggerManager::AddTrigger(std::string name, fotl::Formula condition,
                                  std::function<void(const TriggerFiring&)> action) {
  // Dualize: C == exists y1..ym . rho   =>   !C == forall y1..ym . !rho.
  std::vector<fotl::VarId> exist_vars;
  fotl::Formula body = condition;
  while (body->kind() == fotl::NodeKind::kExists) {
    exist_vars.push_back(body->var());
    body = body->child(0);
  }
  fotl::Formula negated = ffac_->Not(body);
  for (auto it = exist_vars.rbegin(); it != exist_vars.rend(); ++it) {
    negated = ffac_->Forall(*it, negated);
  }

  fotl::Classification c = fotl::Classify(negated);
  if (!c.universal) {
    return Status::NotSupported(
        "trigger condition must be existential over a quantifier-free "
        "future-tense body (class exists* tense(Sigma_0)); its negation "
        "then falls in the decidable universal fragment of Theorem 4.2");
  }

  Trigger t;
  t.name = std::move(name);
  t.condition = condition;
  t.negated = negated;
  t.params = condition->free_vars();
  t.action = std::move(action);
  triggers_.push_back(std::move(t));
  return Status::OK();
}

Result<std::vector<TriggerFiring>> TriggerManager::EvaluateTriggers() {
  std::vector<TriggerFiring> firings;
  if (history_.empty()) return firings;
  size_t now = history_.length() - 1;
  std::vector<Value> relevant = history_.RelevantSet();
  if (relevant.empty()) relevant.push_back(0);  // degenerate domain

  for (const Trigger& trig : triggers_) {
    size_t p = trig.params.size();
    std::vector<size_t> idx(p, 0);
    while (true) {
      fotl::Valuation theta;
      for (size_t i = 0; i < p; ++i) theta[trig.params[i]] = relevant[idx[i]];

      TIC_ASSIGN_OR_RETURN(
          CheckResult check,
          CheckPotentialSatisfaction(*ffac_, trig.negated, history_, theta,
                                     options_));
      if (!check.potentially_satisfied) {
        TriggerFiring firing{trig.name, now, theta};
        if (trig.action) trig.action(firing);
        firings.push_back(std::move(firing));
      }

      size_t d = 0;
      while (d < p && ++idx[d] == relevant.size()) {
        idx[d] = 0;
        ++d;
      }
      if (d == p) break;
    }
  }
  return firings;
}

Result<std::vector<TriggerFiring>> TriggerManager::OnTransaction(
    const Transaction& txn) {
  TIC_RETURN_NOT_OK(ApplyTransaction(&history_, txn));
  return EvaluateTriggers();
}

}  // namespace checker
}  // namespace tic
