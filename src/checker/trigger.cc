#include "checker/trigger.h"

#include "common/telemetry/telemetry.h"
#include "common/thread_pool.h"
#include "fotl/classify.h"
#include "ptl/verdict_cache.h"

namespace tic {
namespace checker {

TriggerManager::TriggerManager(std::shared_ptr<fotl::FormulaFactory> fotl_factory,
                               History history, CheckOptions options)
    : ffac_(std::move(fotl_factory)),
      options_(options),
      history_(std::move(history)) {
  options_.want_witness = false;  // triggers only need the verdict
  // Substitution sweeps are letter-renamings of each other, so a shared
  // renaming-invariant verdict cache collapses them to one tableau run each.
  if (options_.tableau.verdict_cache == nullptr) {
    options_.tableau.verdict_cache = std::make_shared<ptl::VerdictCache>();
  }
  // Same sharing for the automaton backend: one compiled transition system
  // (and one transition memo) serves every substitution of a trigger.
  if (options_.backend == MonitorBackend::kAutomaton &&
      options_.automaton_cache == nullptr) {
    options_.automaton_cache = std::make_shared<ptl::AutomatonCache>();
  }
  if (options_.thread_pool == nullptr && options_.threads > 1) {
    options_.thread_pool = std::make_shared<ThreadPool>(options_.threads - 1);
  }
  if (options_.trace_sink != nullptr) {
    telemetry::SetTraceSink(options_.trace_sink);
    telemetry::SetEnabled(true);
  }
}

Result<std::unique_ptr<TriggerManager>> TriggerManager::Create(
    std::shared_ptr<fotl::FormulaFactory> fotl_factory,
    std::vector<Value> constant_interp, CheckOptions options) {
  TIC_ASSIGN_OR_RETURN(
      History h,
      History::Create(fotl_factory->vocabulary(), std::move(constant_interp)));
  return std::unique_ptr<TriggerManager>(
      new TriggerManager(std::move(fotl_factory), std::move(h), options));
}

Status TriggerManager::AddTrigger(std::string name, fotl::Formula condition,
                                  std::function<void(const TriggerFiring&)> action) {
  // Dualize: C == exists y1..ym . rho   =>   !C == forall y1..ym . !rho.
  std::vector<fotl::VarId> exist_vars;
  fotl::Formula body = condition;
  while (body->kind() == fotl::NodeKind::kExists) {
    exist_vars.push_back(body->var());
    body = body->child(0);
  }
  fotl::Formula negated = ffac_->Not(body);
  for (auto it = exist_vars.rbegin(); it != exist_vars.rend(); ++it) {
    negated = ffac_->Forall(*it, negated);
  }

  fotl::Classification c = fotl::Classify(negated);
  if (!c.universal) {
    return Status::NotSupported(
        "trigger condition must be existential over a quantifier-free "
        "future-tense body (class exists* tense(Sigma_0)); its negation "
        "then falls in the decidable universal fragment of Theorem 4.2");
  }

  Trigger t;
  t.name = std::move(name);
  t.condition = condition;
  t.negated = negated;
  t.params = condition->free_vars();
  t.action = std::move(action);
  triggers_.push_back(std::move(t));
  return Status::OK();
}

Result<std::vector<TriggerFiring>> TriggerManager::EvaluateTriggers() {
  std::vector<TriggerFiring> firings;
  if (history_.empty()) return firings;
  size_t now = history_.length() - 1;
  std::vector<Value> relevant = history_.RelevantSet();
  if (relevant.empty()) relevant.push_back(0);  // degenerate domain

  // Materialize the whole (trigger, theta) sweep first: each check builds its
  // own grounding and propositional factory over the shared read-only history,
  // so the checks are independent and can run on the pool.
  struct Job {
    const Trigger* trig;
    fotl::Valuation theta;
  };
  std::vector<Job> jobs;
  for (const Trigger& trig : triggers_) {
    size_t p = trig.params.size();
    std::vector<size_t> idx(p, 0);
    while (true) {
      fotl::Valuation theta;
      for (size_t i = 0; i < p; ++i) theta[trig.params[i]] = relevant[idx[i]];
      jobs.push_back(Job{&trig, std::move(theta)});
      size_t d = 0;
      while (d < p && ++idx[d] == relevant.size()) {
        idx[d] = 0;
        ++d;
      }
      if (d == p) break;
    }
  }

  std::vector<char> fired(jobs.size(), 0);
  std::vector<char> permanent(jobs.size(), 0);
  std::vector<Status> errors(jobs.size());
  auto evaluate = [&](size_t i) {
    Result<CheckResult> check = CheckPotentialSatisfaction(
        *ffac_, jobs[i].trig->negated, history_, jobs[i].theta, options_);
    if (!check.ok()) {
      errors[i] = check.status();
      return;
    }
    fired[i] = check->potentially_satisfied ? 0 : 1;
    permanent[i] = check->permanently_violated ? 1 : 0;
  };
  TIC_COUNTER_ADD("trigger/jobs", jobs.size());
  ThreadPool* pool = options_.thread_pool.get();
  if (pool != nullptr && jobs.size() > 1) {
    pool->ParallelFor(jobs.size(), evaluate);
  } else {
    for (size_t i = 0; i < jobs.size(); ++i) evaluate(i);
  }
  for (const Status& s : errors) TIC_RETURN_NOT_OK(s);

  // Firings — and user-visible actions — stay in enumeration order, so the
  // parallel sweep is indistinguishable from the sequential one.
  for (size_t i = 0; i < jobs.size(); ++i) {
    if (fired[i] == 0) continue;
    TriggerFiring firing{jobs[i].trig->name, now, jobs[i].theta, {}};
    if (options_.provenance) {
      // The duality of Section 2, spelled out: the firing IS a violation
      // verdict for the negated condition under this substitution.
      std::string& e = firing.explanation;
      e += "trigger \"" + firing.trigger + "\" fired at t=";
      e += std::to_string(now);
      e += " for [";
      bool first = true;
      for (fotl::VarId v : jobs[i].trig->params) {
        if (!first) e += ", ";
        first = false;
        e += ffac_->VarName(v);
        e += "=";
        e += std::to_string(jobs[i].theta.at(v));
      }
      e += "]: no extension of the history can falsify the condition (the "
           "negated condition lost potential satisfaction";
      e += permanent[i] != 0 ? "; its residual collapsed to false)" : ")";
    }
    if (jobs[i].trig->action) jobs[i].trig->action(firing);
    firings.push_back(std::move(firing));
  }
  return firings;
}

Result<std::vector<TriggerFiring>> TriggerManager::OnTransaction(
    const Transaction& txn) {
  TIC_RETURN_NOT_OK(ApplyTransaction(&history_, txn));
  return EvaluateTriggers();
}

}  // namespace checker
}  // namespace tic
