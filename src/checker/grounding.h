#ifndef TIC_CHECKER_GROUNDING_H_
#define TIC_CHECKER_GROUNDING_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "db/history.h"
#include "fotl/classify.h"
#include "fotl/evaluator.h"
#include "fotl/factory.h"
#include "ptl/formula.h"
#include "ptl/word.h"

namespace tic {
namespace checker {

/// \brief A ground element of the set M = R_D ∪ {z_1,...,z_k} of Theorem 4.1.
///
/// Non-negative payloads are relevant universe elements; z-symbols (stand-ins
/// for the anonymous elements outside R_D) are encoded as negative payloads.
struct GroundElem {
  Value code;

  static GroundElem Relevant(Value v) { return GroundElem{v}; }
  static GroundElem Z(size_t i) { return GroundElem{-static_cast<Value>(i) - 1}; }

  bool is_z() const { return code < 0; }
  size_t z_index() const { return static_cast<size_t>(-code - 1); }
  Value value() const { return code; }

  bool operator==(const GroundElem& o) const { return code == o.code; }

  std::string ToString() const {
    return is_z() ? "z" + std::to_string(z_index() + 1) : std::to_string(code);
  }
};

/// \brief How faithfully to reproduce the Theorem 4.1 construction.
enum class GroundingMode {
  /// Emit the propositional language L_D and the axiom Axiom_D exactly as in
  /// the proof: letters for every equality (a=b) and every predicate instance
  /// p(a_1,...,a_r) over M, the equivalence/congruence/diagram axioms wrapped
  /// in G(...), and the w_D states assigning the equality letters. Exact but
  /// exponentially bigger; used for fidelity tests and ablation benches.
  kLiteral,
  /// Observe that Axiom_D *determines* every equality letter and every
  /// predicate letter with a z-argument, and constant-fold them during
  /// grounding. Produces an equisatisfiable-after-w_D formula over predicate
  /// letters on relevant elements only. Default.
  kSimplified,
};

struct GroundingOptions {
  GroundingMode mode = GroundingMode::kSimplified;
  /// Cap on |M|^k grounding instances, guarding against accidental blow-up.
  size_t max_instances = 50'000'000;
};

/// \brief Size counters for Experiment E3.
struct GroundingStats {
  size_t relevant_size = 0;       ///< |R_D|
  size_t num_external_vars = 0;   ///< k
  size_t num_instances = 0;       ///< |M|^k
  size_t num_prop_letters = 0;    ///< |L_D| actually materialized
  uint64_t phi_d_size = 0;        ///< |phi_D| (tree size)
  uint64_t phi_d_dag_nodes = 0;   ///< distinct nodes (hash-consing effect)
};

/// \brief Output of the Theorem 4.1 reduction: the propositional temporal
/// formula phi_D, the propositional prefix w_D, and the decoding tables.
struct Grounding {
  ptl::PropVocabularyPtr prop_vocab;
  std::shared_ptr<ptl::Factory> prop_factory;
  ptl::Formula phi_d = nullptr;
  ptl::Word word;  ///< w_D = (w_0,...,w_t)
  GroundingStats stats;

  std::vector<Value> relevant;  ///< R_D, sorted
  size_t num_z = 0;             ///< k

  /// Decoding table: prop letter -> (predicate, all-relevant argument tuple).
  /// Only letters with no z-argument appear (those are what a witness decodes).
  struct DecodedAtom {
    PredicateId predicate;
    Tuple args;
  };
  std::unordered_map<ptl::PropId, DecodedAtom> letter_to_atom;
};

/// \brief Runs the Theorem 4.1 construction for a universal sentence
/// `phi = forall x1 ... xk . psi` (psi quantifier-free, future-only, ordinary
/// vocabulary) against the finite history `D`.
///
/// `binding` optionally pre-binds free variables of phi to universe elements
/// (used by the trigger manager, where phi = !C theta); bound values must be
/// elements of R_D.
Result<Grounding> GroundUniversal(const fotl::FormulaFactory& fotl_factory,
                                  fotl::Formula phi, const History& history,
                                  const fotl::Valuation& binding = {},
                                  const GroundingOptions& options = {});

/// \brief Decodes one propositional state of a tableau witness back into a
/// database state over `vocab` (the second half of the Theorem 4.1 proof):
/// p(a_1,...,a_r) holds iff its letter is true; everything else is empty.
Result<DatabaseState> DecodePropState(const Grounding& grounding,
                                      const VocabularyPtr& vocab,
                                      const ptl::PropState& state);

}  // namespace checker
}  // namespace tic

#endif  // TIC_CHECKER_GROUNDING_H_
