#include "checker/grounding.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "common/hash.h"
#include "common/telemetry/telemetry.h"

namespace tic {
namespace checker {

namespace {

using fotl::NodeKind;

bool HasBuiltinAtom(const Vocabulary& vocab, fotl::Formula f) {
  // Explicit-stack walk (repo deep-formula convention): a deep matrix must
  // not overflow the native call stack.
  std::vector<fotl::Formula> stack{f};
  while (!stack.empty()) {
    fotl::Formula g = stack.back();
    stack.pop_back();
    if (g->kind() == NodeKind::kAtom &&
        vocab.predicate(g->predicate()).builtin != Builtin::kNone) {
      return true;
    }
    for (int i = 0; i < 2; ++i) {
      if (g->child(i) != nullptr) stack.push_back(g->child(i));
    }
  }
  return false;
}

// Environment: ground element for each variable id mentioned by the matrix.
using Env = std::unordered_map<fotl::VarId, GroundElem>;

struct MemoKey {
  fotl::Formula f;
  std::vector<Value> env;  // codes of f's free vars, in sorted-var order
  bool operator==(const MemoKey& o) const { return f == o.f && env == o.env; }
};
struct MemoKeyHash {
  size_t operator()(const MemoKey& k) const {
    // Hash-consed content fingerprint, not the node address: stable across
    // runs and allocation orders.
    size_t seed = static_cast<size_t>(k.f->hash());
    for (Value v : k.env) HashCombine(&seed, std::hash<Value>{}(v));
    return seed;
  }
};

struct LetterKey {
  uint32_t pred;  // predicate id, or UINT32_MAX for equality letters
  std::vector<Value> codes;
  bool operator==(const LetterKey& o) const {
    return pred == o.pred && codes == o.codes;
  }
};
struct LetterKeyHash {
  size_t operator()(const LetterKey& k) const {
    // Mix the predicate id instead of using it as a raw seed: small
    // consecutive ids otherwise collide heavily after combining codes.
    size_t seed = 0;
    HashCombine(&seed, static_cast<size_t>(k.pred));
    for (Value v : k.codes) HashCombine(&seed, std::hash<Value>{}(v));
    return seed;
  }
};

class Grounder {
 public:
  Grounder(const fotl::FormulaFactory& fotl_factory, const History& history,
           const GroundingOptions& options)
      : ffac_(fotl_factory), history_(history), options_(options) {
    out_.prop_vocab = std::make_shared<ptl::PropVocabulary>();
    out_.prop_factory = std::make_shared<ptl::Factory>(out_.prop_vocab);
  }

  Result<Grounding> Run(fotl::Formula phi, const fotl::Valuation& binding) {
    TIC_SPAN("grounding");
    TIC_RETURN_NOT_OK(Validate(phi, binding));

    // R_D plus any bound values.
    out_.relevant = history_.RelevantSet();
    for (const auto& [var, value] : binding) {
      (void)var;
      if (!std::binary_search(out_.relevant.begin(), out_.relevant.end(), value)) {
        out_.relevant.insert(
            std::upper_bound(out_.relevant.begin(), out_.relevant.end(), value),
            value);
      }
    }

    std::vector<fotl::VarId> external;
    fotl::Formula matrix = nullptr;
    fotl::StripUniversalPrefix(phi, &external, &matrix);
    out_.num_z = external.size();
    out_.stats.relevant_size = out_.relevant.size();
    out_.stats.num_external_vars = external.size();

    // M = R_D ∪ {z_1,...,z_k}.
    std::vector<GroundElem> m;
    m.reserve(out_.relevant.size() + out_.num_z);
    for (Value v : out_.relevant) m.push_back(GroundElem::Relevant(v));
    for (size_t i = 0; i < out_.num_z; ++i) m.push_back(GroundElem::Z(i));
    if (m.empty()) m.push_back(GroundElem::Z(0));  // degenerate: no elements at all

    // Instance budget |M|^k.
    double instances = std::pow(static_cast<double>(m.size()),
                                static_cast<double>(external.size()));
    if (instances > static_cast<double>(options_.max_instances)) {
      return Status::ResourceExhausted(
          "grounding would need " + std::to_string(instances) + " instances (cap " +
          std::to_string(options_.max_instances) + ")");
    }

    // Phi_D = conjunction over all maps f of psi[f].
    Env env;
    for (const auto& [var, value] : binding) {
      env[var] = GroundElem::Relevant(value);
    }
    ptl::Formula phi_d = out_.prop_factory->True();
    {
      TIC_SPAN("grounding.instances");
      std::vector<size_t> idx(external.size(), 0);
      while (true) {
        for (size_t i = 0; i < external.size(); ++i) env[external[i]] = m[idx[i]];
        ++out_.stats.num_instances;
        TIC_ASSIGN_OR_RETURN(ptl::Formula inst, Ground(matrix, env));
        phi_d = out_.prop_factory->And(phi_d, inst);
        size_t d = 0;
        while (d < external.size() && ++idx[d] == m.size()) {
          idx[d] = 0;
          ++d;
        }
        if (d == external.size()) break;
      }
    }
    TIC_COUNTER_ADD("grounding/instances", out_.stats.num_instances);

    if (options_.mode == GroundingMode::kLiteral) {
      // Axiom_D contains congruence schemas of size |M|^(2*arity); refuse to
      // build an axiom that would dwarf the instance budget.
      double axiom_size = std::pow(static_cast<double>(m.size()),
                                   2.0 * ffac_.vocabulary()->MaxArity());
      if (axiom_size > static_cast<double>(options_.max_instances)) {
        return Status::ResourceExhausted(
            "literal Axiom_D would need ~" + std::to_string(axiom_size) +
            " congruence conjuncts; use GroundingMode::kSimplified");
      }
      phi_d = out_.prop_factory->And(phi_d, BuildAxiomD(m));
    }
    out_.phi_d = phi_d;
    out_.stats.phi_d_size = phi_d->size();
    out_.stats.phi_d_dag_nodes = out_.prop_factory->num_nodes();

    {
      TIC_SPAN("grounding.build_word");
      BuildWord(m);
    }
    out_.stats.num_prop_letters = out_.prop_vocab->size();
    TIC_HISTOGRAM_RECORD("grounding/phi_d_size", out_.stats.phi_d_size);
    return std::move(out_);
  }

 private:
  Status Validate(fotl::Formula phi, const fotl::Valuation& binding) {
    fotl::Classification c = fotl::Classify(phi);
    if (!c.biquantified) {
      return Status::NotSupported(
          "formula is not biquantified (forall* tense(Sigma), future-only)");
    }
    if (!c.universal) {
      return Status::NotSupported(
          "formula has internal quantifiers; the extension problem for "
          "forall*tense(Sigma_1) is undecidable (Theorem 3.2) — only universal "
          "formulas (no internal quantifiers) are supported (Theorem 4.2)");
    }
    for (fotl::VarId v : phi->free_vars()) {
      if (binding.find(v) == binding.end()) {
        return Status::InvalidArgument("free variable '" + ffac_.VarName(v) +
                                       "' has no binding");
      }
    }
    if (HasBuiltinAtom(*ffac_.vocabulary(), phi)) {
      return Status::NotSupported(
          "extended-vocabulary builtins (<=, succ, Zero) denote infinite rigid "
          "relations and are outside the Theorem 4.1 reduction");
    }
    return Status::OK();
  }

  Result<Value> ResolveTerm(const fotl::Term& t, const Env& env, GroundElem* out) {
    if (t.is_constant()) {
      *out = GroundElem::Relevant(history_.ConstantValue(t.id));
      return Value{0};
    }
    auto it = env.find(t.id);
    if (it == env.end()) {
      return Status::Internal("unbound variable during grounding");
    }
    *out = it->second;
    return Value{0};
  }

  // Letter p(codes...) (pred != UINT32_MAX) or eq(a,b) (pred == UINT32_MAX).
  // Takes the codes by const reference and copies only on first sight, so the
  // hot word-building loop can pass tuples straight through without a
  // per-tuple allocation.
  ptl::PropId Letter(uint32_t pred, const std::vector<Value>& codes) {
    // Probe with a reusable key (vector assignment reuses its capacity), so
    // the hit path — all but the first sight of each letter — is allocation-free.
    letter_probe_.pred = pred;
    letter_probe_.codes.assign(codes.begin(), codes.end());
    auto it = letters_.find(letter_probe_);
    if (it != letters_.end()) return it->second;
    std::string name =
        pred == UINT32_MAX ? "eq" : ffac_.vocabulary()->predicate(pred).name;
    name += "(";
    bool all_relevant = true;
    for (size_t i = 0; i < codes.size(); ++i) {
      if (i > 0) name += ",";
      name += GroundElem{codes[i]}.ToString();
      all_relevant = all_relevant && codes[i] >= 0;
    }
    name += ")";
    ptl::PropId id = out_.prop_vocab->Intern(name);
    if (pred != UINT32_MAX && all_relevant) {
      Grounding::DecodedAtom decoded;
      decoded.predicate = pred;
      decoded.args.assign(codes.begin(), codes.end());
      out_.letter_to_atom.emplace(id, std::move(decoded));
    }
    letters_.emplace(LetterKey{pred, codes}, id);
    return id;
  }

  Result<ptl::Formula> Ground(fotl::Formula f, const Env& env) {
    MemoKey key{f, {}};
    key.env.reserve(f->free_vars().size());
    for (fotl::VarId v : f->free_vars()) {
      auto it = env.find(v);
      key.env.push_back(it == env.end() ? INT64_MIN : it->second.code);
    }
    auto memo_it = memo_.find(key);
    if (memo_it != memo_.end()) return memo_it->second;
    TIC_ASSIGN_OR_RETURN(ptl::Formula out, Compute(f, env));
    memo_.emplace(std::move(key), out);
    return out;
  }

  Result<ptl::Formula> Compute(fotl::Formula f, const Env& env) {
    ptl::Factory* pf = out_.prop_factory.get();
    switch (f->kind()) {
      case NodeKind::kTrue:
        return pf->True();
      case NodeKind::kFalse:
        return pf->False();
      case NodeKind::kEquals: {
        GroundElem a, b;
        TIC_RETURN_NOT_OK(ResolveTerm(f->terms()[0], env, &a).status());
        TIC_RETURN_NOT_OK(ResolveTerm(f->terms()[1], env, &b).status());
        if (options_.mode == GroundingMode::kSimplified) {
          return a == b ? pf->True() : pf->False();
        }
        return pf->Atom(Letter(UINT32_MAX, {a.code, b.code}));
      }
      case NodeKind::kAtom: {
        std::vector<Value> codes;
        codes.reserve(f->terms().size());
        bool has_z = false;
        for (const fotl::Term& t : f->terms()) {
          GroundElem e;
          TIC_RETURN_NOT_OK(ResolveTerm(t, env, &e).status());
          has_z = has_z || e.is_z();
          codes.push_back(e.code);
        }
        if (has_z && options_.mode == GroundingMode::kSimplified) {
          // Axiom_D forces !p(...z...) always; fold it.
          return pf->False();
        }
        return pf->Atom(Letter(f->predicate(), std::move(codes)));
      }
      case NodeKind::kNot: {
        TIC_ASSIGN_OR_RETURN(ptl::Formula a, Ground(f->child(0), env));
        return pf->Not(a);
      }
      case NodeKind::kAnd: {
        TIC_ASSIGN_OR_RETURN(ptl::Formula a, Ground(f->lhs(), env));
        TIC_ASSIGN_OR_RETURN(ptl::Formula b, Ground(f->rhs(), env));
        return pf->And(a, b);
      }
      case NodeKind::kOr: {
        TIC_ASSIGN_OR_RETURN(ptl::Formula a, Ground(f->lhs(), env));
        TIC_ASSIGN_OR_RETURN(ptl::Formula b, Ground(f->rhs(), env));
        return pf->Or(a, b);
      }
      case NodeKind::kImplies: {
        TIC_ASSIGN_OR_RETURN(ptl::Formula a, Ground(f->lhs(), env));
        TIC_ASSIGN_OR_RETURN(ptl::Formula b, Ground(f->rhs(), env));
        return pf->Implies(a, b);
      }
      case NodeKind::kNext: {
        TIC_ASSIGN_OR_RETURN(ptl::Formula a, Ground(f->child(0), env));
        return pf->Next(a);
      }
      case NodeKind::kUntil: {
        TIC_ASSIGN_OR_RETURN(ptl::Formula a, Ground(f->lhs(), env));
        TIC_ASSIGN_OR_RETURN(ptl::Formula b, Ground(f->rhs(), env));
        return pf->Until(a, b);
      }
      case NodeKind::kEventually: {
        TIC_ASSIGN_OR_RETURN(ptl::Formula a, Ground(f->child(0), env));
        return pf->Eventually(a);
      }
      case NodeKind::kAlways: {
        TIC_ASSIGN_OR_RETURN(ptl::Formula a, Ground(f->child(0), env));
        return pf->Always(a);
      }
      default:
        return Status::Internal(
            "unexpected connective in universal matrix during grounding");
    }
  }

  // Axiom_D of Theorem 4.1 (kLiteral mode), wrapped in G(...).
  ptl::Formula BuildAxiomD(const std::vector<GroundElem>& m) {
    ptl::Factory* pf = out_.prop_factory.get();
    std::vector<ptl::Formula> conjuncts;
    auto eq = [&](GroundElem a, GroundElem b) {
      return pf->Atom(Letter(UINT32_MAX, {a.code, b.code}));
    };
    // Reflexivity, symmetry, transitivity.
    for (GroundElem a : m) conjuncts.push_back(eq(a, a));
    for (GroundElem a : m) {
      for (GroundElem b : m) {
        conjuncts.push_back(pf->And(pf->Implies(eq(a, b), eq(b, a)),
                                    pf->Implies(eq(b, a), eq(a, b))));
      }
    }
    for (GroundElem a : m) {
      for (GroundElem b : m) {
        for (GroundElem c : m) {
          conjuncts.push_back(
              pf->Implies(pf->And(eq(a, b), eq(b, c)), eq(a, c)));
        }
      }
    }
    // Diagram of equality: distinct relevant elements differ; z's differ from
    // everything (including each other).
    for (GroundElem a : m) {
      for (GroundElem b : m) {
        if (a == b) continue;
        conjuncts.push_back(pf->Not(eq(a, b)));
      }
    }
    // Congruence and z-emptiness per predicate.
    const Vocabulary& vocab = *ffac_.vocabulary();
    for (PredicateId p = 0; p < vocab.num_predicates(); ++p) {
      if (vocab.predicate(p).builtin != Builtin::kNone) continue;
      uint32_t r = vocab.predicate(p).arity;
      // Enumerate all tuples over M of arity r.
      std::vector<size_t> idx(r, 0);
      std::vector<std::vector<Value>> tuples;
      while (true) {
        std::vector<Value> t(r);
        for (uint32_t i = 0; i < r; ++i) t[i] = m[idx[i]].code;
        tuples.push_back(std::move(t));
        size_t d = 0;
        while (d < r && ++idx[d] == m.size()) {
          idx[d] = 0;
          ++d;
        }
        if (d == r) break;
      }
      for (const auto& t : tuples) {
        bool has_z = false;
        for (Value v : t) has_z = has_z || v < 0;
        if (has_z) conjuncts.push_back(pf->Not(pf->Atom(Letter(p, t))));
      }
      // Congruence: eq-related tuples agree. With the diagram above this is
      // vacuous, but the proof includes it; keep it for fidelity on small M.
      for (const auto& t1 : tuples) {
        for (const auto& t2 : tuples) {
          std::vector<ptl::Formula> eqs;
          for (uint32_t i = 0; i < r; ++i) {
            eqs.push_back(eq(GroundElem{t1[i]}, GroundElem{t2[i]}));
          }
          ptl::Formula lhs = pf->AndAll(eqs);
          ptl::Formula p1 = pf->Atom(Letter(p, t1));
          ptl::Formula p2 = pf->Atom(Letter(p, t2));
          conjuncts.push_back(pf->Implies(
              lhs, pf->And(pf->Implies(p1, p2), pf->Implies(p2, p1))));
        }
      }
    }
    return pf->Always(pf->AndAll(conjuncts));
  }

  void BuildWord(const std::vector<GroundElem>& m) {
    const Vocabulary& vocab = *ffac_.vocabulary();
    out_.word.clear();
    out_.word.reserve(history_.length());
    for (size_t t = 0; t < history_.length(); ++t) {
      ptl::PropState w;
      if (options_.mode == GroundingMode::kLiteral) {
        for (GroundElem a : m) w.Set(Letter(UINT32_MAX, {a.code, a.code}), true);
      }
      const DatabaseState& state = history_.state(t);
      for (PredicateId p = 0; p < vocab.num_predicates(); ++p) {
        if (vocab.predicate(p).builtin != Builtin::kNone) continue;
        for (const Tuple& tuple : state.relation(p)) {
          // A Tuple IS a vector of value codes — no per-tuple copy needed.
          w.Set(Letter(p, tuple), true);
        }
      }
      out_.word.push_back(std::move(w));
    }
  }

  const fotl::FormulaFactory& ffac_;
  const History& history_;
  GroundingOptions options_;
  Grounding out_;
  std::unordered_map<MemoKey, ptl::Formula, MemoKeyHash> memo_;
  std::unordered_map<LetterKey, ptl::PropId, LetterKeyHash> letters_;
  LetterKey letter_probe_;  // scratch for allocation-free lookups
};

}  // namespace

Result<Grounding> GroundUniversal(const fotl::FormulaFactory& fotl_factory,
                                  fotl::Formula phi, const History& history,
                                  const fotl::Valuation& binding,
                                  const GroundingOptions& options) {
  Grounder g(fotl_factory, history, options);
  return g.Run(phi, binding);
}

Result<DatabaseState> DecodePropState(const Grounding& grounding,
                                      const VocabularyPtr& vocab,
                                      const ptl::PropState& state) {
  DatabaseState out(vocab);
  for (const auto& [letter, atom] : grounding.letter_to_atom) {
    if (state.Get(letter)) {
      TIC_RETURN_NOT_OK(out.Insert(atom.predicate, atom.args));
    }
  }
  return out;
}

}  // namespace checker
}  // namespace tic
