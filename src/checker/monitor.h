#ifndef TIC_CHECKER_MONITOR_H_
#define TIC_CHECKER_MONITOR_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "checker/extension.h"
#include "checker/provenance.h"
#include "common/flat/flat_map.h"
#include "common/telemetry/telemetry.h"
#include "common/flat/flat_set.h"
#include "common/flat/small_vec.h"
#include "common/result.h"
#include "db/update.h"
#include "fotl/factory.h"
#include "ptl/progress.h"
#include "ptl/transition_system.h"

namespace tic {
namespace checker {

// MonitorMode lives in extension.h (needed by provenance replay helpers);
// re-exported here through the include above.

/// \brief Verdict after one transaction.
struct MonitorVerdict {
  size_t time = 0;  ///< instant of the newly appended state
  bool potentially_satisfied = false;
  /// True once the constraint can never be satisfied again regardless of
  /// future updates (safety: violations are permanent).
  bool permanently_violated = false;
  uint64_t residual_size = 0;
  size_t num_instances = 0;
  /// Distinct residual formulas progressed this update. Instances over
  /// symmetric elements share a hash-consed residual, so
  /// `num_instances - num_residual_classes` progression calls were saved by
  /// deduplication.
  size_t num_residual_classes = 0;
  /// Tableau size counters of *this update's* satisfiability check alone
  /// (zero on the lazy path and once the monitor is dead — no check runs).
  ptl::TableauStats tableau_stats;
  /// Running totals of the per-update counters above across the monitor's
  /// lifetime. CheckSat reports per-call stats, so the monitor accumulates
  /// explicitly; use these for end-of-run cost reporting.
  ptl::TableauStats cumulative_tableau_stats;
  /// Cumulative counters of the shared tableau verdict cache.
  ptl::VerdictCacheStats verdict_cache_stats;
  /// Backend that produced this verdict (kAutomaton only in kEager mode).
  MonitorBackend backend = MonitorBackend::kProgression;
  /// Lifetime counters of the residual-graph automaton driving this monitor
  /// (zero on the progression backend): states = distinct residuals reached,
  /// live_queries = tableau runs (one per state, ever). `memo_hits / steps`
  /// is the transition-cache hit rate; in steady state it approaches 1.
  ptl::TransitionSystemStats automaton_stats;
  /// Cumulative counters of the shared compiled-automaton cache, when one was
  /// injected through CheckOptions (batch/trigger-level sharing).
  ptl::AutomatonCacheStats automaton_cache_stats;
  /// Cohort lockstep stepping (CheckOptions::cohort_stepping): number of
  /// letter-disjoint cohorts and the instances stepped through them in
  /// structure-of-arrays form. Instances sharing ground atoms still step
  /// through the joint residual graph and are not counted here.
  size_t num_cohorts = 0;
  size_t num_cohort_instances = 0;
  /// Verdict provenance (CheckOptions::provenance): populated on the update
  /// that flips the monitor to permanently violated, then re-attached to
  /// every subsequent (dead) verdict. `num_culprits` counts ALL culprit
  /// instances identified; `diagnoses` holds at most
  /// Monitor::kMaxExplanations of them (one Diagnosis each).
  size_t num_culprits = 0;
  std::shared_ptr<std::vector<Diagnosis>> diagnoses;
  /// The captured diagnoses, or an empty vector when none were assembled
  /// (provenance off, monitor still live, or pre-first-update).
  const std::vector<Diagnosis>& explanations() const;
};

/// \brief Incremental temporal integrity monitor for a universal safety
/// sentence: the production-facing API.
///
/// Maintains, across updates, one progression residual per grounding instance
/// f : {x1..xk} -> M (Theorem 4.1). After each transaction it only
/// (a) progresses every live residual through the single new propositional
/// state and (b) grounds + catches up instances created by newly relevant
/// elements, then re-decides satisfiability of the conjunction. This makes the
/// per-update cost O(|phi_D|) amortized plus one 2^O(|residual|)
/// satisfiability check — the incremental reading of Theorem 4.2.
class Monitor {
 public:
  /// `phi` must be a universal safety sentence over `vocab`.
  static Result<std::unique_ptr<Monitor>> Create(
      std::shared_ptr<fotl::FormulaFactory> fotl_factory, fotl::Formula phi,
      std::vector<Value> constant_interp = {}, CheckOptions options = {},
      MonitorMode mode = MonitorMode::kEager);

  /// Applies `txn` (appending one state to the history) and re-checks.
  Result<MonitorVerdict> ApplyTransaction(const Transaction& txn);

  /// The monitored history so far.
  const History& history() const { return history_; }

  /// Latest verdict (valid after the first transaction).
  const MonitorVerdict& last_verdict() const { return last_verdict_; }

  /// Effective options after Create's defaulting (pool, verdict cache).
  const CheckOptions& options() const { return options_; }

 private:
  Monitor(std::shared_ptr<fotl::FormulaFactory> fotl_factory, fotl::Formula phi,
          History history, CheckOptions options, MonitorMode mode);

  // Grounds the matrix for one instance assignment and progresses it through
  // the whole current history (used when new elements join R_D).
  Result<ptl::Formula> GroundAndCatchUp(const std::vector<GroundElem>& assignment);

  // Progresses every live residual through `w`: residuals are partitioned into
  // equivalence classes by hash-consed identity, one representative per class
  // is progressed (in parallel when a thread pool is configured), and the
  // results are fanned back out to the instances.
  Status ProgressAll(const ptl::PropState& w, size_t* num_classes);

  // Builds the propositional state for history state `t`, creating letters on
  // demand (mirrors Grounding::BuildWord, incrementally).
  ptl::PropState PropStateOf(size_t t);

  Result<ptl::Formula> GroundMatrix(const std::vector<GroundElem>& assignment);
  ptl::PropId Letter(PredicateId pred, const std::vector<Value>& codes);

  // Automaton backend (kEager only): advances the shared transition system
  // through the new state, recompiling the joint formula and replaying the
  // stored word first when fresh-element instances changed it.
  Status AutomatonApply(bool joint_changed, const ptl::PropState& w,
                        MonitorVerdict* verdict);

  // History-less catch-up: derives the residual of a fresh-element assignment
  // by renaming the stand-in letters of its z-pattern instance's residual.
  Result<ptl::Formula> RenameFromPattern(const std::vector<GroundElem>& assignment);
  ptl::Formula RenameLetters(ptl::Formula f,
                             const std::unordered_map<ptl::PropId, ptl::PropId>& map);

  std::shared_ptr<fotl::FormulaFactory> ffac_;
  fotl::Formula phi_;
  std::vector<fotl::VarId> external_;
  fotl::Formula matrix_ = nullptr;
  CheckOptions options_;
  MonitorMode mode_;

  // Run-length-encoded propositional word: a run of identical consecutive
  // letters (recurring database states — the steady-state common case)
  // shares one entry, so an empty transaction appends nothing and copies
  // nothing, and fresh-element replays cost one transition per RUN once the
  // stepped state reaches its per-letter fixpoint, not one per past state.
  struct WordEntry {
    ptl::PropState w;
    uint64_t repeat = 1;
  };
  std::vector<WordEntry> word_;

  // Letter of the current history state, maintained incrementally from each
  // transaction's ops (O(delta) instead of an O(database) rescan per
  // update). Initialized from PropStateOf on the first update so a non-empty
  // starting history is covered.
  ptl::PropState cur_letter_;
  bool cur_letter_valid_ = false;

  History history_;
  std::vector<Value> known_relevant_;  // sorted
  ptl::PropVocabularyPtr prop_vocab_;
  std::shared_ptr<ptl::Factory> prop_factory_;

  struct LetterKey {
    PredicateId pred;
    std::vector<Value> codes;
    bool operator==(const LetterKey& o) const {
      return pred == o.pred && codes == o.codes;
    }
  };
  struct LetterKeyHash {
    size_t operator()(const LetterKey& k) const;
  };
  flat::FlatMap<LetterKey, ptl::PropId, flat::Remixed<LetterKeyHash>> letters_;
  LetterKey letter_probe_;  // scratch for allocation-free lookups
  // Append-only log of minted letters, indexed by mint order. Flat-table
  // entries relocate on insert, so the per-code index below stores indices
  // into this log, never pointers into `letters_`.
  struct LetterEntry {
    LetterKey key;
    ptl::PropId id;
  };
  std::vector<LetterEntry> letter_log_;
  // Value code -> letters (log indices) whose key mentions it. Lets
  // fresh-element renaming visit only the letters actually touched instead of
  // snapshotting the map.
  flat::FlatMap<Value, std::vector<uint32_t>> letters_by_code_;

  // One residual per instance; the monitored condition is their conjunction.
  struct Instance {
    std::vector<GroundElem> assignment;
    ptl::Formula residual;
  };
  std::vector<Instance> instances_;
  struct AssignmentHash {
    size_t operator()(const std::vector<GroundElem>& a) const;
  };
  struct AssignmentEq {
    bool operator()(const std::vector<GroundElem>& a,
                    const std::vector<GroundElem>& b) const;
  };
  flat::FlatMap<std::vector<GroundElem>, size_t, flat::Remixed<AssignmentHash>,
                AssignmentEq>
      instance_index_;
  bool dead_ = false;  // permanently violated
  ptl::TableauStats cumulative_tableau_stats_;  // totals across all updates
  MonitorVerdict last_verdict_;

  // --- Verdict provenance (CheckOptions::provenance) ---
  static constexpr size_t kMaxExplanations = 8;   // diagnoses per flip
  static constexpr size_t kTrajectoryK = 8;       // trajectory tail length
  static constexpr size_t kMaxReplayInstances = 64;  // culprit replay cap
  static constexpr size_t kMaxSatProbes = 8;      // culprit CheckSat cap
  // Letter flips of the CURRENT update (letter id, new value), captured in
  // the incremental letter loop and decoded to ground atoms only at a flip
  // to violated. Cleared per update; capacity is kept warm, so the
  // steady-state hot path never allocates for it.
  std::vector<std::pair<ptl::PropId, bool>> last_delta_;
  // Cohort slots whose table cell died this update: the owning instance
  // indices (capped at kMaxExplanations) and the uncapped total. Filled by
  // CohortStepAll only on the (terminal) death update.
  std::vector<uint32_t> dead_scratch_;
  size_t dead_total_ = 0;
  // Diagnoses of the flip, shared with every verdict issued at or after it.
  std::shared_ptr<std::vector<Diagnosis>> explanations_;
  size_t num_culprits_ = 0;
  // Verdict-change edge detection for the flight recorder.
  bool any_verdict_ = false;
  bool last_sat_ = false;
#ifdef TIC_TELEMETRY_ENABLED
  std::unique_ptr<telemetry::StallWatchdog> watchdog_;  // CheckOptions::watchdog_ms
#endif

  // Assembles MonitorVerdict provenance at the alive->dead flip: identifies
  // culprit instances (cohort death bits, literal `false` residuals, else a
  // capped per-instance replay of the stored word), builds one Diagnosis per
  // culprit (capped), and falls back to a single joint Diagnosis when no
  // individual instance explains the violation (shared-letter interaction).
  // `joint_residual` is the residual the joint path died on (may be null).
  Status BuildExplanations(size_t t, const ptl::PropState& w,
                           ptl::Formula joint_residual, MonitorVerdict* verdict);
  Result<Diagnosis> DiagnoseInstance(uint32_t idx, size_t t,
                                     const ptl::PropState& w);
  // Progresses `grounded` through the stored word, keeping the last-K
  // trajectory; fills d->trajectory / d->residual / d->last_live and sets
  // *fatal_w to the letter under which the residual first collapsed (the
  // final letter when it never literally reached `false`).
  Status BuildTrajectory(ptl::Formula grounded, Diagnosis* d,
                         ptl::PropState* fatal_w);
  // Decodes last_delta_ into d->delta using the letter names.
  void CaptureDelta(Diagnosis* d) const;
  // Records a kVerdictChange flight-recorder event on every edge.
  void NoteVerdict(const MonitorVerdict& v);

  // --- Automaton backend state (kEager + MonitorBackend::kAutomaton) ---
  // In this mode Instance::residual holds the instance's ORIGINAL grounded
  // formula (never progressed) and the monitor runs the *residual-graph
  // automaton* of the joint conjunction: each distinct residual the history
  // can reach is one state (hash-consed formula identity), liveness is
  // decided once per state (CheckSat through the shared verdict cache, not
  // per update), and a transition is a memoized `(state id, letter
  // signature) -> state id` lookup. Recurring database states — the common
  // steady case — never rewrite a formula or run a tableau again.
  //
  // Why residuals and not determinized closure-state sets: the joint cover
  // of N grounded instances is the consistency-pruned *product* of the
  // per-instance covers (exponential in N — the FIFO constraint over a
  // handful of orders already exceeds any expansion budget), while the
  // residual graph only materializes states the actual history visits.
  // The closure-bitset ptl::TransitionSystem covers the single-pattern
  // cases (batch checks, trigger substitution sweeps) where the cover is
  // small and renaming-sharing pays off.
  //
  // Fresh elements change the joint formula: their arrival starts a new
  // epoch (graph reset) and replays `word_`, one transition per past state.
  MonitorBackend backend_ = MonitorBackend::kProgression;  // effective backend
  ptl::Formula joint_ = nullptr;       // joint formula of the current epoch
  size_t num_joint_classes_ = 0;       // distinct grounded originals in joint_
  struct AutoState {
    ptl::Formula residual;
    int8_t live;  // -1 unknown, 0 dead, 1 live — decided lazily, then cached
  };
  std::vector<AutoState> auto_states_;
  flat::FlatMap<ptl::Formula, uint32_t> auto_state_ids_;
  std::vector<ptl::PropId> auto_alphabet_;  // atoms of joint_, stable order
  flat::FlatMap<std::string, uint32_t> auto_sigs_;  // packed letter bits
  flat::FlatMap<uint64_t, uint32_t> auto_memo_;  // (state, sig) -> state
  uint32_t auto_current_ = 0;
  uint32_t auto_prev_ = 0;  // state entering the latest step (provenance)
  uint64_t auto_steps_ = 0;
  uint64_t auto_memo_hits_ = 0;
  uint64_t auto_live_queries_ = 0;  // CheckSat calls (state interns)
  std::string sig_scratch_;
  // Per-update scratch, cleared (buckets kept warm) instead of re-allocated.
  flat::FlatSet<Value> active_scratch_;  // this state's active domain
  flat::FlatMap<ptl::Formula, size_t> class_of_scratch_;  // ProgressAll classes

  // ProgressAll's persistent residual equivalence classes: maintained across
  // updates instead of being rebuilt from formula identity every transaction.
  // Progression is a function of the residual alone, so class membership only
  // changes when (a) two classes' progressed residuals collide — merged
  // in-place after each update — or (b) instances are added, which
  // invalidates the partition wholesale (progress_classes_instances_ guards).
  struct ProgressClass {
    ptl::Formula residual;
    std::vector<uint32_t> members;  // instance indices
  };
  std::vector<ProgressClass> progress_classes_;
  size_t progress_classes_instances_ = 0;  // instances_.size() when built

  // --- Cohort lockstep state (kAutomaton + CheckOptions::cohort_stepping) ---
  // Instances whose residuals share no ground atoms (union-find over PropIds)
  // are *letter-disjoint*: sat(AND of their residuals) equals AND of their
  // individual sat verdicts, because models over disjoint atom sets compose.
  // Each such singleton instance compiles through the renaming-invariant
  // AutomatonCache, so symmetric instances land on one shared
  // ptl::TransitionSystem and form a *cohort*: current state-set ids in
  // structure-of-arrays form, advanced per transaction with ONE letter
  // signature per touched slot plus a word-parallel gather (flat::GatherRow)
  // over a dense `state x signature` cell table. Untouched slots — the
  // overwhelming steady-state majority — share the all-false signature, so a
  // transaction that touches none of a cohort's letters advances the whole
  // cohort with one table row gather (or one cell read when all slots sit in
  // the same state). Instances that DO share atoms keep the exact joint
  // residual-graph path below.
  enum class Placement : uint8_t {
    kJoint,   // steps through the joint residual graph (shares atoms, or
              // compile fell back: budget blowup, false residual)
    kCohort,  // letter-disjoint, stepped in SoA lockstep
    kInert,   // residual is `true`: never violated, nothing to step
  };
  struct Cohort {
    std::shared_ptr<ptl::TransitionSystem> ts;
    uint32_t stride = 0;  // canonical letters per slot
    // SoA per slot: current state-set id, owning instance index, and the
    // canonical-index -> PropId letter block at [slot*stride, (slot+1)*stride).
    flat::SmallVec<uint32_t, 8> states;
    flat::SmallVec<uint32_t, 8> members;
    flat::SmallVec<ptl::PropId, 8> letters;
    // Hot slots — slots with at least one TRUE letter in the current state —
    // maintained persistently from each transaction's letter flips (O(delta)
    // per update) instead of rescanning the letter's trues per step:
    // hot_count[slot] counts true letters, hot_slots lists slots with a
    // non-zero count (swap-remove order, hot_pos[slot] = index in hot_slots).
    flat::SmallVec<uint32_t, 8> hot_count;
    flat::SmallVec<uint32_t, 8> hot_slots;
    flat::SmallVec<uint32_t, 8> hot_pos;
    uint32_t zero_sig = 0;  // interned all-false signature id
    // Dense row-major `rows x cols` cell table over (state-set id, signature
    // id): cell = live<<31 | any_survivor<<30 | next, kCellUndiscovered until
    // first resolved through TransitionSystem::StepSig. Monitor-side (not in
    // the TS) so the gather runs without the TS mutex.
    std::vector<uint32_t> table;
    uint32_t rows = 0;
    uint32_t cols = 0;
    // All slots sit in states[0] (slots past 0 may be stale): a transaction
    // touching nothing steps the whole cohort with ONE cell read. Slots are
    // materialized (fill with states[0]) before the first gather.
    bool uniform = true;
    uint64_t sets_at_minimize = 0;  // num_state_sets at the last MinimizeNow
  };
  static constexpr uint32_t kCellNextMask = (1u << 30) - 1;
  static constexpr uint32_t kCellUndiscovered = 0xFFFFFFFFu;
  std::vector<Cohort> cohorts_;
  flat::FlatMap<const void*, uint32_t> cohort_by_ts_;  // TS ptr -> cohort idx
  std::vector<Placement> placement_;  // per instance; empty = cohorting off
  bool cohorts_built_ = false;
  size_t num_joint_ = 0;         // instances with Placement::kJoint
  size_t num_cohort_slots_ = 0;  // instances with Placement::kCohort
  // PropId -> packed (cohort << 32 | slot). Letter-disjointness makes the
  // owner unique, so routing a letter flip to its hot slot is one probe.
  flat::FlatMap<ptl::PropId, uint64_t> cohort_touch_;
  std::vector<uint32_t> gather_scratch_;  // per-cohort cell buffer, kept warm
  // Persistent union-find over instance indices, keyed by shared atoms:
  // atom_owner_ maps each residual atom to the first instance that mentioned
  // it, dsu_min_ tracks the lowest member index per component (placement_ of
  // that member tells whether a merge demotes a cohorted instance).
  std::vector<uint32_t> dsu_parent_;
  std::vector<uint32_t> dsu_size_;
  std::vector<uint32_t> dsu_min_;
  flat::FlatMap<ptl::PropId, uint32_t> atom_owner_;
  uint64_t cohort_steps_ = 0;       // slots advanced, lifetime
  uint64_t cohort_table_hits_ = 0;  // slots answered by the dense table
  std::vector<ptl::PropId> atoms_scratch_;  // AtomsOf output, reused

  // Routes one current-letter value change to its owning cohort slot's hot
  // count (no-op for letters no cohort owns). Called for every flip the
  // incremental letter update detects. Returns the packed
  // `cohort << 32 | slot` owner, or ~0 when no cohort owns the letter —
  // the flight recorder logs it with the flip.
  uint64_t OnLetterFlip(ptl::PropId p, bool value);

  uint32_t DsuFind(uint32_t i);
  // Unions the components of `a` and `b`; sets *demoted when the merged
  // component absorbs a previously cohorted instance (slow-path trigger).
  void DsuUnion(uint32_t a, uint32_t b, size_t first_new, bool* demoted);
  // Distinct residual atoms of `f` into atoms_scratch_ (explicit stack).
  void AtomsOf(ptl::Formula f);
  // Places instances [first_new, instances_.size()): extends the union-find,
  // appends still-singleton instances to cohorts (replaying word_ minus the
  // current state), and routes the rest to the joint path. A merge that
  // demotes a cohorted instance rebuilds all placements from scratch.
  // Returns true when joint membership changed (epoch reset needed).
  Result<bool> PlaceInstances(size_t first_new);
  Result<Placement> PlaceOne(uint32_t idx);
  Status RebuildPlacements();
  // Advances every cohort through `w`; *all_live = AND of per-slot liveness.
  Status CohortStepAll(const ptl::PropState& w, MonitorVerdict* verdict,
                       bool* all_live);
  // Dense-table cell for (state, sig), resolving through StepSig on first
  // discovery; grows the table as needed. Sets *discovered on a resolve.
  Result<uint32_t> CohortCell(Cohort* ch, uint32_t state, uint32_t sig,
                              bool* discovered);
  void EnsureCohortTable(Cohort* ch, uint32_t rows_needed, uint32_t cols_needed);

  // Interns `f` as an automaton state (no tableau work).
  uint32_t AutoIntern(ptl::Formula f);
  // Liveness of state `sid`, decided by one CheckSat on first query and
  // cached forever after. Lazy on purpose: epoch replay passes through
  // intermediate states whose liveness is never reported, and running the
  // tableau there would be work the progression backend never does.
  Result<bool> AutoLive(uint32_t sid, MonitorVerdict* verdict);
  // One memoized transition; on miss, progresses and interns the successor.
  Result<uint32_t> AutoStep(uint32_t sid, const ptl::PropState& w);
  // Letter-signature id of `w` over the epoch alphabet.
  uint32_t SigOf(const ptl::PropState& w);
};

}  // namespace checker
}  // namespace tic

#endif  // TIC_CHECKER_MONITOR_H_
