#ifndef TIC_CHECKER_MONITOR_H_
#define TIC_CHECKER_MONITOR_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "checker/extension.h"
#include "common/result.h"
#include "db/update.h"
#include "fotl/factory.h"
#include "ptl/progress.h"

namespace tic {
namespace checker {

/// \brief How eagerly the monitor detects violations, and how it catches up
/// instances for newly relevant elements.
enum class MonitorMode {
  /// Exact potential satisfaction (Theorem 4.2): run the satisfiability check
  /// after every update, detecting violations at the earliest possible time.
  /// New-element instances are caught up by replaying the stored history.
  kEager,
  /// The weaker notion implemented by Lipeck & Saake (Section 5): only the
  /// linear-time progression runs per update, so violations are always
  /// detected (the residual collapses to false) but possibly later than the
  /// earliest time. Cheap: no exponential phase per update.
  kLazy,
  /// Eager verdicts WITHOUT storing the propositional history — an answer (in
  /// this setting) to the Section 6 open question of a history-less method
  /// for universal formulas. The z-stand-in atoms are kept as real letters
  /// (never true in any state) instead of being folded to false; when an
  /// element e becomes relevant, its instances' residuals are obtained from
  /// the matching z-pattern instance by *renaming letters* (e was
  /// indistinguishable from the stand-in over the entire past), so no replay
  /// is needed. Per-update memory is O(residuals), independent of t.
  kEagerHistoryLess,
};

/// \brief Verdict after one transaction.
struct MonitorVerdict {
  size_t time = 0;  ///< instant of the newly appended state
  bool potentially_satisfied = false;
  /// True once the constraint can never be satisfied again regardless of
  /// future updates (safety: violations are permanent).
  bool permanently_violated = false;
  uint64_t residual_size = 0;
  size_t num_instances = 0;
  /// Distinct residual formulas progressed this update. Instances over
  /// symmetric elements share a hash-consed residual, so
  /// `num_instances - num_residual_classes` progression calls were saved by
  /// deduplication.
  size_t num_residual_classes = 0;
  /// Tableau size counters of *this update's* satisfiability check alone
  /// (zero on the lazy path and once the monitor is dead — no check runs).
  ptl::TableauStats tableau_stats;
  /// Running totals of the per-update counters above across the monitor's
  /// lifetime. CheckSat reports per-call stats, so the monitor accumulates
  /// explicitly; use these for end-of-run cost reporting.
  ptl::TableauStats cumulative_tableau_stats;
  /// Cumulative counters of the shared tableau verdict cache.
  ptl::VerdictCacheStats verdict_cache_stats;
};

/// \brief Incremental temporal integrity monitor for a universal safety
/// sentence: the production-facing API.
///
/// Maintains, across updates, one progression residual per grounding instance
/// f : {x1..xk} -> M (Theorem 4.1). After each transaction it only
/// (a) progresses every live residual through the single new propositional
/// state and (b) grounds + catches up instances created by newly relevant
/// elements, then re-decides satisfiability of the conjunction. This makes the
/// per-update cost O(|phi_D|) amortized plus one 2^O(|residual|)
/// satisfiability check — the incremental reading of Theorem 4.2.
class Monitor {
 public:
  /// `phi` must be a universal safety sentence over `vocab`.
  static Result<std::unique_ptr<Monitor>> Create(
      std::shared_ptr<fotl::FormulaFactory> fotl_factory, fotl::Formula phi,
      std::vector<Value> constant_interp = {}, CheckOptions options = {},
      MonitorMode mode = MonitorMode::kEager);

  /// Applies `txn` (appending one state to the history) and re-checks.
  Result<MonitorVerdict> ApplyTransaction(const Transaction& txn);

  /// The monitored history so far.
  const History& history() const { return history_; }

  /// Latest verdict (valid after the first transaction).
  const MonitorVerdict& last_verdict() const { return last_verdict_; }

  /// Effective options after Create's defaulting (pool, verdict cache).
  const CheckOptions& options() const { return options_; }

 private:
  Monitor(std::shared_ptr<fotl::FormulaFactory> fotl_factory, fotl::Formula phi,
          History history, CheckOptions options, MonitorMode mode);

  // Grounds the matrix for one instance assignment and progresses it through
  // the whole current history (used when new elements join R_D).
  Result<ptl::Formula> GroundAndCatchUp(const std::vector<GroundElem>& assignment);

  // Progresses every live residual through `w`: residuals are partitioned into
  // equivalence classes by hash-consed identity, one representative per class
  // is progressed (in parallel when a thread pool is configured), and the
  // results are fanned back out to the instances.
  Status ProgressAll(const ptl::PropState& w, size_t* num_classes);

  // Builds the propositional state for history state `t`, creating letters on
  // demand (mirrors Grounding::BuildWord, incrementally).
  ptl::PropState PropStateOf(size_t t);

  Result<ptl::Formula> GroundMatrix(const std::vector<GroundElem>& assignment);
  ptl::PropId Letter(PredicateId pred, const std::vector<Value>& codes);

  // History-less catch-up: derives the residual of a fresh-element assignment
  // by renaming the stand-in letters of its z-pattern instance's residual.
  Result<ptl::Formula> RenameFromPattern(const std::vector<GroundElem>& assignment);
  ptl::Formula RenameLetters(ptl::Formula f,
                             const std::unordered_map<ptl::PropId, ptl::PropId>& map);

  std::shared_ptr<fotl::FormulaFactory> ffac_;
  fotl::Formula phi_;
  std::vector<fotl::VarId> external_;
  fotl::Formula matrix_ = nullptr;
  CheckOptions options_;
  MonitorMode mode_;
  std::vector<ptl::PropState> word_;  // one per history state

  History history_;
  std::vector<Value> known_relevant_;  // sorted
  ptl::PropVocabularyPtr prop_vocab_;
  std::shared_ptr<ptl::Factory> prop_factory_;

  struct LetterKey {
    PredicateId pred;
    std::vector<Value> codes;
    bool operator==(const LetterKey& o) const {
      return pred == o.pred && codes == o.codes;
    }
  };
  struct LetterKeyHash {
    size_t operator()(const LetterKey& k) const;
  };
  std::unordered_map<LetterKey, ptl::PropId, LetterKeyHash> letters_;

  // One residual per instance; the monitored condition is their conjunction.
  struct Instance {
    std::vector<GroundElem> assignment;
    ptl::Formula residual;
  };
  std::vector<Instance> instances_;
  struct AssignmentHash {
    size_t operator()(const std::vector<GroundElem>& a) const;
  };
  struct AssignmentEq {
    bool operator()(const std::vector<GroundElem>& a,
                    const std::vector<GroundElem>& b) const;
  };
  std::unordered_map<std::vector<GroundElem>, size_t, AssignmentHash, AssignmentEq>
      instance_index_;
  bool dead_ = false;  // permanently violated
  ptl::TableauStats cumulative_tableau_stats_;  // totals across all updates
  MonitorVerdict last_verdict_;
};

}  // namespace checker
}  // namespace tic

#endif  // TIC_CHECKER_MONITOR_H_
