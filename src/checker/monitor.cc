#include "checker/monitor.h"

#include <algorithm>
#include <functional>
#include <unordered_set>

#include "common/hash.h"
#include "common/telemetry/telemetry.h"
#include "common/thread_pool.h"
#include "ptl/safety.h"
#include "ptl/tableau.h"
#include "ptl/verdict_cache.h"

namespace tic {
namespace checker {

size_t Monitor::AssignmentHash::operator()(const std::vector<GroundElem>& a) const {
  size_t seed = a.size();
  for (const GroundElem& e : a) HashCombine(&seed, std::hash<Value>{}(e.code));
  return seed;
}

bool Monitor::AssignmentEq::operator()(const std::vector<GroundElem>& a,
                                       const std::vector<GroundElem>& b) const {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!(a[i] == b[i])) return false;
  }
  return true;
}

size_t Monitor::LetterKeyHash::operator()(const LetterKey& k) const {
  // Mix the predicate id instead of using it as a raw seed: small consecutive
  // ids otherwise collide heavily after combining codes.
  size_t seed = 0;
  HashCombine(&seed, static_cast<size_t>(k.pred));
  for (Value v : k.codes) HashCombine(&seed, std::hash<Value>{}(v));
  return seed;
}

Monitor::Monitor(std::shared_ptr<fotl::FormulaFactory> fotl_factory,
                 fotl::Formula phi, History history, CheckOptions options,
                 MonitorMode mode)
    : ffac_(std::move(fotl_factory)),
      phi_(phi),
      options_(options),
      mode_(mode),
      history_(std::move(history)),
      prop_vocab_(std::make_shared<ptl::PropVocabulary>()),
      prop_factory_(std::make_shared<ptl::Factory>(prop_vocab_)) {
  fotl::StripUniversalPrefix(phi_, &external_, &matrix_);
}

Result<std::unique_ptr<Monitor>> Monitor::Create(
    std::shared_ptr<fotl::FormulaFactory> fotl_factory, fotl::Formula phi,
    std::vector<Value> constant_interp, CheckOptions options, MonitorMode mode) {
  fotl::Classification c = fotl::Classify(phi);
  if (!c.universal) {
    return Status::NotSupported(
        "Monitor requires a universal sentence (forall* tense(Sigma_0))");
  }
  if (!c.closed) {
    return Status::InvalidArgument("Monitor requires a sentence (no free variables)");
  }
  TIC_ASSIGN_OR_RETURN(
      History h, History::Create(fotl_factory->vocabulary(), std::move(constant_interp)));
  std::unique_ptr<Monitor> m(
      new Monitor(std::move(fotl_factory), phi, std::move(h), options, mode));
  // Default the shared verdict cache and worker pool: callers inject their own
  // instances through CheckOptions to share them across monitors and trigger
  // managers.
  if (m->options_.tableau.verdict_cache == nullptr) {
    m->options_.tableau.verdict_cache = std::make_shared<ptl::VerdictCache>();
  }
  if (m->options_.thread_pool == nullptr && m->options_.threads > 1) {
    m->options_.thread_pool = std::make_shared<ThreadPool>(m->options_.threads - 1);
  }
  if (m->options_.trace_sink != nullptr) {
    telemetry::SetTraceSink(m->options_.trace_sink);
    telemetry::SetEnabled(true);
  }

  // Safety gate: check the tense skeleton (each first-order atom abstracted to
  // one letter — safety depends only on the temporal structure).
  if (options.require_safety) {
    // Explicit-stack post-order build (a deep user matrix must not overflow
    // the native call stack): frames are pushed twice, first to queue
    // unresolved children, then to combine their memoized skeletons. Each
    // distinct atom gets one letter, numbered in left-to-right first-visit
    // order.
    ptl::Factory* pf = m->prop_factory_.get();
    std::unordered_map<fotl::Formula, ptl::Formula> memo;
    size_t atom_count = 0;
    struct Frame {
      fotl::Formula f;
      bool expanded;
    };
    std::vector<Frame> stack{{m->matrix_, false}};
    while (!stack.empty()) {
      using fotl::NodeKind;
      Frame fr = stack.back();
      stack.pop_back();
      if (memo.count(fr.f) > 0) continue;
      NodeKind k = fr.f->kind();
      if (k == NodeKind::kTrue) {
        memo.emplace(fr.f, pf->True());
        continue;
      }
      if (k == NodeKind::kFalse) {
        memo.emplace(fr.f, pf->False());
        continue;
      }
      if (k == NodeKind::kEquals || k == NodeKind::kAtom) {
        memo.emplace(fr.f, pf->Atom(m->prop_vocab_->Intern(
                               "skel#" + std::to_string(atom_count++))));
        continue;
      }
      fotl::Formula c0 = fr.f->child(0);
      fotl::Formula c1 = fr.f->child(1);
      if (!fr.expanded) {
        stack.push_back({fr.f, true});
        // Reverse push so the left child is visited (and numbered) first.
        if (c1 != nullptr && memo.count(c1) == 0) stack.push_back({c1, false});
        if (c0 != nullptr && memo.count(c0) == 0) stack.push_back({c0, false});
        continue;
      }
      ptl::Formula a = c0 != nullptr ? memo.at(c0) : nullptr;
      ptl::Formula b = c1 != nullptr ? memo.at(c1) : nullptr;
      ptl::Formula out;
      switch (k) {
        case NodeKind::kNot:
          out = pf->Not(a);
          break;
        case NodeKind::kNext:
          out = pf->Next(a);
          break;
        case NodeKind::kEventually:
          out = pf->Eventually(a);
          break;
        case NodeKind::kAlways:
          out = pf->Always(a);
          break;
        case NodeKind::kAnd:
          out = pf->And(a, b);
          break;
        case NodeKind::kOr:
          out = pf->Or(a, b);
          break;
        case NodeKind::kImplies:
          out = pf->Implies(a, b);
          break;
        case NodeKind::kUntil:
          out = pf->Until(a, b);
          break;
        default:
          out = pf->True();  // unreachable for universal matrices
          break;
      }
      memo.emplace(fr.f, out);
    }
    ptl::Formula skeleton = memo.at(m->matrix_);
    if (!ptl::IsSyntacticallySafe(pf, skeleton)) {
      return Status::NotSupported(
          "constraint's tense skeleton is not syntactically safe; the monitor "
          "implements Section 4's algorithm for safety sentences only");
    }
  }

  // Instances over the initial M (constants only, plus the z's).
  std::vector<Value> relevant = m->history_.RelevantSet();
  m->known_relevant_ = relevant;
  std::vector<GroundElem> domain;
  for (Value v : relevant) domain.push_back(GroundElem::Relevant(v));
  for (size_t i = 0; i < m->external_.size(); ++i) domain.push_back(GroundElem::Z(i));
  if (domain.empty()) domain.push_back(GroundElem::Z(0));

  size_t k = m->external_.size();
  std::vector<size_t> idx(k, 0);
  while (true) {
    std::vector<GroundElem> assignment(k);
    for (size_t i = 0; i < k; ++i) assignment[i] = domain[idx[i]];
    TIC_ASSIGN_OR_RETURN(ptl::Formula residual, m->GroundMatrix(assignment));
    m->instance_index_.emplace(assignment, m->instances_.size());
    m->instances_.push_back(Instance{std::move(assignment), residual});
    size_t d = 0;
    while (d < k && ++idx[d] == domain.size()) {
      idx[d] = 0;
      ++d;
    }
    if (d == k) break;
  }
  return m;
}

ptl::PropId Monitor::Letter(PredicateId pred, const std::vector<Value>& codes) {
  LetterKey key{pred, codes};
  auto it = letters_.find(key);
  if (it != letters_.end()) return it->second;
  std::string name = ffac_->vocabulary()->predicate(pred).name + "(";
  for (size_t i = 0; i < codes.size(); ++i) {
    if (i > 0) name += ",";
    name += GroundElem{codes[i]}.ToString();
  }
  name += ")";
  ptl::PropId id = prop_vocab_->Intern(name);
  letters_.emplace(std::move(key), id);
  return id;
}

Result<ptl::Formula> Monitor::GroundMatrix(const std::vector<GroundElem>& assignment) {
  // Simplified-mode grounding (equalities folded, z-atoms false); see
  // GroundingMode::kSimplified.
  std::unordered_map<fotl::VarId, GroundElem> env;
  for (size_t i = 0; i < external_.size(); ++i) env[external_[i]] = assignment[i];

  std::function<Result<ptl::Formula>(fotl::Formula)> go =
      [&](fotl::Formula f) -> Result<ptl::Formula> {
    using fotl::NodeKind;
    ptl::Factory* pf = prop_factory_.get();
    auto resolve = [&](const fotl::Term& t) -> Result<GroundElem> {
      if (t.is_constant()) {
        return GroundElem::Relevant(history_.ConstantValue(t.id));
      }
      auto it = env.find(t.id);
      if (it == env.end()) return Status::Internal("unbound variable in matrix");
      return it->second;
    };
    switch (f->kind()) {
      case NodeKind::kTrue:
        return pf->True();
      case NodeKind::kFalse:
        return pf->False();
      case NodeKind::kEquals: {
        TIC_ASSIGN_OR_RETURN(GroundElem a, resolve(f->terms()[0]));
        TIC_ASSIGN_OR_RETURN(GroundElem b, resolve(f->terms()[1]));
        return a == b ? pf->True() : pf->False();
      }
      case NodeKind::kAtom: {
        if (ffac_->vocabulary()->predicate(f->predicate()).builtin != Builtin::kNone) {
          return Status::NotSupported("builtins unsupported by the monitor");
        }
        std::vector<Value> codes;
        codes.reserve(f->terms().size());
        bool has_z = false;
        for (const fotl::Term& t : f->terms()) {
          TIC_ASSIGN_OR_RETURN(GroundElem e, resolve(t));
          has_z = has_z || e.is_z();
          codes.push_back(e.code);
        }
        if (has_z && mode_ != MonitorMode::kEagerHistoryLess) {
          // Folded per Axiom_D (kSimplified grounding).
          return pf->False();
        }
        // History-less mode keeps stand-in letters unfolded: they are never
        // true in any w state, and they are what fresh-element instances are
        // renamed from.
        return pf->Atom(Letter(f->predicate(), codes));
      }
      case NodeKind::kNot: {
        TIC_ASSIGN_OR_RETURN(ptl::Formula a, go(f->child(0)));
        return pf->Not(a);
      }
      case NodeKind::kNext: {
        TIC_ASSIGN_OR_RETURN(ptl::Formula a, go(f->child(0)));
        return pf->Next(a);
      }
      case NodeKind::kEventually: {
        TIC_ASSIGN_OR_RETURN(ptl::Formula a, go(f->child(0)));
        return pf->Eventually(a);
      }
      case NodeKind::kAlways: {
        TIC_ASSIGN_OR_RETURN(ptl::Formula a, go(f->child(0)));
        return pf->Always(a);
      }
      case NodeKind::kAnd: {
        TIC_ASSIGN_OR_RETURN(ptl::Formula a, go(f->lhs()));
        TIC_ASSIGN_OR_RETURN(ptl::Formula b, go(f->rhs()));
        return pf->And(a, b);
      }
      case NodeKind::kOr: {
        TIC_ASSIGN_OR_RETURN(ptl::Formula a, go(f->lhs()));
        TIC_ASSIGN_OR_RETURN(ptl::Formula b, go(f->rhs()));
        return pf->Or(a, b);
      }
      case NodeKind::kImplies: {
        TIC_ASSIGN_OR_RETURN(ptl::Formula a, go(f->lhs()));
        TIC_ASSIGN_OR_RETURN(ptl::Formula b, go(f->rhs()));
        return pf->Implies(a, b);
      }
      case NodeKind::kUntil: {
        TIC_ASSIGN_OR_RETURN(ptl::Formula a, go(f->lhs()));
        TIC_ASSIGN_OR_RETURN(ptl::Formula b, go(f->rhs()));
        return pf->Until(a, b);
      }
      default:
        return Status::Internal("unexpected connective in universal matrix");
    }
  };
  return go(matrix_);
}

ptl::PropState Monitor::PropStateOf(size_t t) {
  ptl::PropState w;
  const Vocabulary& vocab = *ffac_->vocabulary();
  const DatabaseState& state = history_.state(t);
  for (PredicateId p = 0; p < vocab.num_predicates(); ++p) {
    if (vocab.predicate(p).builtin != Builtin::kNone) continue;
    for (const Tuple& tuple : state.relation(p)) {
      std::vector<Value> codes(tuple.begin(), tuple.end());
      w.Set(Letter(p, codes), true);
    }
  }
  return w;
}

Result<ptl::Formula> Monitor::GroundAndCatchUp(
    const std::vector<GroundElem>& assignment) {
  TIC_SPAN("monitor.catch_up");
  TIC_ASSIGN_OR_RETURN(ptl::Formula residual, GroundMatrix(assignment));
  for (const ptl::PropState& w : word_) {
    TIC_ASSIGN_OR_RETURN(residual, ptl::Progress(prop_factory_.get(), residual, w));
    if (residual->kind() == ptl::Kind::kFalse) break;
  }
  return residual;
}

Result<ptl::Formula> Monitor::RenameFromPattern(
    const std::vector<GroundElem>& assignment) {
  // Canonical pattern: each distinct fresh (just-became-relevant) element is
  // replaced by a distinct stand-in index not otherwise used by the
  // assignment. Over the whole past, the element was indistinguishable from
  // that stand-in, so the pattern instance's residual — with the stand-in
  // letters renamed — IS the fresh instance's residual. No history replay.
  std::unordered_set<size_t> used_z;
  for (const GroundElem& e : assignment) {
    if (e.is_z()) used_z.insert(e.z_index());
  }
  std::unordered_map<Value, GroundElem> fresh_to_z;  // element -> stand-in
  std::vector<GroundElem> pattern = assignment;
  size_t next_z = 0;
  for (GroundElem& e : pattern) {
    if (e.is_z()) continue;
    if (std::binary_search(known_relevant_.begin(), known_relevant_.end(),
                           e.value())) {
      continue;  // long-relevant element: stays
    }
    auto it = fresh_to_z.find(e.value());
    if (it != fresh_to_z.end()) {
      e = it->second;
      continue;
    }
    while (used_z.count(next_z) > 0) ++next_z;
    used_z.insert(next_z);
    GroundElem z = GroundElem::Z(next_z);
    fresh_to_z.emplace(e.value(), z);
    e = z;
  }

  auto pattern_it = instance_index_.find(pattern);
  if (pattern_it == instance_index_.end()) {
    return Status::Internal("history-less catch-up: pattern instance missing");
  }
  ptl::Formula pattern_residual = instances_[pattern_it->second].residual;

  // Letter renaming: any letter mentioning a mapped stand-in code becomes the
  // letter with the fresh element substituted.
  std::unordered_map<Value, Value> code_map;  // z code -> element value
  for (const auto& [value, z] : fresh_to_z) code_map.emplace(z.code, value);
  std::unordered_map<ptl::PropId, ptl::PropId> letter_map;
  std::vector<std::pair<LetterKey, ptl::PropId>> snapshot(letters_.begin(),
                                                          letters_.end());
  for (const auto& [key, id] : snapshot) {
    bool touched = false;
    std::vector<Value> renamed = key.codes;
    for (Value& c : renamed) {
      auto it = code_map.find(c);
      if (it != code_map.end()) {
        c = it->second;
        touched = true;
      }
    }
    if (touched) letter_map.emplace(id, Letter(key.pred, renamed));
  }
  return RenameLetters(pattern_residual, letter_map);
}

ptl::Formula Monitor::RenameLetters(
    ptl::Formula f, const std::unordered_map<ptl::PropId, ptl::PropId>& map) {
  ptl::Factory* pf = prop_factory_.get();
  std::unordered_map<ptl::Formula, ptl::Formula> memo;
  std::function<ptl::Formula(ptl::Formula)> go =
      [&](ptl::Formula g) -> ptl::Formula {
    auto hit = memo.find(g);
    if (hit != memo.end()) return hit->second;
    ptl::Formula out = g;
    switch (g->kind()) {
      case ptl::Kind::kTrue:
      case ptl::Kind::kFalse:
        break;
      case ptl::Kind::kAtom: {
        auto it = map.find(g->atom());
        if (it != map.end()) out = pf->Atom(it->second);
        break;
      }
      case ptl::Kind::kNot:
        out = pf->Not(go(g->child(0)));
        break;
      case ptl::Kind::kNext:
        out = pf->Next(go(g->child(0)));
        break;
      case ptl::Kind::kEventually:
        out = pf->Eventually(go(g->child(0)));
        break;
      case ptl::Kind::kAlways:
        out = pf->Always(go(g->child(0)));
        break;
      case ptl::Kind::kAnd:
        out = pf->And(go(g->lhs()), go(g->rhs()));
        break;
      case ptl::Kind::kOr:
        out = pf->Or(go(g->lhs()), go(g->rhs()));
        break;
      case ptl::Kind::kImplies:
        out = pf->Implies(go(g->lhs()), go(g->rhs()));
        break;
      case ptl::Kind::kUntil:
        out = pf->Until(go(g->lhs()), go(g->rhs()));
        break;
      case ptl::Kind::kRelease:
        out = pf->Release(go(g->lhs()), go(g->rhs()));
        break;
    }
    memo.emplace(g, out);
    return out;
  };
  return go(f);
}

Status Monitor::ProgressAll(const ptl::PropState& w, size_t* num_classes) {
  TIC_SPAN("monitor.progress");
  // Partition live residuals by hash-consed identity: instances over symmetric
  // elements share one formula node, so each distinct residual is progressed
  // once and the result fanned back out.
  std::unordered_map<ptl::Formula, size_t> class_of;
  std::vector<ptl::Formula> reps;
  for (const Instance& inst : instances_) {
    if (inst.residual->kind() == ptl::Kind::kFalse) continue;
    auto [it, inserted] = class_of.emplace(inst.residual, reps.size());
    (void)it;
    if (inserted) reps.push_back(inst.residual);
  }
  if (num_classes != nullptr) *num_classes = reps.size();

  // Result<T> is not default-constructible; collect values and errors apart.
  std::vector<ptl::Formula> progressed(reps.size(), nullptr);
  std::vector<Status> errors(reps.size());
  ptl::Factory* pf = prop_factory_.get();
  auto step = [&](size_t i) {
    TIC_SPAN("monitor.progress_class");
    Result<ptl::Formula> r = ptl::Progress(pf, reps[i], w);
    if (r.ok()) {
      progressed[i] = *r;
    } else {
      errors[i] = r.status();
    }
  };
  ThreadPool* pool = options_.thread_pool.get();
  if (pool != nullptr && reps.size() > 1) {
    pool->ParallelFor(reps.size(), step);
  } else {
    for (size_t i = 0; i < reps.size(); ++i) step(i);
  }
  TIC_COUNTER_ADD("monitor/residual_classes", reps.size());
  for (const Status& s : errors) TIC_RETURN_NOT_OK(s);
  for (Instance& inst : instances_) {
    if (inst.residual->kind() == ptl::Kind::kFalse) continue;
    inst.residual = progressed[class_of.at(inst.residual)];
  }
  return Status::OK();
}

Result<MonitorVerdict> Monitor::ApplyTransaction(const Transaction& txn) {
  TIC_SPAN("monitor.update");
  TIC_COUNTER_ADD("monitor/updates", 1);
  TIC_RETURN_NOT_OK(tic::ApplyTransaction(&history_, txn));
  size_t t = history_.length() - 1;
  MonitorVerdict verdict;
  verdict.time = t;

  if (dead_) {
    verdict.permanently_violated = true;
    verdict.potentially_satisfied = false;
    verdict.cumulative_tableau_stats = cumulative_tableau_stats_;
    last_verdict_ = verdict;
    return verdict;
  }

  // New relevant elements introduced by this state?
  std::unordered_set<Value> active;
  history_.state(t).CollectActiveDomain(&active);
  std::vector<Value> fresh;
  for (Value v : active) {
    if (!std::binary_search(known_relevant_.begin(), known_relevant_.end(), v)) {
      fresh.push_back(v);
    }
  }
  std::sort(fresh.begin(), fresh.end());

  // Enumerates every assignment over the merged domain that touches a fresh
  // element and hands it to `make` to build its residual.
  auto create_fresh_instances =
      [&](const std::function<Result<ptl::Formula>(
              const std::vector<GroundElem>&)>& make) -> Status {
    size_t k = external_.size();
    if (k == 0 || fresh.empty()) return Status::OK();
    std::vector<Value> merged;
    std::merge(known_relevant_.begin(), known_relevant_.end(), fresh.begin(),
               fresh.end(), std::back_inserter(merged));
    std::vector<GroundElem> domain;
    for (Value v : merged) domain.push_back(GroundElem::Relevant(v));
    for (size_t i = 0; i < k; ++i) domain.push_back(GroundElem::Z(i));
    std::unordered_set<Value> fresh_set(fresh.begin(), fresh.end());

    std::vector<size_t> idx(k, 0);
    while (true) {
      bool touches_fresh = false;
      for (size_t i = 0; i < k; ++i) {
        const GroundElem& e = domain[idx[i]];
        if (!e.is_z() && fresh_set.count(e.value()) > 0) {
          touches_fresh = true;
          break;
        }
      }
      if (touches_fresh) {
        std::vector<GroundElem> assignment(k);
        for (size_t i = 0; i < k; ++i) assignment[i] = domain[idx[i]];
        TIC_ASSIGN_OR_RETURN(ptl::Formula residual, make(assignment));
        instance_index_.emplace(assignment, instances_.size());
        instances_.push_back(Instance{std::move(assignment), residual});
      }
      size_t d = 0;
      while (d < k && ++idx[d] == domain.size()) {
        idx[d] = 0;
        ++d;
      }
      if (d == k) break;
    }
    return Status::OK();
  };

  ptl::PropState w = PropStateOf(t);

  TIC_COUNTER_ADD("monitor/fresh_elements", fresh.size());

  if (mode_ == MonitorMode::kEagerHistoryLess) {
    // Fresh instances first (renamed from their stand-in patterns, whose
    // residuals are still at the t-1 basis), then progress everything through
    // the new state. The propositional history is never stored.
    TIC_RETURN_NOT_OK([&] {
      TIC_SPAN("monitor.fresh_instances");
      return create_fresh_instances(
          [&](const std::vector<GroundElem>& a) { return RenameFromPattern(a); });
    }());
    if (!fresh.empty()) {
      std::vector<Value> merged;
      std::merge(known_relevant_.begin(), known_relevant_.end(), fresh.begin(),
                 fresh.end(), std::back_inserter(merged));
      known_relevant_ = std::move(merged);
    }
    TIC_RETURN_NOT_OK(ProgressAll(w, &verdict.num_residual_classes));
  } else {
    word_.push_back(w);
    TIC_RETURN_NOT_OK(ProgressAll(w, &verdict.num_residual_classes));
    if (!fresh.empty()) {
      TIC_RETURN_NOT_OK([&] {
        TIC_SPAN("monitor.fresh_instances");
        return create_fresh_instances(
            [&](const std::vector<GroundElem>& a) { return GroundAndCatchUp(a); });
      }());
      std::vector<Value> merged;
      std::merge(known_relevant_.begin(), known_relevant_.end(), fresh.begin(),
                 fresh.end(), std::back_inserter(merged));
      known_relevant_ = std::move(merged);
    }
  }

  // Conjunction of residuals.
  ptl::Formula conj = prop_factory_->True();
  {
    TIC_SPAN("monitor.conjunction");
    for (const Instance& inst : instances_) {
      conj = prop_factory_->And(conj, inst.residual);
      if (conj->kind() == ptl::Kind::kFalse) break;
    }
  }
  verdict.residual_size = conj->size();
  verdict.num_instances = instances_.size();
  TIC_GAUGE_SET("monitor/instances", instances_.size());
  TIC_HISTOGRAM_RECORD("monitor/residual_size", verdict.residual_size);

  if (conj->kind() == ptl::Kind::kFalse) {
    dead_ = true;
    verdict.permanently_violated = true;
    verdict.potentially_satisfied = false;
  } else if (mode_ == MonitorMode::kLazy) {
    // Lipeck–Saake-style weak monitoring: no satisfiability check; report
    // "no violation detected yet".
    verdict.potentially_satisfied = true;
  } else {
    TIC_SPAN("monitor.sat_check");
    TIC_ASSIGN_OR_RETURN(ptl::SatResult sat,
                         ptl::CheckSat(prop_factory_.get(), conj, options_.tableau));
    // CheckSat stats are per-call; fold them into the lifetime totals here.
    verdict.tableau_stats = sat.stats;
    cumulative_tableau_stats_ += sat.stats;
    verdict.potentially_satisfied = sat.satisfiable;
    if (!sat.satisfiable) {
      dead_ = true;
      verdict.permanently_violated = true;
    }
  }
  verdict.cumulative_tableau_stats = cumulative_tableau_stats_;
  if (options_.tableau.verdict_cache != nullptr) {
    verdict.verdict_cache_stats = options_.tableau.verdict_cache->stats();
  }
  last_verdict_ = verdict;
  return verdict;
}

}  // namespace checker
}  // namespace tic
