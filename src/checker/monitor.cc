#include "checker/monitor.h"

#include <algorithm>
#include <functional>
#include <unordered_set>

#include "common/flat/gather.h"
#include "common/hash.h"
#include "common/telemetry/telemetry.h"
#include "common/thread_pool.h"
#include "ptl/safety.h"
#include "ptl/tableau.h"
#include "ptl/verdict_cache.h"

namespace tic {
namespace checker {

size_t Monitor::AssignmentHash::operator()(const std::vector<GroundElem>& a) const {
  // Mix the arity instead of seeding with it raw: assignments all share the
  // same small size, and a raw seed makes the low bits collide heavily (the
  // LetterKeyHash predicate-id fix, same family).
  size_t seed = 0;
  HashCombine(&seed, a.size());
  for (const GroundElem& e : a) HashCombine(&seed, std::hash<Value>{}(e.code));
  return seed;
}

bool Monitor::AssignmentEq::operator()(const std::vector<GroundElem>& a,
                                       const std::vector<GroundElem>& b) const {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!(a[i] == b[i])) return false;
  }
  return true;
}

size_t Monitor::LetterKeyHash::operator()(const LetterKey& k) const {
  // Mix the predicate id instead of using it as a raw seed: small consecutive
  // ids otherwise collide heavily after combining codes.
  size_t seed = 0;
  HashCombine(&seed, static_cast<size_t>(k.pred));
  for (Value v : k.codes) HashCombine(&seed, std::hash<Value>{}(v));
  return seed;
}

Monitor::Monitor(std::shared_ptr<fotl::FormulaFactory> fotl_factory,
                 fotl::Formula phi, History history, CheckOptions options,
                 MonitorMode mode)
    : ffac_(std::move(fotl_factory)),
      phi_(phi),
      options_(options),
      mode_(mode),
      history_(std::move(history)),
      prop_vocab_(std::make_shared<ptl::PropVocabulary>()),
      prop_factory_(std::make_shared<ptl::Factory>(prop_vocab_)) {
  fotl::StripUniversalPrefix(phi_, &external_, &matrix_);
}

Result<std::unique_ptr<Monitor>> Monitor::Create(
    std::shared_ptr<fotl::FormulaFactory> fotl_factory, fotl::Formula phi,
    std::vector<Value> constant_interp, CheckOptions options, MonitorMode mode) {
  fotl::Classification c = fotl::Classify(phi);
  if (!c.universal) {
    return Status::NotSupported(
        "Monitor requires a universal sentence (forall* tense(Sigma_0))");
  }
  if (!c.closed) {
    return Status::InvalidArgument("Monitor requires a sentence (no free variables)");
  }
  TIC_ASSIGN_OR_RETURN(
      History h, History::Create(fotl_factory->vocabulary(), std::move(constant_interp)));
  std::unique_ptr<Monitor> m(
      new Monitor(std::move(fotl_factory), phi, std::move(h), options, mode));
  // Default the shared verdict cache and worker pool: callers inject their own
  // instances through CheckOptions to share them across monitors and trigger
  // managers.
  if (m->options_.tableau.verdict_cache == nullptr) {
    m->options_.tableau.verdict_cache = std::make_shared<ptl::VerdictCache>();
  }
  // Resolve the effective backend: the automaton run replaces exact eager
  // monitoring only. kLazy's weak verdicts and the history-less letter
  // renaming are progression-specific, so those modes keep kProgression.
  m->backend_ = m->options_.backend;
  if (mode != MonitorMode::kEager) m->backend_ = MonitorBackend::kProgression;
  // Cohort stepping compiles per-instance automata through the
  // renaming-invariant cache so symmetric instances share one transition
  // system; default a private cache when the caller didn't inject one.
  if (m->backend_ == MonitorBackend::kAutomaton && m->options_.cohort_stepping &&
      m->options_.automaton_cache == nullptr) {
    m->options_.automaton_cache = std::make_shared<ptl::AutomatonCache>();
  }
  if (m->options_.thread_pool == nullptr && m->options_.threads > 1) {
    m->options_.thread_pool = std::make_shared<ThreadPool>(m->options_.threads - 1);
  }
  if (m->options_.trace_sink != nullptr) {
    telemetry::SetTraceSink(m->options_.trace_sink);
    telemetry::SetEnabled(true);
  }
#ifdef TIC_TELEMETRY_ENABLED
  // Pre-create the calling thread's flight-recorder ring: the first
  // TIC_RECORD must not allocate inside a measured (zero-alloc gate) window.
  telemetry::EnsureThreadRing();
  if (m->options_.watchdog_ms > 0) {
    telemetry::StallWatchdog::Options wo;
    wo.deadline_ms = m->options_.watchdog_ms;
    wo.dump_path = m->options_.watchdog_dump_path;
    m->watchdog_ = std::make_unique<telemetry::StallWatchdog>(std::move(wo));
  }
#endif

  // Safety gate: check the tense skeleton (each first-order atom abstracted to
  // one letter — safety depends only on the temporal structure).
  if (options.require_safety) {
    // Explicit-stack post-order build (a deep user matrix must not overflow
    // the native call stack): frames are pushed twice, first to queue
    // unresolved children, then to combine their memoized skeletons. Each
    // distinct atom gets one letter, numbered in left-to-right first-visit
    // order.
    ptl::Factory* pf = m->prop_factory_.get();
    std::unordered_map<fotl::Formula, ptl::Formula> memo;
    size_t atom_count = 0;
    struct Frame {
      fotl::Formula f;
      bool expanded;
    };
    std::vector<Frame> stack{{m->matrix_, false}};
    while (!stack.empty()) {
      using fotl::NodeKind;
      Frame fr = stack.back();
      stack.pop_back();
      if (memo.count(fr.f) > 0) continue;
      NodeKind k = fr.f->kind();
      if (k == NodeKind::kTrue) {
        memo.emplace(fr.f, pf->True());
        continue;
      }
      if (k == NodeKind::kFalse) {
        memo.emplace(fr.f, pf->False());
        continue;
      }
      if (k == NodeKind::kEquals || k == NodeKind::kAtom) {
        memo.emplace(fr.f, pf->Atom(m->prop_vocab_->Intern(
                               "skel#" + std::to_string(atom_count++))));
        continue;
      }
      fotl::Formula c0 = fr.f->child(0);
      fotl::Formula c1 = fr.f->child(1);
      if (!fr.expanded) {
        stack.push_back({fr.f, true});
        // Reverse push so the left child is visited (and numbered) first.
        if (c1 != nullptr && memo.count(c1) == 0) stack.push_back({c1, false});
        if (c0 != nullptr && memo.count(c0) == 0) stack.push_back({c0, false});
        continue;
      }
      ptl::Formula a = c0 != nullptr ? memo.at(c0) : nullptr;
      ptl::Formula b = c1 != nullptr ? memo.at(c1) : nullptr;
      ptl::Formula out;
      switch (k) {
        case NodeKind::kNot:
          out = pf->Not(a);
          break;
        case NodeKind::kNext:
          out = pf->Next(a);
          break;
        case NodeKind::kEventually:
          out = pf->Eventually(a);
          break;
        case NodeKind::kAlways:
          out = pf->Always(a);
          break;
        case NodeKind::kAnd:
          out = pf->And(a, b);
          break;
        case NodeKind::kOr:
          out = pf->Or(a, b);
          break;
        case NodeKind::kImplies:
          out = pf->Implies(a, b);
          break;
        case NodeKind::kUntil:
          out = pf->Until(a, b);
          break;
        default:
          out = pf->True();  // unreachable for universal matrices
          break;
      }
      memo.emplace(fr.f, out);
    }
    ptl::Formula skeleton = memo.at(m->matrix_);
    if (!ptl::IsSyntacticallySafe(pf, skeleton)) {
      return Status::NotSupported(
          "constraint's tense skeleton is not syntactically safe; the monitor "
          "implements Section 4's algorithm for safety sentences only");
    }
  }

  // Instances over the initial M (constants only, plus the z's).
  std::vector<Value> relevant = m->history_.RelevantSet();
  m->known_relevant_ = relevant;
  std::vector<GroundElem> domain;
  for (Value v : relevant) domain.push_back(GroundElem::Relevant(v));
  for (size_t i = 0; i < m->external_.size(); ++i) domain.push_back(GroundElem::Z(i));
  if (domain.empty()) domain.push_back(GroundElem::Z(0));

  size_t k = m->external_.size();
  std::vector<size_t> idx(k, 0);
  while (true) {
    std::vector<GroundElem> assignment(k);
    for (size_t i = 0; i < k; ++i) assignment[i] = domain[idx[i]];
    TIC_ASSIGN_OR_RETURN(ptl::Formula residual, m->GroundMatrix(assignment));
    m->instance_index_.Emplace(assignment, m->instances_.size());
    m->instances_.push_back(Instance{std::move(assignment), residual});
    size_t d = 0;
    while (d < k && ++idx[d] == domain.size()) {
      idx[d] = 0;
      ++d;
    }
    if (d == k) break;
  }
  return m;
}

ptl::PropId Monitor::Letter(PredicateId pred, const std::vector<Value>& codes) {
  // Probe with a reusable key (vector assignment reuses its capacity): the
  // hit path — every tuple after a letter's first sight — is allocation-free.
  letter_probe_.pred = pred;
  letter_probe_.codes.assign(codes.begin(), codes.end());
  if (const ptl::PropId* hit = letters_.Get(letter_probe_)) return *hit;
  std::string name = ffac_->vocabulary()->predicate(pred).name + "(";
  for (size_t i = 0; i < codes.size(); ++i) {
    if (i > 0) name += ",";
    name += GroundElem{codes[i]}.ToString();
  }
  name += ")";
  ptl::PropId id = prop_vocab_->Intern(name);
  letters_.Emplace(LetterKey{pred, codes}, id);
  uint32_t log_index = static_cast<uint32_t>(letter_log_.size());
  letter_log_.push_back(LetterEntry{LetterKey{pred, codes}, id});
  // Index the letter under each distinct code it mentions (log indices, not
  // entry pointers — flat-table entries relocate on insert), so renaming can
  // find letters by touched code.
  const std::vector<Value>& cs = letter_log_.back().key.codes;
  for (size_t i = 0; i < cs.size(); ++i) {
    if (std::find(cs.begin(), cs.begin() + i, cs[i]) != cs.begin() + i) continue;
    letters_by_code_[cs[i]].push_back(log_index);
  }
  return id;
}

Result<ptl::Formula> Monitor::GroundMatrix(const std::vector<GroundElem>& assignment) {
  // Simplified-mode grounding (equalities folded, z-atoms false); see
  // GroundingMode::kSimplified. Explicit-stack post-order traversal, like the
  // safety-gate skeleton builder: a deep user matrix must not overflow the
  // native call stack.
  using fotl::NodeKind;
  std::unordered_map<fotl::VarId, GroundElem> env;
  for (size_t i = 0; i < external_.size(); ++i) env[external_[i]] = assignment[i];

  ptl::Factory* pf = prop_factory_.get();
  auto resolve = [&](const fotl::Term& t) -> Result<GroundElem> {
    if (t.is_constant()) {
      return GroundElem::Relevant(history_.ConstantValue(t.id));
    }
    auto it = env.find(t.id);
    if (it == env.end()) return Status::Internal("unbound variable in matrix");
    return it->second;
  };

  std::unordered_map<fotl::Formula, ptl::Formula> memo;
  struct Frame {
    fotl::Formula f;
    bool expanded;
  };
  std::vector<Frame> stack{{matrix_, false}};
  std::vector<Value> codes;  // scratch reused across atoms
  while (!stack.empty()) {
    Frame fr = stack.back();
    stack.pop_back();
    if (memo.count(fr.f) > 0) continue;
    NodeKind k = fr.f->kind();
    if (k == NodeKind::kTrue) {
      memo.emplace(fr.f, pf->True());
      continue;
    }
    if (k == NodeKind::kFalse) {
      memo.emplace(fr.f, pf->False());
      continue;
    }
    if (k == NodeKind::kEquals) {
      TIC_ASSIGN_OR_RETURN(GroundElem a, resolve(fr.f->terms()[0]));
      TIC_ASSIGN_OR_RETURN(GroundElem b, resolve(fr.f->terms()[1]));
      memo.emplace(fr.f, a == b ? pf->True() : pf->False());
      continue;
    }
    if (k == NodeKind::kAtom) {
      if (ffac_->vocabulary()->predicate(fr.f->predicate()).builtin !=
          Builtin::kNone) {
        return Status::NotSupported("builtins unsupported by the monitor");
      }
      codes.clear();
      bool has_z = false;
      for (const fotl::Term& t : fr.f->terms()) {
        TIC_ASSIGN_OR_RETURN(GroundElem e, resolve(t));
        has_z = has_z || e.is_z();
        codes.push_back(e.code);
      }
      if (has_z && mode_ != MonitorMode::kEagerHistoryLess) {
        // Folded per Axiom_D (kSimplified grounding).
        memo.emplace(fr.f, pf->False());
      } else {
        // History-less mode keeps stand-in letters unfolded: they are never
        // true in any w state, and they are what fresh-element instances are
        // renamed from.
        memo.emplace(fr.f, pf->Atom(Letter(fr.f->predicate(), codes)));
      }
      continue;
    }
    fotl::Formula c0 = fr.f->child(0);
    fotl::Formula c1 = fr.f->child(1);
    if (!fr.expanded) {
      stack.push_back({fr.f, true});
      if (c1 != nullptr && memo.count(c1) == 0) stack.push_back({c1, false});
      if (c0 != nullptr && memo.count(c0) == 0) stack.push_back({c0, false});
      continue;
    }
    ptl::Formula a = c0 != nullptr ? memo.at(c0) : nullptr;
    ptl::Formula b = c1 != nullptr ? memo.at(c1) : nullptr;
    ptl::Formula out;
    switch (k) {
      case NodeKind::kNot:
        out = pf->Not(a);
        break;
      case NodeKind::kNext:
        out = pf->Next(a);
        break;
      case NodeKind::kEventually:
        out = pf->Eventually(a);
        break;
      case NodeKind::kAlways:
        out = pf->Always(a);
        break;
      case NodeKind::kAnd:
        out = pf->And(a, b);
        break;
      case NodeKind::kOr:
        out = pf->Or(a, b);
        break;
      case NodeKind::kImplies:
        out = pf->Implies(a, b);
        break;
      case NodeKind::kUntil:
        out = pf->Until(a, b);
        break;
      default:
        return Status::Internal("unexpected connective in universal matrix");
    }
    memo.emplace(fr.f, out);
  }
  return memo.at(matrix_);
}

ptl::PropState Monitor::PropStateOf(size_t t) {
  ptl::PropState w;
  const Vocabulary& vocab = *ffac_->vocabulary();
  const DatabaseState& state = history_.state(t);
  for (PredicateId p = 0; p < vocab.num_predicates(); ++p) {
    if (vocab.predicate(p).builtin != Builtin::kNone) continue;
    for (const Tuple& tuple : state.relation(p)) {
      // A Tuple IS a vector of value codes — no per-tuple copy needed.
      w.Set(Letter(p, tuple), true);
    }
  }
  return w;
}

Result<ptl::Formula> Monitor::GroundAndCatchUp(
    const std::vector<GroundElem>& assignment) {
  TIC_SPAN("monitor.catch_up");
  TIC_ASSIGN_OR_RETURN(ptl::Formula residual, GroundMatrix(assignment));
  for (const WordEntry& e : word_) {
    if (residual->kind() == ptl::Kind::kFalse) break;
    for (uint64_t r = 0; r < e.repeat; ++r) {
      TIC_ASSIGN_OR_RETURN(ptl::Formula next,
                           ptl::Progress(prop_factory_.get(), residual, e.w));
      // Hash-consed fixpoint: progression is deterministic, so once the
      // residual stops changing under this run's letter, the remaining
      // repetitions are no-ops — catch-up costs one rewrite per RUN.
      if (next == residual) break;
      residual = next;
      if (residual->kind() == ptl::Kind::kFalse) break;
    }
  }
  return residual;
}

Result<ptl::Formula> Monitor::RenameFromPattern(
    const std::vector<GroundElem>& assignment) {
  // Canonical pattern: each distinct fresh (just-became-relevant) element is
  // replaced by a distinct stand-in index not otherwise used by the
  // assignment. Over the whole past, the element was indistinguishable from
  // that stand-in, so the pattern instance's residual — with the stand-in
  // letters renamed — IS the fresh instance's residual. No history replay.
  std::unordered_set<size_t> used_z;
  for (const GroundElem& e : assignment) {
    if (e.is_z()) used_z.insert(e.z_index());
  }
  std::unordered_map<Value, GroundElem> fresh_to_z;  // element -> stand-in
  std::vector<GroundElem> pattern = assignment;
  size_t next_z = 0;
  for (GroundElem& e : pattern) {
    if (e.is_z()) continue;
    if (std::binary_search(known_relevant_.begin(), known_relevant_.end(),
                           e.value())) {
      continue;  // long-relevant element: stays
    }
    auto it = fresh_to_z.find(e.value());
    if (it != fresh_to_z.end()) {
      e = it->second;
      continue;
    }
    while (used_z.count(next_z) > 0) ++next_z;
    used_z.insert(next_z);
    GroundElem z = GroundElem::Z(next_z);
    fresh_to_z.emplace(e.value(), z);
    e = z;
  }

  const size_t* pattern_idx = instance_index_.Get(pattern);
  if (pattern_idx == nullptr) {
    return Status::Internal("history-less catch-up: pattern instance missing");
  }
  ptl::Formula pattern_residual = instances_[*pattern_idx].residual;

  // Letter renaming: any letter mentioning a mapped stand-in code becomes the
  // letter with the fresh element substituted. The per-code index hands us
  // exactly the letters touched — no snapshot of the whole letters_ map.
  std::unordered_map<Value, Value> code_map;  // z code -> element value
  for (const auto& [value, z] : fresh_to_z) code_map.emplace(z.code, value);
  // Collect before renaming: Letter() inserts grow letters_by_code_, so the
  // bucket vectors must not be iterated while new letters are minted.
  std::vector<uint32_t> touched;  // letter_log_ indices
  std::unordered_set<ptl::PropId> seen;
  for (const auto& [zcode, value] : code_map) {
    (void)value;
    const std::vector<uint32_t>* bucket = letters_by_code_.Get(zcode);
    if (bucket == nullptr) continue;
    for (uint32_t idx : *bucket) {
      if (seen.insert(letter_log_[idx].id).second) touched.push_back(idx);
    }
  }
  std::unordered_map<ptl::PropId, ptl::PropId> letter_map;
  std::vector<Value> renamed;  // scratch
  for (uint32_t idx : touched) {
    // Copy before the Letter() call below: minting a renamed letter appends
    // to letter_log_, which may relocate the entry.
    LetterEntry entry = letter_log_[idx];
    renamed = entry.key.codes;
    for (Value& c : renamed) {
      auto it = code_map.find(c);
      if (it != code_map.end()) c = it->second;
    }
    letter_map.emplace(entry.id, Letter(entry.key.pred, renamed));
  }
  return RenameLetters(pattern_residual, letter_map);
}

ptl::Formula Monitor::RenameLetters(
    ptl::Formula f, const std::unordered_map<ptl::PropId, ptl::PropId>& map) {
  ptl::Factory* pf = prop_factory_.get();
  std::unordered_map<ptl::Formula, ptl::Formula> memo;
  std::function<ptl::Formula(ptl::Formula)> go =
      [&](ptl::Formula g) -> ptl::Formula {
    auto hit = memo.find(g);
    if (hit != memo.end()) return hit->second;
    ptl::Formula out = g;
    switch (g->kind()) {
      case ptl::Kind::kTrue:
      case ptl::Kind::kFalse:
        break;
      case ptl::Kind::kAtom: {
        auto it = map.find(g->atom());
        if (it != map.end()) out = pf->Atom(it->second);
        break;
      }
      case ptl::Kind::kNot:
        out = pf->Not(go(g->child(0)));
        break;
      case ptl::Kind::kNext:
        out = pf->Next(go(g->child(0)));
        break;
      case ptl::Kind::kEventually:
        out = pf->Eventually(go(g->child(0)));
        break;
      case ptl::Kind::kAlways:
        out = pf->Always(go(g->child(0)));
        break;
      case ptl::Kind::kAnd:
        out = pf->And(go(g->lhs()), go(g->rhs()));
        break;
      case ptl::Kind::kOr:
        out = pf->Or(go(g->lhs()), go(g->rhs()));
        break;
      case ptl::Kind::kImplies:
        out = pf->Implies(go(g->lhs()), go(g->rhs()));
        break;
      case ptl::Kind::kUntil:
        out = pf->Until(go(g->lhs()), go(g->rhs()));
        break;
      case ptl::Kind::kRelease:
        out = pf->Release(go(g->lhs()), go(g->rhs()));
        break;
    }
    memo.emplace(g, out);
    return out;
  };
  return go(f);
}

Status Monitor::ProgressAll(const ptl::PropState& w, size_t* num_classes) {
  TIC_SPAN("monitor.progress");
  // Persistent partition of instances into residual equivalence classes.
  // Progression is a pure function of the residual, so once built the classes
  // stay valid across updates — the steady-state path walks the class list
  // directly instead of re-hashing every instance's formula per transaction.
  // Rebuild only when instances were added since the partition was taken.
  if (progress_classes_instances_ != instances_.size()) {
    progress_classes_.clear();
    flat::FlatMap<ptl::Formula, size_t>& class_of = class_of_scratch_;
    class_of.Clear();
    for (size_t m = 0; m < instances_.size(); ++m) {
      auto [e, inserted] =
          class_of.Emplace(instances_[m].residual, progress_classes_.size());
      if (inserted) {
        progress_classes_.push_back(ProgressClass{instances_[m].residual, {}});
      }
      progress_classes_[e->second].members.push_back(static_cast<uint32_t>(m));
    }
    progress_classes_instances_ = instances_.size();
  }

  // Count and progress only live classes (a false residual is a fixpoint);
  // dead classes keep their members pinned at false.
  size_t live_classes = 0;
  for (const ProgressClass& pc : progress_classes_) {
    if (pc.residual->kind() != ptl::Kind::kFalse) ++live_classes;
  }
  if (num_classes != nullptr) *num_classes = live_classes;

  // Result<T> is not default-constructible; collect values and errors apart.
  const size_t n = progress_classes_.size();
  std::vector<ptl::Formula> progressed(n, nullptr);
  std::vector<Status> errors(n);
  ptl::Factory* pf = prop_factory_.get();
  auto step = [&](size_t i) {
    ptl::Formula f = progress_classes_[i].residual;
    if (f->kind() == ptl::Kind::kFalse) {
      progressed[i] = f;
      return;
    }
    TIC_SPAN("monitor.progress_class");
    Result<ptl::Formula> r = ptl::Progress(pf, f, w);
    if (r.ok()) {
      progressed[i] = *r;
    } else {
      errors[i] = r.status();
    }
  };
  ThreadPool* pool = options_.thread_pool.get();
  if (pool != nullptr && n > 1) {
    pool->ParallelFor(n, step);
  } else {
    for (size_t i = 0; i < n; ++i) step(i);
  }
  TIC_COUNTER_ADD("monitor/residual_classes", live_classes);
  for (const Status& s : errors) TIC_RETURN_NOT_OK(s);

  // Fan progressed residuals back out, then merge classes whose results
  // collided (distinct residuals can progress to one formula) so the
  // partition stays canonical: one class per distinct residual.
  flat::FlatMap<ptl::Formula, size_t>& merged_of = class_of_scratch_;
  merged_of.Clear();
  size_t out = 0;
  for (size_t i = 0; i < n; ++i) {
    ProgressClass& pc = progress_classes_[i];
    for (uint32_t m : pc.members) instances_[m].residual = progressed[i];
    auto [e, inserted] = merged_of.Emplace(progressed[i], out);
    if (inserted) {
      if (out != i) {
        progress_classes_[out].residual = progressed[i];
        progress_classes_[out].members = std::move(pc.members);
      } else {
        pc.residual = progressed[i];
      }
      ++out;
    } else {
      std::vector<uint32_t>& dst = progress_classes_[e->second].members;
      dst.insert(dst.end(), pc.members.begin(), pc.members.end());
      pc.members.clear();
    }
  }
  progress_classes_.resize(out);
  return Status::OK();
}

uint32_t Monitor::DsuFind(uint32_t i) {
  while (dsu_parent_[i] != i) {
    dsu_parent_[i] = dsu_parent_[dsu_parent_[i]];  // path halving
    i = dsu_parent_[i];
  }
  return i;
}

void Monitor::DsuUnion(uint32_t a, uint32_t b, size_t first_new, bool* demoted) {
  uint32_t ra = DsuFind(a);
  uint32_t rb = DsuFind(b);
  if (ra == rb) return;
  // A pre-existing component is either a cohorted/inert singleton or a joint
  // block, and dsu_min_ names one of its members — enough to see whether this
  // merge pulls an already-cohorted instance out of letter-disjointness.
  for (uint32_t r : {ra, rb}) {
    if (dsu_min_[r] < first_new && placement_[dsu_min_[r]] == Placement::kCohort) {
      *demoted = true;
    }
  }
  if (dsu_size_[ra] < dsu_size_[rb]) std::swap(ra, rb);
  dsu_parent_[rb] = ra;
  dsu_size_[ra] += dsu_size_[rb];
  dsu_min_[ra] = std::min(dsu_min_[ra], dsu_min_[rb]);
}

void Monitor::AtomsOf(ptl::Formula f) {
  atoms_scratch_.clear();
  std::vector<ptl::Formula> stack{f};
  std::unordered_set<ptl::Formula> seen{f};
  while (!stack.empty()) {
    ptl::Formula g = stack.back();
    stack.pop_back();
    if (g->kind() == ptl::Kind::kAtom) {
      atoms_scratch_.push_back(g->atom());
      continue;
    }
    for (size_t i = 0; i < 2; ++i) {
      ptl::Formula c = g->child(i);
      if (c != nullptr && seen.insert(c).second) stack.push_back(c);
    }
  }
  std::sort(atoms_scratch_.begin(), atoms_scratch_.end());
  atoms_scratch_.erase(std::unique(atoms_scratch_.begin(), atoms_scratch_.end()),
                       atoms_scratch_.end());
}

void Monitor::EnsureCohortTable(Cohort* ch, uint32_t rows_needed,
                                uint32_t cols_needed) {
  if (rows_needed <= ch->rows && cols_needed <= ch->cols) return;
  uint32_t rows = std::max({rows_needed, ch->rows * 2, 8u});
  uint32_t cols = std::max({cols_needed, ch->cols * 2, 4u});
  std::vector<uint32_t> table(static_cast<size_t>(rows) * cols,
                              kCellUndiscovered);
  for (uint32_t r = 0; r < ch->rows; ++r) {
    std::copy(ch->table.begin() + static_cast<size_t>(r) * ch->cols,
              ch->table.begin() + static_cast<size_t>(r) * ch->cols + ch->cols,
              table.begin() + static_cast<size_t>(r) * cols);
  }
  ch->table = std::move(table);
  ch->rows = rows;
  ch->cols = cols;
}

Result<uint32_t> Monitor::CohortCell(Cohort* ch, uint32_t state, uint32_t sig,
                                     bool* discovered) {
  if (state < ch->rows && sig < ch->cols) {
    uint32_t cell = ch->table[static_cast<size_t>(state) * ch->cols + sig];
    if (cell != kCellUndiscovered) return cell;
  }
  *discovered = true;
  TIC_ASSIGN_OR_RETURN(ptl::TransitionStep step, ch->ts->StepSig(state, sig));
  // One id is reserved so a fully-set cell can't collide with the
  // undiscovered sentinel.
  if (step.next >= kCellNextMask) {
    return Status::ResourceExhausted("cohort state-set id space exhausted");
  }
  uint32_t cell = (step.live ? 1u << 31 : 0) |
                  (step.any_survivor ? 1u << 30 : 0) | step.next;
  // The successor needs a row of its own before the next gather reads it.
  EnsureCohortTable(ch, std::max(state, step.next) + 1, sig + 1);
  ch->table[static_cast<size_t>(state) * ch->cols + sig] = cell;
  return cell;
}

Result<Monitor::Placement> Monitor::PlaceOne(uint32_t idx) {
  ptl::Formula residual = instances_[idx].residual;
  if (residual->kind() == ptl::Kind::kTrue) return Placement::kInert;
  if (residual->kind() == ptl::Kind::kFalse) return Placement::kJoint;
  Result<ptl::AutomatonHandle> h = options_.automaton_cache->Get(
      prop_factory_, residual, options_.tableau);
  if (!h.ok()) {
    // Budget blowups (non-safe formulas with huge covers) fall back to the
    // joint residual graph, which only materializes visited states.
    TIC_COUNTER_ADD("monitor/cohort_compile_fallbacks", 1);
    return Placement::kJoint;
  }
  uint32_t c;
  if (const uint32_t* hit = cohort_by_ts_.Get(h->ts.get())) {
    c = *hit;
  } else {
    c = static_cast<uint32_t>(cohorts_.size());
    cohorts_.push_back(Cohort{});
    Cohort& fresh = cohorts_.back();
    fresh.ts = h->ts;
    fresh.stride = static_cast<uint32_t>(h->letters.size());
    TIC_ASSIGN_OR_RETURN(fresh.zero_sig,
                         h->ts->InternSignature(ptl::PropState{}, h->letters));
    cohort_by_ts_.Emplace(h->ts.get(), c);
  }
  // Catch the new slot up through the stored word EXCLUDING the state just
  // appended: CohortStepAll applies the current letter to every slot after
  // placement, new and old alike. Renamed replays share the transition memo,
  // so N symmetric arrivals cost one miss-path walk plus N-1 memo hits per
  // past state.
  uint32_t s = h->ts->initial();
  for (size_t j = 0; j < word_.size(); ++j) {
    // The final run contributes one repetition less: the current letter is
    // applied to every slot (new and old) by CohortStepAll after placement.
    uint64_t reps = word_[j].repeat - (j + 1 == word_.size() ? 1 : 0);
    for (uint64_t r = 0; r < reps; ++r) {
      TIC_ASSIGN_OR_RETURN(ptl::TransitionStep step,
                           h->ts->Step(s, word_[j].w, h->letters));
      // Deterministic transitions: a self-loop is this run's fixpoint.
      if (step.next == s) break;
      s = step.next;
    }
  }
  Cohort& ch = cohorts_[c];
  uint32_t slot = static_cast<uint32_t>(ch.states.size());
  // A departure from states[0] breaks the uniform-stale representation:
  // materialize before appending.
  if (ch.uniform && slot > 0 && s != ch.states[0]) {
    for (uint32_t i = 1; i < slot; ++i) ch.states[i] = ch.states[0];
    ch.uniform = false;
  }
  ch.states.push_back(s);
  ch.members.push_back(idx);
  ch.hot_count.push_back(0);
  ch.hot_pos.push_back(0);
  for (ptl::PropId p : h->letters) {
    ch.letters.push_back(p);
    // Letter-disjointness makes the owning slot unique.
    cohort_touch_.Emplace(p, (static_cast<uint64_t>(c) << 32) | slot);
    // Seed hot tracking from the current letter: flips before this placement
    // (including the full first-update build) happened without an owner.
    if (cur_letter_.Get(p) && ch.hot_count[slot]++ == 0) {
      ch.hot_pos[slot] = static_cast<uint32_t>(ch.hot_slots.size());
      ch.hot_slots.push_back(slot);
    }
  }
  EnsureCohortTable(&ch, s + 1, ch.zero_sig + 1);
  ++num_cohort_slots_;
  return Placement::kCohort;
}

Status Monitor::RebuildPlacements() {
  // Letter-disjointness broke for some cohorted instance (a fresh element's
  // residual shares atoms with it): recompute the whole partition. Rare by
  // construction — only atom-sharing arrivals land here — and correct by
  // simplicity: instances hold their ORIGINAL grounded formulas in automaton
  // mode, so demotion to the joint path needs no state surgery (the joint
  // epoch replay catches demoted instances up from scratch), and re-cohorted
  // instances replay through the shared transition memo.
  TIC_SPAN("monitor.cohort_rebuild");
  TIC_COUNTER_ADD("monitor/cohort_rebuilds", 1);
  cohorts_.clear();
  cohort_by_ts_.Clear();
  cohort_touch_.Clear();
  atom_owner_.Clear();
  num_joint_ = 0;
  num_cohort_slots_ = 0;
  const size_t n = instances_.size();
  placement_.assign(n, Placement::kJoint);
  dsu_parent_.resize(n);
  dsu_size_.assign(n, 1);
  dsu_min_.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    dsu_parent_[i] = i;
    dsu_min_[i] = i;
  }
  bool ignored = false;
  for (uint32_t i = 0; i < n; ++i) {
    AtomsOf(instances_[i].residual);
    for (ptl::PropId p : atoms_scratch_) {
      auto [e, inserted] = atom_owner_.Emplace(p, i);
      if (!inserted) DsuUnion(i, e->second, n, &ignored);
    }
  }
  for (uint32_t i = 0; i < n; ++i) {
    Placement pl = Placement::kJoint;
    if (dsu_size_[DsuFind(i)] == 1) {
      TIC_ASSIGN_OR_RETURN(pl, PlaceOne(i));
    }
    placement_[i] = pl;
    if (pl == Placement::kJoint) ++num_joint_;
  }
  TIC_RECORD(kCohortRebuild, cohorts_.size(), num_cohort_slots_, num_joint_);
  return Status::OK();
}

Result<bool> Monitor::PlaceInstances(size_t first_new) {
  const size_t n = instances_.size();
  if (cohorts_built_ && first_new == n) return false;  // steady state: no-op
  if (!cohorts_built_) {
    cohorts_built_ = true;
    TIC_RETURN_NOT_OK(RebuildPlacements());
    return num_joint_ > 0;
  }
  // Incremental path: extend the union-find with the fresh instances only.
  size_t joint_before = num_joint_;
  dsu_parent_.resize(n);
  dsu_size_.resize(n, 1);
  dsu_min_.resize(n);
  placement_.resize(n, Placement::kJoint);
  for (uint32_t i = static_cast<uint32_t>(first_new); i < n; ++i) {
    dsu_parent_[i] = i;
    dsu_size_[i] = 1;
    dsu_min_[i] = i;
  }
  bool demoted = false;
  for (uint32_t i = static_cast<uint32_t>(first_new); i < n; ++i) {
    AtomsOf(instances_[i].residual);
    for (ptl::PropId p : atoms_scratch_) {
      auto [e, inserted] = atom_owner_.Emplace(p, i);
      if (!inserted) DsuUnion(i, e->second, first_new, &demoted);
    }
  }
  if (demoted) {
    TIC_RETURN_NOT_OK(RebuildPlacements());
    return true;
  }
  for (uint32_t i = static_cast<uint32_t>(first_new); i < n; ++i) {
    Placement pl = Placement::kJoint;
    if (dsu_size_[DsuFind(i)] == 1) {
      TIC_ASSIGN_OR_RETURN(pl, PlaceOne(i));
    }
    placement_[i] = pl;
    if (pl == Placement::kJoint) ++num_joint_;
  }
  return num_joint_ != joint_before;
}

uint64_t Monitor::OnLetterFlip(ptl::PropId p, bool value) {
  const uint64_t* packed = cohort_touch_.Get(p);
  if (packed == nullptr) return ~uint64_t{0};
  Cohort& ch = cohorts_[*packed >> 32];
  uint32_t slot = static_cast<uint32_t>(*packed & 0xFFFFFFFFu);
  if (value) {
    if (ch.hot_count[slot]++ == 0) {
      ch.hot_pos[slot] = static_cast<uint32_t>(ch.hot_slots.size());
      ch.hot_slots.push_back(slot);
    }
  } else if (--ch.hot_count[slot] == 0) {
    // Swap-remove; fix the displaced slot's position index.
    uint32_t at = ch.hot_pos[slot];
    uint32_t last = ch.hot_slots[ch.hot_slots.size() - 1];
    ch.hot_slots[at] = last;
    ch.hot_pos[last] = at;
    ch.hot_slots.pop_back();
  }
  return *packed;
}

Status Monitor::CohortStepAll(const ptl::PropState& w, MonitorVerdict* verdict,
                              bool* all_live) {
  TIC_SPAN("monitor.cohort_step");
  bool live = true;
  // Per-update culprit capture: cleared cheaply (capacity kept), filled only
  // on the terminal update where a cohort cell dies.
  dead_scratch_.clear();
  dead_total_ = 0;
  for (Cohort& ch : cohorts_) {
    const size_t n = ch.states.size();
    if (n == 0) continue;
    bool discovered = false;
    uint64_t cohort_misses = 0;
    cohort_steps_ += n;
    if (ch.uniform && ch.hot_slots.empty()) {
      // Every slot sits in states[0] and no slot has a true letter: the
      // whole cohort advances with ONE cell read.
      bool miss = false;
      TIC_ASSIGN_OR_RETURN(uint32_t cell,
                           CohortCell(&ch, ch.states[0], ch.zero_sig, &miss));
      ch.states[0] = cell & kCellNextMask;
      live = live && (cell >> 31) != 0;
      if ((cell >> 31) == 0) {
        // All slots share the dead cell: every member is a culprit.
        dead_total_ += n;
        for (size_t i = 0; i < n && dead_scratch_.size() < kMaxExplanations;
             ++i) {
          dead_scratch_.push_back(ch.members[i]);
        }
      }
      if (miss) {
        discovered = true;
        ++cohort_misses;
      }
    } else {
      if (ch.uniform) {
        // Leave the uniform-stale representation before per-slot stepping.
        for (size_t i = 1; i < n; ++i) ch.states[i] = ch.states[0];
        ch.uniform = false;
      }
      if (gather_scratch_.size() < n) gather_scratch_.resize(n);
      flat::GatherRow(ch.table.data(), ch.cols, ch.zero_sig, ch.states.data(),
                      n, gather_scratch_.data());
      // Hot slots (a true letter of their own) see a non-zero signature;
      // their cells override the gathered zero-signature row. CohortCell may
      // grow the table, but the gather already copied cell VALUES, which
      // stay valid across growth.
      for (uint32_t slot : ch.hot_slots) {
        TIC_ASSIGN_OR_RETURN(
            uint32_t sig,
            ch.ts->InternSignature(w, ch.letters.data() + slot * ch.stride,
                                   ch.stride));
        bool miss = false;
        TIC_ASSIGN_OR_RETURN(gather_scratch_[slot],
                             CohortCell(&ch, ch.states[slot], sig, &miss));
        if (miss) {
          discovered = true;
          ++cohort_misses;
        }
      }
      uint32_t and_acc = ~0u;
      uint32_t or_acc = 0;
      for (size_t i = 0; i < n; ++i) {
        uint32_t cell = gather_scratch_[i];
        if (cell == kCellUndiscovered) {
          // Only untouched slots can still be unresolved (touched ones were
          // filled above), so the signature is the zero signature.
          bool miss = false;
          TIC_ASSIGN_OR_RETURN(
              cell, CohortCell(&ch, ch.states[i], ch.zero_sig, &miss));
          // Store the resolved cell back so the death scan below sees every
          // slot's actual cell (miss path only — no steady-state cost).
          gather_scratch_[i] = cell;
          discovered = true;
          ++cohort_misses;
        }
        ch.states[i] = cell & kCellNextMask;
        and_acc &= cell;
        or_acc |= cell;
      }
      live = live && (and_acc >> 31) != 0;
      if ((and_acc >> 31) == 0) {
        // Terminal update: collect the members whose cell died (provenance
        // culprits). gather_scratch_ holds every slot's resolved cell.
        for (size_t i = 0; i < n; ++i) {
          if ((gather_scratch_[i] >> 31) != 0) continue;
          ++dead_total_;
          if (dead_scratch_.size() < kMaxExplanations) {
            dead_scratch_.push_back(ch.members[i]);
          }
        }
      }
      // All slots landed on one state: back to the single-cell fast path.
      ch.uniform = ((and_acc ^ or_acc) & kCellNextMask) == 0;
    }
    cohort_table_hits_ += n - std::min<uint64_t>(n, cohort_misses);
    // Offline minimization trigger — checked only when this update resolved a
    // new cell, so the steady state takes no TransitionSystem lock at all.
    if (discovered && options_.cohort_minimize_interval > 0) {
      uint64_t sets = ch.ts->num_state_sets();
      if (sets >= ch.sets_at_minimize + options_.cohort_minimize_interval) {
        ptl::MinimizeStats ms = ch.ts->MinimizeNow();
        TIC_GAUGE_SET("monitor/cohort_collapsed_sets", ms.collapsed_sets);
        // Representatives are valid under every letter (liveness and literal
        // masks are class-invariant), so live states remap without replay.
        for (size_t i = 0; i < n; ++i) {
          ch.states[i] = ch.ts->Representative(ch.states[i]);
        }
        ch.sets_at_minimize = ch.ts->num_state_sets();
        TIC_RECORD(kCohortMinimize, ms.collapsed_sets, ch.sets_at_minimize,
                   static_cast<uint64_t>(&ch - cohorts_.data()));
      }
    }
  }
  *all_live = live;
  verdict->num_cohorts = cohorts_.size();
  verdict->num_cohort_instances = num_cohort_slots_;
  TIC_GAUGE_SET("monitor/cohorts", cohorts_.size());
  TIC_GAUGE_SET("monitor/cohort_instances", num_cohort_slots_);
  TIC_GAUGE_SET("monitor/gather_width", flat::GatherWidth());
  return Status::OK();
}

uint32_t Monitor::AutoIntern(ptl::Formula f) {
  if (const uint32_t* hit = auto_state_ids_.Get(f)) return *hit;
  uint32_t id = static_cast<uint32_t>(auto_states_.size());
  // A false residual is known dead for free; everything else waits for the
  // first AutoLive query.
  auto_states_.push_back(
      AutoState{f, f->kind() == ptl::Kind::kFalse ? int8_t{0} : int8_t{-1}});
  auto_state_ids_.Emplace(f, id);
  return id;
}

Result<bool> Monitor::AutoLive(uint32_t sid, MonitorVerdict* verdict) {
  AutoState& st = auto_states_[sid];
  if (st.live < 0) {
    // Decide once; the shared verdict cache makes renamed recurrences of the
    // same residual (common across fresh-element epochs) nearly free.
    TIC_SPAN("monitor.sat_check");
    ++auto_live_queries_;
    TIC_ASSIGN_OR_RETURN(
        ptl::SatResult sat,
        ptl::CheckSat(prop_factory_.get(), st.residual, options_.tableau));
    st.live = sat.satisfiable ? 1 : 0;
    verdict->tableau_stats += sat.stats;
    cumulative_tableau_stats_ += sat.stats;
  }
  return st.live > 0;
}

uint32_t Monitor::SigOf(const ptl::PropState& w) {
  sig_scratch_.assign((auto_alphabet_.size() + 7) / 8, '\0');
  for (size_t i = 0; i < auto_alphabet_.size(); ++i) {
    if (w.Get(auto_alphabet_[i])) {
      sig_scratch_[i >> 3] |= static_cast<char>(1u << (i & 7));
    }
  }
  // flat Emplace constructs the stored key only on a miss — a signature hit
  // (every step in steady state) copies no string and allocates nothing. The
  // std::unordered_map it replaces built a node per call even on hits.
  auto [e, inserted] =
      auto_sigs_.Emplace(sig_scratch_, static_cast<uint32_t>(auto_sigs_.size()));
  (void)inserted;
  return e->second;
}

Result<uint32_t> Monitor::AutoStep(uint32_t sid, const ptl::PropState& w) {
  ++auto_steps_;
  uint64_t key = (static_cast<uint64_t>(sid) << 32) | SigOf(w);
  if (const uint32_t* hit = auto_memo_.Get(key)) {
    ++auto_memo_hits_;
    TIC_COUNTER_ADD("automaton/transition_memo_hits", 1);
    return *hit;
  }
  TIC_COUNTER_ADD("automaton/transition_memo_misses", 1);
  TIC_ASSIGN_OR_RETURN(
      ptl::Formula next,
      ptl::Progress(prop_factory_.get(), auto_states_[sid].residual, w));
  uint32_t nid = AutoIntern(next);
  auto_memo_.Emplace(key, nid);
  TIC_RECORD(kMemoSpill, nid, auto_memo_.size(), key & 0xFFFFFFFFu);
  return nid;
}

Status Monitor::AutomatonApply(bool joint_changed, const ptl::PropState& w,
                               MonitorVerdict* verdict) {
  ptl::Factory* pf = prop_factory_.get();
  if (joint_ == nullptr || joint_changed) {
    TIC_SPAN("monitor.automaton_compile");
    // Joint formula over the distinct grounded originals: instances over
    // symmetric elements share one hash-consed formula, so identity dedup
    // mirrors ProgressAll's residual classes. The joint conjunction — not a
    // per-class automaton — is what makes the verdict exact: instances share
    // letters, so individually live residuals can be jointly dead.
    std::unordered_set<ptl::Formula> distinct;
    std::vector<ptl::Formula> parts;
    parts.reserve(instances_.size());
    for (size_t i = 0; i < instances_.size(); ++i) {
      // With cohort stepping on, letter-disjoint instances are advanced in
      // SoA lockstep; only atom-sharing (and compile-fallback) instances
      // remain in the joint conjunction. An empty placement_ means cohorting
      // is off and every instance is joint.
      if (!placement_.empty() && placement_[i] != Placement::kJoint) continue;
      const Instance& inst = instances_[i];
      if (distinct.insert(inst.residual).second) parts.push_back(inst.residual);
    }
    num_joint_classes_ = parts.size();
    joint_ = pf->AndAll(parts);
    // New epoch: reset the residual graph. Progression never introduces atoms,
    // so the joint formula's atom set is a sound signature alphabet for every
    // residual reachable this epoch.
    auto_states_.clear();
    auto_state_ids_.Clear();
    auto_sigs_.Clear();
    auto_memo_.Clear();
    auto_alphabet_.clear();
    {
      std::vector<ptl::Formula> stack{joint_};
      std::unordered_set<ptl::Formula> seen{joint_};
      std::unordered_set<ptl::PropId> atom_seen;
      while (!stack.empty()) {
        ptl::Formula f = stack.back();
        stack.pop_back();
        if (f->kind() == ptl::Kind::kAtom) {
          if (atom_seen.insert(f->atom()).second) {
            auto_alphabet_.push_back(f->atom());
          }
          continue;
        }
        for (size_t i = 0; i < 2; ++i) {
          ptl::Formula c = f->child(i);
          if (c != nullptr && seen.insert(c).second) stack.push_back(c);
        }
      }
    }
    auto_current_ = AutoIntern(joint_);
    auto_prev_ = auto_current_;
    TIC_RECORD(kEpochReset, history_.length() - 1, instances_.size(),
               word_.size());
    // Replay the stored word (it already includes the state just appended).
    // Replay is progression-only — intermediate liveness is never queried —
    // so catching up after a fresh element costs one rewrite per past state,
    // exactly like the progression backend's GroundAndCatchUp, not a tableau
    // per state.
    for (const WordEntry& e : word_) {
      for (uint64_t r = 0; r < e.repeat; ++r) {
        TIC_ASSIGN_OR_RETURN(uint32_t next, AutoStep(auto_current_, e.w));
        // Memoized deterministic steps: a self-loop is this run's fixpoint,
        // so a long run of a recurring state replays in O(1).
        if (next == auto_current_) break;
        auto_prev_ = auto_current_;
        auto_current_ = next;
      }
    }
  } else {
    TIC_SPAN("monitor.automaton_step");
    auto_prev_ = auto_current_;
    TIC_ASSIGN_OR_RETURN(auto_current_, AutoStep(auto_current_, w));
  }
  TIC_ASSIGN_OR_RETURN(bool live, AutoLive(auto_current_, verdict));
  // Exact eager verdict: for a safety constraint, losing potential
  // satisfaction is permanent — same mapping the progression backend produces.
  verdict->potentially_satisfied = live;
  if (!live) {
    dead_ = true;
    verdict->permanently_violated = true;
  }
  verdict->residual_size = auto_states_[auto_current_].residual->size();
  verdict->num_residual_classes = num_joint_classes_;
  verdict->automaton_stats.num_states = auto_states_.size();
  verdict->automaton_stats.num_state_sets = auto_states_.size();
  verdict->automaton_stats.num_signatures = auto_sigs_.size();
  verdict->automaton_stats.steps = auto_steps_;
  verdict->automaton_stats.memo_hits = auto_memo_hits_;
  verdict->automaton_stats.live_queries = auto_live_queries_;
  verdict->automaton_stats.alphabet_size = auto_alphabet_.size();
  return Status::OK();
}

Result<MonitorVerdict> Monitor::ApplyTransaction(const Transaction& txn) {
  TIC_SPAN("monitor.update");
  TIC_COUNTER_ADD("monitor/updates", 1);
#ifdef TIC_TELEMETRY_ENABLED
  telemetry::StallWatchdog::Scope watchdog_scope(watchdog_.get());
#endif
  TIC_RETURN_NOT_OK(tic::ApplyTransaction(&history_, txn));
  size_t t = history_.length() - 1;
  TIC_RECORD(kTxnApplied, t, txn.size(), instances_.size());
  last_delta_.clear();  // capacity kept warm: no steady-state allocation
  MonitorVerdict verdict;
  verdict.time = t;
  verdict.backend = backend_;

  if (dead_) {
    verdict.permanently_violated = true;
    verdict.potentially_satisfied = false;
    verdict.cumulative_tableau_stats = cumulative_tableau_stats_;
    // Late verdicts carry the flip's diagnoses: callers that notice the
    // violation on a later update still get the original explanation.
    verdict.diagnoses = explanations_;
    verdict.num_culprits = num_culprits_;
    last_verdict_ = verdict;
    return verdict;
  }

  // New relevant elements introduced by this state? After the first update
  // the scan is O(delta): an element can only join the active domain through
  // an inserted tuple that survives the transaction, so only the txn's ops
  // are examined — never the whole database. The first update (which may sit
  // on a non-empty starting history) scans the full state once.
  active_scratch_.Clear();
  std::vector<Value> fresh;
  if (cur_letter_valid_) {
    for (const UpdateOp& op : txn) {
      if (op.kind != UpdateOp::Kind::kInsert) continue;
      int holds = -1;  // lazily checked once per op
      for (Value v : op.tuple) {
        if (std::binary_search(known_relevant_.begin(), known_relevant_.end(),
                               v)) {
          continue;
        }
        if (holds < 0) holds = history_.state(t).Holds(op.predicate, op.tuple);
        if (holds == 1 && active_scratch_.Insert(v)) fresh.push_back(v);
      }
    }
  } else {
    history_.state(t).CollectActiveDomain(&active_scratch_);
    active_scratch_.ForEach([&](Value v) {
      if (!std::binary_search(known_relevant_.begin(), known_relevant_.end(),
                              v)) {
        fresh.push_back(v);
      }
    });
  }
  std::sort(fresh.begin(), fresh.end());

  // Enumerates every assignment over the merged domain that touches a fresh
  // element and hands it to `make` to build its residual.
  auto create_fresh_instances =
      [&](const std::function<Result<ptl::Formula>(
              const std::vector<GroundElem>&)>& make) -> Status {
    size_t k = external_.size();
    if (k == 0 || fresh.empty()) return Status::OK();
    std::vector<Value> merged;
    std::merge(known_relevant_.begin(), known_relevant_.end(), fresh.begin(),
               fresh.end(), std::back_inserter(merged));
    std::vector<GroundElem> domain;
    for (Value v : merged) domain.push_back(GroundElem::Relevant(v));
    for (size_t i = 0; i < k; ++i) domain.push_back(GroundElem::Z(i));
    std::unordered_set<Value> fresh_set(fresh.begin(), fresh.end());

    std::vector<size_t> idx(k, 0);
    while (true) {
      bool touches_fresh = false;
      for (size_t i = 0; i < k; ++i) {
        const GroundElem& e = domain[idx[i]];
        if (!e.is_z() && fresh_set.count(e.value()) > 0) {
          touches_fresh = true;
          break;
        }
      }
      if (touches_fresh) {
        std::vector<GroundElem> assignment(k);
        for (size_t i = 0; i < k; ++i) assignment[i] = domain[idx[i]];
        TIC_ASSIGN_OR_RETURN(ptl::Formula residual, make(assignment));
        instance_index_.Emplace(assignment, instances_.size());
        instances_.push_back(Instance{std::move(assignment), residual});
      }
      size_t d = 0;
      while (d < k && ++idx[d] == domain.size()) {
        idx[d] = 0;
        ++d;
      }
      if (d == k) break;
    }
    return Status::OK();
  };

  // Current letter, maintained incrementally: the new state differs from the
  // previous one by exactly this transaction's ops, so updating the letter is
  // O(delta) — and `letter_changed` tells the word RLE below whether the new
  // state extends the current run (an empty transaction costs nothing).
  bool letter_changed = false;
  if (cur_letter_valid_) {
    const Vocabulary& vocab = *ffac_->vocabulary();
    for (const UpdateOp& op : txn) {
      if (vocab.predicate(op.predicate).builtin != Builtin::kNone) continue;
      ptl::PropId p = Letter(op.predicate, op.tuple);
      bool value = op.kind == UpdateOp::Kind::kInsert;
      if (cur_letter_.Get(p) != value) {
        cur_letter_.Set(p, value);
        // The owner must be computed OUTSIDE the macro: TIC_RECORD's
        // TIC_TELEMETRY=OFF branch leaves its arguments unevaluated.
        uint64_t owner = OnLetterFlip(p, value);
        TIC_RECORD(kLetterFlip, p, value ? 1 : 0, owner);
        (void)owner;
        if (options_.provenance) last_delta_.emplace_back(p, value);
        letter_changed = true;
      }
    }
  } else {
    cur_letter_ = PropStateOf(t);
    cur_letter_valid_ = true;
    letter_changed = true;
  }
  const ptl::PropState& w = cur_letter_;
  auto append_letter = [&] {
    if (!letter_changed && !word_.empty()) {
      ++word_.back().repeat;
    } else {
      word_.push_back(WordEntry{w, 1});
    }
  };

  TIC_COUNTER_ADD("monitor/fresh_elements", fresh.size());

  if (mode_ == MonitorMode::kEagerHistoryLess) {
    // Fresh instances first (renamed from their stand-in patterns, whose
    // residuals are still at the t-1 basis), then progress everything through
    // the new state. The propositional history is never stored.
    TIC_RETURN_NOT_OK([&] {
      TIC_SPAN("monitor.fresh_instances");
      return create_fresh_instances(
          [&](const std::vector<GroundElem>& a) { return RenameFromPattern(a); });
    }());
    if (!fresh.empty()) {
      std::vector<Value> merged;
      std::merge(known_relevant_.begin(), known_relevant_.end(), fresh.begin(),
                 fresh.end(), std::back_inserter(merged));
      known_relevant_ = std::move(merged);
    }
    TIC_RETURN_NOT_OK(ProgressAll(w, &verdict.num_residual_classes));
  } else if (backend_ == MonitorBackend::kAutomaton) {
    // Automaton backend (kEager): instances keep their ORIGINAL grounded
    // formulas; the residual-graph automaton advances one memoized state id
    // per update. Recurring database states cost a hash lookup — no
    // progression rewrite, no conjunction rebuild, no tableau.
    append_letter();
    size_t first_new = instances_.size();
    if (!fresh.empty()) {
      TIC_RETURN_NOT_OK([&] {
        TIC_SPAN("monitor.fresh_instances");
        return create_fresh_instances(
            [&](const std::vector<GroundElem>& a) { return GroundMatrix(a); });
      }());
      std::vector<Value> merged;
      std::merge(known_relevant_.begin(), known_relevant_.end(), fresh.begin(),
                 fresh.end(), std::back_inserter(merged));
      known_relevant_ = std::move(merged);
    }
    bool cohort_live = true;
    bool joint_live = true;
    if (options_.cohort_stepping) {
      // Letter-disjoint instances advance in SoA lockstep; the joint residual
      // graph only runs when atom-sharing instances exist, and only resets
      // its epoch when its own membership changed (a fresh batch landing
      // entirely in cohorts no longer forces a joint replay).
      TIC_ASSIGN_OR_RETURN(bool joint_changed, PlaceInstances(first_new));
      TIC_RETURN_NOT_OK(CohortStepAll(w, &verdict, &cohort_live));
      if (num_joint_ > 0) {
        TIC_RETURN_NOT_OK(AutomatonApply(joint_changed, w, &verdict));
        joint_live = verdict.potentially_satisfied;
      }
      verdict.num_residual_classes = num_joint_classes_ + cohorts_.size();
      // Fold cohort stepping into the automaton counters: a table-cell read
      // is this path's memo hit.
      verdict.automaton_stats.steps += cohort_steps_;
      verdict.automaton_stats.memo_hits += cohort_table_hits_;
      for (const Cohort& ch : cohorts_) {
        ptl::TransitionSystemStats s = ch.ts->stats();
        verdict.automaton_stats.num_states += s.num_states;
        verdict.automaton_stats.num_state_sets += s.num_state_sets;
        verdict.automaton_stats.num_signatures += s.num_signatures;
        verdict.automaton_stats.live_queries += s.live_queries;
        verdict.automaton_stats.alphabet_size += s.alphabet_size;
      }
    } else {
      TIC_RETURN_NOT_OK(AutomatonApply(!fresh.empty(), w, &verdict));
      joint_live = verdict.potentially_satisfied;
    }
    // Exact verdict: the monitored condition is the conjunction over all
    // instances, and sat factors across the letter-disjoint split.
    verdict.potentially_satisfied = cohort_live && joint_live;
    if (!verdict.potentially_satisfied) {
      dead_ = true;
      verdict.permanently_violated = true;
      if (options_.provenance) {
        ptl::Formula joint_res =
            joint_ != nullptr ? auto_states_[auto_current_].residual : nullptr;
        TIC_RETURN_NOT_OK(BuildExplanations(t, w, joint_res, &verdict));
      }
    }
    verdict.num_instances = instances_.size();
    TIC_GAUGE_SET("monitor/instances", instances_.size());
    TIC_HISTOGRAM_RECORD("monitor/residual_size", verdict.residual_size);
    verdict.cumulative_tableau_stats = cumulative_tableau_stats_;
    if (options_.tableau.verdict_cache != nullptr) {
      verdict.verdict_cache_stats = options_.tableau.verdict_cache->stats();
    }
    if (options_.automaton_cache != nullptr) {
      verdict.automaton_cache_stats = options_.automaton_cache->stats();
    }
    NoteVerdict(verdict);
    last_verdict_ = verdict;
    return verdict;
  } else {
    append_letter();
    TIC_RETURN_NOT_OK(ProgressAll(w, &verdict.num_residual_classes));
    if (!fresh.empty()) {
      TIC_RETURN_NOT_OK([&] {
        TIC_SPAN("monitor.fresh_instances");
        return create_fresh_instances(
            [&](const std::vector<GroundElem>& a) { return GroundAndCatchUp(a); });
      }());
      std::vector<Value> merged;
      std::merge(known_relevant_.begin(), known_relevant_.end(), fresh.begin(),
                 fresh.end(), std::back_inserter(merged));
      known_relevant_ = std::move(merged);
    }
  }

  // Conjunction of residuals, balanced (AndAll) rather than left-deep: the
  // hash-consed tree stays logarithmic in depth and re-shares across updates.
  ptl::Formula conj;
  {
    TIC_SPAN("monitor.conjunction");
    std::vector<ptl::Formula> parts;
    parts.reserve(instances_.size());
    bool any_false = false;
    for (const Instance& inst : instances_) {
      if (inst.residual->kind() == ptl::Kind::kFalse) {
        any_false = true;
        break;
      }
      parts.push_back(inst.residual);
    }
    conj = any_false ? prop_factory_->False() : prop_factory_->AndAll(parts);
  }
  verdict.residual_size = conj->size();
  verdict.num_instances = instances_.size();
  TIC_GAUGE_SET("monitor/instances", instances_.size());
  TIC_HISTOGRAM_RECORD("monitor/residual_size", verdict.residual_size);

  if (conj->kind() == ptl::Kind::kFalse) {
    dead_ = true;
    verdict.permanently_violated = true;
    verdict.potentially_satisfied = false;
    if (options_.provenance) {
      TIC_RETURN_NOT_OK(BuildExplanations(t, w, conj, &verdict));
    }
  } else if (mode_ == MonitorMode::kLazy) {
    // Lipeck–Saake-style weak monitoring: no satisfiability check; report
    // "no violation detected yet".
    verdict.potentially_satisfied = true;
  } else {
    TIC_SPAN("monitor.sat_check");
    TIC_ASSIGN_OR_RETURN(ptl::SatResult sat,
                         ptl::CheckSat(prop_factory_.get(), conj, options_.tableau));
    // CheckSat stats are per-call; fold them into the lifetime totals here.
    verdict.tableau_stats = sat.stats;
    cumulative_tableau_stats_ += sat.stats;
    verdict.potentially_satisfied = sat.satisfiable;
    if (!sat.satisfiable) {
      dead_ = true;
      verdict.permanently_violated = true;
      if (options_.provenance) {
        TIC_RETURN_NOT_OK(BuildExplanations(t, w, conj, &verdict));
      }
    }
  }
  verdict.cumulative_tableau_stats = cumulative_tableau_stats_;
  if (options_.tableau.verdict_cache != nullptr) {
    verdict.verdict_cache_stats = options_.tableau.verdict_cache->stats();
  }
  NoteVerdict(verdict);
  last_verdict_ = verdict;
  return verdict;
}

const std::vector<Diagnosis>& MonitorVerdict::explanations() const {
  static const std::vector<Diagnosis> kEmpty;
  return diagnoses != nullptr ? *diagnoses : kEmpty;
}

void Monitor::NoteVerdict(const MonitorVerdict& v) {
  if (any_verdict_ && v.potentially_satisfied == last_sat_) return;
  any_verdict_ = true;
  last_sat_ = v.potentially_satisfied;
  TIC_RECORD(kVerdictChange, v.time, last_sat_ ? 1 : 0, v.num_instances);
}

void Monitor::CaptureDelta(Diagnosis* d) const {
  d->delta.reserve(last_delta_.size());
  for (const auto& [p, v] : last_delta_) {
    d->delta.push_back(DiagnosisDelta{p, v, prop_vocab_->Name(p)});
  }
}

Status Monitor::BuildTrajectory(ptl::Formula grounded, Diagnosis* d,
                                ptl::PropState* fatal_w) {
  ptl::Factory* pf = prop_factory_.get();
  ptl::Formula cur = grounded;
  ptl::Formula prev = nullptr;
  size_t time = 0;
  auto push = [&](size_t tm, ptl::Formula f) {
    if (d->trajectory.size() == kTrajectoryK) {
      d->trajectory.erase(d->trajectory.begin());
    }
    d->trajectory.push_back(DiagnosisStep{tm, f, f->size()});
  };
  for (const WordEntry& e : word_) {
    for (uint64_t r = 0; r < e.repeat; ++r) {
      TIC_ASSIGN_OR_RETURN(ptl::Formula next, ptl::Progress(pf, cur, e.w));
      prev = cur;
      cur = next;
      push(time, cur);
      ++time;
      if (d->last_live == nullptr && cur->kind() == ptl::Kind::kFalse) {
        // The residual collapsed HERE; everything after stays false, so this
        // state's letter is the fatal one regardless of what followed.
        d->last_live = prev;
        *fatal_w = e.w;
      }
      if (cur == prev) {
        // Hash-consed fixpoint under this run's letter: the remaining
        // repetitions leave the residual unchanged. Synthesize the (at most
        // K) trajectory tail instead of re-progressing a long run.
        uint64_t remaining = e.repeat - r - 1;
        uint64_t skip = remaining > kTrajectoryK ? remaining - kTrajectoryK : 0;
        time += skip;
        for (uint64_t j = skip; j < remaining; ++j) {
          push(time, cur);
          ++time;
        }
        break;
      }
    }
  }
  d->residual = cur;
  if (d->last_live == nullptr) {
    // Never literally false (the conjunction died of unsatisfiability): the
    // fatal letter is the latest one, and `prev` entered it.
    d->last_live = prev;
    if (!word_.empty()) *fatal_w = word_.back().w;
  }
  return Status::OK();
}

Result<Diagnosis> Monitor::DiagnoseInstance(uint32_t idx, size_t t,
                                            const ptl::PropState& w) {
  const Instance& inst = instances_[idx];
  Diagnosis d;
  d.time = t;
  d.factory = prop_factory_;
  d.assignment = inst.assignment;
  for (size_t i = 0; i < external_.size() && i < d.assignment.size(); ++i) {
    if (i > 0) d.assignment_text += ", ";
    d.assignment_text += ffac_->VarName(external_[i]);
    d.assignment_text += "=";
    d.assignment_text += d.assignment[i].ToString();
  }
  TIC_ASSIGN_OR_RETURN(d.grounded, GroundMatrix(inst.assignment));
  ptl::PropState fatal_w = w;
  if (!word_.empty()) {
    TIC_RETURN_NOT_OK(BuildTrajectory(d.grounded, &d, &fatal_w));
  } else {
    // History-less mode stores no word: report the current residual only.
    d.residual = inst.residual;
    d.trajectory.push_back(
        DiagnosisStep{t, inst.residual, inst.residual->size()});
  }
  if (d.last_live != nullptr && d.last_live->kind() != ptl::Kind::kFalse) {
    TIC_ASSIGN_OR_RETURN(
        ptl::CollapseExplanation ce,
        ptl::ExplainCollapse(prop_factory_.get(), d.last_live, fatal_w));
    d.subformula = ce.subformula;
    d.closure_index = ce.closure_index;
    d.subformula_progressed_to_false = ce.progressed_to_false;
  }
  CaptureDelta(&d);
  return d;
}

Status Monitor::BuildExplanations(size_t t, const ptl::PropState& w,
                                  ptl::Formula joint_residual,
                                  MonitorVerdict* verdict) {
  TIC_SPAN("monitor.provenance");
  explanations_ = std::make_shared<std::vector<Diagnosis>>();
  num_culprits_ = 0;

  std::vector<uint32_t> culprits;
  if (!dead_scratch_.empty()) {
    // Cohort death: CohortStepAll identified the dead slots exactly.
    culprits = dead_scratch_;
    num_culprits_ = dead_total_;
  } else {
    // Progression-style paths: residuals that literally collapsed to false.
    for (uint32_t i = 0; i < instances_.size(); ++i) {
      if (instances_[i].residual->kind() == ptl::Kind::kFalse) {
        culprits.push_back(i);
      }
    }
    // Automaton joint path (instances hold un-progressed originals) or an
    // unsat-but-not-false conjunction: replay each instance's grounded
    // original through the stored word — capped, memoized per distinct
    // original — looking for individually false (then unsat) residuals.
    if (culprits.empty() && !word_.empty()) {
      std::unordered_map<ptl::Formula, ptl::Formula> final_of;
      std::vector<std::pair<uint32_t, ptl::Formula>> finals;
      for (uint32_t i = 0;
           i < instances_.size() && final_of.size() < kMaxReplayInstances;
           ++i) {
        TIC_ASSIGN_OR_RETURN(ptl::Formula g,
                             GroundMatrix(instances_[i].assignment));
        auto it = final_of.find(g);
        if (it == final_of.end()) {
          TIC_ASSIGN_OR_RETURN(ptl::Formula fin,
                               GroundAndCatchUp(instances_[i].assignment));
          it = final_of.emplace(g, fin).first;
        }
        finals.emplace_back(i, it->second);
      }
      for (const auto& [i, fin] : finals) {
        if (fin->kind() == ptl::Kind::kFalse) culprits.push_back(i);
      }
      if (culprits.empty()) {
        std::unordered_map<ptl::Formula, int> live_memo;
        size_t probes = 0;
        for (const auto& [i, fin] : finals) {
          auto lt = live_memo.find(fin);
          if (lt == live_memo.end()) {
            if (probes >= kMaxSatProbes) continue;
            ++probes;
            TIC_ASSIGN_OR_RETURN(
                ptl::SatResult sat,
                ptl::CheckSat(prop_factory_.get(), fin, options_.tableau));
            lt = live_memo.emplace(fin, sat.satisfiable ? 1 : 0).first;
          }
          if (lt->second == 0) culprits.push_back(i);
        }
      }
    }
    num_culprits_ = culprits.size();
  }

  if (culprits.empty()) {
    // No single instance explains the violation: shared letters made the
    // CONJUNCTION unsatisfiable while every conjunct stayed individually
    // live. Emit one joint diagnosis.
    Diagnosis d;
    d.time = t;
    d.joint = true;
    d.factory = prop_factory_;
    d.grounded = joint_;
    d.residual = joint_residual;
    if (backend_ == MonitorBackend::kAutomaton && joint_ != nullptr &&
        auto_prev_ < auto_states_.size()) {
      d.last_live = auto_states_[auto_prev_].residual;
    }
    if (d.last_live != nullptr && d.last_live->kind() != ptl::Kind::kFalse) {
      TIC_ASSIGN_OR_RETURN(
          ptl::CollapseExplanation ce,
          ptl::ExplainCollapse(prop_factory_.get(), d.last_live, w));
      d.subformula = ce.subformula;
      d.closure_index = ce.closure_index;
      d.subformula_progressed_to_false = ce.progressed_to_false;
    }
    CaptureDelta(&d);
    explanations_->push_back(std::move(d));
    num_culprits_ = 1;
  } else {
    for (size_t i = 0;
         i < culprits.size() && explanations_->size() < kMaxExplanations;
         ++i) {
      TIC_ASSIGN_OR_RETURN(Diagnosis d, DiagnoseInstance(culprits[i], t, w));
      explanations_->push_back(std::move(d));
    }
  }
  verdict->diagnoses = explanations_;
  verdict->num_culprits = num_culprits_;
  return Status::OK();
}

}  // namespace checker
}  // namespace tic
