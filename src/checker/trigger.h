#ifndef TIC_CHECKER_TRIGGER_H_
#define TIC_CHECKER_TRIGGER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "checker/extension.h"
#include "common/result.h"
#include "db/update.h"
#include "fotl/factory.h"

namespace tic {
namespace checker {

/// \brief One firing of a Condition-Action trigger.
struct TriggerFiring {
  std::string trigger;
  size_t time = 0;            ///< instant of the state after the update
  fotl::Valuation substitution;  ///< ground substitution theta for C's free vars
  /// Human-readable provenance (CheckOptions::provenance, default on): the
  /// duality argument behind the firing — which substitution made the negated
  /// condition unsatisfiable, and whether the collapse was permanent. Empty
  /// when provenance is disabled.
  std::string explanation;
};

/// \brief Temporal Condition-Action triggers via the duality of Section 2:
/// the trigger "if C then A" fires at instant t for a ground substitution
/// theta iff !C theta is NOT potentially satisfied at t — i.e. no extension of
/// the history can make the condition false.
///
/// For the firing test to be decidable, !C must fall in the universal fragment
/// (Theorem 4.2); dually, C must be an *existential* formula: a chain of
/// leading existential quantifiers over a tense(Sigma_0) body — the class
/// `exists* tense(Sigma)` that Section 5 identifies with the expressivity of
/// Sistla & Wolfson's trigger language. Substitutions range over the relevant
/// set R_D of the current history.
class TriggerManager {
 public:
  static Result<std::unique_ptr<TriggerManager>> Create(
      std::shared_ptr<fotl::FormulaFactory> fotl_factory,
      std::vector<Value> constant_interp = {}, CheckOptions options = {});

  /// Registers "if `condition` then `action`". The action is invoked for each
  /// firing. Fails (NotSupported) if the negated condition is not universal.
  Status AddTrigger(std::string name, fotl::Formula condition,
                    std::function<void(const TriggerFiring&)> action = nullptr);

  /// Applies `txn` to the internal history and evaluates every trigger for
  /// every substitution; returns all firings (and invokes actions).
  Result<std::vector<TriggerFiring>> OnTransaction(const Transaction& txn);

  /// Evaluates triggers against the current history without updating it.
  Result<std::vector<TriggerFiring>> EvaluateTriggers();

  const History& history() const { return history_; }
  History* mutable_history() { return &history_; }

  /// Effective options after Create's defaulting (pool, verdict cache).
  const CheckOptions& options() const { return options_; }

 private:
  TriggerManager(std::shared_ptr<fotl::FormulaFactory> fotl_factory,
                 History history, CheckOptions options);

  struct Trigger {
    std::string name;
    fotl::Formula condition;      // original C
    fotl::Formula negated;        // universal !C with the same free variables
    std::vector<fotl::VarId> params;  // free variables of C
    std::function<void(const TriggerFiring&)> action;
  };

  std::shared_ptr<fotl::FormulaFactory> ffac_;
  CheckOptions options_;
  History history_;
  std::vector<Trigger> triggers_;
};

}  // namespace checker
}  // namespace tic

#endif  // TIC_CHECKER_TRIGGER_H_
