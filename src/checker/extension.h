#ifndef TIC_CHECKER_EXTENSION_H_
#define TIC_CHECKER_EXTENSION_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "checker/grounding.h"
#include "common/result.h"
#include "common/telemetry/trace.h"
#include "common/thread_pool.h"
#include "db/history.h"
#include "fotl/evaluator.h"
#include "fotl/factory.h"
#include "ptl/tableau.h"
#include "ptl/transition_system.h"

namespace tic {
namespace checker {

/// \brief Which per-update decision engine the monitor (and the batch checker
/// when no witness is requested) runs.
enum class MonitorBackend {
  /// Lemma 4.2 taken literally: rewrite every residual through the new state
  /// (`ptl::Progress`), then re-run the tableau satisfiability check on the
  /// residual conjunction from scratch. Always available; produces witnesses.
  kProgression,
  /// Compile-once / memoize-everything automaton. Two cooperating machines,
  /// both advancing by one memoized `(state id, letter signature) -> state id`
  /// lookup per update instead of per-update rewriting + CheckSat:
  ///  - The *monitor* runs the residual-graph automaton of the joint grounded
  ///    conjunction: states are hash-consed residuals, liveness is decided
  ///    once per state (via the shared verdict cache), and recurring database
  ///    states never touch a formula or a tableau again. (The determinized
  ///    closure-state cover of a joint conjunction is the product of the
  ///    per-instance covers — exponential in the instance count — so it is
  ///    not compiled eagerly.)
  ///  - Batch checks and trigger substitution sweeps compile phi_D into a
  ///    closure-bitset ptl::TransitionSystem with precomputed liveness, shared
  ///    across letter renamings through the AutomatonCache; compilation runs
  ///    under a clamped budget and falls back to progression when the cover
  ///    blows up (multi-instance groundings).
  /// Verdict-equivalent to kProgression. Effective for MonitorMode::kEager
  /// and for batch checks with `want_witness == false`; other monitor modes
  /// and witness-producing checks fall back to kProgression (kLazy's weak
  /// verdicts and the history-less renaming are progression-specific, and
  /// witness decoding needs the residual formula).
  kAutomaton,
};

/// \brief How eagerly the monitor detects violations, and how it catches up
/// instances for newly relevant elements. (Lives here rather than monitor.h
/// so provenance replay helpers can name a mode without the full Monitor.)
enum class MonitorMode {
  /// Exact potential satisfaction (Theorem 4.2): run the satisfiability check
  /// after every update, detecting violations at the earliest possible time.
  /// New-element instances are caught up by replaying the stored history.
  kEager,
  /// The weaker notion implemented by Lipeck & Saake (Section 5): only the
  /// linear-time progression runs per update, so violations are always
  /// detected (the residual collapses to false) but possibly later than the
  /// earliest time. Cheap: no exponential phase per update.
  kLazy,
  /// Eager verdicts WITHOUT storing the propositional history — an answer (in
  /// this setting) to the Section 6 open question of a history-less method
  /// for universal formulas. The z-stand-in atoms are kept as real letters
  /// (never true in any state) instead of being folded to false; when an
  /// element e becomes relevant, its instances' residuals are obtained from
  /// the matching z-pattern instance by *renaming letters* (e was
  /// indistinguishable from the stand-in over the entire past), so no replay
  /// is needed. Per-update memory is O(residuals), independent of t.
  kEagerHistoryLess,
};

/// \brief Options for the Theorem 4.2 decision procedure.
struct CheckOptions {
  GroundingOptions grounding;
  ptl::TableauOptions tableau;
  /// Require the constraint to pass the syntactic safety test after grounding
  /// (Section 4's results are stated for safety sentences; Lemma 4.1 fails
  /// without safety, e.g. for `forall x . F p(x)`). Disable only for
  /// experiments that deliberately probe non-safety behaviour.
  bool require_safety = true;
  /// Produce a decoded witness extension when the answer is YES.
  bool want_witness = true;

  /// Per-update engine; see MonitorBackend. The automaton backend is the
  /// default: it is verdict-equivalent and amortizes the tableau into a
  /// one-time compile. Select kProgression to force the literal two-phase
  /// procedure (and for witness-producing paths, which use it regardless).
  MonitorBackend backend = MonitorBackend::kAutomaton;
  /// Shared LRU cache of compiled transition systems (keyed by the
  /// renaming-invariant canonical form, like the verdict cache). Used by the
  /// batch/trigger automaton path; when null and the automaton backend is
  /// selected, TriggerManager defaults one. Inject an instance here to share
  /// compiled automata — and their transition memos — across trigger managers
  /// and batch checks. The Monitor's cohort path also compiles through this
  /// cache (per-instance residuals are letter-renamings of one another, so
  /// symmetric instances land on one shared TransitionSystem); when null and
  /// cohort stepping is on, Monitor defaults a private instance. The joint
  /// residual graph remains per-monitor state.
  std::shared_ptr<ptl::AutomatonCache> automaton_cache;

  /// Step letter-disjoint grounded instances in cohorts: instances whose
  /// residuals share no ground atoms are grouped by compiled automaton
  /// (structure-of-arrays state ids) and advanced per transaction with one
  /// letter signature plus a word-parallel gather over a dense state x
  /// letter-class table (AVX2 when available). Verdict-equivalent to the
  /// joint path by construction — sat(AND of atom-disjoint residuals) equals
  /// AND of per-residual sat — and differentially enforced by the
  /// `cohort-diff` suite. Instances that share atoms still step jointly.
  bool cohort_stepping = true;
  /// Re-run offline automaton minimization (TransitionSystem::MinimizeNow)
  /// whenever a cohort's system has interned this many new state-sets since
  /// the last run; 0 disables minimization. Collapsing bisimilar states keeps
  /// dense cohort tables small on long heterogeneous histories.
  uint32_t cohort_minimize_interval = 24;

  /// Degree of parallelism for the per-update hot paths (Monitor residual
  /// progression, TriggerManager substitution sweeps). 1 = fully sequential.
  /// Parallelism is verdict-invariant: progression is a pure function of the
  /// residual and the new state, so the same residuals come out in any
  /// schedule.
  size_t threads = 1;
  /// Worker pool backing `threads`. When null and threads > 1, Monitor /
  /// TriggerManager construct a private pool with threads - 1 workers (the
  /// calling thread participates in every ParallelFor). Inject one instance
  /// here to share workers across monitors and trigger managers.
  std::shared_ptr<ThreadPool> thread_pool;

  /// When set, Monitor::Create installs this sink as the process-wide
  /// Chrome-trace destination (telemetry::SetTraceSink) and flips telemetry
  /// on, so every span in the pipeline is captured from the first update.
  /// Serialize it with TraceSink::WriteChromeTrace when done. Tracing is
  /// process-global: the last installed sink wins.
  std::shared_ptr<telemetry::TraceSink> trace_sink;

  /// Assemble verdict provenance when an update flips the monitor to
  /// violated: MonitorVerdict::explanations() then carries one Diagnosis per
  /// culprit instance (capped at kMaxExplanations) — the grounded
  /// substitution, the letter delta of the fatal update, the last-K residual
  /// trajectory, and the closure subformula that became unsatisfiable. The
  /// capture runs exactly once, at the flip (a terminal event), so it costs
  /// the steady-state hot path nothing.
  bool provenance = true;

  /// Stall watchdog (opt-in): when > 0, Monitor::Create starts one sampling
  /// thread that watches every ApplyTransaction; an update still open after
  /// this many milliseconds records a `watchdog_fire` flight-recorder event,
  /// dumps the recorder to `watchdog_dump_path` (when set), and notes the
  /// stall on stderr — once per stuck update. Ignored in `-DTIC_TELEMETRY=OFF`
  /// builds (no recorder to dump, and the hot path must stay symbol-free).
  uint64_t watchdog_ms = 0;
  std::string watchdog_dump_path;
};

/// \brief Outcome of a potential-satisfaction check.
struct CheckResult {
  /// The paper's verdict: the history is in Pref(phi) — it has an infinite
  /// extension satisfying phi.
  bool potentially_satisfied = false;

  /// When potentially satisfied and want_witness: a concrete ultimately
  /// periodic extension (the full infinite database: the history states
  /// followed by the decoded future evolution). Its prefix of length
  /// |history| equals the history (Theorem 4.1 decoding direction).
  std::optional<UltimatelyPeriodicDb> witness;

  /// True when the residual collapsed to `false` during the prefix rewriting
  /// phase: the violation is *permanent*, i.e. no earlier verdict could have
  /// been different from this instant on (the safety property at work).
  bool permanently_violated = false;

  GroundingStats grounding_stats;
  ptl::TableauStats tableau_stats;
  uint64_t residual_size = 0;  ///< |residual| after phase 1
};

/// \brief Decides whether `history` can be extended to an infinite temporal
/// database satisfying the universal safety sentence `phi` (Theorem 4.2):
/// ground (Theorem 4.1), rewrite through the prefix (Lemma 4.2 phase 1),
/// decide satisfiability of the residual (phase 2), decode the witness.
///
/// `binding` pre-binds free variables of `phi` (trigger duality, Section 2).
Result<CheckResult> CheckPotentialSatisfaction(
    const fotl::FormulaFactory& fotl_factory, fotl::Formula phi,
    const History& history, const fotl::Valuation& binding = {},
    const CheckOptions& options = {});

}  // namespace checker
}  // namespace tic

#endif  // TIC_CHECKER_EXTENSION_H_
