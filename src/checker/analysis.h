#ifndef TIC_CHECKER_ANALYSIS_H_
#define TIC_CHECKER_ANALYSIS_H_

#include <string>

#include "fotl/classify.h"
#include "fotl/factory.h"

namespace tic {
namespace checker {

/// \brief Which checking technology (if any) can handle a constraint — the
/// practical summary of the paper's decidability map.
enum class Checkability {
  /// Universal safety sentence: exact potential satisfaction via Theorem 4.2
  /// (ExtensionChecker / Monitor).
  kUniversalSafety,
  /// `forall* G A` with A past: the history-less baseline (PastMonitor),
  /// classical (non-potential) semantics, linear time.
  kPastAlways,
  /// Universal but with eventualities: outside the safety fragment; Lemma 4.1
  /// fails, so only heuristic checking with require_safety=false is possible.
  kUniversalNonSafety,
  /// Biquantified with internal quantifiers (forall* tense(Sigma_n), n >= 1):
  /// the extension problem is undecidable (Theorem 3.2 for n = 1).
  kUndecidableFragment,
  /// Not biquantified at all (mixed tenses, quantifiers over temporal scopes).
  kUnsupported,
};

/// \brief Structured constraint report: fragment classification + safety
/// analysis + engine recommendation, with a human-readable explanation that
/// cites the relevant paper results.
struct ConstraintReport {
  fotl::Classification classification;
  /// Syntactic safety of the tense skeleton (atoms abstracted to letters) —
  /// the Section 6 conjecture used as a sound gate.
  bool syntactically_safe = false;
  Checkability checkability = Checkability::kUnsupported;
  std::string explanation;
};

/// \brief Analyzes a closed constraint and recommends a checking engine.
ConstraintReport AnalyzeConstraint(const fotl::FormulaFactory& factory,
                                   fotl::Formula constraint);

/// \brief Short name for a checkability verdict.
const char* CheckabilityToString(Checkability c);

}  // namespace checker
}  // namespace tic

#endif  // TIC_CHECKER_ANALYSIS_H_
