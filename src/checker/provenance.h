#ifndef TIC_CHECKER_PROVENANCE_H_
#define TIC_CHECKER_PROVENANCE_H_

/// Verdict provenance: when an update flips the monitor to violated (or a
/// trigger fires), the bounded residual state the paper's feasibility
/// argument rests on (Lemma 4.2) is exactly enough to explain *why* — which
/// grounded substitution failed, which insert/delete ops flipped its
/// letters, how its residual marched to `false`, and which subformula of the
/// constraint became unsatisfiable. A `Diagnosis` packages that, and the
/// replay helpers below differentially verify it: rebuilding the transaction
/// stream from the history and feeding it to a fresh monitor must reproduce
/// the same verdict at the same index.

#include <memory>
#include <string>
#include <vector>

#include "checker/extension.h"
#include "checker/grounding.h"
#include "common/result.h"
#include "db/history.h"
#include "db/update.h"
#include "ptl/closure.h"
#include "ptl/formula.h"

namespace tic {
namespace checker {

/// One letter the fatal update flipped, decoded to the ground atom.
struct DiagnosisDelta {
  ptl::PropId letter = 0;
  bool inserted = false;  ///< true: flipped to true (insert); false: delete
  std::string atom;       ///< rendered ground atom, e.g. "Sub(7)"
};

/// One point of the residual trajectory: the instance's residual AFTER
/// consuming history state `time`.
struct DiagnosisStep {
  size_t time = 0;
  ptl::Formula residual = nullptr;
  uint64_t residual_size = 0;
};

/// \brief Why one grounded instance (or the joint conjunction) became
/// permanently violated. Self-contained: holds a shared_ptr to the
/// propositional factory owning every formula it references, so it stays
/// valid after the monitor is gone.
struct Diagnosis {
  size_t time = 0;   ///< index of the violating update
  bool joint = false;  ///< explains the joint conjunction, not one instance

  /// The grounded substitution (Theorem 4.1 instance). Empty when `joint`.
  std::vector<GroundElem> assignment;
  std::string assignment_text;  ///< "x=7, y=z1" using the sentence's var names

  std::shared_ptr<ptl::Factory> factory;  ///< keeps the formulas below alive
  ptl::Formula grounded = nullptr;   ///< original grounded formula
  ptl::Formula last_live = nullptr;  ///< residual entering the fatal state
  ptl::Formula residual = nullptr;   ///< residual after it (False or unsat)

  /// The subformula of `last_live` that became unsatisfiable under the fatal
  /// letter, with its Fischer–Ladner closure index (ptl::ExplainCollapse).
  ptl::Formula subformula = nullptr;
  uint32_t closure_index = ptl::Closure::kNone;
  bool subformula_progressed_to_false = false;

  /// The violating letter delta: the current-letter flips this update's
  /// insert/delete ops caused (all flips, not only this instance's letters).
  std::vector<DiagnosisDelta> delta;

  /// Last-K residual trajectory (K = Monitor's kTrajectoryK), oldest first;
  /// the final entry equals (time, residual).
  std::vector<DiagnosisStep> trajectory;

  /// Multi-line human-readable rendering of everything above.
  std::string Render() const;
};

/// \brief Outcome of replaying a history into a fresh monitor.
struct ReplayOutcome {
  bool violated = false;
  size_t violated_at = 0;  ///< first update index with permanently_violated
  size_t updates = 0;      ///< transactions replayed
};

/// \brief Reconstructs the transaction stream that produced `history` by
/// diffing consecutive states (state 0 diffs against empty). Replaying the
/// result into an empty history rebuilds `history` state for state.
Result<std::vector<Transaction>> TransactionsFromHistory(const History& history);

/// \brief Differential witness replay: rebuilds `history`'s transactions and
/// feeds them to a FRESH monitor for `phi` (same options/mode). A Diagnosis
/// at time T is verified by `violated && violated_at == T` — the fresh
/// monitor must reach the same verdict at the same index.
Result<ReplayOutcome> ReplayHistory(
    std::shared_ptr<fotl::FormulaFactory> fotl_factory, fotl::Formula phi,
    const History& history, CheckOptions options = {},
    MonitorMode mode = MonitorMode::kEager);

}  // namespace checker
}  // namespace tic

#endif  // TIC_CHECKER_PROVENANCE_H_
