#include "checker/provenance.h"

#include "checker/monitor.h"

namespace tic {
namespace checker {

std::string Diagnosis::Render() const {
  std::string out;
  out += "violation at t=" + std::to_string(time);
  if (joint) {
    out += " (joint conjunction)";
  } else {
    out += " instance [" + assignment_text + "]";
  }
  out += "\n";
  if (factory != nullptr) {
    const ptl::Factory& f = *factory;
    if (grounded != nullptr) {
      out += "  grounded:   " + ptl::ToString(f, grounded) + "\n";
    }
    if (!delta.empty()) {
      out += "  delta:      ";
      for (size_t i = 0; i < delta.size(); ++i) {
        if (i > 0) out += ", ";
        out += delta[i].inserted ? "+" : "-";
        out += delta[i].atom;
      }
      out += "\n";
    }
    if (subformula != nullptr) {
      out += "  collapsed:  " + ptl::ToString(f, subformula);
      if (closure_index != ptl::Closure::kNone) {
        out += "  (closure #" + std::to_string(closure_index);
        out += subformula_progressed_to_false ? ", progressed to false)"
                                              : ", unsatisfiable)";
      }
      out += "\n";
    }
    if (!trajectory.empty()) {
      out += "  trajectory:\n";
      for (const DiagnosisStep& s : trajectory) {
        out += "    t=" + std::to_string(s.time) + ": " +
               ptl::ToString(f, s.residual) + "\n";
      }
    } else if (residual != nullptr) {
      out += "  residual:   " + ptl::ToString(f, residual) + "\n";
    }
  }
  return out;
}

Result<std::vector<Transaction>> TransactionsFromHistory(const History& history) {
  std::vector<Transaction> txns;
  txns.reserve(history.length());
  const Vocabulary& vocab = *history.vocabulary();
  for (size_t t = 0; t < history.length(); ++t) {
    Transaction txn;
    const DatabaseState* prev = t == 0 ? nullptr : &history.state(t - 1);
    const DatabaseState& cur = history.state(t);
    for (PredicateId p = 0; p < vocab.num_predicates(); ++p) {
      if (vocab.predicate(p).builtin != Builtin::kNone) continue;
      if (prev != nullptr) {
        for (const Tuple& tup : prev->relation(p)) {
          if (!cur.Holds(p, tup)) txn.push_back(UpdateOp::Delete(p, tup));
        }
      }
      for (const Tuple& tup : cur.relation(p)) {
        if (prev == nullptr || !prev->Holds(p, tup)) {
          txn.push_back(UpdateOp::Insert(p, tup));
        }
      }
    }
    txns.push_back(std::move(txn));
  }
  return txns;
}

Result<ReplayOutcome> ReplayHistory(
    std::shared_ptr<fotl::FormulaFactory> fotl_factory, fotl::Formula phi,
    const History& history, CheckOptions options, MonitorMode mode) {
  TIC_ASSIGN_OR_RETURN(std::vector<Transaction> txns,
                       TransactionsFromHistory(history));
  // The replica monitors the condition, not the observer machinery.
  options.trace_sink = nullptr;
  options.watchdog_ms = 0;
  TIC_ASSIGN_OR_RETURN(
      std::unique_ptr<Monitor> replica,
      Monitor::Create(std::move(fotl_factory), phi,
                      history.constant_interpretation(), options, mode));
  ReplayOutcome out;
  for (size_t i = 0; i < txns.size(); ++i) {
    TIC_ASSIGN_OR_RETURN(MonitorVerdict v,
                         replica->ApplyTransaction(txns[i]));
    ++out.updates;
    if (!out.violated && v.permanently_violated) {
      out.violated = true;
      out.violated_at = i;
    }
  }
  return out;
}

}  // namespace checker
}  // namespace tic
