#include "checker/analysis.h"

#include <functional>
#include <unordered_map>

#include "ptl/formula.h"
#include "ptl/safety.h"

namespace tic {
namespace checker {

namespace {

// Abstracts every first-order atom of a biquantified body to a propositional
// letter; safety depends only on the temporal skeleton.
ptl::Formula Skeletonize(fotl::Formula f, ptl::Factory* pf,
                         ptl::PropVocabulary* vocab,
                         std::unordered_map<fotl::Formula, ptl::Formula>* atoms) {
  using fotl::NodeKind;
  switch (f->kind()) {
    case NodeKind::kTrue:
      return pf->True();
    case NodeKind::kFalse:
      return pf->False();
    case NodeKind::kEquals:
    case NodeKind::kAtom:
    case NodeKind::kExists:
    case NodeKind::kForall: {
      // Internal FO blocks (if any) are state formulas: one letter each.
      auto it = atoms->find(f);
      if (it != atoms->end()) return it->second;
      ptl::Formula letter =
          pf->Atom(vocab->Intern("skel#" + std::to_string(atoms->size())));
      atoms->emplace(f, letter);
      return letter;
    }
    case NodeKind::kNot:
      return pf->Not(Skeletonize(f->child(0), pf, vocab, atoms));
    case NodeKind::kNext:
      return pf->Next(Skeletonize(f->child(0), pf, vocab, atoms));
    case NodeKind::kEventually:
      return pf->Eventually(Skeletonize(f->child(0), pf, vocab, atoms));
    case NodeKind::kAlways:
      return pf->Always(Skeletonize(f->child(0), pf, vocab, atoms));
    case NodeKind::kAnd:
      return pf->And(Skeletonize(f->lhs(), pf, vocab, atoms),
                     Skeletonize(f->rhs(), pf, vocab, atoms));
    case NodeKind::kOr:
      return pf->Or(Skeletonize(f->lhs(), pf, vocab, atoms),
                    Skeletonize(f->rhs(), pf, vocab, atoms));
    case NodeKind::kImplies:
      return pf->Implies(Skeletonize(f->lhs(), pf, vocab, atoms),
                         Skeletonize(f->rhs(), pf, vocab, atoms));
    case NodeKind::kUntil:
      return pf->Until(Skeletonize(f->lhs(), pf, vocab, atoms),
                       Skeletonize(f->rhs(), pf, vocab, atoms));
    default:
      // Past connectives: unreachable on future-only bodies; conservative.
      return pf->True();
  }
}

}  // namespace

const char* CheckabilityToString(Checkability c) {
  switch (c) {
    case Checkability::kUniversalSafety:
      return "universal-safety (Theorem 4.2)";
    case Checkability::kPastAlways:
      return "always-past (history-less baseline)";
    case Checkability::kUniversalNonSafety:
      return "universal-non-safety (heuristic only)";
    case Checkability::kUndecidableFragment:
      return "undecidable fragment (Theorem 3.2)";
    case Checkability::kUnsupported:
      return "unsupported";
  }
  return "unknown";
}

ConstraintReport AnalyzeConstraint(const fotl::FormulaFactory& factory,
                                   fotl::Formula constraint) {
  (void)factory;
  ConstraintReport report;
  report.classification = fotl::Classify(constraint);
  const fotl::Classification& c = report.classification;

  // Safety of the tense skeleton (meaningful for future-only bodies).
  if (c.future_only) {
    auto vocab = std::make_shared<ptl::PropVocabulary>();
    ptl::Factory pf(vocab);
    std::unordered_map<fotl::Formula, ptl::Formula> atoms;
    std::vector<fotl::VarId> prefix;
    fotl::Formula body = nullptr;
    fotl::StripUniversalPrefix(constraint, &prefix, &body);
    ptl::Formula skeleton = Skeletonize(body, &pf, vocab.get(), &atoms);
    report.syntactically_safe = ptl::IsSyntacticallySafe(&pf, skeleton);
  }

  if (c.is_always_past) {
    report.checkability = Checkability::kPastAlways;
    report.explanation =
        "G A with A a past formula: always a safety property (Proposition "
        "2.1); use PastMonitor for linear-time history-less checking, or "
        "rewrite into the future fragment for potential satisfaction.";
  } else if (!c.biquantified) {
    report.checkability = Checkability::kUnsupported;
    report.explanation =
        "not biquantified: either past/future tenses are mixed, or a "
        "quantifier has a temporal operator in its scope, or the external "
        "prefix is not purely universal (Section 2's fragment definitions).";
  } else if (c.num_internal_quantifiers > 0) {
    report.checkability = Checkability::kUndecidableFragment;
    report.explanation =
        "biquantified with internal quantifiers: the extension problem for "
        "forall* tense(Sigma_1) is Sigma^0_2-complete (Theorem 3.2); no "
        "checking algorithm exists.";
  } else if (report.syntactically_safe) {
    report.checkability = Checkability::kUniversalSafety;
    report.explanation =
        "universal safety sentence: potential satisfaction decidable in "
        "exponential time (Theorem 4.2); use ExtensionChecker or Monitor.";
  } else {
    report.checkability = Checkability::kUniversalNonSafety;
    report.explanation =
        "universal but not (syntactically) safe: Lemma 4.1 fails for "
        "non-safety sentences, so the Theorem 4.2 reduction is unsound here; "
        "the checker only proceeds with require_safety=false, and its answers "
        "are conservative about unnamed elements.";
  }
  return report;
}

}  // namespace checker
}  // namespace tic
