// Micro-benchmarks for the flat-container layer (src/common/flat/) against
// the std::unordered_* baselines it replaced on the monitoring hot path.
//
// The axes mirror the real access patterns:
//   - Hit probes on a warm table (the automaton backend's (state, signature)
//     transition memo after warm-up — the steady-state step).
//   - Miss probes (letter interning of a never-seen ground atom).
//   - Insert-then-clear-then-reinsert cycles (per-call scratch sets such as
//     Cover's dedup set, which Clear() keeps warm instead of freeing).
//   - String-keyed hit probes (signature interning before the Fp128 move).
//
// Sizes sweep 16..4096: the transition memos and letter tables observed in
// the paper's experiments live in the 16..1024 range.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bench/bench_common.h"
#include "common/flat/flat_map.h"
#include "common/flat/flat_set.h"

namespace tic {
namespace {

// xorshift64: deterministic probe order, cheap enough to not dominate.
inline uint64_t Next(uint64_t* s) {
  uint64_t x = *s;
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  return *s = x;
}

std::vector<uint64_t> Keys(size_t n) {
  std::vector<uint64_t> keys;
  keys.reserve(n);
  uint64_t s = 0x9e3779b97f4a7c15ull;
  for (size_t i = 0; i < n; ++i) keys.push_back(Next(&s));
  return keys;
}

template <typename MapT>
void WarmHitsLoop(benchmark::State& state, MapT& map,
                  const std::vector<uint64_t>& keys) {
  uint64_t sum = 0;
  size_t i = 0;
  for (auto _ : state) {
    sum += map[keys[i]];
    if (++i == keys.size()) i = 0;
  }
  benchmark::DoNotOptimize(sum);
  state.SetItemsProcessed(state.iterations());
}

void BM_FlatMap_WarmHits(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto keys = Keys(n);
  flat::FlatMap<uint64_t, uint64_t> map;
  for (uint64_t k : keys) map.Emplace(k, k * 3);
  WarmHitsLoop(state, map, keys);
}

void BM_StdUnorderedMap_WarmHits(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto keys = Keys(n);
  std::unordered_map<uint64_t, uint64_t> map;
  for (uint64_t k : keys) map.emplace(k, k * 3);
  WarmHitsLoop(state, map, keys);
}

void BM_FlatMap_Misses(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto keys = Keys(n);
  flat::FlatMap<uint64_t, uint64_t> map;
  for (uint64_t k : keys) map.Emplace(k, k);
  uint64_t s = 42;
  uint64_t found = 0;
  for (auto _ : state) {
    found += map.Get(Next(&s)) != nullptr;
  }
  benchmark::DoNotOptimize(found);
  state.SetItemsProcessed(state.iterations());
}

void BM_StdUnorderedMap_Misses(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto keys = Keys(n);
  std::unordered_map<uint64_t, uint64_t> map;
  for (uint64_t k : keys) map.emplace(k, k);
  uint64_t s = 42;
  uint64_t found = 0;
  for (auto _ : state) {
    found += map.count(Next(&s));
  }
  benchmark::DoNotOptimize(found);
  state.SetItemsProcessed(state.iterations());
}

// Per-call scratch pattern: fill a set, read it back, Clear(). flat's Clear
// keeps the bucket array, so iterations after the first allocate nothing.
void BM_FlatSet_ScratchCycle(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto keys = Keys(n);
  flat::FlatSet<uint64_t> set;
  for (auto _ : state) {
    for (uint64_t k : keys) set.Insert(k);
    uint64_t hits = 0;
    for (uint64_t k : keys) hits += set.Contains(k);
    benchmark::DoNotOptimize(hits);
    set.Clear();
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}

void BM_StdUnorderedSet_ScratchCycle(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto keys = Keys(n);
  std::unordered_set<uint64_t> set;
  for (auto _ : state) {
    for (uint64_t k : keys) set.insert(k);
    uint64_t hits = 0;
    for (uint64_t k : keys) hits += set.count(k);
    benchmark::DoNotOptimize(hits);
    set.clear();
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}

// Signature interning: string keys, warm hits. (The monitor interns letter
// signatures per step before the 64-bit memo key is formed.)
std::vector<std::string> SigKeys(size_t n) {
  std::vector<std::string> keys;
  keys.reserve(n);
  uint64_t s = 7;
  for (size_t i = 0; i < n; ++i) {
    std::string sig;
    for (int j = 0; j < 12; ++j) sig.push_back('a' + Next(&s) % 26);
    keys.push_back(sig);
  }
  return keys;
}

void BM_FlatMap_StringWarmHits(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto keys = SigKeys(n);
  flat::FlatMap<std::string, uint32_t> map;
  for (size_t i = 0; i < keys.size(); ++i) {
    map.Emplace(keys[i], static_cast<uint32_t>(i));
  }
  uint64_t sum = 0;
  size_t i = 0;
  for (auto _ : state) {
    sum += *map.Get(keys[i]);
    if (++i == keys.size()) i = 0;
  }
  benchmark::DoNotOptimize(sum);
  state.SetItemsProcessed(state.iterations());
}

void BM_StdUnorderedMap_StringWarmHits(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto keys = SigKeys(n);
  std::unordered_map<std::string, uint32_t> map;
  for (size_t i = 0; i < keys.size(); ++i) {
    map.emplace(keys[i], static_cast<uint32_t>(i));
  }
  uint64_t sum = 0;
  size_t i = 0;
  for (auto _ : state) {
    sum += map.find(keys[i])->second;
    if (++i == keys.size()) i = 0;
  }
  benchmark::DoNotOptimize(sum);
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_FlatMap_WarmHits)->RangeMultiplier(4)->Range(16, 4096);
BENCHMARK(BM_StdUnorderedMap_WarmHits)->RangeMultiplier(4)->Range(16, 4096);
BENCHMARK(BM_FlatMap_Misses)->RangeMultiplier(4)->Range(16, 4096);
BENCHMARK(BM_StdUnorderedMap_Misses)->RangeMultiplier(4)->Range(16, 4096);
BENCHMARK(BM_FlatSet_ScratchCycle)->RangeMultiplier(4)->Range(16, 1024);
BENCHMARK(BM_StdUnorderedSet_ScratchCycle)->RangeMultiplier(4)->Range(16, 1024);
BENCHMARK(BM_FlatMap_StringWarmHits)->RangeMultiplier(4)->Range(16, 1024);
BENCHMARK(BM_StdUnorderedMap_StringWarmHits)->RangeMultiplier(4)->Range(16, 1024);

}  // namespace
}  // namespace tic

TIC_BENCH_MAIN()
