// Validates a Chrome trace-event file produced by --trace=<path>: parses the
// JSON strictly and checks the trace-event structure (traceEvents array, every
// "X" event carrying name/ts/dur/pid/tid). Used by the bench-smoke ctest entry
// that asserts the export round-trips; also handy standalone:
//
//   validate_trace <trace.json> [--require-events]
//
// --require-events additionally fails on a trace with zero complete events —
// set by CMake only for TIC_TELEMETRY=ON builds, where a monitored bench run
// must have produced spans (an OFF build legitimately emits an empty trace).

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "common/telemetry/trace.h"

int main(int argc, char** argv) {
  const char* path = nullptr;
  bool require_events = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--require-events") == 0) {
      require_events = true;
    } else if (path == nullptr) {
      path = argv[i];
    } else {
      std::fprintf(stderr, "usage: %s <trace.json> [--require-events]\n", argv[0]);
      return 2;
    }
  }
  if (path == nullptr) {
    std::fprintf(stderr, "usage: %s <trace.json> [--require-events]\n", argv[0]);
    return 2;
  }

  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string text = buf.str();

  std::string error;
  size_t num_events = 0;
  if (!tic::telemetry::ValidateChromeTrace(text, &error, &num_events)) {
    std::fprintf(stderr, "%s: invalid trace: %s\n", path, error.c_str());
    return 1;
  }
  if (require_events && num_events == 0) {
    std::fprintf(stderr, "%s: valid but empty trace (no \"X\" events)\n", path);
    return 1;
  }
  std::printf("%s: valid Chrome trace, %zu complete events\n", path, num_events);
  return 0;
}
