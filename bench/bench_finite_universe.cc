// Experiment E9: the Section 4 finite-universe example family
// (W1 & W4 & Q1 & Q4 & inverse-order): models of every finite size but no
// infinite-universe model. We measure the checker's behaviour as the named
// chain grows — every prefix is rejected (the z-instances of W4 collapse), and
// the cost of discovering that grows with the chain.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

#include "checker/extension.h"
#include "fotl/parser.h"

namespace tic {
namespace {

struct R7Fixture {
  VocabularyPtr vocab;
  PredicateId w = 0, q = 0;
  std::shared_ptr<fotl::FormulaFactory> factory;
  fotl::Formula phi = nullptr;

  R7Fixture() {
    auto v = std::make_shared<Vocabulary>();
    w = *v->AddPredicate("Wp", 1);
    q = *v->AddPredicate("Qp", 1);
    vocab = v;
    factory = std::make_shared<fotl::FormulaFactory>(vocab);
    phi = *fotl::Parse(
        factory.get(),
        "forall x y . "
        "(G ((Wp(x) & Wp(y)) -> x = y)) & "
        "(G ((Qp(x) & Qp(y)) -> x = y)) & "
        "((!Wp(x)) until (Wp(x) & X G !Wp(x))) & "
        "((!Qp(x)) until (Qp(x) & X G !Qp(x))) & "
        "(F (Qp(x) & F Qp(y)) -> F (Wp(y) & F Wp(x)))");
  }

  // W ascending 1..n, Q descending n..1 over n states: a "finite model" chain.
  History MakeChain(size_t n) const {
    History h = *History::Create(vocab);
    for (size_t t = 0; t < n; ++t) {
      DatabaseState* s = h.AppendEmptyState();
      (void)s->Insert(w, {static_cast<Value>(t) + 1});
      (void)s->Insert(q, {static_cast<Value>(n - t)});
    }
    return h;
  }
};

R7Fixture& Fixture() {
  static R7Fixture* f = new R7Fixture();
  return *f;
}

void BM_FiniteUniverse_ChainSweep(benchmark::State& state) {
  auto& fx = Fixture();
  size_t n = static_cast<size_t>(state.range(0));
  History h = fx.MakeChain(n);
  checker::CheckOptions opts;
  opts.require_safety = false;  // the family is deliberately non-safety
  state.counters["chain"] = static_cast<double>(n);
  for (auto _ : state) {
    auto res = checker::CheckPotentialSatisfaction(*fx.factory, fx.phi, h, {}, opts);
    if (!res.ok()) state.SkipWithError(res.status().ToString().c_str());
    // No infinite-universe model exists: the checker rejects every chain.
    state.counters["satisfied"] = res->potentially_satisfied ? 1 : 0;
    benchmark::DoNotOptimize(res->potentially_satisfied);
  }
}
BENCHMARK(BM_FiniteUniverse_ChainSweep)->DenseRange(1, 7, 2)->Arg(10);

// The W1-only part is a genuine safety constraint; it stays checkable and
// satisfied on the same chains — separating the subformula behaviours.
void BM_FiniteUniverse_W1Only(benchmark::State& state) {
  auto& fx = Fixture();
  size_t n = static_cast<size_t>(state.range(0));
  History h = fx.MakeChain(n);
  static fotl::Formula w1 = *fotl::Parse(
      fx.factory.get(), "forall x y . G ((Wp(x) & Wp(y)) -> x = y)");
  for (auto _ : state) {
    auto res = checker::CheckPotentialSatisfaction(*fx.factory, w1, h);
    if (!res.ok()) state.SkipWithError(res.status().ToString().c_str());
    state.counters["satisfied"] = res->potentially_satisfied ? 1 : 0;
    benchmark::DoNotOptimize(res->potentially_satisfied);
  }
}
BENCHMARK(BM_FiniteUniverse_W1Only)->DenseRange(1, 7, 2)->Arg(10);

}  // namespace
}  // namespace tic

TIC_BENCH_MAIN()
