#ifndef TIC_BENCH_BENCH_COMMON_H_
#define TIC_BENCH_BENCH_COMMON_H_

// Shared setup for the experiment benches (EXPERIMENTS.md): the Section 2
// order-processing vocabulary and the paper's two running constraints.

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "db/update.h"
#include "fotl/factory.h"
#include "fotl/parser.h"

namespace tic {
namespace bench {

// Extracts --threads=a,b,c from argv, compacting the remaining arguments in
// place. Call before benchmark::Initialize, which rejects unknown flags.
// Returns `fallback` when the flag is absent or malformed (a zero count).
inline std::vector<size_t> ParseThreads(int* argc, char** argv,
                                        std::vector<size_t> fallback) {
  std::vector<char*> keep;
  std::vector<size_t> out;
  bool valid = true;
  for (int i = 0; i < *argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--threads=", 0) == 0) {
      for (size_t pos = 10; pos < a.size();) {
        size_t end = a.find(',', pos);
        if (end == std::string::npos) end = a.size();
        size_t t = static_cast<size_t>(
            std::strtoul(a.substr(pos, end - pos).c_str(), nullptr, 10));
        if (t == 0) valid = false;
        out.push_back(t);
        pos = end + 1;
      }
    } else {
      keep.push_back(argv[i]);
    }
  }
  *argc = static_cast<int>(keep.size());
  for (size_t i = 0; i < keep.size(); ++i) argv[i] = keep[i];
  return (out.empty() || !valid) ? fallback : out;
}

struct OrdersFixture {
  VocabularyPtr vocab;
  PredicateId sub = 0;
  PredicateId fill = 0;
  std::shared_ptr<fotl::FormulaFactory> factory;
  fotl::Formula submit_once = nullptr;  // forall x (k = 1)
  fotl::Formula fifo = nullptr;         // forall x, y (k = 2)

  OrdersFixture() {
    auto v = std::make_shared<Vocabulary>();
    sub = *v->AddPredicate("Sub", 1);
    fill = *v->AddPredicate("Fill", 1);
    vocab = v;
    factory = std::make_shared<fotl::FormulaFactory>(vocab);
    submit_once =
        *fotl::Parse(factory.get(), "forall x . G (Sub(x) -> X G !Sub(x))");
    fifo = *fotl::Parse(factory.get(),
                        "forall x y . G !(x != y & Sub(x) & ((!Fill(x)) until "
                        "(Sub(y) & ((!Fill(x)) until (Fill(y) & !Fill(x))))))");
  }

  // A history of `length` states over `num_orders` distinct orders, FIFO-
  // consistent: order i is submitted at instant i (mod num_orders when
  // `recycle`) and filled one instant later. Controls |R_D| and t
  // independently. With recycle = false, orders are submitted once only
  // (submit-once stays satisfied); with recycle = true, submissions repeat
  // forever (FIFO stays satisfied, submit-once does not).
  History MakeHistory(size_t length, size_t num_orders, bool recycle = true) const {
    History h = *History::Create(vocab);
    for (size_t t = 0; t < length; ++t) {
      DatabaseState* s = h.AppendEmptyState();
      if (recycle || t < num_orders) {
        Value now = static_cast<Value>(t % num_orders) + 1;
        (void)s->Insert(sub, {now});
      }
      if (t > 0 && (recycle || t <= num_orders)) {
        Value prev = static_cast<Value>((t - 1) % num_orders) + 1;
        (void)s->Insert(fill, {prev});
      }
    }
    return h;
  }

  // A single-state history naming orders 1..n (controls |R_D| with t = 1).
  History MakeWideHistory(size_t n) const {
    History h = *History::Create(vocab);
    DatabaseState* s = h.AppendEmptyState();
    for (size_t i = 1; i <= n; ++i) s->Insert(sub, {static_cast<Value>(i)});
    return h;
  }
};

}  // namespace bench
}  // namespace tic

#endif  // TIC_BENCH_BENCH_COMMON_H_
