#ifndef TIC_BENCH_BENCH_COMMON_H_
#define TIC_BENCH_BENCH_COMMON_H_

// Shared setup for the experiment benches (EXPERIMENTS.md): the Section 2
// order-processing vocabulary and the paper's two running constraints, plus
// the common flag parsing (--threads, --engine, --json, --trace, --telemetry)
// and the shared main (TIC_BENCH_MAIN) every bench binary links.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "checker/extension.h"
#include "common/telemetry/telemetry.h"
#include "db/update.h"
#include "fotl/factory.h"
#include "fotl/parser.h"
#include "ptl/tableau.h"

namespace tic {
namespace bench {

// Extracts --threads=a,b,c from argv, compacting the remaining arguments in
// place. Call before benchmark::Initialize, which rejects unknown flags.
// Returns `fallback` when the flag is absent or malformed (a zero count).
inline std::vector<size_t> ParseThreads(int* argc, char** argv,
                                        std::vector<size_t> fallback) {
  std::vector<char*> keep;
  std::vector<size_t> out;
  bool valid = true;
  for (int i = 0; i < *argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--threads=", 0) == 0) {
      for (size_t pos = 10; pos < a.size();) {
        size_t end = a.find(',', pos);
        if (end == std::string::npos) end = a.size();
        size_t t = static_cast<size_t>(
            std::strtoul(a.substr(pos, end - pos).c_str(), nullptr, 10));
        if (t == 0) valid = false;
        out.push_back(t);
        pos = end + 1;
      }
    } else {
      keep.push_back(argv[i]);
    }
  }
  *argc = static_cast<int>(keep.size());
  for (size_t i = 0; i < keep.size(); ++i) argv[i] = keep[i];
  return (out.empty() || !valid) ? fallback : out;
}

// Extracts --engine=legacy,bitset from argv, compacting the remaining
// arguments in place (same contract as ParseThreads). Returns `fallback` when
// the flag is absent or names an unknown engine.
inline std::vector<ptl::TableauEngine> ParseEngines(
    int* argc, char** argv, std::vector<ptl::TableauEngine> fallback) {
  std::vector<char*> keep;
  std::vector<ptl::TableauEngine> out;
  bool valid = true;
  for (int i = 0; i < *argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--engine=", 0) == 0) {
      for (size_t pos = 9; pos < a.size();) {
        size_t end = a.find(',', pos);
        if (end == std::string::npos) end = a.size();
        std::string name = a.substr(pos, end - pos);
        if (name == "legacy") {
          out.push_back(ptl::TableauEngine::kLegacy);
        } else if (name == "bitset") {
          out.push_back(ptl::TableauEngine::kBitset);
        } else {
          valid = false;
        }
        pos = end + 1;
      }
    } else {
      keep.push_back(argv[i]);
    }
  }
  *argc = static_cast<int>(keep.size());
  for (size_t i = 0; i < keep.size(); ++i) argv[i] = keep[i];
  return (out.empty() || !valid) ? fallback : out;
}

inline const char* EngineName(ptl::TableauEngine engine) {
  return engine == ptl::TableauEngine::kLegacy ? "legacy" : "bitset";
}

// Extracts --backend=progression,automaton from argv, compacting the
// remaining arguments in place (same contract as ParseThreads). Returns
// `fallback` when the flag is absent or names an unknown backend.
inline std::vector<checker::MonitorBackend> ParseBackends(
    int* argc, char** argv, std::vector<checker::MonitorBackend> fallback) {
  std::vector<char*> keep;
  std::vector<checker::MonitorBackend> out;
  bool valid = true;
  for (int i = 0; i < *argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--backend=", 0) == 0) {
      for (size_t pos = 10; pos < a.size();) {
        size_t end = a.find(',', pos);
        if (end == std::string::npos) end = a.size();
        std::string name = a.substr(pos, end - pos);
        if (name == "progression") {
          out.push_back(checker::MonitorBackend::kProgression);
        } else if (name == "automaton") {
          out.push_back(checker::MonitorBackend::kAutomaton);
        } else {
          valid = false;
        }
        pos = end + 1;
      }
    } else {
      keep.push_back(argv[i]);
    }
  }
  *argc = static_cast<int>(keep.size());
  for (size_t i = 0; i < keep.size(); ++i) argv[i] = keep[i];
  return (out.empty() || !valid) ? fallback : out;
}

inline const char* BackendName(checker::MonitorBackend backend) {
  return backend == checker::MonitorBackend::kProgression ? "progression"
                                                          : "automaton";
}

// Extracts --cohort=on,off from argv, compacting the remaining arguments in
// place (same contract as ParseThreads). Returns `fallback` when the flag is
// absent or names an unknown value.
inline std::vector<bool> ParseCohort(int* argc, char** argv,
                                     std::vector<bool> fallback) {
  std::vector<char*> keep;
  std::vector<bool> out;
  bool valid = true;
  for (int i = 0; i < *argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--cohort=", 0) == 0) {
      for (size_t pos = 9; pos < a.size();) {
        size_t end = a.find(',', pos);
        if (end == std::string::npos) end = a.size();
        std::string name = a.substr(pos, end - pos);
        if (name == "on") {
          out.push_back(true);
        } else if (name == "off") {
          out.push_back(false);
        } else {
          valid = false;
        }
        pos = end + 1;
      }
    } else {
      keep.push_back(argv[i]);
    }
  }
  *argc = static_cast<int>(keep.size());
  for (size_t i = 0; i < keep.size(); ++i) argv[i] = keep[i];
  return (out.empty() || !valid) ? fallback : out;
}

// Reporter for --json=<path>: the normal console table, plus a record file
// written to `path` on exit —
// `{"meta": {git_sha, build_type, telemetry, ..., recorder}, "records":
// [{"name": ...,
// "params": ..., "ns_per_op": ..., "counters": {...}}, ...], "telemetry":
// {flat metrics}}`. The meta header makes BENCH_*.json trajectories
// attributable to a commit and build configuration; the telemetry section is
// the registry snapshot at exit (empty when telemetry was never enabled).
// Records stay deliberately flatter than --benchmark_out=json — downstream
// tooling wants one row per configuration, keyed by the slash-separated
// param string.
class JsonRecordReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonRecordReporter(std::string path) : path_(std::move(path)) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      std::string name = run.benchmark_name();
      size_t slash = name.find('/');
      std::string base = name.substr(0, slash);
      std::string params =
          slash == std::string::npos ? "" : name.substr(slash + 1);
      double ns_per_op =
          run.iterations == 0
              ? 0.0
              : run.real_accumulated_time /
                    static_cast<double>(run.iterations) * 1e9;
      std::string rec = "  {\"name\": \"" + Escape(base) + "\", \"params\": \"" +
                        Escape(params) + "\", \"ns_per_op\": " +
                        Number(ns_per_op) + ", \"counters\": {";
      bool first = true;
      for (const auto& kv : run.counters) {
        if (!first) rec += ", ";
        first = false;
        rec += "\"" + Escape(kv.first) + "\": " + Number(kv.second.value);
      }
      rec += "}}";
      records_.push_back(std::move(rec));
    }
  }

  void Finalize() override {
    benchmark::ConsoleReporter::Finalize();
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open --json path %s\n", path_.c_str());
      return;
    }
    std::string meta = telemetry::BuildInfoJson();
    // Splice the runtime recorder switch into the meta header so recorder
    // on/off BENCH rows are attributable without out-of-band notes.
    size_t close = meta.rfind('}');
    if (close != std::string::npos) {
      meta.insert(close, std::string(", \"recorder\": ") +
                             (telemetry::RecorderActive() ? "true" : "false"));
    }
    std::fputs("{\n\"meta\": ", f);
    std::fputs(meta.c_str(), f);
    std::fputs(",\n\"records\": [\n", f);
    for (size_t i = 0; i < records_.size(); ++i) {
      std::fputs(records_[i].c_str(), f);
      std::fputs(i + 1 < records_.size() ? ",\n" : "\n", f);
    }
    std::fputs("],\n\"telemetry\": ", f);
    std::fputs(telemetry::CollectMetrics().ToJson().c_str(), f);
    std::fputs("\n}\n", f);
    std::fclose(f);
  }

 private:
  static std::string Escape(const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  }

  static std::string Number(double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
  }

  std::string path_;
  std::vector<std::string> records_;
};

// Shared driver: extracts --json=<path>, --trace=<path>, and --telemetry,
// hands the rest to the benchmark library, and runs. --telemetry flips the
// runtime telemetry switch and prints the metrics summary table on exit;
// --trace additionally installs a Chrome trace sink and writes the captured
// events to the given path (loadable in chrome://tracing or Perfetto).
// Benches with dynamic registration call this after registering; static
// benches use TIC_BENCH_MAIN.
inline int RunBenchmarks(int* argc, char** argv) {
  std::string json_path;
  std::string trace_path;
  std::string recorder_dump_path;
  bool telemetry_on = false;
  {
    std::vector<char*> keep;
    for (int i = 0; i < *argc; ++i) {
      std::string a = argv[i];
      if (a.rfind("--json=", 0) == 0) {
        json_path = a.substr(7);
      } else if (a.rfind("--trace=", 0) == 0) {
        trace_path = a.substr(8);
      } else if (a == "--telemetry") {
        telemetry_on = true;
      } else if (a.rfind("--recorder=", 0) == 0) {
        // Flight-recorder runtime switch (recorder on/off overhead benches).
        telemetry::SetRecorderEnabled(a.substr(11) != "off");
      } else if (a.rfind("--recorder-ring=", 0) == 0) {
        // Events per thread ring; smaller rings stay cache-resident and
        // lower the steady-state recording overhead at the cost of history.
        telemetry::SetRecorderRingCapacity(
            static_cast<size_t>(std::strtoull(a.c_str() + 16, nullptr, 10)));
      } else if (a.rfind("--recorder-dump=", 0) == 0) {
        recorder_dump_path = a.substr(16);
      } else {
        keep.push_back(argv[i]);
      }
    }
    *argc = static_cast<int>(keep.size());
    for (size_t i = 0; i < keep.size(); ++i) argv[i] = keep[i];
  }

  std::shared_ptr<telemetry::TraceSink> sink;
  if (!trace_path.empty()) {
    sink = std::make_shared<telemetry::TraceSink>();
    telemetry::SetTraceSink(sink);
  }
  if (telemetry_on || sink != nullptr) telemetry::SetEnabled(true);

  benchmark::Initialize(argc, argv);
  if (benchmark::ReportUnrecognizedArguments(*argc, argv)) return 1;
  if (json_path.empty()) {
    benchmark::RunSpecifiedBenchmarks();
  } else {
    JsonRecordReporter reporter(std::move(json_path));
    benchmark::RunSpecifiedBenchmarks(&reporter);
  }
  benchmark::Shutdown();

  if (sink != nullptr) {
    telemetry::SetTraceSink(nullptr);
    if (!sink->WriteChromeTrace(trace_path)) {
      std::fprintf(stderr, "cannot write --trace path %s\n", trace_path.c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %zu trace events to %s\n", sink->size(),
                 trace_path.c_str());
  }
  if (telemetry_on || sink != nullptr) {
    std::fprintf(stderr, "%s", telemetry::CollectMetrics().SummaryTable().c_str());
  }
  if (!recorder_dump_path.empty()) {
    if (!telemetry::DumpRecorder(recorder_dump_path)) {
      std::fprintf(stderr, "cannot write --recorder-dump path %s\n",
                   recorder_dump_path.c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %zu recorder events (%llu dropped) to %s\n",
                 telemetry::SnapshotRecorder().size(),
                 static_cast<unsigned long long>(telemetry::RecorderDropped()),
                 recorder_dump_path.c_str());
  }
  return 0;
}

#define TIC_BENCH_MAIN()                           \
  int main(int argc, char** argv) {                \
    return ::tic::bench::RunBenchmarks(&argc, argv); \
  }

struct OrdersFixture {
  VocabularyPtr vocab;
  PredicateId sub = 0;
  PredicateId fill = 0;
  std::shared_ptr<fotl::FormulaFactory> factory;
  fotl::Formula submit_once = nullptr;  // forall x (k = 1)
  fotl::Formula fifo = nullptr;         // forall x, y (k = 2)

  OrdersFixture() {
    auto v = std::make_shared<Vocabulary>();
    sub = *v->AddPredicate("Sub", 1);
    fill = *v->AddPredicate("Fill", 1);
    vocab = v;
    factory = std::make_shared<fotl::FormulaFactory>(vocab);
    submit_once =
        *fotl::Parse(factory.get(), "forall x . G (Sub(x) -> X G !Sub(x))");
    fifo = *fotl::Parse(factory.get(),
                        "forall x y . G !(x != y & Sub(x) & ((!Fill(x)) until "
                        "(Sub(y) & ((!Fill(x)) until (Fill(y) & !Fill(x))))))");
  }

  // A history of `length` states over `num_orders` distinct orders, FIFO-
  // consistent: order i is submitted at instant i (mod num_orders when
  // `recycle`) and filled one instant later. Controls |R_D| and t
  // independently. With recycle = false, orders are submitted once only
  // (submit-once stays satisfied); with recycle = true, submissions repeat
  // forever (FIFO stays satisfied, submit-once does not).
  History MakeHistory(size_t length, size_t num_orders, bool recycle = true) const {
    History h = *History::Create(vocab);
    for (size_t t = 0; t < length; ++t) {
      DatabaseState* s = h.AppendEmptyState();
      if (recycle || t < num_orders) {
        Value now = static_cast<Value>(t % num_orders) + 1;
        (void)s->Insert(sub, {now});
      }
      if (t > 0 && (recycle || t <= num_orders)) {
        Value prev = static_cast<Value>((t - 1) % num_orders) + 1;
        (void)s->Insert(fill, {prev});
      }
    }
    return h;
  }

  // A single-state history naming orders 1..n (controls |R_D| with t = 1).
  History MakeWideHistory(size_t n) const {
    History h = *History::Create(vocab);
    DatabaseState* s = h.AppendEmptyState();
    for (size_t i = 1; i <= n; ++i) s->Insert(sub, {static_cast<Value>(i)});
    return h;
  }
};

}  // namespace bench
}  // namespace tic

#endif  // TIC_BENCH_BENCH_COMMON_H_
