// Experiment E5: trigger evaluation via the Section 2 duality. Per-update cost
// = (#substitutions = |R_D|^params) x (one universal extension check each), so
// throughput degrades polynomially in |R_D| per parameter.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "checker/trigger.h"

namespace tic {
namespace {

bench::OrdersFixture& Fixture() {
  static bench::OrdersFixture* f = new bench::OrdersFixture();
  return *f;
}

// One-parameter trigger over a growing relevant set.
void BM_Trigger_OneParam(benchmark::State& state) {
  auto& fx = Fixture();
  size_t n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto mgr = *checker::TriggerManager::Create(fx.factory);
    // "Order x was submitted and is certain to be resubmitted."
    auto st = mgr->AddTrigger(
        "dup", *fotl::Parse(fx.factory.get(), "F (Sub(x) & X F Sub(x))"));
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    Transaction txn;
    for (size_t i = 1; i <= n; ++i) {
      txn.push_back(UpdateOp::Insert(fx.sub, {static_cast<Value>(i)}));
    }
    state.ResumeTiming();
    auto firings = mgr->OnTransaction(txn);
    if (!firings.ok()) state.SkipWithError(firings.status().ToString().c_str());
    benchmark::DoNotOptimize(firings->size());
  }
  state.counters["relevant"] = static_cast<double>(n);
  state.counters["substitutions"] = static_cast<double>(n);
}
BENCHMARK(BM_Trigger_OneParam)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

// Two-parameter trigger: |R_D|^2 substitutions.
void BM_Trigger_TwoParams(benchmark::State& state) {
  auto& fx = Fixture();
  size_t n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto mgr = *checker::TriggerManager::Create(fx.factory);
    auto st = mgr->AddTrigger(
        "pair", *fotl::Parse(fx.factory.get(),
                             "x != y & Sub(x) & Sub(y) & F (Fill(x) & Fill(y))"));
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    Transaction txn;
    for (size_t i = 1; i <= n; ++i) {
      txn.push_back(UpdateOp::Insert(fx.sub, {static_cast<Value>(i)}));
    }
    state.ResumeTiming();
    auto firings = mgr->OnTransaction(txn);
    if (!firings.ok()) state.SkipWithError(firings.status().ToString().c_str());
    benchmark::DoNotOptimize(firings->size());
  }
  state.counters["substitutions"] = static_cast<double>(n * n);
}
BENCHMARK(BM_Trigger_TwoParams)->Arg(2)->Arg(4)->Arg(8);

// A firing trigger (condition unavoidable) vs a quiet one on the same stream.
void BM_Trigger_FiringStream(benchmark::State& state) {
  auto& fx = Fixture();
  for (auto _ : state) {
    state.PauseTiming();
    auto mgr = *checker::TriggerManager::Create(fx.factory);
    auto st = mgr->AddTrigger(
        "dup", *fotl::Parse(fx.factory.get(), "F (Sub(x) & X F Sub(x))"));
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    state.ResumeTiming();
    size_t total_firings = 0;
    // submit 1..4, retract, resubmit: every order eventually fires.
    for (Value v = 1; v <= 4; ++v) {
      auto f1 = mgr->OnTransaction({UpdateOp::Insert(fx.sub, {v})});
      auto f2 = mgr->OnTransaction({UpdateOp::Delete(fx.sub, {v})});
      auto f3 = mgr->OnTransaction({UpdateOp::Insert(fx.sub, {v})});
      if (!f1.ok() || !f2.ok() || !f3.ok()) state.SkipWithError("txn failed");
      total_firings += f1->size() + f2->size() + f3->size();
    }
    benchmark::DoNotOptimize(total_firings);
  }
}
BENCHMARK(BM_Trigger_FiringStream);

}  // namespace
}  // namespace tic
