// Experiment E5: trigger evaluation via the Section 2 duality. Per-update cost
// = (#substitutions = |R_D|^params) x (one universal extension check each), so
// throughput degrades polynomially in |R_D| per parameter.
//
// Custom main: pass --threads=1,2,4 (default) to sweep the manager's worker
// count; the (trigger, substitution) jobs are independent and run on the
// pool. Substitutions over symmetric elements share one canonical tableau
// verdict, so the cache hit counters reported here should be nonzero.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "checker/trigger.h"
#include "ptl/verdict_cache.h"

namespace tic {
namespace {

bench::OrdersFixture& Fixture() {
  static bench::OrdersFixture* f = new bench::OrdersFixture();
  return *f;
}

checker::CheckOptions WithThreads(size_t threads,
                                  checker::MonitorBackend backend) {
  checker::CheckOptions opts;
  opts.threads = threads;
  opts.backend = backend;
  return opts;
}

void ReportCacheCounters(benchmark::State& state,
                         const checker::TriggerManager& mgr) {
  if (mgr.options().tableau.verdict_cache != nullptr) {
    ptl::VerdictCacheStats s = mgr.options().tableau.verdict_cache->stats();
    state.counters["cache_hits"] = static_cast<double>(s.hits);
    state.counters["cache_misses"] = static_cast<double>(s.misses);
  }
  if (mgr.options().automaton_cache != nullptr) {
    // Compiled-automaton sharing across substitutions (renaming-invariant
    // key): one compile per trigger pattern shape, hits for the rest.
    ptl::AutomatonCacheStats a = mgr.options().automaton_cache->stats();
    state.counters["auto_hits"] = static_cast<double>(a.hits);
    state.counters["auto_misses"] = static_cast<double>(a.misses);
  }
}

// One-parameter trigger over a growing relevant set.
void BM_Trigger_OneParam(benchmark::State& state, size_t threads,
                         checker::MonitorBackend backend) {
  auto& fx = Fixture();
  size_t n = static_cast<size_t>(state.range(0));
  std::unique_ptr<checker::TriggerManager> mgr;
  for (auto _ : state) {
    state.PauseTiming();
    mgr = *checker::TriggerManager::Create(fx.factory, {},
                                           WithThreads(threads, backend));
    // "Order x was submitted and is certain to be resubmitted."
    auto st = mgr->AddTrigger(
        "dup", *fotl::Parse(fx.factory.get(), "F (Sub(x) & X F Sub(x))"));
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    Transaction txn;
    for (size_t i = 1; i <= n; ++i) {
      txn.push_back(UpdateOp::Insert(fx.sub, {static_cast<Value>(i)}));
    }
    state.ResumeTiming();
    auto firings = mgr->OnTransaction(txn);
    if (!firings.ok()) state.SkipWithError(firings.status().ToString().c_str());
    benchmark::DoNotOptimize(firings->size());
  }
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["relevant"] = static_cast<double>(n);
  state.counters["substitutions"] = static_cast<double>(n);
  if (mgr != nullptr) ReportCacheCounters(state, *mgr);
}

// Two-parameter trigger: |R_D|^2 substitutions.
void BM_Trigger_TwoParams(benchmark::State& state, size_t threads,
                          checker::MonitorBackend backend) {
  auto& fx = Fixture();
  size_t n = static_cast<size_t>(state.range(0));
  std::unique_ptr<checker::TriggerManager> mgr;
  for (auto _ : state) {
    state.PauseTiming();
    mgr = *checker::TriggerManager::Create(fx.factory, {},
                                           WithThreads(threads, backend));
    auto st = mgr->AddTrigger(
        "pair", *fotl::Parse(fx.factory.get(),
                             "x != y & Sub(x) & Sub(y) & F (Fill(x) & Fill(y))"));
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    Transaction txn;
    for (size_t i = 1; i <= n; ++i) {
      txn.push_back(UpdateOp::Insert(fx.sub, {static_cast<Value>(i)}));
    }
    state.ResumeTiming();
    auto firings = mgr->OnTransaction(txn);
    if (!firings.ok()) state.SkipWithError(firings.status().ToString().c_str());
    benchmark::DoNotOptimize(firings->size());
  }
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["substitutions"] = static_cast<double>(n * n);
  if (mgr != nullptr) ReportCacheCounters(state, *mgr);
}

// A firing trigger (condition unavoidable) vs a quiet one on the same stream.
void BM_Trigger_FiringStream(benchmark::State& state) {
  auto& fx = Fixture();
  for (auto _ : state) {
    state.PauseTiming();
    auto mgr = *checker::TriggerManager::Create(fx.factory);
    auto st = mgr->AddTrigger(
        "dup", *fotl::Parse(fx.factory.get(), "F (Sub(x) & X F Sub(x))"));
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    state.ResumeTiming();
    size_t total_firings = 0;
    // submit 1..4, retract, resubmit: every order eventually fires.
    for (Value v = 1; v <= 4; ++v) {
      auto f1 = mgr->OnTransaction({UpdateOp::Insert(fx.sub, {v})});
      auto f2 = mgr->OnTransaction({UpdateOp::Delete(fx.sub, {v})});
      auto f3 = mgr->OnTransaction({UpdateOp::Insert(fx.sub, {v})});
      if (!f1.ok() || !f2.ok() || !f3.ok()) state.SkipWithError("txn failed");
      total_firings += f1->size() + f2->size() + f3->size();
    }
    benchmark::DoNotOptimize(total_firings);
  }
}

void RegisterAll(const std::vector<size_t>& thread_counts,
                 const std::vector<checker::MonitorBackend>& backends) {
  for (checker::MonitorBackend backend : backends) {
    for (size_t threads : thread_counts) {
      std::string suffix = std::string("/backend:") +
                           bench::BackendName(backend) +
                           "/threads:" + std::to_string(threads);
      benchmark::RegisterBenchmark(
          ("BM_Trigger_OneParam" + suffix).c_str(),
          [threads, backend](benchmark::State& s) {
            BM_Trigger_OneParam(s, threads, backend);
          })
          ->Arg(2)
          ->Arg(4)
          ->Arg(8)
          ->Arg(16)
          ->Arg(32);
      benchmark::RegisterBenchmark(
          ("BM_Trigger_TwoParams" + suffix).c_str(),
          [threads, backend](benchmark::State& s) {
            BM_Trigger_TwoParams(s, threads, backend);
          })
          ->Arg(2)
          ->Arg(4)
          ->Arg(8);
    }
  }
  benchmark::RegisterBenchmark("BM_Trigger_FiringStream", BM_Trigger_FiringStream);
}

}  // namespace
}  // namespace tic

int main(int argc, char** argv) {
  std::vector<size_t> threads = tic::bench::ParseThreads(&argc, argv, {1, 2, 4});
  std::vector<tic::checker::MonitorBackend> backends = tic::bench::ParseBackends(
      &argc, argv,
      {tic::checker::MonitorBackend::kAutomaton,
       tic::checker::MonitorBackend::kProgression});
  tic::RegisterAll(threads, backends);
  return tic::bench::RunBenchmarks(&argc, argv);
}
