// Experiment E7: cost and size of the Section 3 constructions — the appendix
// formula phi and the W-relativized phi-tilde — as the machine grows. The
// theory predicts polynomial sizes in |Q| x |Sigma| (the reduction is
// effective and cheap; it is the *decision problem* that is hard).

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

#include "tm/formulas.h"

namespace tic {
namespace {

// A chain machine with n working states: q0 marks, then walks right through
// q1..q_{n-1}, looping forever (never returning). Scales |Q| while keeping
// |Sigma| fixed.
Result<tm::TuringMachine> MakeChainMachine(size_t n) {
  std::vector<std::string> names;
  for (size_t i = 0; i < n; ++i) names.push_back("q" + std::to_string(i));
  TIC_ASSIGN_OR_RETURN(tm::TuringMachine m,
                       tm::TuringMachine::Create(names, {'0', '1', 'B'}));
  for (size_t i = 0; i < n; ++i) {
    uint32_t next = static_cast<uint32_t>((i + 1) % n);
    for (char c : {'0', '1', 'B'}) {
      TIC_RETURN_NOT_OK(m.AddTransition(static_cast<uint32_t>(i), c, next, c,
                                        tm::Dir::kRight));
    }
  }
  return m;
}

void BM_BuildPhi(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  tm::TuringMachine machine = *MakeChainMachine(n);
  tm::TmEncoding enc = *tm::TmEncoding::Create(&machine);
  uint64_t size = 0;
  for (auto _ : state) {
    auto f = tm::BuildPhi(enc);
    if (!f.ok()) state.SkipWithError(f.status().ToString().c_str());
    size = f->phi->size();
    benchmark::DoNotOptimize(f->phi);
  }
  state.counters["states"] = static_cast<double>(n);
  state.counters["transitions"] = static_cast<double>(machine.transitions().size());
  state.counters["phi_size"] = static_cast<double>(size);
}
BENCHMARK(BM_BuildPhi)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_BuildPhiTilde(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  tm::TuringMachine machine = *MakeChainMachine(n);
  tm::TmEncoding enc = *tm::TmEncoding::Create(&machine, /*with_w=*/true);
  uint64_t size = 0;
  for (auto _ : state) {
    auto f = tm::BuildPhiTilde(enc);
    if (!f.ok()) state.SkipWithError(f.status().ToString().c_str());
    size = f->phi_tilde->size();
    benchmark::DoNotOptimize(f->phi_tilde);
  }
  state.counters["states"] = static_cast<double>(n);
  state.counters["phi_tilde_size"] = static_cast<double>(size);
}
BENCHMARK(BM_BuildPhiTilde)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_EncodeComputation(benchmark::State& state) {
  size_t steps = static_cast<size_t>(state.range(0));
  tm::TuringMachine machine = *tm::MakeBinaryCounterMachine();
  tm::TmEncoding enc = *tm::TmEncoding::Create(&machine);
  for (auto _ : state) {
    auto h = enc.EncodeComputation("", steps);
    if (!h.ok()) state.SkipWithError(h.status().ToString().c_str());
    benchmark::DoNotOptimize(h->length());
  }
  state.SetComplexityN(static_cast<int64_t>(steps));
}
BENCHMARK(BM_EncodeComputation)
    ->RangeMultiplier(4)
    ->Range(16, 4096)
    ->Complexity(benchmark::oNSquared);

}  // namespace
}  // namespace tic

TIC_BENCH_MAIN()
