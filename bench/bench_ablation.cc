// Ablation study (DESIGN.md): how much each tableau engineering choice buys.
// Three switches: the safety fast path (lazy DFS instead of the full graph),
// branch subsumption, and branching deferral. The workload is the checker's
// own residuals (grounded FIFO) plus literal-mode Axiom_D satisfiability —
// the two places the optimizations were designed for.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "checker/extension.h"
#include "checker/grounding.h"
#include "ptl/progress.h"
#include "ptl/tableau.h"

namespace tic {
namespace {

bench::OrdersFixture& Fixture() {
  static bench::OrdersFixture* f = new bench::OrdersFixture();
  return *f;
}

// Prepares the residual of the FIFO constraint over an n-order history, to be
// solved with different tableau configurations.
struct PreparedResidual {
  std::shared_ptr<ptl::Factory> factory;
  ptl::Formula residual;
};

PreparedResidual PrepareFifoResidual(size_t n) {
  auto& fx = Fixture();
  History h = fx.MakeHistory(2 * n, n, /*recycle=*/false);
  auto g = checker::GroundUniversal(*fx.factory, fx.fifo, h);
  PreparedResidual out;
  out.factory = g->prop_factory;
  out.residual = *ptl::ProgressThroughWord(g->prop_factory.get(), g->phi_d, g->word);
  return out;
}

void RunConfig(benchmark::State& state, bool fast_path, bool subsumption,
               bool defer) {
  size_t n = static_cast<size_t>(state.range(0));
  PreparedResidual prep = PrepareFifoResidual(n);
  ptl::TableauOptions opts;
  opts.use_safety_fast_path = fast_path;
  opts.use_subsumption = subsumption;
  opts.defer_branching = defer;
  opts.max_states = 1u << 16;
  opts.max_expansions = 1u << 20;  // fail fast if a config explodes
  ptl::TableauStats stats;
  for (auto _ : state) {
    auto res = ptl::CheckSat(prep.factory.get(), prep.residual, opts);
    if (!res.ok()) {
      state.SkipWithError(res.status().ToString().c_str());
      return;
    }
    stats = res->stats;
    benchmark::DoNotOptimize(res->satisfiable);
  }
  state.counters["tableau_states"] = static_cast<double>(stats.num_states);
  state.counters["expansions"] = static_cast<double>(stats.num_expansions);
}

void BM_Ablation_AllOn(benchmark::State& state) { RunConfig(state, true, true, true); }
BENCHMARK(BM_Ablation_AllOn)->Arg(2)->Arg(4)->Arg(6);

void BM_Ablation_NoFastPath(benchmark::State& state) {
  RunConfig(state, false, true, true);
}
BENCHMARK(BM_Ablation_NoFastPath)->Arg(2)->Arg(4)->Arg(6);

void BM_Ablation_NoSubsumption(benchmark::State& state) {
  RunConfig(state, true, false, true);
}
BENCHMARK(BM_Ablation_NoSubsumption)->Arg(2)->Arg(4)->Arg(6);

void BM_Ablation_NoDeferral(benchmark::State& state) {
  RunConfig(state, true, true, false);
}
BENCHMARK(BM_Ablation_NoDeferral)->Arg(2)->Arg(4)->Arg(6);

// Literal-mode Axiom_D satisfiability: the workload that motivated deferral +
// subsumption (the diagram literals must prune the equivalence schemas).
void RunLiteralConfig(benchmark::State& state, bool subsumption, bool defer) {
  auto& fx = Fixture();
  History h = fx.MakeWideHistory(1);
  checker::GroundingOptions gopts;
  gopts.mode = checker::GroundingMode::kLiteral;
  auto g = checker::GroundUniversal(*fx.factory, fx.submit_once, h, {}, gopts);
  auto residual =
      *ptl::ProgressThroughWord(g->prop_factory.get(), g->phi_d, g->word);
  ptl::TableauOptions opts;
  opts.use_subsumption = subsumption;
  opts.defer_branching = defer;
  opts.max_states = 1u << 16;
  opts.max_expansions = 1u << 20;
  for (auto _ : state) {
    auto res = ptl::CheckSat(g->prop_factory.get(), residual, opts);
    if (!res.ok()) {
      state.SkipWithError(res.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(res->satisfiable);
  }
}

void BM_Ablation_Literal_AllOn(benchmark::State& state) {
  RunLiteralConfig(state, true, true);
}
BENCHMARK(BM_Ablation_Literal_AllOn);

void BM_Ablation_Literal_NoSubsumption(benchmark::State& state) {
  RunLiteralConfig(state, false, true);
}
BENCHMARK(BM_Ablation_Literal_NoSubsumption);

void BM_Ablation_Literal_NoDeferral(benchmark::State& state) {
  RunLiteralConfig(state, true, false);
}
BENCHMARK(BM_Ablation_Literal_NoDeferral);

}  // namespace
}  // namespace tic
