// Ablation study (DESIGN.md): how much each tableau engineering choice buys.
// Axes: the engine itself (legacy recursive walker vs the closure-indexed
// bitset kernel, A1 in EXPERIMENTS.md), the safety fast path (lazy DFS
// instead of the full graph), branch subsumption, and branching deferral
// (legacy only — the bitset worklist defers inherently). The workload is the
// checker's own residuals (grounded FIFO) plus literal-mode Axiom_D
// satisfiability — the places the optimizations were designed for.
//
// Custom main: pass --engine=legacy,bitset (default: both) to pick engines,
// --json=<path> for machine-readable records.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "checker/extension.h"
#include "checker/grounding.h"
#include "ptl/progress.h"
#include "ptl/tableau.h"

namespace tic {
namespace {

bench::OrdersFixture& Fixture() {
  static bench::OrdersFixture* f = new bench::OrdersFixture();
  return *f;
}

// Prepares the residual of the FIFO constraint over an n-order history, to be
// solved with different tableau configurations.
struct PreparedResidual {
  std::shared_ptr<ptl::Factory> factory;
  ptl::Formula residual;
};

PreparedResidual PrepareFifoResidual(size_t n) {
  auto& fx = Fixture();
  History h = fx.MakeHistory(2 * n, n, /*recycle=*/false);
  auto g = checker::GroundUniversal(*fx.factory, fx.fifo, h);
  PreparedResidual out;
  out.factory = g->prop_factory;
  out.residual = *ptl::ProgressThroughWord(g->prop_factory.get(), g->phi_d, g->word);
  return out;
}

void RunConfig(benchmark::State& state, ptl::TableauEngine engine,
               bool fast_path, bool subsumption, bool defer) {
  size_t n = static_cast<size_t>(state.range(0));
  PreparedResidual prep = PrepareFifoResidual(n);
  ptl::TableauOptions opts;
  opts.engine = engine;
  opts.use_safety_fast_path = fast_path;
  opts.use_subsumption = subsumption;
  opts.defer_branching = defer;
  opts.max_states = 1u << 16;
  opts.max_expansions = 1u << 20;  // fail fast if a config explodes
  ptl::TableauStats stats;
  for (auto _ : state) {
    auto res = ptl::CheckSat(prep.factory.get(), prep.residual, opts);
    if (!res.ok()) {
      state.SkipWithError(res.status().ToString().c_str());
      return;
    }
    stats = res->stats;
    benchmark::DoNotOptimize(res->satisfiable);
  }
  state.counters["tableau_states"] = static_cast<double>(stats.num_states);
  state.counters["expansions"] = static_cast<double>(stats.num_expansions);
}

// Literal-mode Axiom_D satisfiability: the workload that motivated deferral +
// subsumption (the diagram literals must prune the equivalence schemas).
void RunLiteralConfig(benchmark::State& state, ptl::TableauEngine engine,
                      bool subsumption, bool defer) {
  auto& fx = Fixture();
  History h = fx.MakeWideHistory(1);
  checker::GroundingOptions gopts;
  gopts.mode = checker::GroundingMode::kLiteral;
  auto g = checker::GroundUniversal(*fx.factory, fx.submit_once, h, {}, gopts);
  auto residual =
      *ptl::ProgressThroughWord(g->prop_factory.get(), g->phi_d, g->word);
  ptl::TableauOptions opts;
  opts.engine = engine;
  opts.use_subsumption = subsumption;
  opts.defer_branching = defer;
  opts.max_states = 1u << 16;
  opts.max_expansions = 1u << 20;
  for (auto _ : state) {
    auto res = ptl::CheckSat(g->prop_factory.get(), residual, opts);
    if (!res.ok()) {
      state.SkipWithError(res.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(res->satisfiable);
  }
}

void RegisterAll(const std::vector<ptl::TableauEngine>& engines) {
  struct Config {
    const char* name;
    bool fast_path, subsumption, defer;
  };
  const Config kConfigs[] = {
      {"BM_Ablation_AllOn", true, true, true},
      {"BM_Ablation_NoFastPath", false, true, true},
      {"BM_Ablation_NoSubsumption", true, false, true},
      {"BM_Ablation_NoDeferral", true, true, false},
  };
  for (ptl::TableauEngine engine : engines) {
    std::string suffix = std::string("/engine:") + bench::EngineName(engine);
    for (const Config& c : kConfigs) {
      benchmark::RegisterBenchmark(
          (c.name + suffix).c_str(),
          [engine, c](benchmark::State& s) {
            RunConfig(s, engine, c.fast_path, c.subsumption, c.defer);
          })
          ->Arg(2)
          ->Arg(4)
          ->Arg(6);
    }
    benchmark::RegisterBenchmark(
        ("BM_Ablation_Literal_AllOn" + suffix).c_str(),
        [engine](benchmark::State& s) { RunLiteralConfig(s, engine, true, true); });
    benchmark::RegisterBenchmark(
        ("BM_Ablation_Literal_NoSubsumption" + suffix).c_str(),
        [engine](benchmark::State& s) { RunLiteralConfig(s, engine, false, true); });
    benchmark::RegisterBenchmark(
        ("BM_Ablation_Literal_NoDeferral" + suffix).c_str(),
        [engine](benchmark::State& s) { RunLiteralConfig(s, engine, true, false); });
  }
}

}  // namespace
}  // namespace tic

int main(int argc, char** argv) {
  std::vector<tic::ptl::TableauEngine> engines = tic::bench::ParseEngines(
      &argc, argv,
      {tic::ptl::TableauEngine::kLegacy, tic::ptl::TableauEngine::kBitset});
  tic::RegisterAll(engines);
  return tic::bench::RunBenchmarks(&argc, argv);
}
