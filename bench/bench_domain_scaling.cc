// Experiment E1 (EXPERIMENTS.md): runtime of the Theorem 4.2 decision
// procedure as a function of the relevant-set size |R_D|, for k = 1 (submit
// once) and k = 2 (FIFO). The theory predicts growth like
// (|phi| * |R_D|)^max(k, l) for grounding plus 2^O(...) for satisfiability —
// |R_D| sits in the exponent (Section 6 argues it cannot be removed).

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "checker/extension.h"

namespace tic {
namespace {

bench::OrdersFixture& Fixture() {
  static bench::OrdersFixture* f = new bench::OrdersFixture();
  return *f;
}

void BM_SubmitOnce_DomainSweep(benchmark::State& state) {
  auto& fx = Fixture();
  size_t n = static_cast<size_t>(state.range(0));
  History h = fx.MakeWideHistory(n);
  checker::CheckResult last;
  for (auto _ : state) {
    auto res = checker::CheckPotentialSatisfaction(*fx.factory, fx.submit_once, h);
    if (!res.ok()) state.SkipWithError(res.status().ToString().c_str());
    last = *res;
    benchmark::DoNotOptimize(last.potentially_satisfied);
  }
  state.counters["relevant"] = static_cast<double>(last.grounding_stats.relevant_size);
  state.counters["instances"] = static_cast<double>(last.grounding_stats.num_instances);
  state.counters["phi_d_size"] = static_cast<double>(last.grounding_stats.phi_d_size);
  state.counters["tableau_states"] =
      static_cast<double>(last.tableau_stats.num_states);
  state.counters["satisfied"] = last.potentially_satisfied ? 1 : 0;
}
BENCHMARK(BM_SubmitOnce_DomainSweep)->DenseRange(1, 9, 2)->Arg(16)->Arg(32)->Arg(64);

void BM_Fifo_DomainSweep(benchmark::State& state) {
  auto& fx = Fixture();
  size_t n = static_cast<size_t>(state.range(0));
  // FIFO-consistent history over n orders (length 2n: each submitted, filled).
  History h = fx.MakeHistory(2 * n, n, /*recycle=*/false);
  checker::CheckResult last;
  for (auto _ : state) {
    auto res = checker::CheckPotentialSatisfaction(*fx.factory, fx.fifo, h);
    if (!res.ok()) state.SkipWithError(res.status().ToString().c_str());
    last = *res;
    benchmark::DoNotOptimize(last.potentially_satisfied);
  }
  state.counters["relevant"] = static_cast<double>(last.grounding_stats.relevant_size);
  state.counters["instances"] = static_cast<double>(last.grounding_stats.num_instances);
  state.counters["phi_d_size"] = static_cast<double>(last.grounding_stats.phi_d_size);
  state.counters["tableau_states"] =
      static_cast<double>(last.tableau_stats.num_states);
  state.counters["satisfied"] = last.potentially_satisfied ? 1 : 0;
}
BENCHMARK(BM_Fifo_DomainSweep)->DenseRange(1, 9, 2)->Arg(12)->Arg(16);

// The violating variant: once the residual collapses, phase 2 is skipped —
// violations are *cheaper* to certify than satisfaction.
void BM_SubmitOnce_Violated(benchmark::State& state) {
  auto& fx = Fixture();
  size_t n = static_cast<size_t>(state.range(0));
  History h = fx.MakeWideHistory(n);
  DatabaseState* s = *h.AppendCopyOfLast();  // every order resubmitted
  (void)s;
  for (auto _ : state) {
    auto res = checker::CheckPotentialSatisfaction(*fx.factory, fx.submit_once, h);
    if (!res.ok()) state.SkipWithError(res.status().ToString().c_str());
    benchmark::DoNotOptimize(res->permanently_violated);
  }
}
BENCHMARK(BM_SubmitOnce_Violated)->Arg(4)->Arg(16)->Arg(64);

}  // namespace
}  // namespace tic

TIC_BENCH_MAIN()
