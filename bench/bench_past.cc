// Experiment E10: the Past FOTL baseline in isolation — per-update cost as a
// function of history length (flat: the history-less property, Proposition
// 2.1's G-past constraints are linear-time checkable) and of the relevant-set
// size (polynomial: auxiliary tables are |M|^vars).

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "past/past_monitor.h"

namespace tic {
namespace {

bench::OrdersFixture& Fixture() {
  static bench::OrdersFixture* f = new bench::OrdersFixture();
  return *f;
}

Transaction CycleTxn(const bench::OrdersFixture& fx, size_t t, size_t n) {
  Transaction txn;
  txn.push_back(UpdateOp::Insert(fx.sub, {static_cast<Value>(t % n) + 1}));
  if (t > 0) {
    txn.push_back(UpdateOp::Insert(fx.fill, {static_cast<Value>((t - 1) % n) + 1}));
    txn.push_back(UpdateOp::Delete(fx.sub, {static_cast<Value>((t - 1) % n) + 1}));
    if (t > 1) {
      txn.push_back(UpdateOp::Delete(fx.fill, {static_cast<Value>((t - 2) % n) + 1}));
    }
  }
  return txn;
}

// Per-update cost after histories of very different lengths: must be flat.
void BM_Past_HistoryIndependence(benchmark::State& state) {
  auto& fx = Fixture();
  size_t warmup = static_cast<size_t>(state.range(0));
  static fotl::Formula policy = *fotl::Parse(
      fx.factory.get(), "forall x . G (Fill(x) -> O Sub(x))");
  auto monitor = *past::PastMonitor::Create(fx.factory, policy);
  size_t t = 0;
  for (size_t i = 0; i < warmup; ++i) {
    auto v = monitor->ApplyTransaction(CycleTxn(fx, t++, 4));
    if (!v.ok()) {
      state.SkipWithError(v.status().ToString().c_str());
      return;
    }
  }
  for (auto _ : state) {
    auto v = monitor->ApplyTransaction(CycleTxn(fx, t++, 4));
    if (!v.ok()) {
      state.SkipWithError(v.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(v->satisfied);
  }
  state.counters["start_length"] = static_cast<double>(warmup);
  state.counters["aux_state"] = static_cast<double>(monitor->AuxiliaryStateSize());
}
BENCHMARK(BM_Past_HistoryIndependence)->Arg(0)->Arg(64)->Arg(512)->Arg(4096);

// Per-update cost vs relevant-set size (table width |M|^vars).
void BM_Past_DomainSweep(benchmark::State& state) {
  auto& fx = Fixture();
  size_t n = static_cast<size_t>(state.range(0));
  static fotl::Formula policy = *fotl::Parse(
      fx.factory.get(), "forall x . G (Fill(x) -> O Sub(x))");
  auto monitor = *past::PastMonitor::Create(fx.factory, policy);
  size_t t = 0;
  for (size_t i = 0; i < n + 2; ++i) {
    auto v = monitor->ApplyTransaction(CycleTxn(fx, t++, n));
    if (!v.ok()) {
      state.SkipWithError(v.status().ToString().c_str());
      return;
    }
  }
  for (auto _ : state) {
    auto v = monitor->ApplyTransaction(CycleTxn(fx, t++, n));
    if (!v.ok()) {
      state.SkipWithError(v.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(v->satisfied);
  }
  state.counters["orders"] = static_cast<double>(n);
  state.counters["aux_state"] = static_cast<double>(monitor->AuxiliaryStateSize());
}
BENCHMARK(BM_Past_DomainSweep)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

// A two-variable past constraint: quadratic tables.
void BM_Past_TwoVarTables(benchmark::State& state) {
  auto& fx = Fixture();
  size_t n = static_cast<size_t>(state.range(0));
  static fotl::Formula policy = *fotl::Parse(
      fx.factory.get(),
      "forall x y . G ((Fill(x) & Fill(y)) -> x = y | O (Sub(x) & Sub(y)))");
  auto monitor = *past::PastMonitor::Create(fx.factory, policy);
  size_t t = 0;
  for (size_t i = 0; i < n + 2; ++i) {
    auto v = monitor->ApplyTransaction(CycleTxn(fx, t++, n));
    if (!v.ok()) {
      state.SkipWithError(v.status().ToString().c_str());
      return;
    }
  }
  for (auto _ : state) {
    auto v = monitor->ApplyTransaction(CycleTxn(fx, t++, n));
    if (!v.ok()) {
      state.SkipWithError(v.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(v->satisfied);
  }
  state.counters["aux_state"] = static_cast<double>(monitor->AuxiliaryStateSize());
}
BENCHMARK(BM_Past_TwoVarTables)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

}  // namespace
}  // namespace tic

TIC_BENCH_MAIN()
