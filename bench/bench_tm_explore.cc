// Experiment E8: bounded exploration of the repeating-behaviour problem
// (Theorem 3.1's semi-decision structure). Qualitative shape: origin-visit
// counts grow without bound only for genuinely repeating machines; halting
// machines are refuted instantly; non-returning machines stay undecided at
// one visit no matter the budget. The dovetailing schema of Lemma 3.1 shows
// the same trichotomy at the relation level.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

#include "tm/explorer.h"

namespace tic {
namespace {

void BM_Explore_Shuttle(benchmark::State& state) {
  tm::TuringMachine m = *tm::MakeShuttleMachine();
  size_t budget = static_cast<size_t>(state.range(0));
  size_t visits = 0;
  for (auto _ : state) {
    auto r = tm::ExploreRepeating(m, "0101", budget);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    visits = r->origin_visits;
    benchmark::DoNotOptimize(visits);
  }
  state.counters["budget"] = static_cast<double>(budget);
  state.counters["origin_visits"] = static_cast<double>(visits);
}
BENCHMARK(BM_Explore_Shuttle)->RangeMultiplier(4)->Range(256, 262144);

void BM_Explore_BinaryCounter(benchmark::State& state) {
  tm::TuringMachine m = *tm::MakeBinaryCounterMachine();
  size_t budget = static_cast<size_t>(state.range(0));
  size_t visits = 0;
  for (auto _ : state) {
    auto r = tm::ExploreRepeating(m, "", budget);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    visits = r->origin_visits;
    benchmark::DoNotOptimize(visits);
  }
  state.counters["budget"] = static_cast<double>(budget);
  state.counters["origin_visits"] = static_cast<double>(visits);
}
BENCHMARK(BM_Explore_BinaryCounter)->RangeMultiplier(4)->Range(256, 262144);

void BM_Explore_RightWalker(benchmark::State& state) {
  tm::TuringMachine m = *tm::MakeRightWalkerMachine();
  size_t budget = static_cast<size_t>(state.range(0));
  size_t visits = 0;
  for (auto _ : state) {
    auto r = tm::ExploreRepeating(m, "01", budget);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    visits = r->origin_visits;  // stays 1 forever: undecided, not refuted
    benchmark::DoNotOptimize(visits);
  }
  state.counters["budget"] = static_cast<double>(budget);
  state.counters["origin_visits"] = static_cast<double>(visits);
}
BENCHMARK(BM_Explore_RightWalker)->RangeMultiplier(4)->Range(256, 262144);

void BM_Explore_Halting(benchmark::State& state) {
  tm::TuringMachine m = *tm::MakeImmediateHaltMachine();
  for (auto _ : state) {
    auto r = tm::ExploreRepeating(m, "0101", 1u << 20);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r->verdict);  // refuted in O(1)
  }
}
BENCHMARK(BM_Explore_Halting);

// Lemma 3.1 schema: probes-per-visit reflects witness sparsity.
void BM_Dovetail(benchmark::State& state) {
  uint64_t sparsity = static_cast<uint64_t>(state.range(0));
  uint64_t visits = 0;
  for (auto _ : state) {
    tm::DovetailingMachine m(
        [sparsity](const std::string&, uint64_t v, uint64_t u) {
          return u == sparsity * v;
        },
        "w");
    m.Run(100000);
    visits = m.progress().origin_visits;
    benchmark::DoNotOptimize(visits);
  }
  state.counters["witness_sparsity"] = static_cast<double>(sparsity);
  state.counters["visits_per_100k_probes"] = static_cast<double>(visits);
}
BENCHMARK(BM_Dovetail)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

}  // namespace
}  // namespace tic

TIC_BENCH_MAIN()
