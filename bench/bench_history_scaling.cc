// Experiment E2: runtime as a function of the history length t with the
// relevant set held fixed. Lemma 4.2 phase 1 is O(t * |phi_D|); phase 2 does
// not depend on t at all, so total time must grow linearly in t. The
// incremental monitor turns that into O(|phi_D|) amortized per update.
//
// Custom main: pass --threads=1,2,4 (default) to sweep the monitor's worker
// count; progression classes are progressed on the pool, verdicts are
// identical across thread counts by construction.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "checker/extension.h"
#include "checker/monitor.h"

namespace tic {
namespace {

bench::OrdersFixture& Fixture() {
  static bench::OrdersFixture* f = new bench::OrdersFixture();
  return *f;
}

// Batch re-check of the whole history: linear in t.
void BM_Fifo_HistorySweep(benchmark::State& state) {
  auto& fx = Fixture();
  size_t t = static_cast<size_t>(state.range(0));
  History h = fx.MakeHistory(t, /*num_orders=*/4, /*recycle=*/true);
  checker::CheckResult last;
  for (auto _ : state) {
    auto res = checker::CheckPotentialSatisfaction(*fx.factory, fx.fifo, h);
    if (!res.ok()) state.SkipWithError(res.status().ToString().c_str());
    last = *res;
    benchmark::DoNotOptimize(last.potentially_satisfied);
  }
  state.counters["t"] = static_cast<double>(t);
  state.counters["relevant"] = static_cast<double>(last.grounding_stats.relevant_size);
  state.counters["residual_size"] = static_cast<double>(last.residual_size);
  state.counters["satisfied"] = last.potentially_satisfied ? 1 : 0;
  state.SetComplexityN(static_cast<int64_t>(t));
}

// Incremental monitoring: per-update cost stays flat as the history grows.
// `threads` sizes the pool progressing deduplicated residual classes (the
// automaton backend's steady-state updates are memoized lookups, so its
// per-update cost is flat AND thread-independent).
void BM_Fifo_MonitorPerUpdate(benchmark::State& state, size_t threads,
                              checker::MonitorBackend backend) {
  auto& fx = Fixture();
  size_t warmup = static_cast<size_t>(state.range(0));
  checker::CheckOptions opts;
  opts.threads = threads;
  opts.backend = backend;
  auto monitor = *checker::Monitor::Create(fx.factory, fx.fifo, {}, opts);
  // Grow the history to `warmup` states first.
  size_t n = 4;
  for (size_t t = 0; t < warmup; ++t) {
    Transaction txn;
    txn.push_back(UpdateOp::Insert(fx.sub, {static_cast<Value>(t % n) + 1}));
    if (t > 0) {
      txn.push_back(UpdateOp::Insert(fx.fill, {static_cast<Value>((t - 1) % n) + 1}));
      txn.push_back(UpdateOp::Delete(fx.sub, {static_cast<Value>((t - 1) % n) + 1}));
      if (t > 1) {
        txn.push_back(
            UpdateOp::Delete(fx.fill, {static_cast<Value>((t - 2) % n) + 1}));
      }
    }
    auto v = monitor->ApplyTransaction(txn);
    if (!v.ok()) {
      state.SkipWithError(v.status().ToString().c_str());
      return;
    }
  }
  size_t t = warmup;
  checker::MonitorVerdict last;
  for (auto _ : state) {
    Transaction txn;
    txn.push_back(UpdateOp::Insert(fx.sub, {static_cast<Value>(t % n) + 1}));
    txn.push_back(UpdateOp::Insert(fx.fill, {static_cast<Value>((t - 1) % n) + 1}));
    txn.push_back(UpdateOp::Delete(fx.sub, {static_cast<Value>((t - 1) % n) + 1}));
    txn.push_back(UpdateOp::Delete(fx.fill, {static_cast<Value>((t - 2) % n) + 1}));
    auto v = monitor->ApplyTransaction(txn);
    if (!v.ok()) {
      state.SkipWithError(v.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(v->potentially_satisfied);
    last = *v;
    ++t;
  }
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["start_length"] = static_cast<double>(warmup);
  state.counters["end_length"] = static_cast<double>(monitor->history().length());
  state.counters["instances"] = static_cast<double>(last.num_instances);
  state.counters["residual_classes"] = static_cast<double>(last.num_residual_classes);
  state.counters["cache_hits"] = static_cast<double>(last.verdict_cache_stats.hits);
  state.counters["cache_misses"] = static_cast<double>(last.verdict_cache_stats.misses);
  if (backend == checker::MonitorBackend::kAutomaton) {
    // Transition-cache effectiveness: in steady state hits/steps -> 1 and the
    // tableau never runs (live_queries counts states, not updates).
    state.counters["memo_hits"] = static_cast<double>(last.automaton_stats.memo_hits);
    state.counters["memo_steps"] = static_cast<double>(last.automaton_stats.steps);
    state.counters["auto_states"] = static_cast<double>(last.automaton_stats.num_states);
    state.counters["live_queries"] = static_cast<double>(last.automaton_stats.live_queries);
  }
}

// Cross-instance lockstep stepping (PR 7): per-update cost of the automaton
// backend over a symmetric population of `instances` letter-disjoint
// submit-once instances, cohort SoA stepping on vs off. Shapes:
//   uniform — every order is submitted at t0 and retracted at t1, so all
//     slots share one state and the cohort advances with a single table-cell
//     read per update; the joint baseline recomputes an O(alphabet) letter
//     signature per update instead.
//   mixed — half the orders are submitted+retracted, half only ever named by
//     Fill, parking the population in two distinct states: every update runs
//     the word-parallel dense-table gather across all slots.
void BM_SubmitOnce_CohortSteadyState(benchmark::State& state, bool cohort,
                                     bool mixed) {
  auto& fx = Fixture();
  size_t instances = static_cast<size_t>(state.range(0));
  checker::CheckOptions opts;
  opts.backend = checker::MonitorBackend::kAutomaton;
  opts.cohort_stepping = cohort;
  auto monitor = *checker::Monitor::Create(fx.factory, fx.submit_once, {}, opts);
  size_t submitted = mixed ? instances / 2 : instances;
  Transaction grow;
  for (size_t v = 1; v <= instances; ++v) {
    if (v <= submitted) {
      grow.push_back(UpdateOp::Insert(fx.sub, {static_cast<Value>(v)}));
    } else {
      grow.push_back(UpdateOp::Insert(fx.fill, {static_cast<Value>(v)}));
    }
  }
  Transaction retract;
  for (size_t v = 1; v <= submitted; ++v) {
    retract.push_back(UpdateOp::Delete(fx.sub, {static_cast<Value>(v)}));
  }
  auto grown = monitor->ApplyTransaction(grow);
  if (!grown.ok()) {
    state.SkipWithError(grown.status().ToString().c_str());
    return;
  }
  auto retracted = monitor->ApplyTransaction(retract);
  if (!retracted.ok()) {
    state.SkipWithError(retracted.status().ToString().c_str());
    return;
  }
  for (int i = 0; i < 32; ++i) {
    auto v = monitor->ApplyTransaction(Transaction{});
    if (!v.ok()) {
      state.SkipWithError(v.status().ToString().c_str());
      return;
    }
  }
  checker::MonitorVerdict last;
  for (auto _ : state) {
    auto v = monitor->ApplyTransaction(Transaction{});
    if (!v.ok()) {
      state.SkipWithError(v.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(v->potentially_satisfied);
    last = *v;
  }
  if (!last.potentially_satisfied) {
    state.SkipWithError("monitor died in steady state");
    return;
  }
  state.counters["instances"] = static_cast<double>(last.num_instances);
  state.counters["cohorts"] = static_cast<double>(last.num_cohorts);
  state.counters["cohort_instances"] =
      static_cast<double>(last.num_cohort_instances);
  state.counters["memo_hits"] =
      static_cast<double>(last.automaton_stats.memo_hits);
  state.counters["memo_steps"] = static_cast<double>(last.automaton_stats.steps);
  state.counters["state_sets"] =
      static_cast<double>(last.automaton_stats.num_state_sets);
}

void RegisterAll(const std::vector<size_t>& thread_counts,
                 const std::vector<checker::MonitorBackend>& backends,
                 const std::vector<bool>& cohort_modes) {
  benchmark::RegisterBenchmark("BM_Fifo_HistorySweep", BM_Fifo_HistorySweep)
      ->RangeMultiplier(2)
      ->Range(8, 512)
      ->Complexity(benchmark::oN);
  for (checker::MonitorBackend backend : backends) {
    for (size_t threads : thread_counts) {
      std::string name = std::string("BM_Fifo_MonitorPerUpdate/backend:") +
                         bench::BackendName(backend) +
                         "/threads:" + std::to_string(threads);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [threads, backend](benchmark::State& s) {
            BM_Fifo_MonitorPerUpdate(s, threads, backend);
          })
          ->Arg(8)
          ->Arg(64)
          ->Arg(256);
    }
  }
  for (bool cohort : cohort_modes) {
    for (bool mixed : {false, true}) {
      std::string name = std::string("BM_SubmitOnce_CohortSteadyState/shape:") +
                         (mixed ? "mixed" : "uniform") + "/cohort:" +
                         (cohort ? "on" : "off");
      benchmark::RegisterBenchmark(name.c_str(),
                                   [cohort, mixed](benchmark::State& s) {
                                     BM_SubmitOnce_CohortSteadyState(s, cohort,
                                                                     mixed);
                                   })
          ->Arg(1024)
          ->Arg(10240);
    }
  }
}

}  // namespace
}  // namespace tic

int main(int argc, char** argv) {
  std::vector<size_t> threads = tic::bench::ParseThreads(&argc, argv, {1, 2, 4});
  std::vector<tic::checker::MonitorBackend> backends = tic::bench::ParseBackends(
      &argc, argv,
      {tic::checker::MonitorBackend::kAutomaton,
       tic::checker::MonitorBackend::kProgression});
  std::vector<bool> cohort_modes =
      tic::bench::ParseCohort(&argc, argv, {true, false});
  tic::RegisterAll(threads, backends, cohort_modes);
  return tic::bench::RunBenchmarks(&argc, argv);
}
