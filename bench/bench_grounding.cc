// Experiment E3: the Theorem 4.1 grounding itself — measured |phi_D| against
// the paper's O((|phi| * |R_D|)^max(k, l)) bound, in both fidelity (kLiteral,
// with the full Axiom_D) and folded (kSimplified) modes, plus the DAG
// compression that hash-consing buys.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "checker/grounding.h"

namespace tic {
namespace {

bench::OrdersFixture& Fixture() {
  static bench::OrdersFixture* f = new bench::OrdersFixture();
  return *f;
}

void RunGrounding(benchmark::State& state, fotl::Formula phi,
                  checker::GroundingMode mode) {
  auto& fx = Fixture();
  size_t n = static_cast<size_t>(state.range(0));
  History h = fx.MakeWideHistory(n);
  checker::GroundingOptions opts;
  opts.mode = mode;
  checker::GroundingStats stats;
  for (auto _ : state) {
    auto g = checker::GroundUniversal(*fx.factory, phi, h, {}, opts);
    if (!g.ok()) {
      state.SkipWithError(g.status().ToString().c_str());
      return;
    }
    stats = g->stats;
    benchmark::DoNotOptimize(g->phi_d);
  }
  state.counters["relevant"] = static_cast<double>(stats.relevant_size);
  state.counters["k"] = static_cast<double>(stats.num_external_vars);
  state.counters["instances"] = static_cast<double>(stats.num_instances);
  state.counters["phi_d_size"] = static_cast<double>(stats.phi_d_size);
  state.counters["dag_nodes"] = static_cast<double>(stats.phi_d_dag_nodes);
  state.counters["letters"] = static_cast<double>(stats.num_prop_letters);
  double phi_size = static_cast<double>(phi->size());
  double bound = 1;
  size_t exponent = std::max<size_t>(stats.num_external_vars, 1);
  for (size_t i = 0; i < exponent; ++i) {
    bound *= phi_size * static_cast<double>(stats.relevant_size + 1);
  }
  state.counters["paper_bound"] = bound;
}

void BM_Ground_SubmitOnce_Simplified(benchmark::State& state) {
  RunGrounding(state, Fixture().submit_once, checker::GroundingMode::kSimplified);
}
BENCHMARK(BM_Ground_SubmitOnce_Simplified)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

void BM_Ground_SubmitOnce_Literal(benchmark::State& state) {
  RunGrounding(state, Fixture().submit_once, checker::GroundingMode::kLiteral);
}
BENCHMARK(BM_Ground_SubmitOnce_Literal)->Arg(2)->Arg(8)->Arg(32);

void BM_Ground_Fifo_Simplified(benchmark::State& state) {
  RunGrounding(state, Fixture().fifo, checker::GroundingMode::kSimplified);
}
BENCHMARK(BM_Ground_Fifo_Simplified)->Arg(2)->Arg(8)->Arg(32)->Arg(64);

void BM_Ground_Fifo_Literal(benchmark::State& state) {
  RunGrounding(state, Fixture().fifo, checker::GroundingMode::kLiteral);
}
BENCHMARK(BM_Ground_Fifo_Literal)->Arg(2)->Arg(8);

// k = 3 sweep: the exponent dominates (a three-variable mutual-exclusion
// constraint).
void BM_Ground_ThreeVars(benchmark::State& state) {
  auto& fx = Fixture();
  static fotl::Formula three = *fotl::Parse(
      fx.factory.get(),
      "forall x y z . G !(x != y & y != z & x != z & Sub(x) & Sub(y) & Sub(z))");
  RunGrounding(state, three, checker::GroundingMode::kSimplified);
}
BENCHMARK(BM_Ground_ThreeVars)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

}  // namespace
}  // namespace tic

TIC_BENCH_MAIN()
