// Experiment E11: the Section 6 lower-bound construction, run forward — the
// Theorem 4.2 checker deciding space-bounded Turing-machine behaviour. The
// cost must track both the region size (|R_D| in the exponent-bearing
// grounding) and the machine's own running time (the tableau's forced chain
// IS the computation), which is the paper's argument that |R_D| cannot be
// removed from the exponent.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

#include "checker/extension.h"
#include "tm/formulas.h"

namespace tic {
namespace {

void BM_BoundedShuttle_RegionSweep(benchmark::State& state) {
  size_t region = static_cast<size_t>(state.range(0));
  tm::TuringMachine shuttle = *tm::MakeShuttleMachine();
  auto inst = tm::BuildBoundedInstance(shuttle, "", region);
  if (!inst.ok()) {
    state.SkipWithError(inst.status().ToString().c_str());
    return;
  }
  checker::CheckResult last;
  for (auto _ : state) {
    auto r = checker::CheckPotentialSatisfaction(*inst->factory, inst->phi,
                                                 inst->history);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    last = *r;
    benchmark::DoNotOptimize(last.potentially_satisfied);
  }
  state.counters["region"] = static_cast<double>(region);
  state.counters["satisfied"] = last.potentially_satisfied ? 1 : 0;
  state.counters["phi_d_size"] = static_cast<double>(last.grounding_stats.phi_d_size);
  state.counters["tableau_states"] =
      static_cast<double>(last.tableau_stats.num_states);
}
BENCHMARK(BM_BoundedShuttle_RegionSweep)->DenseRange(3, 9, 2);

// Longer inputs stretch the shuttle's cycle: the tableau's lasso grows with
// the machine's period while the region grows only linearly.
void BM_BoundedShuttle_InputSweep(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::string input(n, '0');
  tm::TuringMachine shuttle = *tm::MakeShuttleMachine();
  auto inst = tm::BuildBoundedInstance(shuttle, input, n + 3);
  if (!inst.ok()) {
    state.SkipWithError(inst.status().ToString().c_str());
    return;
  }
  checker::CheckResult last;
  for (auto _ : state) {
    auto r = checker::CheckPotentialSatisfaction(*inst->factory, inst->phi,
                                                 inst->history);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    last = *r;
    benchmark::DoNotOptimize(last.potentially_satisfied);
  }
  state.counters["input_len"] = static_cast<double>(n);
  state.counters["satisfied"] = last.potentially_satisfied ? 1 : 0;
  state.counters["tableau_states"] =
      static_cast<double>(last.tableau_stats.num_states);
}
BENCHMARK(BM_BoundedShuttle_InputSweep)->DenseRange(1, 5, 2);

// Refutation cost: the binary counter must be simulated until it overflows
// the region (~2^bits machine steps) before the checker can say NO — the
// miniature version of "deciding the extension question within time
// polynomial in D0 would solve SAT in polynomial time".
void BM_BoundedCounter_Refutation(benchmark::State& state) {
  size_t region = static_cast<size_t>(state.range(0));
  tm::TuringMachine counter = *tm::MakeBinaryCounterMachine();
  auto inst = tm::BuildBoundedInstance(counter, "", region);
  if (!inst.ok()) {
    state.SkipWithError(inst.status().ToString().c_str());
    return;
  }
  checker::CheckResult last;
  for (auto _ : state) {
    auto r = checker::CheckPotentialSatisfaction(*inst->factory, inst->phi,
                                                 inst->history);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    last = *r;
    benchmark::DoNotOptimize(last.potentially_satisfied);
  }
  state.counters["region"] = static_cast<double>(region);
  state.counters["satisfied"] = last.potentially_satisfied ? 1 : 0;
  state.counters["tableau_states"] =
      static_cast<double>(last.tableau_stats.num_states);
}
BENCHMARK(BM_BoundedCounter_Refutation)->DenseRange(3, 7, 1);

}  // namespace
}  // namespace tic

TIC_BENCH_MAIN()
