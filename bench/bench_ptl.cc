// Experiment E4: the two phases of Lemma 4.2 in isolation.
// Phase 1 (Sistla–Wolfson rewriting / progression) must cost O(t * |psi|);
// phase 2 (satisfiability) is 2^O(|psi|) in the worst case, with the safety
// fast path collapsing to a cheap DFS on safety formulas.
//
// The phase-2 benches carry an engine axis (A1 in EXPERIMENTS.md): pass
// --engine=legacy,bitset (default: both) to compare the recursive walker
// against the closure-indexed bitset kernel on identical inputs.

#include <benchmark/benchmark.h>

#include <random>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "ptl/formula.h"
#include "ptl/progress.h"
#include "ptl/tableau.h"

namespace tic {
namespace {

struct PtlFixture {
  ptl::PropVocabularyPtr vocab = std::make_shared<ptl::PropVocabulary>();
  ptl::Factory factory{vocab};
  std::vector<ptl::Formula> atoms;

  PtlFixture() {
    for (int i = 0; i < 16; ++i) {
      atoms.push_back(factory.Atom(vocab->Intern("p" + std::to_string(i))));
    }
  }

  // /\_{i<n} G (p_i -> X G !p_i): n independent safety conjuncts.
  ptl::Formula SafetyConjunction(size_t n) {
    ptl::Formula acc = factory.True();
    for (size_t i = 0; i < n; ++i) {
      ptl::Formula p = atoms[i % atoms.size()];
      acc = factory.And(
          acc, factory.Always(factory.Implies(
                   p, factory.Next(factory.Always(factory.Not(p))))));
    }
    return acc;
  }

  // /\_{i<n} (p_i U p_{i+1}): n interleaved eventualities (full tableau path).
  ptl::Formula UntilConjunction(size_t n) {
    ptl::Formula acc = factory.True();
    for (size_t i = 0; i < n; ++i) {
      acc = factory.And(acc, factory.Until(atoms[i % atoms.size()],
                                           atoms[(i + 1) % atoms.size()]));
    }
    return acc;
  }

  // A random word prefix where letter i holds at instant t iff (t + i) % 3 == 0.
  ptl::Word MakeWord(size_t t) {
    ptl::Word w;
    for (size_t j = 0; j < t; ++j) {
      ptl::PropState s;
      for (size_t i = 0; i < atoms.size(); ++i) {
        if ((j + i) % 3 == 0) s.Set(atoms[i]->atom(), true);
      }
      w.push_back(std::move(s));
    }
    return w;
  }
};

PtlFixture& Fixture() {
  static PtlFixture* f = new PtlFixture();
  return *f;
}

// Phase 1: progression through a prefix of length t (linear in t).
void BM_Progression_PrefixLength(benchmark::State& state) {
  auto& fx = Fixture();
  size_t t = static_cast<size_t>(state.range(0));
  ptl::Formula psi = fx.SafetyConjunction(6);
  ptl::Word w = fx.MakeWord(t);
  for (auto _ : state) {
    auto res = ptl::ProgressThroughWord(&fx.factory, psi, w);
    if (!res.ok()) state.SkipWithError(res.status().ToString().c_str());
    benchmark::DoNotOptimize(*res);
  }
  state.SetComplexityN(static_cast<int64_t>(t));
}
BENCHMARK(BM_Progression_PrefixLength)
    ->RangeMultiplier(4)
    ->Range(4, 4096)
    ->Complexity(benchmark::oN);

// Phase 1: progression vs formula size (linear in |psi|).
void BM_Progression_FormulaSize(benchmark::State& state) {
  auto& fx = Fixture();
  size_t n = static_cast<size_t>(state.range(0));
  ptl::Formula psi = fx.SafetyConjunction(n);
  ptl::Word w = fx.MakeWord(64);
  for (auto _ : state) {
    auto res = ptl::ProgressThroughWord(&fx.factory, psi, w);
    if (!res.ok()) state.SkipWithError(res.status().ToString().c_str());
    benchmark::DoNotOptimize(*res);
  }
  state.counters["formula_size"] = static_cast<double>(psi->size());
}
BENCHMARK(BM_Progression_FormulaSize)->DenseRange(2, 14, 4);

// Phase 2, general path: interleaved Untils blow up exponentially.
void BM_Tableau_UntilChain(benchmark::State& state, ptl::TableauEngine engine) {
  auto& fx = Fixture();
  size_t n = static_cast<size_t>(state.range(0));
  ptl::Formula psi = fx.UntilConjunction(n);
  ptl::TableauOptions opts;
  opts.engine = engine;
  ptl::TableauStats stats;
  for (auto _ : state) {
    auto res = ptl::CheckSat(&fx.factory, psi, opts);
    if (!res.ok()) state.SkipWithError(res.status().ToString().c_str());
    stats = res->stats;
    benchmark::DoNotOptimize(res->satisfiable);
  }
  state.counters["tableau_states"] = static_cast<double>(stats.num_states);
  state.counters["formula_size"] = static_cast<double>(psi->size());
}

// Phase 2, safety fast path: the same growth pattern but eventuality-free —
// the lazy DFS finds a model without materializing the graph.
void BM_Tableau_SafetyFastPath(benchmark::State& state,
                               ptl::TableauEngine engine) {
  auto& fx = Fixture();
  size_t n = static_cast<size_t>(state.range(0));
  ptl::Formula psi = fx.SafetyConjunction(n);
  ptl::TableauOptions opts;
  opts.engine = engine;
  ptl::TableauStats stats;
  for (auto _ : state) {
    auto res = ptl::CheckSat(&fx.factory, psi, opts);
    if (!res.ok()) state.SkipWithError(res.status().ToString().c_str());
    stats = res->stats;
    benchmark::DoNotOptimize(res->satisfiable);
  }
  state.counters["tableau_states"] = static_cast<double>(stats.num_states);
  state.counters["formula_size"] = static_cast<double>(psi->size());
}

// Unsatisfiable inputs: the complement side of phase 2.
void BM_Tableau_Unsat(benchmark::State& state, ptl::TableauEngine engine) {
  auto& fx = Fixture();
  size_t n = static_cast<size_t>(state.range(0));
  // (p0 U p1) & ... & G !p1 ... forcing failure of the first eventualities.
  ptl::Formula psi = fx.UntilConjunction(n);
  for (size_t i = 1; i <= n; ++i) {
    psi = fx.factory.And(
        psi, fx.factory.Always(fx.factory.Not(fx.atoms[i % fx.atoms.size()])));
  }
  ptl::TableauOptions opts;
  opts.engine = engine;
  for (auto _ : state) {
    auto res = ptl::CheckSat(&fx.factory, psi, opts);
    if (!res.ok()) state.SkipWithError(res.status().ToString().c_str());
    benchmark::DoNotOptimize(res->satisfiable);
  }
}

void RegisterAll(const std::vector<ptl::TableauEngine>& engines) {
  for (ptl::TableauEngine engine : engines) {
    std::string suffix = std::string("/engine:") + bench::EngineName(engine);
    benchmark::RegisterBenchmark(
        ("BM_Tableau_UntilChain" + suffix).c_str(),
        [engine](benchmark::State& s) { BM_Tableau_UntilChain(s, engine); })
        ->DenseRange(1, 9, 1);
    benchmark::RegisterBenchmark(
        ("BM_Tableau_SafetyFastPath" + suffix).c_str(),
        [engine](benchmark::State& s) { BM_Tableau_SafetyFastPath(s, engine); })
        ->DenseRange(2, 14, 4);
    benchmark::RegisterBenchmark(
        ("BM_Tableau_Unsat" + suffix).c_str(),
        [engine](benchmark::State& s) { BM_Tableau_Unsat(s, engine); })
        ->DenseRange(1, 7, 2);
  }
}

}  // namespace
}  // namespace tic

int main(int argc, char** argv) {
  std::vector<tic::ptl::TableauEngine> engines = tic::bench::ParseEngines(
      &argc, argv,
      {tic::ptl::TableauEngine::kLegacy, tic::ptl::TableauEngine::kBitset});
  tic::RegisterAll(engines);
  return tic::bench::RunBenchmarks(&argc, argv);
}
