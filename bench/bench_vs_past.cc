// Experiment E6: the universal potential-satisfaction monitor (Theorem 4.2)
// vs the Past FOTL history-less baseline (Chomicki [3]) on the same policy in
// its two formulations. Expected shape: the past baseline wins by orders of
// magnitude per update (no satisfiability phase), while only the universal
// monitor implements *potential* satisfaction exactly (eager detection,
// cf. the integration tests).

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "checker/monitor.h"
#include "past/past_monitor.h"

namespace tic {
namespace {

bench::OrdersFixture& Fixture() {
  static bench::OrdersFixture* f = new bench::OrdersFixture();
  return *f;
}

Transaction StepTxn(const bench::OrdersFixture& fx, size_t t, size_t n) {
  Transaction txn;
  txn.push_back(UpdateOp::Insert(fx.sub, {static_cast<Value>(t % n) + 1}));
  if (t > 0) {
    txn.push_back(UpdateOp::Insert(fx.fill, {static_cast<Value>((t - 1) % n) + 1}));
    txn.push_back(UpdateOp::Delete(fx.sub, {static_cast<Value>((t - 1) % n) + 1}));
    if (t > 1) {
      txn.push_back(UpdateOp::Delete(fx.fill, {static_cast<Value>((t - 2) % n) + 1}));
    }
  }
  return txn;
}

// Future formulation through the eager universal monitor.
void BM_UniversalMonitor_PerUpdate(benchmark::State& state) {
  auto& fx = Fixture();
  size_t n = static_cast<size_t>(state.range(0));
  static fotl::Formula policy = *fotl::Parse(
      fx.factory.get(), "forall x . G (Sub(x) -> X Fill(x))");
  auto monitor = *checker::Monitor::Create(fx.factory, policy);
  size_t t = 0;
  for (size_t i = 0; i < n; ++i) {  // make all n orders relevant up front
    auto v = monitor->ApplyTransaction(StepTxn(fx, t++, n));
    if (!v.ok()) {
      state.SkipWithError(v.status().ToString().c_str());
      return;
    }
  }
  for (auto _ : state) {
    auto v = monitor->ApplyTransaction(StepTxn(fx, t++, n));
    if (!v.ok()) {
      state.SkipWithError(v.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(v->potentially_satisfied);
  }
  state.counters["orders"] = static_cast<double>(n);
}
BENCHMARK(BM_UniversalMonitor_PerUpdate)->Arg(2)->Arg(4)->Arg(8);

// Lazy (Lipeck–Saake-style) variant: progression only.
void BM_LazyMonitor_PerUpdate(benchmark::State& state) {
  auto& fx = Fixture();
  size_t n = static_cast<size_t>(state.range(0));
  static fotl::Formula policy = *fotl::Parse(
      fx.factory.get(), "forall x . G (Sub(x) -> X Fill(x))");
  auto monitor = *checker::Monitor::Create(fx.factory, policy, {}, {},
                                           checker::MonitorMode::kLazy);
  size_t t = 0;
  for (size_t i = 0; i < n; ++i) {
    auto v = monitor->ApplyTransaction(StepTxn(fx, t++, n));
    if (!v.ok()) {
      state.SkipWithError(v.status().ToString().c_str());
      return;
    }
  }
  for (auto _ : state) {
    auto v = monitor->ApplyTransaction(StepTxn(fx, t++, n));
    if (!v.ok()) {
      state.SkipWithError(v.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(v->potentially_satisfied);
  }
  state.counters["orders"] = static_cast<double>(n);
}
BENCHMARK(BM_LazyMonitor_PerUpdate)->Arg(2)->Arg(4)->Arg(8);

// Eager verdicts without history storage (stand-in renaming catch-up).
void BM_HistoryLessMonitor_PerUpdate(benchmark::State& state) {
  auto& fx = Fixture();
  size_t n = static_cast<size_t>(state.range(0));
  static fotl::Formula policy = *fotl::Parse(
      fx.factory.get(), "forall x . G (Sub(x) -> X Fill(x))");
  auto monitor = *checker::Monitor::Create(fx.factory, policy, {}, {},
                                           checker::MonitorMode::kEagerHistoryLess);
  size_t t = 0;
  for (size_t i = 0; i < n; ++i) {
    auto v = monitor->ApplyTransaction(StepTxn(fx, t++, n));
    if (!v.ok()) {
      state.SkipWithError(v.status().ToString().c_str());
      return;
    }
  }
  for (auto _ : state) {
    auto v = monitor->ApplyTransaction(StepTxn(fx, t++, n));
    if (!v.ok()) {
      state.SkipWithError(v.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(v->potentially_satisfied);
  }
  state.counters["orders"] = static_cast<double>(n);
}
BENCHMARK(BM_HistoryLessMonitor_PerUpdate)->Arg(2)->Arg(4)->Arg(8);

// Past formulation through the history-less baseline.
void BM_PastMonitor_PerUpdate(benchmark::State& state) {
  auto& fx = Fixture();
  size_t n = static_cast<size_t>(state.range(0));
  static fotl::Formula policy = *fotl::Parse(
      fx.factory.get(), "forall x . G (Fill(x) -> Y Sub(x))");
  auto monitor = *past::PastMonitor::Create(fx.factory, policy);
  size_t t = 0;
  for (size_t i = 0; i < n; ++i) {
    auto v = monitor->ApplyTransaction(StepTxn(fx, t++, n));
    if (!v.ok()) {
      state.SkipWithError(v.status().ToString().c_str());
      return;
    }
  }
  for (auto _ : state) {
    auto v = monitor->ApplyTransaction(StepTxn(fx, t++, n));
    if (!v.ok()) {
      state.SkipWithError(v.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(v->satisfied);
  }
  state.counters["orders"] = static_cast<double>(n);
  state.counters["aux_state"] = static_cast<double>(monitor->AuxiliaryStateSize());
}
BENCHMARK(BM_PastMonitor_PerUpdate)->Arg(2)->Arg(4)->Arg(8);

}  // namespace
}  // namespace tic

TIC_BENCH_MAIN()
