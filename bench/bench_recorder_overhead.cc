// In-process paired measurement of flight-recorder overhead on the warmed
// cohort steady-state step (the tightest hot path the recorder touches: one
// kTxnApplied event per empty-transaction update).
//
// Process-per-mode comparisons (two bench invocations with --recorder=on/off)
// are unusable on noisy or frequency-throttled hosts: run-to-run swing there
// exceeds +-10% while the effect being measured is a few percent. This
// harness alternates recorder-off and recorder-on phases within ONE process
// on the SAME warmed monitor, so slow drift (thermal, host steal time) hits
// both sides equally, and reports the median of per-pair deltas.
//
// Not a google-benchmark target on purpose: the phase alternation IS the
// methodology, and the library's repetition machinery cannot interleave two
// configurations. Usage:
//   bench_recorder_overhead [cohort|fifo] [phases] [iters_per_phase] [ring]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_common.h"
#include "checker/monitor.h"
#include "common/telemetry/recorder.h"

namespace tic {
namespace {

double Median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v.empty() ? 0.0 : v[v.size() / 2];
}

// Builds the warmed monitor plus the per-iteration transaction stream for
// one scenario. "cohort": BM_SubmitOnce_CohortSteadyState/shape:uniform/
// cohort:on/10240 — empty updates, one kTxnApplied event each. "fifo":
// BM_Fifo_MonitorPerUpdate/backend:automaton/threads:1/256 — rolling 3-4 op
// transactions, so each update also records letter flips.
struct Scenario {
  std::unique_ptr<checker::Monitor> monitor;
  std::vector<Transaction> stream;  // cycled per iteration
};

bool MakeScenario(bench::OrdersFixture& fx, const std::string& name,
                  Scenario* out) {
  checker::CheckOptions opts;
  opts.backend = checker::MonitorBackend::kAutomaton;
  if (name == "cohort") {
    opts.cohort_stepping = true;
    auto created =
        checker::Monitor::Create(fx.factory, fx.submit_once, {}, opts);
    if (!created.ok()) return false;
    out->monitor = std::move(*created);
    const size_t kInstances = 10240;
    Transaction grow, retract;
    for (size_t v = 1; v <= kInstances; ++v) {
      grow.push_back(UpdateOp::Insert(fx.sub, {static_cast<Value>(v)}));
      retract.push_back(UpdateOp::Delete(fx.sub, {static_cast<Value>(v)}));
    }
    if (!out->monitor->ApplyTransaction(grow).ok()) return false;
    if (!out->monitor->ApplyTransaction(retract).ok()) return false;
    out->stream.push_back(Transaction{});
    return true;
  }
  // fifo: the rolling submit/fill pattern from BM_Fifo_MonitorPerUpdate,
  // warmed to 256 states; the stream cycles the same n-periodic updates.
  auto created = checker::Monitor::Create(fx.factory, fx.fifo, {}, opts);
  if (!created.ok()) return false;
  out->monitor = std::move(*created);
  const size_t n = 4;
  for (size_t t = 0; t < 256 + n; ++t) {
    Transaction txn;
    txn.push_back(UpdateOp::Insert(fx.sub, {static_cast<Value>(t % n) + 1}));
    if (t > 0) {
      txn.push_back(
          UpdateOp::Insert(fx.fill, {static_cast<Value>((t - 1) % n) + 1}));
      txn.push_back(
          UpdateOp::Delete(fx.sub, {static_cast<Value>((t - 1) % n) + 1}));
      if (t > 1) {
        txn.push_back(
            UpdateOp::Delete(fx.fill, {static_cast<Value>((t - 2) % n) + 1}));
      }
    }
    if (t < 256) {
      if (!out->monitor->ApplyTransaction(txn).ok()) return false;
    } else {
      out->stream.push_back(txn);  // one full period as the steady stream
    }
  }
  return true;
}

int Run(const std::string& scenario_name, int phases, int iters,
        size_t ring_capacity) {
  if (ring_capacity != 0) telemetry::SetRecorderRingCapacity(ring_capacity);
  bench::OrdersFixture fx;
  Scenario sc;
  if (!MakeScenario(fx, scenario_name, &sc)) {
    std::fprintf(stderr, "scenario %s failed to build\n",
                 scenario_name.c_str());
    return 1;
  }
  auto& monitor = sc.monitor;
  size_t cursor = 0;
  for (int i = 0; i < 64; ++i) {
    if (!monitor->ApplyTransaction(sc.stream[cursor++ % sc.stream.size()])
             .ok()) {
      return 1;
    }
  }

  std::vector<double> ns_off, ns_on;
  for (int p = 0; p < phases; ++p) {
    const bool on = (p & 1) != 0;
    telemetry::SetRecorderEnabled(on);
    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) {
      auto v =
          monitor->ApplyTransaction(sc.stream[cursor++ % sc.stream.size()]);
      if (!v.ok()) {
        std::fprintf(stderr, "steady state: %s\n",
                     v.status().ToString().c_str());
        return 1;
      }
      benchmark::DoNotOptimize(v->potentially_satisfied);
    }
    auto t1 = std::chrono::steady_clock::now();
    (on ? ns_on : ns_off)
        .push_back(std::chrono::duration<double, std::nano>(t1 - t0).count() /
                   iters);
  }
  telemetry::SetRecorderEnabled(true);

  std::vector<double> deltas;
  for (size_t i = 0; i < ns_off.size() && i < ns_on.size(); ++i) {
    deltas.push_back(100.0 * (ns_on[i] - ns_off[i]) / ns_off[i]);
  }
  std::printf("raw off:");
  for (double x : ns_off) std::printf(" %.1f", x);
  std::printf("\nraw on: ");
  for (double x : ns_on) std::printf(" %.1f", x);
  std::printf("\n");
  const double off = Median(ns_off), on = Median(ns_on);
  std::printf("scenario=%s phases=%d iters/phase=%d\n", scenario_name.c_str(),
              phases, iters);
  std::printf("recorder off: %.2f ns/update (median of %zu phases)\n", off,
              ns_off.size());
  std::printf("recorder on:  %.2f ns/update (median of %zu phases)\n", on,
              ns_on.size());
  std::printf("overhead: %+.2f%% (of-medians)  %+.2f%% (median of %zu paired "
              "deltas)\n",
              100.0 * (on - off) / off, Median(deltas), deltas.size());
  return 0;
}

}  // namespace
}  // namespace tic

int main(int argc, char** argv) {
  std::string scenario = argc > 1 ? argv[1] : "cohort";
  int phases = argc > 2 ? std::atoi(argv[2]) : 40;
  int iters = argc > 3 ? std::atoi(argv[3]) : 1000000;
  size_t ring = argc > 4 ? static_cast<size_t>(std::atoll(argv[4])) : 0;
  if ((scenario != "cohort" && scenario != "fifo") || phases < 2 ||
      iters < 1) {
    std::fprintf(stderr,
                 "usage: %s [cohort|fifo] [phases>=2] [iters_per_phase>=1] "
                 "[ring_capacity]\n",
                 argv[0]);
    return 2;
  }
  return tic::Run(scenario, phases, iters, ring);
}
