// tic_replay: command-line temporal-integrity replay tool.
//
// Reads a specification file (vocabulary + constraints + transaction script;
// see src/spec/spec.h for the format), runs every declared engine over the
// scripted updates, and prints one verdict line per (state, constraint).
// Exit status 1 when any violation or trigger firing occurred — usable in CI
// to validate update streams against temporal policies.
//
//   ./build/examples/tic_replay policy.tic
//   ./build/examples/tic_replay --demo        # run a built-in demo spec

#include <fstream>
#include <iostream>
#include <sstream>

#include "spec/spec.h"

namespace {

constexpr char kDemoSpec[] = R"(# Built-in demo: the paper's order-processing policies.
predicate Sub/1
predicate Fill/1

constraint submit_once : forall x . G (Sub(x) -> X G !Sub(x))
past       audited     : forall x . G (Fill(x) -> O Sub(x))
trigger    dup_alert   : F (Sub(x) & X F Sub(x))

step +Sub(1)
step -Sub(1) +Sub(2)
step -Sub(2) +Fill(1)
step -Fill(1) +Fill(2)
step +Sub(1)            # resubmission: submit_once dies, dup_alert fires
step -Sub(1) +Fill(3)   # fill without submission: audited violated
)";

}  // namespace

int main(int argc, char** argv) {
  std::string text;
  if (argc == 2 && std::string(argv[1]) == "--demo") {
    text = kDemoSpec;
    std::cout << "(running the built-in demo spec)\n\n" << kDemoSpec << "\n---\n";
  } else if (argc == 2) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::cerr << "cannot open " << argv[1] << "\n";
      return 2;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    text = ss.str();
  } else {
    std::cerr << "usage: tic_replay <spec-file> | --demo\n";
    return 2;
  }

  auto spec = tic::spec::ParseSpecification(text);
  if (!spec.ok()) {
    std::cerr << "spec error: " << spec.status() << "\n";
    return 2;
  }
  std::cout << "loaded: " << spec->vocabulary->num_predicates() << " predicates, "
            << spec->constraints.size() << " constraints, " << spec->steps.size()
            << " steps\n";

  auto replay = tic::spec::Replay(*spec);
  if (!replay.ok()) {
    std::cerr << "replay error: " << replay.status() << "\n";
    return 2;
  }
  size_t last_time = static_cast<size_t>(-1);
  for (const auto& ev : replay->events) {
    if (ev.time != last_time) {
      std::cout << "state " << ev.time << ":\n";
      last_time = ev.time;
    }
    std::cout << "  " << ev.constraint << ": " << ev.verdict << "\n";
  }
  std::cout << (replay->any_violation ? "\nRESULT: violations detected\n"
                                      : "\nRESULT: clean\n");
  return replay->any_violation ? 1 : 0;
}
