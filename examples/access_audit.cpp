// Domain example: security/audit policies over a user-session database,
// contrasting the two checking technologies the paper analyzes:
//   - future universal constraints under *potential satisfaction*
//     (Theorem 4.2, exponential worst case, eager detection), and
//   - G-past constraints under classical history-less monitoring
//     (Proposition 2.1 / the Chomicki [3] baseline, cheap per update).
//
//   ./build/examples/access_audit

#include <iostream>

#include "checker/monitor.h"
#include "fotl/parser.h"
#include "fotl/printer.h"
#include "past/past_monitor.h"

using namespace tic;

int main() {
  // Vocabulary: Login(user), Logout(user), Access(user, resource),
  // Revoked(user).
  auto vocab = std::make_shared<Vocabulary>();
  PredicateId login = *vocab->AddPredicate("Login", 1);
  PredicateId logout = *vocab->AddPredicate("Logout", 1);
  (void)logout;  // mentioned by the session policy formula only
  PredicateId access = *vocab->AddPredicate("Access", 2);
  PredicateId revoked = *vocab->AddPredicate("Revoked", 1);
  auto factory = std::make_shared<fotl::FormulaFactory>(vocab);

  // Past policy (history-less baseline): "every access happens within an open
  // session" — Access(u, r) -> !Logout(u) since Login(u).
  auto session_policy = *fotl::Parse(
      factory.get(),
      "forall u r . G (Access(u, r) -> ((!Logout(u)) since Login(u)))");
  auto past_mon = std::move(*past::PastMonitor::Create(factory, session_policy));

  // Future policy (potential satisfaction): "a revoked user never logs in
  // again" — Revoked(u) -> X G !Login(u).
  auto revocation_policy = *fotl::Parse(
      factory.get(), "forall u . G (Revoked(u) -> X G !Login(u))");
  auto future_mon = std::move(*checker::Monitor::Create(factory, revocation_policy));

  std::cout << "past policy:   " << fotl::ToString(*factory, session_policy) << "\n";
  std::cout << "future policy: " << fotl::ToString(*factory, revocation_policy)
            << "\n\n";

  const Value alice = 1, bob = 2, wiki = 100, vault = 101;
  auto step = [&](const std::string& label, Transaction txn) {
    auto pv = past_mon->ApplyTransaction(txn);
    auto fv = future_mon->ApplyTransaction(txn);
    if (!pv.ok() || !fv.ok()) {
      std::cerr << "error: " << pv.status() << " / " << fv.status() << "\n";
      return;
    }
    std::cout << label << "\n"
              << "    session policy:    "
              << (pv->satisfied ? "ok" : "VIOLATED (access outside session)")
              << "\n"
              << "    revocation policy: "
              << (fv->permanently_violated ? "PERMANENTLY VIOLATED"
                  : fv->potentially_satisfied ? "ok" : "violated")
              << "   [aux tables: " << past_mon->AuxiliaryStateSize()
              << " entries]\n";
  };

  step("t0: alice logs in", {UpdateOp::Insert(login, {alice})});
  step("t1: alice reads the wiki",
       {UpdateOp::Delete(login, {alice}), UpdateOp::Insert(access, {alice, wiki})});
  step("t2: bob accesses the vault without ever logging in  <-- past violation",
       {UpdateOp::Delete(access, {alice, wiki}),
        UpdateOp::Insert(access, {bob, vault})});
  step("t3: bob is revoked",
       {UpdateOp::Delete(access, {bob, vault}), UpdateOp::Insert(revoked, {bob})});
  step("t4: quiet state", {UpdateOp::Delete(revoked, {bob})});
  step("t5: bob logs back in  <-- future violation, permanent",
       {UpdateOp::Insert(login, {bob})});
  step("t6: nothing repairs a safety violation", {UpdateOp::Delete(login, {bob})});

  std::cout << "\nNote the division of labour the paper explains: the past\n"
               "policy is checked in constant time per update from bounded\n"
               "auxiliary tables, while the future policy pays a\n"
               "satisfiability check but detects doom at the earliest\n"
               "possible instant (potential satisfaction).\n";
  return 0;
}
