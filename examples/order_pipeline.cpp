// Domain example: an order-processing pipeline guarded by the paper's two
// Section 2 constraints (submit-once and FIFO filling) plus a temporal
// trigger that pages an operator the moment a double submission becomes
// unavoidable. Demonstrates the monitor, the trigger duality, and witness
// extraction working together on one realistic update stream.
//
//   ./build/examples/order_pipeline

#include <iostream>

#include "checker/extension.h"
#include "checker/monitor.h"
#include "checker/trigger.h"
#include "fotl/parser.h"
#include "fotl/printer.h"

using namespace tic;

namespace {

struct Pipeline {
  VocabularyPtr vocab;
  PredicateId sub, fill;
  std::shared_ptr<fotl::FormulaFactory> factory;
  std::unique_ptr<checker::Monitor> submit_once;
  std::unique_ptr<checker::Monitor> fifo;
  std::unique_ptr<checker::TriggerManager> triggers;

  static Pipeline Make() {
    Pipeline p;
    auto v = std::make_shared<Vocabulary>();
    p.sub = *v->AddPredicate("Sub", 1);
    p.fill = *v->AddPredicate("Fill", 1);
    p.vocab = v;
    p.factory = std::make_shared<fotl::FormulaFactory>(p.vocab);

    auto submit_once_f = *fotl::Parse(p.factory.get(),
                                      "forall x . G (Sub(x) -> X G !Sub(x))");
    auto fifo_f = *fotl::Parse(
        p.factory.get(),
        "forall x y . G !(x != y & Sub(x) & ((!Fill(x)) until "
        "(Sub(y) & ((!Fill(x)) until (Fill(y) & !Fill(x))))))");
    p.submit_once = std::move(*checker::Monitor::Create(p.factory, submit_once_f));
    p.fifo = std::move(*checker::Monitor::Create(p.factory, fifo_f));

    p.triggers = std::move(*checker::TriggerManager::Create(p.factory));
    auto st = p.triggers->AddTrigger(
        "page-operator: duplicate submission",
        *fotl::Parse(p.factory.get(), "F (Sub(x) & X F Sub(x))"),
        [](const checker::TriggerFiring& f) {
          std::cout << "    >>> TRIGGER '" << f.trigger << "' fired at t=" << f.time;
          for (const auto& [var, val] : f.substitution) {
            (void)var;
            std::cout << " for order " << val;
          }
          std::cout << "\n";
        });
    if (!st.ok()) std::cerr << "trigger: " << st << "\n";
    return p;
  }

  void Apply(const std::string& label, const Transaction& txn) {
    std::cout << label << "\n";
    auto v1 = submit_once->ApplyTransaction(txn);
    auto v2 = fifo->ApplyTransaction(txn);
    auto fired = triggers->OnTransaction(txn);
    if (!v1.ok() || !v2.ok() || !fired.ok()) {
      std::cerr << "  error applying transaction\n";
      return;
    }
    auto show = [](const char* name, const checker::MonitorVerdict& v) {
      std::cout << "    " << name << ": "
                << (v.permanently_violated    ? "PERMANENTLY VIOLATED"
                    : v.potentially_satisfied ? "ok"
                                              : "violated")
                << "\n";
    };
    show("submit-once", *v1);
    show("fifo       ", *v2);
  }
};

}  // namespace

int main() {
  Pipeline p = Pipeline::Make();

  auto ins = [&](PredicateId pred, Value v) { return UpdateOp::Insert(pred, {v}); };
  auto del = [&](PredicateId pred, Value v) { return UpdateOp::Delete(pred, {v}); };

  // Sub/Fill are instantaneous events: each transaction clears the previous
  // instant's events (states copy forward otherwise). Note the paper's FIFO
  // formula treats simultaneous submissions as mutually "submitted no later
  // than", so orders arrive in separate states here.
  p.Apply("t0: order 1 arrives", {ins(p.sub, 1)});
  p.Apply("t1: order 2 arrives", {del(p.sub, 1), ins(p.sub, 2)});
  p.Apply("t2: order 1 is filled", {del(p.sub, 2), ins(p.fill, 1)});
  p.Apply("t3: order 3 arrives; order 2 filled",
          {del(p.fill, 1), ins(p.sub, 3), ins(p.fill, 2)});
  p.Apply("t4: order 3 filled (it is next in line)",
          {del(p.sub, 3), del(p.fill, 2), ins(p.fill, 3)});
  p.Apply("t5: order 1 re-submitted — breaking submit-once is now unavoidable",
          {del(p.fill, 3), ins(p.sub, 1)});
  p.Apply("t6: nothing can repair it (safety: violations are permanent)",
          {del(p.sub, 1)});

  // Show a FIFO near-miss: a fresh pipeline where order 5 is filled while
  // order 4 is still pending.
  std::cout << "\n--- second run: FIFO violation ---\n";
  Pipeline q = Pipeline::Make();
  q.Apply("t0: order 4 arrives", {ins(q.sub, 4)});
  q.Apply("t1: order 5 arrives", {del(q.sub, 4), ins(q.sub, 5)});
  q.Apply("t2: order 5 filled first — FIFO broken",
          {del(q.sub, 5), ins(q.fill, 5)});

  // And the repair-plan feature: for a pending history the checker produces a
  // concrete witness future; print the fills it proposes.
  std::cout << "\n--- witness future for two pending orders ---\n";
  History h = *History::Create(q.vocab);
  DatabaseState* s0 = h.AppendEmptyState();
  (void)s0->Insert(q.sub, {4});
  DatabaseState* s1 = h.AppendEmptyState();
  (void)s1->Insert(q.sub, {5});
  auto fifo_f = *fotl::Parse(
      q.factory.get(),
      "forall x y . G !(x != y & Sub(x) & ((!Fill(x)) until "
      "(Sub(y) & ((!Fill(x)) until (Fill(y) & !Fill(x))))))");
  auto check = checker::CheckPotentialSatisfaction(*q.factory, fifo_f, h);
  if (check.ok() && check->witness.has_value()) {
    const UltimatelyPeriodicDb& w = *check->witness;
    for (size_t t = h.length(); t < w.prefix_length() + w.loop_length(); ++t) {
      std::cout << "  t=" << t << ":";
      for (Value o : {4, 5}) {
        if (w.StateAt(t).Holds(q.fill, {o})) std::cout << " Fill(" << o << ")";
        if (w.StateAt(t).Holds(q.sub, {o})) std::cout << " Sub(" << o << ")";
      }
      std::cout << (t >= w.prefix_length() ? "   [loops forever]" : "") << "\n";
    }
  }
  return 0;
}
