// Quickstart: declare a vocabulary, parse the paper's "an order can be
// submitted only once" constraint, feed a history of updates through the
// incremental monitor, and watch the verdicts — including the witness
// extension the checker can produce.
//
// Build & run:   cmake -B build -G Ninja && cmake --build build
//                ./build/examples/quickstart

#include <iostream>

#include "checker/extension.h"
#include "checker/monitor.h"
#include "fotl/parser.h"
#include "fotl/printer.h"

using namespace tic;

int main() {
  // 1. The database vocabulary: Sub(order), Fill(order).
  auto vocab = std::make_shared<Vocabulary>();
  PredicateId sub = *vocab->AddPredicate("Sub", 1);
  PredicateId fill = *vocab->AddPredicate("Fill", 1);
  (void)fill;

  // 2. The temporal integrity constraint, in first-order temporal logic
  //    (Section 2 of Chomicki & Niwinski, PODS'93).
  auto factory = std::make_shared<fotl::FormulaFactory>(vocab);
  auto constraint =
      fotl::Parse(factory.get(), "forall x . G (Sub(x) -> X G !Sub(x))");
  if (!constraint.ok()) {
    std::cerr << "parse error: " << constraint.status() << "\n";
    return 1;
  }
  std::cout << "Constraint: " << fotl::ToString(*factory, *constraint) << "\n\n";

  // 3. An incremental monitor implementing *potential satisfaction*
  //    (Theorem 4.2): after each transaction it decides whether the history
  //    can still be extended to an infinite model of the constraint.
  auto monitor_or = checker::Monitor::Create(factory, *constraint);
  if (!monitor_or.ok()) {
    std::cerr << "monitor: " << monitor_or.status() << "\n";
    return 1;
  }
  auto monitor = std::move(*monitor_or);

  auto report = [](size_t t, const checker::MonitorVerdict& v) {
    std::cout << "t=" << t << ": "
              << (v.permanently_violated      ? "PERMANENTLY VIOLATED"
                  : v.potentially_satisfied   ? "potentially satisfied"
                                              : "violated")
              << "  (instances=" << v.num_instances
              << ", residual=" << v.residual_size << ")\n";
  };

  // 4. A stream of transactions.
  std::vector<Transaction> stream = {
      {UpdateOp::Insert(sub, {101})},                            // submit #101
      {UpdateOp::Delete(sub, {101}), UpdateOp::Insert(sub, {102})},  // #102
      {UpdateOp::Delete(sub, {102})},                            // quiet state
      {UpdateOp::Insert(sub, {101})},                            // #101 AGAIN
      {UpdateOp::Delete(sub, {101})},                            // too late...
  };
  for (size_t t = 0; t < stream.size(); ++t) {
    auto verdict = monitor->ApplyTransaction(stream[t]);
    if (!verdict.ok()) {
      std::cerr << "monitor error: " << verdict.status() << "\n";
      return 1;
    }
    report(t, *verdict);
  }

  // 5. Batch checking with a witness: ask the checker for a concrete future
  //    evolution proving potential satisfaction of a clean prefix.
  History clean = *History::Create(vocab);
  DatabaseState* s0 = clean.AppendEmptyState();
  (void)s0->Insert(sub, {7});
  auto check = checker::CheckPotentialSatisfaction(*factory, *constraint, clean);
  if (check.ok() && check->potentially_satisfied && check->witness.has_value()) {
    const UltimatelyPeriodicDb& w = *check->witness;
    std::cout << "\nWitness extension: " << w.prefix_length()
              << " prefix states + a loop of " << w.loop_length()
              << " state(s) repeated forever — a concrete infinite future in "
                 "which the constraint holds.\n";
  }
  return 0;
}
