// A tour of the Section 3 undecidability machinery: Turing machines encoded
// as temporal databases, the appendix formula phi, the W-relativized
// phi-tilde in the forall^3 tense(Sigma_1) fragment, bounded exploration of
// the Sigma^0_2-complete repeating-behaviour problem, and the Lemma 3.1
// dovetailing schema.
//
//   ./build/examples/undecidability_tour

#include <iomanip>
#include <iostream>

#include "fotl/classify.h"
#include "fotl/printer.h"
#include "tm/explorer.h"
#include "tm/formulas.h"

using namespace tic;

int main() {
  // --- 1. A machine with repeating behaviour, and its encoding. ---
  tm::TuringMachine shuttle = *tm::MakeShuttleMachine();
  tm::Simulator sim(&shuttle);
  tm::Configuration c = *sim.Initial("01");

  std::cout << "Shuttle machine on input \"01\" — first configurations "
               "(paper's word form, state before the scanned cell):\n";
  for (int i = 0; i < 8; ++i) {
    std::cout << "  step " << i << ":  " << c.AsConfigurationWord(shuttle) << "\n";
    sim.Step(&c);
  }

  tm::TmEncoding enc = *tm::TmEncoding::Create(&shuttle);
  DatabaseState state = *enc.EncodeConfiguration(*sim.Initial("01"));
  std::cout << "\nEncoded initial configuration as a database state: "
            << state.TotalTuples() << " monadic facts (P_q0(0), P_0(1), P_1(2)).\n";

  // --- 2. The appendix formula phi: forall^3 over the extended vocabulary. ---
  tm::TmFormulas phi = *tm::BuildPhi(enc);
  fotl::Classification cls = fotl::Classify(phi.phi);
  std::cout << "\nphi = forall x y z . psi  (Proposition 3.1)\n"
            << "  size |phi| = " << phi.phi->size()
            << ", external universals = " << cls.external_universals.size()
            << ", universal fragment = " << (cls.universal ? "yes" : "no") << "\n"
            << "  its models are exactly the encodings of repeating "
               "computations of the machine.\n";

  // --- 3. phi-tilde: eliminating <=/succ/Zero with the W predicate. ---
  tm::TmEncoding enc_w = *tm::TmEncoding::Create(&shuttle, /*with_w=*/true);
  tm::TmTildeFormulas tilde = *tm::BuildPhiTilde(enc_w);
  fotl::Classification tcls = fotl::Classify(tilde.phi_tilde);
  std::cout << "\nphi~ (Theorem 3.2): size " << tilde.phi_tilde->size()
            << ", internal quantifiers = " << tcls.num_internal_quantifiers
            << " (the single exists of W2), prenex-Sigma_1 internal blocks = "
            << (tcls.internal_blocks_prenex1 ? "yes" : "no") << "\n"
            << "  forall^3 tense(Sigma_1), monadic predicates only — the "
               "fragment whose extension problem is Sigma^0_2-complete.\n"
            << "  W2 = " << fotl::ToString(*tilde.factory, tilde.w2) << "\n";

  // --- 4. Bounded exploration: what a checker can and cannot know. ---
  std::cout << "\nBounded repeating-behaviour exploration (origin visits within "
               "a step budget):\n";
  struct Row {
    const char* name;
    Result<tm::TuringMachine> machine;
    const char* input;
  };
  Row rows[] = {
      {"immediate-halt", tm::MakeImmediateHaltMachine(), "0101"},
      {"right-walker  ", tm::MakeRightWalkerMachine(), "0101"},
      {"shuttle       ", tm::MakeShuttleMachine(), "0101"},
      {"binary-counter", tm::MakeBinaryCounterMachine(), ""},
  };
  std::cout << "  machine          |   budget=10^3 |  budget=10^5 | verdict\n";
  for (auto& row : rows) {
    auto small = tm::ExploreRepeating(*row.machine, row.input, 1000);
    auto big = tm::ExploreRepeating(*row.machine, row.input, 100000);
    const char* verdict =
        big->verdict == tm::StepOutcome::kHalt
            ? "REFUTED (halts)"
            : (big->origin_visits > 1 ? "visits grow -> looks repeating"
                                      : "undecided forever (1 visit)");
    std::cout << "  " << row.name << "   | " << std::setw(12)
              << small->origin_visits << "  | " << std::setw(11)
              << big->origin_visits << "  | " << verdict << "\n";
  }
  std::cout << "  (No budget settles the question in general: Lemma 3.1 makes "
               "the set Sigma^0_2-complete.)\n";

  // --- 5. The Lemma 3.1 dovetailing schema. ---
  std::cout << "\nLemma 3.1 schema M_R: repeating iff forall v exists u "
               "R(w,v,u).\n";
  tm::DovetailingMachine good(
      [](const std::string&, uint64_t v, uint64_t u) { return u == v; }, "w");
  tm::DovetailingMachine stuck(
      [](const std::string&, uint64_t v, uint64_t u) { return v != 5 && u == v; },
      "w");
  good.Run(100000);
  stuck.Run(100000);
  std::cout << "  total relation:      " << good.progress().origin_visits
            << " origin visits in 10^5 probes (repeating)\n";
  std::cout << "  no witness at v = 5: " << stuck.progress().origin_visits
            << " origin visits, then the machine searches forever\n";
  return 0;
}
