#include <algorithm>
#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/flat/arena.h"
#include "common/flat/flat_map.h"
#include "common/flat/flat_set.h"
#include "common/flat/lru.h"
#include "common/flat/small_vec.h"
#include "common/flat/wyhash.h"
#include "testing/rng.h"

namespace tic {
namespace {

using testing::Entropy;

// ---------------------------------------------------------------------------
// wyhash / Fp128

TEST(WyHash, MixesLowBits) {
  // The flat tables index with `hash & mask`; sequential keys must not yield
  // sequential low bits. Count collisions of the low byte over a small range.
  std::unordered_set<uint64_t> low;
  for (uint64_t i = 0; i < 64; ++i) low.insert(flat::WyHash64(i) & 0xff);
  EXPECT_GT(low.size(), 40u);  // near-uniform; identity hashing would give 64 sequential values
}

TEST(WyHash, BytesMatchAcrossCalls) {
  std::string s = "the quick brown fox";
  EXPECT_EQ(flat::WyHashBytes(s.data(), s.size()),
            flat::WyHashBytes(s.data(), s.size()));
  for (size_t len = 0; len <= s.size(); ++len) {
    for (size_t other = 0; other < len; ++other) {
      EXPECT_NE(flat::WyHashBytes(s.data(), len),
                flat::WyHashBytes(s.data(), other))
          << "prefix lengths " << len << " vs " << other;
    }
  }
}

// Regression: the 9..15-byte tail once read past the buffer bounds, so the
// hash depended on whatever bytes happened to surround the key — equal
// strings in different buffers could hash apart. Hash the same content out
// of two buffers padded with different garbage on both sides.
TEST(WyHash, DependsOnlyOnTheHashedBytes) {
  for (size_t len = 1; len <= 40; ++len) {
    std::vector<uint8_t> a(len + 32, 0xAA), b(len + 32, 0x55);
    for (size_t i = 0; i < len; ++i) {
      a[16 + i] = b[16 + i] = static_cast<uint8_t>(i * 37 + 11);
    }
    EXPECT_EQ(flat::WyHashBytes(a.data() + 16, len),
              flat::WyHashBytes(b.data() + 16, len))
        << "hash of a " << len << "-byte key read outside the key";
  }
}

TEST(Fp128, DistinguishesStrings) {
  flat::Fp128 a = flat::Fp128::OfString("abc");
  flat::Fp128 b = flat::Fp128::OfString("abd");
  flat::Fp128 a2 = flat::Fp128::OfString("abc");
  EXPECT_EQ(a, a2);
  EXPECT_NE(a, b);
}

// ---------------------------------------------------------------------------
// FlatMap / FlatSet differential vs std::unordered_*

// One randomized op script driven by Entropy, applied in lockstep to the
// flat container and the std reference; every divergence is a bug in the
// robin-hood insert/erase/backward-shift logic.
template <typename FlatM>
void RunMapDifferential(uint64_t seed, uint32_t key_range, int ops) {
  Entropy rng(seed);
  FlatM fm;
  std::unordered_map<uint32_t, uint32_t> ref;
  for (int i = 0; i < ops; ++i) {
    uint32_t key = rng.Below(key_range);
    switch (rng.Below(5)) {
      case 0:
      case 1: {  // insert (keep-existing semantics, like emplace)
        uint32_t value = rng.Raw();
        auto [e, inserted] = fm.Emplace(key, value);
        auto [it, ref_inserted] = ref.emplace(key, value);
        ASSERT_EQ(inserted, ref_inserted);
        ASSERT_NE(e, nullptr);
        ASSERT_EQ(e->second, it->second);
        break;
      }
      case 2: {  // erase
        ASSERT_EQ(fm.Erase(key), ref.erase(key) == 1);
        break;
      }
      case 3: {  // find
        uint32_t* v = fm.Get(key);
        auto it = ref.find(key);
        ASSERT_EQ(v != nullptr, it != ref.end());
        if (v != nullptr) {
          ASSERT_EQ(*v, it->second);
        }
        break;
      }
      case 4: {  // occasional clear, else insert-or-overwrite
        if (rng.Below(64) == 0) {
          fm.Clear();
          ref.clear();
        } else {
          uint32_t value = rng.Raw();
          auto [e, inserted] = fm.Emplace(key, value);
          ASSERT_NE(e, nullptr);
          if (!inserted) e->second = value;
          ref[key] = value;
        }
        break;
      }
    }
    ASSERT_EQ(fm.size(), ref.size());
  }
  // Full-content sweep both ways.
  size_t seen = 0;
  fm.ForEach([&](const typename FlatM::Entry& e) {
    auto it = ref.find(e.first);
    ASSERT_NE(it, ref.end());
    ASSERT_EQ(it->second, e.second);
    ++seen;
  });
  EXPECT_EQ(seen, ref.size());
}

TEST(FlatMap, DifferentialSmallKeyRange) {
  // Narrow key range maximizes duplicate inserts and erase-of-present.
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    RunMapDifferential<flat::FlatMap<uint32_t, uint32_t>>(seed, 64, 4000);
  }
}

TEST(FlatMap, DifferentialWideKeyRange) {
  for (uint64_t seed = 100; seed <= 104; ++seed) {
    RunMapDifferential<flat::FlatMap<uint32_t, uint32_t>>(seed, 100000, 20000);
  }
}

// All keys share one hash: every insert lands in one probe chain, making
// robin-hood displacement and backward-shift deletion the ONLY paths taken.
struct CollidingHash {
  uint64_t operator()(uint32_t) const { return 0x1234; }
};

TEST(FlatMap, DifferentialWorstCaseCollisions) {
  for (uint64_t seed = 7; seed <= 10; ++seed) {
    RunMapDifferential<flat::FlatMap<uint32_t, uint32_t, CollidingHash>>(
        seed, 48, 3000);
  }
}

TEST(FlatMap, BackwardShiftPreservesChain) {
  // Deterministic displacement scenario: colliding keys 0..9, erase from the
  // middle, every survivor must stay findable (no tombstone, no hole).
  flat::FlatMap<uint32_t, uint32_t, CollidingHash> fm;
  for (uint32_t k = 0; k < 10; ++k) fm.Emplace(k, k * 100);
  for (uint32_t victim : {4u, 0u, 9u}) {
    ASSERT_TRUE(fm.Erase(victim));
    ASSERT_FALSE(fm.Contains(victim));
    for (uint32_t k = 0; k < 10; ++k) {
      if (k == victim || fm.Get(k) == nullptr) continue;
      ASSERT_EQ(*fm.Get(k), k * 100);
    }
    fm.Emplace(victim, victim * 100);  // restore for the next round
  }
  EXPECT_EQ(fm.size(), 10u);
}

TEST(FlatMap, StringKeysOwnTheirMemory) {
  // Heap-owning keys/values through grow + erase + clear; ASan/LSan guard
  // the destructor and rehash-move paths.
  flat::FlatMap<std::string, std::string> fm;
  std::unordered_map<std::string, std::string> ref;
  Entropy rng(42);
  for (int i = 0; i < 2000; ++i) {
    std::string key(1 + rng.Below(24), static_cast<char>('a' + rng.Below(26)));
    key += std::to_string(rng.Below(128));
    if (rng.Below(3) == 0) {
      ASSERT_EQ(fm.Erase(key), ref.erase(key) == 1) << key;
    } else {
      std::string value = key + "-v";
      fm.Emplace(key, value);
      ref.emplace(key, value);
    }
    ASSERT_EQ(fm.size(), ref.size());
  }
  for (const auto& [k, v] : ref) {
    ASSERT_NE(fm.Get(k), nullptr) << k;
    ASSERT_EQ(*fm.Get(k), v);
  }
}

TEST(FlatMap, ClearKeepsBucketsWarm) {
  flat::FlatMap<uint32_t, uint32_t> fm;
  for (uint32_t k = 0; k < 1000; ++k) fm.Emplace(k, k);
  size_t buckets = fm.bucket_count();
  fm.Clear();
  EXPECT_EQ(fm.size(), 0u);
  EXPECT_EQ(fm.bucket_count(), buckets);
  for (uint32_t k = 0; k < 1000; ++k) fm.Emplace(k, k + 1);
  EXPECT_EQ(fm.bucket_count(), buckets);  // refill within warm capacity
}

TEST(FlatMap, ReserveThenFillNeverRehashes) {
  flat::FlatMap<uint32_t, uint32_t> fm;
  fm.Reserve(5000);
  size_t buckets = fm.bucket_count();
  for (uint32_t k = 0; k < 5000; ++k) fm.Emplace(k, k);
  EXPECT_EQ(fm.bucket_count(), buckets);
}

TEST(FlatMap, CopyAndMove) {
  flat::FlatMap<uint32_t, std::string> fm;
  for (uint32_t k = 0; k < 100; ++k) fm.Emplace(k, std::to_string(k));
  flat::FlatMap<uint32_t, std::string> copy(fm);
  ASSERT_EQ(copy.size(), 100u);
  EXPECT_EQ(*copy.Get(42), "42");
  flat::FlatMap<uint32_t, std::string> moved(std::move(fm));
  EXPECT_EQ(moved.size(), 100u);
  EXPECT_EQ(*moved.Get(7), "7");
  EXPECT_EQ(fm.size(), 0u);  // NOLINT(bugprone-use-after-move): documented reset
  copy = moved;
  EXPECT_EQ(copy.size(), 100u);
}

TEST(FlatSet, Differential) {
  for (uint64_t seed = 3; seed <= 8; ++seed) {
    Entropy rng(seed);
    flat::FlatSet<uint32_t> fs;
    std::unordered_set<uint32_t> ref;
    for (int i = 0; i < 6000; ++i) {
      uint32_t key = rng.Below(512);
      switch (rng.Below(3)) {
        case 0:
          ASSERT_EQ(fs.Insert(key), ref.insert(key).second);
          break;
        case 1:
          ASSERT_EQ(fs.Erase(key), ref.erase(key) == 1);
          break;
        case 2:
          ASSERT_EQ(fs.Contains(key), ref.count(key) == 1);
          break;
      }
      ASSERT_EQ(fs.size(), ref.size());
    }
    size_t seen = 0;
    fs.ForEach([&](uint32_t k) {
      ASSERT_TRUE(ref.count(k) == 1);
      ++seen;
    });
    EXPECT_EQ(seen, ref.size());
  }
}

// ---------------------------------------------------------------------------
// Fixed-capacity variants

TEST(FixedFlatMap, DifferentialWithinCapacity) {
  // Key range < capacity: behavior must be indistinguishable from the
  // dynamic variant / std reference.
  for (uint64_t seed = 11; seed <= 14; ++seed) {
    RunMapDifferential<flat::FixedFlatMap<uint32_t, uint32_t, 64>>(seed, 48, 4000);
  }
}

TEST(FixedFlatMap, CapacityExhaustion) {
  flat::FixedFlatMap<uint32_t, uint32_t, 16> fm;
  for (uint32_t k = 0; k < 16; ++k) {
    auto [e, inserted] = fm.Emplace(k, k);
    ASSERT_TRUE(inserted);
    ASSERT_NE(e, nullptr);
  }
  EXPECT_TRUE(fm.full());
  EXPECT_EQ(fm.size(), 16u);

  // New key at capacity: refused, table untouched.
  auto [e, inserted] = fm.Emplace(999u, 1u);
  EXPECT_EQ(e, nullptr);
  EXPECT_FALSE(inserted);
  EXPECT_EQ(fm.size(), 16u);

  // Existing key at capacity: still found (full() must not break hits).
  auto [hit, hit_inserted] = fm.Emplace(5u, 777u);
  ASSERT_NE(hit, nullptr);
  EXPECT_FALSE(hit_inserted);
  EXPECT_EQ(hit->second, 5u);  // keep-existing semantics

  // Erase makes room again.
  ASSERT_TRUE(fm.Erase(3u));
  EXPECT_FALSE(fm.full());
  auto [e2, inserted2] = fm.Emplace(999u, 1u);
  ASSERT_NE(e2, nullptr);
  EXPECT_TRUE(inserted2);
  EXPECT_TRUE(fm.full());
}

TEST(FixedFlatSet, CapacityExhaustionAndChurn) {
  flat::FixedFlatSet<uint32_t, 8> fs;
  for (uint32_t k = 0; k < 8; ++k) ASSERT_TRUE(fs.Insert(k));
  EXPECT_TRUE(fs.full());
  EXPECT_FALSE(fs.Insert(100u));  // refused: full
  EXPECT_FALSE(fs.Insert(3u));    // refused: duplicate (not a capacity issue)
  EXPECT_TRUE(fs.Contains(3u));
  // Fill/drain churn at the boundary exercises backward shift in inline
  // storage.
  for (int round = 0; round < 50; ++round) {
    uint32_t victim = static_cast<uint32_t>(round % 8);
    ASSERT_TRUE(fs.Erase(victim));
    ASSERT_TRUE(fs.Insert(victim + 1000));
    ASSERT_TRUE(fs.full());
    ASSERT_TRUE(fs.Erase(victim + 1000));
    ASSERT_TRUE(fs.Insert(victim));
  }
  EXPECT_EQ(fs.size(), 8u);
}

TEST(FixedFlatMap, WorstCaseCollisionsStayInline) {
  flat::FixedFlatMap<uint32_t, uint32_t, 32, CollidingHash> fm;
  for (uint32_t k = 0; k < 32; ++k) ASSERT_TRUE(fm.Emplace(k, k).second);
  for (uint32_t k = 0; k < 32; ++k) ASSERT_EQ(*fm.Get(k), k);
  for (uint32_t k = 0; k < 32; k += 2) ASSERT_TRUE(fm.Erase(k));
  for (uint32_t k = 1; k < 32; k += 2) ASSERT_EQ(*fm.Get(k), k);
  EXPECT_EQ(fm.size(), 16u);
}

// ---------------------------------------------------------------------------
// SmallVec

TEST(SmallVec, DifferentialAcrossSpillBoundary) {
  for (uint64_t seed = 21; seed <= 24; ++seed) {
    Entropy rng(seed);
    flat::SmallVec<uint32_t, 4> sv;  // tiny inline tier: spills constantly
    std::vector<uint32_t> ref;
    for (int i = 0; i < 3000; ++i) {
      switch (rng.Below(4)) {
        case 0:
        case 1: {
          uint32_t v = rng.Raw();
          sv.push_back(v);
          ref.push_back(v);
          break;
        }
        case 2: {
          if (ref.empty()) break;
          size_t at = rng.Below(static_cast<uint32_t>(ref.size() + 1));
          uint32_t v = rng.Raw();
          sv.insert_at(at, v);
          ref.insert(ref.begin() + at, v);
          break;
        }
        case 3: {
          if (ref.empty()) break;
          size_t at = rng.Below(static_cast<uint32_t>(ref.size()));
          sv.erase_at(at);
          ref.erase(ref.begin() + at);
          break;
        }
      }
      ASSERT_EQ(sv.size(), ref.size());
    }
    ASSERT_TRUE(std::equal(sv.begin(), sv.end(), ref.begin(), ref.end()));
  }
}

TEST(SmallVec, CopyMoveEquality) {
  flat::SmallVec<uint32_t, 4> a;
  for (uint32_t i = 0; i < 3; ++i) a.push_back(i);  // inline
  flat::SmallVec<uint32_t, 4> b = a;
  EXPECT_EQ(a, b);
  b.push_back(99);
  EXPECT_NE(a, b);
  for (uint32_t i = 0; i < 10; ++i) a.push_back(i);  // spilled
  flat::SmallVec<uint32_t, 4> c = a;
  EXPECT_EQ(a, c);
  flat::SmallVec<uint32_t, 4> d = std::move(a);
  EXPECT_EQ(c, d);
  EXPECT_EQ(a.size(), 0u);  // NOLINT(bugprone-use-after-move): documented reset
  a = d;                    // reassign after move-out
  EXPECT_EQ(a, c);
}

// ---------------------------------------------------------------------------
// EpochArena

TEST(EpochArena, AlignmentAndReuse) {
  flat::EpochArena arena;
  void* p8 = arena.Alloc(3, 1);
  void* p16 = arena.Alloc(16, 16);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p16) % 16, 0u);
  EXPECT_NE(p8, p16);

  // Warm up one epoch's worth of allocation, then verify later epochs stay
  // within the reserved blocks.
  arena.Reset();
  for (int i = 0; i < 100; ++i) arena.Alloc(64, 8);
  size_t reserved = arena.bytes_reserved();
  for (int epoch = 0; epoch < 10; ++epoch) {
    arena.Reset();
    for (int i = 0; i < 100; ++i) {
      void* p = arena.Alloc(64, 8);
      std::memset(p, epoch, 64);  // memory is writable and exclusive
    }
    EXPECT_EQ(arena.bytes_reserved(), reserved) << "epoch " << epoch;
  }
}

TEST(EpochArena, ArenaVecGrowth) {
  flat::EpochArena arena;
  for (int epoch = 0; epoch < 3; ++epoch) {
    arena.Reset();
    flat::ArenaVec<uint32_t> v(&arena, 2);
    std::vector<uint32_t> ref;
    for (uint32_t i = 0; i < 1000; ++i) {
      v.push_back(i * 3);
      ref.push_back(i * 3);
    }
    ASSERT_TRUE(std::equal(v.begin(), v.end(), ref.begin(), ref.end()));
  }
}

// ---------------------------------------------------------------------------
// FlatLru

// Reference LRU built on std::list, mirroring the VerdictCache original.
class RefLru {
 public:
  explicit RefLru(size_t cap) : cap_(cap) {}
  int* Find(uint64_t k) {
    auto it = index_.find(k);
    if (it == index_.end()) return nullptr;
    order_.splice(order_.begin(), order_, it->second);
    return &it->second->second;
  }
  void Insert(uint64_t k, int v) {
    auto it = index_.find(k);
    if (it != index_.end()) {
      it->second->second = v;
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    order_.emplace_front(k, v);
    index_[k] = order_.begin();
    if (order_.size() > cap_) {
      index_.erase(order_.back().first);
      order_.pop_back();
    }
  }
  size_t size() const { return order_.size(); }

 private:
  size_t cap_;
  std::list<std::pair<uint64_t, int>> order_;
  std::unordered_map<uint64_t, std::list<std::pair<uint64_t, int>>::iterator> index_;
};

TEST(FlatLru, DifferentialVsListLru) {
  for (uint64_t seed = 31; seed <= 34; ++seed) {
    Entropy rng(seed);
    flat::FlatLru<uint64_t, int> lru(32);
    RefLru ref(32);
    for (int i = 0; i < 20000; ++i) {
      uint64_t key = rng.Below(100);  // ~3x capacity: constant eviction
      if (rng.Below(2) == 0) {
        int* got = lru.Find(key);
        int* want = ref.Find(key);
        ASSERT_EQ(got != nullptr, want != nullptr) << "key " << key;
        if (got != nullptr) {
          ASSERT_EQ(*got, *want);
        }
      } else {
        int v = static_cast<int>(rng.Raw());
        lru.Insert(key, v);
        ref.Insert(key, v);
      }
      ASSERT_EQ(lru.size(), ref.size());
    }
  }
}

TEST(FlatLru, EvictsLeastRecentlyUsed) {
  flat::FlatLru<uint64_t, int> lru(3);
  lru.Insert(1, 10);
  lru.Insert(2, 20);
  lru.Insert(3, 30);
  ASSERT_NE(lru.Find(1), nullptr);  // 1 becomes MRU; LRU order now 2,3,1
  lru.Insert(4, 40);                // evicts 2
  EXPECT_EQ(lru.Find(2), nullptr);
  EXPECT_NE(lru.Find(1), nullptr);
  EXPECT_NE(lru.Find(3), nullptr);
  EXPECT_NE(lru.Find(4), nullptr);
  EXPECT_EQ(lru.evictions(), 1u);
}

TEST(FlatLru, ValueOwningMemory) {
  flat::FlatLru<uint64_t, std::string> lru(4);
  for (uint64_t k = 0; k < 100; ++k) {
    lru.Insert(k, std::string(100, static_cast<char>('a' + k % 26)));
  }
  EXPECT_EQ(lru.size(), 4u);
  ASSERT_NE(lru.Find(99), nullptr);
  EXPECT_EQ(lru.Find(99)->front(), 'a' + 99 % 26);
}

}  // namespace
}  // namespace tic
