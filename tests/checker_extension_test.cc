// End-to-end tests for the Theorem 4.2 decision procedure on the paper's
// running examples (Section 2): submit-once and FIFO order filling.

#include <gtest/gtest.h>

#include "checker/extension.h"
#include "db/update.h"
#include "fotl/evaluator.h"
#include "fotl/parser.h"

namespace tic {
namespace checker {
namespace {

class OrdersTest : public ::testing::Test {
 protected:
  OrdersTest() {
    auto vocab = std::make_shared<Vocabulary>();
    sub_ = *vocab->AddPredicate("Sub", 1);
    fill_ = *vocab->AddPredicate("Fill", 1);
    vocab_ = vocab;
    ffac_ = std::make_shared<fotl::FormulaFactory>(vocab_);
    // "An order can be submitted only once."
    submit_once_ = *fotl::Parse(ffac_.get(), "forall x . G (Sub(x) -> X G !Sub(x))");
    // "Orders are filled in submission order" (Section 2's queue constraint).
    fifo_ = *fotl::Parse(
        ffac_.get(),
        "forall x y . G !(x != y & Sub(x) & ((!Fill(x)) until "
        "(Sub(y) & ((!Fill(x)) until (Fill(y) & !Fill(x))))))");
    history_ = std::make_unique<History>(*History::Create(vocab_));
  }

  // Appends a state in which exactly the given orders are submitted/filled.
  void Step(std::vector<Value> subs, std::vector<Value> fills) {
    DatabaseState* s = history_->AppendEmptyState();
    for (Value v : subs) ASSERT_TRUE(s->Insert(sub_, {v}).ok());
    for (Value v : fills) ASSERT_TRUE(s->Insert(fill_, {v}).ok());
  }

  CheckResult Check(fotl::Formula phi) {
    auto res = CheckPotentialSatisfaction(*ffac_, phi, *history_);
    EXPECT_TRUE(res.ok()) << res.status().ToString();
    // Witness audit: when satisfied, the decoded extension must (a) really
    // extend the history and (b) satisfy phi under direct FOTL evaluation.
    if (res.ok() && res->potentially_satisfied) {
      EXPECT_TRUE(res->witness.has_value()) << "no witness produced";
      if (res->witness.has_value()) {
        const UltimatelyPeriodicDb& w = *res->witness;
        for (size_t t = 0; t < history_->length(); ++t) {
          EXPECT_TRUE(w.StateAt(t) == history_->state(t))
              << "prefix mismatch at " << t;
        }
        auto holds = fotl::EvaluateFuture(w, phi);
        EXPECT_TRUE(holds.ok()) << holds.status().ToString();
        if (holds.ok()) {
          EXPECT_TRUE(*holds) << "witness violates the constraint";
        }
      }
    }
    return res.ok() ? *res : CheckResult{};
  }

  VocabularyPtr vocab_;
  PredicateId sub_, fill_;
  std::shared_ptr<fotl::FormulaFactory> ffac_;
  fotl::Formula submit_once_ = nullptr;
  fotl::Formula fifo_ = nullptr;
  std::unique_ptr<History> history_;
};

TEST_F(OrdersTest, EmptyHistoryIsPotentiallySatisfied) {
  EXPECT_TRUE(Check(submit_once_).potentially_satisfied);
  EXPECT_TRUE(Check(fifo_).potentially_satisfied);
}

TEST_F(OrdersTest, SingleSubmissionIsFine) {
  Step({7}, {});
  EXPECT_TRUE(Check(submit_once_).potentially_satisfied);
}

TEST_F(OrdersTest, ResubmissionViolatesSubmitOnce) {
  Step({7}, {});
  Step({7}, {});  // submitted again
  CheckResult r = Check(submit_once_);
  EXPECT_FALSE(r.potentially_satisfied);
  EXPECT_TRUE(r.permanently_violated);
}

TEST_F(OrdersTest, SimultaneousDoubleSubmitInOneStateIsAllowed) {
  // Two different orders in one state is fine.
  Step({7, 8}, {});
  EXPECT_TRUE(Check(submit_once_).potentially_satisfied);
}

TEST_F(OrdersTest, ViolationIsPermanent) {
  Step({7}, {});
  Step({7}, {});
  Step({}, {7});  // later updates cannot repair it (safety)
  EXPECT_FALSE(Check(submit_once_).potentially_satisfied);
}

TEST_F(OrdersTest, FifoRespectingFillOrder) {
  Step({1}, {});
  Step({2}, {});
  Step({}, {1});
  Step({}, {2});
  EXPECT_TRUE(Check(fifo_).potentially_satisfied);
}

TEST_F(OrdersTest, FifoOutOfOrderFillViolates) {
  Step({1}, {});
  Step({2}, {});
  Step({}, {2});  // 2 filled while 1 still pending
  CheckResult r = Check(fifo_);
  EXPECT_FALSE(r.potentially_satisfied);
}

TEST_F(OrdersTest, FifoPendingOrdersStillSatisfiable) {
  // 1 then 2 submitted, nothing filled yet: an extension can fill both in
  // order, so the constraint is potentially satisfied (and the witness shows
  // such a future).
  Step({1}, {});
  Step({2}, {});
  EXPECT_TRUE(Check(fifo_).potentially_satisfied);
}

TEST_F(OrdersTest, FifoFillBothAtOnceIsAllowed) {
  Step({1}, {});
  Step({2}, {});
  Step({}, {1, 2});
  EXPECT_TRUE(Check(fifo_).potentially_satisfied);
}

TEST_F(OrdersTest, ConjunctionOfBothConstraints) {
  fotl::Formula both = ffac_->And(submit_once_, fifo_);
  // And() of two closed universal formulas is not prenex; re-quantify by hand:
  // instead check them separately against a consistent history.
  Step({1}, {});
  Step({2}, {});
  Step({}, {1});
  EXPECT_TRUE(Check(submit_once_).potentially_satisfied);
  EXPECT_TRUE(Check(fifo_).potentially_satisfied);
  // The conjunction as-is has empty external prefix but internal quantifiers,
  // so the checker must reject it as outside the universal fragment.
  auto res = CheckPotentialSatisfaction(*ffac_, both, *history_);
  EXPECT_FALSE(res.ok());
  EXPECT_TRUE(res.status().IsNotSupported());
}

TEST_F(OrdersTest, GroundingStatsReported) {
  Step({1, 2, 3}, {});
  CheckResult r = Check(submit_once_);
  EXPECT_EQ(r.grounding_stats.relevant_size, 3u);
  EXPECT_EQ(r.grounding_stats.num_external_vars, 1u);
  // |M| = |R_D| + k = 4 instances for k=1.
  EXPECT_EQ(r.grounding_stats.num_instances, 4u);
  EXPECT_GT(r.residual_size, 0u);
}

TEST_F(OrdersTest, LiteralAndSimplifiedGroundingAgree) {
  // The literal Axiom_D has size Theta(|M|^3 + |M|^(2*arity)), and its
  // satisfiability check pays for it; keep M tiny (one relevant element plus
  // the z) exactly as the fidelity check needs.
  Step({1}, {});
  for (bool violate : {false, true}) {
    if (violate) Step({1}, {});  // resubmit
    CheckOptions simplified;
    CheckOptions literal;
    literal.grounding.mode = GroundingMode::kLiteral;
    auto a =
        CheckPotentialSatisfaction(*ffac_, submit_once_, *history_, {}, simplified);
    auto b = CheckPotentialSatisfaction(*ffac_, submit_once_, *history_, {}, literal);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    EXPECT_EQ(a->potentially_satisfied, b->potentially_satisfied)
        << (violate ? "violating" : "clean");
    EXPECT_EQ(a->potentially_satisfied, !violate);
    // The literal formula is strictly larger (it carries Axiom_D).
    EXPECT_GT(b->grounding_stats.phi_d_size, a->grounding_stats.phi_d_size);
  }
}

TEST_F(OrdersTest, NonSafetyFormulaRejected) {
  fotl::Formula live = *fotl::Parse(ffac_.get(), "forall x . Sub(x) -> F Fill(x)");
  Step({1}, {});
  auto res = CheckPotentialSatisfaction(*ffac_, live, *history_);
  EXPECT_FALSE(res.ok());
  EXPECT_TRUE(res.status().IsNotSupported());
  // With the safety gate off it runs (and is trivially satisfiable: fill later).
  CheckOptions opts;
  opts.require_safety = false;
  auto res2 = CheckPotentialSatisfaction(*ffac_, live, *history_, {}, opts);
  ASSERT_TRUE(res2.ok()) << res2.status().ToString();
  EXPECT_TRUE(res2->potentially_satisfied);
}

TEST_F(OrdersTest, FreeVariableBinding) {
  // !(Sub(x) & X G !Sub(x) fails)... directly: check "Sub(v) -> X G !Sub(v)"
  // with v bound; for v = 7 after a resubmission it is violated.
  fotl::Formula cond = *fotl::Parse(ffac_.get(), "Sub(v) -> X G !Sub(v)");
  Step({7}, {});
  Step({7}, {});
  fotl::VarId v = ffac_->InternVar("v");
  auto bad = CheckPotentialSatisfaction(*ffac_, cond, *history_, {{v, 7}});
  ASSERT_TRUE(bad.ok()) << bad.status().ToString();
  EXPECT_FALSE(bad->potentially_satisfied);
  auto good = CheckPotentialSatisfaction(*ffac_, cond, *history_, {{v, 8}});
  ASSERT_TRUE(good.ok());
  EXPECT_TRUE(good->potentially_satisfied);
}

TEST_F(OrdersTest, MissingBindingIsAnError) {
  fotl::Formula cond = *fotl::Parse(ffac_.get(), "Sub(v) -> X G !Sub(v)");
  Step({7}, {});
  auto res = CheckPotentialSatisfaction(*ffac_, cond, *history_);
  EXPECT_FALSE(res.ok());
  EXPECT_TRUE(res.status().IsInvalidArgument());
}

// The Section 4 counterexample family (R7): a universal formula with models of
// every finite universe size but no infinite-universe model. Its conjunction
// is *not* expressible without internal quantifiers in our surface syntax for
// W4's "exactly once" — but W1 & W4 & Q1 & Q4 & inv is universal; we verify
// that every finite history is eventually irreparable (the W-chain must
// strictly descend).
class FiniteUniverseTest : public ::testing::Test {
 protected:
  FiniteUniverseTest() {
    auto vocab = std::make_shared<Vocabulary>();
    w_ = *vocab->AddPredicate("Wp", 1);
    q_ = *vocab->AddPredicate("Qp", 1);
    vocab_ = vocab;
    ffac_ = std::make_shared<fotl::FormulaFactory>(vocab_);
    // W1: at most one W element per state; W4: every element is W exactly once
    // (here: at least once eventually, at most once ever);
    // Q analogues; inv: the Q-order inverts the W-order.
    phi_ = *fotl::Parse(
        ffac_.get(),
        "forall x y . "
        "(G ((Wp(x) & Wp(y)) -> x = y)) & "
        "(G ((Qp(x) & Qp(y)) -> x = y)) & "
        "((!Wp(x)) until (Wp(x) & X G !Wp(x))) & "
        "((!Qp(x)) until (Qp(x) & X G !Qp(x))) & "
        "(F (Qp(x) & F Qp(y)) -> F (Wp(y) & F Wp(x)))");
  }

  VocabularyPtr vocab_;
  PredicateId w_, q_;
  std::shared_ptr<fotl::FormulaFactory> ffac_;
  fotl::Formula phi_ = nullptr;
};

TEST_F(FiniteUniverseTest, W4AloneDemonstratesLemma41Failure) {
  // W4 == forall x . (!W(x)) until (W(x) & X G !W(x)) is NOT a safety
  // sentence (every element must *eventually* carry W). Semantically, any
  // finite history extends to a model over the infinite universe (enumerate
  // one element per state); but the relevant-element restriction of
  // Lemma 4.1 — baked into the Theorem 4.1 grounding — makes the z-instances
  // constant-fold to false, so the checker answers "no". This documents the
  // paper's point that Section 4's algorithm is sound only for safety
  // sentences ("Lemma 4.1 fails and the proofs ... do not go through").
  auto w4 = fotl::Parse(ffac_.get(),
                        "forall x . (!Wp(x)) until (Wp(x) & X G !Wp(x))");
  ASSERT_TRUE(w4.ok());
  History h = *History::Create(vocab_);
  DatabaseState* s = h.AppendEmptyState();
  ASSERT_TRUE(s->Insert(w_, {1}).ok());
  CheckOptions opts;
  opts.require_safety = false;
  auto res = CheckPotentialSatisfaction(*ffac_, *w4, h, {}, opts);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_FALSE(res->potentially_satisfied);  // wrong answer, expected wrongness
}

TEST_F(FiniteUniverseTest, SafetyGateFiresWhenUnsafetySurvivesGrounding) {
  // A non-safety formula whose ground instances keep a live Until must be
  // refused by the safety gate.
  auto live = fotl::Parse(ffac_.get(), "forall x . Wp(x) -> F Qp(x)");
  ASSERT_TRUE(live.ok());
  History h = *History::Create(vocab_);
  DatabaseState* s = h.AppendEmptyState();
  ASSERT_TRUE(s->Insert(w_, {1}).ok());
  auto res = CheckPotentialSatisfaction(*ffac_, *live, h);
  EXPECT_FALSE(res.ok());
  EXPECT_TRUE(res.status().IsNotSupported());
}

TEST_F(FiniteUniverseTest, DescendingChainBehaviour) {
  // With the safety gate off, the checker still answers: a history that uses
  // elements 1..n with W ascending and Q descending is extendable (finite
  // model); the decision procedure confirms extendability of each prefix.
  CheckOptions opts;
  opts.require_safety = false;
  History h = *History::Create(vocab_);
  // State 0: W(1), Q(3); state 1: W(2), Q(2); state 2: W(3), Q(1).
  for (int t = 0; t < 3; ++t) {
    DatabaseState* s = h.AppendEmptyState();
    ASSERT_TRUE(s->Insert(w_, {t + 1}).ok());
    ASSERT_TRUE(s->Insert(q_, {3 - t}).ok());
  }
  auto res = CheckPotentialSatisfaction(*ffac_, phi_, h, {}, opts);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  // The three named elements pair up exactly (W-order 1,2,3 / Q-order 3,2,1);
  // but the z-instances of W4 force *every* element to eventually carry W,
  // which the inverse-order axiom turns into an infinite descending chain —
  // impossible. The checker detects this: not potentially satisfied.
  EXPECT_FALSE(res->potentially_satisfied);
}

}  // namespace
}  // namespace checker
}  // namespace tic
