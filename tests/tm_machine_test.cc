// Tests for the Turing-machine substrate: construction, simulation, and the
// behaviour classification of the library machines.

#include <gtest/gtest.h>

#include "tm/machine.h"
#include "tm/simulator.h"

namespace tic {
namespace tm {
namespace {

TEST(MachineTest, CreateValidatesAlphabet) {
  EXPECT_TRUE(TuringMachine::Create({"q0"}, {'0', '1'}).status().IsInvalidArgument());
  EXPECT_TRUE(TuringMachine::Create({}, {'0', '1', 'B'}).status().IsInvalidArgument());
  EXPECT_TRUE(TuringMachine::Create({"q0"}, {'0', '1', 'B'}).ok());
}

TEST(MachineTest, TransitionValidation) {
  TuringMachine m = *TuringMachine::Create({"q0", "q1"}, {'0', '1', 'B'});
  EXPECT_TRUE(m.AddTransition(0, '0', 1, '1', Dir::kRight).ok());
  EXPECT_TRUE(m.AddTransition(0, '0', 0, '0', Dir::kLeft).IsAlreadyExists());
  EXPECT_TRUE(m.AddTransition(5, '0', 0, '0', Dir::kLeft).IsOutOfRange());
  EXPECT_TRUE(m.AddTransition(0, 'x', 0, '0', Dir::kLeft).IsInvalidArgument());
  Transition tr;
  EXPECT_TRUE(m.Lookup(0, '0', &tr));
  EXPECT_EQ(tr.next_state, 1u);
  EXPECT_EQ(tr.write, '1');
  EXPECT_FALSE(m.Lookup(1, '0', &tr));
}

TEST(SimulatorTest, InitialConfiguration) {
  TuringMachine m = *MakeImmediateHaltMachine();
  Simulator sim(&m);
  auto c = sim.Initial("0110");
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->state, 0u);
  EXPECT_EQ(c->head, 0u);
  EXPECT_EQ(c->tape, (std::vector<char>{'0', '1', '1', '0'}));
  EXPECT_TRUE(sim.Initial("01a").status().IsInvalidArgument());
}

TEST(SimulatorTest, ImmediateHaltHalts) {
  TuringMachine m = *MakeImmediateHaltMachine();
  Simulator sim(&m);
  Configuration c = *sim.Initial("01");
  EXPECT_EQ(sim.Step(&c), StepOutcome::kHalt);
  auto stats = sim.Run(&c, 100);
  EXPECT_EQ(stats.steps, 0u);
  EXPECT_EQ(stats.last, StepOutcome::kHalt);
  EXPECT_EQ(stats.origin_visits, 1u);  // the initial configuration
}

TEST(SimulatorTest, RightWalkerNeverReturns) {
  TuringMachine m = *MakeRightWalkerMachine();
  Simulator sim(&m);
  Configuration c = *sim.Initial("10");
  auto stats = sim.Run(&c, 500);
  EXPECT_EQ(stats.steps, 500u);
  EXPECT_EQ(stats.last, StepOutcome::kContinue);
  EXPECT_EQ(stats.origin_visits, 1u);  // only the initial configuration
  EXPECT_EQ(c.head, 500u);
  EXPECT_EQ(c.tape[0], '1');  // tape preserved
}

TEST(SimulatorTest, ShuttleRevisitsOrigin) {
  TuringMachine m = *MakeShuttleMachine();
  Simulator sim(&m);
  Configuration c = *sim.Initial("01");
  auto stats = sim.Run(&c, 1000);
  EXPECT_EQ(stats.last, StepOutcome::kContinue);
  // Round trip over a 2-cell input takes ~6 steps; expect many visits.
  EXPECT_GT(stats.origin_visits, 100u);
}

TEST(SimulatorTest, ShuttleWorksOnEmptyInput) {
  TuringMachine m = *MakeShuttleMachine();
  Simulator sim(&m);
  Configuration c = *sim.Initial("");
  auto stats = sim.Run(&c, 100);
  EXPECT_EQ(stats.last, StepOutcome::kContinue);
  EXPECT_GT(stats.origin_visits, 10u);
}

TEST(SimulatorTest, BinaryCounterCountsCorrectly) {
  TuringMachine m = *MakeBinaryCounterMachine();
  Simulator sim(&m);
  Configuration c = *sim.Initial("");
  // Run long enough for several increments; decode the counter (LSB first,
  // after the origin mark) each time the head is back at the origin in state
  // `inc`-ready position.
  size_t visits = 0;
  uint64_t last_value = 0;
  for (int step = 0; step < 2000; ++step) {
    StepOutcome out = sim.Step(&c);
    ASSERT_EQ(out, StepOutcome::kContinue);
    if (c.head == 0) {
      ++visits;
      uint64_t value = 0;
      for (size_t i = c.tape.size(); i-- > 1;) {
        value = value * 2 + (c.tape[i] == '1' ? 1 : 0);
      }
      // Counter strictly increases visit over visit.
      EXPECT_GT(value, last_value) << "visit " << visits;
      last_value = value;
    }
  }
  EXPECT_GT(visits, 20u);
  EXPECT_GT(last_value, 20u);
}

TEST(SimulatorTest, BinaryCounterTapeGrowsUnboundedly) {
  TuringMachine m = *MakeBinaryCounterMachine();
  Simulator sim(&m);
  Configuration c = *sim.Initial("");
  size_t tape_at_1000 = 0;
  for (int step = 0; step < 1000; ++step) {
    ASSERT_EQ(sim.Step(&c), StepOutcome::kContinue);
  }
  tape_at_1000 = c.tape.size();
  for (int step = 0; step < 20000; ++step) {
    ASSERT_EQ(sim.Step(&c), StepOutcome::kContinue);
  }
  EXPECT_GT(c.tape.size(), tape_at_1000);
}

TEST(SimulatorTest, LeftCrashDetected) {
  TuringMachine m = *TuringMachine::Create({"q0"}, {'0', '1', 'B'});
  ASSERT_TRUE(m.AddTransition(0, 'B', 0, 'B', Dir::kLeft).ok());
  Simulator sim(&m);
  Configuration c = *sim.Initial("");
  EXPECT_EQ(sim.Step(&c), StepOutcome::kLeftCrash);
}

TEST(SimulatorTest, ConfigurationWordFormat) {
  TuringMachine m = *MakeRightWalkerMachine();
  Simulator sim(&m);
  Configuration c = *sim.Initial("01");
  EXPECT_EQ(c.AsConfigurationWord(m), "[q0]01B");
  ASSERT_EQ(sim.Step(&c), StepOutcome::kContinue);
  EXPECT_EQ(c.AsConfigurationWord(m), "0[q0]1B");
}

}  // namespace
}  // namespace tm
}  // namespace tic
