// Tests for the fixed-size worker pool behind the checker's parallel hot
// paths: full index coverage, degenerate sizes, exception propagation, and
// reuse across ParallelFor rounds.

#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

namespace tic {
namespace {

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_workers(), 3u);
  constexpr size_t kN = 1000;  // far more indices than workers
  std::vector<std::atomic<int>> counts(kN);
  pool.ParallelFor(kN, [&](size_t i) { counts[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(counts[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ZeroWorkersRunsInlineOnCaller) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_workers(), 0u);
  std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> ran(16);
  pool.ParallelFor(ran.size(), [&](size_t i) { ran[i] = std::this_thread::get_id(); });
  for (std::thread::id id : ran) EXPECT_EQ(id, caller);
}

TEST(ThreadPoolTest, EmptyAndSingletonRanges) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, [&](size_t) { called = true; });
  EXPECT_FALSE(called);
  std::atomic<size_t> hits{0};
  pool.ParallelFor(1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    hits.fetch_add(1);
  });
  EXPECT_EQ(hits.load(), 1u);
}

TEST(ThreadPoolTest, PropagatesFirstExceptionAndStaysUsable) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.ParallelFor(64,
                       [&](size_t i) {
                         if (i == 13) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  // The pool must survive a throwing round.
  std::atomic<size_t> sum{0};
  pool.ParallelFor(10, [&](size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 45u);
}

TEST(ThreadPoolTest, ReusableAcrossManyRounds) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<size_t> sum{0};
    pool.ParallelFor(17, [&](size_t i) { sum.fetch_add(i + 1); });
    EXPECT_EQ(sum.load(), 17u * 18u / 2);
  }
}

}  // namespace
}  // namespace tic
